// Overload and failure engineering at the system level: the health
// state machine driven by an injected faulty journal (healthy →
// read-only → probe-based recovery), kill-under-shedding durability of
// acked writes, and circuit-breaker isolation of a wedged action
// endpoint.
package gelee

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/resilience"
	"github.com/liquidpub/gelee/internal/runtime"
	"github.com/liquidpub/gelee/internal/scenario"
	"github.com/liquidpub/gelee/internal/vclock"
)

// faultJournal wraps the real instance sink with switchable failure
// modes: pass-through, fail-forever, or fail-N-times.
type faultJournal struct {
	inner     runtime.Journal
	failing   atomic.Bool
	remaining atomic.Int64 // when > 0, that many failures then heal
	failures  atomic.Int64
}

func (f *faultJournal) Record(rec *runtime.JournalRecord) error {
	if n := f.remaining.Load(); n > 0 {
		if f.remaining.CompareAndSwap(n, n-1) {
			f.failures.Add(1)
			return errors.New("injected: transient write error")
		}
	}
	if f.failing.Load() {
		f.failures.Add(1)
		return errors.New("injected: disk gone")
	}
	return f.inner.Record(rec)
}

// TestJournalFaultReadOnlyAndProbeRecovery drives the full failure arc
// on a durable deployment: a broken instance journal trips the system
// through degraded into read-only; once the disk heals, the durability
// prober — not organic traffic — proves it and steps the machine back
// to healthy; and a restart recovers every cleanly-acked mutation.
func TestJournalFaultReadOnlyAndProbeRecovery(t *testing.T) {
	dir := t.TempDir()
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	fault := &faultJournal{}
	opts := restartOpts(dir, clock)
	opts.Resilience = ResilienceOptions{
		DegradeAfter:  1,
		ReadOnlyAfter: 2,
		RecoverAfter:  2,
		ProbeInterval: 2 * time.Millisecond,
		WrapJournal: func(inner runtime.Journal) runtime.Journal {
			fault.inner = inner
			return fault
		},
	}
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	// No deferred Close on the first System: the test ends with a kill.

	model := scenario.QualityPlan()
	if err := sys.DefineModel("", model); err != nil {
		t.Fatal(err)
	}
	mkInstance := func(page string) string {
		t.Helper()
		if _, err := sys.Sims.Wiki.CreatePage(page, "owner", "= "+page+" ="); err != nil {
			t.Fatal(err)
		}
		snap, err := sys.Instantiate(model.URI,
			Ref{URI: "http://wiki.liquidpub.org/pages/" + page, Type: "mediawiki"}, "owner",
			map[string]map[string]string{
				"http://www.liquidpub.org/a/notify": {"reviewers": "alice,bob"},
				"http://www.liquidpub.org/a/post":   {"site": "project.liquidpub.org"},
			})
		if err != nil {
			t.Fatal(err)
		}
		return snap.ID
	}
	main := mkInstance("D1.1")
	victim := mkInstance("D1.2")
	if _, err := sys.Advance(main, "elaboration", "owner", AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := sys.Health(); got != resilience.Healthy {
		t.Fatalf("health after clean writes = %v", got)
	}

	// Disk dies. Fail-forward: mutations on the victim stand in memory
	// but surface append errors, and the machine ratchets to read-only.
	fault.failing.Store(true)
	if _, err := sys.Advance(victim, "elaboration", "owner", AdvanceOptions{}); err == nil {
		t.Fatal("advance on a broken journal reported clean ack")
	}
	for i := 0; sys.Health() != resilience.ReadOnly && i < 5; i++ {
		sys.Advance(victim, scenario.HappyPath[i+1], "owner", AdvanceOptions{})
	}
	if got := sys.Health(); got != resilience.ReadOnly {
		t.Fatalf("health after persistent failures = %v, want read-only", got)
	}
	if err := sys.AdmitMutation(); !errors.Is(err, resilience.ErrReadOnly) {
		t.Fatalf("gate in read-only mode = %v", err)
	}

	// Disk heals. No organic writes are admitted, so only the prober
	// can discover recovery; wait for it to walk the machine home.
	fault.failing.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for sys.Health() != resilience.Healthy {
		if time.Now().After(deadline) {
			t.Fatalf("probes never recovered the system; health = %v, report = %+v",
				sys.Health(), sys.HealthReport())
		}
		time.Sleep(time.Millisecond)
	}
	rep := sys.HealthReport()
	if rep.Probes.Attempts == 0 {
		t.Fatal("recovery happened without probes")
	}
	if rep.Health.ReadOnlyTotal != 1 || rep.Health.RecoveredTotal != 1 {
		t.Fatalf("health counters = %+v", rep.Health)
	}

	// Back to business: a clean, durable mutation.
	if _, err := sys.Advance(main, "internalreview", "owner", AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	sys.Runtime.WaitDispatch()

	// Kill (no Close) and restart without the fault seam: everything
	// cleanly acked must be there, and probe records must replay as
	// no-ops.
	sys2 := newSystem(t, restartOpts(dir, clock))
	sum, ok := sys2.InstanceSummary(main)
	if !ok || sum.Current != "internalreview" {
		t.Fatalf("main instance after restart = %+v (ok=%v), want internalreview", sum, ok)
	}
}

// TestKillUnderSheddingNoAckedWriteLost saturates admission control
// while mutations stream in over HTTP, kills the process, restarts,
// and proves the 200-acked advances are all there and the 429-shed
// ones never happened.
func TestKillUnderSheddingNoAckedWriteLost(t *testing.T) {
	dir := t.TempDir()
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	var depth atomic.Int64
	opts := restartOpts(dir, clock)
	opts.Resilience = ResilienceOptions{
		MaxQueueDepth: 4,
		DepthSignal:   func() int { return int(depth.Load()) },
	}
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.HTTPHandler())
	defer srv.Close()

	model := scenario.QualityPlan()
	if err := sys.DefineModel("", model); err != nil {
		t.Fatal(err)
	}
	const n = 8
	ids := make([]string, n)
	initial := make([]string, n)
	for i := range ids {
		page := fmt.Sprintf("D2.%d", i+1)
		if _, err := sys.Sims.Wiki.CreatePage(page, "owner", "x"); err != nil {
			t.Fatal(err)
		}
		snap, err := sys.Instantiate(model.URI,
			Ref{URI: "http://wiki.liquidpub.org/pages/" + page, Type: "mediawiki"}, "owner", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = snap.ID
		sum, _ := sys.InstanceSummary(snap.ID)
		initial[i] = sum.Current
	}

	// Alternate saturation on and off while advancing each instance
	// once: even requests are admitted and acked, odd ones shed 429.
	acked := make([]bool, n)
	for i, id := range ids {
		if i%2 == 0 {
			depth.Store(0)
		} else {
			depth.Store(100)
		}
		resp, err := http.Post(srv.URL+"/api/v1/instances/"+id+"/advance", "application/json",
			bytes.NewReader([]byte(`{"to":"elaboration","actor":"owner"}`)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			acked[i] = true
		case http.StatusTooManyRequests:
		default:
			t.Fatalf("advance %d: status %d", i, resp.StatusCode)
		}
	}
	sys.Runtime.WaitDispatch()
	ackCount := 0
	for _, a := range acked {
		if a {
			ackCount++
		}
	}
	if ackCount != n/2 {
		t.Fatalf("acked %d advances, want %d (shedding toggle broken)", ackCount, n/2)
	}

	// Kill (no Close) and restart: acked advances are durable, shed
	// ones left no trace.
	sys2 := newSystem(t, restartOpts(dir, clock))
	for i, id := range ids {
		sum, ok := sys2.InstanceSummary(id)
		if !ok {
			t.Fatalf("instance %d lost across restart", i)
		}
		if acked[i] && sum.Current != "elaboration" {
			t.Fatalf("instance %d: acked advance lost (current = %q)", i, sum.Current)
		}
		if !acked[i] && sum.Current != initial[i] {
			t.Fatalf("instance %d: shed advance applied anyway (current = %q)", i, sum.Current)
		}
	}
}

// TestWedgedEndpointBreakerIsolation registers two REST action
// endpoints — one wedged, one healthy — and proves the circuit opens
// on the wedged one, stops hammering it, and never slows dispatch to
// the healthy one.
func TestWedgedEndpointBreakerIsolation(t *testing.T) {
	var wedgedHits, healthyHits atomic.Int64
	release := make(chan struct{})
	wedged := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		wedgedHits.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	// LIFO: the handlers must unblock before Close can drain them.
	defer wedged.Close()
	defer close(release)
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		healthyHits.Add(1)
	}))
	defer healthy.Close()

	sys := newSystem(t, Options{Resilience: ResilienceOptions{
		InvokeTimeout:   100 * time.Millisecond,
		BreakerFailures: 2,
		BreakerCooldown: time.Hour,
	}})

	register := func(name, endpoint string) string {
		t.Helper()
		uri := "http://actions.test/" + name
		err := sys.RegisterAction("", actionlib.ActionType{URI: uri, Name: name},
			actionlib.Implementation{
				TypeURI:      uri,
				ResourceType: "mediawiki",
				Endpoint:     endpoint,
				Protocol:     actionlib.ProtocolREST,
			})
		if err != nil {
			t.Fatal(err)
		}
		return uri
	}
	wedgedURI := register("wedge", wedged.URL)
	healthyURI := register("fine", healthy.URL)

	mkModel := func(name, actionURI string) string {
		t.Helper()
		uri := "urn:test:models:" + name
		m := NewModel(uri, name).
			SuggestTypes("mediawiki").
			Phase("work", "Work").Action(actionURI, name).Done().
			FinalPhase("done", "Done").
			Initial("work").
			Chain("work", "done").
			MustBuild()
		if err := sys.DefineModel("", m); err != nil {
			t.Fatal(err)
		}
		return uri
	}
	wedgedModel := mkModel("wedged", wedgedURI)
	healthyModel := mkModel("healthy", healthyURI)

	instantiate := func(modelURI, page string) string {
		t.Helper()
		if _, err := sys.Sims.Wiki.CreatePage(page, "owner", "x"); err != nil {
			t.Fatal(err)
		}
		snap, err := sys.Instantiate(modelURI,
			Ref{URI: "http://wiki.liquidpub.org/pages/" + page, Type: "mediawiki"}, "owner", nil)
		if err != nil {
			t.Fatal(err)
		}
		return snap.ID
	}

	// Three instances hit the wedged endpoint. SyncActions dispatches
	// inline: the first two time out and trip the breaker, the third
	// fails fast without ever reaching the endpoint.
	for i := 0; i < 3; i++ {
		id := instantiate(wedgedModel, fmt.Sprintf("W%d", i))
		if _, err := sys.Advance(id, "work", "owner", AdvanceOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := wedgedHits.Load(); got != 2 {
		t.Fatalf("wedged endpoint saw %d calls, want 2 (third must fast-fail)", got)
	}
	rep := sys.HealthReport()
	if rep.BreakerOpens != 1 || rep.BreakerRejected == 0 {
		t.Fatalf("breaker counters = opens %d rejected %d", rep.BreakerOpens, rep.BreakerRejected)
	}
	if st := rep.Breakers[wedged.URL]; st.State != "open" {
		t.Fatalf("wedged breaker state = %q", st.State)
	}

	// Healthy-endpoint instances dispatch undisturbed — and fast: the
	// open circuit next door costs them nothing.
	start := time.Now()
	for i := 0; i < 4; i++ {
		id := instantiate(healthyModel, fmt.Sprintf("H%d", i))
		if _, err := sys.Advance(id, "work", "owner", AdvanceOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if got := healthyHits.Load(); got != 4 {
		t.Fatalf("healthy endpoint saw %d calls, want 4", got)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("healthy advances took %v: wedged endpoint leaked into the fast path", elapsed)
	}
	if st := sys.HealthReport().Breakers[healthy.URL]; st.State != "closed" {
		t.Fatalf("healthy breaker state = %q", st.State)
	}
}
