// Command geleebench regenerates every table and figure reproduction of
// DESIGN.md §4 and prints paper-claim vs measured-behavior rows — the
// source of EXPERIMENTS.md. Unlike `go test -bench`, which measures
// time, geleebench verifies the *behavioral* claims (who wins, what is
// allowed, what survives change) and reports wall-clock costs for the
// ablations.
//
// Usage:
//
//	geleebench [-experiment all|fig1|table1|table2|fig2|fig3|fig4|ablation|liquidpub|store|runtime|monitor|persist|segments|fold|overload|integrity|openloop]
//	           [-runtime-shards N]
//	           [-openloop-duration D] [-openloop-scale N] [-openloop-soak D]
//	           [-openloop-fixed] [-openloop-hot-rate R] [-openloop-advance-rate R]
//	           [-openloop-timeline-rate R] [-openloop-model-rate R]
//	           [-openloop-cockpit-rate R] [-openloop-tuning=false]
//
// The runtime experiment drives disjoint-instance token moves from a
// growing number of goroutines and compares indexed vs scan-based
// by-resource queries, then records the measured trajectory in
// BENCH_runtime.json next to the working directory. The monitor
// experiment measures the copy-free read path — summary-backed cockpit
// queries and summary-mode Advance vs their snapshot-backed baselines
// over a 2048-instance × 128-event population — and records the
// trajectory in BENCH_monitor.json. The fold experiment grows an
// execution log tenfold and compares per-compaction cost with the
// fold-by-reference archives against the legacy full-history rewrite,
// verifying reads stay byte-identical; trajectory in BENCH_fold.json.
// The overload experiment saturates admission control (shed cost and
// recovery), trips the read-only fallback with an injected journal
// fault (probe-driven recovery time), and wedges a REST action
// endpoint to measure circuit-breaker isolation: opens, fast-fail
// latency and the flat Advance latency of unaffected instances;
// results in BENCH_overload.json. The integrity experiment measures
// the durable-put cost of CRC-32C record framing against the legacy
// unframed format and the background scrubber's verification
// throughput, proving a flipped bit is detected; results in
// BENCH_integrity.json. The openloop experiment is the latency
// harness: arrivals are scheduled on a Poisson (or -openloop-fixed)
// clock decoupled from completions so queueing delay is measured
// rather than hidden (no coordinated omission), with log-linear
// histograms (p50/p99/p999/max) per operation class — advance,
// cockpit read, filtered cockpit read (?resource= pushed down to the
// secondary index), timeline page, model get — over a population
// seeded to -openloop-scale (default 1M, with memory-per-instance and
// index growth at each power-of-ten checkpoint), a cockpit A/B pitting
// the population index against the deprecated pre-index full scan, a
// read-cache on/off A/B on a hot wide model, an admission-watermark
// tuning sweep that grounds geleed's -max-queue-depth default, and an
// optional -openloop-soak mixed run; results in BENCH_openloop.json.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	runtimego "runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/liquidpub/gelee"
	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
	"github.com/liquidpub/gelee/internal/monitor"
	"github.com/liquidpub/gelee/internal/resilience"
	"github.com/liquidpub/gelee/internal/resource"
	rtpkg "github.com/liquidpub/gelee/internal/runtime"
	"github.com/liquidpub/gelee/internal/scenario"
	"github.com/liquidpub/gelee/internal/store"
	"github.com/liquidpub/gelee/internal/vclock"
	"github.com/liquidpub/gelee/internal/wfengine"
	"github.com/liquidpub/gelee/internal/xmlcodec"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment to run")
	flag.IntVar(&runtimeShards, "runtime-shards", 0, "runtime instance-table lock-stripe count for the runtime experiment (0 = default)")
	flag.Parse()

	experiments := []struct {
		id   string
		name string
		run  func() error
	}{
		{"fig1", "Fig. 1 — EU deliverable lifecycle", runFig1},
		{"table1", "Table I — lifecycle XML", runTable1},
		{"table2", "Table II — action type XML", runTable2},
		{"fig2", "Fig. 2 — hosted architecture round trip", runFig2},
		{"fig3", "Fig. 3 — designer action browse", runFig3},
		{"fig4", "Fig. 4 — execution widget", runFig4},
		{"ablation", "E7 — light coupling vs prescriptive engine", runAblation},
		{"liquidpub", "E8 — LiquidPub monitoring at scale", runLiquidPub},
		{"store", "E9 — group-commit journal vs per-append fsync", runStoreEngine},
		{"runtime", "E10 — runtime sharding: disjoint-advance scaling, indexed queries", runRuntimeSharding},
		{"monitor", "E11 — copy-free read path: summary-backed cockpit vs snapshot baseline", runMonitorReadPath},
		{"persist", "E12 — durable runtime: write-through overhead + replay throughput", runPersist},
		{"segments", "E13 — segmented journal: bounded restart replay via snapshot folding", runSegments},
		{"fold", "E14 — fold-by-reference archives: flat fold cost vs full-history rewrite", runFold},
		{"overload", "E15 — overload & failure engineering: shedding, read-only fallback, breaker isolation", runOverload},
		{"integrity", "E16 — journal integrity: CRC framing overhead + scrub throughput", runIntegrity},
		{"openloop", "E17 — open-loop latency: arrival-rate histograms, 1M-instance scaler, read-cache A/B", runOpenLoopExperiment},
	}
	ran := 0
	for _, e := range experiments {
		if *exp != "all" && *exp != e.id {
			continue
		}
		fmt.Printf("==== %s ====\n", e.name)
		if err := e.run(); err != nil {
			log.Fatalf("%s: %v", e.id, err)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func newSystem() (*gelee.System, error) {
	sys, err := gelee.New(gelee.Options{EmbeddedPlugins: true, SyncActions: true})
	if err != nil {
		return nil, err
	}
	if err := sys.DefineModel("", scenario.QualityPlan()); err != nil {
		return nil, err
	}
	return sys, nil
}

func bindings(reviewers string) map[string]map[string]string {
	return map[string]map[string]string{
		"http://www.liquidpub.org/a/notify": {"reviewers": reviewers},
		"http://www.liquidpub.org/a/post":   {"site": "project.liquidpub.org"},
	}
}

func runFig1() error {
	sys, err := newSystem()
	if err != nil {
		return err
	}
	defer sys.Close()
	sys.Sims.Wiki.CreatePage("D1.1", "unitn-lead", "= State of the Art =")
	ref := gelee.Ref{URI: "http://wiki.liquidpub.org/pages/D1.1", Type: "mediawiki"}
	snap, err := sys.Instantiate(scenario.QualityPlanURI, ref, "unitn-lead", bindings("epfl-reviewer,inria-reviewer"))
	if err != nil {
		return err
	}
	start := time.Now()
	for _, phase := range scenario.HappyPath {
		if _, err := sys.Advance(snap.ID, phase, "unitn-lead", gelee.AdvanceOptions{}); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	got, _ := sys.Instance(snap.ID)
	completed := 0
	for _, ex := range got.Executions {
		if ex.Terminal && ex.LastStatus == "completed" {
			completed++
		}
	}
	page, _ := sys.Sims.Wiki.Page("D1.1")
	fmt.Printf("paper: 5 phases + 2 terminal nodes, actions on entering each phase\n")
	fmt.Printf("measured: phases=%d finals=%d actions-executed=%d/%d state=%s watchers=%d protection=%s (%v)\n",
		len(got.Model.Phases), len(got.Model.FinalPhases()), completed, len(got.Executions),
		got.State, len(page.Watchers), page.Protection, elapsed.Round(time.Microsecond))
	return nil
}

func runTable1() error {
	m := scenario.QualityPlan()
	doc, err := xmlcodec.MarshalModel(m)
	if err != nil {
		return err
	}
	m2, err := xmlcodec.UnmarshalModel(doc)
	if err != nil {
		return err
	}
	fmt.Printf("paper: self-contained <process> XML (Table I vocabulary)\n")
	fmt.Printf("measured: document=%d bytes, round-trip fingerprint equal=%t\n",
		len(doc), m.Fingerprint() == m2.Fingerprint())
	start := time.Now()
	const iters = 2000
	for i := 0; i < iters; i++ {
		out, _ := xmlcodec.MarshalModel(m)
		if _, err := xmlcodec.UnmarshalModel(out); err != nil {
			return err
		}
	}
	fmt.Printf("measured: marshal+parse %v/doc\n", (time.Since(start) / iters).Round(time.Microsecond))
	return nil
}

func runTable2() error {
	at := gelee.ActionType{
		URI: "http://www.liquidpub.org/a/chr", Name: "Change Access Rights",
		Params: []gelee.Param{
			{ID: "mode", BindingTime: core.BindAny, Required: true},
			{ID: "note", BindingTime: core.BindCall},
		},
	}
	doc, err := xmlcodec.MarshalActionType(at)
	if err != nil {
		return err
	}
	at2, err := xmlcodec.UnmarshalActionType(doc)
	if err != nil {
		return err
	}
	mode, _ := at2.Param("mode")
	fmt.Printf("paper: <action_type> with bindingTime=[def|inst|call|any] required=[yes|no]\n")
	fmt.Printf("measured: document=%d bytes, mode bindingTime=%q required=%t preserved=%t\n",
		len(doc), mode.BindingTime, mode.Required, at2.Name == at.Name)
	return nil
}

func runFig2() error {
	sys, err := newSystem()
	if err != nil {
		return err
	}
	defer sys.Close()
	srv := httptest.NewServer(sys.HTTPHandler())
	defer srv.Close()
	sys.Sims.GDocs.Create("D2.1", "Requirements", "epfl-lead", "draft")

	start := time.Now()
	body, _ := json.Marshal(map[string]any{
		"model_uri": scenario.QualityPlanURI,
		"resource":  map[string]string{"uri": "http://docs.liquidpub.org/docs/D2.1", "type": "gdoc"},
		"owner":     "epfl-lead",
		"bindings":  bindings("unitn-reviewer"),
	})
	resp, err := http.Post(srv.URL+"/api/v1/instances", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var inst struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&inst)
	resp.Body.Close()
	steps := 0
	for _, phase := range scenario.HappyPath {
		b, _ := json.Marshal(map[string]any{"to": phase})
		resp, err := http.Post(srv.URL+"/api/v1/instances/"+inst.ID+"/advance", "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		resp.Body.Close()
		steps++
	}
	elapsed := time.Since(start)
	got, _ := sys.Instance(inst.ID)
	doc, _ := sys.Sims.GDocs.Get("D2.1")
	fmt.Printf("paper: three-layer hosted architecture, REST interface, action callbacks\n")
	fmt.Printf("measured: REST steps=%d state=%s doc-mode=%s exec-log-entries=%d (%v)\n",
		steps+1, got.State, doc.Mode, sys.ExecutionLog().Len(), elapsed.Round(time.Microsecond))
	return nil
}

func runFig3() error {
	sys, err := newSystem()
	if err != nil {
		return err
	}
	defer sys.Close()
	all := sys.ActionTypes("")
	fmt.Printf("paper: design time browses all actions; runtime shows only the resource's implemented ones\n")
	fmt.Printf("measured: design-time=%d types | runtime gdoc=%d mediawiki=%d svn=%d unknown=%d\n",
		len(all), len(sys.ActionTypes("gdoc")), len(sys.ActionTypes("mediawiki")),
		len(sys.ActionTypes("svn")), len(sys.ActionTypes("house")))
	return nil
}

func runFig4() error {
	sys, err := newSystem()
	if err != nil {
		return err
	}
	defer sys.Close()
	sys.Sims.Wiki.CreatePage("D1.1", "owner", "text")
	snap, err := sys.Instantiate(scenario.QualityPlanURI,
		gelee.Ref{URI: "http://wiki.liquidpub.org/pages/D1.1", Type: "mediawiki"}, "owner", bindings("r1"))
	if err != nil {
		return err
	}
	sys.Advance(snap.ID, "elaboration", "owner", gelee.AdvanceOptions{})
	html, err := sys.Widgets().HTML(snap.ID, "owner")
	if err != nil {
		return err
	}
	view, _ := sys.Widgets().View(snap.ID, "owner")
	feed, _ := sys.Widgets().Feed(snap.ID, "owner")
	fmt.Printf("paper: widget shows lifecycle and resource side by side; composable into pipes\n")
	fmt.Printf("measured: html=%d bytes phases=%d resource=%q suggested=%v feed=%d bytes\n",
		len(html), len(view.Phases), view.Resource.Title, view.NextSuggested, len(feed))
	return nil
}

func runAblation() error {
	const n = 35
	// Gelee side.
	sys, err := newSystem()
	if err != nil {
		return err
	}
	defer sys.Close()
	sys.Sims.Wiki.CreatePage("D1.1", "owner", "text")
	ref := gelee.Ref{URI: "http://wiki.liquidpub.org/pages/D1.1", Type: "mediawiki"}
	ids := make([]string, n)
	for i := range ids {
		snap, err := sys.Instantiate(scenario.QualityPlanURI, ref, "owner", bindings("r1"))
		if err != nil {
			return err
		}
		sys.Advance(snap.ID, "elaboration", "owner", gelee.AdvanceOptions{})
		ids[i] = snap.ID
	}
	start := time.Now()
	if _, err := sys.Advance(ids[0], "eureview", "owner", gelee.AdvanceOptions{Annotation: "deadline"}); err != nil {
		return err
	}
	geleeDeviation := time.Since(start)

	v2 := scenario.QualityPlan()
	v2.Phases = append(v2.Phases, &core.Phase{ID: "archival", Name: "Archival"})
	start = time.Now()
	proposed, err := sys.Propagate("", v2, "add archival")
	if err != nil {
		return err
	}
	for _, id := range ids {
		if _, err := sys.AcceptChange(id, "owner", ""); err != nil {
			return err
		}
	}
	geleeChange := time.Since(start)

	// Baseline side.
	eng := wfengine.New()
	def := wfengine.Definition{
		ID: "eu-deliverable", Initial: "elaboration",
		Final: map[string]bool{"accepted": true, "rejected": true},
		Next: map[string][]string{
			"elaboration":    {"internalreview"},
			"internalreview": {"elaboration", "finalassembly"},
			"finalassembly":  {"eureview"},
			"eureview":       {"publication", "finalassembly", "rejected"},
			"publication":    {"accepted"},
		},
	}
	if _, err := eng.Deploy(def); err != nil {
		return err
	}
	insts := make([]*wfengine.Instance, n)
	for i := range insts {
		in, _ := eng.Start("eu-deliverable")
		for _, s := range []string{"internalreview", "finalassembly", "eureview"} {
			eng.Complete(in.ID, s)
		}
		insts[i] = in
	}
	// The deviation is refused outright.
	devErr := eng.Complete(insts[0].ID, "publication") // allowed edge
	_ = devErr
	refused := eng.Complete(insts[1].ID, "elaboration") != nil

	// Achieving the deviation needs redeploy + migration of all N.
	withEdge := def
	withEdge.Next = map[string][]string{}
	for k, v := range def.Next {
		withEdge.Next[k] = append([]string(nil), v...)
	}
	withEdge.Next["eureview"] = append(withEdge.Next["eureview"], "elaboration")
	start = time.Now()
	rep, err := eng.Redeploy(withEdge)
	if err != nil {
		return err
	}
	baselineChange := time.Since(start)

	fmt.Printf("paper: descriptive model → deviations are one human act; migration reduces to state migration\n")
	fmt.Printf("measured (N=%d):\n", n)
	fmt.Printf("  gelee   deviation: 1 call, %v, other instances untouched\n", geleeDeviation.Round(time.Microsecond))
	fmt.Printf("  baseline deviation: refused=%t; requires redeploy touching all instances\n", refused)
	fmt.Printf("  gelee   model change: proposed to %d, owners accept individually, total %v\n", proposed, geleeChange.Round(time.Microsecond))
	fmt.Printf("  baseline model change: migrated=%d aborted=%d trace-steps-replayed=%d, %v\n",
		rep.Migrated, rep.Aborted, rep.Replayed, baselineChange.Round(time.Microsecond))
	return nil
}

func runLiquidPub() error {
	sys, err := newSystem()
	if err != nil {
		return err
	}
	defer sys.Close()
	model, deliverables := scenario.LiquidPub()
	_ = model
	for i, d := range deliverables {
		switch d.Ref.Type {
		case "mediawiki":
			sys.Sims.Wiki.CreatePage(lastSegment(d.Ref.URI), d.Owner, d.Title)
		case "gdoc":
			sys.Sims.GDocs.Create(lastSegment(d.Ref.URI), d.Title, d.Owner, "draft")
		case "svn":
			sys.Sims.SVN.CreateRepo(lastSegment(d.Ref.URI))
			sys.Sims.SVN.Commit(lastSegment(d.Ref.URI), d.Owner, "import")
		}
		snap, err := sys.Instantiate(scenario.QualityPlanURI, d.Ref, d.Owner, bindings(d.Reviewers))
		if err != nil {
			return err
		}
		for j := 0; j <= i%len(scenario.HappyPath); j++ {
			sys.Advance(snap.ID, scenario.HappyPath[j], d.Owner, gelee.AdvanceOptions{})
		}
	}
	start := time.Now()
	sum := sys.Monitor().Summarize()
	late := sys.Monitor().Late()
	elapsed := time.Since(start)
	fmt.Printf("paper: 35 deliverables, status at a glance, particular attention to delays\n")
	fmt.Printf("measured: total=%d active=%d completed=%d late=%d by-phase=%v (query %v)\n",
		sum.Total, sum.Active, sum.Completed, len(late), sum.ByPhase, elapsed.Round(time.Microsecond))
	return nil
}

// runStoreEngine measures the data-tier refactor: the same concurrent
// durable-write workload against the per-append-fsync baseline and the
// group-commit engine, reporting wall clock and engine counters.
func runStoreEngine() error {
	const writers, perWriter = 8, 50
	type result struct {
		elapsed time.Duration
		stats   store.Stats
	}
	run := func(opts store.Options) (result, error) {
		dir, err := os.MkdirTemp("", "gelee-bench-store-*")
		if err != nil {
			return result{}, err
		}
		defer os.RemoveAll(dir)
		st, err := store.Open(dir, opts)
		if err != nil {
			return result{}, err
		}
		repo := store.MustRepo[map[string]string](st, "bench")
		if err := st.Load(); err != nil {
			return result{}, err
		}
		val := map[string]string{"phase": "elaboration", "actor": "owner"}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					if err := repo.Put(fmt.Sprintf("w%d-k%d", w, i), val); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			st.Close()
			return result{}, err
		}
		elapsed := time.Since(start)
		stats := st.Stats()
		if err := st.Close(); err != nil {
			return result{}, err
		}
		return result{elapsed: elapsed, stats: stats}, nil
	}

	baseline, err := run(store.Options{SyncEveryAppend: true})
	if err != nil {
		return err
	}
	grouped, err := run(store.Options{Sync: true})
	if err != nil {
		return err
	}
	n := writers * perWriter
	fmt.Printf("workload: %d goroutines x %d durable puts = %d entries\n", writers, perWriter, n)
	fmt.Printf("  per-append fsync: %v (%d fsyncs, %d batches)\n",
		baseline.elapsed.Round(time.Microsecond), baseline.stats.Engine.Syncs, baseline.stats.Engine.Batches)
	fmt.Printf("  group commit:     %v (%d fsyncs, %d batches, max batch %d)\n",
		grouped.elapsed.Round(time.Microsecond), grouped.stats.Engine.Syncs, grouped.stats.Engine.Batches,
		grouped.stats.Engine.MaxBatch)
	if grouped.elapsed > 0 {
		fmt.Printf("  speedup: %.1fx\n", float64(baseline.elapsed)/float64(grouped.elapsed))
	}
	return nil
}

func lastSegment(uri string) string {
	for i := len(uri) - 1; i >= 0; i-- {
		if uri[i] == '/' || uri[i] == ':' {
			return uri[i+1:]
		}
	}
	return uri
}

// runtimeShards is the -runtime-shards flag value used by the runtime
// experiment.
var runtimeShards int

// runRuntimeSharding measures the runtime-sharding refactor on the
// bare runtime (no HTTP, no journal): throughput of token moves on
// disjoint instances as goroutines grow, and indexed vs scan-based
// by-resource queries. Results go to stdout and BENCH_runtime.json —
// the perf trajectory the CI bench smoke keeps compiling.
func runRuntimeSharding() error {
	model := scenario.QualityPlan()
	newRuntime := func() (*rtpkg.Runtime, error) {
		return rtpkg.New(rtpkg.Config{
			Registry:    actionlib.NewRegistry(),
			SyncActions: true,
			Shards:      runtimeShards,
		})
	}
	newInstance := func(rt *rtpkg.Runtime, n int64) (string, error) {
		ref := resource.Ref{URI: fmt.Sprintf("urn:bench:res-%d", n), Type: "mediawiki"}
		snap, err := rt.Instantiate(model, ref, "owner", nil)
		if err != nil {
			return "", err
		}
		return snap.ID, nil
	}

	type point struct {
		Goroutines int     `json:"goroutines"`
		Moves      int     `json:"moves"`
		NsPerOp    int64   `json:"ns_per_op"`
		OpsPerSec  float64 `json:"ops_per_sec"`
	}
	const movesPerG = 10000
	var points []point
	var next atomic.Int64
	for _, g := range []int{1, 2, 4, 8} {
		rt, err := newRuntime()
		if err != nil {
			return err
		}
		var wg sync.WaitGroup
		errs := make(chan error, g)
		start := time.Now()
		for i := 0; i < g; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				id, err := newInstance(rt, next.Add(1))
				if err != nil {
					errs <- err
					return
				}
				for j := 0; j < movesPerG; j++ {
					// Fresh instance every 256 moves: steady
					// short-history cost, like the Go benchmarks.
					if j%256 == 255 {
						if id, err = newInstance(rt, next.Add(1)); err != nil {
							errs <- err
							return
						}
					}
					if _, err := rt.Advance(id, "elaboration", "owner", rtpkg.AdvanceOptions{}); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return err
		}
		elapsed := time.Since(start)
		moves := g * movesPerG
		points = append(points, point{
			Goroutines: g,
			Moves:      moves,
			NsPerOp:    elapsed.Nanoseconds() / int64(moves),
			OpsPerSec:  float64(moves) / elapsed.Seconds(),
		})
	}

	// Query ablation: the same by-resource question answered from the
	// secondary index vs a full-population scan over snapshots (what
	// the pre-sharding runtime did).
	rt, err := newRuntime()
	if err != nil {
		return err
	}
	const uris, perURI = 256, 8
	for i := 0; i < uris*perURI; i++ {
		ref := resource.Ref{URI: fmt.Sprintf("urn:bench:res-%d", i%uris), Type: "mediawiki"}
		if _, err := rt.Instantiate(model, ref, "owner", nil); err != nil {
			return err
		}
	}
	const indexedIters = 2000
	start := time.Now()
	for i := 0; i < indexedIters; i++ {
		if got := rt.ByResource(fmt.Sprintf("urn:bench:res-%d", i%uris)); len(got) != perURI {
			return fmt.Errorf("indexed ByResource returned %d, want %d", len(got), perURI)
		}
	}
	indexedNs := time.Since(start).Nanoseconds() / indexedIters
	const scanIters = 50
	start = time.Now()
	for i := 0; i < scanIters; i++ {
		uri := fmt.Sprintf("urn:bench:res-%d", i%uris)
		n := 0
		for _, snap := range rt.Instances() {
			if snap.Resource.URI == uri {
				n++
			}
		}
		if n != perURI {
			return fmt.Errorf("scan found %d, want %d", n, perURI)
		}
	}
	scanNs := time.Since(start).Nanoseconds() / scanIters
	stats := rt.RuntimeStats()

	report := struct {
		Experiment       string      `json:"experiment"`
		RuntimeShards    int         `json:"runtime_shards"`
		GOMAXPROCS       int         `json:"gomaxprocs"`
		ParallelAdvance  []point     `json:"parallel_advance"`
		ByResourceIdxNs  int64       `json:"by_resource_indexed_ns"`
		ByResourceScanNs int64       `json:"by_resource_scan_ns"`
		Stats            rtpkg.Stats `json:"runtime_stats"`
	}{
		Experiment:       "runtime-sharding",
		RuntimeShards:    stats.Shards,
		GOMAXPROCS:       gomaxprocs(),
		ParallelAdvance:  points,
		ByResourceIdxNs:  indexedNs,
		ByResourceScanNs: scanNs,
		Stats:            stats,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_runtime.json", append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("paper: hosted service, thousands of instances advanced by independent humans\n")
	fmt.Printf("measured (shards=%d, GOMAXPROCS=%d):\n", stats.Shards, report.GOMAXPROCS)
	for _, p := range points {
		fmt.Printf("  advance x%d goroutines: %d ns/op (%.0f ops/s)\n", p.Goroutines, p.NsPerOp, p.OpsPerSec)
	}
	fmt.Printf("  by-resource: indexed %d ns/op vs scan %d ns/op (%.0fx)\n",
		indexedNs, scanNs, float64(scanNs)/float64(indexedNs))
	fmt.Printf("  wrote BENCH_runtime.json\n")
	return nil
}

func gomaxprocs() int { return runtimego.GOMAXPROCS(0) }

// measure runs fn iters times and reports mean wall clock and mean
// bytes allocated per call (TotalAlloc delta — a bytes-copied proxy;
// single-goroutine, so the delta is fn's own).
func measure(iters int, fn func()) (nsPerOp, bytesPerOp int64) {
	var before, after runtimego.MemStats
	runtimego.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtimego.ReadMemStats(&after)
	return elapsed.Nanoseconds() / int64(iters),
		int64(after.TotalAlloc-before.TotalAlloc) / int64(iters)
}

// modePoint is one measured read-path mode.
type modePoint struct {
	NsPerOp    int64 `json:"ns_per_op"`
	BytesPerOp int64 `json:"bytes_per_op"`
}

// comparison pairs the snapshot-backed baseline with the summary-backed
// path for one query.
type comparison struct {
	Snapshot   modePoint `json:"snapshot_baseline"`
	Summary    modePoint `json:"summary_backed"`
	Speedup    float64   `json:"speedup"`
	BytesRatio float64   `json:"bytes_ratio"`
}

func compare(snapIters, sumIters int, snap, sum func()) comparison {
	var c comparison
	c.Snapshot.NsPerOp, c.Snapshot.BytesPerOp = measure(snapIters, snap)
	c.Summary.NsPerOp, c.Summary.BytesPerOp = measure(sumIters, sum)
	if c.Summary.NsPerOp > 0 {
		c.Speedup = float64(c.Snapshot.NsPerOp) / float64(c.Summary.NsPerOp)
	}
	if c.Summary.BytesPerOp > 0 {
		c.BytesRatio = float64(c.Snapshot.BytesPerOp) / float64(c.Summary.BytesPerOp)
	}
	return c
}

// runMonitorReadPath measures the copy-free read path over the ISSUE's
// reference population — 2048 instances × 128 events each — comparing
// the summary-backed cockpit (incremental counters, no history copy)
// against the snapshot-backed baseline the monitor used before, and
// snapshot-returning Advance against summary-mode Advance. The
// baselines below replicate the pre-rewrite cockpit: deep-copy every
// instance, then rescan events and executions per query.
func runMonitorReadPath() error {
	const population = 2048
	const eventsPerInstance = 128

	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	rt, err := rtpkg.New(rtpkg.Config{
		Registry:    actionlib.NewRegistry(),
		Clock:       clock,
		SyncActions: true,
	})
	if err != nil {
		return err
	}
	model := scenario.QualityPlan()
	ids := make([]string, population)
	for i := range ids {
		ref := resource.Ref{URI: fmt.Sprintf("urn:bench:res-%d", i), Type: "mediawiki"}
		snap, err := rt.Instantiate(model, ref, "owner", nil)
		if err != nil {
			return err
		}
		ids[i] = snap.ID
		// created + phase-entered, then annotations up to the target
		// history length: the cheapest way to a realistic event count.
		if _, err := rt.Advance(snap.ID, "elaboration", "owner", rtpkg.AdvanceOptions{}); err != nil {
			return err
		}
		for e := 2; e < eventsPerInstance; e++ {
			if err := rt.Annotate(snap.ID, "owner", "progress note"); err != nil {
				return err
			}
		}
	}
	// Day 41: elaboration (due day 30) is overdue, so Late has real work.
	clock.Advance(41 * 24 * time.Hour)
	mon := monitor.New(rt, clock)

	report := struct {
		Experiment        string      `json:"experiment"`
		Population        int         `json:"population"`
		EventsPerInstance int         `json:"events_per_instance"`
		Summarize         comparison  `json:"summarize"`
		Late              comparison  `json:"late"`
		Overview          comparison  `json:"overview"`
		Advance           comparison  `json:"advance"`
		Stats             rtpkg.Stats `json:"runtime_stats"`
	}{
		Experiment:        "monitor-readpath",
		Population:        rt.Count(),
		EventsPerInstance: eventsPerInstance,
	}

	now := clock.Now()
	report.Summarize = compare(10, 200,
		func() { snapshotSummarize(rt, now) },
		func() { mon.Summarize() })
	report.Late = compare(10, 200,
		func() { snapshotLate(rt, now) },
		func() { mon.Late() })
	report.Overview = compare(10, 200,
		func() { snapshotOverview(rt, now) },
		func() { mon.Overview() })

	// Advance response modes, round-robin over the population so each
	// instance's history stays ≈128 events across the measurement.
	i := 0
	report.Advance = compare(2048, 2048,
		func() {
			if _, err := rt.Advance(ids[i%population], "elaboration", "owner", rtpkg.AdvanceOptions{}); err != nil {
				panic(err)
			}
			i++
		},
		func() {
			if _, err := rt.AdvanceSummary(ids[i%population], "elaboration", "owner", rtpkg.AdvanceOptions{}); err != nil {
				panic(err)
			}
			i++
		})
	report.Stats = rt.RuntimeStats()

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_monitor.json", append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("paper: \"a picture of the status of the lifecycle for each artifact at any given point in time\" (§II.B.4)\n")
	fmt.Printf("measured (population=%d, ~%d events/instance):\n", report.Population, eventsPerInstance)
	row := func(name string, c comparison) {
		fmt.Printf("  %-10s snapshot %8.2fms %8.1fKB/op | summary %8.3fms %8.1fKB/op | %5.1fx faster, %6.1fx fewer bytes\n",
			name,
			float64(c.Snapshot.NsPerOp)/1e6, float64(c.Snapshot.BytesPerOp)/1024,
			float64(c.Summary.NsPerOp)/1e6, float64(c.Summary.BytesPerOp)/1024,
			c.Speedup, c.BytesRatio)
	}
	row("summarize", report.Summarize)
	row("late", report.Late)
	row("overview", report.Overview)
	fmt.Printf("  advance    snapshot %8dns %8.1fKB/op | summary %8dns %8.1fKB/op | %5.1fx faster, %6.1fx fewer bytes\n",
		report.Advance.Snapshot.NsPerOp, float64(report.Advance.Snapshot.BytesPerOp)/1024,
		report.Advance.Summary.NsPerOp, float64(report.Advance.Summary.BytesPerOp)/1024,
		report.Advance.Speedup, report.Advance.BytesRatio)
	fmt.Printf("  wrote BENCH_monitor.json\n")
	return nil
}

// runPersist measures the durable-runtime refactor: the write-through
// overhead of journaling every token move (the acceptance bar is ≤2x
// over the RAM-only advance path under a concurrent workload, where
// group commit amortizes the append), and the replay throughput of
// rebuilding the whole runtime from the journal on restart. Results go
// to stdout and BENCH_persist.json.
func runPersist() error {
	const goroutines, movesPerG = 8, 2000
	model := scenario.QualityPlan()

	// workload drives disjoint-instance token moves from `goroutines`
	// goroutines against rt, returning ns per advance.
	workload := func(rt *rtpkg.Runtime) (int64, error) {
		var next atomic.Int64
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		start := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				newInst := func() (string, error) {
					ref := resource.Ref{URI: fmt.Sprintf("urn:persist:res-%d", next.Add(1)), Type: "mediawiki"}
					snap, err := rt.Instantiate(model, ref, "owner", nil)
					if err != nil {
						return "", err
					}
					return snap.ID, nil
				}
				id, err := newInst()
				if err != nil {
					errs <- err
					return
				}
				for j := 0; j < movesPerG; j++ {
					if j%256 == 255 {
						if id, err = newInst(); err != nil {
							errs <- err
							return
						}
					}
					if _, err := rt.AdvanceSummary(id, "elaboration", "owner", rtpkg.AdvanceOptions{}); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return 0, err
		}
		return time.Since(start).Nanoseconds() / int64(goroutines*movesPerG), nil
	}

	newRuntime := func(sink rtpkg.Journal) (*rtpkg.Runtime, error) {
		return rtpkg.New(rtpkg.Config{
			Registry:    actionlib.NewRegistry(),
			SyncActions: true,
			Journal:     sink,
		})
	}

	// Baseline: RAM-only advances.
	ramRT, err := newRuntime(nil)
	if err != nil {
		return err
	}
	ramNs, err := workload(ramRT)
	if err != nil {
		return err
	}

	// Write-through: every mutation journaled through the instance
	// collection's group-commit engine before it is acknowledged.
	dir, err := os.MkdirTemp("", "gelee-bench-persist-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	coll, err := store.OpenInstances(dir, store.InstancesOptions{})
	if err != nil {
		return err
	}
	sink := rtpkg.JournalFunc(func(rec *rtpkg.JournalRecord) error {
		data, err := rec.Encode()
		if err != nil {
			return err
		}
		return coll.Append(rec.Instance, data)
	})
	persistRT, err := newRuntime(sink)
	if err != nil {
		return err
	}
	if err := coll.Replay(persistRT.ApplyJournal); err != nil {
		return err
	}
	persistNs, err := workload(persistRT)
	if err != nil {
		return err
	}
	engineStats := coll.Stats()
	population := persistRT.Count()
	if err := coll.Close(); err != nil {
		return err
	}

	// Replay: reopen the journal into a fresh runtime and measure the
	// rebuild — what a geleed restart pays before serving.
	coll2, err := store.OpenInstances(dir, store.InstancesOptions{})
	if err != nil {
		return err
	}
	defer coll2.Close()
	recoveredRT, err := newRuntime(nil)
	if err != nil {
		return err
	}
	replayStart := time.Now()
	if err := coll2.Replay(recoveredRT.ApplyJournal); err != nil {
		return err
	}
	rec := recoveredRT.FinishRecovery()
	replayNs := time.Since(replayStart).Nanoseconds()
	if rec.Instances != population {
		return fmt.Errorf("replay recovered %d instances, want %d", rec.Instances, population)
	}

	overhead := float64(persistNs) / float64(ramNs)
	recPerSec := float64(rec.Records) / (float64(replayNs) / 1e9)
	report := struct {
		Experiment    string              `json:"experiment"`
		Goroutines    int                 `json:"goroutines"`
		Moves         int                 `json:"moves"`
		GOMAXPROCS    int                 `json:"gomaxprocs"`
		RAMAdvanceNs  int64               `json:"ram_advance_ns"`
		PersistNs     int64               `json:"persist_advance_ns"`
		Overhead      float64             `json:"write_through_overhead"`
		Engine        store.EngineStats   `json:"instance_engine"`
		Replay        rtpkg.RecoveryStats `json:"replay"`
		ReplayNs      int64               `json:"replay_ns"`
		RecordsPerSec float64             `json:"replay_records_per_sec"`
	}{
		Experiment:    "persist",
		Goroutines:    goroutines,
		Moves:         goroutines * movesPerG,
		GOMAXPROCS:    gomaxprocs(),
		RAMAdvanceNs:  ramNs,
		PersistNs:     persistNs,
		Overhead:      overhead,
		Engine:        engineStats,
		Replay:        rec,
		ReplayNs:      replayNs,
		RecordsPerSec: recPerSec,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_persist.json", append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("paper: a hosted service must not lose token positions on restart (durable repositories, Fig. 2)\n")
	fmt.Printf("measured (x%d goroutines, %d moves, GOMAXPROCS=%d):\n", goroutines, report.Moves, report.GOMAXPROCS)
	fmt.Printf("  advance RAM-only:      %6d ns/op\n", ramNs)
	fmt.Printf("  advance write-through: %6d ns/op (%.2fx overhead; %d records in %d batches, mean batch %.1f)\n",
		persistNs, overhead, engineStats.Appends, engineStats.Batches,
		float64(engineStats.Appends)/float64(max64(engineStats.Batches, 1)))
	fmt.Printf("  replay: %d instances, %d events, %d executions from %d records in %v (%.0f records/s)\n",
		rec.Instances, rec.Events, rec.Executions, rec.Records,
		time.Duration(replayNs).Round(time.Microsecond), recPerSec)
	fmt.Printf("  wrote BENCH_persist.json\n")
	return nil
}

// runSegments measures what segment rotation + snapshot folding buys:
// restart replay cost as history grows, with and without folding. The
// same workload — a fixed population advanced round after round — runs
// against two instance journals with identical segment rotation; one
// folds sealed segments into per-instance snapshot records after each
// round, the other lets them accumulate (the pre-folding behavior).
// Without folding the records replayed on restart grow linearly with
// total history; with folding they stay bounded at roughly the live
// population plus the unfolded tail. Results go to stdout and
// BENCH_segments.json.
func runSegments() error {
	const (
		population    = 64
		movesPerRound = 2000
		rounds        = 6
		segmentMax    = 64 << 10
	)
	model := scenario.QualityPlan()

	type point struct {
		Round        int   `json:"round"`
		TotalRecords int64 `json:"total_records"` // cumulative history ever journaled
		Replayed     int64 `json:"replayed"`      // records streamed on restart
		Snapshot     int   `json:"snapshot_entries"`
		Tail         int   `json:"tail_entries"`
		Skipped      int   `json:"skipped_entries"`
		ReplayNs     int64 `json:"replay_ns"`
	}

	run := func(fold bool) ([]point, error) {
		dir, err := os.MkdirTemp("", "gelee-bench-segments-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		var points []point
		var total int64
		for round := 0; round < rounds; round++ {
			coll, err := store.OpenInstances(dir, store.InstancesOptions{SegmentMaxBytes: segmentMax})
			if err != nil {
				return nil, err
			}
			sink := rtpkg.JournalFunc(func(rec *rtpkg.JournalRecord) error {
				data, err := rec.Encode()
				if err != nil {
					return err
				}
				return coll.Append(rec.Instance, data)
			})
			rt, err := rtpkg.New(rtpkg.Config{
				Registry:    actionlib.NewRegistry(),
				SyncActions: true,
				Journal:     sink,
			})
			if err != nil {
				return nil, err
			}
			replayStart := time.Now()
			if err := coll.ReplayParallel(gomaxprocs(), rt.ApplyJournal); err != nil {
				return nil, err
			}
			replayNs := time.Since(replayStart).Nanoseconds()
			rec := rt.FinishRecovery()
			rs := coll.ReplayStats()
			if round > 0 {
				if rec.Instances != population {
					return nil, fmt.Errorf("round %d recovered %d instances, want %d", round, rec.Instances, population)
				}
				points = append(points, point{
					Round:        round,
					TotalRecords: total,
					Replayed:     rec.Records,
					Snapshot:     rs.SnapshotEntries,
					Tail:         rs.TailEntries,
					Skipped:      rs.SkippedEntries,
					ReplayNs:     replayNs,
				})
			}

			var ids []string
			if round == 0 {
				for i := 0; i < population; i++ {
					ref := resource.Ref{URI: fmt.Sprintf("urn:seg:res-%d", i), Type: "mediawiki"}
					snap, err := rt.Instantiate(model, ref, "owner", nil)
					if err != nil {
						return nil, err
					}
					ids = append(ids, snap.ID)
					total++
				}
			} else {
				for _, sum := range rt.Summaries() {
					ids = append(ids, sum.ID)
				}
			}
			for i := 0; i < movesPerRound; i++ {
				if _, err := rt.AdvanceSummary(ids[i%population], "elaboration", "owner", rtpkg.AdvanceOptions{}); err != nil {
					return nil, err
				}
				total++
			}
			if fold {
				coll.SetSnapshotSource(rt.EmitSnapshots)
				if err := coll.Compact(); err != nil {
					return nil, err
				}
			}
			if err := coll.Close(); err != nil {
				return nil, err
			}
		}
		return points, nil
	}

	folded, err := run(true)
	if err != nil {
		return err
	}
	unfolded, err := run(false)
	if err != nil {
		return err
	}

	report := struct {
		Experiment    string  `json:"experiment"`
		Population    int     `json:"population"`
		MovesPerRound int     `json:"moves_per_round"`
		SegmentBytes  int     `json:"segment_max_bytes"`
		GOMAXPROCS    int     `json:"gomaxprocs"`
		Folded        []point `json:"folded"`
		Unfolded      []point `json:"unfolded"`
	}{
		Experiment:    "segments",
		Population:    population,
		MovesPerRound: movesPerRound,
		SegmentBytes:  segmentMax,
		GOMAXPROCS:    gomaxprocs(),
		Folded:        folded,
		Unfolded:      unfolded,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_segments.json", append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("paper: a hosted service must restart fast no matter how much history it has accumulated\n")
	fmt.Printf("measured (%d instances, %d moves/round, %d-byte segments):\n", population, movesPerRound, segmentMax)
	fmt.Printf("  %-6s %14s | folded %9s %8s | unfolded %9s %8s\n",
		"round", "total records", "replayed", "ms", "replayed", "ms")
	for i := range folded {
		f, u := folded[i], unfolded[i]
		fmt.Printf("  %-6d %14d | %16d %8.1f | %18d %8.1f\n",
			f.Round, u.TotalRecords, f.Replayed, float64(f.ReplayNs)/1e6, u.Replayed, float64(u.ReplayNs)/1e6)
	}
	if n := len(folded); n >= 2 {
		fmt.Printf("  folded replay bounded: %d -> %d records; unfolded grew %d -> %d\n",
			folded[0].Replayed, folded[n-1].Replayed, unfolded[0].Replayed, unfolded[n-1].Replayed)
	}
	fmt.Printf("  wrote BENCH_segments.json\n")
	return nil
}

// runFold measures what fold-by-reference archives buy: the cost of a
// compaction as log history grows tenfold. The same workload — rounds
// of execution-log appends, each followed by Compact — runs against
// two stores; one keeps a small live window and spills older history
// into archives carried by reference, the other (LogLiveWindow < 0)
// rewrites the full log into every snapshot, the pre-archive behavior.
// With archives each fold writes O(live window + one round of spill),
// flat as history grows; the legacy rewrite grows linearly. Reads must
// not notice: the full log and a cursor page-walk are verified
// byte-identical before close and after reopen. Results go to stdout
// and BENCH_fold.json.
func runFold() error {
	const (
		rounds     = 10
		perRound   = 2000
		instances  = 64
		liveWindow = 500
	)

	type point struct {
		Round           int    `json:"round"`
		TotalEntries    int    `json:"total_entries"`
		FoldNs          int64  `json:"fold_ns"`
		FoldBytes       uint64 `json:"fold_bytes"`
		SnapshotEntries int64  `json:"snapshot_entries"`
		SnapshotBytes   int64  `json:"snapshot_bytes"`
		Archives        int64  `json:"archives"`
		ArchiveBytes    int64  `json:"archive_bytes"`
	}
	type series struct {
		Points       []point `json:"points"`
		ReplayedOpen int     `json:"replayed_on_reopen"` // snapshot + tail entries streamed
		ArchiveRefs  int     `json:"archive_refs_on_reopen"`
		ReadsEqual   bool    `json:"reads_byte_identical"`
	}

	// fullJSON renders the whole log — All() stitched cold-then-live —
	// so two states can be compared bytewise.
	fullJSON := func(lg *store.Log) ([]byte, error) {
		return json.Marshal(lg.All())
	}
	// pageJSON walks the same history through the cursor API in
	// 333-entry pages — the cockpit's read path over unbounded history.
	pageJSON := func(lg *store.Log) ([]byte, error) {
		var all []store.LogEntry
		after := uint64(0)
		for {
			page, err := lg.Page(after, 333)
			if err != nil {
				return nil, err
			}
			if len(page) == 0 {
				break
			}
			all = append(all, page...)
			after = page[len(page)-1].Seq
		}
		return json.Marshal(all)
	}

	run := func(window int) (series, error) {
		var ser series
		dir, err := os.MkdirTemp("", "gelee-bench-fold-*")
		if err != nil {
			return ser, err
		}
		defer os.RemoveAll(dir)
		opts := store.Options{LogLiveWindow: window}
		st, err := store.Open(dir, opts)
		if err != nil {
			return ser, err
		}
		lg := store.MustLog(st, "execlog")
		if err := st.Load(); err != nil {
			return ser, err
		}
		total := 0
		for round := 1; round <= rounds; round++ {
			for i := 0; i < perRound; i++ {
				_, err := lg.Append(store.LogEntry{
					Instance: fmt.Sprintf("inst-%d", i%instances),
					Kind:     "phase-entered",
					Actor:    "owner",
					Detail:   fmt.Sprintf("round %d move %d", round, i),
				})
				if err != nil {
					st.Close()
					return ser, err
				}
				total++
			}
			before := st.Stats().Engine.FoldBytesWritten
			start := time.Now()
			if err := st.Compact(); err != nil {
				st.Close()
				return ser, err
			}
			foldNs := time.Since(start).Nanoseconds()
			est := st.Stats().Engine
			ser.Points = append(ser.Points, point{
				Round:           round,
				TotalEntries:    total,
				FoldNs:          foldNs,
				FoldBytes:       est.FoldBytesWritten - before,
				SnapshotEntries: est.SnapshotEntries,
				SnapshotBytes:   est.SnapshotBytes,
				Archives:        est.Archives,
				ArchiveBytes:    est.ArchiveBytes,
			})
		}

		// History must read back byte-identical: full stitched log and
		// cursor page-walk, before close and after a restart replay.
		beforeAll, err := fullJSON(lg)
		if err != nil {
			st.Close()
			return ser, err
		}
		beforePages, err := pageJSON(lg)
		if err != nil {
			st.Close()
			return ser, err
		}
		if err := st.Close(); err != nil {
			return ser, err
		}
		st2, err := store.Open(dir, opts)
		if err != nil {
			return ser, err
		}
		defer st2.Close()
		lg2 := store.MustLog(st2, "execlog")
		if err := st2.Load(); err != nil {
			return ser, err
		}
		rs := st2.Stats().Engine.Replay
		ser.ReplayedOpen = rs.SnapshotEntries + rs.TailEntries
		ser.ArchiveRefs = rs.ArchiveRefs
		afterAll, err := fullJSON(lg2)
		if err != nil {
			return ser, err
		}
		afterPages, err := pageJSON(lg2)
		if err != nil {
			return ser, err
		}
		ser.ReadsEqual = bytes.Equal(beforeAll, afterAll) &&
			bytes.Equal(beforeAll, beforePages) && bytes.Equal(beforeAll, afterPages)
		if lg2.Len() != total {
			return ser, fmt.Errorf("reopened log has %d entries, want %d", lg2.Len(), total)
		}
		if !ser.ReadsEqual {
			return ser, fmt.Errorf("log reads diverged across archiving/reopen")
		}
		return ser, nil
	}

	archived, err := run(liveWindow)
	if err != nil {
		return err
	}
	legacy, err := run(-1)
	if err != nil {
		return err
	}

	// Cost growth over a 10x history: last fold vs first fold. The
	// archived series must stay flat (≤1.5x is the acceptance bar);
	// the legacy rewrite grows with total history.
	growth := func(s series) (bytesX, timeX float64) {
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if first.FoldBytes > 0 {
			bytesX = float64(last.FoldBytes) / float64(first.FoldBytes)
		}
		if first.FoldNs > 0 {
			timeX = float64(last.FoldNs) / float64(first.FoldNs)
		}
		return
	}
	archBytesX, archTimeX := growth(archived)
	legBytesX, legTimeX := growth(legacy)

	report := struct {
		Experiment     string  `json:"experiment"`
		Rounds         int     `json:"rounds"`
		PerRound       int     `json:"entries_per_round"`
		LiveWindow     int     `json:"live_window"`
		Archived       series  `json:"archived"`
		Legacy         series  `json:"legacy"`
		ArchivedBytesX float64 `json:"archived_fold_bytes_growth"`
		ArchivedTimeX  float64 `json:"archived_fold_time_growth"`
		LegacyBytesX   float64 `json:"legacy_fold_bytes_growth"`
		LegacyTimeX    float64 `json:"legacy_fold_time_growth"`
	}{
		Experiment:     "fold",
		Rounds:         rounds,
		PerRound:       perRound,
		LiveWindow:     liveWindow,
		Archived:       archived,
		Legacy:         legacy,
		ArchivedBytesX: archBytesX,
		ArchivedTimeX:  archTimeX,
		LegacyBytesX:   legBytesX,
		LegacyTimeX:    legTimeX,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_fold.json", append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("paper: the execution log is the permanent audit trail — compaction must not slow down as it grows\n")
	fmt.Printf("measured (%d rounds x %d log appends, live window %d):\n", rounds, perRound, liveWindow)
	fmt.Printf("  %-6s %8s | archived %9s %9s %5s | legacy %9s %9s\n",
		"round", "entries", "fold KB", "ms", "archs", "fold KB", "ms")
	for i := range archived.Points {
		a, l := archived.Points[i], legacy.Points[i]
		fmt.Printf("  %-6d %8d | %17.1f %9.2f %5d | %15.1f %9.2f\n",
			a.Round, a.TotalEntries,
			float64(a.FoldBytes)/1024, float64(a.FoldNs)/1e6, a.Archives,
			float64(l.FoldBytes)/1024, float64(l.FoldNs)/1e6)
	}
	fmt.Printf("  fold bytes growth over 10x history: archived %.2fx vs legacy %.2fx (bar: <=1.5x)\n", archBytesX, legBytesX)
	fmt.Printf("  fold time  growth over 10x history: archived %.2fx vs legacy %.2fx\n", archTimeX, legTimeX)
	fmt.Printf("  reopen replay: archived %d entries + %d refs vs legacy %d entries; reads byte-identical: %t/%t\n",
		archived.ReplayedOpen, archived.ArchiveRefs, legacy.ReplayedOpen,
		archived.ReadsEqual, legacy.ReadsEqual)
	fmt.Printf("  wrote BENCH_fold.json\n")
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// ---- snapshot-backed cockpit baselines (the pre-rewrite algorithms) ----

func snapshotLateRow(s rtpkg.Snapshot, now time.Time) (deviations, failed, pending int) {
	for _, ev := range s.Events {
		if ev.Kind == rtpkg.EventPhaseEntered && ev.Deviation {
			deviations++
		}
	}
	for _, ex := range s.Executions {
		switch {
		case ex.Terminal && ex.LastStatus == "failed":
			failed++
		case !ex.Terminal:
			pending++
		}
	}
	return
}

func snapshotSummarize(rt *rtpkg.Runtime, now time.Time) (total, late, deviations, failed int) {
	byPhase := make(map[string]int)
	for _, s := range rt.Instances() {
		total++
		if p := s.CurrentPhase(); p != nil {
			byPhase[p.Name]++
		}
		if s.Late(now) {
			late++
		}
		d, f, _ := snapshotLateRow(s, now)
		deviations += d
		failed += f
	}
	return
}

func snapshotLate(rt *rtpkg.Runtime, now time.Time) int {
	n := 0
	for _, s := range rt.Instances() {
		if s.Late(now) {
			d, f, p := snapshotLateRow(s, now)
			_, _, _ = d, f, p
			n++
		}
	}
	return n
}

func snapshotOverview(rt *rtpkg.Runtime, now time.Time) int {
	n := 0
	for _, s := range rt.Instances() {
		d, f, p := snapshotLateRow(s, now)
		_, _, _ = d, f, p
		n++
	}
	return n
}

// ---- E15: overload & failure engineering ----

// benchFaultSink is the injected journal fault for the read-only
// phase: pass-through until armed, then every append fails.
type benchFaultSink struct {
	inner rtpkg.Journal
	armed atomic.Bool
	fails atomic.Int64
}

func (f *benchFaultSink) Record(rec *rtpkg.JournalRecord) error {
	if f.armed.Load() {
		f.fails.Add(1)
		return errors.New("injected: disk gone")
	}
	if f.inner == nil {
		return nil
	}
	return f.inner.Record(rec)
}

// runOverload measures the three failure shields: admission control
// under a saturated commit queue (shed cost vs letting the burst in),
// the read-only fallback under a failing journal (trip speed and
// probe-driven recovery time), and circuit-breaker isolation of a
// wedged action endpoint (opens, fast-fail cost, flat latency for
// healthy dispatch). Results go to stdout and BENCH_overload.json.
func runOverload() error {
	const burst = 48

	// Phase 1 — admission control. The same saturated mutation burst
	// runs against a shedding system and a non-shedding one.
	shedPhase := func(maxQueue int) (acked, shed int, meanRespNs int64, rep struct {
		Shed    int64
		Resumed int
	}, err error) {
		var depth atomic.Int64
		sys, err := gelee.New(gelee.Options{
			EmbeddedPlugins: true,
			SyncActions:     true,
			Resilience: gelee.ResilienceOptions{
				MaxQueueDepth:  maxQueue,
				ShedRetryAfter: time.Second,
				DepthSignal:    func() int { return int(depth.Load()) },
			},
		})
		if err != nil {
			return 0, 0, 0, rep, err
		}
		defer sys.Close()
		if err := sys.DefineModel("", scenario.QualityPlan()); err != nil {
			return 0, 0, 0, rep, err
		}
		srv := httptest.NewServer(sys.HTTPHandler())
		defer srv.Close()

		ids := make([]string, burst)
		for i := range ids {
			page := fmt.Sprintf("SHED-%d", i)
			if _, err := sys.Sims.Wiki.CreatePage(page, "owner", "x"); err != nil {
				return 0, 0, 0, rep, err
			}
			snap, err := sys.Instantiate(scenario.QualityPlanURI,
				gelee.Ref{URI: "http://wiki.liquidpub.org/pages/" + page, Type: "mediawiki"},
				"owner", nil)
			if err != nil {
				return 0, 0, 0, rep, err
			}
			ids[i] = snap.ID
		}

		advance := func(id string) (int, error) {
			resp, err := http.Post(srv.URL+"/api/v1/instances/"+id+"/advance",
				"application/json", bytes.NewReader([]byte(`{"to":"elaboration","actor":"owner"}`)))
			if err != nil {
				return 0, err
			}
			resp.Body.Close()
			return resp.StatusCode, nil
		}

		// Saturate the depth signal and fire the burst.
		depth.Store(int64(maxQueue*10 + 100))
		var total time.Duration
		shedIDs := make([]string, 0, burst)
		for _, id := range ids {
			start := time.Now()
			code, err := advance(id)
			total += time.Since(start)
			if err != nil {
				return 0, 0, 0, rep, err
			}
			switch code {
			case http.StatusOK:
				acked++
			case http.StatusTooManyRequests:
				shed++
				shedIDs = append(shedIDs, id)
			default:
				return 0, 0, 0, rep, fmt.Errorf("burst advance: status %d", code)
			}
		}
		meanRespNs = total.Nanoseconds() / int64(burst)

		// Drain the backlog: every shed mutation is admitted on retry.
		depth.Store(0)
		for _, id := range shedIDs {
			code, err := advance(id)
			if err != nil {
				return 0, 0, 0, rep, err
			}
			if code == http.StatusOK {
				rep.Resumed++
			}
		}
		rep.Shed = sys.HealthReport().Admission.Shed
		return acked, shed, meanRespNs, rep, nil
	}

	openAcked, openShed, openNs, _, err := shedPhase(0) // shedding off
	if err != nil {
		return err
	}
	onAcked, onShed, onNs, shedRep, err := shedPhase(8) // shedding on
	if err != nil {
		return err
	}

	// Phase 2 — read-only fallback. An injected journal fault trips the
	// health machine; once the fault clears, only the durability prober
	// can walk it back to healthy.
	fault := &benchFaultSink{}
	roSys, err := gelee.New(gelee.Options{
		EmbeddedPlugins: true,
		SyncActions:     true,
		Resilience: gelee.ResilienceOptions{
			DegradeAfter:  1,
			ReadOnlyAfter: 3,
			RecoverAfter:  2,
			ProbeInterval: 2 * time.Millisecond,
			WrapJournal: func(inner rtpkg.Journal) rtpkg.Journal {
				fault.inner = inner
				return fault
			},
		},
	})
	if err != nil {
		return err
	}
	defer roSys.Close()
	if err := roSys.DefineModel("", scenario.QualityPlan()); err != nil {
		return err
	}
	if _, err := roSys.Sims.Wiki.CreatePage("RO-1", "owner", "x"); err != nil {
		return err
	}
	roSnap, err := roSys.Instantiate(scenario.QualityPlanURI,
		gelee.Ref{URI: "http://wiki.liquidpub.org/pages/RO-1", Type: "mediawiki"}, "owner", nil)
	if err != nil {
		return err
	}

	fault.armed.Store(true)
	tripStart := time.Now()
	tripWrites := 0
	for i := 0; roSys.Health() != resilience.ReadOnly && i < 10; i++ {
		roSys.Advance(roSnap.ID, scenario.HappyPath[i%len(scenario.HappyPath)], "owner", gelee.AdvanceOptions{})
		tripWrites++
	}
	tripNs := time.Since(tripStart).Nanoseconds()
	if roSys.Health() != resilience.ReadOnly {
		return fmt.Errorf("injected journal fault never tripped read-only (health %v)", roSys.Health())
	}
	const rejectProbes = 100
	rejected := 0
	for i := 0; i < rejectProbes; i++ {
		if err := roSys.AdmitMutation(); errors.Is(err, resilience.ErrReadOnly) {
			rejected++
		}
	}

	fault.armed.Store(false)
	healStart := time.Now()
	for roSys.Health() != resilience.Healthy {
		if time.Since(healStart) > 10*time.Second {
			return fmt.Errorf("probes never recovered the system (health %v)", roSys.Health())
		}
		time.Sleep(time.Millisecond)
	}
	recoverNs := time.Since(healStart).Nanoseconds()
	roRep := roSys.HealthReport()

	// Phase 3 — circuit-breaker isolation. One wedged REST endpoint,
	// one healthy; the breaker must open on the wedged one and healthy
	// dispatch latency must stay flat.
	var wedgedHits, healthyHits atomic.Int64
	release := make(chan struct{})
	wedged := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		wedgedHits.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	// LIFO: the handlers must unblock before Close can drain them.
	defer wedged.Close()
	defer close(release)
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		healthyHits.Add(1)
	}))
	defer healthy.Close()

	const brFailures = 3
	brSys, err := gelee.New(gelee.Options{
		EmbeddedPlugins: true,
		SyncActions:     true,
		Resilience: gelee.ResilienceOptions{
			InvokeTimeout:   50 * time.Millisecond,
			BreakerFailures: brFailures,
			BreakerCooldown: time.Hour,
		},
	})
	if err != nil {
		return err
	}
	defer brSys.Close()

	registerEndpoint := func(name, endpoint string) (string, error) {
		uri := "http://actions.bench/" + name
		err := brSys.RegisterAction("", actionlib.ActionType{URI: uri, Name: name},
			actionlib.Implementation{
				TypeURI:      uri,
				ResourceType: "mediawiki",
				Endpoint:     endpoint,
				Protocol:     actionlib.ProtocolREST,
			})
		return uri, err
	}
	wedgedURI, err := registerEndpoint("wedge", wedged.URL)
	if err != nil {
		return err
	}
	healthyURI, err := registerEndpoint("fine", healthy.URL)
	if err != nil {
		return err
	}
	mkModel := func(name, actionURI string) (string, error) {
		uri := "urn:bench:models:" + name
		m := gelee.NewModel(uri, name).
			SuggestTypes("mediawiki").
			Phase("work", "Work").Action(actionURI, name).Done().
			FinalPhase("done", "Done").
			Initial("work").
			Chain("work", "done").
			MustBuild()
		return uri, brSys.DefineModel("", m)
	}
	wedgedModel, err := mkModel("wedged", wedgedURI)
	if err != nil {
		return err
	}
	healthyModel, err := mkModel("healthy", healthyURI)
	if err != nil {
		return err
	}
	advanceNew := func(modelURI, page string) (time.Duration, error) {
		if _, err := brSys.Sims.Wiki.CreatePage(page, "owner", "x"); err != nil {
			return 0, err
		}
		snap, err := brSys.Instantiate(modelURI,
			gelee.Ref{URI: "http://wiki.liquidpub.org/pages/" + page, Type: "mediawiki"}, "owner", nil)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := brSys.Advance(snap.ID, "work", "owner", gelee.AdvanceOptions{}); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}

	const healthyN = 16
	// Baseline: healthy dispatch with no open circuit anywhere.
	var baseTotal time.Duration
	for i := 0; i < healthyN; i++ {
		d, err := advanceNew(healthyModel, fmt.Sprintf("HB-%d", i))
		if err != nil {
			return err
		}
		baseTotal += d
	}
	baseNs := baseTotal.Nanoseconds() / healthyN

	// Wedge: the first brFailures dispatches pay the timeout and open
	// the circuit; the rest fast-fail without touching the endpoint.
	const wedgedN = brFailures + 3
	var wedgeTotal, fastFailTotal time.Duration
	for i := 0; i < wedgedN; i++ {
		d, err := advanceNew(wedgedModel, fmt.Sprintf("WB-%d", i))
		if err != nil {
			return err
		}
		wedgeTotal += d
		if i >= brFailures {
			fastFailTotal += d
		}
	}
	fastFailNs := fastFailTotal.Nanoseconds() / int64(wedgedN-brFailures)

	// Healthy dispatch again, with the wedged circuit open next door.
	var isoTotal time.Duration
	for i := 0; i < healthyN; i++ {
		d, err := advanceNew(healthyModel, fmt.Sprintf("HI-%d", i))
		if err != nil {
			return err
		}
		isoTotal += d
	}
	isoNs := isoTotal.Nanoseconds() / healthyN
	brRep := brSys.HealthReport()
	wedgedState := brRep.Breakers[wedged.URL].State
	healthyState := brRep.Breakers[healthy.URL].State
	latencyX := float64(isoNs) / float64(baseNs)

	report := struct {
		Experiment string `json:"experiment"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		Shedding   struct {
			Burst          int   `json:"burst"`
			OffAcked       int   `json:"off_acked"`
			OffShed        int   `json:"off_shed"`
			OffMeanRespNs  int64 `json:"off_mean_resp_ns"`
			OnAcked        int   `json:"on_acked"`
			OnShed         int   `json:"on_shed"`
			OnMeanRespNs   int64 `json:"on_mean_resp_ns"`
			ShedTotal      int64 `json:"shed_total"`
			ResumedOnDrain int   `json:"resumed_on_drain"`
		} `json:"shedding"`
		ReadOnly struct {
			TripWrites    int   `json:"trip_writes"`
			TripNs        int64 `json:"trip_ns"`
			Rejected      int   `json:"rejected"`
			RejectedOf    int   `json:"rejected_of"`
			RecoverNs     int64 `json:"recover_ns"`
			ProbeAttempts int64 `json:"probe_attempts"`
			SinkFailures  int64 `json:"sink_failures"`
			ReadOnlyTrips int64 `json:"read_only_transitions"`
			Recoveries    int64 `json:"recoveries"`
		} `json:"read_only"`
		Breaker struct {
			Failures       int     `json:"failures_to_open"`
			WedgedCalls    int     `json:"wedged_dispatches"`
			WedgedHits     int64   `json:"wedged_endpoint_hits"`
			Opens          int64   `json:"opens"`
			Rejected       int64   `json:"rejected"`
			FastFailNs     int64   `json:"fast_fail_ns"`
			WedgedState    string  `json:"wedged_state"`
			HealthyState   string  `json:"healthy_state"`
			HealthyHits    int64   `json:"healthy_endpoint_hits"`
			BaselineNs     int64   `json:"healthy_advance_baseline_ns"`
			OpenNextDoorNs int64   `json:"healthy_advance_breaker_open_ns"`
			LatencyRatio   float64 `json:"healthy_latency_ratio"`
		} `json:"breaker"`
	}{Experiment: "overload", GOMAXPROCS: gomaxprocs()}
	report.Shedding.Burst = burst
	report.Shedding.OffAcked = openAcked
	report.Shedding.OffShed = openShed
	report.Shedding.OffMeanRespNs = openNs
	report.Shedding.OnAcked = onAcked
	report.Shedding.OnShed = onShed
	report.Shedding.OnMeanRespNs = onNs
	report.Shedding.ShedTotal = shedRep.Shed
	report.Shedding.ResumedOnDrain = shedRep.Resumed
	report.ReadOnly.TripWrites = tripWrites
	report.ReadOnly.TripNs = tripNs
	report.ReadOnly.Rejected = rejected
	report.ReadOnly.RejectedOf = rejectProbes
	report.ReadOnly.RecoverNs = recoverNs
	report.ReadOnly.ProbeAttempts = roRep.Probes.Attempts
	report.ReadOnly.SinkFailures = fault.fails.Load()
	report.ReadOnly.ReadOnlyTrips = roRep.Health.ReadOnlyTotal
	report.ReadOnly.Recoveries = roRep.Health.RecoveredTotal
	report.Breaker.Failures = brFailures
	report.Breaker.WedgedCalls = wedgedN
	report.Breaker.WedgedHits = wedgedHits.Load()
	report.Breaker.Opens = brRep.BreakerOpens
	report.Breaker.Rejected = brRep.BreakerRejected
	report.Breaker.FastFailNs = fastFailNs
	report.Breaker.WedgedState = wedgedState
	report.Breaker.HealthyState = healthyState
	report.Breaker.HealthyHits = healthyHits.Load()
	report.Breaker.BaselineNs = baseNs
	report.Breaker.OpenNextDoorNs = isoNs
	report.Breaker.LatencyRatio = latencyX

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_overload.json", append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("paper: a hosted lifecycle service (Fig. 2) must survive overload and partner failures without losing acked work\n")
	fmt.Printf("measured (burst %d mutations over HTTP, GOMAXPROCS=%d):\n", burst, report.GOMAXPROCS)
	fmt.Printf("  shedding off: %d acked, %d shed (%v/req)\n",
		openAcked, openShed, time.Duration(openNs).Round(time.Microsecond))
	fmt.Printf("  shedding on:  %d acked, %d shed 429+Retry-After (%v/req); %d/%d re-admitted once drained\n",
		onAcked, onShed, time.Duration(onNs).Round(time.Microsecond), shedRep.Resumed, onShed)
	fmt.Printf("  read-only: tripped after %d failed writes in %v; %d/%d mutations rejected; probes (%d attempts) recovered in %v\n",
		tripWrites, time.Duration(tripNs).Round(time.Microsecond), rejected, rejectProbes,
		roRep.Probes.Attempts, time.Duration(recoverNs).Round(time.Millisecond))
	fmt.Printf("  breaker: wedged endpoint hit %d/%d dispatches (opens=%d, rejected=%d, fast-fail %v), state=%s\n",
		wedgedHits.Load(), wedgedN, brRep.BreakerOpens, brRep.BreakerRejected,
		time.Duration(fastFailNs).Round(time.Microsecond), wedgedState)
	fmt.Printf("  healthy advance: %v baseline vs %v with the circuit open next door (%.2fx, bar <=3x), state=%s\n",
		time.Duration(baseNs).Round(time.Microsecond), time.Duration(isoNs).Round(time.Microsecond),
		latencyX, healthyState)
	fmt.Printf("  wrote BENCH_overload.json\n")
	return nil
}

// runIntegrity measures what the end-to-end journal integrity layer
// costs and delivers: durable-put throughput with CRC-32C record
// framing vs the legacy unframed format (the target is <10% overhead —
// the fsync dominates), and background-scrub throughput over a
// multi-segment dataset, with a flipped bit to prove the scrub actually
// detects rot. Results go to stdout and BENCH_integrity.json.
func runIntegrity() error {
	const (
		writers    = 4
		putsPer    = 1500
		docBytes   = 256
		segmentMax = 256 << 10
	)
	type benchDoc struct {
		Title string `json:"title"`
		Rev   int    `json:"rev"`
	}
	payload := make([]byte, docBytes)
	for i := range payload {
		payload[i] = 'a' + byte(i%26)
	}

	// Durable-put throughput, framed vs unframed: same workload, same
	// group-commit engine, only the envelope differs.
	durablePuts := func(disableFraming bool) (int64, error) {
		dir, err := os.MkdirTemp("", "gelee-bench-integrity-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		s, err := store.Open(dir, store.Options{
			Sync:      true,
			Integrity: store.IntegrityOptions{DisableFraming: disableFraming},
		})
		if err != nil {
			return 0, err
		}
		repo := store.MustRepo[benchDoc](s, "docs")
		if err := s.Load(); err != nil {
			return 0, err
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < putsPer; i++ {
					if err := repo.Put(fmt.Sprintf("w%d-k%d", w, i),
						benchDoc{Title: string(payload), Rev: i}); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return 0, err
		}
		elapsed := time.Since(start).Nanoseconds()
		if err := s.Close(); err != nil {
			return 0, err
		}
		return elapsed, nil
	}
	framedNs, err := durablePuts(false)
	if err != nil {
		return err
	}
	unframedNs, err := durablePuts(true)
	if err != nil {
		return err
	}
	totalPuts := writers * putsPer
	framedRate := float64(totalPuts) / (float64(framedNs) / 1e9)
	unframedRate := float64(totalPuts) / (float64(unframedNs) / 1e9)
	overheadPct := (float64(framedNs) - float64(unframedNs)) / float64(unframedNs) * 100

	// Scrub throughput over a multi-segment dataset: the instance
	// journal accumulates sealed segments (no snapshot source wired, so
	// nothing folds), then ticks verify the whole generation.
	scrubDir, err := os.MkdirTemp("", "gelee-bench-scrub-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scrubDir)
	coll, err := store.OpenInstances(scrubDir, store.InstancesOptions{SegmentMaxBytes: segmentMax})
	if err != nil {
		return err
	}
	if err := coll.Replay(func(string, []byte) error { return nil }); err != nil {
		return err
	}
	rec := fmt.Sprintf(`{"op":"advance","pad":%q}`, payload[:128])
	for i := 0; i < 20000; i++ {
		if err := coll.Append(fmt.Sprintf("li-%d", i%64), []byte(rec)); err != nil {
			return err
		}
	}
	if err := coll.Seal(); err != nil {
		return err
	}
	segments := int(coll.Stats().SealedSegments)
	scrubStart := time.Now()
	var scrubBytes int64
	var scrubFiles int
	for {
		res := coll.Scrub(1 << 20) // 1 MiB ticks
		scrubBytes += res.Bytes
		scrubFiles += res.Files
		if res.Corrupt > 0 {
			return fmt.Errorf("clean dataset scrubbed corrupt: %+v", res)
		}
		if res.PassCompleted {
			break
		}
	}
	scrubNs := time.Since(scrubStart).Nanoseconds()
	scrubMBps := float64(scrubBytes) / 1e6 / (float64(scrubNs) / 1e9)

	// The behavioral claim: a flipped bit in a sealed segment is found.
	segPath := filepath.Join(scrubDir, "journal.000001.jsonl")
	raw, err := os.ReadFile(segPath)
	if err != nil {
		return err
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(segPath, raw, 0o644); err != nil {
		return err
	}
	detected := 0
	for {
		res := coll.Scrub(1 << 20)
		detected += res.Corrupt
		if res.PassCompleted {
			break
		}
	}
	if detected != 1 {
		return fmt.Errorf("scrub over flipped bit detected %d corruptions, want 1", detected)
	}
	if err := coll.Close(); err != nil {
		return err
	}

	report := struct {
		Experiment      string  `json:"experiment"`
		GOMAXPROCS      int     `json:"gomaxprocs"`
		Puts            int     `json:"durable_puts"`
		Writers         int     `json:"writers"`
		FramedNs        int64   `json:"framed_ns"`
		UnframedNs      int64   `json:"unframed_ns"`
		FramedPutsSec   float64 `json:"framed_puts_per_sec"`
		UnframedPutsSec float64 `json:"unframed_puts_per_sec"`
		OverheadPct     float64 `json:"framing_overhead_pct"`
		ScrubSegments   int     `json:"scrub_segments"`
		ScrubFiles      int     `json:"scrub_files"`
		ScrubBytes      int64   `json:"scrub_bytes"`
		ScrubNs         int64   `json:"scrub_ns"`
		ScrubMBPerSec   float64 `json:"scrub_mb_per_sec"`
		RotDetected     int     `json:"flipped_bit_detections"`
	}{
		Experiment:      "integrity",
		GOMAXPROCS:      gomaxprocs(),
		Puts:            totalPuts,
		Writers:         writers,
		FramedNs:        framedNs,
		UnframedNs:      unframedNs,
		FramedPutsSec:   framedRate,
		UnframedPutsSec: unframedRate,
		OverheadPct:     overheadPct,
		ScrubSegments:   segments,
		ScrubFiles:      scrubFiles,
		ScrubBytes:      scrubBytes,
		ScrubNs:         scrubNs,
		ScrubMBPerSec:   scrubMBps,
		RotDetected:     detected,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_integrity.json", append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("paper: a hosted service's journal is the system of record — it must detect its own decay\n")
	fmt.Printf("measured (%d durable puts x %d writers, fsync per batch):\n", totalPuts, writers)
	fmt.Printf("  framed (CRC-32C envelopes): %.0f puts/s; unframed legacy: %.0f puts/s; overhead %.1f%% (target <10%%)\n",
		framedRate, unframedRate, overheadPct)
	fmt.Printf("  scrub: %d files / %.1f MB over %d sealed segments in %v (%.0f MB/s)\n",
		scrubFiles, float64(scrubBytes)/1e6, segments, time.Duration(scrubNs).Round(time.Millisecond), scrubMBps)
	fmt.Printf("  flipped bit in a sealed segment: detected %d time(s) by the next scrub pass\n", detected)
	fmt.Printf("  wrote BENCH_integrity.json\n")
	return nil
}
