// E17 — the open-loop latency harness. Closed-loop benchmarks (every
// iteration waits for the previous one) hide queueing delay: when the
// system stalls, the load generator politely stalls with it, and the
// recorded latencies omit exactly the requests a real million-user
// population would have kept sending (coordinated omission). Here
// arrivals are scheduled on a Poisson (or fixed) clock decoupled from
// completions, latency is measured from the *scheduled* arrival to
// completion, and every scheduled request is eventually executed and
// recorded — so an overloaded system shows its real, growing tail.
//
// The experiment has five parts: a population scaler that seeds up to
// 1M instances and reports memory-per-instance and index growth; per-
// operation-class open-loop runs (advance, cockpit read, filtered
// cockpit read, timeline page, model get) with HDR-style histograms;
// a cockpit A/B reading the same page through the population index and
// through the deprecated pre-index full scan; a cache A/B that drives
// the hot-model read workload at a fixed arrival rate with the read
// cache off vs on; and an admission-watermark tuning probe over a
// sync-journal system that grounds geleed's -max-queue-depth default.
// Results land in BENCH_openloop.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"os"
	runtimego "runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/liquidpub/gelee"
)

// Open-loop flags (see the usage comment in main.go). The defaults are
// sized for the full trajectory run on a dedicated core; CI smoke runs
// pass short durations and a small population.
var (
	olDuration     = flag.Duration("openloop-duration", 4*time.Second, "duration of each open-loop measurement phase")
	olScale        = flag.Int("openloop-scale", 1_000_000, "population the scaler seeds before the per-class runs")
	olSoak         = flag.Duration("openloop-soak", 0, "mixed-workload soak duration at full population (0 = skip)")
	olFixed        = flag.Bool("openloop-fixed", false, "fixed (deterministic) arrival gaps instead of Poisson")
	olHotRate      = flag.Float64("openloop-hot-rate", 120_000, "arrival rate (ops/s) of the hot-model cache A/B")
	olAdvanceRate  = flag.Float64("openloop-advance-rate", 20_000, "arrival rate (ops/s) of the advance class")
	olTimelineRate = flag.Float64("openloop-timeline-rate", 20_000, "arrival rate (ops/s) of the timeline-page class")
	olModelRate    = flag.Float64("openloop-model-rate", 50_000, "arrival rate (ops/s) of the model-get class")
	olCockpitRate  = flag.Float64("openloop-cockpit-rate", 2, "arrival rate (ops/s) of the cockpit-read class")
	olTuning       = flag.Bool("openloop-tuning", true, "run the admission-watermark tuning probe (needs disk fsync)")
)

// # HDR-style log-linear histogram
//
// Power-of-two octaves split into 32 linear sub-buckets: <= ~3.1%
// relative error at any magnitude, fixed memory, atomic counters so
// every worker records lock-free.

const (
	histSub     = 32 // sub-buckets per octave; values < histSub are exact
	histBuckets = 60 * histSub
)

type latHist struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

func histBucket(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < histSub {
		return int(v)
	}
	shift := bits.Len64(v) - 6 // 6 = log2(histSub) + 1
	idx := shift*histSub + int(v>>uint(shift))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// histValue is the representative (midpoint) nanosecond value of a
// bucket — the inverse of histBucket.
func histValue(idx int) int64 {
	if idx < 2*histSub {
		return int64(idx)
	}
	shift := idx/histSub - 1
	m := int64(idx - shift*histSub) // in [histSub, 2*histSub)
	lo := m << uint(shift)
	hi := (m+1)<<uint(shift) - 1
	return (lo + hi) / 2
}

func (h *latHist) record(d time.Duration) {
	ns := d.Nanoseconds()
	h.buckets[histBucket(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// quantile returns the q-th (0..1) latency; call only after recording
// has stopped.
func (h *latHist) quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			return histValue(i)
		}
	}
	return h.max.Load()
}

// histSummary is the serialized form of a histogram.
type histSummary struct {
	Count  uint64 `json:"count"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P90Ns  int64  `json:"p90_ns"`
	P99Ns  int64  `json:"p99_ns"`
	P999Ns int64  `json:"p999_ns"`
	MaxNs  int64  `json:"max_ns"`
}

func (h *latHist) summary() histSummary {
	s := histSummary{
		Count:  h.count.Load(),
		P50Ns:  h.quantile(0.50),
		P90Ns:  h.quantile(0.90),
		P99Ns:  h.quantile(0.99),
		P999Ns: h.quantile(0.999),
		MaxNs:  h.max.Load(),
	}
	if s.Count > 0 {
		s.MeanNs = h.sum.Load() / int64(s.Count)
	}
	return s
}

// # Open-loop generator
//
// One goroutine computes the arrival schedule (exponential gaps for
// Poisson, constant for fixed) and releases each job at — never before
// — its scheduled time; a bounded worker pool executes them. Latency
// is completion minus *scheduled arrival*, so time spent queued behind
// a saturated pool counts in full, and after the generation window
// closes the workers drain the entire backlog — every scheduled
// request is recorded, none are omitted.

type openLoopResult struct {
	Offered  uint64        // arrivals scheduled
	Rejected uint64        // ops reporting not-acked (shed by admission)
	Elapsed  time.Duration // generation window + drain
	Acked    *latHist
	Reject   *latHist
}

// runOpenLoop drives op at the given arrival rate for dur. op returns
// whether the operation was acknowledged (admission-shed ops return
// false and are recorded separately).
func runOpenLoop(rate float64, dur time.Duration, fixed bool, workers int, op func() bool) openLoopResult {
	res := openLoopResult{Acked: &latHist{}, Reject: &latHist{}}
	// The buffer must hold the worst-case overload backlog — a blocked
	// send would stall the arrival clock, which is exactly the
	// coordinated omission this harness exists to avoid.
	jobs := make(chan time.Time, 1<<21)
	var rejected atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sched := range jobs {
				ok := op()
				lat := time.Since(sched)
				if ok {
					res.Acked.record(lat)
				} else {
					rejected.Add(1)
					res.Reject.record(lat)
				}
			}
		}()
	}

	rng := rand.New(rand.NewSource(42))
	meanGap := float64(time.Second) / rate
	gap := func() time.Duration {
		if fixed {
			return time.Duration(meanGap)
		}
		return time.Duration(-math.Log(1-rng.Float64()) * meanGap)
	}
	start := time.Now()
	end := start.Add(dur)
	next := start
	var offered uint64
	for {
		now := time.Now()
		if now.After(end) {
			break
		}
		// Release everything due by now (a burst after oversleep is
		// correct open-loop behavior: those arrivals were due).
		for !next.After(now) && !next.After(end) {
			jobs <- next
			offered++
			next = next.Add(gap())
		}
		if sleep := time.Until(next); sleep > 0 {
			if sleep > time.Millisecond {
				sleep = time.Millisecond
			}
			time.Sleep(sleep)
		}
	}
	close(jobs)
	wg.Wait()
	res.Offered = offered
	res.Rejected = rejected.Load()
	res.Elapsed = time.Since(start)
	return res
}

// classResult is one operation class's open-loop measurement.
type classResult struct {
	Class          string      `json:"class"`
	RatePerSec     float64     `json:"arrival_rate_per_sec"`
	Offered        uint64      `json:"offered"`
	AchievedPerSec float64     `json:"achieved_per_sec"`
	Latency        histSummary `json:"latency"`
}

func classRun(name string, rate float64, dur time.Duration, fixed bool, workers int, op func() bool) classResult {
	res := runOpenLoop(rate, dur, fixed, workers, op)
	return classResult{
		Class:          name,
		RatePerSec:     rate,
		Offered:        res.Offered,
		AchievedPerSec: float64(res.Acked.count.Load()) / res.Elapsed.Seconds(),
		Latency:        res.Acked.summary(),
	}
}

// # Population scaler

type scalePoint struct {
	Instances       int    `json:"instances"`
	SeedNsPerInst   int64  `json:"seed_ns_per_instance"`
	HeapBytes       uint64 `json:"heap_bytes"`
	BytesPerInst    int64  `json:"bytes_per_instance"`
	SummariesPageNs int64  `json:"summaries_page_ns"`
	FilteredPageNs  int64  `json:"filtered_page_ns"`
	EventsPageNs    int64  `json:"events_page_ns"`
	InvocationIndex int    `json:"invocation_index"`
	ResourceKeys    int    `json:"resource_index_keys"`
	EventsInMemory  int64  `json:"events_in_memory"`
}

// benchLifecycleModel is the action-free model the scaler instantiates:
// pure token-move cost, no outcalls, tiny per-instance model clone.
func benchLifecycleModel() *gelee.Model {
	return gelee.NewModel("urn:bench:openloop", "openloop").
		SuggestTypes("benchres").
		Phase("work", "Work").Done().
		Phase("check", "Check").Done().
		FinalPhase("done", "Done").
		Initial("work").
		Chain("work", "check", "done").
		Transition("check", "work").
		MustBuild()
}

func heapBytes() uint64 {
	runtimego.GC()
	var ms runtimego.MemStats
	runtimego.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// seedPopulation grows sys to scale instances, capturing a scale point
// (memory per instance, index sizes, one cockpit-page and one
// timeline-page cost) at each power-of-ten checkpoint.
func seedPopulation(sys *gelee.System, scale int) ([]scalePoint, []string, error) {
	base := heapBytes()
	ids := make([]string, 0, scale)
	var points []scalePoint
	checkpoint := 10_000
	if checkpoint > scale {
		checkpoint = scale
	}
	lastMark := time.Now()
	lastCount := 0
	for len(ids) < scale {
		ref := gelee.Ref{URI: fmt.Sprintf("urn:bench:r-%d", len(ids)), Type: "benchres"}
		snap, err := sys.Instantiate("urn:bench:openloop", ref, "owner", nil)
		if err != nil {
			return nil, nil, err
		}
		ids = append(ids, snap.ID)
		if len(ids) == checkpoint {
			seedNs := time.Since(lastMark).Nanoseconds() / int64(len(ids)-lastCount)
			heap := heapBytes()
			st := sys.RuntimeStats()
			t0 := time.Now()
			page := sys.SummariesPage(0, 100)
			pageNs := time.Since(t0).Nanoseconds()
			if len(page.Summaries) == 0 {
				return nil, nil, fmt.Errorf("empty cockpit page at %d instances", len(ids))
			}
			t0 = time.Now()
			fp := sys.QuerySummaries(gelee.Filter{Resource: fmt.Sprintf("urn:bench:r-%d", len(ids)/2)}, 0, 100)
			filteredNs := time.Since(t0).Nanoseconds()
			if len(fp.Summaries) != 1 {
				return nil, nil, fmt.Errorf("filtered cockpit page matched %d at %d instances", len(fp.Summaries), len(ids))
			}
			t0 = time.Now()
			if _, ok := sys.Events(ids[len(ids)/2], 0, 50); !ok {
				return nil, nil, fmt.Errorf("timeline read failed at %d instances", len(ids))
			}
			evNs := time.Since(t0).Nanoseconds()
			points = append(points, scalePoint{
				Instances:       len(ids),
				SeedNsPerInst:   seedNs,
				HeapBytes:       heap,
				BytesPerInst:    int64((heap - base) / uint64(len(ids))),
				SummariesPageNs: pageNs,
				FilteredPageNs:  filteredNs,
				EventsPageNs:    evNs,
				InvocationIndex: st.Invocations,
				ResourceKeys:    st.ResourceKeys,
				EventsInMemory:  st.EventsInMemory,
			})
			fmt.Printf("  population %d: %d B/instance, cockpit page %.2fms, seed %.1fµs/inst\n",
				len(ids), points[len(points)-1].BytesPerInst, float64(pageNs)/1e6, float64(seedNs)/1e3)
			lastMark, lastCount = time.Now(), len(ids)
			if checkpoint == scale {
				break
			}
			checkpoint *= 10
			if checkpoint > scale {
				checkpoint = scale
			}
		}
	}
	return points, ids, nil
}

// # Cockpit A/B — population index vs full scan

type cockpitABReport struct {
	Population     int         `json:"population"`
	PageSize       int         `json:"page_size"`
	Indexed        histSummary `json:"indexed"`
	Scan           histSummary `json:"scan"`
	P99Improvement float64     `json:"p99_improvement"`
	BaselineNote   string      `json:"baseline_note"`
}

// runCockpitAB reads the same first cockpit page through the
// incrementally maintained population index and through the deprecated
// pre-index full scan (SummariesPageScan), on the same live system at
// full population. The scan is O(N log N) per page — a handful of
// samples is all a million-instance population affords, and is plenty:
// the distribution is flat.
func runCockpitAB(sys *gelee.System, population int) cockpitABReport {
	rep := cockpitABReport{Population: population, PageSize: 100}
	indexed := &latHist{}
	for i := 0; i < 200; i++ {
		t0 := time.Now()
		if len(sys.SummariesPage(0, 100).Summaries) == 0 {
			break
		}
		indexed.record(time.Since(t0))
	}
	scan := &latHist{}
	for i := 0; i < 5; i++ {
		t0 := time.Now()
		if len(sys.SummariesPageScan(0, 100).Summaries) == 0 {
			break
		}
		scan.record(time.Since(t0))
	}
	rep.Indexed, rep.Scan = indexed.summary(), scan.summary()
	if rep.Indexed.P99Ns > 0 {
		rep.P99Improvement = float64(rep.Scan.P99Ns) / float64(rep.Indexed.P99Ns)
	}
	rep.BaselineNote = "scan is the pre-index collectAll page (SummariesPageScan), the path every " +
		"cockpit read took before the population index; PR 9's open-loop run measured it at " +
		"p99 6.51s for 1M instances"
	return rep
}

// # Cache A/B

type cacheABReport struct {
	Model           string      `json:"model"`
	ModelPhases     int         `json:"model_phases"`
	CloneNs         int64       `json:"clone_ns"`
	CloneBytes      int64       `json:"clone_bytes"`
	RatePerSec      float64     `json:"arrival_rate_per_sec"`
	Off             histSummary `json:"cache_off"`
	On              histSummary `json:"cache_on"`
	P99Improvement  float64     `json:"p99_improvement"`
	HitRate         float64     `json:"hit_rate"`
	CacheSize       int         `json:"cache_size"`
	CacheCapEntries int         `json:"cache_cap_entries"`
	MemoryBoundB    int64       `json:"memory_bound_bytes"`
}

// hotModel is a deliberately wide lifecycle (many phases) so the
// defensive clone the cache removes is substantial — the shape of a
// real production model with per-phase actions and annotations, and
// the regime where a read-dominated deployment feels the copy cost.
func hotModel() *gelee.Model {
	const phases = 48
	b := gelee.NewModel("urn:bench:hot", "hot-model").SuggestTypes("benchres")
	names := make([]string, 0, phases)
	for i := 0; i < phases; i++ {
		id := fmt.Sprintf("p%02d", i)
		b = b.Phase(id, "Phase "+id).
			Action(fmt.Sprintf("urn:bench:act:%s:notify", id), "notify-"+id).
			Action(fmt.Sprintf("urn:bench:act:%s:index", id), "index-"+id).
			Action(fmt.Sprintf("urn:bench:act:%s:archive", id), "archive-"+id).
			Done()
		names = append(names, id)
	}
	b = b.FinalPhase("fin", "Final").Initial("p00")
	b = b.Chain(append(names, "fin")...)
	return b.MustBuild()
}

// runCacheAB drives the hot-model read workload at the same fixed
// arrival rate against two otherwise-identical systems — read cache
// disabled vs enabled. Above the uncached clone capacity the open loop
// shows the difference honestly: the uncached system's backlog (and
// p99) grows without bound while the cached one stays flat.
func runCacheAB(rate float64, dur time.Duration, fixed bool) (cacheABReport, error) {
	hot := hotModel()
	rep := cacheABReport{Model: hot.URI, ModelPhases: len(hot.Phases), RatePerSec: rate}
	rep.CloneNs, rep.CloneBytes = measure(2000, func() { _ = hot.Clone() })

	run := func(cacheEntries int) (histSummary, *gelee.System, error) {
		sys, err := gelee.New(gelee.Options{SyncActions: true, ReadCacheEntries: cacheEntries})
		if err != nil {
			return histSummary{}, nil, err
		}
		if err := sys.DefineModel("", hot); err != nil {
			sys.Close()
			return histSummary{}, nil, err
		}
		op := func() bool {
			_, ok := sys.ModelView(hot.URI)
			return ok
		}
		// Warm the read path (and, when enabled, the cache) and clear
		// inherited garbage so the measurement sees steady state, not
		// the previous phase's GC debt.
		for i := 0; i < 1000; i++ {
			op()
		}
		runtimego.GC()
		res := runOpenLoop(rate, dur, fixed, 2*gomaxprocs()+2, op)
		return res.Acked.summary(), sys, nil
	}

	off, offSys, err := run(-1)
	if err != nil {
		return rep, err
	}
	offSys.Close()
	on, onSys, err := run(0)
	if err != nil {
		return rep, err
	}
	defer onSys.Close()
	rep.Off, rep.On = off, on
	if on.P99Ns > 0 {
		rep.P99Improvement = float64(off.P99Ns) / float64(on.P99Ns)
	}
	reads := onSys.StoreStats().Reads["models"]
	if lookups := reads.CacheHits + reads.CacheMisses; lookups > 0 {
		rep.HitRate = float64(reads.CacheHits) / float64(lookups)
	}
	rep.CacheSize = reads.CacheSize
	rep.CacheCapEntries = reads.CacheCap
	rep.MemoryBoundB = int64(reads.CacheCap) * rep.CloneBytes
	return rep, nil
}

// # Admission-watermark tuning probe

type tuningPoint struct {
	Watermark   int         `json:"watermark"`
	Offered     uint64      `json:"offered"`
	AckedCount  uint64      `json:"acked"`
	ShedCount   uint64      `json:"shed"`
	ShedPct     float64     `json:"shed_pct"`
	Acked       histSummary `json:"acked_latency"`
	ShedLatency histSummary `json:"shed_latency"`
}

type tuningReport struct {
	CapacityPerSec  float64       `json:"capacity_per_sec"`
	OfferedPerSec   float64       `json:"offered_per_sec"`
	Points          []tuningPoint `json:"points"`
	ChosenWatermark int           `json:"chosen_watermark"`
	Rationale       string        `json:"rationale"`
}

// tuneAdmission measures acked-mutation tail latency under 2x-capacity
// overload at several admission watermarks, on a real sync-journal
// system (the watermark compares against the group-commit backlog, so
// only a journal that actually fsyncs produces the signal). Watermark 0
// is the shedding-off baseline: every arrival is admitted and queues.
func tuneAdmission(dur time.Duration, fixed bool) (*tuningReport, error) {
	newSys := func(watermark int) (*gelee.System, []string, func(), error) {
		dir, err := os.MkdirTemp("", "gelee-openloop-tune-")
		if err != nil {
			return nil, nil, nil, err
		}
		sys, err := gelee.New(gelee.Options{
			DataDir:          dir,
			SyncJournal:      true,
			PersistInstances: true,
			SyncActions:      true,
			Resilience:       gelee.ResilienceOptions{MaxQueueDepth: watermark},
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, nil, err
		}
		cleanup := func() { sys.Close(); os.RemoveAll(dir) }
		if err := sys.DefineModel("", benchLifecycleModel()); err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		ids := make([]string, 256)
		for i := range ids {
			ref := gelee.Ref{URI: fmt.Sprintf("urn:bench:tune-%d", i), Type: "benchres"}
			snap, err := sys.Instantiate("urn:bench:openloop", ref, "owner", nil)
			if err != nil {
				cleanup()
				return nil, nil, nil, err
			}
			ids[i] = snap.ID
		}
		return sys, ids, cleanup, nil
	}

	// Closed-loop capacity estimate: what the sync journal sustains.
	sys, ids, cleanup, err := newSys(0)
	if err != nil {
		return nil, err
	}
	capDur := dur / 4
	if capDur < 250*time.Millisecond {
		capDur = 250 * time.Millisecond
	}
	var done atomic.Int64
	var cwg sync.WaitGroup
	capEnd := time.Now().Add(capDur)
	for g := 0; g < 16; g++ {
		cwg.Add(1)
		go func(g int) {
			defer cwg.Done()
			for i := 0; time.Now().Before(capEnd); i++ {
				if _, err := sys.AdvanceSummary(ids[(g*16+i)%len(ids)], "check", "owner", gelee.AdvanceOptions{}); err == nil {
					done.Add(1)
				}
			}
		}(g)
	}
	cwg.Wait()
	cleanup()
	capacity := float64(done.Load()) / capDur.Seconds()
	if capacity < 1 {
		return nil, fmt.Errorf("capacity probe measured no throughput")
	}
	offered := 2 * capacity

	rep := &tuningReport{CapacityPerSec: capacity, OfferedPerSec: offered}
	for _, w := range []int{0, 64, 256, 512, 2048} {
		sys, ids, cleanup, err := newSys(w)
		if err != nil {
			return nil, err
		}
		var n atomic.Uint64
		res := runOpenLoop(offered, dur, fixed, 512, func() bool {
			// The HTTP mutation path in one breath: admission first,
			// then the durable advance.
			if err := sys.AdmitMutation(); err != nil {
				return false
			}
			i := n.Add(1)
			_, err := sys.AdvanceSummary(ids[int(i)%len(ids)], "check", "owner", gelee.AdvanceOptions{})
			return err == nil
		})
		cleanup()
		pt := tuningPoint{
			Watermark:   w,
			Offered:     res.Offered,
			AckedCount:  res.Acked.count.Load(),
			ShedCount:   res.Rejected,
			Acked:       res.Acked.summary(),
			ShedLatency: res.Reject.summary(),
		}
		if res.Offered > 0 {
			pt.ShedPct = 100 * float64(res.Rejected) / float64(res.Offered)
		}
		rep.Points = append(rep.Points, pt)
		fmt.Printf("  watermark %4d: acked p99 %.2fms (n=%d), shed %.1f%% (p99 %.0fµs)\n",
			w, float64(pt.Acked.P99Ns)/1e6, pt.AckedCount, pt.ShedPct, float64(pt.ShedLatency.P99Ns)/1e3)
	}
	return rep, nil
}

// # The experiment

func runOpenLoopExperiment() error {
	fmt.Printf("paper: steady-state traffic is read-dominated (cockpit, monitor, timelines); the engine must hold tail latency as populations reach millions\n")
	arrivals := "poisson"
	if *olFixed {
		arrivals = "fixed"
	}

	// Part 1 — population scaler.
	fmt.Printf("measured (GOMAXPROCS=%d, %s arrivals, %v/phase):\n", gomaxprocs(), arrivals, *olDuration)
	sys, err := gelee.New(gelee.Options{SyncActions: true, MaxEventsInMemory: 64})
	if err != nil {
		return err
	}
	defer sys.Close()
	if err := sys.DefineModel("", benchLifecycleModel()); err != nil {
		return err
	}
	points, ids, err := seedPopulation(sys, *olScale)
	if err != nil {
		return err
	}

	// Part 2 — per-class open-loop runs at full population.
	var adv atomic.Uint64
	advTargets := [2]string{"check", "work"}
	classes := []classResult{
		classRun("advance", *olAdvanceRate, *olDuration, *olFixed, 2*gomaxprocs()+2, func() bool {
			i := adv.Add(1)
			_, err := sys.AdvanceSummary(ids[int(i)%len(ids)], advTargets[i%2], "owner", gelee.AdvanceOptions{})
			return err == nil
		}),
	}
	var tl atomic.Uint64
	classes = append(classes, classRun("timeline-page", *olTimelineRate, *olDuration, *olFixed, 2*gomaxprocs()+2, func() bool {
		i := tl.Add(1)
		_, ok := sys.Events(ids[int(i)%len(ids)], 0, 50)
		return ok
	}))
	classes = append(classes, classRun("model-get", *olModelRate, *olDuration, *olFixed, 2*gomaxprocs()+2, func() bool {
		_, ok := sys.ModelView("urn:bench:openloop")
		return ok
	}))
	classes = append(classes, classRun("cockpit-read", *olCockpitRate, *olDuration, *olFixed, 4, func() bool {
		return len(sys.SummariesPage(0, 100).Summaries) > 0
	}))
	// The filtered cockpit: a ?resource= query pushed down to the
	// by-resource index rather than a walk of the whole population.
	var cf atomic.Uint64
	classes = append(classes, classRun("cockpit-filtered", *olCockpitRate, *olDuration, *olFixed, 4, func() bool {
		i := cf.Add(1)
		f := gelee.Filter{Resource: fmt.Sprintf("urn:bench:r-%d", int(i)%len(ids))}
		return len(sys.QuerySummaries(f, 0, 100).Summaries) == 1
	}))
	for _, c := range classes {
		fmt.Printf("  %-13s @%8.0f/s: p50 %s p99 %s p999 %s max %s (%d ops)\n",
			c.Class, c.RatePerSec, fmtNs(c.Latency.P50Ns), fmtNs(c.Latency.P99Ns),
			fmtNs(c.Latency.P999Ns), fmtNs(c.Latency.MaxNs), c.Latency.Count)
	}

	// Part 2b — cockpit A/B: the same page through the population index
	// and through the deprecated pre-index full scan.
	cab := runCockpitAB(sys, len(ids))
	fmt.Printf("  cockpit A/B at %d: indexed p99 %s vs scan p99 %s — %.0fx\n",
		cab.Population, fmtNs(cab.Indexed.P99Ns), fmtNs(cab.Scan.P99Ns), cab.P99Improvement)

	// Part 3 — optional mixed soak at full population: 20% advance,
	// 40% timeline, 40% model get (the cockpit's O(population) scan is
	// measured above on its own; mixing it in would just measure it
	// again through everyone else's queueing delay).
	var soak *classResult
	if *olSoak > 0 {
		var mix atomic.Uint64
		rate := *olAdvanceRate + *olTimelineRate + *olModelRate
		s := classRun("soak-mixed", rate, *olSoak, *olFixed, 2*gomaxprocs()+2, func() bool {
			i := mix.Add(1)
			switch i % 5 {
			case 0:
				_, err := sys.AdvanceSummary(ids[int(i)%len(ids)], advTargets[i%2], "owner", gelee.AdvanceOptions{})
				return err == nil
			case 1, 2:
				_, ok := sys.Events(ids[int(i)%len(ids)], 0, 50)
				return ok
			default:
				_, ok := sys.ModelView("urn:bench:openloop")
				return ok
			}
		})
		soak = &s
		fmt.Printf("  %-13s @%8.0f/s for %v: p50 %s p99 %s p999 %s\n",
			s.Class, rate, *olSoak, fmtNs(s.Latency.P50Ns), fmtNs(s.Latency.P99Ns), fmtNs(s.Latency.P999Ns))
	}

	// Part 4 — cache A/B on the hot-model read workload.
	ab, err := runCacheAB(*olHotRate, *olDuration, *olFixed)
	if err != nil {
		return err
	}
	fmt.Printf("  hot-model @%0.f/s (clone %s): cache-off p99 %s vs cache-on p99 %s — %.1fx, hit rate %.1f%%, bound %d entries / %s\n",
		ab.RatePerSec, fmtNs(ab.CloneNs), fmtNs(ab.Off.P99Ns), fmtNs(ab.On.P99Ns),
		ab.P99Improvement, 100*ab.HitRate, ab.CacheCapEntries, fmtBytes(ab.MemoryBoundB))

	// Part 5 — admission-watermark tuning under 2x-capacity overload.
	var tuning *tuningReport
	if *olTuning {
		fmt.Printf("  admission tuning (sync journal, open loop at 2x capacity):\n")
		if tuning, err = tuneAdmission(*olDuration, *olFixed); err != nil {
			return err
		}
		tuning.ChosenWatermark = 512
		tuning.Rationale = "Acked p99 under 2x-capacity overload stays within the shed-bounded band once " +
			"the watermark caps the commit backlog; with shedding off (watermark 0) every arrival is " +
			"admitted and acked latency grows with the backlog for the whole run. 512 bounds the backlog " +
			"well above the group-commit batch (so steady-state bursts never shed) while keeping worst-case " +
			"queueing delay to a fraction of a second at measured capacity; geleed ships it as the " +
			"-max-queue-depth default, resume stays at watermark/2 hysteresis, and BreakerFailures keeps " +
			"its default 5 — BENCH_overload.json shows fast-fail isolation is insensitive to the threshold " +
			"while 5 consecutive failures avoids opening on a single transient timeout."
	}

	report := struct {
		Experiment  string          `json:"experiment"`
		GOMAXPROCS  int             `json:"gomaxprocs"`
		Arrivals    string          `json:"arrivals"`
		DurationSec float64         `json:"phase_duration_sec"`
		Scale       int             `json:"population_scale"`
		Population  []scalePoint    `json:"population"`
		Classes     []classResult   `json:"classes"`
		CockpitAB   cockpitABReport `json:"cockpit_ab"`
		Soak        *classResult    `json:"soak,omitempty"`
		CacheAB     cacheABReport   `json:"cache_ab"`
		Tuning      *tuningReport   `json:"admission_tuning,omitempty"`
	}{
		Experiment:  "openloop",
		GOMAXPROCS:  gomaxprocs(),
		Arrivals:    arrivals,
		DurationSec: olDuration.Seconds(),
		Scale:       *olScale,
		Population:  points,
		Classes:     classes,
		CockpitAB:   cab,
		Soak:        soak,
		CacheAB:     ab,
		Tuning:      tuning,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_openloop.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote BENCH_openloop.json\n")
	return nil
}

func fmtNs(ns int64) string {
	switch {
	case ns >= int64(time.Second):
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= int64(time.Millisecond):
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= int64(time.Microsecond):
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
