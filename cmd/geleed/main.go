// Command geleed runs the hosted Gelee lifecycle management service of
// Fig. 2: the REST/SOAP APIs, execution widgets, monitoring cockpit and
// the journal-backed data tier, with the simulated resource plug-ins
// (Google-Docs-like, MediaWiki-like, SVN-like) wired in.
//
// Usage:
//
//	geleed [-addr :8085] [-data DIR] [-auth] [-seed] [-engine journal|memory]
//	       [-sync] [-store-shards N] [-runtime-shards N]
//	       [-journal-flush-interval D] [-journal-flush-batch N]
//	       [-segment-max-bytes N] [-snapshot-every N]
//	       [-log-live-window N] [-fold-min-interval D] [-fold-min-garbage R]
//	       [-read-cache-entries N]
//	       [-max-events N] [-invocation-retention D]
//	       [-persist-instances=true|false]
//	       [-max-queue-depth N] [-shed-retry-after D]
//	       [-readonly-after N] [-recover-after N] [-health-probe-interval D]
//	       [-invoke-timeout D] [-invoke-retries N] [-invoke-max-inflight N]
//	       [-breaker-failures N] [-breaker-cooldown D]
//	       [-alert-webhook URL] [-alert-interval D]
//	       [-quarantine-corrupt] [-scrub-interval D] [-scrub-budget-bytes N]
//	       [-disable-journal-checksums]
//	       [-max-conns-per-host N] [-max-idle-conns N]
//
// -data enables persistence (empty = in-memory); -auth enforces the
// §IV.D roles via the X-Gelee-User header; -seed loads the LiquidPub
// demo project (quality plan + 35 deliverables) so the cockpit has
// something to show. The engine flags tune the data tier: -sync makes
// the journal fsync each group-commit batch, -store-shards sets the
// repository lock-stripe count, and the flush flags bound the group-
// commit batching window. -runtime-shards stripes the lifecycle
// runtime's instance table so token moves on different instances
// never contend; -max-events ring-truncates each instance's in-memory
// history (the journal keeps the full record) and -invocation-retention
// ages terminal callback-routing entries out of the invocation index.
// -persist-instances (on by default) writes every lifecycle-instance
// mutation through a dedicated instance journal under DIR/instances
// and replays it on start — sharded across GOMAXPROCS appliers — so a
// restarted geleed recovers every token position, history, execution
// and pending change; the recovered counts are logged at startup.
// -segment-max-bytes (64 MiB by default) rotates each journal's
// active segment at that size; sealed segments are folded into
// snapshots in the background, which bounds restart replay to
// snapshot + tail instead of all history, without ever blocking
// writers. -snapshot-every folds only once that many sealed segments
// accumulate. -log-live-window keeps only that many of the execution
// log's newest entries hot (in RAM and in each snapshot); older
// history is spilled once into immutable CRC-summed archive files
// carried forward by reference, so fold cost stays flat as history
// grows — cold pages still serve reads, streamed from disk via
// GET /api/v1/admin/log?after=&limit=. -fold-min-interval and
// -fold-min-garbage pace the background folder (wall-clock spacing and
// a minimum sealed-garbage ratio) so a trickle of writes never
// re-snapshots an unchanged population. -read-cache-entries bounds the
// per-shard LRU read cache in front of the model/template repositories
// (64 per shard by default, <0 disables): hot models are served as
// shared prepared values, skipping the defensive deep clone on every
// cockpit fetch — hit/miss/evict counters show next to the hot-key
// sketch on the admin store stats. GET /api/v1/admin/store and
// /api/v1/admin/runtime report the resulting engine, rotation/fold,
// archive, replay, runtime and persistence health.
//
// The overload/failure knobs guard the service under stress:
// -max-queue-depth sheds mutating requests with 429 + Retry-After once
// the commit backlog saturates (reads always serve; default 512, tuned
// under the open-loop harness — see BENCH_openloop.json — 0 disables
// shedding); -readonly-after
// flips the node into a degraded read-only mode after that many
// consecutive journal failures, rejecting mutations with 503 until
// -health-probe-interval probes see the disk heal for -recover-after
// writes in a row. Action outcalls run under per-endpoint circuit
// breakers (-breaker-failures / -breaker-cooldown), bounded
// concurrency (-invoke-max-inflight), per-attempt timeouts
// (-invoke-timeout) and idempotent retries (-invoke-retries).
// GET /api/v1/admin/health aggregates all of it for load balancers,
// and threshold alerts stream over /api/v1/admin/alerts/stream or
// POST to -alert-webhook.
//
// The integrity knobs guard the journals against bit rot: every record
// is framed with a CRC-32C envelope and every sealed segment and
// snapshot carries a footer seal (always on; -disable-journal-checksums
// reverts to the unsummed legacy format for comparison). -scrub-interval
// (5m by default) re-verifies sealed segments, snapshots and archives
// in the background, at most -scrub-budget-bytes of IO per tick;
// detections fire the journal-corruption alert and show in
// GET /api/v1/admin/health. -quarantine-corrupt makes an open that
// finds corruption move the damaged files aside and serve the
// surviving history read-only (latched until restart) instead of
// refusing to start; repair offline with geleectl fsck. The outcall
// pool knobs (-max-conns-per-host, -max-idle-conns) bound the HTTP
// connection pool behind REST/SOAP action dispatch.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"github.com/liquidpub/gelee"
	"github.com/liquidpub/gelee/internal/scenario"
)

// defaultMaxQueueDepth is the tuned admission watermark (geleebench
// -experiment openloop, BENCH_openloop.json): at depths past ~512 the
// commit backlog only adds queueing delay to every acked mutation
// without improving throughput, while shedding at 512 keeps acked p99
// bounded under 2x-capacity overload. Resume stays at the watermark/2
// hysteresis built into the admission gate. Set -max-queue-depth 0 to
// disable shedding (the pre-tuning behavior).
const defaultMaxQueueDepth = 512

func main() {
	addr := flag.String("addr", ":8085", "listen address")
	dataDir := flag.String("data", "", "data directory (empty = in-memory)")
	auth := flag.Bool("auth", false, "enforce roles via the X-Gelee-User header")
	seed := flag.Bool("seed", false, "load the LiquidPub demo project")
	engine := flag.String("engine", "", "storage engine: journal|memory (default: journal when -data is set)")
	sync := flag.Bool("sync", false, "fsync every group-commit journal batch")
	shards := flag.Int("store-shards", 0, "repository lock-stripe count (0 = default)")
	rtShards := flag.Int("runtime-shards", 0, "runtime instance-table lock-stripe count (0 = default)")
	flushInterval := flag.Duration("journal-flush-interval", 0, "group-commit wait to grow a batch (0 = opportunistic)")
	flushBatch := flag.Int("journal-flush-batch", 0, "max journal entries per group-commit batch (0 = default)")
	segmentMax := flag.Int64("segment-max-bytes", 64<<20, "rotate journal segments past this size; folded into snapshots in the background (0 = no rotation)")
	snapshotEvery := flag.Int("snapshot-every", 0, "fold once this many sealed segments accumulate (0 = every rotation)")
	logWindow := flag.Int("log-live-window", 0, "execution-log entries kept hot; older history archived by reference (0 = default, <0 = never archive)")
	foldMinInterval := flag.Duration("fold-min-interval", 15*time.Second, "minimum wall-clock spacing between background snapshot folds (0 = none)")
	foldMinGarbage := flag.Float64("fold-min-garbage", 0.25, "minimum sealed-garbage ratio before a background fold runs (0 = none)")
	readCache := flag.Int("read-cache-entries", 0, "per-shard LRU entries for the model/template read cache (0 = default 64, <0 = disable)")
	maxEvents := flag.Int("max-events", 0, "max in-memory events per instance, ring-truncated (0 = unbounded)")
	invRetention := flag.Duration("invocation-retention", 0, "grace window before terminal invocation-index entries are GC'd (0 = keep forever)")
	persist := flag.Bool("persist-instances", true, "journal lifecycle-instance mutations and replay them on start")
	maxQueue := flag.Int("max-queue-depth", defaultMaxQueueDepth, "shed mutating requests with 429 once the commit backlog passes this depth (0 = no shedding)")
	shedRetry := flag.Duration("shed-retry-after", 0, "Retry-After hint attached to shed responses (0 = default)")
	readonlyAfter := flag.Int("readonly-after", 0, "consecutive journal append failures before entering read-only mode (0 = default)")
	recoverAfter := flag.Int("recover-after", 0, "consecutive successful appends/probes before leaving a degraded state (0 = default)")
	probeInterval := flag.Duration("health-probe-interval", time.Second, "how often a degraded node probes the journal to detect recovery (0 = never)")
	invokeTimeout := flag.Duration("invoke-timeout", 0, "per-attempt timeout for REST/SOAP action outcalls (0 = default 30s)")
	invokeRetries := flag.Int("invoke-retries", 0, "attempts per idempotent action send, with jittered backoff (0 = default)")
	invokeInflight := flag.Int("invoke-max-inflight", 0, "max concurrent outcalls per action endpoint (0 = default, <0 = unlimited)")
	breakerFailures := flag.Int("breaker-failures", 0, "consecutive outcall failures before an endpoint's circuit opens (0 = default, <0 = disable breakers)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long an open circuit waits before trying a half-open probe (0 = default)")
	alertWebhook := flag.String("alert-webhook", "", "URL POSTed a JSON body when a health threshold fires or resolves")
	alertInterval := flag.Duration("alert-interval", 0, "threshold evaluation period for the alert watcher (0 = only when -alert-webhook is set)")
	quarantine := flag.Bool("quarantine-corrupt", false, "on corrupt journal files at open: quarantine them and serve the surviving history read-only instead of failing")
	scrubInterval := flag.Duration("scrub-interval", 5*time.Minute, "background re-verification cadence for sealed segments, snapshots and archives (0 = never)")
	scrubBudget := flag.Int64("scrub-budget-bytes", 0, "max bytes one scrub tick may read (0 = default 8 MiB)")
	noChecksums := flag.Bool("disable-journal-checksums", false, "write unsummed legacy journal records without CRC envelopes or footers")
	maxConnsPerHost := flag.Int("max-conns-per-host", 0, "max outcall connections per action endpoint host (0 = default 128, <0 = unlimited)")
	maxIdleConns := flag.Int("max-idle-conns", 0, "max idle outcall connections across all hosts (0 = default 256, <0 = no keep-alive)")
	flag.Parse()

	sys, err := gelee.New(gelee.Options{
		DataDir:              *dataDir,
		Engine:               *engine,
		SyncJournal:          *sync,
		StoreShards:          *shards,
		JournalFlushInterval: *flushInterval,
		JournalFlushBatch:    *flushBatch,
		SegmentMaxBytes:      *segmentMax,
		SnapshotEvery:        *snapshotEvery,
		LogLiveWindow:        *logWindow,
		FoldMinInterval:      *foldMinInterval,
		FoldMinGarbage:       *foldMinGarbage,
		ReadCacheEntries:     *readCache,
		RuntimeShards:        *rtShards,
		MaxEventsInMemory:    *maxEvents,
		InvocationRetention:  *invRetention,
		PersistInstances:     *persist,
		Auth:                 *auth,
		EmbeddedPlugins:      true,
		Integrity: gelee.IntegrityOptions{
			Quarantine:        *quarantine,
			DisableFraming:    *noChecksums,
			ScrubInterval:     *scrubInterval,
			ScrubBytesPerTick: *scrubBudget,
		},
		Resilience: gelee.ResilienceOptions{
			MaxQueueDepth:     *maxQueue,
			ShedRetryAfter:    *shedRetry,
			ReadOnlyAfter:     *readonlyAfter,
			RecoverAfter:      *recoverAfter,
			ProbeInterval:     *probeInterval,
			InvokeTimeout:     *invokeTimeout,
			InvokeAttempts:    *invokeRetries,
			InvokeMaxInFlight: *invokeInflight,
			BreakerFailures:   *breakerFailures,
			BreakerCooldown:   *breakerCooldown,
			AlertWebhook:      *alertWebhook,
			AlertInterval:     *alertInterval,
			MaxConnsPerHost:   *maxConnsPerHost,
			MaxIdleConns:      *maxIdleConns,
		},
	})
	if err != nil {
		log.Fatalf("geleed: %v", err)
	}
	defer sys.Close()

	if *persist {
		rec := sys.RecoveryStats()
		log.Printf("instance recovery: %d instances, %d events, %d executions from %d journal records (%v)",
			rec.Instances, rec.Events, rec.Executions, rec.Records, rec.Elapsed.Round(time.Microsecond))
		if inst := sys.StoreStats().Instances; inst != nil {
			log.Printf("instance journal: replayed %d snapshot + %d tail records (%d folded skipped) over %d tail segments",
				inst.Replay.SnapshotEntries, inst.Replay.TailEntries, inst.Replay.SkippedEntries, inst.Replay.Segments)
		}
	}

	if *seed {
		// A recovered population means the demo was already seeded in a
		// previous life; re-seeding would duplicate all 35 deliverables.
		if n := sys.InstanceCount(); n > 0 {
			log.Printf("skipping seed: %d instances recovered from the journal", n)
		} else {
			if err := seedLiquidPub(sys); err != nil {
				log.Fatalf("geleed: seed: %v", err)
			}
			// Count sums shard sizes — no per-instance deep copies just
			// to log a number.
			log.Printf("seeded LiquidPub demo: %d instances", sys.InstanceCount())
		}
	}

	stats := sys.StoreStats()
	log.Printf("gelee lifecycle manager listening on %s (auth=%t, data=%q, engine=%s, store-shards=%d, runtime-shards=%d)",
		*addr, *auth, *dataDir, stats.Engine.Engine, stats.Shards, sys.RuntimeStats().Shards)
	if n := sys.ReadCacheEntriesPerShard(); n > 0 {
		log.Printf("read cache: models/templates LRU, %d entries/shard x %d shards (max %d cached values); admission watermark %d",
			n, stats.Shards, n*stats.Shards, *maxQueue)
	} else {
		log.Printf("read cache: disabled; admission watermark %d", *maxQueue)
	}
	log.Printf("try: curl http://localhost%s/api/v1/monitor/summary", *addr)
	if err := http.ListenAndServe(*addr, sys.HTTPHandler()); err != nil {
		log.Fatal(err)
	}
}

// seedLiquidPub creates the paper's §II.A project: the quality plan and
// its 35 deliverables spread over the simulated managing applications,
// each advanced to a different lifecycle stage.
func seedLiquidPub(sys *gelee.System) error {
	model, deliverables := scenario.LiquidPub()
	if err := sys.DefineModel("", model); err != nil {
		return err
	}
	if err := sys.SaveTemplate("", model); err != nil {
		return err
	}
	for i, d := range deliverables {
		if err := createResource(sys, d); err != nil {
			return err
		}
		snap, err := sys.Instantiate(model.URI, d.Ref, d.Owner, map[string]map[string]string{
			"http://www.liquidpub.org/a/notify": {"reviewers": d.Reviewers},
			"http://www.liquidpub.org/a/post":   {"site": "project.liquidpub.org"},
		})
		if err != nil {
			return err
		}
		// Spread instances across the lifecycle for an interesting
		// cockpit view.
		steps := i % len(scenario.HappyPath)
		for j := 0; j <= steps; j++ {
			if _, err := sys.Advance(snap.ID, scenario.HappyPath[j], d.Owner, gelee.AdvanceOptions{}); err != nil {
				return fmt.Errorf("advance %s: %w", d.ID, err)
			}
		}
	}
	return nil
}

func createResource(sys *gelee.System, d scenario.Deliverable) error {
	id := lastSegment(d.Ref.URI)
	switch d.Ref.Type {
	case "mediawiki":
		_, err := sys.Sims.Wiki.CreatePage(id, d.Owner, "= "+d.Title+" =")
		return err
	case "gdoc":
		_, err := sys.Sims.GDocs.Create(id, d.Title, d.Owner, "Draft of "+d.Title)
		return err
	case "svn":
		if _, err := sys.Sims.SVN.CreateRepo(id); err != nil {
			return err
		}
		_, err := sys.Sims.SVN.Commit(id, d.Owner, "import "+d.Title)
		return err
	}
	return fmt.Errorf("unknown resource type %q", d.Ref.Type)
}

func lastSegment(uri string) string {
	uri = strings.TrimRight(uri, "/")
	if i := strings.LastIndexAny(uri, "/:"); i >= 0 {
		return uri[i+1:]
	}
	return uri
}
