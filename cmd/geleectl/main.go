// Command geleectl is the command-line front end to a running geleed:
// the "designer", "artifact owner" and "project manager" roles of the
// paper driven from a terminal instead of the AJAX GUI.
//
// Usage:
//
//	geleectl [-server http://localhost:8085] [-user NAME] COMMAND [ARGS]
//
// Commands:
//
//	models                         list lifecycle models
//	model URI                      show one model (Table I XML)
//	define FILE.xml                define a model from Table I XML
//	actions [RESOURCE_TYPE]        browse the action library (Fig. 3)
//	instances                      list lifecycle instances
//	instance ID                    show one instance
//	instantiate MODELURI RESURI TYPE [reviewers]
//	advance ID PHASE [annotation]  move the token
//	annotate ID NOTE               attach a note
//	migrate ID accept [LANDING] | reject [NOTE]
//	summary | overview | late      monitoring cockpit
//	timeline ID                    instance history
//	widget ID                      widget HTML
//	fsck [-repair] DATADIR         offline journal integrity check
//
// fsck is the one offline command: it opens no server connection but
// walks a (stopped) geleed data directory — and its instances journal —
// verifying every record CRC, segment footer and archive checksum, and
// prints a per-file JSON report. With -repair it truncates torn active
// tails and moves corrupt files aside (.quarantined) so the directory
// opens again. Exits 1 when corruption was found.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	"github.com/liquidpub/gelee/internal/store"
)

func main() {
	server := flag.String("server", "http://localhost:8085", "geleed base URL")
	user := flag.String("user", "", "acting user (X-Gelee-User)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "geleectl: no command (try: models, instances, summary)")
		os.Exit(2)
	}
	if args[0] == "fsck" {
		if err := runFsck(args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "geleectl: %v\n", err)
			os.Exit(1)
		}
		return
	}
	c := &client{base: *server, user: *user}
	if err := c.run(args[0], args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "geleectl: %v\n", err)
		os.Exit(1)
	}
}

// runFsck checks (and with -repair, fixes) a geleed data directory
// offline: the definitions journal at DATADIR and, when present, the
// instance journal at DATADIR/instances. Stop geleed first — fsck reads
// the same files the server appends to.
func runFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ContinueOnError)
	repair := fs.Bool("repair", false, "truncate torn active tails and quarantine corrupt files")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: geleectl fsck [-repair] DATADIR")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: fsck [-repair] DATADIR")
	}
	dataDir := fs.Arg(0)
	if _, err := os.Stat(dataDir); err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	dirs := []string{dataDir}
	if info, err := os.Stat(filepath.Join(dataDir, "instances")); err == nil && info.IsDir() {
		dirs = append(dirs, filepath.Join(dataDir, "instances"))
	}
	corrupt, torn, repaired := 0, 0, 0
	reports := make([]store.FsckReport, 0, len(dirs))
	for _, d := range dirs {
		rep, err := store.Fsck(d, *repair)
		if err != nil {
			return err
		}
		corrupt += rep.Corrupt
		torn += rep.Torn
		repaired += rep.Repaired
		reports = append(reports, rep)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reports); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fsck: %d corrupt, %d torn, %d repaired across %d dir(s)\n",
		corrupt, torn, repaired, len(dirs))
	if corrupt > 0 {
		return fmt.Errorf("fsck: corruption found in %d file(s)", corrupt)
	}
	return nil
}

type client struct {
	base string
	user string
}

func (c *client) run(cmd string, args []string) error {
	switch cmd {
	case "models":
		return c.getJSON("/api/v1/models")
	case "model":
		if len(args) != 1 {
			return fmt.Errorf("usage: model URI")
		}
		// Path-escaped model addressing (the /models/one query-param
		// lookup is deprecated).
		return c.getRaw("/api/v1/models/" + url.PathEscape(args[0]) + "?format=xml")
	case "define":
		if len(args) != 1 {
			return fmt.Errorf("usage: define FILE.xml")
		}
		data, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		return c.post("/api/v1/models", "application/xml", data)
	case "actions":
		path := "/api/v1/actions"
		if len(args) == 1 {
			path += "?resource_type=" + args[0]
		}
		return c.getJSON(path)
	case "instances":
		return c.getJSON("/api/v1/instances")
	case "instance":
		if len(args) != 1 {
			return fmt.Errorf("usage: instance ID")
		}
		return c.getJSON("/api/v1/instances/" + args[0])
	case "instantiate":
		if len(args) < 3 {
			return fmt.Errorf("usage: instantiate MODELURI RESURI TYPE [reviewers]")
		}
		body := map[string]any{
			"model_uri": args[0],
			"resource":  map[string]string{"uri": args[1], "type": args[2]},
			"owner":     c.user,
		}
		if len(args) > 3 {
			body["bindings"] = map[string]map[string]string{
				"http://www.liquidpub.org/a/notify": {"reviewers": args[3]},
			}
		}
		return c.postJSON("/api/v1/instances", body)
	case "advance":
		if len(args) < 2 {
			return fmt.Errorf("usage: advance ID PHASE [annotation]")
		}
		body := map[string]any{"to": args[1]}
		if len(args) > 2 {
			body["annotation"] = strings.Join(args[2:], " ")
		}
		return c.postJSON("/api/v1/instances/"+args[0]+"/advance", body)
	case "annotate":
		if len(args) < 2 {
			return fmt.Errorf("usage: annotate ID NOTE")
		}
		return c.postJSON("/api/v1/instances/"+args[0]+"/annotations",
			map[string]any{"note": strings.Join(args[1:], " ")})
	case "migrate":
		if len(args) < 2 {
			return fmt.Errorf("usage: migrate ID accept [LANDING] | reject [NOTE]")
		}
		body := map[string]any{"decision": args[1]}
		if len(args) > 2 {
			if args[1] == "accept" {
				body["landing"] = args[2]
			} else {
				body["note"] = strings.Join(args[2:], " ")
			}
		}
		return c.postJSON("/api/v1/instances/"+args[0]+"/migrate", body)
	case "summary":
		return c.getJSON("/api/v1/monitor/summary")
	case "overview":
		return c.getJSON("/api/v1/monitor/overview")
	case "late":
		return c.getJSON("/api/v1/monitor/late")
	case "timeline":
		if len(args) != 1 {
			return fmt.Errorf("usage: timeline ID")
		}
		return c.getJSON("/api/v1/monitor/instances/" + args[0] + "/timeline")
	case "widget":
		if len(args) != 1 {
			return fmt.Errorf("usage: widget ID")
		}
		return c.getRaw("/widgets/" + args[0])
	}
	return fmt.Errorf("unknown command %q", cmd)
}

func (c *client) do(method, path, contentType string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if c.user != "" {
		req.Header.Set("X-Gelee-User", c.user)
	}
	return http.DefaultClient.Do(req)
}

func (c *client) render(resp *http.Response) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	// Pretty-print JSON; pass anything else through.
	var pretty bytes.Buffer
	if json.Indent(&pretty, data, "", "  ") == nil {
		pretty.WriteByte('\n')
		_, err = pretty.WriteTo(os.Stdout)
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}

func (c *client) getJSON(path string) error {
	resp, err := c.do(http.MethodGet, path, "", nil)
	if err != nil {
		return err
	}
	return c.render(resp)
}

func (c *client) getRaw(path string) error {
	resp, err := c.do(http.MethodGet, path, "", nil)
	if err != nil {
		return err
	}
	return c.render(resp)
}

func (c *client) post(path, contentType string, body []byte) error {
	resp, err := c.do(http.MethodPost, path, contentType, body)
	if err != nil {
		return err
	}
	return c.render(resp)
}

func (c *client) postJSON(path string, body any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.post(path, "application/json", data)
}
