package gelee

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/access"
	"github.com/liquidpub/gelee/internal/runtime"
	"github.com/liquidpub/gelee/internal/scenario"
	"github.com/liquidpub/gelee/internal/vclock"
)

// newSystem builds an embedded, deterministic system with all simulated
// plug-ins wired.
func newSystem(t testing.TB, opts Options) *System {
	t.Helper()
	if opts.Clock == nil {
		opts.Clock = vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	}
	opts.EmbeddedPlugins = true
	opts.SyncActions = true
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

// seedWikiDeliverable creates the underlying wiki page and returns its
// resource ref.
func seedWikiDeliverable(t testing.TB, sys *System, id string) Ref {
	t.Helper()
	if _, err := sys.Sims.Wiki.CreatePage(id, "unitn-lead", "= "+id+" ="); err != nil {
		t.Fatal(err)
	}
	return Ref{URI: "http://wiki.liquidpub.org/pages/" + id, Type: "mediawiki"}
}

func TestEndToEndDeliverableLifecycle(t *testing.T) {
	sys := newSystem(t, Options{})
	model := scenario.QualityPlan()
	if err := sys.DefineModel("", model); err != nil {
		t.Fatal(err)
	}
	ref := seedWikiDeliverable(t, sys, "D1.1")

	snap, err := sys.Instantiate(model.URI, ref, "unitn-lead", map[string]map[string]string{
		"http://www.liquidpub.org/a/notify": {"reviewers": "epfl-reviewer,inria-reviewer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	id := snap.ID

	// Walk the Fig. 1 happy path.
	for _, phase := range scenario.HappyPath {
		opts := AdvanceOptions{}
		if phase == "publication" {
			opts.CallBindings = map[string]map[string]string{
				"http://www.liquidpub.org/a/post": {"site": "project.liquidpub.org"},
			}
		}
		if _, err := sys.Advance(id, phase, "unitn-lead", opts); err != nil {
			t.Fatalf("Advance(%s): %v", phase, err)
		}
	}
	got, _ := sys.Instance(id)
	if got.State != runtime.StateCompleted {
		t.Fatalf("state = %s", got.State)
	}

	// Every dispatched action completed through the embedded plug-ins.
	for _, ex := range got.Executions {
		if !ex.Terminal || ex.LastStatus != "completed" {
			t.Fatalf("execution %+v did not complete", ex)
		}
	}
	// The managing application saw the side effects: protection was
	// changed, reviewers watch the page, publication lifted protection.
	page, _ := sys.Sims.Wiki.Page("D1.1")
	if len(page.Watchers) < 2 {
		t.Fatalf("watchers = %v", page.Watchers)
	}
	if page.Protection != "none" {
		t.Fatalf("protection after publication = %s", page.Protection)
	}
	// Reviewers were notified through the notification substrate.
	if len(sys.Sims.Notify.Inbox("epfl-reviewer")) == 0 {
		t.Fatal("reviewer not notified")
	}
	// The execution log captured the full history.
	if entries := sys.ExecutionLog().ByInstance(id); len(entries) < 10 {
		t.Fatalf("execution log entries = %d", len(entries))
	}
}

func TestUniversalitySameModelThreeResourceTypes(t *testing.T) {
	// §IV.C: the same lifecycle and the same actions on resources of
	// different types.
	sys := newSystem(t, Options{})
	model := scenario.QualityPlan()
	if err := sys.DefineModel("", model); err != nil {
		t.Fatal(err)
	}
	sys.Sims.Wiki.CreatePage("D1.1", "a", "text")
	sys.Sims.GDocs.Create("D2.1", "Doc D2.1", "a", "text")
	sys.Sims.SVN.CreateRepo("D3.1")
	sys.Sims.SVN.Commit("D3.1", "a", "import")

	refs := []Ref{
		{URI: "http://wiki.liquidpub.org/pages/D1.1", Type: "mediawiki"},
		{URI: "http://docs.liquidpub.org/docs/D2.1", Type: "gdoc"},
		{URI: "svn://svn.liquidpub.org/D3.1", Type: "svn"},
	}
	for _, ref := range refs {
		snap, err := sys.Instantiate(model.URI, ref, "owner", map[string]map[string]string{
			"http://www.liquidpub.org/a/notify": {"reviewers": "r1"},
		})
		if err != nil {
			t.Fatalf("%s: %v", ref.Type, err)
		}
		if _, err := sys.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{}); err != nil {
			t.Fatalf("%s: %v", ref.Type, err)
		}
		if _, err := sys.Advance(snap.ID, "internalreview", "owner", AdvanceOptions{}); err != nil {
			t.Fatalf("%s: %v", ref.Type, err)
		}
		got, _ := sys.Instance(snap.ID)
		// chr resolves for every type; notify only for wiki and gdoc.
		var chrOK, notifyFailed bool
		for _, ex := range got.Executions {
			if ex.ActionURI == "http://www.liquidpub.org/a/chr" && ex.LastStatus == "completed" {
				chrOK = true
			}
			if ex.ActionURI == "http://www.liquidpub.org/a/notify" && ex.LastStatus == "failed" {
				notifyFailed = true
			}
		}
		if !chrOK {
			t.Errorf("%s: change-access-rights did not complete: %+v", ref.Type, got.Executions)
		}
		if ref.Type == "svn" && !notifyFailed {
			t.Errorf("svn: notify should fail (no implementation)")
		}
		if ref.Type != "svn" && notifyFailed {
			t.Errorf("%s: notify failed unexpectedly", ref.Type)
		}
	}
	// The wiki page and the google doc both had their rights changed,
	// each through its own native concept.
	page, _ := sys.Sims.Wiki.Page("D1.1")
	if page.Protection != "autoconfirmed" {
		t.Errorf("wiki protection = %s", page.Protection)
	}
	doc, _ := sys.Sims.GDocs.Get("D2.1")
	if doc.Mode != "reviewers-only" {
		t.Errorf("gdoc mode = %s", doc.Mode)
	}
	repo, _ := sys.Sims.SVN.Repo("D3.1")
	if repo.Authz != "reviewers-only" {
		t.Errorf("svn authz = %s", repo.Authz)
	}
}

func TestPropagateToRunningInstances(t *testing.T) {
	sys := newSystem(t, Options{})
	model := scenario.QualityPlan()
	sys.DefineModel("", model)
	ref := seedWikiDeliverable(t, sys, "D1.1")
	ref2 := seedWikiDeliverable(t, sys, "D1.2")

	a, _ := sys.Instantiate(model.URI, ref, "owner", nil)
	b, _ := sys.Instantiate(model.URI, ref2, "owner", nil)
	sys.Advance(a.ID, "elaboration", "owner", AdvanceOptions{})
	// Complete b so propagation skips it.
	sys.Advance(b.ID, "accepted", "owner", AdvanceOptions{Annotation: "already delivered"})

	v2 := model.Clone()
	v2.Version.Number = "2.0"
	v2.Phases = append(v2.Phases, &Phase{ID: "archival", Name: "Archival"})
	v2.Transitions = append(v2.Transitions, Transition{From: "accepted", To: "archival"})
	n, err := sys.Propagate("", v2, "add archival phase")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("proposed to %d instances, want 1 (completed skipped)", n)
	}
	got, _ := sys.Instance(a.ID)
	if got.Pending == nil {
		t.Fatal("proposal missing on running instance")
	}
	// Owner accepts; stored model is now v2.
	after, err := sys.AcceptChange(a.ID, "owner", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := after.Model.Phase("archival"); !ok {
		t.Fatal("migrated instance lacks new phase")
	}
	stored, _ := sys.Model(model.URI)
	if stored.Version.Number != "2.0" {
		t.Fatalf("stored model version = %s", stored.Version.Number)
	}
}

func TestAuthEnforcesRoles(t *testing.T) {
	sys := newSystem(t, Options{Auth: true})
	for _, u := range []string{"coordinator", "owner", "dev", "stranger"} {
		if err := sys.AddUser(User{Name: u}); err != nil {
			t.Fatal(err)
		}
	}
	model := scenario.QualityPlan()
	if err := sys.DefineModel("coordinator", model); err != nil {
		t.Fatal(err)
	}
	// Defining a fresh URI granted the lifecycle-manager role.
	if !sys.ACL.CanDesign("coordinator", model.URI) {
		t.Fatal("definer did not receive the lifecycle-manager role")
	}
	// A stranger cannot redefine it.
	v2 := model.Clone()
	v2.Name = "hijacked"
	if err := sys.DefineModel("stranger", v2); !errors.Is(err, ErrForbidden) {
		t.Fatalf("err = %v, want ErrForbidden", err)
	}

	ref := seedWikiDeliverable(t, sys, "D1.1")
	snap, err := sys.Instantiate(model.URI, ref, "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The owner got the instance-owner role automatically.
	if _, err := sys.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	// dev (no role) cannot move the token.
	if _, err := sys.Advance(snap.ID, "internalreview", "dev", AdvanceOptions{}); !errors.Is(err, runtime.ErrForbidden) {
		t.Fatalf("err = %v, want forbidden", err)
	}
	// Grant dev a targeted token-owner role; the granted transition works.
	sys.AddGrant(Grant{User: "dev", Role: RoleTokenOwner, Scope: snap.ID, Targets: []string{"internalreview"}})
	if _, err := sys.Advance(snap.ID, "internalreview", "dev", AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	// But deviations stay owner-only.
	if _, err := sys.Advance(snap.ID, "publication", "dev", AdvanceOptions{}); !errors.Is(err, runtime.ErrForbidden) {
		t.Fatalf("err = %v, want forbidden", err)
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))

	sys, err := New(Options{DataDir: dir, Clock: clock, EmbeddedPlugins: true, SyncActions: true})
	if err != nil {
		t.Fatal(err)
	}
	model := scenario.QualityPlan()
	sys.DefineModel("", model)
	sys.SaveTemplate("", model)
	sys.AddUser(User{Name: "coordinator", Admin: true})
	sys.AddGrant(Grant{User: "coordinator", Role: RoleLifecycleManager, Scope: model.URI})
	sys.RegisterAction("", ActionType{URI: "urn:custom:act", Name: "Custom"},
		Implementation{ResourceType: "mediawiki", Endpoint: "http://x/act", Protocol: "rest"})
	sys.Sims.Wiki.CreatePage("D1.1", "o", "x")
	snap, err := sys.Instantiate(model.URI, Ref{URI: "http://wiki/D1.1", Type: "mediawiki"}, "coordinator", nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.Advance(snap.ID, "elaboration", "coordinator", AdvanceOptions{})
	logLen := sys.ExecutionLog().Len()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the data tier (Fig. 2) must come back — models,
	// templates, users, grants, action definitions, execution log.
	sys2, err := New(Options{DataDir: dir, Clock: clock, EmbeddedPlugins: true, SyncActions: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if _, ok := sys2.Model(model.URI); !ok {
		t.Fatal("model lost")
	}
	if _, ok := sys2.Template(model.URI); !ok {
		t.Fatal("template lost")
	}
	if !sys2.UserExists("coordinator") {
		t.Fatal("user lost")
	}
	if !sys2.ACL.Has("coordinator", access.RoleLifecycleManager, model.URI) {
		t.Fatal("grant lost")
	}
	if _, ok := sys2.Registry.Type("urn:custom:act"); !ok {
		t.Fatal("action type lost")
	}
	if _, err := sys2.Registry.Resolve("urn:custom:act", "mediawiki"); err != nil {
		t.Fatalf("action implementation lost: %v", err)
	}
	if sys2.ExecutionLog().Len() != logLen {
		t.Fatalf("execution log = %d entries, want %d", sys2.ExecutionLog().Len(), logLen)
	}
	// Per Fig. 2 the data tier holds definitions and logs, not live
	// instances — without Options.PersistInstances a fresh runtime
	// starts empty (restart_test.go covers the durable-instances mode).
	if got := len(sys2.Instances()); got != 0 {
		t.Fatalf("instances after restart = %d, want 0 (paper's data tier)", got)
	}
}

func TestTemplatesAreIndependentCopies(t *testing.T) {
	sys := newSystem(t, Options{})
	m := scenario.QualityPlan()
	sys.SaveTemplate("", m)
	tpl, _ := sys.Template(m.URI)
	tpl.Name = "customized for D7.1"
	fresh, _ := sys.Template(m.URI)
	if fresh.Name == "customized for D7.1" {
		t.Fatal("template storage aliased")
	}
}

func TestActionBrowsing(t *testing.T) {
	sys := newSystem(t, Options{})
	all := sys.ActionTypes("")
	if len(all) < 6 {
		t.Fatalf("design-time browse = %d types", len(all))
	}
	svn := sys.ActionTypes("svn")
	if len(svn) != 3 {
		t.Fatalf("runtime browse for svn = %d types, want 3", len(svn))
	}
	if got := sys.ActionTypes("teleporter"); len(got) != 0 {
		t.Fatalf("unknown type browse = %d", len(got))
	}
}

func TestInstantiateUnknownModel(t *testing.T) {
	sys := newSystem(t, Options{})
	if _, err := sys.Instantiate("urn:ghost", Ref{URI: "u", Type: "t"}, "o", nil); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestInstantiateChecksResourceExists(t *testing.T) {
	sys := newSystem(t, Options{})
	model := scenario.QualityPlan()
	sys.DefineModel("", model)
	// mediawiki plug-in is registered, so Check hits it: missing page.
	_, err := sys.Instantiate(model.URI, Ref{URI: "http://wiki/ghost", Type: "mediawiki"}, "o", nil)
	if err == nil || !strings.Contains(err.Error(), "no page") {
		t.Fatalf("err = %v, want wiki existence failure", err)
	}
	// But a URI with an unmanaged type is always accepted (universality).
	if _, err := sys.Instantiate(model.URI, Ref{URI: "urn:house:42", Type: "house-under-construction"}, "o", nil); err != nil {
		t.Fatalf("unmanaged type refused: %v", err)
	}
}

func TestWidgetsAndMonitorWiredIn(t *testing.T) {
	sys := newSystem(t, Options{})
	model := scenario.QualityPlan()
	sys.DefineModel("", model)
	ref := seedWikiDeliverable(t, sys, "D1.1")
	snap, _ := sys.Instantiate(model.URI, ref, "owner", nil)
	sys.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{})

	html, err := sys.Widgets().HTML(snap.ID, "anyone")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, "D1.1") {
		t.Fatal("widget does not render the resource")
	}
	sum := sys.Monitor().Summarize()
	if sum.Total != 1 || sum.ByPhase["Elaboration"] != 1 {
		t.Fatalf("summary = %+v", sum)
	}
}
