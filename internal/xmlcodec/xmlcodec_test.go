package xmlcodec

import (
	"strings"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
)

// tableI is the lifecycle definition XML of the paper's Table I,
// reproduced with the ellipses filled in with the Fig. 1 content.
const tableI = `<?xml version="1.0" encoding="UTF-8"?>
<process uri="urn:gelee:models:eu-deliverable">
  <name>EU Project deliverable lifecycle</name>
  <version_info>
    <version_number>1.0</version_number>
    <created_by>lpAdmin</created_by>
    <creation_date>08/07/2008</creation_date>
  </version_info>
  <resource>
    <resource_type>MediaWiki page</resource_type>
  </resource>
  <phases_list>
    <phase id="elaboration">
      <name>Elaboration</name>
    </phase>
    <phase id="internalreview">
      <name>Internal review</name>
      <action_call>
        <action>
          <name>Change access rights</name>
          <uri>http://www.liquidpub.org/a/chr</uri>
          <parameters>
            <param id="mode">reviewers-only</param>
          </parameters>
        </action>
        <action>
          <name>Notify reviewers</name>
          <uri>http://www.liquidpub.org/a/notify</uri>
          <parameters>
            <param id="reviewers">alice,bob</param>
          </parameters>
        </action>
      </action_call>
    </phase>
    <phase id="finalassembly">
      <name>Final assembly</name>
      <action_call>
        <action>
          <name>Generate PDF</name>
          <uri>http://www.liquidpub.org/a/pdf</uri>
        </action>
      </action_call>
    </phase>
    <phase id="eureview">
      <name>EU Review</name>
    </phase>
    <phase id="publication" final="yes">
      <name>Publication</name>
    </phase>
  </phases_list>
  <transition_list>
    <transition>
      <from>BEGIN</from>
      <to>elaboration</to>
    </transition>
    <transition>
      <from>elaboration</from>
      <to>internalreview</to>
    </transition>
    <transition>
      <from>internalreview</from>
      <to>elaboration</to>
    </transition>
    <transition>
      <from>internalreview</from>
      <to>finalassembly</to>
    </transition>
    <transition>
      <from>finalassembly</from>
      <to>eureview</to>
    </transition>
    <transition>
      <from>eureview</from>
      <to>publication</to>
    </transition>
  </transition_list>
</process>
`

func TestUnmarshalTableI(t *testing.T) {
	m, err := UnmarshalModel([]byte(tableI))
	if err != nil {
		t.Fatalf("UnmarshalModel(Table I): %v", err)
	}
	if m.Name != "EU Project deliverable lifecycle" {
		t.Fatalf("name = %q", m.Name)
	}
	if m.Version.Number != "1.0" || m.Version.CreatedBy != "lpAdmin" {
		t.Fatalf("version = %+v", m.Version)
	}
	want := time.Date(2008, 7, 8, 0, 0, 0, 0, time.UTC)
	if !m.Version.Created.Equal(want) {
		t.Fatalf("creation date = %v, want %v (dd/mm/yyyy parse)", m.Version.Created, want)
	}
	if len(m.ResourceTypes) != 1 || m.ResourceTypes[0] != "MediaWiki page" {
		t.Fatalf("resource types = %v", m.ResourceTypes)
	}
	if len(m.Phases) != 5 {
		t.Fatalf("phases = %d, want 5", len(m.Phases))
	}
	ir, ok := m.Phase("internalreview")
	if !ok || len(ir.Actions) != 2 {
		t.Fatalf("internalreview = %+v, want 2 actions", ir)
	}
	if ir.Actions[0].URI != "http://www.liquidpub.org/a/chr" {
		t.Fatalf("action uri = %q", ir.Actions[0].URI)
	}
	p, ok := ir.Actions[0].Param("mode")
	if !ok || p.Value != "reviewers-only" {
		t.Fatalf("param mode = %+v", p)
	}
	pub, _ := m.Phase("publication")
	if !pub.Final {
		t.Fatal("publication should parse as a terminal node")
	}
	if got := m.InitialPhases(); len(got) != 1 || got[0] != "elaboration" {
		t.Fatalf("initial phases = %v", got)
	}
	if !m.Suggests("internalreview", "elaboration") {
		t.Fatal("iteration loop transition lost in parse")
	}
}

func TestModelRoundTripPreservesFingerprint(t *testing.T) {
	m, err := UnmarshalModel([]byte(tableI))
	if err != nil {
		t.Fatal(err)
	}
	out, err := MarshalModel(m)
	if err != nil {
		t.Fatalf("MarshalModel: %v", err)
	}
	m2, err := UnmarshalModel(out)
	if err != nil {
		t.Fatalf("re-parse of our own output failed: %v\n%s", err, out)
	}
	if m.Fingerprint() != m2.Fingerprint() {
		t.Fatalf("round trip changed the model:\nfirst:  %d\nsecond: %d\n%s",
			m.Fingerprint(), m2.Fingerprint(), out)
	}
}

func TestMarshalIsSelfContained(t *testing.T) {
	// §IV.B: "the XML that describes the lifecycle definition is
	// self-contained". Binding times and required flags written into the
	// model must survive the document, not require the action registry.
	m := &core.Model{
		URI: "urn:x", Name: "X",
		Phases: []*core.Phase{
			{ID: "a", Name: "A", Actions: []core.ActionCall{{
				URI: "urn:act", Name: "Act",
				Params: []core.Param{{ID: "p", Value: "v", BindingTime: core.BindInstantiation, Required: true}},
			}}},
		},
		Transitions: []core.Transition{{From: core.Begin, To: "a"}},
	}
	out, err := MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := UnmarshalModel(out)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := m2.Phases[0].Actions[0].Param("p")
	if p.BindingTime != core.BindInstantiation || !p.Required || p.Value != "v" {
		t.Fatalf("param lost fidelity: %+v\n%s", p, out)
	}
}

func TestMarshalDeadlineAndLabels(t *testing.T) {
	m := &core.Model{
		URI: "urn:x", Name: "X",
		Phases: []*core.Phase{
			{ID: "a", Name: "A", Deadline: core.Deadline{Offset: 72 * time.Hour}},
			{ID: "b", Name: "B", Deadline: core.Deadline{Absolute: time.Date(2009, 3, 31, 0, 0, 0, 0, time.UTC)}, Final: true},
		},
		Transitions: []core.Transition{
			{From: core.Begin, To: "a"},
			{From: "a", To: "b", Label: "sign-off"},
		},
		Annotations: []string{"quality plan v1"},
	}
	out, err := MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := UnmarshalModel(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	a, _ := m2.Phase("a")
	if a.Deadline.Offset != 72*time.Hour {
		t.Fatalf("offset deadline = %v", a.Deadline.Offset)
	}
	b, _ := m2.Phase("b")
	if !b.Deadline.Absolute.Equal(time.Date(2009, 3, 31, 0, 0, 0, 0, time.UTC)) {
		t.Fatalf("absolute deadline = %v", b.Deadline.Absolute)
	}
	if m2.Transitions[1].Label != "sign-off" {
		t.Fatalf("label = %q", m2.Transitions[1].Label)
	}
	if len(m2.Annotations) != 1 || m2.Annotations[0] != "quality plan v1" {
		t.Fatalf("annotations = %v", m2.Annotations)
	}
}

func TestUnmarshalToleratesUnknownElements(t *testing.T) {
	doc := `<process uri="u">
	  <name>Loose</name>
	  <some_future_extension>ignored</some_future_extension>
	  <phases_list>
	    <phase id="a"><name>A</name><widget-hint color="blue"/></phase>
	  </phases_list>
	  <transition_list/>
	</process>`
	m, err := UnmarshalModel([]byte(doc))
	if err != nil {
		t.Fatalf("forgiving parse failed: %v", err)
	}
	if len(m.Phases) != 1 || m.Phases[0].ID != "a" {
		t.Fatalf("phases = %+v", m.Phases)
	}
}

func TestUnmarshalToleratesBadDate(t *testing.T) {
	doc := `<process uri="u"><name>X</name>
	  <version_info><version_number>1</version_number><created_by>x</created_by>
	  <creation_date>sometime in july</creation_date></version_info>
	  <phases_list><phase id="a"><name>A</name></phase></phases_list>
	  <transition_list/></process>`
	m, err := UnmarshalModel([]byte(doc))
	if err != nil {
		t.Fatalf("bad date should degrade, not fail: %v", err)
	}
	if !m.Version.Created.IsZero() {
		t.Fatalf("unparseable date should be zero, got %v", m.Version.Created)
	}
}

func TestUnmarshalAcceptsISODate(t *testing.T) {
	doc := `<process uri="u"><name>X</name>
	  <version_info><version_number>1</version_number><created_by>x</created_by>
	  <creation_date>2008-07-08</creation_date></version_info>
	  <phases_list><phase id="a"><name>A</name></phase></phases_list>
	  <transition_list/></process>`
	m, err := UnmarshalModel([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Version.Created.Equal(time.Date(2008, 7, 8, 0, 0, 0, 0, time.UTC)) {
		t.Fatalf("ISO date parse = %v", m.Version.Created)
	}
}

func TestUnmarshalRejectsInvalidModel(t *testing.T) {
	doc := `<process uri="u"><name>Bad</name>
	  <phases_list>
	    <phase id="a"><name>A</name></phase>
	    <phase id="a"><name>A again</name></phase>
	  </phases_list>
	  <transition_list/></process>`
	_, err := UnmarshalModel([]byte(doc))
	if err == nil {
		t.Fatal("duplicate phase ids should fail document validation")
	}
	if !core.IsValidation(err) {
		t.Fatalf("err = %v, want wrapped ValidationError", err)
	}
}

func TestUnmarshalRejectsMalformedXML(t *testing.T) {
	if _, err := UnmarshalModel([]byte("<process><name>broken")); err == nil {
		t.Fatal("malformed XML accepted")
	}
}

func TestMarshalEmitsTableIVocabulary(t *testing.T) {
	m, err := UnmarshalModel([]byte(tableI))
	if err != nil {
		t.Fatal(err)
	}
	out, err := MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, el := range []string{
		"<process uri=", "<name>", "<version_info>", "<version_number>",
		"<created_by>", "<creation_date>08/07/2008</creation_date>",
		"<resource>", "<resource_type>", "<phases_list>", `<phase id=`,
		"<action_call>", "<action>", "<parameters>", `<param id=`,
		"<transition_list>", "<transition>", "<from>BEGIN</from>", "<to>",
	} {
		if !strings.Contains(s, el) {
			t.Errorf("output missing Table I element %q:\n%s", el, s)
		}
	}
}

// ---- Table II ---------------------------------------------------------------

// tableII is the action type XML of the paper's Table II with concrete
// parameter rows.
const tableII = `<?xml version="1.0" encoding="UTF-8"?>
<action_type uri="http://www.liquidpub.org/a/chr">
  <name>Change Access Rights</name>
  <version_info>
    <version_number>1.0</version_number>
    <created_by>lpAdmin</created_by>
    <creation_date>08/07/2008</creation_date>
  </version_info>
  <parameters>
    <param bindingTime="any" required="yes">
      <name>mode</name>
      <value>private</value>
    </param>
    <param bindingTime="call" required="no">
      <name>note</name>
      <value></value>
    </param>
  </parameters>
</action_type>
`

func TestUnmarshalTableII(t *testing.T) {
	at, err := UnmarshalActionType([]byte(tableII))
	if err != nil {
		t.Fatalf("UnmarshalActionType: %v", err)
	}
	if at.URI != "http://www.liquidpub.org/a/chr" || at.Name != "Change Access Rights" {
		t.Fatalf("identity = %q %q", at.URI, at.Name)
	}
	if at.Version.Number != "1.0" || at.Version.CreatedBy != "lpAdmin" {
		t.Fatalf("version = %+v", at.Version)
	}
	if len(at.Params) != 2 {
		t.Fatalf("params = %d, want 2", len(at.Params))
	}
	mode, ok := at.Param("mode")
	if !ok || mode.BindingTime != core.BindAny || !mode.Required || mode.Value != "private" {
		t.Fatalf("mode = %+v", mode)
	}
	note, _ := at.Param("note")
	if note.BindingTime != core.BindCall || note.Required {
		t.Fatalf("note = %+v", note)
	}
}

func TestActionTypeRoundTrip(t *testing.T) {
	at, err := UnmarshalActionType([]byte(tableII))
	if err != nil {
		t.Fatal(err)
	}
	at.Metadata = map[string]string{"category": "access", "author": "wp3"}
	out, err := MarshalActionType(at)
	if err != nil {
		t.Fatal(err)
	}
	at2, err := UnmarshalActionType(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if at2.Name != at.Name || at2.URI != at.URI || len(at2.Params) != len(at.Params) {
		t.Fatalf("round trip lost identity: %+v", at2)
	}
	if at2.Metadata["category"] != "access" || at2.Metadata["author"] != "wp3" {
		t.Fatalf("metadata lost: %v", at2.Metadata)
	}
	m1, _ := at.Param("mode")
	m2, _ := at2.Param("mode")
	if m1 != m2 {
		t.Fatalf("mode param drifted: %+v vs %+v", m1, m2)
	}
}

func TestActionTypeMarshalEmitsTableIIVocabulary(t *testing.T) {
	at := actionlib.ActionType{
		URI: "urn:a", Name: "A",
		Version: core.VersionInfo{Number: "1.0", CreatedBy: "x", Created: time.Date(2008, 7, 8, 0, 0, 0, 0, time.UTC)},
		Params:  []core.Param{{ID: "p", Value: "v", BindingTime: core.BindDefinition, Required: true}},
	}
	out, err := MarshalActionType(at)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, el := range []string{
		`<action_type uri="urn:a">`, "<name>A</name>", "<version_info>",
		`bindingTime="def"`, `required="yes"`, "<name>p</name>", "<value>v</value>",
	} {
		if !strings.Contains(s, el) {
			t.Errorf("output missing Table II element %q:\n%s", el, s)
		}
	}
}

func TestUnmarshalActionTypeRejectsInvalid(t *testing.T) {
	if _, err := UnmarshalActionType([]byte(`<action_type uri=""><name>n</name></action_type>`)); err == nil {
		t.Fatal("action type without URI accepted")
	}
	if _, err := UnmarshalActionType([]byte(`<action_type uri="u"><name></name></action_type>`)); err == nil {
		t.Fatal("action type without name accepted")
	}
	if _, err := UnmarshalActionType([]byte("<action_type")); err == nil {
		t.Fatal("malformed XML accepted")
	}
}

func TestDateHelpers(t *testing.T) {
	if got := formatDate(time.Time{}); got != "" {
		t.Fatalf("formatDate(zero) = %q", got)
	}
	if got := parseDate("  "); !got.IsZero() {
		t.Fatalf("parseDate(blank) = %v", got)
	}
	d := time.Date(2009, 12, 31, 0, 0, 0, 0, time.UTC)
	if got := parseDate(formatDate(d)); !got.Equal(d) {
		t.Fatalf("date round trip = %v", got)
	}
}
