// Package xmlcodec implements the XML interchange formats of the paper:
// the lifecycle definition document of Table I (<process>) and the
// action type definition document of Table II (<action_type>).
//
// The element vocabulary follows the tables verbatim: process, name,
// version_info/version_number/created_by/creation_date, resource/
// resource_type, phases_list/phase/action_call/action/parameters/param,
// transition_list/transition/from/to, and action_type with
// param[@bindingTime][@required].
//
// The codec extends the published vocabulary only where the paper
// mentions features without printing their XML (deadlines, annotations,
// terminal nodes, transition labels) and always via optional attributes
// or elements, so that every document shaped exactly like Table I or
// Table II parses, and every document we emit is readable by a parser
// that only knows the tables.
//
// Parsing is deliberately forgiving (requirement §II.B.6 — robustness to
// imprecision): unknown elements are skipped, missing version blocks
// default to zero values, and unparseable dates degrade to the zero time
// rather than failing the document. Only violations of the core model's
// hard rules (reported by core.Model.Validate) reject a document.
package xmlcodec

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
)

// DateLayout is the day-precision layout of Table I and II
// (creation_date 08/07/2008 — day/month/year, the European convention of
// the authors' EU-project context).
const DateLayout = "02/01/2006"

// acceptedDateLayouts lists the formats the forgiving parser tries in
// order.
var acceptedDateLayouts = []string{DateLayout, "2006-01-02", time.RFC3339}

func parseDate(s string) time.Time {
	s = strings.TrimSpace(s)
	if s == "" {
		return time.Time{}
	}
	for _, layout := range acceptedDateLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t
		}
	}
	return time.Time{}
}

func formatDate(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.Format(DateLayout)
}

// ---- wire structs: Table I ------------------------------------------------

type xmlProcess struct {
	XMLName     xml.Name          `xml:"process"`
	URI         string            `xml:"uri,attr"`
	Name        string            `xml:"name"`
	Version     *xmlVersionInfo   `xml:"version_info"`
	Resource    *xmlResource      `xml:"resource"`
	Phases      xmlPhasesList     `xml:"phases_list"`
	Transitions xmlTransitionList `xml:"transition_list"`
	Annotations []string          `xml:"annotation,omitempty"`
}

type xmlVersionInfo struct {
	Number  string `xml:"version_number"`
	Creator string `xml:"created_by"`
	Created string `xml:"creation_date"`
}

type xmlResource struct {
	Types []string `xml:"resource_type"`
}

type xmlPhasesList struct {
	Phases []xmlPhase `xml:"phase"`
}

type xmlPhase struct {
	ID       string          `xml:"id,attr"`
	Final    string          `xml:"final,attr,omitempty"` // extension: "yes" marks a terminal node
	Name     string          `xml:"name"`
	Calls    []xmlActionCall `xml:"action_call"`
	Deadline *xmlDeadline    `xml:"deadline"` // extension
	Note     string          `xml:"annotation,omitempty"`
}

type xmlActionCall struct {
	Actions []xmlAction `xml:"action"`
}

type xmlAction struct {
	Name   string        `xml:"name"`
	URI    string        `xml:"uri"`
	Params *xmlParamList `xml:"parameters"`
}

type xmlParamList struct {
	Params []xmlCallParam `xml:"param"`
}

type xmlCallParam struct {
	ID          string `xml:"id,attr"`
	BindingTime string `xml:"bindingTime,attr,omitempty"` // extension on call params
	Required    string `xml:"required,attr,omitempty"`    // extension on call params
	Value       string `xml:",chardata"`
}

type xmlDeadline struct {
	Offset string `xml:"offset,attr,omitempty"` // Go duration string
	Due    string `xml:"due,attr,omitempty"`    // absolute date, DateLayout
}

type xmlTransitionList struct {
	Transitions []xmlTransition `xml:"transition"`
}

type xmlTransition struct {
	From  string `xml:"from"`
	To    string `xml:"to"`
	Label string `xml:"label,omitempty"` // extension: Fig. 1 "+ label" notation
}

// ---- wire structs: Table II -----------------------------------------------

type xmlActionType struct {
	XMLName xml.Name        `xml:"action_type"`
	URI     string          `xml:"uri,attr"`
	Name    string          `xml:"name"`
	Version *xmlVersionInfo `xml:"version_info"`
	Params  *xmlSpecParams  `xml:"parameters"`
	Meta    []xmlMetaEntry  `xml:"metadata>entry,omitempty"` // extension: §V.B "general metadata"
}

type xmlSpecParams struct {
	Params []xmlSpecParam `xml:"param"`
}

type xmlSpecParam struct {
	BindingTime string `xml:"bindingTime,attr,omitempty"`
	Required    string `xml:"required,attr,omitempty"`
	Name        string `xml:"name"`
	Value       string `xml:"value"`
}

type xmlMetaEntry struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// ---- conversions -----------------------------------------------------------

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return ""
}

func parseYesNo(s string) bool {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "yes", "true", "1":
		return true
	}
	return false
}

func toXMLVersion(v core.VersionInfo) *xmlVersionInfo {
	if v == (core.VersionInfo{}) {
		return nil
	}
	return &xmlVersionInfo{Number: v.Number, Creator: v.CreatedBy, Created: formatDate(v.Created)}
}

func fromXMLVersion(v *xmlVersionInfo) core.VersionInfo {
	if v == nil {
		return core.VersionInfo{}
	}
	return core.VersionInfo{Number: v.Number, CreatedBy: v.Creator, Created: parseDate(v.Created)}
}

// MarshalModel renders the model as a Table I <process> document,
// indented, with the standard XML header.
func MarshalModel(m *core.Model) ([]byte, error) {
	doc := xmlProcess{
		URI:         m.URI,
		Name:        m.Name,
		Version:     toXMLVersion(m.Version),
		Annotations: m.Annotations,
	}
	if len(m.ResourceTypes) > 0 {
		doc.Resource = &xmlResource{Types: m.ResourceTypes}
	}
	for _, p := range m.Phases {
		xp := xmlPhase{ID: p.ID, Name: p.Name, Final: yesNo(p.Final), Note: p.Note}
		if len(p.Actions) > 0 {
			call := xmlActionCall{}
			for _, a := range p.Actions {
				xa := xmlAction{Name: a.Name, URI: a.URI}
				if len(a.Params) > 0 {
					pl := &xmlParamList{}
					for _, prm := range a.Params {
						pl.Params = append(pl.Params, xmlCallParam{
							ID:          prm.ID,
							Value:       prm.Value,
							BindingTime: string(prm.BindingTime),
							Required:    yesNo(prm.Required),
						})
					}
					xa.Params = pl
				}
				call.Actions = append(call.Actions, xa)
			}
			xp.Calls = []xmlActionCall{call}
		}
		if !p.Deadline.IsZero() {
			xd := &xmlDeadline{}
			if p.Deadline.Offset != 0 {
				xd.Offset = p.Deadline.Offset.String()
			}
			if !p.Deadline.Absolute.IsZero() {
				xd.Due = formatDate(p.Deadline.Absolute)
			}
			xp.Deadline = xd
		}
		doc.Phases.Phases = append(doc.Phases.Phases, xp)
	}
	for _, t := range m.Transitions {
		doc.Transitions.Transitions = append(doc.Transitions.Transitions,
			xmlTransition{From: t.From, To: t.To, Label: t.Label})
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("xmlcodec: marshal process: %w", err)
	}
	return append([]byte(xml.Header), append(out, '\n')...), nil
}

// UnmarshalModel parses a Table I <process> document into a core model
// and validates it.
func UnmarshalModel(data []byte) (*core.Model, error) {
	var doc xmlProcess
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("xmlcodec: parse process: %w", err)
	}
	m := &core.Model{
		URI:         doc.URI,
		Name:        strings.TrimSpace(doc.Name),
		Version:     fromXMLVersion(doc.Version),
		Annotations: doc.Annotations,
	}
	if doc.Resource != nil {
		for _, t := range doc.Resource.Types {
			if t = strings.TrimSpace(t); t != "" {
				m.ResourceTypes = append(m.ResourceTypes, t)
			}
		}
	}
	for _, xp := range doc.Phases.Phases {
		p := &core.Phase{
			ID:    strings.TrimSpace(xp.ID),
			Name:  strings.TrimSpace(xp.Name),
			Final: parseYesNo(xp.Final),
			Note:  strings.TrimSpace(xp.Note),
		}
		for _, call := range xp.Calls {
			for _, xa := range call.Actions {
				a := core.ActionCall{URI: strings.TrimSpace(xa.URI), Name: strings.TrimSpace(xa.Name)}
				if xa.Params != nil {
					for _, prm := range xa.Params.Params {
						a.Params = append(a.Params, core.Param{
							ID:          strings.TrimSpace(prm.ID),
							Value:       strings.TrimSpace(prm.Value),
							BindingTime: core.BindingTime(strings.TrimSpace(prm.BindingTime)),
							Required:    parseYesNo(prm.Required),
						})
					}
				}
				p.Actions = append(p.Actions, a)
			}
		}
		if xp.Deadline != nil {
			if xp.Deadline.Offset != "" {
				if d, err := time.ParseDuration(xp.Deadline.Offset); err == nil {
					p.Deadline.Offset = d
				}
			}
			p.Deadline.Absolute = parseDate(xp.Deadline.Due)
		}
		m.Phases = append(m.Phases, p)
	}
	for _, xt := range doc.Transitions.Transitions {
		m.Transitions = append(m.Transitions, core.Transition{
			From:  strings.TrimSpace(xt.From),
			To:    strings.TrimSpace(xt.To),
			Label: strings.TrimSpace(xt.Label),
		})
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("xmlcodec: document parsed but model invalid: %w", err)
	}
	return m, nil
}

// MarshalActionType renders the action type as a Table II <action_type>
// document.
func MarshalActionType(t actionlib.ActionType) ([]byte, error) {
	doc := xmlActionType{
		URI:     t.URI,
		Name:    t.Name,
		Version: toXMLVersion(t.Version),
	}
	if len(t.Params) > 0 {
		sp := &xmlSpecParams{}
		for _, p := range t.Params {
			required := ""
			if p.Required {
				required = "yes"
			} else if p.BindingTime != "" || p.ID != "" {
				required = "no"
			}
			sp.Params = append(sp.Params, xmlSpecParam{
				BindingTime: string(p.BindingTime),
				Required:    required,
				Name:        p.ID,
				Value:       p.Value,
			})
		}
		doc.Params = sp
	}
	if len(t.Metadata) > 0 {
		// Deterministic order for stable documents.
		keys := make([]string, 0, len(t.Metadata))
		for k := range t.Metadata {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			doc.Meta = append(doc.Meta, xmlMetaEntry{Key: k, Value: t.Metadata[k]})
		}
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("xmlcodec: marshal action_type: %w", err)
	}
	return append([]byte(xml.Header), append(out, '\n')...), nil
}

// UnmarshalActionType parses a Table II <action_type> document.
func UnmarshalActionType(data []byte) (actionlib.ActionType, error) {
	var doc xmlActionType
	if err := xml.Unmarshal(data, &doc); err != nil {
		return actionlib.ActionType{}, fmt.Errorf("xmlcodec: parse action_type: %w", err)
	}
	t := actionlib.ActionType{
		URI:     strings.TrimSpace(doc.URI),
		Name:    strings.TrimSpace(doc.Name),
		Version: fromXMLVersion(doc.Version),
	}
	if doc.Params != nil {
		for _, p := range doc.Params.Params {
			t.Params = append(t.Params, core.Param{
				ID:          strings.TrimSpace(p.Name),
				Value:       strings.TrimSpace(p.Value),
				BindingTime: core.BindingTime(strings.TrimSpace(p.BindingTime)),
				Required:    parseYesNo(p.Required),
			})
		}
	}
	if len(doc.Meta) > 0 {
		t.Metadata = make(map[string]string, len(doc.Meta))
		for _, e := range doc.Meta {
			t.Metadata[e.Key] = strings.TrimSpace(e.Value)
		}
	}
	if err := t.Validate(); err != nil {
		return actionlib.ActionType{}, fmt.Errorf("xmlcodec: document parsed but action type invalid: %w", err)
	}
	return t, nil
}
