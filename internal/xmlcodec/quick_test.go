package xmlcodec

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/liquidpub/gelee/internal/core"
)

// genModel builds a random valid model exercising the full XML surface:
// random names (including XML-hostile characters), actions, params,
// binding times, deadlines, labels, annotations.
func genModel(r *rand.Rand) *core.Model {
	hostile := []string{"plain", "a<b", "c&d", `"quoted"`, "tab\tchar", "uni-cœde", "  padded  "}
	pick := func() string { return hostile[r.Intn(len(hostile))] }
	bindTimes := []core.BindingTime{core.BindDefinition, core.BindInstantiation, core.BindCall, core.BindAny, ""}

	n := 1 + r.Intn(8)
	m := &core.Model{
		URI:  fmt.Sprintf("urn:gelee:models:q%d", r.Int63()),
		Name: "Q " + pick(),
		Version: core.VersionInfo{
			Number:    fmt.Sprintf("%d.%d", r.Intn(10), r.Intn(10)),
			CreatedBy: pick(),
			Created:   time.Date(2000+r.Intn(10), time.Month(1+r.Intn(12)), 1+r.Intn(28), 0, 0, 0, 0, time.UTC),
		},
	}
	for i := 0; i < r.Intn(3); i++ {
		m.ResourceTypes = append(m.ResourceTypes, fmt.Sprintf("type-%d", r.Intn(5)))
	}
	for i := 0; i < r.Intn(3); i++ {
		m.Annotations = append(m.Annotations, pick())
	}
	final := -1
	if n > 1 && r.Intn(2) == 0 {
		final = n - 1
	}
	for i := 0; i < n; i++ {
		p := &core.Phase{ID: fmt.Sprintf("p%d", i), Name: pick(), Final: i == final}
		if !p.Final {
			for a := 0; a < r.Intn(3); a++ {
				act := core.ActionCall{URI: fmt.Sprintf("urn:act:%d", r.Intn(6)), Name: pick()}
				for q := 0; q < r.Intn(3); q++ {
					act.Params = append(act.Params, core.Param{
						ID:          fmt.Sprintf("a%dp%d", a, q),
						Value:       pick(),
						BindingTime: bindTimes[r.Intn(len(bindTimes))],
						Required:    r.Intn(2) == 0,
					})
				}
				p.Actions = append(p.Actions, act)
			}
			if r.Intn(3) == 0 {
				p.Deadline = core.Deadline{Offset: time.Duration(1+r.Intn(200)) * time.Hour}
			} else if r.Intn(3) == 0 {
				p.Deadline = core.Deadline{Absolute: time.Date(2009, time.Month(1+r.Intn(12)), 1+r.Intn(28), 0, 0, 0, 0, time.UTC)}
			}
			if r.Intn(4) == 0 {
				p.Note = pick()
			}
		}
		m.Phases = append(m.Phases, p)
	}
	m.Transitions = append(m.Transitions, core.Transition{From: core.Begin, To: "p0"})
	for i := 0; i < n; i++ {
		m.Transitions = append(m.Transitions, core.Transition{
			From:  fmt.Sprintf("p%d", r.Intn(n)),
			To:    fmt.Sprintf("p%d", r.Intn(n)),
			Label: pick(),
		})
	}
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("generator produced invalid model: %v", err))
	}
	return m
}

// Property: marshal → unmarshal → marshal is a fixed point. Values are
// trimmed on parse, so we compare the *second* and *third* generations
// (canonical forms), plus fingerprints of generations 2 and 3.
func TestQuickModelRoundTripStable(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		m := genModel(r)
		gen1, err := MarshalModel(m)
		if err != nil {
			t.Logf("marshal gen1: %v", err)
			return false
		}
		m2, err := UnmarshalModel(gen1)
		if err != nil {
			t.Logf("unmarshal gen1: %v\n%s", err, gen1)
			return false
		}
		gen2, err := MarshalModel(m2)
		if err != nil {
			return false
		}
		m3, err := UnmarshalModel(gen2)
		if err != nil {
			t.Logf("unmarshal gen2: %v", err)
			return false
		}
		if m2.Fingerprint() != m3.Fingerprint() {
			t.Logf("fingerprint drift:\n%s\nvs\n%s", gen1, gen2)
			return false
		}
		gen3, err := MarshalModel(m3)
		if err != nil {
			return false
		}
		return string(gen2) == string(gen3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: phase count, transition count, and phase ids survive the
// round trip exactly.
func TestQuickRoundTripPreservesStructure(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		m := genModel(r)
		data, err := MarshalModel(m)
		if err != nil {
			return false
		}
		m2, err := UnmarshalModel(data)
		if err != nil {
			return false
		}
		if len(m.Phases) != len(m2.Phases) || len(m.Transitions) != len(m2.Transitions) {
			return false
		}
		for i := range m.Phases {
			if m.Phases[i].ID != m2.Phases[i].ID ||
				m.Phases[i].Final != m2.Phases[i].Final ||
				len(m.Phases[i].Actions) != len(m2.Phases[i].Actions) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
