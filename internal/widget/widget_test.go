package widget

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/access"
	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/plugin/wikisim"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/runtime"
	"github.com/liquidpub/gelee/internal/scenario"
	"github.com/liquidpub/gelee/internal/vclock"
)

type env struct {
	rt    *runtime.Runtime
	rend  *Renderer
	acl   *access.Control
	clock *vclock.Fake
	inst  runtime.Snapshot
}

func newEnv(t *testing.T) *env {
	t.Helper()
	clock := vclock.NewFake(time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC))

	acl := access.NewControl()
	for _, u := range []string{"owner", "dev", "stakeholder"} {
		acl.AddUser(access.User{Name: u})
	}

	wiki := wikisim.NewService(clock)
	wiki.CreatePage("D1.1", "owner", "= State of the Art =")
	adapter := wikisim.NewAdapter(wiki, nil, nil)
	resources := resource.NewManager()
	if err := resources.Register(adapter); err != nil {
		t.Fatal(err)
	}

	rt, err := runtime.New(runtime.Config{
		Registry:    actionlib.NewRegistry(),
		Invoker:     runtime.InvokerFunc(func(context.Context, actionlib.Invocation) error { return nil }),
		Clock:       clock,
		SyncActions: true,
		Policy:      aclPolicy{acl},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := rt.Instantiate(scenario.QualityPlan(),
		resource.Ref{URI: "http://wiki.liquidpub.org/pages/D1.1", Type: "mediawiki"}, "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	acl.Grant(access.Grant{User: "owner", Role: access.RoleInstanceOwner, Scope: snap.ID})
	acl.Grant(access.Grant{User: "dev", Role: access.RoleTokenOwner, Scope: snap.ID, Targets: []string{"internalreview"}})

	return &env{
		rt:    rt,
		rend:  New(rt, resources, acl, clock),
		acl:   acl,
		clock: clock,
		inst:  snap,
	}
}

type aclPolicy struct{ c *access.Control }

func (p aclPolicy) CanDrive(actor, inst string) bool { return p.c.CanDrive(actor, inst) }
func (p aclPolicy) CanFollow(actor, inst, target string) bool {
	return p.c.CanFollow(actor, inst, target)
}

func TestViewCombinesLifecycleAndResource(t *testing.T) {
	e := newEnv(t)
	e.rt.Advance(e.inst.ID, "elaboration", "owner", runtime.AdvanceOptions{})

	v, err := e.rend.View(e.inst.ID, "owner")
	if err != nil {
		t.Fatal(err)
	}
	if v.ModelName != "EU Project deliverable lifecycle" || v.Current != "elaboration" {
		t.Fatalf("view = %+v", v)
	}
	// Fig. 4: the resource is rendered next to the lifecycle.
	if v.Resource.Title != "D1.1" || !strings.Contains(v.Resource.Summary, "wiki page") {
		t.Fatalf("resource rendering = %+v", v.Resource)
	}
	if len(v.Phases) != 7 {
		t.Fatalf("phases = %d", len(v.Phases))
	}
	var current, suggested int
	for _, p := range v.Phases {
		if p.Current {
			current++
		}
		if p.Suggested {
			suggested++
		}
	}
	if current != 1 {
		t.Fatalf("current markers = %d", current)
	}
	if suggested != 1 || v.NextSuggested[0] != "internalreview" {
		t.Fatalf("suggested = %d, next = %v", suggested, v.NextSuggested)
	}
	if !v.CanAdvance || !v.CanDeviate {
		t.Fatalf("owner controls = advance:%t deviate:%t", v.CanAdvance, v.CanDeviate)
	}
}

func TestDifferentUsersDifferentViews(t *testing.T) {
	// §V.C: "different users could have different views of the same
	// lifecycle".
	e := newEnv(t)
	e.rt.Advance(e.inst.ID, "elaboration", "owner", runtime.AdvanceOptions{})

	owner, err := e.rend.View(e.inst.ID, "owner")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := e.rend.View(e.inst.ID, "dev")
	if err != nil {
		t.Fatal(err)
	}
	if !owner.CanDeviate {
		t.Fatal("owner cannot deviate")
	}
	if dev.CanDeviate {
		t.Fatal("token owner can deviate")
	}
	if !dev.CanAdvance {
		t.Fatal("token owner should see the advance control for the granted transition")
	}
}

func TestVisibilityEnforcement(t *testing.T) {
	e := newEnv(t)
	// Default restricted: stakeholders without a role are refused.
	if _, err := e.rend.View(e.inst.ID, "stakeholder"); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	if _, err := e.rend.View(e.inst.ID, ""); !errors.Is(err, ErrDenied) {
		t.Fatalf("anonymous err = %v, want ErrDenied", err)
	}
	// Authenticated visibility admits any signed-in user.
	if err := e.rend.SetVisibility(e.inst.ID, access.VisibilityAuthenticated); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rend.View(e.inst.ID, "stakeholder"); err != nil {
		t.Fatalf("authenticated stakeholder refused: %v", err)
	}
	if _, err := e.rend.View(e.inst.ID, ""); !errors.Is(err, ErrDenied) {
		t.Fatal("anonymous admitted at authenticated level")
	}
	// Public admits everyone.
	e.rend.SetVisibility(e.inst.ID, access.VisibilityPublic)
	if _, err := e.rend.View(e.inst.ID, ""); err != nil {
		t.Fatalf("anonymous refused at public level: %v", err)
	}
	if err := e.rend.SetVisibility(e.inst.ID, "cloaked"); err == nil {
		t.Fatal("unknown visibility accepted")
	}
	// A stakeholder granted a role sees restricted widgets.
	e.rend.SetVisibility(e.inst.ID, access.VisibilityRestricted)
	e.acl.Grant(access.Grant{User: "stakeholder", Role: access.RoleTokenOwner, Scope: e.inst.ID})
	if _, err := e.rend.View(e.inst.ID, "stakeholder"); err != nil {
		t.Fatalf("role-holding stakeholder refused: %v", err)
	}
}

func TestHTMLRendering(t *testing.T) {
	e := newEnv(t)
	e.rt.Advance(e.inst.ID, "elaboration", "owner", runtime.AdvanceOptions{})
	html, err := e.rend.HTML(e.inst.ID, "owner")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"gelee-widget", "EU Project deliverable lifecycle",
		"Elaboration", "Internal Review", "class=\"current", "D1.1",
		"data-to=\"internalreview\"",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML missing %q:\n%s", want, html)
		}
	}
	if _, err := e.rend.HTML("ghost", "owner"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestHTMLEscapesContent(t *testing.T) {
	clock := vclock.NewFake(time.Unix(0, 0))
	rt, _ := runtime.New(runtime.Config{
		Registry: actionlib.NewRegistry(),
		Invoker:  runtime.InvokerFunc(func(context.Context, actionlib.Invocation) error { return nil }),
		Clock:    clock, SyncActions: true,
	})
	m := scenario.QualityPlan().Clone()
	m.Name = `<script>alert("xss")</script>`
	snap, err := rt.Instantiate(m, resource.Ref{URI: "urn:x", Type: "unknown"}, "o", nil)
	if err != nil {
		t.Fatal(err)
	}
	rend := New(rt, resource.NewManager(), nil, clock)
	html, err := rend.HTML(snap.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(html, "<script>") {
		t.Fatal("model name not escaped in widget HTML")
	}
}

func TestLateFlagInView(t *testing.T) {
	e := newEnv(t)
	e.rt.Advance(e.inst.ID, "elaboration", "owner", runtime.AdvanceOptions{})
	e.clock.Advance(31 * 24 * time.Hour)
	v, err := e.rend.View(e.inst.ID, "owner")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Late {
		t.Fatal("late flag missing")
	}
	html, _ := e.rend.HTML(e.inst.ID, "owner")
	if !strings.Contains(html, "past deadline") {
		t.Fatal("late warning missing from HTML")
	}
}

func TestPendingChangeShown(t *testing.T) {
	e := newEnv(t)
	m2 := scenario.QualityPlan().Clone()
	m2.Phases = append(m2.Phases, nil)
	m2.Phases = m2.Phases[:len(m2.Phases)-1]
	m2.Transitions = append(m2.Transitions, m2.Transitions[0])
	if err := e.rt.ProposeChange(e.inst.ID, "coordinator", m2, "tweak"); err != nil {
		t.Fatal(err)
	}
	v, err := e.rend.View(e.inst.ID, "owner")
	if err != nil {
		t.Fatal(err)
	}
	if v.Pending == "" {
		t.Fatal("pending change not surfaced")
	}
}

func TestFeed(t *testing.T) {
	e := newEnv(t)
	e.rt.Advance(e.inst.ID, "elaboration", "owner", runtime.AdvanceOptions{})
	e.rt.Annotate(e.inst.ID, "owner", "first draft circulating")
	out, err := e.rend.Feed(e.inst.ID, "owner")
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{"<rss", "<channel>", "<item>", "phase-entered: elaboration", "first draft circulating"} {
		if !strings.Contains(s, want) {
			t.Errorf("feed missing %q:\n%s", want, s)
		}
	}
	// Newest first.
	if strings.Index(s, "annotated") > strings.Index(s, "created") {
		t.Fatal("feed not newest-first")
	}
	if _, err := e.rend.Feed(e.inst.ID, "stakeholder"); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	if _, err := e.rend.Feed("ghost", "owner"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestNilACLMeansOpenWidget(t *testing.T) {
	e := newEnv(t)
	open := New(e.rt, nil, nil, e.clock)
	v, err := open.View(e.inst.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if !v.CanAdvance || !v.CanDeviate {
		t.Fatal("open renderer should grant all controls")
	}
	if v.Resource.Title != e.inst.Resource.URI {
		t.Fatalf("fallback rendering = %+v", v.Resource)
	}
}
