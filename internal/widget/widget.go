// Package widget implements the lifecycle execution widgets of §V.C and
// Fig. 4: UI components that show the lifecycle and the resource it
// manages side by side, honor visibility attributes (different users
// get different views, anonymous users may be refused), and can be fed
// into pipes as machine-readable feeds.
package widget

import (
	"encoding/xml"
	"fmt"
	"html/template"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/liquidpub/gelee/internal/access"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/runtime"
	"github.com/liquidpub/gelee/internal/vclock"
)

// Source supplies instance snapshots — satisfied by *runtime.Runtime.
type Source interface {
	Instance(id string) (runtime.Snapshot, bool)
}

// ErrDenied is returned when the viewer may not see the widget.
var ErrDenied = fmt.Errorf("widget: viewer not allowed")

// ErrNotFound is returned for unknown instances.
var ErrNotFound = fmt.Errorf("widget: no such instance")

// Renderer builds widget views. Visibility defaults to restricted
// ("auto-discovered from the lifecycle definition": only people with a
// role on the instance see it) and can be relaxed per instance.
type Renderer struct {
	src       Source
	resources *resource.Manager
	acl       *access.Control
	clock     vclock.Clock

	mu         sync.RWMutex
	visibility map[string]access.Visibility
}

// New builds a Renderer. acl may be nil, which makes every widget
// public (embedded library use without user management).
func New(src Source, resources *resource.Manager, acl *access.Control, clock vclock.Clock) *Renderer {
	if clock == nil {
		clock = vclock.System
	}
	return &Renderer{
		src:        src,
		resources:  resources,
		acl:        acl,
		clock:      clock,
		visibility: make(map[string]access.Visibility),
	}
}

// SetVisibility overrides the widget visibility for an instance.
func (r *Renderer) SetVisibility(instanceID string, v access.Visibility) error {
	if !v.Valid() {
		return fmt.Errorf("widget: unknown visibility %q", v)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.visibility[instanceID] = v
	return nil
}

// Visibility returns the effective visibility for an instance.
func (r *Renderer) Visibility(instanceID string) access.Visibility {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if v, ok := r.visibility[instanceID]; ok {
		return v
	}
	return access.VisibilityRestricted
}

// PhaseView is one node of the widget's lifecycle strip.
type PhaseView struct {
	ID        string `json:"id"`
	Name      string `json:"name"`
	Final     bool   `json:"final,omitempty"`
	Current   bool   `json:"current,omitempty"`
	Visited   bool   `json:"visited,omitempty"`
	Suggested bool   `json:"suggested,omitempty"` // reachable next by suggestion
	Due       string `json:"due,omitempty"`
}

// View is the JSON widget payload of Fig. 4: lifecycle strip + resource
// rendering + the controls the viewing user may use.
type View struct {
	InstanceID    string             `json:"instance_id"`
	ModelName     string             `json:"model_name"`
	State         string             `json:"state"`
	Current       string             `json:"current"`
	Phases        []PhaseView        `json:"phases"`
	NextSuggested []string           `json:"next_suggested"`
	Resource      resource.Rendering `json:"resource"`
	ResourceURI   string             `json:"resource_uri"`
	Late          bool               `json:"late,omitempty"`
	Pending       string             `json:"pending_change,omitempty"`
	CanAdvance    bool               `json:"can_advance"`
	CanDeviate    bool               `json:"can_deviate"`
	Viewer        string             `json:"viewer,omitempty"`
	RenderedAt    time.Time          `json:"rendered_at"`
}

func (r *Renderer) allowed(viewer, instanceID string) bool {
	if r.acl == nil {
		return true
	}
	return r.acl.CanSee(viewer, r.Visibility(instanceID), instanceID)
}

// View builds the widget payload for viewer ("" = anonymous). The
// viewer's rights shape the view — "different users could have
// different views of the same lifecycle" (§V.C).
func (r *Renderer) View(instanceID, viewer string) (View, error) {
	snap, ok := r.src.Instance(instanceID)
	if !ok {
		return View{}, ErrNotFound
	}
	if !r.allowed(viewer, instanceID) {
		return View{}, fmt.Errorf("%w: %q on %s", ErrDenied, viewer, instanceID)
	}

	visited := make(map[string]bool)
	for _, ev := range snap.Events {
		if ev.Kind == runtime.EventPhaseEntered {
			visited[ev.Phase] = true
		}
	}
	next := snap.NextSuggested()
	nextSet := make(map[string]bool, len(next))
	for _, n := range next {
		nextSet[n] = true
	}

	v := View{
		InstanceID:    snap.ID,
		ModelName:     snap.Model.Name,
		State:         string(snap.State),
		Current:       snap.Current,
		NextSuggested: next,
		ResourceURI:   snap.Resource.URI,
		Late:          snap.Late(r.clock.Now()),
		Viewer:        viewer,
		RenderedAt:    r.clock.Now(),
	}
	if snap.Pending != nil {
		v.Pending = snap.Pending.Summary
	}
	for _, p := range snap.Model.Phases {
		pv := PhaseView{
			ID: p.ID, Name: p.Name, Final: p.Final,
			Current:   p.ID == snap.Current,
			Visited:   visited[p.ID],
			Suggested: nextSet[p.ID],
		}
		if due := snap.DueAt(p.ID); !due.IsZero() {
			pv.Due = due.Format("2006-01-02")
		}
		v.Phases = append(v.Phases, pv)
	}
	if r.resources != nil {
		rend, err := r.resources.Render(snap.Resource)
		if err != nil && rend.Title == "" {
			rend = resource.Rendering{Title: snap.Resource.URI, Link: snap.Resource.URI}
		}
		v.Resource = rend
	} else {
		v.Resource = resource.Rendering{Title: snap.Resource.URI, Link: snap.Resource.URI}
	}
	if r.acl == nil {
		v.CanAdvance, v.CanDeviate = true, true
	} else {
		v.CanDeviate = r.acl.CanDrive(viewer, instanceID)
		v.CanAdvance = v.CanDeviate
		if !v.CanAdvance {
			for _, target := range next {
				if r.acl.CanFollow(viewer, instanceID, target) {
					v.CanAdvance = true
					break
				}
			}
		}
	}
	return v, nil
}

var htmlTmpl = template.Must(template.New("widget").Parse(`<!DOCTYPE html>
<div class="gelee-widget" data-instance="{{.InstanceID}}">
  <h2>{{.ModelName}} <small>({{.State}})</small></h2>
  {{if .Late}}<p class="late">⚠ past deadline</p>{{end}}
  {{if .Pending}}<p class="pending">model change proposed: {{.Pending}}</p>{{end}}
  <ol class="phases">
  {{range .Phases}}<li class="{{if .Current}}current{{end}}{{if .Final}} final{{end}}{{if .Visited}} visited{{end}}">
    {{.Name}}{{if .Due}} <time>{{.Due}}</time>{{end}}{{if .Suggested}} →{{end}}
  </li>
  {{end}}</ol>
  <section class="resource">
    <h3><a href="{{.Resource.Link}}">{{.Resource.Title}}</a></h3>
    <p>{{.Resource.Summary}}</p>
    <p class="status">{{.Resource.Status}}</p>
  </section>
  {{if .CanAdvance}}<nav class="advance">{{range .NextSuggested}}<button data-to="{{.}}">{{.}}</button>{{end}}</nav>{{end}}
</div>
`))

// HTML renders the widget as an embeddable HTML fragment — the form a
// user pastes next to the resource it manages (Fig. 4).
func (r *Renderer) HTML(instanceID, viewer string) (string, error) {
	v, err := r.View(instanceID, viewer)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if err := htmlTmpl.Execute(&b, v); err != nil {
		return "", fmt.Errorf("widget: render: %w", err)
	}
	return b.String(), nil
}

// rssFeed is the minimal RSS 2.0 document the feed endpoint emits for
// pipe composition (§V.C: "we prepared our widgets to put in pipes").
type rssFeed struct {
	XMLName xml.Name   `xml:"rss"`
	Version string     `xml:"version,attr"`
	Channel rssChannel `xml:"channel"`
}

type rssChannel struct {
	Title string    `xml:"title"`
	Link  string    `xml:"link"`
	Desc  string    `xml:"description"`
	Items []rssItem `xml:"item"`
}

type rssItem struct {
	Title   string `xml:"title"`
	Desc    string `xml:"description,omitempty"`
	PubDate string `xml:"pubDate"`
	GUID    string `xml:"guid"`
}

// Feed renders the instance history as an RSS 2.0 feed, newest first.
func (r *Renderer) Feed(instanceID, viewer string) ([]byte, error) {
	snap, ok := r.src.Instance(instanceID)
	if !ok {
		return nil, ErrNotFound
	}
	if !r.allowed(viewer, instanceID) {
		return nil, fmt.Errorf("%w: %q on %s", ErrDenied, viewer, instanceID)
	}
	feed := rssFeed{
		Version: "2.0",
		Channel: rssChannel{
			Title: snap.Model.Name + " — " + snap.Resource.URI,
			Link:  snap.Resource.URI,
			Desc:  "Gelee lifecycle events for " + snap.ID,
		},
	}
	events := append([]runtime.Event(nil), snap.Events...)
	sort.Slice(events, func(i, j int) bool { return events[i].Seq > events[j].Seq })
	for _, ev := range events {
		title := string(ev.Kind)
		if ev.Phase != "" {
			title += ": " + ev.Phase
		}
		feed.Channel.Items = append(feed.Channel.Items, rssItem{
			Title:   title,
			Desc:    ev.Detail,
			PubDate: ev.Time.Format(time.RFC1123Z),
			GUID:    fmt.Sprintf("%s#%d", snap.ID, ev.Seq),
		})
	}
	out, err := xml.MarshalIndent(feed, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("widget: feed: %w", err)
	}
	return append([]byte(xml.Header), append(out, '\n')...), nil
}
