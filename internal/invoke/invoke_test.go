package invoke

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/resilience"
)

func sampleInvocation() actionlib.Invocation {
	return actionlib.Invocation{
		ID:           "inv-000001",
		TypeURI:      "http://www.liquidpub.org/a/chr",
		ActionName:   "Change access rights",
		Endpoint:     "http://unset",
		Protocol:     actionlib.ProtocolREST,
		ResourceURI:  "http://wiki/D1.1",
		ResourceType: "mediawiki",
		CallbackURI:  "http://gelee/api/v1/callbacks/inv-000001",
		Params:       map[string]string{"mode": "reviewers-only"},
		Credentials:  map[string]string{"user": "bot", "password": "s3cret"},
	}
}

type memReporter struct {
	mu  sync.Mutex
	ups []actionlib.StatusUpdate
}

func (m *memReporter) Report(up actionlib.StatusUpdate) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ups = append(m.ups, up)
	return nil
}

func (m *memReporter) updates() []actionlib.StatusUpdate {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]actionlib.StatusUpdate(nil), m.ups...)
}

func TestWireRoundTrip(t *testing.T) {
	inv := sampleInvocation()
	w := ToWire(inv)
	back := FromWire(w)
	back.Endpoint = inv.Endpoint
	back.Protocol = inv.Protocol
	if back.ID != inv.ID || back.TypeURI != inv.TypeURI ||
		back.ResourceURI != inv.ResourceURI || back.CallbackURI != inv.CallbackURI ||
		back.Params["mode"] != "reviewers-only" || back.Credentials["user"] != "bot" {
		t.Fatalf("wire round trip lost data: %+v", back)
	}
}

func TestRESTInvokerDeliversInvocation(t *testing.T) {
	var got actionlib.Invocation
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var err error
		got, err = DecodeInvocation(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()

	inv := sampleInvocation()
	inv.Endpoint = srv.URL
	ri := &RESTInvoker{Client: srv.Client()}
	if err := ri.Invoke(context.Background(), inv); err != nil {
		t.Fatal(err)
	}
	if got.ID != inv.ID || got.Params["mode"] != "reviewers-only" || got.CallbackURI != inv.CallbackURI {
		t.Fatalf("endpoint received %+v", got)
	}
}

func TestRESTInvokerNon2xxIsDispatchError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	inv := sampleInvocation()
	inv.Endpoint = srv.URL
	if err := (&RESTInvoker{Client: srv.Client()}).Invoke(context.Background(), inv); err == nil {
		t.Fatal("503 treated as success")
	}
}

func TestRESTInvokerUnreachableEndpoint(t *testing.T) {
	inv := sampleInvocation()
	inv.Endpoint = "http://127.0.0.1:1/unreachable"
	if err := (&RESTInvoker{}).Invoke(context.Background(), inv); err == nil {
		t.Fatal("unreachable endpoint succeeded")
	}
}

func TestSOAPInvokerEnvelope(t *testing.T) {
	var body []byte
	var soapAction string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		buf := new(bytes.Buffer)
		buf.ReadFrom(r.Body)
		body = buf.Bytes()
		soapAction = r.Header.Get("SOAPAction")
	}))
	defer srv.Close()

	inv := sampleInvocation()
	inv.Endpoint = srv.URL
	inv.Protocol = actionlib.ProtocolSOAP
	if err := (&SOAPInvoker{Client: srv.Client()}).Invoke(context.Background(), inv); err != nil {
		t.Fatal(err)
	}
	s := string(body)
	for _, want := range []string{"Envelope", "Body", "invocationId", "inv-000001", "resourceUri", "callbackUri"} {
		if !strings.Contains(s, want) {
			t.Errorf("SOAP body missing %q:\n%s", want, s)
		}
	}
	if soapAction != "urn:gelee:actions#invoke" {
		t.Errorf("SOAPAction = %q", soapAction)
	}

	decoded, err := DecodeSOAPInvocation(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.ID != inv.ID || decoded.Params["mode"] != "reviewers-only" {
		t.Fatalf("decoded SOAP invocation = %+v", decoded)
	}
}

func TestDecodeSOAPInvocationErrors(t *testing.T) {
	if _, err := DecodeSOAPInvocation(strings.NewReader("<not-soap/>")); err == nil {
		t.Fatal("non-envelope accepted")
	}
	empty := `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body/></Envelope>`
	if _, err := DecodeSOAPInvocation(strings.NewReader(empty)); err == nil {
		t.Fatal("empty body accepted")
	}
}

func TestLocalInvokerReportsCompleted(t *testing.T) {
	rep := &memReporter{}
	li := NewLocalInvoker(rep)
	li.Register("local://gdoc/chr", func(inv actionlib.Invocation, r Reporter) (string, error) {
		r.Report(actionlib.StatusUpdate{InvocationID: inv.ID, Message: "working"})
		return "rights set to " + inv.Params["mode"], nil
	})
	inv := sampleInvocation()
	inv.Endpoint = "local://gdoc/chr"
	inv.Protocol = actionlib.ProtocolLocal
	if err := li.Invoke(context.Background(), inv); err != nil {
		t.Fatal(err)
	}
	ups := rep.updates()
	if len(ups) != 2 {
		t.Fatalf("updates = %+v", ups)
	}
	if ups[0].Message != "working" {
		t.Fatalf("intermediate update = %+v", ups[0])
	}
	if ups[1].Message != actionlib.StatusCompleted || !strings.Contains(ups[1].Detail, "reviewers-only") {
		t.Fatalf("terminal update = %+v", ups[1])
	}
}

func TestLocalInvokerReportsFailed(t *testing.T) {
	rep := &memReporter{}
	li := NewLocalInvoker(rep)
	li.Register("local://x", func(inv actionlib.Invocation, r Reporter) (string, error) {
		return "", errors.New("document is locked")
	})
	inv := sampleInvocation()
	inv.Endpoint = "local://x"
	if err := li.Invoke(context.Background(), inv); err != nil {
		t.Fatal(err)
	}
	ups := rep.updates()
	if len(ups) != 1 || ups[0].Message != actionlib.StatusFailed || ups[0].Detail != "document is locked" {
		t.Fatalf("updates = %+v", ups)
	}
}

func TestLocalInvokerUnknownEndpoint(t *testing.T) {
	li := NewLocalInvoker(&memReporter{})
	inv := sampleInvocation()
	inv.Endpoint = "local://nowhere"
	if err := li.Invoke(context.Background(), inv); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
}

func TestDispatcherRoutesByProtocol(t *testing.T) {
	rep := &memReporter{}
	local := NewLocalInvoker(rep)
	called := ""
	local.Register("local://x", func(inv actionlib.Invocation, r Reporter) (string, error) {
		called = "local"
		return "", nil
	})
	d := &Dispatcher{Local: local}

	inv := sampleInvocation()
	inv.Endpoint = "local://x"
	inv.Protocol = actionlib.ProtocolLocal
	if err := d.Invoke(context.Background(), inv); err != nil {
		t.Fatal(err)
	}
	if called != "local" {
		t.Fatal("local transport not used")
	}
	// Unconfigured transports error cleanly.
	inv.Protocol = actionlib.ProtocolREST
	if err := d.Invoke(context.Background(), inv); err == nil {
		t.Fatal("missing REST transport accepted")
	}
	inv.Protocol = actionlib.ProtocolSOAP
	if err := d.Invoke(context.Background(), inv); err == nil {
		t.Fatal("missing SOAP transport accepted")
	}
	inv.Protocol = "pigeon"
	if err := d.Invoke(context.Background(), inv); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestCallbackClientAndDecodeStatus(t *testing.T) {
	var got actionlib.StatusUpdate
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var err error
		got, err = DecodeStatus(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
	}))
	defer srv.Close()

	cc := &CallbackClient{Client: srv.Client()}
	up := actionlib.StatusUpdate{InvocationID: "inv-7", Message: actionlib.StatusCompleted, Detail: "done"}
	if err := cc.Send(srv.URL, up); err != nil {
		t.Fatal(err)
	}
	if got != up {
		t.Fatalf("callback received %+v, want %+v", got, up)
	}
}

func TestCallbackClientErrorPaths(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gone", http.StatusGone)
	}))
	defer srv.Close()
	cc := &CallbackClient{Client: srv.Client()}
	if err := cc.Send(srv.URL, actionlib.StatusUpdate{InvocationID: "x"}); err == nil {
		t.Fatal("410 treated as success")
	}
	if err := cc.Send("http://127.0.0.1:1/cb", actionlib.StatusUpdate{InvocationID: "x"}); err == nil {
		t.Fatal("unreachable callback succeeded")
	}
}

func TestDecodeInvocationErrors(t *testing.T) {
	if _, err := DecodeInvocation(strings.NewReader("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := DecodeInvocation(strings.NewReader("{}")); err == nil {
		t.Fatal("invocation without id accepted")
	}
}

func TestDecodeStatusErrors(t *testing.T) {
	if _, err := DecodeStatus(strings.NewReader("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := DecodeStatus(strings.NewReader(`{"message":"ok"}`)); err == nil {
		t.Fatal("status without invocation id accepted")
	}
}

func TestRESTInvokerHonorsTimeout(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)

	inv := sampleInvocation()
	inv.Endpoint = srv.URL
	start := time.Now()
	err := (&RESTInvoker{Client: srv.Client(), Timeout: 50 * time.Millisecond}).Invoke(context.Background(), inv)
	if err == nil {
		t.Fatal("wedged endpoint did not time out")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, want ~50ms", elapsed)
	}
}

func TestRESTInvokerHonorsCallerCancel(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)

	inv := sampleInvocation()
	inv.Endpoint = srv.URL
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- (&RESTInvoker{Client: srv.Client()}).Invoke(ctx, inv)
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled invoke returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled invoke did not return")
	}
}

func TestDispatcherRetriesIdempotentSends(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer srv.Close()

	d := &Dispatcher{
		REST:     &RESTInvoker{Client: srv.Client()},
		Breakers: resilience.NewBreakerSet(resilience.BreakerConfig{Failures: 10}),
		Attempts: 3,
		Retry:    resilience.Backoff{Base: time.Millisecond, Max: time.Millisecond},
	}
	inv := sampleInvocation()
	inv.Endpoint = srv.URL
	if err := d.Invoke(context.Background(), inv); err != nil {
		t.Fatalf("retried dispatch failed: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("endpoint saw %d calls, want 3", got)
	}
}

func TestDispatcherBreakerFailsFast(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	d := &Dispatcher{
		REST:     &RESTInvoker{Client: srv.Client()},
		Breakers: resilience.NewBreakerSet(resilience.BreakerConfig{Failures: 2, Cooldown: time.Hour}),
	}
	inv := sampleInvocation()
	inv.Endpoint = srv.URL
	for i := 0; i < 2; i++ {
		if err := d.Invoke(context.Background(), inv); err == nil {
			t.Fatal("failing endpoint dispatched cleanly")
		}
	}
	err := d.Invoke(context.Background(), inv)
	if !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("open breaker err = %v, want ErrBreakerOpen", err)
	}
	if d.Breakers.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", d.Breakers.Opens())
	}
}

func TestDispatcherLocalBypassesBreaker(t *testing.T) {
	rep := &memReporter{}
	li := NewLocalInvoker(rep)
	li.Register("local://x", func(inv actionlib.Invocation, r Reporter) (string, error) { return "ok", nil })
	d := &Dispatcher{
		Local:    li,
		Breakers: resilience.NewBreakerSet(resilience.BreakerConfig{}),
	}
	inv := sampleInvocation()
	inv.Protocol = actionlib.ProtocolLocal
	inv.Endpoint = "local://x"
	if err := d.Invoke(context.Background(), inv); err != nil {
		t.Fatalf("local dispatch: %v", err)
	}
	if n := len(d.Breakers.Stats()); n != 0 {
		t.Fatalf("local dispatch created %d breaker entries, want 0", n)
	}
}
