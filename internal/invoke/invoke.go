// Package invoke carries action invocations from the lifecycle manager
// to action implementations and status updates back. It implements the
// §IV.C contract: "the action is invoked by calling an URI that
// identifies a web service (either REST or SOAP), passing as parameters
// a link to the object and a callback URI. Upon completion, or
// periodically during execution, the action can then call the callback
// URI and update on its status."
//
// Three transports are provided: REST (JSON over HTTP POST), SOAP (a
// minimal SOAP 1.1 envelope over HTTP POST), and local (in-process
// handler table) for embedded deployments and tests. A Dispatcher picks
// the transport from the resolved implementation's protocol.
package invoke

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
)

// WireInvocation is the JSON body POSTed to a REST action endpoint.
type WireInvocation struct {
	ID           string            `json:"invocation_id"`
	TypeURI      string            `json:"action_type"`
	ActionName   string            `json:"action_name,omitempty"`
	ResourceURI  string            `json:"resource_uri"`
	ResourceType string            `json:"resource_type"`
	CallbackURI  string            `json:"callback_uri"`
	Params       map[string]string `json:"params,omitempty"`
	Credentials  map[string]string `json:"credentials,omitempty"`
}

// WireStatus is the JSON body an action POSTs to its callback URI.
type WireStatus struct {
	InvocationID string `json:"invocation_id"`
	Message      string `json:"message"`
	Detail       string `json:"detail,omitempty"`
}

// ToWire converts a runtime invocation to its wire form.
func ToWire(inv actionlib.Invocation) WireInvocation {
	return WireInvocation{
		ID:           inv.ID,
		TypeURI:      inv.TypeURI,
		ActionName:   inv.ActionName,
		ResourceURI:  inv.ResourceURI,
		ResourceType: inv.ResourceType,
		CallbackURI:  inv.CallbackURI,
		Params:       inv.Params,
		Credentials:  inv.Credentials,
	}
}

// FromWire converts a wire invocation back to the runtime form.
// Endpoint and protocol are not on the wire — the receiver is the
// endpoint.
func FromWire(w WireInvocation) actionlib.Invocation {
	return actionlib.Invocation{
		ID:           w.ID,
		TypeURI:      w.TypeURI,
		ActionName:   w.ActionName,
		ResourceURI:  w.ResourceURI,
		ResourceType: w.ResourceType,
		CallbackURI:  w.CallbackURI,
		Params:       w.Params,
		Credentials:  w.Credentials,
	}
}

// DecodeInvocation reads a WireInvocation from a request body.
func DecodeInvocation(r io.Reader) (actionlib.Invocation, error) {
	var w WireInvocation
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return actionlib.Invocation{}, fmt.Errorf("invoke: decode invocation: %w", err)
	}
	if w.ID == "" {
		return actionlib.Invocation{}, fmt.Errorf("invoke: invocation without id")
	}
	return FromWire(w), nil
}

// RESTInvoker POSTs invocations as JSON to the implementation endpoint.
type RESTInvoker struct {
	Client *http.Client
}

// Invoke implements runtime.Invoker semantics for REST endpoints. A
// non-2xx response is a dispatch failure.
func (ri *RESTInvoker) Invoke(inv actionlib.Invocation) error {
	body, err := json.Marshal(ToWire(inv))
	if err != nil {
		return fmt.Errorf("invoke: encode invocation %s: %w", inv.ID, err)
	}
	client := ri.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := client.Post(inv.Endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("invoke: POST %s: %w", inv.Endpoint, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("invoke: POST %s: status %s", inv.Endpoint, resp.Status)
	}
	return nil
}

// soapEnvelope is the minimal SOAP 1.1 wrapper used by the SOAP
// transport.
type soapEnvelope struct {
	XMLName xml.Name `xml:"http://schemas.xmlsoap.org/soap/envelope/ Envelope"`
	Body    soapBody `xml:"http://schemas.xmlsoap.org/soap/envelope/ Body"`
}

type soapBody struct {
	Invoke *soapInvoke `xml:"urn:gelee:actions invoke,omitempty"`
}

type soapInvoke struct {
	ID           string      `xml:"invocationId"`
	TypeURI      string      `xml:"actionType"`
	ResourceURI  string      `xml:"resourceUri"`
	ResourceType string      `xml:"resourceType"`
	CallbackURI  string      `xml:"callbackUri"`
	Params       []soapParam `xml:"params>param"`
}

type soapParam struct {
	ID    string `xml:"id,attr"`
	Value string `xml:",chardata"`
}

// SOAPInvoker wraps the invocation in a SOAP envelope.
type SOAPInvoker struct {
	Client *http.Client
}

// Invoke POSTs a SOAP envelope to the endpoint.
func (si *SOAPInvoker) Invoke(inv actionlib.Invocation) error {
	env := soapEnvelope{Body: soapBody{Invoke: &soapInvoke{
		ID:           inv.ID,
		TypeURI:      inv.TypeURI,
		ResourceURI:  inv.ResourceURI,
		ResourceType: inv.ResourceType,
		CallbackURI:  inv.CallbackURI,
	}}}
	for k, v := range inv.Params {
		env.Body.Invoke.Params = append(env.Body.Invoke.Params, soapParam{ID: k, Value: v})
	}
	body, err := xml.Marshal(env)
	if err != nil {
		return fmt.Errorf("invoke: encode SOAP %s: %w", inv.ID, err)
	}
	client := si.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	req, err := http.NewRequest(http.MethodPost, inv.Endpoint, bytes.NewReader(append([]byte(xml.Header), body...)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/xml; charset=utf-8")
	req.Header.Set("SOAPAction", "urn:gelee:actions#invoke")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("invoke: SOAP POST %s: %w", inv.Endpoint, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("invoke: SOAP POST %s: status %s", inv.Endpoint, resp.Status)
	}
	return nil
}

// DecodeSOAPInvocation parses a SOAP envelope into an invocation.
func DecodeSOAPInvocation(r io.Reader) (actionlib.Invocation, error) {
	var env soapEnvelope
	if err := xml.NewDecoder(r).Decode(&env); err != nil {
		return actionlib.Invocation{}, fmt.Errorf("invoke: decode SOAP: %w", err)
	}
	if env.Body.Invoke == nil {
		return actionlib.Invocation{}, fmt.Errorf("invoke: SOAP body has no invoke element")
	}
	in := env.Body.Invoke
	inv := actionlib.Invocation{
		ID:           in.ID,
		TypeURI:      in.TypeURI,
		ResourceURI:  in.ResourceURI,
		ResourceType: in.ResourceType,
		CallbackURI:  in.CallbackURI,
		Params:       make(map[string]string, len(in.Params)),
	}
	for _, p := range in.Params {
		inv.Params[p.ID] = p.Value
	}
	return inv, nil
}

// Handler is an in-process action implementation: perform the operation
// and return the terminal status detail. Returning an error reports the
// reserved failed status; otherwise completed is reported. Handlers may
// send intermediate updates through the Reporter first.
type Handler func(inv actionlib.Invocation, report Reporter) (detail string, err error)

// Reporter delivers status updates back to the lifecycle manager.
type Reporter interface {
	Report(up actionlib.StatusUpdate) error
}

// LocalInvoker routes invocations to registered in-process handlers by
// endpoint key and reports the terminal status itself. It exercises the
// same resolution and callback code paths as the HTTP transports minus
// the network.
type LocalInvoker struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	reporter Reporter
}

// NewLocalInvoker returns a LocalInvoker reporting through r.
func NewLocalInvoker(r Reporter) *LocalInvoker {
	return &LocalInvoker{handlers: make(map[string]Handler), reporter: r}
}

// Register installs the handler for an endpoint key (e.g.
// "local://gdoc/chr"). Re-registering replaces.
func (li *LocalInvoker) Register(endpoint string, h Handler) {
	li.mu.Lock()
	defer li.mu.Unlock()
	li.handlers[endpoint] = h
}

// Invoke implements runtime.Invoker.
func (li *LocalInvoker) Invoke(inv actionlib.Invocation) error {
	li.mu.RLock()
	h, ok := li.handlers[inv.Endpoint]
	li.mu.RUnlock()
	if !ok {
		return fmt.Errorf("invoke: no local handler for endpoint %q", inv.Endpoint)
	}
	detail, err := h(inv, li.reporter)
	up := actionlib.StatusUpdate{InvocationID: inv.ID, Message: actionlib.StatusCompleted, Detail: detail}
	if err != nil {
		up.Message = actionlib.StatusFailed
		up.Detail = err.Error()
	}
	return li.reporter.Report(up)
}

// Dispatcher routes by implementation protocol — the single Invoker the
// runtime is configured with in full deployments.
type Dispatcher struct {
	REST  *RESTInvoker
	SOAP  *SOAPInvoker
	Local *LocalInvoker
}

// Invoke implements runtime.Invoker.
func (d *Dispatcher) Invoke(inv actionlib.Invocation) error {
	switch inv.Protocol {
	case actionlib.ProtocolREST:
		if d.REST == nil {
			return fmt.Errorf("invoke: REST transport not configured")
		}
		return d.REST.Invoke(inv)
	case actionlib.ProtocolSOAP:
		if d.SOAP == nil {
			return fmt.Errorf("invoke: SOAP transport not configured")
		}
		return d.SOAP.Invoke(inv)
	case actionlib.ProtocolLocal:
		if d.Local == nil {
			return fmt.Errorf("invoke: local transport not configured")
		}
		return d.Local.Invoke(inv)
	}
	return fmt.Errorf("invoke: unknown protocol %q", inv.Protocol)
}

// CallbackClient is what remote (HTTP-hosted) action implementations use
// to report status: POST the WireStatus JSON to the callback URI.
type CallbackClient struct {
	Client *http.Client
}

// Send posts the status update to callbackURI.
func (cc *CallbackClient) Send(callbackURI string, up actionlib.StatusUpdate) error {
	body, err := json.Marshal(WireStatus{InvocationID: up.InvocationID, Message: up.Message, Detail: up.Detail})
	if err != nil {
		return err
	}
	client := cc.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := client.Post(callbackURI, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("invoke: callback POST %s: %w", callbackURI, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("invoke: callback POST %s: status %s", callbackURI, resp.Status)
	}
	return nil
}

// DecodeStatus reads a WireStatus from a callback request body.
func DecodeStatus(r io.Reader) (actionlib.StatusUpdate, error) {
	var w WireStatus
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return actionlib.StatusUpdate{}, fmt.Errorf("invoke: decode status: %w", err)
	}
	if w.InvocationID == "" {
		return actionlib.StatusUpdate{}, fmt.Errorf("invoke: status without invocation id")
	}
	return actionlib.StatusUpdate{InvocationID: w.InvocationID, Message: w.Message, Detail: w.Detail}, nil
}
