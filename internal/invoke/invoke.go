// Package invoke carries action invocations from the lifecycle manager
// to action implementations and status updates back. It implements the
// §IV.C contract: "the action is invoked by calling an URI that
// identifies a web service (either REST or SOAP), passing as parameters
// a link to the object and a callback URI. Upon completion, or
// periodically during execution, the action can then call the callback
// URI and update on its status."
//
// Three transports are provided: REST (JSON over HTTP POST), SOAP (a
// minimal SOAP 1.1 envelope over HTTP POST), and local (in-process
// handler table) for embedded deployments and tests. A Dispatcher picks
// the transport from the resolved implementation's protocol, and —
// when configured with a resilience.BreakerSet — guards every remote
// send with a per-endpoint circuit breaker, in-flight cap and jittered
// retry, so one wedged action service cannot wedge the runtime.
//
// Every HTTP call is context-propagated with a configurable per-attempt
// timeout (DefaultTimeout unless overridden) and rides a shared
// transport with bounded connection counts — dispatch volume reuses
// connections instead of minting a client per call.
package invoke

import (
	"bytes"
	"context"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/resilience"
)

// DefaultTimeout bounds one HTTP attempt when no Timeout option and no
// caller deadline is set — the old hardcoded client timeout, now just
// a default.
const DefaultTimeout = 30 * time.Second

// sharedTransport is the connection pool every default client rides:
// connections are reused across dispatches and capped per host so a
// burst against one endpoint cannot exhaust file descriptors.
var sharedTransport = func() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 32
	t.MaxConnsPerHost = 128
	t.IdleConnTimeout = 90 * time.Second
	return t
}()

// sharedClient has no client-level timeout: deadlines come from the
// per-attempt context, which composes with caller cancellation.
var sharedClient = &http.Client{Transport: sharedTransport}

// PoolConfig bounds the outcall connection pool when the shared
// defaults don't fit the deployment (small file-descriptor budgets,
// very high endpoint fan-out). Zero fields keep the shared defaults.
type PoolConfig struct {
	// MaxConnsPerHost caps total connections (idle + active + dialing)
	// per endpoint host; negative = unlimited.
	MaxConnsPerHost int
	// MaxIdleConns caps idle connections across all hosts; negative
	// disables keep-alive pooling entirely.
	MaxIdleConns int
	// MaxIdleConnsPerHost caps idle connections per host
	// (0 = min(MaxIdleConns, shared default)).
	MaxIdleConnsPerHost int
}

// NewPooledClient builds an *http.Client on its own transport with the
// given pool bounds — what geleed wires into the REST/SOAP invokers and
// the callback client when the operator overrides the defaults. A zero
// config returns nil, meaning "use the shared pooled client".
func NewPooledClient(cfg PoolConfig) *http.Client {
	if cfg == (PoolConfig{}) {
		return nil
	}
	t := sharedTransport.Clone()
	if cfg.MaxConnsPerHost > 0 {
		t.MaxConnsPerHost = cfg.MaxConnsPerHost
	} else if cfg.MaxConnsPerHost < 0 {
		t.MaxConnsPerHost = 0 // net/http: 0 = unlimited
	}
	if cfg.MaxIdleConns > 0 {
		t.MaxIdleConns = cfg.MaxIdleConns
	} else if cfg.MaxIdleConns < 0 {
		t.DisableKeepAlives = true
	}
	switch {
	case cfg.MaxIdleConnsPerHost > 0:
		t.MaxIdleConnsPerHost = cfg.MaxIdleConnsPerHost
	case t.MaxIdleConns > 0 && t.MaxIdleConnsPerHost > t.MaxIdleConns:
		t.MaxIdleConnsPerHost = t.MaxIdleConns
	}
	return &http.Client{Transport: t}
}

// attemptContext applies the per-attempt timeout: an explicit option
// wins, otherwise DefaultTimeout — unless the caller's own deadline is
// already tighter.
func attemptContext(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= timeout {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, timeout)
}

// postJSON POSTs body to url under the attempt context and treats any
// non-2xx as an error.
func postJSON(ctx context.Context, client *http.Client, timeout time.Duration, url, contentType string, body []byte, hdr map[string]string) error {
	ctx, cancel := attemptContext(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	if client == nil {
		client = sharedClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("status %s", resp.Status)
	}
	return nil
}

// WireInvocation is the JSON body POSTed to a REST action endpoint.
type WireInvocation struct {
	ID           string            `json:"invocation_id"`
	TypeURI      string            `json:"action_type"`
	ActionName   string            `json:"action_name,omitempty"`
	ResourceURI  string            `json:"resource_uri"`
	ResourceType string            `json:"resource_type"`
	CallbackURI  string            `json:"callback_uri"`
	Params       map[string]string `json:"params,omitempty"`
	Credentials  map[string]string `json:"credentials,omitempty"`
}

// WireStatus is the JSON body an action POSTs to its callback URI.
type WireStatus struct {
	InvocationID string `json:"invocation_id"`
	Message      string `json:"message"`
	Detail       string `json:"detail,omitempty"`
}

// ToWire converts a runtime invocation to its wire form.
func ToWire(inv actionlib.Invocation) WireInvocation {
	return WireInvocation{
		ID:           inv.ID,
		TypeURI:      inv.TypeURI,
		ActionName:   inv.ActionName,
		ResourceURI:  inv.ResourceURI,
		ResourceType: inv.ResourceType,
		CallbackURI:  inv.CallbackURI,
		Params:       inv.Params,
		Credentials:  inv.Credentials,
	}
}

// FromWire converts a wire invocation back to the runtime form.
// Endpoint and protocol are not on the wire — the receiver is the
// endpoint.
func FromWire(w WireInvocation) actionlib.Invocation {
	return actionlib.Invocation{
		ID:           w.ID,
		TypeURI:      w.TypeURI,
		ActionName:   w.ActionName,
		ResourceURI:  w.ResourceURI,
		ResourceType: w.ResourceType,
		CallbackURI:  w.CallbackURI,
		Params:       w.Params,
		Credentials:  w.Credentials,
	}
}

// DecodeInvocation reads a WireInvocation from a request body.
func DecodeInvocation(r io.Reader) (actionlib.Invocation, error) {
	var w WireInvocation
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return actionlib.Invocation{}, fmt.Errorf("invoke: decode invocation: %w", err)
	}
	if w.ID == "" {
		return actionlib.Invocation{}, fmt.Errorf("invoke: invocation without id")
	}
	return FromWire(w), nil
}

// RESTInvoker POSTs invocations as JSON to the implementation endpoint.
type RESTInvoker struct {
	// Client overrides the shared pooled client (mostly tests).
	Client *http.Client
	// Timeout bounds one POST (0 = DefaultTimeout).
	Timeout time.Duration
}

// Invoke implements runtime.Invoker semantics for REST endpoints. A
// non-2xx response is a dispatch failure.
func (ri *RESTInvoker) Invoke(ctx context.Context, inv actionlib.Invocation) error {
	body, err := json.Marshal(ToWire(inv))
	if err != nil {
		return fmt.Errorf("invoke: encode invocation %s: %w", inv.ID, err)
	}
	if err := postJSON(ctx, ri.Client, ri.Timeout, inv.Endpoint, "application/json", body, nil); err != nil {
		return fmt.Errorf("invoke: POST %s: %w", inv.Endpoint, err)
	}
	return nil
}

// soapEnvelope is the minimal SOAP 1.1 wrapper used by the SOAP
// transport.
type soapEnvelope struct {
	XMLName xml.Name `xml:"http://schemas.xmlsoap.org/soap/envelope/ Envelope"`
	Body    soapBody `xml:"http://schemas.xmlsoap.org/soap/envelope/ Body"`
}

type soapBody struct {
	Invoke *soapInvoke `xml:"urn:gelee:actions invoke,omitempty"`
}

type soapInvoke struct {
	ID           string      `xml:"invocationId"`
	TypeURI      string      `xml:"actionType"`
	ResourceURI  string      `xml:"resourceUri"`
	ResourceType string      `xml:"resourceType"`
	CallbackURI  string      `xml:"callbackUri"`
	Params       []soapParam `xml:"params>param"`
}

type soapParam struct {
	ID    string `xml:"id,attr"`
	Value string `xml:",chardata"`
}

// SOAPInvoker wraps the invocation in a SOAP envelope.
type SOAPInvoker struct {
	// Client overrides the shared pooled client (mostly tests).
	Client *http.Client
	// Timeout bounds one POST (0 = DefaultTimeout).
	Timeout time.Duration
}

// Invoke POSTs a SOAP envelope to the endpoint.
func (si *SOAPInvoker) Invoke(ctx context.Context, inv actionlib.Invocation) error {
	env := soapEnvelope{Body: soapBody{Invoke: &soapInvoke{
		ID:           inv.ID,
		TypeURI:      inv.TypeURI,
		ResourceURI:  inv.ResourceURI,
		ResourceType: inv.ResourceType,
		CallbackURI:  inv.CallbackURI,
	}}}
	for k, v := range inv.Params {
		env.Body.Invoke.Params = append(env.Body.Invoke.Params, soapParam{ID: k, Value: v})
	}
	body, err := xml.Marshal(env)
	if err != nil {
		return fmt.Errorf("invoke: encode SOAP %s: %w", inv.ID, err)
	}
	payload := append([]byte(xml.Header), body...)
	hdr := map[string]string{"SOAPAction": "urn:gelee:actions#invoke"}
	if err := postJSON(ctx, si.Client, si.Timeout, inv.Endpoint, "text/xml; charset=utf-8", payload, hdr); err != nil {
		return fmt.Errorf("invoke: SOAP POST %s: %w", inv.Endpoint, err)
	}
	return nil
}

// DecodeSOAPInvocation parses a SOAP envelope into an invocation.
func DecodeSOAPInvocation(r io.Reader) (actionlib.Invocation, error) {
	var env soapEnvelope
	if err := xml.NewDecoder(r).Decode(&env); err != nil {
		return actionlib.Invocation{}, fmt.Errorf("invoke: decode SOAP: %w", err)
	}
	if env.Body.Invoke == nil {
		return actionlib.Invocation{}, fmt.Errorf("invoke: SOAP body has no invoke element")
	}
	in := env.Body.Invoke
	inv := actionlib.Invocation{
		ID:           in.ID,
		TypeURI:      in.TypeURI,
		ResourceURI:  in.ResourceURI,
		ResourceType: in.ResourceType,
		CallbackURI:  in.CallbackURI,
		Params:       make(map[string]string, len(in.Params)),
	}
	for _, p := range in.Params {
		inv.Params[p.ID] = p.Value
	}
	return inv, nil
}

// Handler is an in-process action implementation: perform the operation
// and return the terminal status detail. Returning an error reports the
// reserved failed status; otherwise completed is reported. Handlers may
// send intermediate updates through the Reporter first.
type Handler func(inv actionlib.Invocation, report Reporter) (detail string, err error)

// Reporter delivers status updates back to the lifecycle manager.
type Reporter interface {
	Report(up actionlib.StatusUpdate) error
}

// LocalInvoker routes invocations to registered in-process handlers by
// endpoint key and reports the terminal status itself. It exercises the
// same resolution and callback code paths as the HTTP transports minus
// the network.
type LocalInvoker struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	reporter Reporter
}

// NewLocalInvoker returns a LocalInvoker reporting through r.
func NewLocalInvoker(r Reporter) *LocalInvoker {
	return &LocalInvoker{handlers: make(map[string]Handler), reporter: r}
}

// Register installs the handler for an endpoint key (e.g.
// "local://gdoc/chr"). Re-registering replaces.
func (li *LocalInvoker) Register(endpoint string, h Handler) {
	li.mu.Lock()
	defer li.mu.Unlock()
	li.handlers[endpoint] = h
}

// Invoke implements runtime.Invoker. The context gates the start of the
// call; handlers themselves are not cancelable.
func (li *LocalInvoker) Invoke(ctx context.Context, inv actionlib.Invocation) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	li.mu.RLock()
	h, ok := li.handlers[inv.Endpoint]
	li.mu.RUnlock()
	if !ok {
		return fmt.Errorf("invoke: no local handler for endpoint %q", inv.Endpoint)
	}
	detail, err := h(inv, li.reporter)
	up := actionlib.StatusUpdate{InvocationID: inv.ID, Message: actionlib.StatusCompleted, Detail: detail}
	if err != nil {
		up.Message = actionlib.StatusFailed
		up.Detail = err.Error()
	}
	return li.reporter.Report(up)
}

// Dispatcher routes by implementation protocol — the single Invoker the
// runtime is configured with in full deployments. When Breakers is set,
// remote (REST/SOAP) sends are guarded: a per-endpoint circuit breaker
// and in-flight cap decide admission, and admitted sends retry up to
// Attempts times with jittered exponential backoff. Invocations carry a
// unique id end to end, so retried deliveries are deduplicable by the
// receiver. Local dispatch is in-process and never guarded.
type Dispatcher struct {
	REST  *RESTInvoker
	SOAP  *SOAPInvoker
	Local *LocalInvoker

	// Breakers guards remote sends per endpoint; nil = direct sends.
	Breakers *resilience.BreakerSet
	// Attempts per remote send (0 or 1 = no retry).
	Attempts int
	// Retry shapes the backoff between attempts.
	Retry resilience.Backoff
}

// Invoke implements runtime.Invoker.
func (d *Dispatcher) Invoke(ctx context.Context, inv actionlib.Invocation) error {
	switch inv.Protocol {
	case actionlib.ProtocolREST:
		if d.REST == nil {
			return fmt.Errorf("invoke: REST transport not configured")
		}
		return d.send(ctx, inv, d.REST.Invoke)
	case actionlib.ProtocolSOAP:
		if d.SOAP == nil {
			return fmt.Errorf("invoke: SOAP transport not configured")
		}
		return d.send(ctx, inv, d.SOAP.Invoke)
	case actionlib.ProtocolLocal:
		if d.Local == nil {
			return fmt.Errorf("invoke: local transport not configured")
		}
		return d.Local.Invoke(ctx, inv)
	}
	return fmt.Errorf("invoke: unknown protocol %q", inv.Protocol)
}

// send wraps one remote transport call in the breaker/retry guard.
func (d *Dispatcher) send(ctx context.Context, inv actionlib.Invocation, f func(context.Context, actionlib.Invocation) error) error {
	if d.Breakers == nil {
		return f(ctx, inv)
	}
	release, err := d.Breakers.Acquire(inv.Endpoint)
	if err != nil {
		return fmt.Errorf("invoke: %s: %w", inv.ID, err)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	err = resilience.Retry(ctx, d.Attempts, d.Retry, func(ctx context.Context) error {
		return f(ctx, inv)
	})
	release(err)
	return err
}

// CallbackClient is what remote (HTTP-hosted) action implementations use
// to report status: POST the WireStatus JSON to the callback URI.
type CallbackClient struct {
	// Client overrides the shared pooled client (mostly tests).
	Client *http.Client
	// Timeout bounds one POST (0 = DefaultTimeout).
	Timeout time.Duration
}

// Send posts the status update to callbackURI.
func (cc *CallbackClient) Send(callbackURI string, up actionlib.StatusUpdate) error {
	return cc.SendContext(context.Background(), callbackURI, up)
}

// SendContext is Send under a caller-controlled context.
func (cc *CallbackClient) SendContext(ctx context.Context, callbackURI string, up actionlib.StatusUpdate) error {
	body, err := json.Marshal(WireStatus{InvocationID: up.InvocationID, Message: up.Message, Detail: up.Detail})
	if err != nil {
		return err
	}
	if err := postJSON(ctx, cc.Client, cc.Timeout, callbackURI, "application/json", body, nil); err != nil {
		return fmt.Errorf("invoke: callback POST %s: %w", callbackURI, err)
	}
	return nil
}

// DecodeStatus reads a WireStatus from a callback request body.
func DecodeStatus(r io.Reader) (actionlib.StatusUpdate, error) {
	var w WireStatus
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return actionlib.StatusUpdate{}, fmt.Errorf("invoke: decode status: %w", err)
	}
	if w.InvocationID == "" {
		return actionlib.StatusUpdate{}, fmt.Errorf("invoke: status without invocation id")
	}
	return actionlib.StatusUpdate{InvocationID: w.InvocationID, Message: w.Message, Detail: w.Detail}, nil
}
