package runtime

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/store"
	"github.com/liquidpub/gelee/internal/vclock"
)

// storeSink adapts the real on-disk instance collection to the
// runtime's Journal seam, exactly as the facade does.
type storeSink struct{ coll *store.Instances }

func (s storeSink) Record(rec *JournalRecord) error {
	data, err := rec.Encode()
	if err != nil {
		return err
	}
	return s.coll.Append(rec.Instance, data)
}

// TestStressPersistCrashRecovery hammers a journaled runtime from many
// goroutines against the real flush-combining instance journal, then
// simulates a crash: the collection is abandoned without Close and the
// journal file gets a torn partial batch appended (the damage a kill
// mid-write leaves). A fresh collection+runtime pair must replay every
// acknowledged mutation — token positions, histories, executions,
// counters, indexes byte-identical — and drop the torn tail. Run with
// -race.
func TestStressPersistCrashRecovery(t *testing.T) {
	const workers, perWorker, rounds = 8, 3, 12
	dir := t.TempDir()
	coll, err := store.OpenInstances(dir, store.InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coll.Replay(func(string, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	inv := &recordingInvoker{status: actionlib.StatusCompleted}
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	rt, err := New(Config{
		Registry:    testActions(t),
		Invoker:     inv,
		Clock:       clock,
		SyncActions: true,
		Journal:     storeSink{coll},
	})
	if err != nil {
		t.Fatal(err)
	}
	inv.rt = rt

	model := fig1(t)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]string, perWorker)
			for i := range ids {
				ref := wikiRef()
				ref.URI = fmt.Sprintf("http://wiki.liquidpub.org/w%d-%d", w, i)
				snap, err := rt.Instantiate(model, ref, fmt.Sprintf("owner-%d", w),
					map[string]map[string]string{"http://www.liquidpub.org/a/notify": {"reviewers": "alice"}})
				if err != nil {
					panic(err)
				}
				ids[i] = snap.ID
			}
			phases := []string{"elaboration", "internalreview", "elaboration", "finalassembly", "eureview"}
			for r := 0; r < rounds; r++ {
				id := ids[r%perWorker]
				if _, err := rt.Advance(id, phases[r%len(phases)], fmt.Sprintf("owner-%d", w), AdvanceOptions{}); err != nil {
					panic(err)
				}
				if err := rt.Annotate(id, fmt.Sprintf("owner-%d", w), fmt.Sprintf("round %d", r)); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	rt.WaitDispatch()

	// Crash: no Close. Everything acknowledged is already write(2)-deep
	// in the journal. A partially written batch tail goes on top.
	f, err := os.OpenFile(filepath.Join(dir, "gelee.journal"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":999999,"repo":"instances","op":"append","id":"li-9`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	coll2, err := store.OpenInstances(dir, store.InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer coll2.Close()
	rt2, err := New(Config{Registry: testActions(t), Invoker: inv, Clock: clock, SyncActions: true,
		Journal: storeSink{coll2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := coll2.Replay(rt2.ApplyJournal); err != nil {
		t.Fatal(err)
	}
	rec := rt2.FinishRecovery()
	if rec.Instances != workers*perWorker {
		t.Fatalf("recovered %d instances, want %d", rec.Instances, workers*perWorker)
	}
	if rec.Records != coll2.Replayed() {
		t.Fatalf("recovery counted %d records, collection replayed %d", rec.Records, coll2.Replayed())
	}
	assertSameState(t, rt, rt2)

	// Gapless per-instance seqs and a token position backed by the last
	// phase-entered event — the recovered journal is a consistent
	// prefix, not a re-interpretation.
	for _, snap := range rt2.Instances() {
		last := ""
		for i, ev := range snap.Events {
			if ev.Seq != i+1 {
				t.Fatalf("%s: seq gap at %d (seq %d)", snap.ID, i, ev.Seq)
			}
			if ev.Kind == EventPhaseEntered {
				last = ev.Phase
			}
		}
		if snap.Current != last {
			t.Fatalf("%s: token at %q but last phase-entered was %q", snap.ID, snap.Current, last)
		}
	}

	// The recovered pair keeps working: new mutations journal cleanly
	// after the torn tail was truncated away.
	snap, err := rt2.Instantiate(model, wikiRef(), "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt2.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
}
