package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/vclock"
)

// popModel: a plain three-phase lifecycle with no actions, so advances
// never touch the dispatcher — the population-index tests drive
// membership and ordering, not action plumbing. The work phase carries
// a deadline so lateness filters have something to match.
func popModel() *core.Model {
	return core.NewModel("urn:pop:model", "Pop").
		Phase("draft", "Draft").
		Phase("work", "Work").DueIn(24*time.Hour).Done().
		FinalPhase("done", "Done").
		Initial("draft").
		Transition("draft", "work").Transition("work", "done").
		MustBuild()
}

func popRuntime(t testing.TB, cfg Config) *Runtime {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = actionlib.NewRegistry()
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func popRef(i int) resource.Ref {
	return resource.Ref{URI: fmt.Sprintf("urn:pop:res-%d", i%5), Type: "doc"}
}

// assertIndexMatchesCollectAll compares the population index against
// the collectAll ground truth: same length, same instances, same order.
func assertIndexMatchesCollectAll(t *testing.T, rt *Runtime) {
	t.Helper()
	ground := rt.collectAll()
	refs, more := rt.pageRefs(0, 0)
	if more {
		t.Fatalf("unbounded pageRefs reported more")
	}
	if len(refs) != len(ground) {
		t.Fatalf("index holds %d instances, collectAll %d", len(refs), len(ground))
	}
	for i := range ground {
		if refs[i] != ground[i] {
			t.Fatalf("index[%d] = %s (seq %d), collectAll[%d] = %s (seq %d)",
				i, refs[i].id, refs[i].seq, i, ground[i].id, ground[i].seq)
		}
	}
}

// TestPopulationIndexStress races instantiates, advances, snapshot
// folds (EmitSnapshots' instPub barrier) and paged readers against
// each other, then asserts the ordered index's membership and order
// exactly match the collectAll ground truth — and again after a full
// journal replay into a fresh runtime (run with -race).
func TestPopulationIndexStress(t *testing.T) {
	const (
		creators    = 4
		perCreator  = 60
		advancers   = 2
		readers     = 2
		folds       = 20
		pageStep    = 37
		readerLoops = 30
	)
	sink := &captureSink{}
	rt := popRuntime(t, Config{Journal: sink})
	model := popModel()

	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		idsMu   sync.Mutex
		liveIDs []string
	)
	for c := 0; c < creators; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perCreator; i++ {
				snap, err := rt.Instantiate(model, popRef(c*perCreator+i), "owner", nil)
				if err != nil {
					t.Errorf("instantiate: %v", err)
					return
				}
				idsMu.Lock()
				liveIDs = append(liveIDs, snap.ID)
				idsMu.Unlock()
			}
		}(c)
	}
	for a := 0; a < advancers; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				idsMu.Lock()
				var id string
				if len(liveIDs) > 0 {
					id = liveIDs[(a*7+i)%len(liveIDs)]
				}
				idsMu.Unlock()
				if id == "" {
					continue
				}
				// Deviations and re-advances are legal; only transport
				// errors matter here.
				_, _ = rt.Advance(id, "work", "owner", AdvanceOptions{})
			}
		}(a)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < folds; i++ {
			if err := rt.EmitSnapshots(func(string, []byte) error { return nil }); err != nil {
				t.Errorf("fold: %v", err)
				return
			}
		}
	}()
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readerLoops; i++ {
				var after int64
				seen := make(map[string]bool)
				for {
					page := rt.SummariesPage(after, pageStep)
					last := after
					for _, s := range page.Summaries {
						if s.Seq <= last {
							t.Errorf("page out of order: seq %d after %d", s.Seq, last)
							return
						}
						last = s.Seq
						if seen[s.ID] {
							t.Errorf("duplicate %s in one walk", s.ID)
							return
						}
						seen[s.ID] = true
					}
					if page.NextAfter == 0 {
						break
					}
					after = page.NextAfter
				}
			}
		}()
	}
	// Creators finish first; then release the advancers so the test
	// bounds its runtime.
	go func() {
		for rt.Count() < creators*perCreator {
			time.Sleep(time.Millisecond)
		}
		stop.Store(true)
	}()
	wg.Wait()
	stop.Store(true)

	assertIndexMatchesCollectAll(t, rt)
	if got := rt.RuntimeStats().PopulationIndex.Entries; got != creators*perCreator {
		t.Fatalf("index entries = %d, want %d", got, creators*perCreator)
	}

	// Replay everything into a fresh runtime: the index must be rebuilt
	// as a side effect of replay and agree with its own ground truth
	// and with the live population's membership.
	rt2 := popRuntime(t, Config{})
	sink.replayInto(t, rt2)
	assertIndexMatchesCollectAll(t, rt2)
	want := rt.Summaries()
	got := rt2.Summaries()
	if len(want) != len(got) {
		t.Fatalf("replayed population = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Seq != got[i].Seq {
			t.Fatalf("replayed[%d] = %s/%d, want %s/%d", i, got[i].ID, got[i].Seq, want[i].ID, want[i].Seq)
		}
	}
}

// TestPopulationIndexReplayFromSnapshots rebuilds a runtime from
// folded snapshot records only and checks the index order — the
// replaySnapshot publication site.
func TestPopulationIndexReplayFromSnapshots(t *testing.T) {
	rt := popRuntime(t, Config{})
	model := popModel()
	for i := 0; i < 40; i++ {
		if _, err := rt.Instantiate(model, popRef(i), "owner", nil); err != nil {
			t.Fatal(err)
		}
	}
	var recs []capturedRec
	if err := rt.EmitSnapshots(func(id string, data []byte) error {
		recs = append(recs, capturedRec{id: id, data: data})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rt2 := popRuntime(t, Config{})
	// Snapshots are emitted in shard order, not seq order — exactly the
	// out-of-order insert path the index must absorb.
	for _, r := range recs {
		if err := rt2.ApplyJournal(r.id, r.data); err != nil {
			t.Fatal(err)
		}
	}
	rt2.FinishRecovery()
	assertIndexMatchesCollectAll(t, rt2)
	if got, want := len(rt2.Summaries()), 40; got != want {
		t.Fatalf("replayed population = %d, want %d", got, want)
	}
}

// TestSummariesPageCursorStability walks the population by cursor
// while creators keep instantiating, and asserts the walk never skips
// or duplicates an instance that existed before it started — the
// invariant the collectAll scan gave for free and the ordered index
// must preserve.
func TestSummariesPageCursorStability(t *testing.T) {
	const preSeeded = 150
	rt := popRuntime(t, Config{})
	model := popModel()
	pre := make(map[string]int64, preSeeded)
	var maxPreSeq int64
	for i := 0; i < preSeeded; i++ {
		snap, err := rt.Instantiate(model, popRef(i), "owner", nil)
		if err != nil {
			t.Fatal(err)
		}
		sum, _ := rt.Summary(snap.ID)
		pre[snap.ID] = sum.Seq
		if sum.Seq > maxPreSeq {
			maxPreSeq = sum.Seq
		}
	}

	var wg sync.WaitGroup
	var stop atomic.Bool
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if _, err := rt.Instantiate(model, popRef(c+i), "owner", nil); err != nil {
					t.Errorf("instantiate: %v", err)
					return
				}
			}
		}(c)
	}

	for walk := 0; walk < 25; walk++ {
		seen := make(map[string]bool)
		var after int64
		for {
			page := rt.SummariesPage(after, 7)
			for _, s := range page.Summaries {
				if _, isPre := pre[s.ID]; isPre {
					if seen[s.ID] {
						t.Fatalf("walk %d saw pre-existing %s twice", walk, s.ID)
					}
					seen[s.ID] = true
				}
				if s.Seq <= after {
					t.Fatalf("walk %d: cursor went backwards (%d after %d)", walk, s.Seq, after)
				}
				after = s.Seq
			}
			if page.NextAfter == 0 {
				break
			}
			after = page.NextAfter
		}
		if len(seen) != preSeeded {
			t.Fatalf("walk %d saw %d of %d pre-existing instances", walk, len(seen), preSeeded)
		}
	}
	stop.Store(true)
	wg.Wait()
	assertIndexMatchesCollectAll(t, rt)
}

// TestSummariesPageMatchesScan pins the indexed page to the deprecated
// collectAll scan across cursors and limits: same summaries, same
// totals, same next cursor.
func TestSummariesPageMatchesScan(t *testing.T) {
	rt := popRuntime(t, Config{Shards: 7})
	model := popModel()
	for i := 0; i < 83; i++ {
		if _, err := rt.Instantiate(model, popRef(i), "owner", nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, limit := range []int{0, 1, 7, 83, 200} {
		var after int64
		for pages := 0; ; pages++ {
			idx := rt.SummariesPage(after, limit)
			scan := rt.SummariesPageScan(after, limit)
			if idx.Total != scan.Total || idx.NextAfter != scan.NextAfter || len(idx.Summaries) != len(scan.Summaries) {
				t.Fatalf("limit %d after %d: index {%d items, total %d, next %d} vs scan {%d, %d, %d}",
					limit, after, len(idx.Summaries), idx.Total, idx.NextAfter,
					len(scan.Summaries), scan.Total, scan.NextAfter)
			}
			for i := range idx.Summaries {
				if idx.Summaries[i].ID != scan.Summaries[i].ID {
					t.Fatalf("limit %d after %d item %d: %s vs %s",
						limit, after, i, idx.Summaries[i].ID, scan.Summaries[i].ID)
				}
			}
			if idx.NextAfter == 0 {
				break
			}
			after = idx.NextAfter
		}
	}
	st := rt.RuntimeStats().PopulationIndex
	if st.IndexedQueries == 0 || st.ScanQueries == 0 {
		t.Fatalf("query counters not maintained: %+v", st)
	}
}

// TestQuerySummariesMatchesBruteForce checks every filter route —
// resource index, model index, state and lateness predicates, and
// their combinations — against a brute-force filter of the full
// summary listing, paged and unpaged.
func TestQuerySummariesMatchesBruteForce(t *testing.T) {
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	rt := popRuntime(t, Config{Clock: clock})
	modelA := popModel()
	modelB := core.NewModel("urn:pop:other", "Other").
		Phase("only", "Only").Done().
		Initial("only").
		MustBuild()
	for i := 0; i < 90; i++ {
		m := modelA
		if i%3 == 0 {
			m = modelB
		}
		snap, err := rt.Instantiate(m, popRef(i), "owner", nil)
		if err != nil {
			t.Fatal(err)
		}
		if m == modelA {
			switch i % 4 {
			case 1: // sitting in the deadline phase → late once time passes
				if _, err := rt.Advance(snap.ID, "work", "owner", AdvanceOptions{}); err != nil {
					t.Fatal(err)
				}
			case 2: // completed
				if _, err := rt.Advance(snap.ID, "work", "owner", AdvanceOptions{}); err != nil {
					t.Fatal(err)
				}
				if _, err := rt.Advance(snap.ID, "done", "owner", AdvanceOptions{}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Push past the 24h deadline so the work-phase dwellers are late.
	clock.Advance(25 * time.Hour)
	now := clock.Now()

	all := rt.Summaries()
	filters := []Filter{
		{},
		{Resource: "urn:pop:res-2"},
		{Resource: "urn:pop:res-2", State: StateCompleted},
		{Resource: "urn:pop:no-such"},
		{ModelURI: "urn:pop:model"},
		{ModelURI: "urn:pop:other", State: StateActive},
		{State: StateCompleted},
		{LateOnly: true, Now: now},
		{Resource: "urn:pop:res-1", LateOnly: true, Now: now},
		{ModelURI: "urn:pop:model", State: StateActive, LateOnly: true, Now: now},
	}
	for fi, f := range filters {
		var want []Summary
		for _, s := range all {
			if f.match(&s, now) {
				want = append(want, s)
			}
		}
		got := rt.QuerySummaries(f, 0, 0)
		if len(got.Summaries) != len(want) {
			t.Fatalf("filter %d: %d matches, want %d", fi, len(got.Summaries), len(want))
		}
		for i := range want {
			if got.Summaries[i].ID != want[i].ID {
				t.Fatalf("filter %d item %d: %s, want %s", fi, i, got.Summaries[i].ID, want[i].ID)
			}
		}
		// The same matches must come back when paging with a small
		// limit and following NextAfter.
		var paged []Summary
		var after int64
		for {
			page := rt.QuerySummaries(f, after, 7)
			paged = append(paged, page.Summaries...)
			if page.NextAfter == 0 {
				break
			}
			after = page.NextAfter
		}
		if len(paged) != len(want) {
			t.Fatalf("filter %d paged: %d matches, want %d", fi, len(paged), len(want))
		}
		for i := range want {
			if paged[i].ID != want[i].ID {
				t.Fatalf("filter %d paged item %d: %s, want %s", fi, i, paged[i].ID, want[i].ID)
			}
		}
		// And streamed through the iterator the monitor uses.
		var streamed []Summary
		rt.ForEachSummary(f, 0, func(s Summary) bool {
			streamed = append(streamed, s)
			return true
		})
		if len(streamed) != len(want) {
			t.Fatalf("filter %d streamed: %d matches, want %d", fi, len(streamed), len(want))
		}
	}

	// Index-served filters report the match count as Total; walked
	// filters report 0 (unknown) — both documented.
	if p := rt.QuerySummaries(Filter{Resource: "urn:pop:res-2"}, 0, 4); p.Total == 0 {
		t.Fatalf("resource-indexed query lost its total")
	}
	if p := rt.QuerySummaries(Filter{}, 0, 4); p.Total != rt.Count() {
		t.Fatalf("unfiltered total = %d, want %d", p.Total, rt.Count())
	}
}

// TestQuerySummariesModelSwitchConsistency pins the model-index
// re-check: after an owner switches an instance to a different model,
// a by-model query must not return it under the old URI.
func TestQuerySummariesModelSwitchConsistency(t *testing.T) {
	rt := popRuntime(t, Config{})
	model := popModel()
	snap, err := rt.Instantiate(model, popRef(1), "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	other := core.NewModel("urn:pop:other", "Other").
		Phase("only", "Only").Done().
		Initial("only").
		MustBuild()
	if _, err := rt.SwitchModel(snap.ID, "owner", other, ""); err != nil {
		t.Fatal(err)
	}
	if p := rt.QuerySummaries(Filter{ModelURI: "urn:pop:model"}, 0, 0); len(p.Summaries) != 0 {
		t.Fatalf("switched instance still served under old model URI")
	}
	p := rt.QuerySummaries(Filter{ModelURI: "urn:pop:other"}, 0, 0)
	if len(p.Summaries) != 1 || p.Summaries[0].ID != snap.ID {
		t.Fatalf("switched instance not served under new model URI: %+v", p)
	}
}
