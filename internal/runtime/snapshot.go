package runtime

// Snapshot folding support: the RecSnapshot record captures one
// instance's full replayable image — everything ApplyJournal rebuilds
// by streaming the instance's mutation records, in one record — so the
// instance journal's sealed segments can be folded away and restart
// replay stays O(live instances + unfolded tail) instead of O(every
// record ever written). EmitSnapshots produces the images for the
// store's folder (store.Instances.SetSnapshotSource); replaySnapshot
// applies one during recovery, after which the instance's unfolded
// tail records replay on top through the normal appliers.

import (
	"encoding/json"
	"fmt"
	"time"
)

// EmitSnapshots calls emit once per live instance with the instance's
// id and its encoded RecSnapshot record, each produced and emitted
// while that instance's mutation lock is held — the contract the
// store's fold-boundary sampling relies on: at emit time the image
// reflects exactly the records journaled for that instance so far, and
// no new one can be journaled until emit returns. emit must not call
// back into the Runtime. Safe to run while live traffic mutates other
// instances; a non-nil error from emit aborts the walk.
func (r *Runtime) EmitSnapshots(emit func(id string, data []byte) error) error {
	// Barrier: wait out any Instantiate that has journaled its record
	// but not yet published the instance — otherwise the walk below
	// could miss an instance whose record the fold is about to delete.
	r.instPub.Lock()
	//lint:ignore SA2001 empty critical section is the barrier
	r.instPub.Unlock()
	for _, sh := range r.shards {
		sh.mu.RLock()
		list := make([]*instance, 0, len(sh.instances))
		for _, in := range sh.instances {
			list = append(list, in)
		}
		sh.mu.RUnlock()
		for _, in := range list {
			in.mu.Lock()
			rec := snapshotRecord(in)
			data, err := json.Marshal(rec)
			if err == nil {
				err = emit(in.id, data)
			}
			in.mu.Unlock()
			if err != nil {
				return fmt.Errorf("runtime: snapshot %s: %w", in.id, err)
			}
		}
	}
	return nil
}

// snapshotRecord builds the full replayable image; callers hold in.mu.
// Maps and slices are copied so the encoded record never races a later
// mutation (encoding happens under the lock anyway; the copies keep
// the record self-contained should that ever change).
func snapshotRecord(in *instance) *JournalRecord {
	rec := &JournalRecord{
		Op:           RecSnapshot,
		Instance:     in.id,
		Seq:          in.seq,
		Model:        in.model,
		ModelURI:     in.modelURI,
		Resource:     &in.res,
		Owner:        in.owner,
		CreatedAt:    in.createdAt,
		Unresolved:   in.unresolved,
		Bindings:     in.instBindings,
		State:        in.state,
		Current:      in.current,
		CompletedAt:  in.completedAt,
		Events:       in.events,
		EventSeq:     in.eventSeq,
		TruncatedEvs: in.truncatedEvs,
		Deviations:   in.deviations,
		Pending:      in.pending,
		ResidPhase:   in.residPhase,
		ResidSince:   in.residSince,
		PhaseEntered: in.phaseEntered,
	}
	if in.phaseResidence != nil {
		rec.PhaseResidence = make(map[string]time.Duration, len(in.phaseResidence))
		for p, d := range in.phaseResidence {
			rec.PhaseResidence[p] = d
		}
	}
	for _, id := range in.execOrder {
		rec.Executions = append(rec.Executions, *in.executions[id])
	}
	return rec
}

// replaySnapshot reconstructs an instance from its folded image: state
// fields and the retained event ring verbatim, counters restored
// rather than re-derived (the ring may no longer contain the events
// that built them), executions re-registered in the callback index,
// id counters bumped. The unfolded tail records for this instance
// replay on top afterwards through the normal appliers.
func (r *Runtime) replaySnapshot(rec *JournalRecord) error {
	if rec.Model == nil || rec.Resource == nil {
		return fmt.Errorf("runtime: snapshot record for %s missing model or resource", rec.Instance)
	}
	modelURI := rec.ModelURI
	if modelURI == "" {
		modelURI = rec.Model.URI
	}
	bindings := rec.Bindings
	if bindings == nil {
		bindings = make(map[string]map[string]string)
	}
	in := &instance{
		id:             rec.Instance,
		seq:            rec.Seq,
		model:          rec.Model, // decoded copy: the record owns it exclusively
		mcache:         buildModelCache(rec.Model),
		modelURI:       modelURI,
		res:            *rec.Resource,
		owner:          rec.Owner,
		state:          rec.State,
		current:        rec.Current,
		createdAt:      rec.CreatedAt,
		completedAt:    rec.CompletedAt,
		instBindings:   bindings,
		unresolved:     rec.Unresolved,
		events:         rec.Events,
		eventSeq:       rec.EventSeq,
		truncatedEvs:   rec.TruncatedEvs,
		deviations:     rec.Deviations,
		pending:        rec.Pending,
		executions:     make(map[string]*ActionExecution, len(rec.Executions)),
		phaseEntered:   rec.PhaseEntered,
		phaseResidence: rec.PhaseResidence,
		residPhase:     rec.ResidPhase,
		residSince:     rec.ResidSince,
	}
	if in.state == "" {
		in.state = StateActive
	}
	if in.phaseEntered != nil && in.phaseResidence == nil {
		in.phaseResidence = make(map[string]time.Duration)
	}
	// Re-apply ring truncation under the *current* config: a restart
	// with a smaller MaxEventsInMemory trims the restored ring the same
	// way the live path would have.
	if max := r.cfg.MaxEventsInMemory; max > 0 && len(in.events) > max+max/4 {
		drop := len(in.events) - max
		kept := make([]Event, max)
		copy(kept, in.events[drop:])
		in.events = kept
		in.truncatedEvs += drop
	}
	r.totalEvents.Add(int64(in.eventSeq))
	r.truncatedEvents.Add(int64(in.truncatedEvs))

	for i := range rec.Executions {
		ex := rec.Executions[i]
		r.registerExecution(in, &ex)
	}

	if r.publish(in) {
		return fmt.Errorf("%w: replayed snapshot for existing %s", ErrAlreadyExists, in.id)
	}
	r.byRes.add(in.res.URI, in)
	r.byModel.add(in.modelURI, in)
	bumpAtLeast(&r.nextInst, rec.Seq)
	return nil
}
