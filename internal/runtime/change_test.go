package runtime

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/core"
)

// fig1WithoutInternalReview is the "we're late, drop the internal
// review" model change from §II.A.
func fig1WithoutInternalReview(t *testing.T) *core.Model {
	t.Helper()
	m := fig1(t).Clone()
	m.Version.Number = "2.0"
	var phases []*core.Phase
	for _, p := range m.Phases {
		if p.ID != "internalreview" {
			phases = append(phases, p)
		}
	}
	m.Phases = phases
	var trans []core.Transition
	for _, tr := range m.Transitions {
		if tr.From != "internalreview" && tr.To != "internalreview" {
			trans = append(trans, tr)
		}
	}
	trans = append(trans, core.Transition{From: "elaboration", To: "finalassembly"})
	m.Transitions = trans
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestProposeAcceptKeepPhase(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID
	e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{})

	newM := fig1WithoutInternalReview(t)
	if err := e.rt.ProposeChange(id, "coordinator", newM, "review dropped per PMB decision"); err != nil {
		t.Fatal(err)
	}
	got, _ := e.rt.Instance(id)
	if got.Pending == nil {
		t.Fatal("proposal not attached")
	}
	if got.Pending.ProposedBy != "coordinator" {
		t.Fatalf("proposer = %q", got.Pending.ProposedBy)
	}
	if !strings.Contains(got.Pending.Summary, "removed internalreview") {
		t.Fatalf("summary = %q", got.Pending.Summary)
	}

	// Current phase (elaboration) survives in the new model: landing is
	// optional.
	after, err := e.rt.AcceptChange(id, "owner", "")
	if err != nil {
		t.Fatal(err)
	}
	if after.Current != "elaboration" {
		t.Fatalf("current = %q after migration", after.Current)
	}
	if after.Pending != nil {
		t.Fatal("pending not cleared")
	}
	if _, ok := after.Model.Phase("internalreview"); ok {
		t.Fatal("instance still has the removed phase")
	}
	if after.Model.Version.Number != "2.0" {
		t.Fatalf("model version = %q", after.Model.Version.Number)
	}
	if after.State != StateActive {
		t.Fatalf("state = %s", after.State)
	}
}

func TestAcceptRequiresLandingWhenPhaseRemoved(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID
	e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{})
	e.rt.Advance(id, "internalreview", "owner", AdvanceOptions{})

	if err := e.rt.ProposeChange(id, "coordinator", fig1WithoutInternalReview(t), ""); err != nil {
		t.Fatal(err)
	}
	// Token sits on the phase being removed: accepting without a landing
	// phase must fail with a decision-needed error.
	_, err := e.rt.AcceptChange(id, "owner", "")
	if !errors.Is(err, ErrUnknownPhase) {
		t.Fatalf("err = %v, want ErrUnknownPhase (must choose landing)", err)
	}
	// Owner chooses where to land — "they can state in which phase the
	// lifecycle instance should end up" (§IV.B).
	after, err := e.rt.AcceptChange(id, "owner", "finalassembly")
	if err != nil {
		t.Fatal(err)
	}
	if after.Current != "finalassembly" {
		t.Fatalf("current = %q", after.Current)
	}
	// State migration only: landing must NOT have dispatched the
	// finalassembly actions.
	for _, ex := range after.Executions {
		if ex.Phase == "finalassembly" {
			t.Fatalf("migration dispatched actions: %+v", ex)
		}
	}
}

func TestAcceptLandingOnFinalCompletes(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID
	e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{})
	if err := e.rt.ProposeChange(id, "coordinator", fig1WithoutInternalReview(t), ""); err != nil {
		t.Fatal(err)
	}
	after, err := e.rt.AcceptChange(id, "owner", "accepted")
	if err != nil {
		t.Fatal(err)
	}
	if after.State != StateCompleted {
		t.Fatalf("state = %s, want completed (landed on end phase)", after.State)
	}
	if after.CompletedAt.IsZero() {
		t.Fatal("CompletedAt not stamped by migration")
	}
}

func TestRejectChangeKeepsModel(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID
	e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{})
	before, _ := e.rt.Instance(id)
	fpBefore := before.Model.Fingerprint()

	if err := e.rt.ProposeChange(id, "coordinator", fig1WithoutInternalReview(t), ""); err != nil {
		t.Fatal(err)
	}
	if err := e.rt.RejectChange(id, "owner", "we still want the internal review"); err != nil {
		t.Fatal(err)
	}
	after, _ := e.rt.Instance(id)
	if after.Pending != nil {
		t.Fatal("pending survives rejection")
	}
	if after.Model.Fingerprint() != fpBefore {
		t.Fatal("rejection changed the model")
	}
	last := after.Events[len(after.Events)-1]
	if last.Kind != EventChangeRejected || !strings.Contains(last.Detail, "still want") {
		t.Fatalf("rejection event = %+v", last)
	}
}

func TestChangeDecisionsAreOwnerOnly(t *testing.T) {
	policy := policyFunc{
		drive:  func(actor, inst string) bool { return actor == "owner" },
		follow: func(actor, inst, target string) bool { return true },
	}
	e := newEnvWithPolicy(t, policy)
	snap := e.instantiate(t)
	id := snap.ID
	if err := e.rt.ProposeChange(id, "coordinator", fig1WithoutInternalReview(t), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rt.AcceptChange(id, "dev", ""); !errors.Is(err, ErrForbidden) {
		t.Fatalf("err = %v, want ErrForbidden", err)
	}
	if err := e.rt.RejectChange(id, "dev", ""); !errors.Is(err, ErrForbidden) {
		t.Fatalf("err = %v, want ErrForbidden", err)
	}
}

func newEnvWithPolicy(t *testing.T, p Policy) *env {
	t.Helper()
	inv := &recordingInvoker{}
	rt, err := New(Config{Registry: testActions(t), Invoker: inv, SyncActions: true, Policy: p})
	if err != nil {
		t.Fatal(err)
	}
	inv.rt = rt
	return &env{rt: rt, inv: inv}
}

func TestAcceptWithoutProposal(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	if _, err := e.rt.AcceptChange(snap.ID, "owner", ""); !errors.Is(err, ErrNoPending) {
		t.Fatalf("err = %v, want ErrNoPending", err)
	}
	if err := e.rt.RejectChange(snap.ID, "owner", ""); !errors.Is(err, ErrNoPending) {
		t.Fatalf("err = %v, want ErrNoPending", err)
	}
}

func TestSecondProposalReplacesFirst(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID
	v2 := fig1WithoutInternalReview(t)
	if err := e.rt.ProposeChange(id, "coordinator", v2, "first try"); err != nil {
		t.Fatal(err)
	}
	v3 := fig1(t).Clone()
	v3.Version.Number = "3.0"
	v3.Phases = append(v3.Phases, &core.Phase{ID: "archival", Name: "Archival"})
	if err := e.rt.ProposeChange(id, "coordinator", v3, "second try"); err != nil {
		t.Fatal(err)
	}
	got, _ := e.rt.Instance(id)
	if !strings.Contains(got.Pending.Summary, "added archival") {
		t.Fatalf("pending is not the second proposal: %q", got.Pending.Summary)
	}
	// History shows the replacement.
	var sawReplace bool
	for _, ev := range got.Events {
		if ev.Kind == EventChangeProposed && strings.Contains(ev.Detail, "replaces an undecided proposal") {
			sawReplace = true
		}
	}
	if !sawReplace {
		t.Fatal("replacement not recorded in history")
	}
}

func TestProposalIsSnapshotted(t *testing.T) {
	// Mutating the proposed model after ProposeChange must not affect
	// the pending proposal (light coupling again).
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID
	newM := fig1WithoutInternalReview(t)
	if err := e.rt.ProposeChange(id, "coordinator", newM, ""); err != nil {
		t.Fatal(err)
	}
	newM.Phases[0].Name = "Tampered"
	after, err := e.rt.AcceptChange(id, "owner", "elaboration")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := after.Model.Phase("elaboration")
	if p.Name == "Tampered" {
		t.Fatal("proposal shared storage with the designer's model")
	}
}

func TestProposeRejectsInvalidModel(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	if err := e.rt.ProposeChange(snap.ID, "coordinator", &core.Model{Name: "empty"}, ""); err == nil {
		t.Fatal("invalid model proposed successfully")
	}
	if err := e.rt.ProposeChange(snap.ID, "coordinator", nil, ""); err == nil {
		t.Fatal("nil model proposed successfully")
	}
	if err := e.rt.ProposeChange("li-000777", "coordinator", fig1(t), ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestSwitchModelOwnerInitiated(t *testing.T) {
	// §IV.B: "owners can change the lifecycle followed by a resource".
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID
	e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{})

	survey, err := core.NewModel("urn:gelee:models:journal-survey", "Journal survey lifecycle").
		Version("1.0", "owner", time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC)).
		Phase("drafting", "Drafting").Done().
		Phase("submission", "Submission").Done().
		FinalPhase("published", "Published").
		Initial("drafting").
		Chain("drafting", "submission", "published").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	after, err := e.rt.SwitchModel(id, "owner", survey, "drafting")
	if err != nil {
		t.Fatal(err)
	}
	if after.Current != "drafting" || after.Model.Name != "Journal survey lifecycle" {
		t.Fatalf("switch failed: %q in %q", after.Current, after.Model.Name)
	}
	if after.ModelURI != "urn:gelee:models:journal-survey" {
		t.Fatalf("model provenance not updated: %q", after.ModelURI)
	}
	// Full history preserved across the switch.
	if after.Events[0].Kind != EventCreated {
		t.Fatal("history lost")
	}
}

func TestSwitchModelFailureLeavesNoTrace(t *testing.T) {
	// A switch whose landing cannot be resolved must not change the
	// model, the provenance pointer, the model index, or leave its
	// proposal pending for a later unrelated AcceptChange.
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID
	e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{})

	survey, err := core.NewModel("urn:gelee:models:journal-survey", "Journal survey lifecycle").
		Version("1.0", "owner", time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC)).
		Phase("drafting", "Drafting").Done().
		FinalPhase("published", "Published").
		Initial("drafting").
		Chain("drafting", "published").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// Current phase "elaboration" does not exist in survey and no
	// landing is given: the switch must fail atomically.
	if _, err := e.rt.SwitchModel(id, "owner", survey, ""); !errors.Is(err, ErrUnknownPhase) {
		t.Fatalf("switch error = %v, want ErrUnknownPhase", err)
	}
	got, _ := e.rt.Instance(id)
	if got.ModelURI != snap.ModelURI {
		t.Fatalf("failed switch moved provenance to %q", got.ModelURI)
	}
	if got.Current != "elaboration" {
		t.Fatalf("failed switch moved the token to %q", got.Current)
	}
	if got.Pending != nil {
		t.Fatalf("failed switch left a pending proposal: %+v", got.Pending)
	}
	if _, err := e.rt.AcceptChange(id, "owner", ""); !errors.Is(err, ErrNoPending) {
		t.Fatalf("accept after failed switch = %v, want ErrNoPending", err)
	}
	// The model index must still list the instance under its original
	// model URI, and not under the rejected one.
	if got := e.rt.ByModelURI(snap.ModelURI); len(got) != 1 || got[0].ID != id {
		t.Fatalf("ByModelURI(%s) = %d instances after failed switch", snap.ModelURI, len(got))
	}
	if got := e.rt.ByModelURI("urn:gelee:models:journal-survey"); len(got) != 0 {
		t.Fatalf("failed switch indexed the instance under the new model")
	}
}

func TestMigrationAtBeginNeedsNoLanding(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t) // token still at BEGIN
	if err := e.rt.ProposeChange(snap.ID, "coordinator", fig1WithoutInternalReview(t), ""); err != nil {
		t.Fatal(err)
	}
	after, err := e.rt.AcceptChange(snap.ID, "owner", "")
	if err != nil {
		t.Fatalf("migration at BEGIN should not need a landing phase: %v", err)
	}
	if after.Current != "" {
		t.Fatalf("token moved by migration: %q", after.Current)
	}
}
