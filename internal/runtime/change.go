package runtime

import (
	"fmt"

	"github.com/liquidpub/gelee/internal/core"
)

// ProposeChange pushes a new model version to a running instance.
// Per §IV.B: "If designers change a lifecycle model, they can request to
// propagate the change to running lifecycles. Upon receiving the
// request, lifecycle owners can accept or reject the change."
//
// The proposal is attached to the instance; nothing changes until the
// owner decides. A second proposal replaces an undecided first one (the
// designer iterated), which is recorded in history.
func (r *Runtime) ProposeChange(instID, proposer string, newModel *core.Model, note string) error {
	if newModel == nil {
		return fmt.Errorf("runtime: nil model proposed")
	}
	if err := newModel.Validate(); err != nil {
		return err
	}
	in, ok := r.lookup(instID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, instID)
	}
	in.mu.Lock()
	diff := core.DiffModels(in.model, newModel)
	replaced := in.pending != nil
	in.pending = &ChangeProposal{
		ProposedBy: proposer,
		ProposedAt: r.clock.Now(),
		Note:       note,
		NewModel:   newModel.Clone(),
		Summary:    diff.String(),
	}
	detail := diff.String()
	if replaced {
		detail += " (replaces an undecided proposal)"
	}
	ev := r.record(in, Event{Kind: EventChangeProposed, Actor: proposer, Detail: detail, Phase: in.current})
	if err := r.journalLocked(&JournalRecord{
		Op: RecPropose, Instance: instID,
		Proposer: proposer, ProposedAt: in.pending.ProposedAt, Note: note,
		Model: in.pending.NewModel, DiffSummary: in.pending.Summary,
		Events: []Event{ev},
	}); err != nil {
		in.mu.Unlock()
		return err
	}
	in.mu.Unlock()
	r.observe(instID, ev)
	return nil
}

// AcceptChange applies the pending proposal. landing names the phase the
// instance should end up in within the modified model; it may be empty
// when the current phase still exists there ("they can state in which
// phase the lifecycle instance should end up in the modified model").
//
// Migration is state migration only: the token is placed, no actions
// fire, no transitions are evaluated. If the landing phase is final the
// instance completes; if the instance was completed and lands on a
// non-final phase it re-opens.
func (r *Runtime) AcceptChange(instID, actor, landing string) (Snapshot, error) {
	var snap Snapshot
	err := r.acceptChange(instID, actor, landing, func(in *instance, _ []Event) {
		snap = in.snapshot()
	})
	return snap, err
}

// AcceptChangeSummary is AcceptChange in the copy-free result mode: the
// post-migration summary plus only the events this call appended.
func (r *Runtime) AcceptChangeSummary(instID, actor, landing string) (MoveResult, error) {
	var res MoveResult
	err := r.acceptChange(instID, actor, landing, func(in *instance, appended []Event) {
		res = MoveResult{Summary: in.summary(), Events: appended}
	})
	return res, err
}

// acceptChange is the shared migration entry point; project runs under
// the instance lock after a successful apply, with the appended events.
func (r *Runtime) acceptChange(instID, actor, landing string, project func(*instance, []Event)) error {
	in, ok := r.lookup(instID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, instID)
	}
	if !r.policy.CanDrive(actor, instID) {
		return fmt.Errorf("%w: %s may not migrate %s", ErrForbidden, actor, instID)
	}
	in.mu.Lock()
	evs, err := r.applyPendingLocked(in, actor, landing)
	if err != nil {
		in.mu.Unlock()
		return err
	}
	rec := &JournalRecord{Op: RecAccept, Instance: instID, Landing: landing, Events: evs}
	rec.mirrorState(in)
	if err := r.journalLocked(rec); err != nil {
		in.mu.Unlock()
		return err
	}
	project(in, evs)
	in.mu.Unlock()
	for _, ev := range evs {
		r.observe(instID, ev)
	}
	return nil
}

// applyPendingLocked applies the instance's pending proposal — the
// shared migration core of AcceptChange and SwitchModel. Callers hold
// in.mu. On error nothing is mutated. The returned events are recorded
// in history; callers deliver them to the observer after unlocking, in
// order.
func (r *Runtime) applyPendingLocked(in *instance, actor, landing string) ([]Event, error) {
	if in.pending == nil {
		return nil, fmt.Errorf("%w on %s", ErrNoPending, in.id)
	}
	newModel := in.pending.NewModel
	target := landing
	if target == "" {
		target = in.current
	}
	if target != "" {
		if _, ok := newModel.Phase(target); !ok {
			return nil, fmt.Errorf("%w: %q does not exist in the proposed model (current phase was removed — choose a landing phase)",
				ErrUnknownPhase, target)
		}
	}

	summary := in.pending.Summary
	in.model = newModel.Clone()
	in.mcache = buildModelCache(in.model)
	in.current = target
	in.pending = nil

	detail := summary
	if landing != "" {
		detail += fmt.Sprintf("; landed on %q", landing)
	}
	evs := []Event{r.record(in, Event{Kind: EventChangeApplied, Actor: actor, Phase: in.current, Detail: detail})}

	// Recompute completion from the landing position. Recorded after the
	// change-applied event so history seq order matches observer order
	// (and MoveResult.Events stays contiguous in seq order).
	wasCompleted := in.state == StateCompleted
	isFinal := false
	if target != "" {
		if p, ok := in.model.Phase(target); ok && p.Final {
			isFinal = true
		}
	}
	switch {
	case isFinal && !wasCompleted:
		in.state = StateCompleted
		in.completedAt = r.clock.Now()
		evs = append(evs, r.record(in, Event{Kind: EventCompleted, Actor: actor, Phase: target,
			Detail: "completed by migration"}))
	case !isFinal && wasCompleted:
		in.state = StateActive
		evs = append(evs, r.record(in, Event{Kind: EventReopened, Actor: actor, Phase: target,
			Detail: "re-opened by migration"}))
	}
	return evs, nil
}

// RejectChange discards the pending proposal; the instance keeps its
// current model (owners "can accept or reject the change").
func (r *Runtime) RejectChange(instID, actor, note string) error {
	in, ok := r.lookup(instID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, instID)
	}
	if !r.policy.CanDrive(actor, instID) {
		return fmt.Errorf("%w: %s may not decide for %s", ErrForbidden, actor, instID)
	}
	in.mu.Lock()
	if in.pending == nil {
		in.mu.Unlock()
		return fmt.Errorf("%w on %s", ErrNoPending, instID)
	}
	summary := in.pending.Summary
	in.pending = nil
	ev := r.record(in, Event{Kind: EventChangeRejected, Actor: actor, Phase: in.current,
		Detail: summary + noteSuffix(note)})
	if err := r.journalLocked(&JournalRecord{Op: RecReject, Instance: instID, Events: []Event{ev}}); err != nil {
		in.mu.Unlock()
		return err
	}
	in.mu.Unlock()
	r.observe(instID, ev)
	return nil
}

func noteSuffix(note string) string {
	if note == "" {
		return ""
	}
	return "; " + note
}

// SwitchModel replaces the instance's model directly — the owner-side
// freedom of §IV.B ("owners can change the lifecycle followed by a
// resource, in other words they can change the model associated to a
// lifecycle instance"), without any designer proposal. landing follows
// the same rules as AcceptChange.
func (r *Runtime) SwitchModel(instID, actor string, newModel *core.Model, landing string) (Snapshot, error) {
	var snap Snapshot
	err := r.switchModel(instID, actor, newModel, landing, func(in *instance, _ []Event) {
		snap = in.snapshot()
	})
	return snap, err
}

// SwitchModelSummary is SwitchModel in the copy-free result mode: the
// post-switch summary plus only the events this call appended.
func (r *Runtime) SwitchModelSummary(instID, actor string, newModel *core.Model, landing string) (MoveResult, error) {
	var res MoveResult
	err := r.switchModel(instID, actor, newModel, landing, func(in *instance, appended []Event) {
		res = MoveResult{Summary: in.summary(), Events: appended}
	})
	return res, err
}

// switchModel is the shared owner-switch core; project runs under the
// instance lock after a successful apply, with the appended events.
func (r *Runtime) switchModel(instID, actor string, newModel *core.Model, landing string, project func(*instance, []Event)) error {
	if newModel == nil {
		return fmt.Errorf("runtime: nil model")
	}
	if err := newModel.Validate(); err != nil {
		return err
	}
	in, ok := r.lookup(instID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, instID)
	}
	if !r.policy.CanDrive(actor, instID) {
		return fmt.Errorf("%w: %s may not switch the model of %s", ErrForbidden, actor, instID)
	}
	// Install-and-apply happens in one critical section so a failed or
	// raced switch can neither leave its proposal dangling for a later
	// AcceptChange nor desynchronize provenance from the model index.
	in.mu.Lock()
	prevPending := in.pending
	in.pending = &ChangeProposal{
		ProposedBy: actor,
		ProposedAt: r.clock.Now(),
		NewModel:   newModel.Clone(),
		Summary:    core.DiffModels(in.model, newModel).String(),
		Note:       "owner-initiated model switch",
	}
	evs, err := r.applyPendingLocked(in, actor, landing)
	if err != nil {
		in.pending = prevPending
		in.mu.Unlock()
		return err
	}
	// The switch applied: move the provenance pointer and keep the
	// model index in step (index stripes are taken under the instance
	// lock, per the package lock order).
	if old := in.modelURI; old != newModel.URI {
		in.modelURI = newModel.URI
		r.byModel.remove(old, in)
		r.byModel.add(newModel.URI, in)
	}
	rec := &JournalRecord{
		Op: RecSwitch, Instance: instID, Landing: landing,
		Proposer: actor, Model: in.model, ModelURI: in.modelURI,
		Events: evs,
	}
	rec.mirrorState(in)
	if err := r.journalLocked(rec); err != nil {
		in.mu.Unlock()
		return err
	}
	project(in, evs)
	in.mu.Unlock()
	for _, ev := range evs {
		r.observe(instID, ev)
	}
	return nil
}
