package runtime

import (
	"context"
	"fmt"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
)

// AdvanceOptions carries the optional inputs of a token move.
type AdvanceOptions struct {
	// Annotation explains the move; the paper singles annotations out as
	// the way owners justify not following the standard flow.
	Annotation string
	// CallBindings supplies call-stage parameter values per action URI
	// for the actions of the phase being entered.
	CallBindings map[string]map[string]string
}

// MoveResult is the copy-free result mode of the mutating verbs
// (AdvanceSummary, AcceptChangeSummary, SwitchModelSummary): the
// post-move summary plus only the events the call itself appended — no
// history deep copy, no execution slice, no model copy. EventsSince
// semantics: Events are contiguous and end at Summary.Events, so the
// first has Seq = Summary.Events - len(Events) + 1.
type MoveResult struct {
	Summary Summary `json:"summary"`
	Events  []Event `json:"events"`
}

// Advance moves the instance token to phase toPhase on behalf of actor
// and returns a full history snapshot. The HTTP tier prefers
// AdvanceSummary, which skips the history deep copy.
//
// Semantics follow §IV.B exactly:
//   - If the move follows a suggested transition from the token's
//     position, token owners and instance owners may perform it.
//   - Any other move is a *deviation*: legal (the model is descriptive,
//     "the lifecycle owner can at any time move the token to any
//     phase"), but reserved to instance owners and flagged in history.
//   - Entering a phase triggers its actions, all dispatched in parallel
//     with no ordering or transactional guarantee.
//   - Entering a final phase completes the instance; moving out of a
//     final phase re-opens it (recorded as a deviation + reopened).
//
// Only the moved instance's lock is held: concurrent Advances on
// different instances proceed fully in parallel.
func (r *Runtime) Advance(instID, toPhase, actor string, opts AdvanceOptions) (Snapshot, error) {
	var snap Snapshot
	err := r.advance(instID, toPhase, actor, opts, func(in *instance, _ []Event) {
		snap = in.snapshot()
	})
	return snap, err
}

// AdvanceSummary is Advance in the copy-free result mode: the post-move
// summary plus only the events this call appended.
func (r *Runtime) AdvanceSummary(instID, toPhase, actor string, opts AdvanceOptions) (MoveResult, error) {
	var res MoveResult
	err := r.advance(instID, toPhase, actor, opts, func(in *instance, appended []Event) {
		res = MoveResult{Summary: in.summary(), Events: appended}
	})
	return res, err
}

// advance is the shared token-move core. project runs under the
// instance lock after all mutation, with the events this call appended
// (in seq order, already value copies safe to retain).
func (r *Runtime) advance(instID, toPhase, actor string, opts AdvanceOptions, project func(*instance, []Event)) error {
	in, ok := r.lookup(instID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, instID)
	}
	in.mu.Lock()
	target, ok := in.model.Phase(toPhase)
	if !ok {
		in.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownPhase, toPhase)
	}

	from := in.current
	fromNode := from
	if fromNode == "" {
		fromNode = core.Begin
	}
	suggested := in.model.Suggests(fromNode, toPhase)
	if suggested {
		if !r.policy.CanFollow(actor, instID, toPhase) {
			in.mu.Unlock()
			return fmt.Errorf("%w: %s may not follow %s -> %s on %s",
				ErrForbidden, actor, fromNode, toPhase, instID)
		}
	} else if !r.policy.CanDrive(actor, instID) {
		in.mu.Unlock()
		return fmt.Errorf("%w: %s may not deviate to %s on %s (instance owner required)",
			ErrForbidden, actor, toPhase, instID)
	}

	// Validate call-stage bindings for the target phase's actions before
	// mutating anything.
	for _, call := range target.Actions {
		vals := opts.CallBindings[call.URI]
		if len(vals) == 0 {
			continue
		}
		if err := actionlib.CheckStageBindings(r.specFor(call.URI), call, vals, actionlib.StageCall); err != nil {
			in.mu.Unlock()
			return err
		}
	}

	// appended collects every event this call records, in seq order —
	// both the observer feed and the MoveResult projection.
	var appended []Event

	if in.state == StateCompleted {
		in.state = StateActive
		appended = append(appended, r.record(in, Event{Kind: EventReopened, Actor: actor, Phase: toPhase,
			Detail: "token moved out of a final phase"}))
	}

	// The deviation counter is maintained by the shared event applier
	// (applyRecorded) off the event's Deviation flag, so live mutation
	// and journal replay count identically.
	in.current = toPhase
	appended = append(appended, r.record(in, Event{
		Kind: EventPhaseEntered, Actor: actor,
		Phase: toPhase, FromPhase: from,
		Detail: opts.Annotation, Deviation: !suggested,
	}))

	var dispatches []dispatchItem
	if target.Final {
		in.state = StateCompleted
		in.completedAt = r.clock.Now()
		appended = append(appended, r.record(in, Event{Kind: EventCompleted, Actor: actor, Phase: toPhase}))
	} else {
		dispatches = r.prepareDispatches(in, target, opts.CallBindings)
		for _, d := range dispatches {
			appended = append(appended, d.startEv)
		}
	}

	rec := &JournalRecord{Op: RecAdvance, Instance: instID, To: toPhase, Events: appended}
	rec.mirrorState(in)
	for _, d := range dispatches {
		rec.Executions = append(rec.Executions, *in.executions[d.startEv.Invocation])
	}
	if err := r.journalLocked(rec); err != nil {
		// Fail-forward: the in-memory move stands, but the un-journaled
		// mutation is not observed and its actions are not dispatched.
		in.mu.Unlock()
		return err
	}
	project(in, appended)
	in.mu.Unlock()

	for _, ev := range appended {
		r.observe(instID, ev)
	}
	r.launch(instID, dispatches)
	return nil
}

// dispatchItem pairs a ready invocation with its start event; failed
// preparations carry err instead.
type dispatchItem struct {
	inv     actionlib.Invocation
	startEv Event
	prepErr error
}

// prepareDispatches resolves implementations and parameters for every
// action of the entered phase. Callers hold in.mu (the invocation
// index stripe is locked inside, per the package lock order).
// Preparation failures (no implementation, binding errors) become
// terminal failed executions immediately; successful preparations are
// launched by launch().
func (r *Runtime) prepareDispatches(in *instance, phase *core.Phase, callBindings map[string]map[string]string) []dispatchItem {
	var items []dispatchItem
	for _, call := range phase.Actions {
		invID := fmt.Sprintf("inv-%06d", r.nextInv.Add(1))
		exec := &ActionExecution{
			InvocationID: invID,
			ActionURI:    call.URI,
			ActionName:   call.Name,
			Phase:        phase.ID,
			StartedAt:    r.clock.Now(),
		}
		in.executions[invID] = exec
		in.execOrder = append(in.execOrder, invID)
		ish := r.invShardFor(invID)
		ish.mu.Lock()
		ish.m[invID] = in
		if r.cfg.InvocationRetention > 0 {
			r.sweepInvShardLocked(ish, r.clock.Now())
		}
		ish.mu.Unlock()

		impl, err := r.cfg.Registry.Resolve(call.URI, in.res.Type)
		var params map[string]string
		if err == nil {
			params, err = actionlib.ResolveParams(r.specFor(call.URI), call,
				in.instBindings[call.URI], callBindings[call.URI])
		}
		if err == nil && r.cfg.Invoker == nil {
			err = fmt.Errorf("runtime: no invoker configured")
		}
		if err != nil {
			exec.DispatchErr = err.Error()
			exec.Terminal = true
			exec.LastStatus = actionlib.StatusFailed
			exec.LastDetail = err.Error()
			in.failedSteps++
			r.invRetire(invID) // terminal from birth: GC clock starts now
			ev := r.record(in, Event{Kind: EventActionStatus, Phase: phase.ID,
				ActionURI: call.URI, Invocation: invID,
				Status: actionlib.StatusFailed, Detail: err.Error()})
			items = append(items, dispatchItem{startEv: ev, prepErr: err})
			continue
		}
		in.pendingInvs++

		callback := r.cfg.CallbackBase
		if callback == "" {
			callback = "callback:/" // local scheme for embedded use
		}
		inv := actionlib.Invocation{
			ID:           invID,
			TypeURI:      call.URI,
			ActionName:   call.Name,
			Endpoint:     impl.Endpoint,
			Protocol:     impl.Protocol,
			ResourceURI:  in.res.URI,
			ResourceType: in.res.Type,
			CallbackURI:  callback + "/" + invID,
			Params:       params,
			Credentials:  in.res.Credentials,
		}
		ev := r.record(in, Event{Kind: EventActionStarted, Phase: phase.ID,
			ActionURI: call.URI, Invocation: invID, Detail: call.Name})
		items = append(items, dispatchItem{inv: inv, startEv: ev})
	}
	return items
}

// launch hands prepared invocations to the invoker — in parallel
// goroutines by default ("all actions associated to a phase are executed
// in parallel and anyway in a non-deterministic order", §IV.A), inline
// when Config.SyncActions is set.
func (r *Runtime) launch(instID string, items []dispatchItem) {
	for _, d := range items {
		if d.prepErr != nil {
			continue
		}
		inv := d.inv
		if r.cfg.SyncActions {
			if err := r.invoke(inv); err != nil {
				r.failDispatch(instID, inv.ID, err)
			}
			continue
		}
		r.dispatch.Add(1)
		go func() {
			defer r.dispatch.Done()
			if err := r.invoke(inv); err != nil {
				r.failDispatch(instID, inv.ID, err)
			}
		}()
	}
}

// invoke runs one dispatch under the configured end-to-end deadline.
func (r *Runtime) invoke(inv actionlib.Invocation) error {
	ctx := context.Background()
	if r.cfg.DispatchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.DispatchTimeout)
		defer cancel()
	}
	return r.cfg.Invoker.Invoke(ctx, inv)
}

// failDispatch marks an invocation failed when the invoker itself
// errored (endpoint unreachable, etc.).
func (r *Runtime) failDispatch(instID, invID string, err error) {
	in, ok := r.lookup(instID)
	if !ok {
		return
	}
	in.mu.Lock()
	exec, ok := in.executions[invID]
	if !ok || exec.Terminal {
		in.mu.Unlock()
		return
	}
	exec.DispatchErr = err.Error()
	exec.Terminal = true
	exec.LastStatus = actionlib.StatusFailed
	exec.LastDetail = err.Error()
	in.pendingInvs--
	in.failedSteps++
	ev := r.record(in, Event{Kind: EventActionStatus, Phase: exec.Phase,
		ActionURI: exec.ActionURI, Invocation: invID,
		Status: actionlib.StatusFailed, Detail: err.Error()})
	jerr := r.journalLocked(&JournalRecord{
		Op: RecDispatchFail, Instance: instID, Invocation: invID,
		Detail: err.Error(), Events: []Event{ev},
	})
	in.mu.Unlock()
	// The execution is terminal in memory either way, so its index
	// entry must start its GC grace window even when the journal append
	// failed (fail-forward suppresses only observer delivery).
	r.invRetire(invID)
	if jerr != nil {
		return
	}
	r.observe(instID, ev)
}

// Report delivers a status message from an action implementation — the
// callback URI path of §IV.C. Status strings are free-form except the
// reserved terminal pair; they are recorded, never interpreted.
// Updates for already-terminal executions are ignored (late duplicate
// callbacks are expected in a distributed setting). Routing goes
// through the sharded invocation index straight to the owning
// instance: no scan, no other instance's lock.
func (r *Runtime) Report(up actionlib.StatusUpdate) error {
	ish := r.invShardFor(up.InvocationID)
	ish.mu.RLock()
	in, ok := ish.m[up.InvocationID]
	ish.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: invocation %s", ErrNotFound, up.InvocationID)
	}
	in.mu.Lock()
	exec := in.executions[up.InvocationID]
	if exec.Terminal {
		in.mu.Unlock()
		return nil
	}
	exec.LastStatus = up.Message
	exec.LastDetail = up.Detail
	exec.Updates++
	if up.Terminal() {
		exec.Terminal = true
		in.pendingInvs--
		if up.Message == actionlib.StatusFailed {
			in.failedSteps++
		}
	}
	ev := r.record(in, Event{Kind: EventActionStatus, Phase: exec.Phase,
		ActionURI: exec.ActionURI, Invocation: up.InvocationID,
		Status: up.Message, Detail: up.Detail})
	instID := in.id
	jerr := r.journalLocked(&JournalRecord{
		Op: RecReport, Instance: instID, Invocation: up.InvocationID,
		Status: up.Message, Detail: up.Detail, Terminal: up.Terminal(),
		Events: []Event{ev},
	})
	in.mu.Unlock()
	if up.Terminal() {
		// Terminal in memory even on a journal error: the index entry's
		// GC grace window starts now regardless (fail-forward suppresses
		// only observer delivery).
		r.invRetire(up.InvocationID)
	}
	if jerr != nil {
		return jerr
	}
	r.observe(instID, ev)
	return nil
}
