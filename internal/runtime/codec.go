package runtime

// The journal-record codec. Encoding rides the write path of every
// persisted mutation, under the instance lock, so it is hand-rolled
// for the hot record shapes: a token move's record costs more to
// marshal through encoding/json reflection than the move itself costs
// to apply. Records carrying the rare deep payloads — a model, a
// resource ref, binding maps — fall back to json.Marshal; they occur
// once per instance (instantiate) or per human decision (propose,
// switch, bind), not per move. Decoding is always encoding/json
// (ApplyJournal), and TestCodecEquivalence pins that the fast encoder
// and the reflection encoder decode to identical records.

import (
	"encoding/json"
	"strconv"

	"github.com/liquidpub/gelee/internal/jsonenc"
)

// Encode renders the record as the JSON document ApplyJournal decodes.
func (rec *JournalRecord) Encode() ([]byte, error) {
	if rec.Model != nil || rec.Resource != nil || rec.Bindings != nil || rec.Unresolved != nil {
		return json.Marshal(rec)
	}
	buf := make([]byte, 0, 192+64*len(rec.Events)+160*len(rec.Executions))
	buf = append(buf, `{"op":`...)
	buf = jsonenc.AppendString(buf, string(rec.Op))
	buf = append(buf, `,"instance":`...)
	buf = jsonenc.AppendString(buf, rec.Instance)
	if len(rec.Events) > 0 {
		buf = append(buf, `,"events":[`...)
		for i := range rec.Events {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendEvent(buf, &rec.Events[i])
		}
		buf = append(buf, ']')
	}
	if rec.Seq != 0 {
		buf = append(buf, `,"seq":`...)
		buf = strconv.AppendInt(buf, rec.Seq, 10)
	}
	if rec.Owner != "" {
		buf = append(buf, `,"owner":`...)
		buf = jsonenc.AppendString(buf, rec.Owner)
	}
	if !rec.CreatedAt.IsZero() {
		buf = append(buf, `,"created_at":`...)
		buf = jsonenc.AppendTime(buf, rec.CreatedAt)
	}
	if rec.To != "" {
		buf = append(buf, `,"to":`...)
		buf = jsonenc.AppendString(buf, rec.To)
	}
	if len(rec.Executions) > 0 {
		buf = append(buf, `,"executions":[`...)
		for i := range rec.Executions {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendExecution(buf, &rec.Executions[i])
		}
		buf = append(buf, ']')
	}
	if rec.Invocation != "" {
		buf = append(buf, `,"invocation":`...)
		buf = jsonenc.AppendString(buf, rec.Invocation)
	}
	if rec.Status != "" {
		buf = append(buf, `,"status":`...)
		buf = jsonenc.AppendString(buf, rec.Status)
	}
	if rec.Detail != "" {
		buf = append(buf, `,"detail":`...)
		buf = jsonenc.AppendString(buf, rec.Detail)
	}
	if rec.Terminal {
		buf = append(buf, `,"terminal":true`...)
	}
	if rec.Proposer != "" {
		buf = append(buf, `,"proposer":`...)
		buf = jsonenc.AppendString(buf, rec.Proposer)
	}
	if !rec.ProposedAt.IsZero() {
		buf = append(buf, `,"proposed_at":`...)
		buf = jsonenc.AppendTime(buf, rec.ProposedAt)
	}
	if rec.Note != "" {
		buf = append(buf, `,"note":`...)
		buf = jsonenc.AppendString(buf, rec.Note)
	}
	if rec.DiffSummary != "" {
		buf = append(buf, `,"diff_summary":`...)
		buf = jsonenc.AppendString(buf, rec.DiffSummary)
	}
	if rec.Landing != "" {
		buf = append(buf, `,"landing":`...)
		buf = jsonenc.AppendString(buf, rec.Landing)
	}
	if rec.State != "" {
		buf = append(buf, `,"state":`...)
		buf = jsonenc.AppendString(buf, string(rec.State))
	}
	if rec.Current != "" {
		buf = append(buf, `,"current":`...)
		buf = jsonenc.AppendString(buf, rec.Current)
	}
	if !rec.CompletedAt.IsZero() {
		buf = append(buf, `,"completed_at":`...)
		buf = jsonenc.AppendTime(buf, rec.CompletedAt)
	}
	if rec.ModelURI != "" {
		buf = append(buf, `,"model_uri":`...)
		buf = jsonenc.AppendString(buf, rec.ModelURI)
	}
	return append(buf, '}'), nil
}

// AppendJSON appends the event's JSON document — the same output
// encoding/json would produce, at codec speed. The facade uses it to
// mirror events into the execution log without paying the reflection
// marshal on every mutation.
func (ev *Event) AppendJSON(buf []byte) []byte {
	return appendEvent(buf, ev)
}

// appendEvent encodes one Event matching its json tags (Seq and Time
// are unconditional, everything else omitempty).
func appendEvent(buf []byte, ev *Event) []byte {
	buf = append(buf, `{"seq":`...)
	buf = strconv.AppendInt(buf, int64(ev.Seq), 10)
	buf = append(buf, `,"time":`...)
	buf = jsonenc.AppendTime(buf, ev.Time)
	buf = append(buf, `,"kind":`...)
	buf = jsonenc.AppendString(buf, string(ev.Kind))
	if ev.Actor != "" {
		buf = append(buf, `,"actor":`...)
		buf = jsonenc.AppendString(buf, ev.Actor)
	}
	if ev.Phase != "" {
		buf = append(buf, `,"phase":`...)
		buf = jsonenc.AppendString(buf, ev.Phase)
	}
	if ev.FromPhase != "" {
		buf = append(buf, `,"from_phase":`...)
		buf = jsonenc.AppendString(buf, ev.FromPhase)
	}
	if ev.Detail != "" {
		buf = append(buf, `,"detail":`...)
		buf = jsonenc.AppendString(buf, ev.Detail)
	}
	if ev.Deviation {
		buf = append(buf, `,"deviation":true`...)
	}
	if ev.ActionURI != "" {
		buf = append(buf, `,"action_uri":`...)
		buf = jsonenc.AppendString(buf, ev.ActionURI)
	}
	if ev.Invocation != "" {
		buf = append(buf, `,"invocation":`...)
		buf = jsonenc.AppendString(buf, ev.Invocation)
	}
	if ev.Status != "" {
		buf = append(buf, `,"status":`...)
		buf = jsonenc.AppendString(buf, ev.Status)
	}
	return append(buf, '}')
}

// appendExecution encodes one ActionExecution matching its json tags.
func appendExecution(buf []byte, ex *ActionExecution) []byte {
	buf = append(buf, `{"invocation_id":`...)
	buf = jsonenc.AppendString(buf, ex.InvocationID)
	buf = append(buf, `,"action_uri":`...)
	buf = jsonenc.AppendString(buf, ex.ActionURI)
	buf = append(buf, `,"action_name":`...)
	buf = jsonenc.AppendString(buf, ex.ActionName)
	buf = append(buf, `,"phase":`...)
	buf = jsonenc.AppendString(buf, ex.Phase)
	buf = append(buf, `,"started_at":`...)
	buf = jsonenc.AppendTime(buf, ex.StartedAt)
	if ex.LastStatus != "" {
		buf = append(buf, `,"last_status":`...)
		buf = jsonenc.AppendString(buf, ex.LastStatus)
	}
	if ex.LastDetail != "" {
		buf = append(buf, `,"last_detail":`...)
		buf = jsonenc.AppendString(buf, ex.LastDetail)
	}
	buf = append(buf, `,"terminal":`...)
	buf = strconv.AppendBool(buf, ex.Terminal)
	buf = append(buf, `,"updates":`...)
	buf = strconv.AppendInt(buf, int64(ex.Updates), 10)
	if ex.DispatchErr != "" {
		buf = append(buf, `,"dispatch_err":`...)
		buf = jsonenc.AppendString(buf, ex.DispatchErr)
	}
	return append(buf, '}')
}
