package runtime

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
	"github.com/liquidpub/gelee/internal/vclock"
)

// captureSink is an in-memory Journal: it keeps every record's encoded
// form in emit order, which for one instance is mutation order.
type captureSink struct {
	mu   sync.Mutex
	recs []capturedRec
	err  error // when set, Record fails
}

type capturedRec struct {
	id   string
	data []byte
}

func (s *captureSink) Record(rec *JournalRecord) error {
	data, err := rec.Encode()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.recs = append(s.recs, capturedRec{id: rec.Instance, data: data})
	return nil
}

// replayInto feeds every captured record into a fresh runtime and
// finishes the recovery.
func (s *captureSink) replayInto(t testing.TB, rt *Runtime) RecoveryStats {
	t.Helper()
	s.mu.Lock()
	recs := append([]capturedRec(nil), s.recs...)
	s.mu.Unlock()
	for _, r := range recs {
		if err := rt.ApplyJournal(r.id, r.data); err != nil {
			t.Fatalf("replay: %v", err)
		}
	}
	return rt.FinishRecovery()
}

// persistEnv is the journaling twin of env.
type persistEnv struct {
	env
	sink *captureSink
}

func newPersistEnv(t testing.TB) *persistEnv {
	t.Helper()
	sink := &captureSink{}
	inv := &recordingInvoker{status: actionlib.StatusCompleted}
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	rt, err := New(Config{
		Registry:    testActions(t),
		Invoker:     inv,
		Clock:       clock,
		SyncActions: true,
		Journal:     sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	inv.rt = rt
	return &persistEnv{env: env{rt: rt, inv: inv, clock: clock}, sink: sink}
}

// recover builds a fresh runtime with the same config shape (optionally
// customized) and replays the captured journal into it.
func (e *persistEnv) recover(t testing.TB, mutate func(*Config)) *Runtime {
	t.Helper()
	cfg := Config{
		Registry:    testActions(t),
		Invoker:     e.inv,
		Clock:       e.clock,
		SyncActions: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.sink.replayInto(t, rt2)
	return rt2
}

// mustJSON marshals for deep comparison; Snapshot keeps its model out
// of JSON, so models are compared separately by fingerprint.
func mustJSON(t testing.TB, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// assertSameState compares the full observable state of two runtimes:
// snapshots (histories, executions, pending changes, bindings), model
// fingerprints, summaries and index-backed queries.
func assertSameState(t testing.TB, want, got *Runtime) {
	t.Helper()
	ws, gs := want.Instances(), got.Instances()
	if len(ws) != len(gs) {
		t.Fatalf("population: %d vs %d", len(ws), len(gs))
	}
	for i := range ws {
		if w, g := mustJSON(t, ws[i]), mustJSON(t, gs[i]); w != g {
			t.Fatalf("snapshot %s diverged after replay:\nlive      %s\nrecovered %s", ws[i].ID, w, g)
		}
		if ws[i].Model.Fingerprint() != gs[i].Model.Fingerprint() {
			t.Fatalf("model of %s diverged after replay", ws[i].ID)
		}
		if w, g := mustJSON(t, ws[i].Model), mustJSON(t, gs[i].Model); w != g {
			t.Fatalf("model JSON of %s diverged", ws[i].ID)
		}
	}
	if w, g := mustJSON(t, want.Summaries()), mustJSON(t, got.Summaries()); w != g {
		t.Fatalf("summaries diverged:\nlive      %s\nrecovered %s", w, g)
	}
	// Index parity: every resource and model URI answers identically.
	seen := map[string]bool{}
	for _, s := range ws {
		if !seen["r"+s.Resource.URI] {
			seen["r"+s.Resource.URI] = true
			if w, g := mustJSON(t, want.ByResource(s.Resource.URI)), mustJSON(t, got.ByResource(s.Resource.URI)); w != g {
				t.Fatalf("ByResource(%s) diverged", s.Resource.URI)
			}
		}
		if !seen["m"+s.ModelURI] {
			seen["m"+s.ModelURI] = true
			if w, g := mustJSON(t, want.ByModelURI(s.ModelURI)), mustJSON(t, got.ByModelURI(s.ModelURI)); w != g {
				t.Fatalf("ByModelURI(%s) diverged", s.ModelURI)
			}
		}
	}
	wst, gst := want.RuntimeStats(), got.RuntimeStats()
	if wst.Instances != gst.Instances || wst.Invocations != gst.Invocations ||
		wst.ResourceKeys != gst.ResourceKeys || wst.ModelKeys != gst.ModelKeys ||
		wst.EventsInMemory != gst.EventsInMemory || wst.EventsTruncated != gst.EventsTruncated {
		t.Fatalf("stats diverged:\nlive      %+v\nrecovered %+v", wst, gst)
	}
}

// TestReplayRebuildsEveryMutationKind drives every mutating verb and
// expects a journal replay to rebuild byte-identical observable state:
// token positions, histories, executions, pending changes, counters,
// indexes.
func TestReplayRebuildsEveryMutationKind(t *testing.T) {
	e := newPersistEnv(t)
	owner := "owner"

	// Instance A: full happy path with actions, annotations, bindings.
	a := e.instantiate(t)
	if err := e.rt.BindParams(a.ID, owner, "http://www.liquidpub.org/a/chr", map[string]string{"mode": "open"}); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"elaboration", "internalreview", "finalassembly"} {
		if _, err := e.rt.Advance(a.ID, phase, owner, AdvanceOptions{Annotation: "to " + phase}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.rt.Annotate(a.ID, owner, "waiting on partner"); err != nil {
		t.Fatal(err)
	}

	// Instance B: deviation, completion, reopening.
	b := e.instantiate(t)
	if _, err := e.rt.Advance(b.ID, "publication", owner, AdvanceOptions{
		Annotation:   "deadline deviation",
		CallBindings: map[string]map[string]string{"http://www.liquidpub.org/a/post": {"site": "example.org"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rt.Advance(b.ID, "accepted", owner, AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rt.Advance(b.ID, "elaboration", owner, AdvanceOptions{Annotation: "reopen"}); err != nil {
		t.Fatal(err)
	}

	// Instance C: pending proposal left undecided.
	c := e.instantiate(t)
	v2 := fig1(t)
	v2.Phases = append(v2.Phases, &core.Phase{ID: "archival", Name: "Archival"})
	if err := e.rt.ProposeChange(c.ID, "designer", v2, "v2 with archival"); err != nil {
		t.Fatal(err)
	}

	// Instance D: proposal accepted with a landing, then a second
	// proposal rejected, then an owner-initiated model switch.
	d := e.instantiate(t)
	if _, err := e.rt.Advance(d.ID, "elaboration", owner, AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := e.rt.ProposeChange(d.ID, "designer", v2, "v2"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rt.AcceptChange(d.ID, owner, "archival"); err != nil {
		t.Fatal(err)
	}
	if err := e.rt.ProposeChange(d.ID, "designer", fig1(t), "back to v1"); err != nil {
		t.Fatal(err)
	}
	if err := e.rt.RejectChange(d.ID, owner, "not now"); err != nil {
		t.Fatal(err)
	}
	other, err := core.NewModel("urn:gelee:models:other", "Other lifecycle").
		Phase("draft", "Draft").
		FinalPhase("done", "Done").
		Initial("draft").Transition("draft", "done").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.rt.SwitchModel(d.ID, owner, other, "draft"); err != nil {
		t.Fatal(err)
	}

	rt2 := e.recover(t, nil)
	assertSameState(t, e.rt, rt2)

	// Pending proposal survives and is decidable after recovery.
	if snap, _ := rt2.Instance(c.ID); snap.Pending == nil {
		t.Fatal("pending proposal lost in replay")
	}
	if _, err := rt2.AcceptChange(c.ID, owner, ""); err != nil {
		t.Fatal(err)
	}

	// Fresh ids after recovery never collide with replayed ones.
	fresh, err := rt2.Instantiate(fig1(t), wikiRef(), owner, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Snapshot{a, b, c, d} {
		if fresh.ID == s.ID {
			t.Fatalf("recovered runtime reissued id %s", fresh.ID)
		}
	}
	if _, err := rt2.Advance(fresh.ID, "elaboration", owner, AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestReplayGaplessSeqsAndPhaseStats checks per-instance event seqs
// survive replay gapless and the incremental phase stats rebuild.
func TestReplayGaplessSeqsAndPhaseStats(t *testing.T) {
	e := newPersistEnv(t)
	snap := e.instantiate(t)
	e.rt.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{})
	e.clock.Advance(48 * time.Hour)
	e.rt.Advance(snap.ID, "internalreview", "owner", AdvanceOptions{})
	e.clock.Advance(24 * time.Hour)
	e.rt.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{})
	e.clock.Advance(12 * time.Hour)

	rt2 := e.recover(t, nil)
	page, ok := rt2.Events(snap.ID, 0, 0)
	if !ok {
		t.Fatal("instance missing after replay")
	}
	for i, ev := range page.Events {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d (gap)", i, ev.Seq)
		}
	}
	now := e.clock.Now()
	want, _ := e.rt.PhaseStats(snap.ID, now)
	got, ok := rt2.PhaseStats(snap.ID, now)
	if !ok || !reflect.DeepEqual(want, got) {
		t.Fatalf("phase stats diverged: live %v recovered %v", want, got)
	}
	if got["elaboration"].Entered != 2 || got["elaboration"].Residence != 60*time.Hour {
		t.Fatalf("elaboration stats = %+v", got["elaboration"])
	}
	if got["internalreview"].Entered != 1 || got["internalreview"].Residence != 24*time.Hour {
		t.Fatalf("internalreview stats = %+v", got["internalreview"])
	}
}

// TestReplayPendingInvocationRoutable: an invocation that was still
// in flight at the crash is routable after recovery — its callback
// lands on the recovered instance and completes it.
func TestReplayPendingInvocationRoutable(t *testing.T) {
	sink := &captureSink{}
	swallow := InvokerFunc(func(context.Context, actionlib.Invocation) error { return nil }) // dispatch succeeds, never reports
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	rt, err := New(Config{Registry: testActions(t), Invoker: swallow, Clock: clock, SyncActions: true, Journal: sink})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := rt.Instantiate(fig1(t), wikiRef(), "owner",
		map[string]map[string]string{"http://www.liquidpub.org/a/notify": {"reviewers": "alice"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Advance(snap.ID, "internalreview", "owner", AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := rt.InFlight(snap.ID); got != 2 {
		t.Fatalf("in flight = %d, want 2", got)
	}
	live, _ := rt.Instance(snap.ID)

	rt2, err := New(Config{Registry: testActions(t), Invoker: swallow, Clock: clock, SyncActions: true})
	if err != nil {
		t.Fatal(err)
	}
	sink.replayInto(t, rt2)
	if got := rt2.InFlight(snap.ID); got != 2 {
		t.Fatalf("recovered in flight = %d, want 2", got)
	}
	sum, _ := rt2.Summary(snap.ID)
	if sum.PendingInvocations != 2 {
		t.Fatalf("recovered pending counter = %d, want 2", sum.PendingInvocations)
	}
	// The late callback routes through the rebuilt invocation index.
	for _, ex := range live.Executions {
		if err := rt2.Report(actionlib.StatusUpdate{InvocationID: ex.InvocationID, Message: actionlib.StatusCompleted}); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt2.InFlight(snap.ID); got != 0 {
		t.Fatalf("in flight after callbacks = %d", got)
	}
}

// TestReplayDispatchFailure: a failed dispatch is journaled and the
// failed-step counter rebuilds.
func TestReplayDispatchFailure(t *testing.T) {
	e := newPersistEnv(t)
	e.inv.fail = map[string]bool{"http://www.liquidpub.org/a/pdf": true}
	snap := e.instantiate(t)
	if _, err := e.rt.Advance(snap.ID, "finalassembly", "owner", AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	e.rt.WaitDispatch()
	rt2 := e.recover(t, nil)
	assertSameState(t, e.rt, rt2)
	sum, _ := rt2.Summary(snap.ID)
	if sum.FailedSteps != 1 {
		t.Fatalf("recovered failed steps = %d, want 1", sum.FailedSteps)
	}
}

// TestReplayWithRingTruncation: the recovered runtime applies its own
// MaxEventsInMemory while replaying, and the counters still match the
// live runtime's (truncation never changes aggregates).
func TestReplayWithRingTruncation(t *testing.T) {
	sink := &captureSink{}
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	mk := func(j Journal) *Runtime {
		rt, err := New(Config{Registry: testActions(t), Clock: clock, SyncActions: true,
			MaxEventsInMemory: 16, Journal: j,
			Invoker: InvokerFunc(func(context.Context, actionlib.Invocation) error { return nil })})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	rt := mk(sink)
	snap, err := rt.Instantiate(fig1(t), wikiRef(), "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	rt.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{})
	for i := 0; i < 60; i++ {
		if err := rt.Annotate(snap.ID, "owner", fmt.Sprintf("note %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	rt2 := mk(nil)
	sink.replayInto(t, rt2)
	assertSameState(t, rt, rt2)
	want, _ := rt.Events(snap.ID, 0, 0)
	got, ok := rt2.Events(snap.ID, 0, 0)
	if !ok {
		t.Fatal("instance missing")
	}
	if want.Total != got.Total || want.OldestSeq != got.OldestSeq || len(want.Events) != len(got.Events) {
		t.Fatalf("pages diverged: live %+v recovered %+v", want, got)
	}
	if got.OldestSeq <= 1 {
		t.Fatal("test did not exercise truncation")
	}
}

// TestJournalFailureSemantics: a failing sink aborts Instantiate
// cleanly and fail-forwards everything else, counting the errors.
func TestJournalFailureSemantics(t *testing.T) {
	e := newPersistEnv(t)
	snap := e.instantiate(t)
	e.sink.err = errors.New("disk gone")
	if _, err := e.rt.Instantiate(fig1(t), wikiRef(), "owner", nil); err == nil {
		t.Fatal("instantiate with dead journal succeeded")
	}
	if got := e.rt.Count(); got != 1 {
		t.Fatalf("population after aborted instantiate = %d, want 1", got)
	}
	if _, err := e.rt.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{}); err == nil {
		t.Fatal("advance with dead journal reported success")
	}
	// Fail-forward: memory kept the move.
	sum, _ := e.rt.Summary(snap.ID)
	if sum.Current != "elaboration" {
		t.Fatalf("fail-forward position = %q", sum.Current)
	}
	st := e.rt.RuntimeStats().Persistence
	if !st.Enabled || st.RecordErrors < 2 {
		t.Fatalf("persistence stats = %+v", st)
	}
}

// TestCodecEquivalence pins the hand-rolled record encoder against
// encoding/json for every record shape: both must decode to the same
// record.
func TestCodecEquivalence(t *testing.T) {
	now := time.Date(2026, 7, 29, 10, 0, 0, 123456789, time.UTC)
	model := fig1(t)
	ref := wikiRef()
	recs := []*JournalRecord{
		{Op: RecInstantiate, Instance: "li-000001", Seq: 1, Model: model, ModelURI: model.URI,
			Resource: &ref, Owner: "owner", CreatedAt: now,
			Unresolved: []string{"urn:a"}, Bindings: map[string]map[string]string{"urn:a": {"k": "v"}},
			Events: []Event{{Seq: 1, Time: now, Kind: EventCreated, Actor: "owner", Detail: `model "q" on x`}}},
		{Op: RecAdvance, Instance: "li-000001", To: "elaboration",
			Events: []Event{
				{Seq: 2, Time: now, Kind: EventReopened, Actor: "o", Phase: "elaboration"},
				{Seq: 3, Time: now, Kind: EventPhaseEntered, Actor: "o", Phase: "elaboration", FromPhase: "accepted", Deviation: true, Detail: "note\nline"},
				{Seq: 4, Time: now, Kind: EventActionStarted, Phase: "elaboration", ActionURI: "urn:a", Invocation: "inv-000007", Detail: "Do"},
			},
			Executions: []ActionExecution{
				{InvocationID: "inv-000007", ActionURI: "urn:a", ActionName: "Do", Phase: "elaboration", StartedAt: now},
				{InvocationID: "inv-000008", ActionURI: "urn:b", ActionName: "B", Phase: "elaboration", StartedAt: now,
					Terminal: true, LastStatus: "failed", LastDetail: "no impl", DispatchErr: "no impl", Updates: 0},
			},
			State: StateActive, Current: "elaboration"},
		{Op: RecAnnotate, Instance: "li-000002",
			Events: []Event{{Seq: 9, Time: now, Kind: EventAnnotated, Actor: "o", Detail: "unicode — 東京 \t"}}},
		{Op: RecBind, Instance: "li-000002", Bindings: map[string]map[string]string{"urn:a": {"mode": "open"}}},
		{Op: RecReport, Instance: "li-000001", Invocation: "inv-000007", Status: "completed", Detail: "ok", Terminal: true,
			Events: []Event{{Seq: 5, Time: now, Kind: EventActionStatus, Invocation: "inv-000007", Status: "completed"}}},
		{Op: RecDispatchFail, Instance: "li-000001", Invocation: "inv-000009", Detail: "unreachable",
			Events: []Event{{Seq: 6, Time: now, Kind: EventActionStatus, Status: "failed"}}},
		{Op: RecPropose, Instance: "li-000003", Proposer: "designer", ProposedAt: now, Note: "v2", Model: model, DiffSummary: "+archival",
			Events: []Event{{Seq: 2, Time: now, Kind: EventChangeProposed}}},
		{Op: RecAccept, Instance: "li-000003", Landing: "archival", State: StateCompleted, Current: "archival", CompletedAt: now,
			Events: []Event{{Seq: 3, Time: now, Kind: EventChangeApplied}, {Seq: 4, Time: now, Kind: EventCompleted}}},
		{Op: RecReject, Instance: "li-000003",
			Events: []Event{{Seq: 5, Time: now, Kind: EventChangeRejected, Detail: "no"}}},
		{Op: RecSwitch, Instance: "li-000004", Landing: "draft", Proposer: "o", Model: model, ModelURI: "urn:other",
			State: StateActive, Current: "draft",
			Events: []Event{{Seq: 7, Time: now, Kind: EventChangeApplied}}},
	}
	for _, rec := range recs {
		fast, err := rec.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", rec.Op, err)
		}
		std, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		var fromFast, fromStd JournalRecord
		if err := json.Unmarshal(fast, &fromFast); err != nil {
			t.Fatalf("%s: decode fast %s: %v", rec.Op, fast, err)
		}
		if err := json.Unmarshal(std, &fromStd); err != nil {
			t.Fatal(err)
		}
		if f, s := mustJSON(t, fromFast), mustJSON(t, fromStd); f != s {
			t.Fatalf("%s: codec divergence:\nfast %s\nstd  %s", rec.Op, f, s)
		}
	}
}
