// Package runtime implements the run-time module of the Gelee lifecycle
// manager (§IV.B, §IV.C and Fig. 2): lifecycle instances, human-driven
// token movement, action dispatch on phase entry, callback handling, and
// light-coupled model-change propagation.
//
// There is deliberately no workflow engine here. "The engine is the
// human, who executes the lifecycle instances (i.e., moves the tokens
// from phase to phase) and, while doing so, initiates the execution of
// actions." The runtime only reacts to externally driven events; it
// never decides a transition on its own.
//
// # Concurrency and locking model
//
// The runtime is built for many independent humans advancing many
// independent instances at once, so there is no runtime-wide lock.
// State is split across three kinds of locks:
//
//   - Shard locks. The instance table is hash-partitioned (instance id
//     → shard via the shared FNV-1a in internal/shardkey) into
//     Config.Shards stripes. A shard's RWMutex guards only map
//     membership — looking up or inserting an *instance pointer. It is
//     never held across a mutation or a snapshot copy, and instances
//     are never removed, so a pointer obtained under a shard read-lock
//     stays valid forever.
//
//   - Instance locks. Every instance carries its own mutex guarding
//     all of its mutable state (token position, state, model, event
//     history, executions, bindings, pending proposal). All mutation
//     and all snapshot deep-copies happen under this lock only, so
//     Advance/Annotate/Report on different instances share no lock at
//     all.
//
//   - Index locks. Secondary indexes — resource URI → instances,
//     model URI → instances, invocation id → instance — are themselves
//     striped with their own RWMutexes, so ByResource/ByModelURI and
//     callback routing are O(matches), not O(all instances).
//
// Lock order: an instance lock may be acquired while holding no other
// lock, and index locks may be acquired while holding an instance
// lock. Shard and index locks are leaves with respect to each other —
// no code path holds two of them at once except the read-only Stats
// walk, and none acquires an instance lock while holding a shard lock.
// Monotonic counters (instance ids, invocation ids) are atomics.
//
// Events observed via Config.Observer are delivered outside every
// lock; per-instance event order is defined by the Seq stamped under
// the instance lock, which is gapless and strictly increasing.
//
// # Read path: what is O(1), what still copies
//
// Every mutation maintains per-instance counters (deviations, failed
// steps, pending invocations, total events) under the instance lock, so
// the cheap projections never rescan history:
//
//   - Summary / Summaries: O(phases) per instance — counters, token
//     position and the current phase's resolved due date, with no event
//     slice, no execution slice and no model copy. The monitoring
//     cockpit's Overview/Late/Summarize run entirely on summaries.
//   - MoveResult (AdvanceSummary, AcceptChangeSummary,
//     SwitchModelSummary): the post-move summary plus only the events
//     that call appended — the copy-free response mode of the HTTP tier.
//   - Events: a paged window of one instance's history, copying only
//     the requested page.
//   - Count / RuntimeStats: shard-membership reads only.
//
// Snapshot / Instances still deep-copy the full event and execution
// history plus bindings; they remain the right call for audit views and
// tests, not for per-request or per-population hot paths.
//
// # Population index
//
// Every population listing — Summaries, SummariesPage, QuerySummaries,
// ForEachSummary, Instances, the monitor's cockpit rebuild — is served
// from an incrementally maintained ordered index instead of a
// copy-and-sort scan. Each shard keeps a slice of its instance
// pointers sorted by creation seq, guarded by the same shard
// membership lock as the map and updated at the three publication
// sites: Instantiate, instantiate replay and snapshot replay (so a
// restart rebuilds the index as a side effect of replay, with no
// separate pass). Instances are never removed, so the index only
// grows. Reads seek each shard's slice to the cursor with a binary
// search and k-way merge the per-shard runs by seq: a page costs
// O(shards·(log N/shards + page)) and streaming walks touch one batch
// of pointers at a time — the full population is never materialized or
// re-sorted per call. Because the creation seq is allocated before
// publication, concurrent Instantiates may publish out of order;
// inserts handle that with a from-the-tail binary search (the in-order
// common case stays an amortized O(1) append) and the admin stats
// count the out-of-order shuffles. Filtered queries (Filter) push
// resource/model URIs down to the secondary indexes and evaluate
// state/lateness on the incrementally maintained summary counters.
// See popindex.go.
//
// # History truncation
//
// Histories grow without bound by default. Setting
// Config.MaxEventsInMemory ring-truncates each instance's in-memory
// history: once it exceeds the cap by 25% the oldest events are
// dropped back down to the cap (amortizing the copy), so an instance
// retains between MaxEventsInMemory and 1.25×MaxEventsInMemory events.
// Seq numbering stays gapless — Events reports the oldest retained seq
// and flags reads that begin before it — and because aggregates come
// from the incremental counters, truncation never changes a Summary or
// a cockpit aggregate. The journaled execution log keeps full history
// (the facade backfills truncated timeline pages from it).
//
// # Durability model
//
// Instances live in RAM. Wiring Config.Journal makes them durable:
// every mutating verb — Instantiate, Advance, Annotate, BindParams,
// Report, a failed dispatch, ProposeChange, Accept/RejectChange,
// SwitchModel — emits exactly one typed JournalRecord through the sink
// before the mutation is acknowledged to the caller.
//
// What is journaled: the record carries the mutation's identity, the
// events it appended (already stamped with their gapless Seq and
// Time), and whatever replay cannot re-derive — the created
// executions of an Advance, the proposed model of a change, the
// post-move token-state mirrors (State/Current/CompletedAt). Policy
// decisions, action dispatch and observer delivery are NOT journaled;
// they are side effects of the first life only.
//
// Ordering: records are emitted while the mutated instance's lock is
// held, so the journal's per-instance record order is exactly the
// order a live reader could have observed — and because the sink only
// acknowledges durable records, no reader ever observes state that a
// crash could take back. Cross-instance order in the journal is
// arbitrary, as instances share no state.
//
// Replay: on restart, stream every record through ApplyJournal (single
// goroutine, journal order) and close with FinishRecovery. Replay
// rebuilds everything the live path maintains: token positions, event
// histories (ring truncation applied with the new config), executions,
// pending proposals, the resource/model/invocation indexes, the
// monotonic id counters, and every incremental counter — deviations,
// failed steps, pending invocations, per-phase entered/residence
// stats. Events flow through the same applier (applyRecorded) live and
// on replay, which is what makes the rebuilt counters equal by
// construction rather than by re-derivation.
//
// Failure semantics are fail-forward: if the sink errors, the
// in-memory mutation stands (Instantiate excepted — it journals before
// publication and aborts cleanly), the caller gets the error, observer
// delivery and dispatch are suppressed, and the append-error counter
// surfaces on the admin endpoint. See journal.go.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/shardkey"
	"github.com/liquidpub/gelee/internal/vclock"
)

// Invoker delivers an action invocation to its implementation endpoint.
// Implementations may be synchronous (report status before returning)
// or asynchronous (status arrives later via Runtime.Report). A returned
// error means the dispatch itself failed; the runtime records it as a
// failed execution — actions are not guaranteed to succeed and there is
// no transactional semantic (§IV.C). The context carries the dispatch
// deadline (Config.DispatchTimeout) and lets callers cancel in-flight
// sends; implementations must respect it on any network path.
type Invoker interface {
	Invoke(ctx context.Context, inv actionlib.Invocation) error
}

// InvokerFunc adapts a function to the Invoker interface.
type InvokerFunc func(ctx context.Context, inv actionlib.Invocation) error

// Invoke calls f.
func (f InvokerFunc) Invoke(ctx context.Context, inv actionlib.Invocation) error { return f(ctx, inv) }

// Policy is the permission hook the runtime consults before mutating an
// instance. The zero-value allowAll policy suits embedded library use;
// the hosted service wires access.Control.
type Policy interface {
	// CanDrive: free moves, annotations, bindings, change accept/reject.
	CanDrive(actor, instanceID string) bool
	// CanFollow: moving the token along a suggested transition to target.
	CanFollow(actor, instanceID, target string) bool
}

type allowAll struct{}

func (allowAll) CanDrive(string, string) bool          { return true }
func (allowAll) CanFollow(string, string, string) bool { return true }

// Observer receives every event appended to any instance, synchronously
// with the mutation that produced it. The facade wires the execution
// log and the monitor; nil observers are skipped.
type Observer func(instanceID string, ev Event)

// DefaultShards is the instance-table stripe count when Config.Shards
// is zero. The same count stripes the secondary indexes.
const DefaultShards = 16

// Config assembles a Runtime.
type Config struct {
	Registry *actionlib.Registry // action types and implementations; required
	Invoker  Invoker             // action dispatch; nil = actions fail to dispatch
	Clock    vclock.Clock        // nil = wall clock
	Policy   Policy              // nil = allow everything
	Observer Observer            // nil = no observer
	// CallbackBase prefixes invocation callback URIs, e.g.
	// "http://host/api/v1/callbacks". Empty means "callback://" URIs,
	// which the local invoker and tests use.
	CallbackBase string
	// SyncActions makes Advance dispatch actions inline instead of in
	// goroutines. Order remains deliberately unspecified either way.
	SyncActions bool
	// DispatchTimeout caps one action dispatch end to end — including
	// any transport-level retries the Invoker performs. 0 leaves the
	// ceiling to the Invoker's own per-attempt timeouts.
	DispatchTimeout time.Duration
	// Shards is the instance-table lock-stripe count (0 =
	// DefaultShards, minimum 1). More shards, less contention.
	Shards int
	// MaxEventsInMemory caps each instance's in-memory event history
	// (0 = unbounded). See the package doc's truncation section.
	MaxEventsInMemory int
	// InvocationRetention is the grace window a terminal invocation's
	// callback-routing entry stays in the index for late duplicate
	// callbacks; after it the entry is garbage-collected. 0 keeps
	// entries for the full audit lifetime (the pre-GC behavior).
	InvocationRetention time.Duration
	// Journal is the persistence sink for instance mutation records
	// (nil = instances live only in RAM). Every mutation emits one
	// typed record through it, under the mutated instance's lock; see
	// the package doc's durability section.
	Journal Journal
}

// shard is one stripe of the instance table. Its lock guards only
// membership — the id→instance map and the seq-ordered slice mirroring
// it (the population index, see popindex.go); instance state is guarded
// by each instance's own mutex.
type shard struct {
	mu        sync.RWMutex
	instances map[string]*instance
	// ordered mirrors instances sorted by creation seq; maintained by
	// insertOrdered at every publish site, never shrunk (instances are
	// never removed).
	ordered []*instance
}

// uriIndex is a striped secondary index from a URI to the instances
// carrying it. Entries hold instance pointers so queries never re-hit
// the instance table.
type uriIndex struct {
	shards []*uriIndexShard
}

type uriIndexShard struct {
	mu sync.RWMutex
	m  map[string][]*instance
}

func newURIIndex(n int) *uriIndex {
	ix := &uriIndex{shards: make([]*uriIndexShard, n)}
	for i := range ix.shards {
		ix.shards[i] = &uriIndexShard{m: make(map[string][]*instance)}
	}
	return ix
}

func (ix *uriIndex) shardFor(uri string) *uriIndexShard {
	return ix.shards[shardkey.Index(uri, len(ix.shards))]
}

// add appends in under uri.
func (ix *uriIndex) add(uri string, in *instance) {
	sh := ix.shardFor(uri)
	sh.mu.Lock()
	sh.m[uri] = append(sh.m[uri], in)
	sh.mu.Unlock()
}

// remove drops in from uri's entry (used when an owner switches the
// model an instance follows).
func (ix *uriIndex) remove(uri string, in *instance) {
	sh := ix.shardFor(uri)
	sh.mu.Lock()
	list := sh.m[uri]
	for i, got := range list {
		if got == in {
			sh.m[uri] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(sh.m[uri]) == 0 {
		delete(sh.m, uri)
	}
	sh.mu.Unlock()
}

// get returns a copy of uri's entry so callers iterate without the
// index lock.
func (ix *uriIndex) get(uri string) []*instance {
	sh := ix.shardFor(uri)
	sh.mu.RLock()
	out := append([]*instance(nil), sh.m[uri]...)
	sh.mu.RUnlock()
	return out
}

// keys counts distinct URIs across stripes.
func (ix *uriIndex) keys() int {
	n := 0
	for _, sh := range ix.shards {
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// invShard is one stripe of the invocation-id → instance index that
// routes action callbacks. exp queues terminal invocations for GC once
// their grace window passes; entries are appended under the shard lock
// with a monotone clock, so the queue is expiry-ordered.
type invShard struct {
	mu  sync.RWMutex
	m   map[string]*instance
	exp []invExpiry
}

// invExpiry marks a terminal invocation's index entry for removal at
// the given instant.
type invExpiry struct {
	id string
	at time.Time
}

// Runtime manages every lifecycle instance of a deployment.
type Runtime struct {
	cfg    Config
	clock  vclock.Clock
	policy Policy

	shards  []*shard    // instance id → stripe
	inv     []*invShard // invocation id → instance, for callback routing
	byRes   *uriIndex   // resource URI → instances
	byModel *uriIndex   // model URI → instances (provenance)

	nextInst atomic.Int64
	nextInv  atomic.Int64
	dispatch sync.WaitGroup

	// instPub spans Instantiate's journal-append + shard-publish window
	// (held shared). EmitSnapshots takes it exclusively as a barrier
	// before walking the shards, so a fold can never capture a journal
	// boundary that covers an instantiate record whose instance is not
	// yet visible in the shard maps — the record would be folded away
	// with no snapshot standing in for it. See snapshot.go.
	instPub sync.RWMutex

	// Read-path health counters for the admin endpoint.
	totalEvents     atomic.Int64 // events ever recorded across instances
	truncatedEvents atomic.Int64 // events dropped by ring truncation
	invGCed         atomic.Int64 // invocation-index entries garbage-collected

	// Population-index counters (see popindex.go).
	popOutOfOrder atomic.Int64 // ordered inserts that were not appends
	popIndexed    atomic.Int64 // population queries served from indexes
	popScans      atomic.Int64 // deprecated full-scan baseline calls

	// Persistence counters (see journal.go). recoveryStart is written
	// once (recoveryOnce makes that safe under parallel replay);
	// recovery is written by FinishRecovery after the appliers join,
	// before the runtime serves traffic.
	journalAppends   atomic.Int64 // records accepted by the Journal sink
	journalErrors    atomic.Int64 // records the sink failed to persist
	recoveredRecords atomic.Int64 // records applied by ApplyJournal
	recoveryOnce     sync.Once
	recoveryStart    time.Time
	recovery         RecoveryStats
}

// New builds a Runtime from cfg. Registry is required.
func New(cfg Config) (*Runtime, error) {
	if cfg.Registry == nil {
		return nil, errors.New("runtime: Config.Registry is required")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = vclock.System
	}
	policy := cfg.Policy
	if policy == nil {
		policy = allowAll{}
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	r := &Runtime{
		cfg:     cfg,
		clock:   clock,
		policy:  policy,
		shards:  make([]*shard, n),
		inv:     make([]*invShard, n),
		byRes:   newURIIndex(n),
		byModel: newURIIndex(n),
	}
	for i := 0; i < n; i++ {
		r.shards[i] = &shard{instances: make(map[string]*instance)}
		r.inv[i] = &invShard{m: make(map[string]*instance)}
	}
	return r, nil
}

// Errors returned by runtime operations.
var (
	ErrNotFound      = errors.New("runtime: no such instance")
	ErrForbidden     = errors.New("runtime: actor lacks the required role")
	ErrUnknownPhase  = errors.New("runtime: phase not in instance model")
	ErrNoPending     = errors.New("runtime: no pending model change")
	ErrAlreadyExists = errors.New("runtime: duplicate")
)

// shardFor hashes an instance id onto its stripe.
func (r *Runtime) shardFor(id string) *shard {
	return r.shards[shardkey.Index(id, len(r.shards))]
}

// invShardFor hashes an invocation id onto its stripe.
func (r *Runtime) invShardFor(id string) *invShard {
	return r.inv[shardkey.Index(id, len(r.inv))]
}

// lookup resolves an instance pointer. The shard lock is released
// before the caller takes the instance lock — pointers stay valid
// because instances are never removed.
func (r *Runtime) lookup(id string) (*instance, bool) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	in, ok := sh.instances[id]
	sh.mu.RUnlock()
	return in, ok
}

func (r *Runtime) observe(instID string, ev Event) {
	if r.cfg.Observer != nil {
		r.cfg.Observer(instID, ev)
	}
}

// record stamps and appends an event to the instance; callers hold
// in.mu. Seq numbering is derived from in.eventSeq, not the slice
// length, so it stays gapless across ring truncation.
func (r *Runtime) record(in *instance, ev Event) Event {
	ev.Seq = in.eventSeq + 1
	ev.Time = r.clock.Now()
	r.applyRecorded(in, ev)
	return ev
}

// applyRecorded appends an already-stamped event and maintains every
// event-derived counter — event totals, deviations, the per-phase
// entered/residence stats — plus the ring truncation. It is the one
// place an event enters an instance, shared by the live record() path
// and journal replay, which is what makes replayed counters equal the
// live ones by construction. When Config.MaxEventsInMemory is set the
// in-memory history is ring-truncated: once it exceeds the cap by 25%
// the oldest events are cut back down to the cap, amortizing the copy.
// Callers hold in.mu (or own the instance exclusively).
func (r *Runtime) applyRecorded(in *instance, ev Event) {
	if ev.Seq > in.eventSeq {
		in.eventSeq = ev.Seq
	}
	in.events = append(in.events, ev)
	r.totalEvents.Add(1)
	if ev.Kind == EventPhaseEntered {
		if ev.Deviation {
			in.deviations++
		}
		in.notePhaseEntered(ev.Phase, ev.Time)
	}
	if max := r.cfg.MaxEventsInMemory; max > 0 && len(in.events) > max+max/4 {
		drop := len(in.events) - max
		kept := make([]Event, max)
		copy(kept, in.events[drop:])
		in.events = kept
		in.truncatedEvs += drop
		r.truncatedEvents.Add(int64(drop))
	}
}

// invRetire schedules the invocation's callback-routing entry for GC
// once the grace window passes; a no-op when retention is disabled.
// Expired entries of the same stripe are swept on the way, so the index
// reclaims itself under normal mutation traffic with no sweeper
// goroutine. Safe to call with or without the owning instance's lock
// (index locks come after instance locks in the package lock order).
func (r *Runtime) invRetire(invID string) {
	ret := r.cfg.InvocationRetention
	if ret <= 0 {
		return
	}
	now := r.clock.Now()
	sh := r.invShardFor(invID)
	sh.mu.Lock()
	sh.exp = append(sh.exp, invExpiry{id: invID, at: now.Add(ret)})
	r.sweepInvShardLocked(sh, now)
	sh.mu.Unlock()
}

// sweepInvShardLocked drops the stripe's expired entries; callers hold
// sh.mu. The expiry queue is append-ordered by a monotone clock, so the
// scan stops at the first live entry.
func (r *Runtime) sweepInvShardLocked(sh *invShard, now time.Time) int {
	n := 0
	for _, e := range sh.exp {
		if e.at.After(now) {
			break
		}
		delete(sh.m, e.id)
		n++
	}
	if n > 0 {
		sh.exp = append(sh.exp[:0], sh.exp[n:]...)
		r.invGCed.Add(int64(n))
	}
	return n
}

// SweepInvocations drops every invocation-index entry whose grace
// window has passed and reports how many were reclaimed. Sweeps also
// piggyback on mutations touching each stripe; call this only for
// prompt reclamation (an idle deployment, a periodic admin tick).
func (r *Runtime) SweepInvocations() int {
	if r.cfg.InvocationRetention <= 0 {
		return 0
	}
	now := r.clock.Now()
	n := 0
	for _, sh := range r.inv {
		sh.mu.Lock()
		n += r.sweepInvShardLocked(sh, now)
		sh.mu.Unlock()
	}
	return n
}

// Instantiate creates a lifecycle instance of model on the resource ref,
// owned by owner. The model is deep-copied into the instance: later
// edits to the caller's model never affect the instance (light
// coupling). instBindings supplies instantiation-time parameter values
// per action URI; binding times are enforced.
//
// Action types referenced by the model are resolved against the
// resource type now (§V.B). Unresolvable actions do not block
// instantiation — the paper's robustness stance — but are reported in
// the snapshot's Unresolved list and will fail if their phase is
// entered before a plug-in appears.
func (r *Runtime) Instantiate(model *core.Model, ref resource.Ref, owner string, instBindings map[string]map[string]string) (Snapshot, error) {
	if model == nil {
		return Snapshot{}, errors.New("runtime: nil model")
	}
	if err := model.Validate(); err != nil {
		return Snapshot{}, err
	}
	if err := ref.Validate(); err != nil {
		return Snapshot{}, err
	}
	// Enforce instantiation-stage binding times before committing.
	for _, p := range model.Phases {
		for _, call := range p.Actions {
			vals := instBindings[call.URI]
			if len(vals) == 0 {
				continue
			}
			spec := r.specFor(call.URI)
			if err := actionlib.CheckStageBindings(spec, call, vals, actionlib.StageInstantiation); err != nil {
				return Snapshot{}, err
			}
		}
	}

	seq := r.nextInst.Add(1)
	in := &instance{
		id:           fmt.Sprintf("li-%06d", seq),
		seq:          seq,
		model:        model.Clone(),
		mcache:       buildModelCache(model),
		modelURI:     model.URI,
		res:          ref.Clone(),
		owner:        owner,
		state:        StateActive,
		createdAt:    r.clock.Now(),
		instBindings: cloneBindings(instBindings),
		executions:   make(map[string]*ActionExecution),
	}
	// Resolve every referenced action type against the resource type.
	seen := make(map[string]bool)
	for _, p := range in.model.Phases {
		for _, call := range p.Actions {
			if seen[call.URI] {
				continue
			}
			seen[call.URI] = true
			if _, err := r.cfg.Registry.Resolve(call.URI, ref.Type); err != nil {
				in.unresolved = append(in.unresolved, call.URI)
			}
		}
	}
	sort.Strings(in.unresolved)
	// Record and snapshot before publication: the instance is still
	// private, so no lock is needed.
	ev := r.record(in, Event{Kind: EventCreated, Actor: owner,
		Detail: fmt.Sprintf("model %q on %s (%s)", in.model.Name, ref.URI, ref.Type)})
	snap := in.snapshot()

	// Journal before publication: a failed append aborts cleanly — the
	// instance was never visible, so nothing needs rolling back. The
	// shared instPub lock keeps the append→publish window atomic with
	// respect to snapshot folding (see snapshot.go).
	r.instPub.RLock()
	defer r.instPub.RUnlock()
	if err := r.journalLocked(&JournalRecord{
		Op:         RecInstantiate,
		Instance:   in.id,
		Seq:        seq,
		Model:      in.model,
		ModelURI:   in.modelURI,
		Resource:   &in.res,
		Owner:      owner,
		CreatedAt:  in.createdAt,
		Unresolved: in.unresolved,
		Bindings:   in.instBindings,
		Events:     []Event{ev},
	}); err != nil {
		r.totalEvents.Add(-1)
		return Snapshot{}, err
	}

	r.publish(in)
	r.byRes.add(in.res.URI, in)
	r.byModel.add(in.modelURI, in)

	r.observe(in.id, ev)
	return snap, nil
}

func cloneBindings(b map[string]map[string]string) map[string]map[string]string {
	out := make(map[string]map[string]string, len(b))
	for uri, vals := range b {
		inner := make(map[string]string, len(vals))
		for k, v := range vals {
			inner[k] = v
		}
		out[uri] = inner
	}
	return out
}

// specFor returns the registered action type for uri, nil when unknown.
func (r *Runtime) specFor(uri string) *actionlib.ActionType {
	if t, ok := r.cfg.Registry.Type(uri); ok {
		return &t
	}
	return nil
}

// Instance returns a snapshot of the instance — a full deep copy of
// its history; prefer Summary for status polls.
func (r *Runtime) Instance(id string) (Snapshot, bool) {
	in, ok := r.lookup(id)
	if !ok {
		return Snapshot{}, false
	}
	in.mu.Lock()
	snap := in.snapshot()
	in.mu.Unlock()
	return snap, true
}

// Summary returns the lightweight projection of one instance: token
// position, counters and due-date inputs, with no history copy.
func (r *Runtime) Summary(id string) (Summary, bool) {
	in, ok := r.lookup(id)
	if !ok {
		return Summary{}, false
	}
	in.mu.Lock()
	sum := in.summary()
	in.mu.Unlock()
	return sum, true
}

// Count reports the live instance population — the sum of shard sizes,
// with no instance lock and no copying.
func (r *Runtime) Count() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.RLock()
		n += len(sh.instances)
		sh.mu.RUnlock()
	}
	return n
}

// collectAll gathers every instance pointer, sorted by creation order,
// by copying and re-sorting the full population — O(N log N) per call.
// Only shard membership locks are taken, one stripe at a time. The hot
// read paths stream off the population index instead (popindex.go);
// this remains as the ground truth of the index equivalence tests and
// the measured baseline behind SummariesPageScan.
func (r *Runtime) collectAll() []*instance {
	var all []*instance
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, in := range sh.instances {
			all = append(all, in)
		}
		sh.mu.RUnlock()
	}
	sortBySeq(all)
	return all
}

// sortBySeq orders instances by creation sequence; seq is immutable so
// no lock is needed.
func sortBySeq(list []*instance) {
	sort.Slice(list, func(i, j int) bool { return list[i].seq < list[j].seq })
}

// Instances returns full snapshots of every instance in creation
// order, streamed off the population index. Each deep copy is made
// under that instance's own lock — for dashboards and list views
// prefer Summaries, which skips the event and execution histories.
func (r *Runtime) Instances() []Snapshot {
	out := make([]Snapshot, 0, r.Count())
	r.forEachRef(0, func(in *instance) bool {
		in.mu.Lock()
		out = append(out, in.snapshot())
		in.mu.Unlock()
		return true
	})
	return out
}

// Summaries returns a lightweight view of every instance in creation
// order: identity, token position, state and resource — no event
// history, no executions, no model copy. This is the cheap path for
// list endpoints and cockpit overviews over large populations; it
// streams off the population index without a full pointer copy or
// re-sort.
func (r *Runtime) Summaries() []Summary {
	out := make([]Summary, 0, r.Count())
	r.ForEachSummary(Filter{}, 0, func(s Summary) bool {
		out = append(out, s)
		return true
	})
	return out
}

// SummaryPage is one cursor window of the population's summary view,
// mirroring the per-instance timeline paging: summaries in creation
// order with Seq > after.
type SummaryPage struct {
	Summaries []Summary `json:"summaries"`
	// Total is the live instance population.
	Total int `json:"total"`
	// NextAfter is the cursor for the following page (pass it as
	// `after`); 0 when this page reaches the tail.
	NextAfter int64 `json:"next_after,omitempty"`
}

// SummariesPage returns the summaries of instances with creation
// sequence > after, at most limit of them (limit <= 0 means no bound),
// in creation order. The page is served from the incrementally
// maintained population index — the cursor is seeked with one binary
// search per shard and only the page's instances are locked and
// projected, O(log N + page) per call. Equivalent to
// QuerySummaries(Filter{}, after, limit).
func (r *Runtime) SummariesPage(after int64, limit int) SummaryPage {
	return r.QuerySummaries(Filter{}, after, limit)
}

// PhaseStat is the incrementally maintained per-phase drill-down of
// one instance: how many times the token entered the phase and the
// cumulative residence time spent there.
type PhaseStat struct {
	Entered   int           `json:"entered"`
	Residence time.Duration `json:"residence"`
}

// PhaseStats returns the per-phase entered counts and residence times
// of one instance, with the current phase's open residence counted up
// to now (or to completion for completed instances). The counters are
// maintained at mutation time and rebuilt on replay, so — unlike an
// event rescan — they survive ring truncation of the in-memory
// history. The second return is false when the instance is unknown.
func (r *Runtime) PhaseStats(id string, now time.Time) (map[string]PhaseStat, bool) {
	in, ok := r.lookup(id)
	if !ok {
		return nil, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]PhaseStat, len(in.phaseEntered))
	for p, n := range in.phaseEntered {
		out[p] = PhaseStat{Entered: n, Residence: in.phaseResidence[p]}
	}
	if in.residPhase != "" {
		end := now
		if in.state != StateActive && !in.completedAt.IsZero() {
			end = in.completedAt
		}
		ps := out[in.residPhase]
		ps.Residence += end.Sub(in.residSince)
		out[in.residPhase] = ps
	}
	return out, true
}

// byIndexedURI snapshots the instances an index lists under uri, in
// creation order. match re-checks the attribute under the instance
// lock (the model index mutates on owner-initiated switches); a nil
// match accepts all.
func (r *Runtime) byIndexedURI(ix *uriIndex, uri string, match func(*instance) bool) []Snapshot {
	list := ix.get(uri)
	sortBySeq(list)
	var out []Snapshot
	for _, in := range list {
		in.mu.Lock()
		if match == nil || match(in) {
			out = append(out, in.snapshot())
		}
		in.mu.Unlock()
	}
	return out
}

// ByResource returns snapshots of every instance running on the given
// URI — several lifecycles on one URI are explicitly legal (§IV.B).
// Served from the resource index: O(matches), not O(instances).
func (r *Runtime) ByResource(uri string) []Snapshot {
	return r.byIndexedURI(r.byRes, uri, nil)
}

// ByModelURI returns snapshots of instances created from the model with
// the given URI (provenance pointer; the instances own their copies).
// Served from the model index: O(matches), not O(instances).
func (r *Runtime) ByModelURI(uri string) []Snapshot {
	return r.byIndexedURI(r.byModel, uri, func(in *instance) bool { return in.modelURI == uri })
}

// Annotate attaches a free-form note to the instance history.
func (r *Runtime) Annotate(instID, actor, note string) error {
	in, ok := r.lookup(instID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, instID)
	}
	if !r.policy.CanDrive(actor, instID) {
		return fmt.Errorf("%w: %s may not annotate %s", ErrForbidden, actor, instID)
	}
	in.mu.Lock()
	ev := r.record(in, Event{Kind: EventAnnotated, Actor: actor, Detail: note, Phase: in.current})
	if err := r.journalLocked(&JournalRecord{Op: RecAnnotate, Instance: instID, Events: []Event{ev}}); err != nil {
		in.mu.Unlock()
		return err
	}
	in.mu.Unlock()
	r.observe(instID, ev)
	return nil
}

// BindParams supplies instantiation-stage parameter values for an
// action after the instance was created ("actions can be configured if
// necessary", §IV.B). Binding times are enforced.
func (r *Runtime) BindParams(instID, actor, actionURI string, values map[string]string) error {
	in, ok := r.lookup(instID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, instID)
	}
	if !r.policy.CanDrive(actor, instID) {
		return fmt.Errorf("%w: %s may not configure %s", ErrForbidden, actor, instID)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	// Find the call declaration (any phase) to check binding times.
	var call *core.ActionCall
	for _, p := range in.model.Phases {
		for i := range p.Actions {
			if p.Actions[i].URI == actionURI {
				call = &p.Actions[i]
				break
			}
		}
		if call != nil {
			break
		}
	}
	if call == nil {
		return fmt.Errorf("runtime: model of %s references no action %s", instID, actionURI)
	}
	spec := r.specFor(actionURI)
	if err := actionlib.CheckStageBindings(spec, *call, values, actionlib.StageInstantiation); err != nil {
		return err
	}
	if in.instBindings == nil {
		in.instBindings = make(map[string]map[string]string)
	}
	vals := in.instBindings[actionURI]
	if vals == nil {
		vals = make(map[string]string)
		in.instBindings[actionURI] = vals
	}
	for k, v := range values {
		vals[k] = v
	}
	return r.journalLocked(&JournalRecord{
		Op: RecBind, Instance: instID,
		Bindings: map[string]map[string]string{actionURI: values},
	})
}

// InFlight reports the number of non-terminal action executions of the
// instance; used by tests and the monitor.
func (r *Runtime) InFlight(instID string) int {
	in, ok := r.lookup(instID)
	if !ok {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, ex := range in.executions {
		if !ex.Terminal && ex.DispatchErr == "" {
			n++
		}
	}
	return n
}

// Stats is the runtime-health payload of GET /api/v1/admin/runtime:
// shard layout, instance population and secondary-index sizes.
type Stats struct {
	// Shards is the configured stripe count.
	Shards int `json:"shards"`
	// Instances is the total live instance count.
	Instances int `json:"instances"`
	// PerShard lists the instance count of each stripe, in order —
	// skew here means the id hash is misbehaving.
	PerShard []int `json:"per_shard"`
	// Invocations is the live size of the invocation→instance callback
	// routing index (kept forever unless Config.InvocationRetention
	// ages terminal entries out).
	Invocations int `json:"invocation_index"`
	// InvocationsGCed counts index entries aged out after their
	// execution turned terminal plus the grace window.
	InvocationsGCed int64 `json:"invocation_index_gced"`
	// ResourceKeys is the number of distinct resource URIs indexed.
	ResourceKeys int `json:"resource_index_keys"`
	// ModelKeys is the number of distinct model URIs indexed.
	ModelKeys int `json:"model_index_keys"`
	// EventsInMemory is the total event count currently retained across
	// all instance histories; EventsTruncated counts events dropped by
	// Config.MaxEventsInMemory ring truncation (the journaled execution
	// log still has them).
	EventsInMemory  int64 `json:"events_in_memory"`
	EventsTruncated int64 `json:"events_truncated"`
	// PopulationIndex reports the ordered index behind every population
	// listing (see popindex.go).
	PopulationIndex PopIndexStats `json:"population_index"`
	// Persistence reports the durability seam: write-through counters
	// and what the last replay recovered.
	Persistence PersistenceStats `json:"persistence"`
}

// PersistenceStats is the durability section of the admin runtime
// payload: whether a journal sink is wired, how many records it has
// accepted or failed, and what the startup replay recovered.
type PersistenceStats struct {
	Enabled bool `json:"enabled"`
	// Records/RecordErrors count mutation records the Journal sink
	// accepted / failed since start (failures are fail-forward: memory
	// kept the mutation, durability was lost — see journal.go).
	Records      int64 `json:"journal_records"`
	RecordErrors int64 `json:"journal_errors"`
	// Recovered is what the startup replay rebuilt.
	Recovered RecoveryStats `json:"recovered"`
}

// RuntimeStats reports shard occupancy and index sizes.
func (r *Runtime) RuntimeStats() Stats {
	st := Stats{
		Shards:   len(r.shards),
		PerShard: make([]int, len(r.shards)),
	}
	for i, sh := range r.shards {
		sh.mu.RLock()
		st.PerShard[i] = len(sh.instances)
		sh.mu.RUnlock()
		st.Instances += st.PerShard[i]
	}
	for _, sh := range r.inv {
		sh.mu.RLock()
		st.Invocations += len(sh.m)
		sh.mu.RUnlock()
	}
	st.ResourceKeys = r.byRes.keys()
	st.ModelKeys = r.byModel.keys()
	st.PopulationIndex = PopIndexStats{
		Entries:           st.Instances,
		OutOfOrderInserts: r.popOutOfOrder.Load(),
		IndexedQueries:    r.popIndexed.Load(),
		ScanQueries:       r.popScans.Load(),
	}
	st.InvocationsGCed = r.invGCed.Load()
	st.EventsTruncated = r.truncatedEvents.Load()
	st.EventsInMemory = r.totalEvents.Load() - st.EventsTruncated
	st.Persistence = PersistenceStats{
		Enabled:      r.cfg.Journal != nil,
		Records:      r.journalAppends.Load(),
		RecordErrors: r.journalErrors.Load(),
		Recovered:    r.recovery,
	}
	return st
}

// WaitDispatch blocks until every asynchronous action dispatch launched
// so far has handed its invocation to the Invoker. It does not wait for
// callbacks — actions complete whenever their implementation reports.
func (r *Runtime) WaitDispatch() { r.dispatch.Wait() }
