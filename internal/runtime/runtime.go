package runtime

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/vclock"
)

// Invoker delivers an action invocation to its implementation endpoint.
// Implementations may be synchronous (report status before returning)
// or asynchronous (status arrives later via Runtime.Report). A returned
// error means the dispatch itself failed; the runtime records it as a
// failed execution — actions are not guaranteed to succeed and there is
// no transactional semantic (§IV.C).
type Invoker interface {
	Invoke(inv actionlib.Invocation) error
}

// InvokerFunc adapts a function to the Invoker interface.
type InvokerFunc func(actionlib.Invocation) error

// Invoke calls f.
func (f InvokerFunc) Invoke(inv actionlib.Invocation) error { return f(inv) }

// Policy is the permission hook the runtime consults before mutating an
// instance. The zero-value allowAll policy suits embedded library use;
// the hosted service wires access.Control.
type Policy interface {
	// CanDrive: free moves, annotations, bindings, change accept/reject.
	CanDrive(actor, instanceID string) bool
	// CanFollow: moving the token along a suggested transition to target.
	CanFollow(actor, instanceID, target string) bool
}

type allowAll struct{}

func (allowAll) CanDrive(string, string) bool          { return true }
func (allowAll) CanFollow(string, string, string) bool { return true }

// Observer receives every event appended to any instance, synchronously
// with the mutation that produced it. The facade wires the execution
// log and the monitor; nil observers are skipped.
type Observer func(instanceID string, ev Event)

// Config assembles a Runtime.
type Config struct {
	Registry *actionlib.Registry // action types and implementations; required
	Invoker  Invoker             // action dispatch; nil = actions fail to dispatch
	Clock    vclock.Clock        // nil = wall clock
	Policy   Policy              // nil = allow everything
	Observer Observer            // nil = no observer
	// CallbackBase prefixes invocation callback URIs, e.g.
	// "http://host/api/v1/callbacks". Empty means "callback://" URIs,
	// which the local invoker and tests use.
	CallbackBase string
	// SyncActions makes Advance dispatch actions inline instead of in
	// goroutines. Order remains deliberately unspecified either way.
	SyncActions bool
}

// Runtime manages every lifecycle instance of a deployment.
type Runtime struct {
	mu        sync.RWMutex
	cfg       Config
	clock     vclock.Clock
	policy    Policy
	instances map[string]*instance
	order     []string
	nextInst  int
	nextInv   int
	// invIndex maps invocation id -> instance id for callback routing.
	invIndex map[string]string
	dispatch sync.WaitGroup
}

// New builds a Runtime from cfg. Registry is required.
func New(cfg Config) (*Runtime, error) {
	if cfg.Registry == nil {
		return nil, errors.New("runtime: Config.Registry is required")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = vclock.System
	}
	policy := cfg.Policy
	if policy == nil {
		policy = allowAll{}
	}
	return &Runtime{
		cfg:       cfg,
		clock:     clock,
		policy:    policy,
		instances: make(map[string]*instance),
		invIndex:  make(map[string]string),
	}, nil
}

// Errors returned by runtime operations.
var (
	ErrNotFound      = errors.New("runtime: no such instance")
	ErrForbidden     = errors.New("runtime: actor lacks the required role")
	ErrUnknownPhase  = errors.New("runtime: phase not in instance model")
	ErrNoPending     = errors.New("runtime: no pending model change")
	ErrAlreadyExists = errors.New("runtime: duplicate")
)

func (r *Runtime) observe(instID string, ev Event) {
	if r.cfg.Observer != nil {
		r.cfg.Observer(instID, ev)
	}
}

// record appends an event to the instance; callers hold r.mu.
func (r *Runtime) record(in *instance, ev Event) Event {
	ev.Seq = len(in.events) + 1
	ev.Time = r.clock.Now()
	in.events = append(in.events, ev)
	return ev
}

// Instantiate creates a lifecycle instance of model on the resource ref,
// owned by owner. The model is deep-copied into the instance: later
// edits to the caller's model never affect the instance (light
// coupling). instBindings supplies instantiation-time parameter values
// per action URI; binding times are enforced.
//
// Action types referenced by the model are resolved against the
// resource type now (§V.B). Unresolvable actions do not block
// instantiation — the paper's robustness stance — but are reported in
// the snapshot's Unresolved list and will fail if their phase is
// entered before a plug-in appears.
func (r *Runtime) Instantiate(model *core.Model, ref resource.Ref, owner string, instBindings map[string]map[string]string) (Snapshot, error) {
	if model == nil {
		return Snapshot{}, errors.New("runtime: nil model")
	}
	if err := model.Validate(); err != nil {
		return Snapshot{}, err
	}
	if err := ref.Validate(); err != nil {
		return Snapshot{}, err
	}
	// Enforce instantiation-stage binding times before committing.
	for _, p := range model.Phases {
		for _, call := range p.Actions {
			vals := instBindings[call.URI]
			if len(vals) == 0 {
				continue
			}
			spec := r.specFor(call.URI)
			if err := actionlib.CheckStageBindings(spec, call, vals, actionlib.StageInstantiation); err != nil {
				return Snapshot{}, err
			}
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextInst++
	in := &instance{
		id:           fmt.Sprintf("li-%06d", r.nextInst),
		model:        model.Clone(),
		modelURI:     model.URI,
		res:          ref.Clone(),
		owner:        owner,
		state:        StateActive,
		createdAt:    r.clock.Now(),
		instBindings: cloneBindings(instBindings),
		executions:   make(map[string]*ActionExecution),
	}
	// Resolve every referenced action type against the resource type.
	seen := make(map[string]bool)
	for _, p := range in.model.Phases {
		for _, call := range p.Actions {
			if seen[call.URI] {
				continue
			}
			seen[call.URI] = true
			if _, err := r.cfg.Registry.Resolve(call.URI, ref.Type); err != nil {
				in.unresolved = append(in.unresolved, call.URI)
			}
		}
	}
	sort.Strings(in.unresolved)
	r.instances[in.id] = in
	r.order = append(r.order, in.id)
	ev := r.record(in, Event{Kind: EventCreated, Actor: owner,
		Detail: fmt.Sprintf("model %q on %s (%s)", in.model.Name, ref.URI, ref.Type)})
	snap := in.snapshot()
	r.observe(in.id, ev)
	return snap, nil
}

func cloneBindings(b map[string]map[string]string) map[string]map[string]string {
	out := make(map[string]map[string]string, len(b))
	for uri, vals := range b {
		inner := make(map[string]string, len(vals))
		for k, v := range vals {
			inner[k] = v
		}
		out[uri] = inner
	}
	return out
}

// specFor returns the registered action type for uri, nil when unknown.
func (r *Runtime) specFor(uri string) *actionlib.ActionType {
	if t, ok := r.cfg.Registry.Type(uri); ok {
		return &t
	}
	return nil
}

// Instance returns a snapshot of the instance.
func (r *Runtime) Instance(id string) (Snapshot, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	in, ok := r.instances[id]
	if !ok {
		return Snapshot{}, false
	}
	return in.snapshot(), true
}

// Instances returns snapshots of every instance in creation order.
func (r *Runtime) Instances() []Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Snapshot, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.instances[id].snapshot())
	}
	return out
}

// ByResource returns snapshots of every instance running on the given
// URI — several lifecycles on one URI are explicitly legal (§IV.B).
func (r *Runtime) ByResource(uri string) []Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Snapshot
	for _, id := range r.order {
		if in := r.instances[id]; in.res.URI == uri {
			out = append(out, in.snapshot())
		}
	}
	return out
}

// ByModelURI returns snapshots of instances created from the model with
// the given URI (provenance pointer; the instances own their copies).
func (r *Runtime) ByModelURI(uri string) []Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Snapshot
	for _, id := range r.order {
		if in := r.instances[id]; in.modelURI == uri {
			out = append(out, in.snapshot())
		}
	}
	return out
}

// Annotate attaches a free-form note to the instance history.
func (r *Runtime) Annotate(instID, actor, note string) error {
	r.mu.Lock()
	in, ok := r.instances[instID]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, instID)
	}
	if !r.policy.CanDrive(actor, instID) {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s may not annotate %s", ErrForbidden, actor, instID)
	}
	ev := r.record(in, Event{Kind: EventAnnotated, Actor: actor, Detail: note, Phase: in.current})
	r.mu.Unlock()
	r.observe(instID, ev)
	return nil
}

// BindParams supplies instantiation-stage parameter values for an
// action after the instance was created ("actions can be configured if
// necessary", §IV.B). Binding times are enforced.
func (r *Runtime) BindParams(instID, actor, actionURI string, values map[string]string) error {
	r.mu.Lock()
	in, ok := r.instances[instID]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, instID)
	}
	if !r.policy.CanDrive(actor, instID) {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s may not configure %s", ErrForbidden, actor, instID)
	}
	// Find the call declaration (any phase) to check binding times.
	var call *core.ActionCall
	for _, p := range in.model.Phases {
		for i := range p.Actions {
			if p.Actions[i].URI == actionURI {
				call = &p.Actions[i]
				break
			}
		}
		if call != nil {
			break
		}
	}
	if call == nil {
		r.mu.Unlock()
		return fmt.Errorf("runtime: model of %s references no action %s", instID, actionURI)
	}
	spec := r.specFor(actionURI)
	if err := actionlib.CheckStageBindings(spec, *call, values, actionlib.StageInstantiation); err != nil {
		r.mu.Unlock()
		return err
	}
	if in.instBindings == nil {
		in.instBindings = make(map[string]map[string]string)
	}
	vals := in.instBindings[actionURI]
	if vals == nil {
		vals = make(map[string]string)
		in.instBindings[actionURI] = vals
	}
	for k, v := range values {
		vals[k] = v
	}
	r.mu.Unlock()
	return nil
}

// InFlight reports the number of instances with at least one
// non-terminal action execution; used by tests and the monitor.
func (r *Runtime) InFlight(instID string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	in, ok := r.instances[instID]
	if !ok {
		return 0
	}
	n := 0
	for _, ex := range in.executions {
		if !ex.Terminal && ex.DispatchErr == "" {
			n++
		}
	}
	return n
}

// WaitDispatch blocks until every asynchronous action dispatch launched
// so far has handed its invocation to the Invoker. It does not wait for
// callbacks — actions complete whenever their implementation reports.
func (r *Runtime) WaitDispatch() { r.dispatch.Wait() }
