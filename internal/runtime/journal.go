package runtime

// The persistence seam of the runtime. Every instance mutation —
// instantiate, advance, annotate, bind, report, dispatch failure,
// change propose/accept/reject, model switch — emits one typed
// JournalRecord through the Config.Journal sink while the mutated
// instance's lock is still held, so the journal's per-instance record
// order is exactly the mutation order a live reader could observe.
// Replaying the records through ApplyJournal (then FinishRecovery)
// rebuilds the full runtime state: token positions, event histories,
// executions, pending proposals, the secondary indexes and every
// incrementally maintained counter. See the package doc's "Durability
// model" section for the contract.

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
	"github.com/liquidpub/gelee/internal/resource"
)

// Journal is the persistence sink for instance mutation records. The
// runtime calls Record once per committed mutation, while holding the
// mutated instance's lock; Record must block until the record is
// durable at the sink's level (a nil error is the durability ack) and
// must never call back into the Runtime. Implementations must be safe
// for concurrent use — records for different instances are emitted in
// parallel.
type Journal interface {
	Record(rec *JournalRecord) error
}

// JournalFunc adapts a function to the Journal interface.
type JournalFunc func(*JournalRecord) error

// Record calls f.
func (f JournalFunc) Record(rec *JournalRecord) error { return f(rec) }

// RecordOp names the mutation a JournalRecord captures.
type RecordOp string

// Journal record operations, one per mutating verb — plus RecSnapshot,
// the record snapshot folding emits: not a mutation but a full
// replayable image of one instance, captured under its lock by
// EmitSnapshots and applied by replay in place of every folded record
// (see snapshot.go).
const (
	RecInstantiate  RecordOp = "instantiate"
	RecAdvance      RecordOp = "advance"
	RecAnnotate     RecordOp = "annotate"
	RecBind         RecordOp = "bind"
	RecReport       RecordOp = "report"
	RecDispatchFail RecordOp = "dispatch-fail"
	RecPropose      RecordOp = "propose"
	RecAccept       RecordOp = "accept"
	RecReject       RecordOp = "reject"
	RecSwitch       RecordOp = "switch"
	RecSnapshot     RecordOp = "snapshot"
	// RecProbe is the durability probe the resilience layer writes
	// through the sink while the system is degraded or read-only: it
	// proves the append path end to end but carries no instance state,
	// and replay discards it.
	RecProbe RecordOp = "probe"
)

// JournalRecord is one journaled instance mutation: the operation, the
// events it appended (already stamped with Seq and Time), and the
// op-specific payload replay needs to reproduce the state change
// exactly. State/Current/CompletedAt mirror the post-mutation token
// state for the ops that move it (advance, accept, switch), so replay
// never re-derives a token position from event text.
type JournalRecord struct {
	Op       RecordOp `json:"op"`
	Instance string   `json:"instance"`
	Events   []Event  `json:"events,omitempty"`

	// instantiate
	Seq        int64                        `json:"seq,omitempty"`
	Resource   *resource.Ref                `json:"resource,omitempty"`
	Owner      string                       `json:"owner,omitempty"`
	CreatedAt  time.Time                    `json:"created_at,omitempty"`
	Unresolved []string                     `json:"unresolved,omitempty"`
	Bindings   map[string]map[string]string `json:"bindings,omitempty"` // instantiate: all; bind: one action's values

	// instantiate / propose / switch
	Model *core.Model `json:"model,omitempty"`

	// advance: the executions this move created (value copies at
	// creation time — prep failures are already terminal here).
	To         string            `json:"to,omitempty"`
	Executions []ActionExecution `json:"executions,omitempty"`

	// report / dispatch-fail
	Invocation string `json:"invocation,omitempty"`
	Status     string `json:"status,omitempty"`
	Detail     string `json:"detail,omitempty"`
	Terminal   bool   `json:"terminal,omitempty"`

	// propose / switch
	Proposer    string    `json:"proposer,omitempty"`
	ProposedAt  time.Time `json:"proposed_at,omitempty"`
	Note        string    `json:"note,omitempty"`
	DiffSummary string    `json:"diff_summary,omitempty"`

	// accept / switch
	Landing string `json:"landing,omitempty"`

	// Post-mutation token-state mirrors (advance / accept / switch).
	State       State     `json:"state,omitempty"`
	Current     string    `json:"current,omitempty"`
	CompletedAt time.Time `json:"completed_at,omitempty"`
	ModelURI    string    `json:"model_uri,omitempty"` // switch: new provenance

	// snapshot (RecSnapshot) only: the counter and ring state a full
	// image needs beyond the fields above — everything ApplyJournal
	// would otherwise have re-derived from the folded records. Events
	// carries the retained in-memory ring; EventSeq the total events
	// ever recorded (numbering stays gapless past truncation);
	// Deviations the counter an event rescan could no longer rebuild
	// once the ring dropped old phase-entered events. Pending carries a
	// change proposal awaiting the owner's decision; the phase-stat
	// fields mirror the incrementally maintained per-phase drill-down.
	EventSeq       int                      `json:"event_seq,omitempty"`
	TruncatedEvs   int                      `json:"truncated_events,omitempty"`
	Deviations     int                      `json:"deviations,omitempty"`
	Pending        *ChangeProposal          `json:"pending,omitempty"`
	PhaseEntered   map[string]int           `json:"phase_entered,omitempty"`
	PhaseResidence map[string]time.Duration `json:"phase_residence,omitempty"`
	ResidPhase     string                   `json:"resid_phase,omitempty"`
	ResidSince     time.Time                `json:"resid_since,omitempty"`
}

// journalLocked emits a record through the configured sink; callers
// hold the mutated instance's lock, which is what makes the journal's
// per-instance order equal the mutation order. A nil sink is a no-op.
//
// Failure semantics are fail-forward: the in-memory mutation has
// already been applied and is NOT rolled back (rollback of a composite
// mutation under concurrency would be worse than the disease); the
// caller surfaces the wrapped error, skips observer delivery and
// action dispatch, and the append-error counter feeds the admin
// endpoint. The one exception is Instantiate, which journals before
// publishing the instance and can therefore abort cleanly.
func (r *Runtime) journalLocked(rec *JournalRecord) error {
	if r.cfg.Journal == nil {
		return nil
	}
	if err := r.cfg.Journal.Record(rec); err != nil {
		r.journalErrors.Add(1)
		return fmt.Errorf("runtime: journal %s of %s: %w", rec.Op, rec.Instance, err)
	}
	r.journalAppends.Add(1)
	return nil
}

// mirrorState copies the instance's post-mutation token state into the
// record; callers hold in.mu.
func (rec *JournalRecord) mirrorState(in *instance) {
	rec.State = in.state
	rec.Current = in.current
	rec.CompletedAt = in.completedAt
}

// ---- replay --------------------------------------------------------------------

// ApplyJournal applies one persisted record during recovery — a
// mutation record, or the RecSnapshot image folding wrote. Records of
// one instance must arrive in journal order (snapshot first, then
// unfolded tail records — exactly what store.Instances.Replay
// streams), before the runtime serves any live mutation;
// FinishRecovery closes the replay and fixes the recovery stats.
// Calls for *different* instances may run concurrently — the sharded
// replay (store.Instances.ReplayParallel) relies on it: shared
// structures are guarded by their own shard/index locks or atomics.
// Records are applied without policy checks, action dispatch or
// observer delivery — the side effects already happened in the
// previous life of the process.
func (r *Runtime) ApplyJournal(id string, data []byte) error {
	var rec JournalRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("runtime: decode journal record for %s: %w", id, err)
	}
	if rec.Instance == "" {
		rec.Instance = id
	}
	r.recoveryOnce.Do(func() { r.recoveryStart = time.Now() })
	r.recoveredRecords.Add(1)
	switch rec.Op {
	case RecInstantiate:
		return r.replayInstantiate(&rec)
	case RecSnapshot:
		return r.replaySnapshot(&rec)
	case RecProbe:
		// Probes prove the append path while unhealthy; they carry no
		// state and replay drops them.
		return nil
	}
	in, ok := r.lookup(rec.Instance)
	if !ok {
		return fmt.Errorf("runtime: replay %s for unknown instance %s (missing instantiate record)", rec.Op, rec.Instance)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	switch rec.Op {
	case RecAdvance:
		return r.replayAdvance(in, &rec)
	case RecAnnotate:
		r.applyEvents(in, rec.Events)
	case RecBind:
		r.replayBind(in, &rec)
	case RecReport:
		return r.replayReport(in, &rec)
	case RecDispatchFail:
		return r.replayDispatchFail(in, &rec)
	case RecPropose:
		r.replayPropose(in, &rec)
	case RecAccept:
		return r.replayAccept(in, &rec)
	case RecReject:
		in.pending = nil
		r.applyEvents(in, rec.Events)
	case RecSwitch:
		return r.replaySwitch(in, &rec)
	default:
		return fmt.Errorf("runtime: replay unknown record op %q for %s", rec.Op, rec.Instance)
	}
	return nil
}

// applyEvents appends already-stamped events through the shared
// counter-maintaining path; callers hold in.mu (or own the instance).
func (r *Runtime) applyEvents(in *instance, evs []Event) {
	for _, ev := range evs {
		r.applyRecorded(in, ev)
	}
}

func (r *Runtime) replayInstantiate(rec *JournalRecord) error {
	if rec.Model == nil || rec.Resource == nil {
		return fmt.Errorf("runtime: instantiate record for %s missing model or resource", rec.Instance)
	}
	modelURI := rec.ModelURI
	if modelURI == "" {
		modelURI = rec.Model.URI
	}
	bindings := rec.Bindings
	if bindings == nil {
		bindings = make(map[string]map[string]string)
	}
	in := &instance{
		id:           rec.Instance,
		seq:          rec.Seq,
		model:        rec.Model, // decoded copy: the record owns it exclusively
		mcache:       buildModelCache(rec.Model),
		modelURI:     modelURI,
		res:          *rec.Resource,
		owner:        rec.Owner,
		state:        StateActive,
		createdAt:    rec.CreatedAt,
		instBindings: bindings,
		unresolved:   rec.Unresolved,
		executions:   make(map[string]*ActionExecution),
	}
	r.applyEvents(in, rec.Events)

	if r.publish(in) {
		return fmt.Errorf("%w: replayed instantiate for existing %s", ErrAlreadyExists, in.id)
	}
	r.byRes.add(in.res.URI, in)
	r.byModel.add(in.modelURI, in)
	bumpAtLeast(&r.nextInst, rec.Seq)
	return nil
}

func (r *Runtime) replayAdvance(in *instance, rec *JournalRecord) error {
	r.applyEvents(in, rec.Events)
	in.state = rec.State
	in.current = rec.Current
	in.completedAt = rec.CompletedAt
	for i := range rec.Executions {
		ex := rec.Executions[i]
		if _, dup := in.executions[ex.InvocationID]; dup {
			return fmt.Errorf("runtime: replay duplicate execution %s on %s", ex.InvocationID, in.id)
		}
		r.registerExecution(in, &ex)
	}
	return nil
}

// registerExecution installs one replayed execution on in — ordered
// map entry, the failed/pending counters, the callback-routing index,
// the invocation id counter, and retirement scheduling for terminal
// ones (the GC grace window restarts at replay time; a no-op when
// retention is disabled). Shared by record replay (replayAdvance) and
// snapshot replay so the two can never drift. Callers hold in.mu (or
// own the instance exclusively).
func (r *Runtime) registerExecution(in *instance, ex *ActionExecution) {
	in.executions[ex.InvocationID] = ex
	in.execOrder = append(in.execOrder, ex.InvocationID)
	switch {
	case ex.Terminal && ex.LastStatus == actionlib.StatusFailed:
		in.failedSteps++
	case !ex.Terminal && ex.DispatchErr == "":
		in.pendingInvs++
	}
	ish := r.invShardFor(ex.InvocationID)
	ish.mu.Lock()
	ish.m[ex.InvocationID] = in
	ish.mu.Unlock()
	bumpAtLeast(&r.nextInv, invSeq(ex.InvocationID))
	if ex.Terminal {
		r.invRetire(ex.InvocationID)
	}
}

func (r *Runtime) replayBind(in *instance, rec *JournalRecord) {
	if in.instBindings == nil {
		in.instBindings = make(map[string]map[string]string)
	}
	for uri, values := range rec.Bindings {
		vals := in.instBindings[uri]
		if vals == nil {
			vals = make(map[string]string, len(values))
			in.instBindings[uri] = vals
		}
		for k, v := range values {
			vals[k] = v
		}
	}
}

func (r *Runtime) replayReport(in *instance, rec *JournalRecord) error {
	exec, ok := in.executions[rec.Invocation]
	if !ok {
		return fmt.Errorf("runtime: replay report for unknown invocation %s on %s", rec.Invocation, in.id)
	}
	exec.LastStatus = rec.Status
	exec.LastDetail = rec.Detail
	exec.Updates++
	if rec.Terminal && !exec.Terminal {
		exec.Terminal = true
		in.pendingInvs--
		if rec.Status == actionlib.StatusFailed {
			in.failedSteps++
		}
	}
	r.applyEvents(in, rec.Events)
	if rec.Terminal {
		r.invRetire(rec.Invocation)
	}
	return nil
}

func (r *Runtime) replayDispatchFail(in *instance, rec *JournalRecord) error {
	exec, ok := in.executions[rec.Invocation]
	if !ok {
		return fmt.Errorf("runtime: replay dispatch failure for unknown invocation %s on %s", rec.Invocation, in.id)
	}
	if !exec.Terminal {
		exec.DispatchErr = rec.Detail
		exec.Terminal = true
		exec.LastStatus = actionlib.StatusFailed
		exec.LastDetail = rec.Detail
		in.pendingInvs--
		in.failedSteps++
	}
	r.applyEvents(in, rec.Events)
	r.invRetire(rec.Invocation)
	return nil
}

func (r *Runtime) replayPropose(in *instance, rec *JournalRecord) {
	in.pending = &ChangeProposal{
		ProposedBy: rec.Proposer,
		ProposedAt: rec.ProposedAt,
		Note:       rec.Note,
		NewModel:   rec.Model,
		Summary:    rec.DiffSummary,
	}
	r.applyEvents(in, rec.Events)
}

func (r *Runtime) replayAccept(in *instance, rec *JournalRecord) error {
	if in.pending == nil {
		return fmt.Errorf("%w: replayed accept on %s", ErrNoPending, in.id)
	}
	in.model = in.pending.NewModel
	in.mcache = buildModelCache(in.model)
	in.pending = nil
	in.state = rec.State
	in.current = rec.Current
	in.completedAt = rec.CompletedAt
	r.applyEvents(in, rec.Events)
	return nil
}

func (r *Runtime) replaySwitch(in *instance, rec *JournalRecord) error {
	if rec.Model == nil {
		return fmt.Errorf("runtime: switch record for %s missing model", in.id)
	}
	in.model = rec.Model
	in.mcache = buildModelCache(in.model)
	in.pending = nil
	in.state = rec.State
	in.current = rec.Current
	in.completedAt = rec.CompletedAt
	if rec.ModelURI != "" && rec.ModelURI != in.modelURI {
		r.byModel.remove(in.modelURI, in)
		in.modelURI = rec.ModelURI
		r.byModel.add(in.modelURI, in)
	}
	r.applyEvents(in, rec.Events)
	return nil
}

// bumpAtLeast raises a monotonic id counter to at least n, so ids
// allocated after recovery never collide with replayed ones.
func bumpAtLeast(c *atomic.Int64, n int64) {
	for {
		cur := c.Load()
		if cur >= n || c.CompareAndSwap(cur, n) {
			return
		}
	}
}

// invSeq parses the numeric suffix of an "inv-NNNNNN" invocation id; 0
// when the id has a foreign shape.
func invSeq(id string) int64 {
	s, ok := strings.CutPrefix(id, "inv-")
	if !ok {
		return 0
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// RecoveryStats summarizes a completed replay.
type RecoveryStats struct {
	// Records is the number of journal records applied.
	Records int64 `json:"records"`
	// Instances is the recovered instance population.
	Instances int `json:"instances"`
	// Events counts every replayed event (including any immediately
	// ring-truncated back out of memory).
	Events int64 `json:"events"`
	// Executions counts recovered action executions.
	Executions int64 `json:"executions"`
	// Elapsed is the wall-clock replay time in nanoseconds.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// FinishRecovery closes a replay: it derives the recovery stats served
// by RuntimeStats and returns them. Call it exactly once, after the
// last ApplyJournal and before the runtime serves live traffic; a
// runtime that never replayed reports zeros.
func (r *Runtime) FinishRecovery() RecoveryStats {
	st := RecoveryStats{
		Records: r.recoveredRecords.Load(),
		Events:  r.totalEvents.Load(),
	}
	for _, sh := range r.shards {
		sh.mu.RLock()
		st.Instances += len(sh.instances)
		for _, in := range sh.instances {
			in.mu.Lock()
			st.Executions += int64(len(in.execOrder))
			in.mu.Unlock()
		}
		sh.mu.RUnlock()
	}
	if !r.recoveryStart.IsZero() {
		st.Elapsed = time.Since(r.recoveryStart)
	}
	r.recovery = st
	return st
}
