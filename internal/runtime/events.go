package runtime

// EventPage is a window of one instance's event history, served without
// copying anything beyond the requested page — the backing store of the
// HTTP tier's paged timeline.
type EventPage struct {
	// Events is the page, in ascending Seq order. Empty when the cursor
	// is at or past the tail.
	Events []Event `json:"events"`
	// Total is the number of events ever recorded (the tail Seq),
	// including any truncated out of memory.
	Total int `json:"total"`
	// OldestSeq is the Seq of the oldest event still in memory — 1 when
	// nothing was truncated, 0 when the instance has no events at all.
	OldestSeq int `json:"oldest_seq"`
	// Truncated reports that the requested range began before OldestSeq
	// and part of it could not be served: the returned page starts at
	// the oldest event available. The facade's log-backed timeline
	// clears this flag when it backfills the ring-truncated prefix from
	// the journaled execution log.
	Truncated bool `json:"truncated"`
	// Backfilled counts events in this page that were read back from
	// the journaled execution log rather than the in-memory ring (0 on
	// pages served straight from the runtime).
	Backfilled int `json:"backfilled,omitempty"`
}

// Events returns a page of the instance's history: events with
// Seq > after, at most limit of them (limit <= 0 means no bound). When
// ring truncation has dropped part of the requested range, the page
// starts at the oldest retained event and Truncated is set. The second
// return is false when the instance does not exist.
func (r *Runtime) Events(id string, after, limit int) (EventPage, bool) {
	in, ok := r.lookup(id)
	if !ok {
		return EventPage{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	page := EventPage{Total: in.eventSeq}
	if len(in.events) > 0 {
		page.OldestSeq = in.truncatedEvs + 1
	}
	if after < 0 {
		after = 0
	}
	if after < in.truncatedEvs {
		// Part of the requested range was truncated away; resume at the
		// oldest event still retained and say so.
		page.Truncated = true
		after = in.truncatedEvs
	}
	idx := after - in.truncatedEvs // index of the first wanted event
	if idx >= len(in.events) {
		return page, true
	}
	end := len(in.events)
	if limit > 0 && idx+limit < end {
		end = idx + limit
	}
	page.Events = append([]Event(nil), in.events[idx:end]...)
	return page, true
}
