package runtime

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/vclock"
)

// testActions builds a registry with the Fig. 1 action types implemented
// for the "mediawiki" and "gdoc" resource types.
func testActions(t testing.TB) *actionlib.Registry {
	t.Helper()
	reg := actionlib.NewRegistry()
	types := []actionlib.ActionType{
		{URI: "http://www.liquidpub.org/a/chr", Name: "Change Access Rights",
			Params: []core.Param{{ID: "mode", BindingTime: core.BindAny, Required: true}}},
		{URI: "http://www.liquidpub.org/a/notify", Name: "Notify Reviewers",
			Params: []core.Param{{ID: "reviewers", BindingTime: core.BindInstantiation, Required: true}}},
		{URI: "http://www.liquidpub.org/a/pdf", Name: "Generate PDF"},
		{URI: "http://www.liquidpub.org/a/post", Name: "Post On Web Site",
			Params: []core.Param{{ID: "site", BindingTime: core.BindCall, Required: true}}},
	}
	for _, at := range types {
		if err := reg.RegisterType(at); err != nil {
			t.Fatal(err)
		}
		for _, rt := range []string{"mediawiki", "gdoc"} {
			err := reg.RegisterImplementation(actionlib.Implementation{
				TypeURI: at.URI, ResourceType: rt,
				Endpoint: "local://" + rt + strings.TrimPrefix(at.URI, "http://www.liquidpub.org"),
				Protocol: actionlib.ProtocolLocal,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return reg
}

// fig1 is the paper's Fig. 1 model (same shape as in package core tests).
func fig1(t testing.TB) *core.Model {
	t.Helper()
	m, err := core.NewModel("urn:gelee:models:eu-deliverable", "EU Project deliverable lifecycle").
		Version("1.0", "lpAdmin", time.Date(2008, 7, 8, 0, 0, 0, 0, time.UTC)).
		Phase("elaboration", "Elaboration").DueIn(10*24*time.Hour).Done().
		Phase("internalreview", "Internal Review").
		Action("http://www.liquidpub.org/a/chr", "Change access rights",
			core.Param{ID: "mode", Value: "reviewers-only", BindingTime: core.BindAny}).
		Action("http://www.liquidpub.org/a/notify", "Notify reviewers",
			core.Param{ID: "reviewers", BindingTime: core.BindInstantiation, Required: true}).
		Done().
		Phase("finalassembly", "Final Assembly").
		Action("http://www.liquidpub.org/a/pdf", "Generate PDF").
		Done().
		Phase("eureview", "EU Review").Done().
		Phase("publication", "Publication").
		Action("http://www.liquidpub.org/a/post", "Post on web site",
			core.Param{ID: "site", BindingTime: core.BindCall, Required: true}).
		Done().
		FinalPhase("accepted", "Accepted").
		FinalPhase("rejected", "Rejected").
		Initial("elaboration").
		Chain("elaboration", "internalreview", "finalassembly", "eureview", "publication", "accepted").
		Transition("internalreview", "elaboration").
		Transition("eureview", "rejected").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// recordingInvoker captures invocations and immediately reports the
// given terminal status through the runtime (synchronous round trip).
type recordingInvoker struct {
	mu     sync.Mutex
	rt     *Runtime
	status string // reported back; empty = no callback
	calls  []actionlib.Invocation
	fail   map[string]bool // action URIs whose dispatch should error
}

func (ri *recordingInvoker) Invoke(_ context.Context, inv actionlib.Invocation) error {
	ri.mu.Lock()
	ri.calls = append(ri.calls, inv)
	shouldFail := ri.fail[inv.TypeURI]
	ri.mu.Unlock()
	if shouldFail {
		return fmt.Errorf("endpoint %s unreachable", inv.Endpoint)
	}
	if ri.status != "" && ri.rt != nil {
		return ri.rt.Report(actionlib.StatusUpdate{InvocationID: inv.ID, Message: ri.status})
	}
	return nil
}

func (ri *recordingInvoker) invocations() []actionlib.Invocation {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	return append([]actionlib.Invocation(nil), ri.calls...)
}

type env struct {
	rt    *Runtime
	inv   *recordingInvoker
	clock *vclock.Fake
}

func newEnv(t testing.TB) *env {
	t.Helper()
	inv := &recordingInvoker{status: actionlib.StatusCompleted}
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	rt, err := New(Config{
		Registry:    testActions(t),
		Invoker:     inv,
		Clock:       clock,
		SyncActions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	inv.rt = rt
	return &env{rt: rt, inv: inv, clock: clock}
}

func wikiRef() resource.Ref {
	return resource.Ref{URI: "http://wiki.liquidpub.org/D1.1", Type: "mediawiki"}
}

func (e *env) instantiate(t testing.TB) Snapshot {
	t.Helper()
	snap, err := e.rt.Instantiate(fig1(t), wikiRef(), "owner",
		map[string]map[string]string{
			"http://www.liquidpub.org/a/notify": {"reviewers": "alice,bob"},
		})
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestInstantiate(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	if snap.State != StateActive {
		t.Fatalf("state = %s", snap.State)
	}
	if snap.Current != "" {
		t.Fatalf("token should start at BEGIN, got %q", snap.Current)
	}
	if got := snap.NextSuggested(); len(got) != 1 || got[0] != "elaboration" {
		t.Fatalf("NextSuggested = %v", got)
	}
	if len(snap.Events) != 1 || snap.Events[0].Kind != EventCreated {
		t.Fatalf("events = %+v", snap.Events)
	}
	if len(snap.Unresolved) != 0 {
		t.Fatalf("unresolved = %v, want none (all actions implemented)", snap.Unresolved)
	}
}

func TestInstantiateChecksModelAndRef(t *testing.T) {
	e := newEnv(t)
	if _, err := e.rt.Instantiate(nil, wikiRef(), "o", nil); err == nil {
		t.Fatal("nil model accepted")
	}
	bad := &core.Model{Name: "no phases"}
	if _, err := e.rt.Instantiate(bad, wikiRef(), "o", nil); err == nil {
		t.Fatal("invalid model accepted")
	}
	if _, err := e.rt.Instantiate(fig1(t), resource.Ref{}, "o", nil); err == nil {
		t.Fatal("invalid ref accepted")
	}
}

func TestInstantiateRejectsWrongStageBindings(t *testing.T) {
	e := newEnv(t)
	// "site" is call-bound; supplying it at instantiation must fail.
	_, err := e.rt.Instantiate(fig1(t), wikiRef(), "o",
		map[string]map[string]string{
			"http://www.liquidpub.org/a/post": {"site": "too-early"},
		})
	var be *actionlib.BindingError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BindingError", err)
	}
}

func TestLightCouplingModelEditsDoNotLeak(t *testing.T) {
	e := newEnv(t)
	m := fig1(t)
	snap, err := e.rt.Instantiate(m, wikiRef(), "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Designer mutates the shared model object after instantiation.
	m.Phases[0].Name = "Hacked"
	m.Phases = m.Phases[:3]
	got, _ := e.rt.Instance(snap.ID)
	if p, _ := got.Model.Phase("elaboration"); p.Name != "Elaboration" {
		t.Fatalf("instance saw designer edit: %q", p.Name)
	}
	if len(got.Model.Phases) != 7 {
		t.Fatalf("instance lost phases: %d", len(got.Model.Phases))
	}
}

func TestAdvanceHappyPath(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID

	steps := []string{"elaboration", "internalreview", "finalassembly", "eureview", "publication"}
	for _, phase := range steps {
		var err error
		snap, err = e.rt.Advance(id, phase, "owner", AdvanceOptions{
			CallBindings: map[string]map[string]string{
				"http://www.liquidpub.org/a/post": {"site": "http://project.liquidpub.org"},
			},
		})
		if err != nil {
			t.Fatalf("Advance(%s): %v", phase, err)
		}
		if snap.Current != phase {
			t.Fatalf("current = %q, want %q", snap.Current, phase)
		}
		if snap.State != StateActive {
			t.Fatalf("state after %s = %s", phase, snap.State)
		}
	}
	// None of the suggested moves is a deviation.
	for _, ev := range snap.Events {
		if ev.Kind == EventPhaseEntered && ev.Deviation {
			t.Fatalf("suggested move flagged as deviation: %+v", ev)
		}
	}
	// Finish.
	snap, err := e.rt.Advance(id, "accepted", "owner", AdvanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateCompleted {
		t.Fatalf("state = %s, want completed (end phase reached)", snap.State)
	}
	if snap.CompletedAt.IsZero() {
		t.Fatal("CompletedAt not stamped")
	}

	// Actions dispatched: 2 (internalreview) + 1 (finalassembly) + 1 (publication).
	invs := e.inv.invocations()
	if len(invs) != 4 {
		t.Fatalf("dispatched %d invocations, want 4: %+v", len(invs), invs)
	}
	// Every invocation carries the resource link and a callback URI (§IV.C).
	for _, inv := range invs {
		if inv.ResourceURI != wikiRef().URI {
			t.Errorf("invocation %s missing resource link: %+v", inv.ID, inv)
		}
		if inv.CallbackURI == "" {
			t.Errorf("invocation %s has no callback URI", inv.ID)
		}
	}
	// All executions terminal-completed via the callback round trip.
	got, _ := e.rt.Instance(id)
	if len(got.Executions) != 4 {
		t.Fatalf("executions = %d", len(got.Executions))
	}
	for _, ex := range got.Executions {
		if !ex.Terminal || ex.LastStatus != actionlib.StatusCompleted {
			t.Fatalf("execution %+v not completed", ex)
		}
	}
}

func TestAdvanceResolvesInstantiationParams(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	if _, err := e.rt.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rt.Advance(snap.ID, "internalreview", "owner", AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	var notify *actionlib.Invocation
	for _, inv := range e.inv.invocations() {
		if inv.TypeURI == "http://www.liquidpub.org/a/notify" {
			nv := inv
			notify = &nv
		}
	}
	if notify == nil {
		t.Fatal("notify action not dispatched")
	}
	if notify.Params["reviewers"] != "alice,bob" {
		t.Fatalf("instantiation-time binding lost: %v", notify.Params)
	}
}

func TestAdvanceUnknownPhase(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	_, err := e.rt.Advance(snap.ID, "ghost-phase", "owner", AdvanceOptions{})
	if !errors.Is(err, ErrUnknownPhase) {
		t.Fatalf("err = %v, want ErrUnknownPhase", err)
	}
	if _, err := e.rt.Advance("li-999999", "elaboration", "owner", AdvanceOptions{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestDeviationFlaggedAndAnnotated(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID
	if _, err := e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	// Skip straight to eureview — not a suggested transition.
	snap, err := e.rt.Advance(id, "eureview", "owner", AdvanceOptions{
		Annotation: "internal review skipped: deadline pressure",
	})
	if err != nil {
		t.Fatalf("free move rejected: %v", err)
	}
	var entered *Event
	for i := range snap.Events {
		if snap.Events[i].Kind == EventPhaseEntered && snap.Events[i].Phase == "eureview" {
			entered = &snap.Events[i]
		}
	}
	if entered == nil {
		t.Fatal("phase-entered event missing")
	}
	if !entered.Deviation {
		t.Fatal("deviation not flagged")
	}
	if !strings.Contains(entered.Detail, "deadline pressure") {
		t.Fatalf("annotation lost: %+v", entered)
	}
	if entered.FromPhase != "elaboration" {
		t.Fatalf("FromPhase = %q", entered.FromPhase)
	}
}

func TestBackwardMoveIsSuggestedIteration(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID
	e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{})
	e.rt.Advance(id, "internalreview", "owner", AdvanceOptions{})
	// internalreview -> elaboration is a declared iteration loop.
	snap, err := e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	last := snap.Events[len(snap.Events)-1]
	if last.Kind != EventPhaseEntered || last.Deviation {
		t.Fatalf("iteration loop flagged as deviation: %+v", last)
	}
}

func TestReopeningCompletedInstance(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID
	e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{})
	snap, err := e.rt.Advance(id, "rejected", "owner", AdvanceOptions{Annotation: "EU rejected"})
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateCompleted {
		t.Fatal("not completed after reaching terminal node")
	}
	// The work continues — "Very often, the work on the document
	// continues" (§II.A). Owner moves the token back out.
	snap, err = e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{Annotation: "rework for journal"})
	if err != nil {
		t.Fatalf("reopen rejected: %v", err)
	}
	if snap.State != StateActive {
		t.Fatalf("state = %s after reopen", snap.State)
	}
	var reopened bool
	for _, ev := range snap.Events {
		if ev.Kind == EventReopened {
			reopened = true
		}
	}
	if !reopened {
		t.Fatal("reopened event missing")
	}
}

func TestFinalPhaseDispatchesNoActions(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	e.rt.Advance(snap.ID, "accepted", "owner", AdvanceOptions{})
	if got := len(e.inv.invocations()); got != 0 {
		t.Fatalf("end phase dispatched %d actions", got)
	}
}

func TestActionDispatchFailureDoesNotBlockLifecycle(t *testing.T) {
	e := newEnv(t)
	e.inv.fail = map[string]bool{"http://www.liquidpub.org/a/pdf": true}
	snap := e.instantiate(t)
	id := snap.ID
	e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{})
	e.rt.Advance(id, "internalreview", "owner", AdvanceOptions{})
	snap, err := e.rt.Advance(id, "finalassembly", "owner", AdvanceOptions{})
	if err != nil {
		t.Fatalf("Advance must succeed even when an action fails: %v", err)
	}
	got, _ := e.rt.Instance(id)
	var pdf *ActionExecution
	for i := range got.Executions {
		if got.Executions[i].ActionURI == "http://www.liquidpub.org/a/pdf" {
			pdf = &got.Executions[i]
		}
	}
	if pdf == nil || !pdf.Terminal || pdf.LastStatus != actionlib.StatusFailed {
		t.Fatalf("failed dispatch not recorded: %+v", pdf)
	}
	if pdf.DispatchErr == "" {
		t.Fatal("DispatchErr empty")
	}
	// Lifecycle proceeds regardless — no transactional semantics.
	if _, err := e.rt.Advance(id, "eureview", "owner", AdvanceOptions{}); err != nil {
		t.Fatalf("lifecycle blocked by failed action: %v", err)
	}
}

func TestMissingImplementationFailsActionNotLifecycle(t *testing.T) {
	e := newEnv(t)
	// A resource type nobody implements actions for.
	ref := resource.Ref{URI: "svn://repo/trunk", Type: "svn"}
	snap, err := e.rt.Instantiate(fig1(t), ref, "owner",
		map[string]map[string]string{
			"http://www.liquidpub.org/a/notify": {"reviewers": "alice"},
		})
	if err != nil {
		t.Fatalf("universality broken: instantiation refused: %v", err)
	}
	if len(snap.Unresolved) != 4 {
		t.Fatalf("unresolved = %v, want all four action types", snap.Unresolved)
	}
	e.rt.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{})
	got, err := e.rt.Advance(snap.ID, "internalreview", "owner", AdvanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range got.Executions {
		if ex.LastStatus != actionlib.StatusFailed {
			t.Fatalf("unimplemented action should fail: %+v", ex)
		}
	}
	if got.State != StateActive || got.Current != "internalreview" {
		t.Fatal("lifecycle did not proceed past failed actions")
	}
}

func TestMissingRequiredCallParamFailsAction(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID
	e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{})
	// Enter publication without binding the required call-time "site".
	got, err := e.rt.Advance(id, "publication", "owner", AdvanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var post *ActionExecution
	for i := range got.Executions {
		if got.Executions[i].ActionURI == "http://www.liquidpub.org/a/post" {
			post = &got.Executions[i]
		}
	}
	if post == nil || post.LastStatus != actionlib.StatusFailed {
		t.Fatalf("unbound required call param should fail the action: %+v", post)
	}
	if !strings.Contains(post.LastDetail, "site") {
		t.Fatalf("failure detail should name the missing param: %+v", post)
	}
}

func TestReportStatusUpdates(t *testing.T) {
	e := newEnv(t)
	e.inv.status = "" // no auto-callback; we drive them by hand
	snap := e.instantiate(t)
	id := snap.ID
	e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{})
	e.rt.Advance(id, "internalreview", "owner", AdvanceOptions{})
	invs := e.inv.invocations()
	if len(invs) != 2 {
		t.Fatalf("invocations = %d", len(invs))
	}
	target := invs[0].ID

	// Informational update first (§IV.C: periodic status during execution).
	if err := e.rt.Report(actionlib.StatusUpdate{InvocationID: target, Message: "progress 40%", Detail: "rights updated for 2 of 5 users"}); err != nil {
		t.Fatal(err)
	}
	got, _ := e.rt.Instance(id)
	ex := findExec(t, got, target)
	if ex.Terminal || ex.LastStatus != "progress 40%" || ex.Updates != 1 {
		t.Fatalf("after info update: %+v", ex)
	}

	// Terminal completion.
	if err := e.rt.Report(actionlib.StatusUpdate{InvocationID: target, Message: actionlib.StatusCompleted}); err != nil {
		t.Fatal(err)
	}
	got, _ = e.rt.Instance(id)
	ex = findExec(t, got, target)
	if !ex.Terminal || ex.LastStatus != actionlib.StatusCompleted {
		t.Fatalf("after completion: %+v", ex)
	}

	// Late duplicate callback is ignored, not an error.
	if err := e.rt.Report(actionlib.StatusUpdate{InvocationID: target, Message: actionlib.StatusFailed}); err != nil {
		t.Fatal(err)
	}
	got, _ = e.rt.Instance(id)
	ex = findExec(t, got, target)
	if ex.LastStatus != actionlib.StatusCompleted {
		t.Fatalf("late callback mutated a terminal execution: %+v", ex)
	}

	// Unknown invocation id is an error.
	if err := e.rt.Report(actionlib.StatusUpdate{InvocationID: "inv-404404"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func findExec(t *testing.T, snap Snapshot, invID string) ActionExecution {
	t.Helper()
	for _, ex := range snap.Executions {
		if ex.InvocationID == invID {
			return ex
		}
	}
	t.Fatalf("execution %s not found", invID)
	return ActionExecution{}
}

func TestAnnotate(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	if err := e.rt.Annotate(snap.ID, "owner", "waiting for partner input"); err != nil {
		t.Fatal(err)
	}
	got, _ := e.rt.Instance(snap.ID)
	last := got.Events[len(got.Events)-1]
	if last.Kind != EventAnnotated || last.Detail != "waiting for partner input" {
		t.Fatalf("annotation event = %+v", last)
	}
	if err := e.rt.Annotate("li-000999", "owner", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestBindParamsAfterCreation(t *testing.T) {
	e := newEnv(t)
	// Instantiate WITHOUT the required reviewers binding.
	snap, err := e.rt.Instantiate(fig1(t), wikiRef(), "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	id := snap.ID
	// Owner decides the reviewers later, before entering the phase —
	// "decide who the reviewers are on the fly" (§I).
	if err := e.rt.BindParams(id, "owner", "http://www.liquidpub.org/a/notify",
		map[string]string{"reviewers": "carol,dan"}); err != nil {
		t.Fatal(err)
	}
	e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{})
	e.rt.Advance(id, "internalreview", "owner", AdvanceOptions{})
	var notify *actionlib.Invocation
	for _, inv := range e.inv.invocations() {
		if inv.TypeURI == "http://www.liquidpub.org/a/notify" {
			nv := inv
			notify = &nv
		}
	}
	if notify == nil || notify.Params["reviewers"] != "carol,dan" {
		t.Fatalf("late binding lost: %+v", notify)
	}
	// Binding an action the model does not reference fails.
	if err := e.rt.BindParams(id, "owner", "urn:ghost", map[string]string{"x": "1"}); err == nil {
		t.Fatal("binding unknown action accepted")
	}
	// Binding a call-only param at inst stage fails.
	if err := e.rt.BindParams(id, "owner", "http://www.liquidpub.org/a/post",
		map[string]string{"site": "early"}); err == nil {
		t.Fatal("call-only param bound at inst stage")
	}
}

func TestMultipleInstancesSameURI(t *testing.T) {
	// §IV.B: "nothing prevents several lifecycle instances on the same
	// URI to be running".
	e := newEnv(t)
	a := e.instantiate(t)
	b := e.instantiate(t)
	if a.ID == b.ID {
		t.Fatal("duplicate instance ids")
	}
	byRes := e.rt.ByResource(wikiRef().URI)
	if len(byRes) != 2 {
		t.Fatalf("ByResource = %d instances, want 2", len(byRes))
	}
	e.rt.Advance(a.ID, "elaboration", "owner", AdvanceOptions{})
	ga, _ := e.rt.Instance(a.ID)
	gb, _ := e.rt.Instance(b.ID)
	if ga.Current == gb.Current {
		t.Fatal("instances share token state")
	}
	if got := e.rt.ByModelURI("urn:gelee:models:eu-deliverable"); len(got) != 2 {
		t.Fatalf("ByModelURI = %d", len(got))
	}
	if got := e.rt.Instances(); len(got) != 2 {
		t.Fatalf("Instances = %d", len(got))
	}
}

func TestDeadlines(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID
	e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{})
	got, _ := e.rt.Instance(id)
	due := got.DueAt("elaboration")
	if due.IsZero() {
		t.Fatal("elaboration deadline missing")
	}
	if got.Late(e.clock.Now()) {
		t.Fatal("instance late immediately")
	}
	e.clock.Advance(11 * 24 * time.Hour)
	got, _ = e.rt.Instance(id)
	if !got.Late(e.clock.Now()) {
		t.Fatal("instance not late after deadline passed")
	}
	// Completed instances are never late.
	e.rt.Advance(id, "accepted", "owner", AdvanceOptions{})
	got, _ = e.rt.Instance(id)
	if got.Late(e.clock.Now()) {
		t.Fatal("completed instance reported late")
	}
}

func TestObserverSeesEveryEvent(t *testing.T) {
	var mu sync.Mutex
	var seen []Event
	inv := &recordingInvoker{status: actionlib.StatusCompleted}
	rt, err := New(Config{
		Registry:    testActions(t),
		Invoker:     inv,
		SyncActions: true,
		Observer: func(id string, ev Event) {
			mu.Lock()
			seen = append(seen, ev)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	inv.rt = rt
	snap, err := rt.Instantiate(fig1(t), wikiRef(), "owner",
		map[string]map[string]string{"http://www.liquidpub.org/a/notify": {"reviewers": "a"}})
	if err != nil {
		t.Fatal(err)
	}
	rt.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{})
	rt.Advance(snap.ID, "internalreview", "owner", AdvanceOptions{})
	got, _ := rt.Instance(snap.ID)

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(got.Events) {
		t.Fatalf("observer saw %d events, instance has %d", len(seen), len(got.Events))
	}
	for i := range seen {
		if seen[i].Seq != got.Events[i].Seq || seen[i].Kind != got.Events[i].Kind {
			t.Fatalf("observer order diverged at %d: %+v vs %+v", i, seen[i], got.Events[i])
		}
	}
}

func TestAsyncDispatchParallelism(t *testing.T) {
	// With SyncActions off, all actions of a phase must be dispatched
	// without waiting for each other.
	var mu sync.Mutex
	started := make(chan struct{})
	release := make(chan struct{})
	var order []string
	inv := InvokerFunc(func(_ context.Context, in actionlib.Invocation) error {
		mu.Lock()
		order = append(order, in.TypeURI)
		n := len(order)
		mu.Unlock()
		if n == 1 {
			close(started)
			<-release // first action blocks until the second has run
		}
		if n == 2 {
			close(release)
		}
		return nil
	})
	rt, err := New(Config{Registry: testActions(t), Invoker: inv})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := rt.Instantiate(fig1(t), wikiRef(), "owner",
		map[string]map[string]string{"http://www.liquidpub.org/a/notify": {"reviewers": "a"}})
	if err != nil {
		t.Fatal(err)
	}
	rt.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{})
	if _, err := rt.Advance(snap.ID, "internalreview", "owner", AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { rt.WaitDispatch(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("parallel dispatch deadlocked: actions were serialized")
	}
	<-started
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 {
		t.Fatalf("dispatched %d actions, want 2", len(order))
	}
}

func TestPolicyEnforcement(t *testing.T) {
	// A policy modeling §IV.D: "owner" drives; "dev" is a token owner
	// restricted to internalreview; everyone else nothing.
	policy := policyFunc{
		drive: func(actor, inst string) bool { return actor == "owner" },
		follow: func(actor, inst, target string) bool {
			return actor == "owner" || (actor == "dev" && target == "internalreview")
		},
	}
	inv := &recordingInvoker{status: actionlib.StatusCompleted}
	rt, err := New(Config{Registry: testActions(t), Invoker: inv, SyncActions: true, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	inv.rt = rt
	snap, err := rt.Instantiate(fig1(t), wikiRef(), "owner",
		map[string]map[string]string{"http://www.liquidpub.org/a/notify": {"reviewers": "a"}})
	if err != nil {
		t.Fatal(err)
	}
	id := snap.ID
	if _, err := rt.Advance(id, "elaboration", "owner", AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	// dev may follow the suggested transition into internalreview.
	if _, err := rt.Advance(id, "internalreview", "dev", AdvanceOptions{}); err != nil {
		t.Fatalf("token owner blocked on granted transition: %v", err)
	}
	// dev may NOT deviate.
	if _, err := rt.Advance(id, "publication", "dev", AdvanceOptions{}); !errors.Is(err, ErrForbidden) {
		t.Fatalf("err = %v, want ErrForbidden (deviation is owner-only)", err)
	}
	// dev may not follow other suggested transitions either.
	if _, err := rt.Advance(id, "finalassembly", "dev", AdvanceOptions{}); !errors.Is(err, ErrForbidden) {
		t.Fatalf("err = %v, want ErrForbidden", err)
	}
	// stranger can do nothing.
	if err := rt.Annotate(id, "stranger", "hi"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("err = %v, want ErrForbidden", err)
	}
	if err := rt.BindParams(id, "stranger", "http://www.liquidpub.org/a/notify", map[string]string{"reviewers": "x"}); !errors.Is(err, ErrForbidden) {
		t.Fatalf("err = %v, want ErrForbidden", err)
	}
}

type policyFunc struct {
	drive  func(actor, inst string) bool
	follow func(actor, inst, target string) bool
}

func (p policyFunc) CanDrive(actor, inst string) bool          { return p.drive(actor, inst) }
func (p policyFunc) CanFollow(actor, inst, target string) bool { return p.follow(actor, inst, target) }

func TestNewRequiresRegistry(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a config without registry")
	}
}
