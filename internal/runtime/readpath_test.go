package runtime

// Tests for the copy-free read path: event paging, ring truncation,
// summary-mode mutation results, incremental counters, and
// invocation-index GC.

import (
	"fmt"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/vclock"
)

// newEnvWithConfig builds the standard test env with read-path knobs.
func newEnvWithConfig(t testing.TB, mutate func(*Config)) *env {
	t.Helper()
	inv := &recordingInvoker{status: actionlib.StatusCompleted}
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	cfg := Config{
		Registry:    testActions(t),
		Invoker:     inv,
		Clock:       clock,
		SyncActions: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inv.rt = rt
	return &env{rt: rt, inv: inv, clock: clock}
}

// annotateN appends n annotation events.
func annotateN(t testing.TB, rt *Runtime, id string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := rt.Annotate(id, "owner", fmt.Sprintf("note %d", i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEventsPaging(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID
	annotateN(t, e.rt, id, 9) // created + 9 = 10 events, seqs 1..10

	// Full read from the start.
	page, ok := e.rt.Events(id, 0, 0)
	if !ok {
		t.Fatal("instance missing")
	}
	if len(page.Events) != 10 || page.Total != 10 || page.OldestSeq != 1 || page.Truncated {
		t.Fatalf("full page = %d events, total=%d oldest=%d truncated=%t",
			len(page.Events), page.Total, page.OldestSeq, page.Truncated)
	}
	for i, ev := range page.Events {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}

	// Cursor in the middle, bounded limit.
	page, _ = e.rt.Events(id, 4, 3)
	if len(page.Events) != 3 || page.Events[0].Seq != 5 || page.Events[2].Seq != 7 {
		t.Fatalf("page after=4 limit=3 = %+v", page.Events)
	}

	// limit=0 means unbounded remainder.
	page, _ = e.rt.Events(id, 7, 0)
	if len(page.Events) != 3 || page.Events[0].Seq != 8 {
		t.Fatalf("page after=7 limit=0 = %+v", page.Events)
	}

	// after at the tail and beyond it: empty page, not an error.
	for _, after := range []int{10, 11, 1000} {
		page, ok = e.rt.Events(id, after, 5)
		if !ok || len(page.Events) != 0 || page.Total != 10 {
			t.Fatalf("after=%d: ok=%t events=%d total=%d", after, ok, len(page.Events), page.Total)
		}
	}

	// Negative after behaves like 0.
	page, _ = e.rt.Events(id, -3, 2)
	if len(page.Events) != 2 || page.Events[0].Seq != 1 {
		t.Fatalf("negative after = %+v", page.Events)
	}

	// Unknown instance.
	if _, ok := e.rt.Events("ghost", 0, 0); ok {
		t.Fatal("page for missing instance")
	}
}

func TestEventTruncationRing(t *testing.T) {
	const max = 20
	e := newEnvWithConfig(t, func(c *Config) { c.MaxEventsInMemory = max })
	snap := e.instantiate(t)
	id := snap.ID
	annotateN(t, e.rt, id, 99) // 100 events total, seqs 1..100

	sum, _ := e.rt.Summary(id)
	if sum.Events != 100 {
		t.Fatalf("summary events = %d, want 100 (total, not retained)", sum.Events)
	}
	if sum.TruncatedEvents == 0 {
		t.Fatal("no events truncated at 5x the cap")
	}

	// The ring retains between max and 1.25*max events, ending at the
	// tail with gapless seqs.
	got, _ := e.rt.Instance(id)
	if n := len(got.Events); n < max || n > max+max/4 {
		t.Fatalf("retained %d events, want within [%d, %d]", n, max, max+max/4)
	}
	last := got.Events[len(got.Events)-1]
	if last.Seq != 100 {
		t.Fatalf("tail seq = %d", last.Seq)
	}
	for i := 1; i < len(got.Events); i++ {
		if got.Events[i].Seq != got.Events[i-1].Seq+1 {
			t.Fatalf("retained window has a gap at %d", i)
		}
	}
	oldest := got.Events[0].Seq
	if oldest != sum.TruncatedEvents+1 {
		t.Fatalf("oldest retained seq %d != truncated+1 (%d)", oldest, sum.TruncatedEvents+1)
	}

	// A paged read into the truncated prefix starts at the ring's
	// oldest retained seq and says so.
	page, _ := e.rt.Events(id, 0, 5)
	if !page.Truncated {
		t.Fatal("read into truncated prefix not flagged")
	}
	if page.OldestSeq != oldest || len(page.Events) == 0 || page.Events[0].Seq != oldest {
		t.Fatalf("page oldest=%d first=%d, want both %d", page.OldestSeq, page.Events[0].Seq, oldest)
	}
	if page.Total != 100 {
		t.Fatalf("page total = %d", page.Total)
	}

	// Reads entirely within the retained window are not flagged.
	page, _ = e.rt.Events(id, oldest-1, 5)
	if page.Truncated {
		t.Fatal("in-window read flagged truncated")
	}
	if page.Events[0].Seq != oldest {
		t.Fatalf("in-window first seq = %d", page.Events[0].Seq)
	}

	// Runtime-wide counters agree.
	st := e.rt.RuntimeStats()
	if st.EventsTruncated == 0 || st.EventsInMemory != int64(len(got.Events)) {
		t.Fatalf("stats truncated=%d in-memory=%d, retained=%d",
			st.EventsTruncated, st.EventsInMemory, len(got.Events))
	}
}

// TestTruncationPreservesAggregates is the acceptance-criterion guard:
// the same workload with and without ring truncation yields identical
// summaries (and therefore identical cockpit aggregates), because the
// counters are incremental, not recomputed from history.
func TestTruncationPreservesAggregates(t *testing.T) {
	run := func(maxEvents int) []Summary {
		e := newEnvWithConfig(t, func(c *Config) { c.MaxEventsInMemory = maxEvents })
		for i := 0; i < 6; i++ {
			snap, err := e.rt.Instantiate(fig1(t), wikiRef(), "owner",
				map[string]map[string]string{
					"http://www.liquidpub.org/a/notify": {"reviewers": "alice"},
				})
			if err != nil {
				t.Fatal(err)
			}
			// A deviation, a reopen cycle, action phases and annotations:
			// every counter moves.
			e.rt.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{})
			e.rt.Advance(snap.ID, "eureview", "owner", AdvanceOptions{Annotation: "deviate"})
			annotateN(t, e.rt, snap.ID, 30)
			e.rt.Advance(snap.ID, "internalreview", "owner", AdvanceOptions{})
			if i%2 == 0 {
				e.rt.Advance(snap.ID, "accepted", "owner", AdvanceOptions{})
				e.rt.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{}) // reopen
			}
		}
		e.rt.WaitDispatch()
		sums := e.rt.Summaries()
		// Blank the truncation-dependent field; everything else must be
		// identical across runs.
		for i := range sums {
			sums[i].TruncatedEvents = 0
		}
		return sums
	}

	unbounded := run(0)
	truncated := run(8)
	if len(unbounded) != len(truncated) {
		t.Fatalf("population mismatch: %d vs %d", len(unbounded), len(truncated))
	}
	for i := range unbounded {
		a, b := unbounded[i], truncated[i]
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("summary %d diverges under truncation:\n%+v\nvs\n%+v", i, a, b)
		}
	}
}

func TestAdvanceSummaryResult(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID

	res, err := e.rt.AdvanceSummary(id, "elaboration", "owner", AdvanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Current != "elaboration" || res.Summary.State != StateActive {
		t.Fatalf("summary = %+v", res.Summary)
	}
	// Only the events appended by this move: the phase-entered event
	// (elaboration has no actions).
	if len(res.Events) != 1 || res.Events[0].Kind != EventPhaseEntered {
		t.Fatalf("appended events = %+v", res.Events)
	}
	if res.Events[0].Seq != res.Summary.Events {
		t.Fatalf("appended tail seq %d != summary total %d", res.Events[0].Seq, res.Summary.Events)
	}

	// Entering an action phase appends action-started events too, and
	// the due date of the entered phase rides on the summary.
	res, err = e.rt.AdvanceSummary(id, "internalreview", "owner", AdvanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[EventKind]int{}
	for _, ev := range res.Events {
		kinds[ev.Kind]++
	}
	if kinds[EventPhaseEntered] != 1 || kinds[EventActionStarted] != 2 {
		t.Fatalf("appended kinds = %v", kinds)
	}
	// Events are contiguous and end at the summary's total.
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].Seq != res.Events[i-1].Seq+1 {
			t.Fatalf("appended events not contiguous: %+v", res.Events)
		}
	}
	if res.Events[len(res.Events)-1].Seq != res.Summary.Events {
		t.Fatal("appended events do not end at the summary total")
	}

	// Completing carries the completed event; due date for elaboration
	// came from the model's deadline.
	res, err = e.rt.AdvanceSummary(id, "accepted", "owner", AdvanceOptions{Annotation: "fast-track"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.State != StateCompleted {
		t.Fatalf("state = %s", res.Summary.State)
	}
	last := res.Events[len(res.Events)-1]
	if last.Kind != EventCompleted {
		t.Fatalf("last appended = %+v", last)
	}
	if res.Summary.Deviations != 1 {
		t.Fatalf("deviations = %d after fast-track", res.Summary.Deviations)
	}

	// Errors mirror Advance.
	if _, err := e.rt.AdvanceSummary(id, "nope", "owner", AdvanceOptions{}); err == nil {
		t.Fatal("unknown phase accepted")
	}
	if _, err := e.rt.AdvanceSummary("ghost", "elaboration", "owner", AdvanceOptions{}); err == nil {
		t.Fatal("missing instance accepted")
	}
}

func TestSummaryDueDateAndLate(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	res, err := e.rt.AdvanceSummary(snap.ID, "elaboration", "owner", AdvanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary
	if sum.PhaseName != "Elaboration" {
		t.Fatalf("phase name = %q", sum.PhaseName)
	}
	wantDue := snap.CreatedAt.Add(10 * 24 * time.Hour)
	if !sum.Due.Equal(wantDue) {
		t.Fatalf("due = %v, want %v", sum.Due, wantDue)
	}
	if sum.Late(e.clock.Now()) {
		t.Fatal("late before the deadline")
	}
	if !sum.Late(e.clock.Now().Add(11 * 24 * time.Hour)) {
		t.Fatal("not late after the deadline")
	}
	// Phases without a deadline are never late.
	res, _ = e.rt.AdvanceSummary(snap.ID, "internalreview", "owner", AdvanceOptions{})
	if !res.Summary.Due.IsZero() || res.Summary.Late(e.clock.Now().Add(1000*time.Hour)) {
		t.Fatalf("internalreview due = %v", res.Summary.Due)
	}
}

func TestAcceptChangeSummaryAndSwitchModelSummary(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID
	e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{})

	v2 := fig1(t)
	v2.Phases = append(v2.Phases, &core.Phase{ID: "archival", Name: "Archival"})
	if err := e.rt.ProposeChange(id, "designer", v2, "add archival"); err != nil {
		t.Fatal(err)
	}
	res, err := e.rt.AcceptChangeSummary(id, "owner", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Pending != "" {
		t.Fatal("pending survived accept")
	}
	if len(res.Events) != 1 || res.Events[0].Kind != EventChangeApplied {
		t.Fatalf("appended = %+v", res.Events)
	}
	if res.Events[0].Seq != res.Summary.Events {
		t.Fatal("appended events do not end at the summary total")
	}

	// Owner switch in summary mode, landing on a final phase: the
	// completed-by-migration event follows the change-applied event.
	v3, err := core.NewModel("urn:gelee:models:simple", "Simple").
		Phase("only", "Only").
		FinalPhase("done", "Done").
		Initial("only").Transition("only", "done").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	sres, err := e.rt.SwitchModelSummary(id, "owner", v3, "done")
	if err != nil {
		t.Fatal(err)
	}
	if sres.Summary.State != StateCompleted || sres.Summary.ModelURI != v3.URI {
		t.Fatalf("switch summary = %+v", sres.Summary)
	}
	if len(sres.Events) != 2 || sres.Events[0].Kind != EventChangeApplied || sres.Events[1].Kind != EventCompleted {
		t.Fatalf("switch appended = %+v", sres.Events)
	}
	if sres.Events[1].Seq != sres.Summary.Events {
		t.Fatal("switch events do not end at the summary total")
	}
}

// TestIncrementalCountersMatchRecount pins every maintained counter to
// a recount over the full history for a workload that exercises
// deviations, prep failures, dispatch failures, async callbacks and
// migration.
func TestIncrementalCountersMatchRecount(t *testing.T) {
	// Async actions with no callback: executions stay pending.
	inv := &recordingInvoker{}
	clock := vclock.NewFake(time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC))
	rt, err := New(Config{Registry: testActions(t), Invoker: inv, Clock: clock, SyncActions: true})
	if err != nil {
		t.Fatal(err)
	}
	inv.fail = map[string]bool{"http://www.liquidpub.org/a/pdf": true} // dispatch error path

	// An unresolvable action: zoho has no implementations registered.
	snapA, err := rt.Instantiate(fig1(t), resource.Ref{URI: "urn:z:1", Type: "zoho"}, "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	// A resolvable instance that fails one dispatch and leaves others pending.
	snapB, err := rt.Instantiate(fig1(t), wikiRef(), "owner",
		map[string]map[string]string{"http://www.liquidpub.org/a/notify": {"reviewers": "a"}})
	if err != nil {
		t.Fatal(err)
	}

	rt.Advance(snapA.ID, "internalreview", "owner", AdvanceOptions{}) // deviation + 2 prep failures
	rt.Advance(snapB.ID, "elaboration", "owner", AdvanceOptions{})
	rt.Advance(snapB.ID, "internalreview", "owner", AdvanceOptions{}) // 2 pending dispatches
	rt.Advance(snapB.ID, "finalassembly", "owner", AdvanceOptions{})  // pdf dispatch fails
	rt.WaitDispatch()
	// Resolve one of B's pending invocations via callback, as failed.
	b, _ := rt.Instance(snapB.ID)
	var open string
	for _, ex := range b.Executions {
		if !ex.Terminal {
			open = ex.InvocationID
			break
		}
	}
	if open == "" {
		t.Fatal("no pending execution to fail")
	}
	if err := rt.Report(actionlib.StatusUpdate{InvocationID: open, Message: actionlib.StatusFailed, Detail: "boom"}); err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{snapA.ID, snapB.ID} {
		snap, _ := rt.Instance(id)
		sum, _ := rt.Summary(id)
		var dev, failed, pending int
		for _, ev := range snap.Events {
			if ev.Kind == EventPhaseEntered && ev.Deviation {
				dev++
			}
		}
		for _, ex := range snap.Executions {
			switch {
			case ex.Terminal && ex.LastStatus == actionlib.StatusFailed:
				failed++
			case !ex.Terminal:
				pending++
			}
		}
		if sum.Deviations != dev || sum.FailedSteps != failed || sum.PendingInvocations != pending {
			t.Fatalf("%s: counters (dev=%d fail=%d pend=%d) != recount (dev=%d fail=%d pend=%d)",
				id, sum.Deviations, sum.FailedSteps, sum.PendingInvocations, dev, failed, pending)
		}
		if failed == 0 && id == snapB.ID {
			t.Fatal("workload failed to produce a failed step on B")
		}
	}
}

// TestInvocationIndexGC proves the callback-routing index no longer
// grows monotonically: terminal entries age out after the grace window,
// swept piggyback on later mutations (or explicitly).
func TestInvocationIndexGC(t *testing.T) {
	const grace = time.Hour
	e := newEnvWithConfig(t, func(c *Config) { c.InvocationRetention = grace })
	snap := e.instantiate(t)
	id := snap.ID

	peak := 0
	for round := 0; round < 5; round++ {
		// internalreview dispatches 2 actions; the sync invoker reports
		// them completed immediately, which schedules their GC.
		if _, err := e.rt.Advance(id, "internalreview", "owner", AdvanceOptions{}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.rt.Advance(id, "elaboration", "owner", AdvanceOptions{}); err != nil {
			t.Fatal(err)
		}
		if n := e.rt.RuntimeStats().Invocations; n > peak {
			peak = n
		}
		e.clock.Advance(grace + time.Minute)
	}
	// One more mutation after the last window expires sweeps the stripe
	// it touches; SweepInvocations reclaims the rest promptly.
	e.rt.SweepInvocations()

	st := e.rt.RuntimeStats()
	if st.Invocations != 0 {
		t.Fatalf("live index = %d after all grace windows passed", st.Invocations)
	}
	if st.InvocationsGCed != 10 {
		t.Fatalf("gced = %d, want 10", st.InvocationsGCed)
	}
	if peak >= 10 {
		t.Fatalf("index peaked at %d — grew monotonically despite GC", peak)
	}

	// Entries inside their grace window still route late callbacks.
	got, _ := e.rt.Instance(id)
	e.rt.Advance(id, "internalreview", "owner", AdvanceOptions{})
	after, _ := e.rt.Instance(id)
	lastInv := after.Executions[len(after.Executions)-1].InvocationID
	if err := e.rt.Report(actionlib.StatusUpdate{InvocationID: lastInv, Message: "still-here"}); err != nil {
		t.Fatalf("in-window callback rejected: %v", err)
	}
	// Aged-out entries do not.
	oldInv := got.Executions[0].InvocationID
	if err := e.rt.Report(actionlib.StatusUpdate{InvocationID: oldInv, Message: "too-late"}); err == nil {
		t.Fatal("aged-out invocation still routed")
	}
	_ = got
}

// TestSummaryAccessor pins Runtime.Summary and Runtime.Count.
func TestSummaryAccessor(t *testing.T) {
	e := newEnv(t)
	if e.rt.Count() != 0 {
		t.Fatal("count on empty runtime")
	}
	snap := e.instantiate(t)
	e.instantiate(t)
	if e.rt.Count() != 2 {
		t.Fatalf("count = %d", e.rt.Count())
	}
	sum, ok := e.rt.Summary(snap.ID)
	if !ok || sum.ID != snap.ID || sum.ModelName != "EU Project deliverable lifecycle" {
		t.Fatalf("summary = %+v", sum)
	}
	if _, ok := e.rt.Summary("ghost"); ok {
		t.Fatal("summary for missing instance")
	}
}
