package runtime

import (
	"sync"
	"time"

	"github.com/liquidpub/gelee/internal/core"
	"github.com/liquidpub/gelee/internal/resource"
)

// State is the lifecycle instance state. An instance stays Active until
// the token reaches an end phase; because the model is descriptive, the
// owner may move the token *out* of an end phase again, which re-opens
// the instance (recorded as a deviation).
type State string

// Instance states.
const (
	StateActive    State = "active"
	StateCompleted State = "completed"
)

// EventKind classifies execution-log events.
type EventKind string

// Event kinds recorded in an instance's history.
const (
	EventCreated        EventKind = "created"
	EventPhaseEntered   EventKind = "phase-entered"
	EventActionStarted  EventKind = "action-started"
	EventActionStatus   EventKind = "action-status"
	EventAnnotated      EventKind = "annotated"
	EventChangeProposed EventKind = "change-proposed"
	EventChangeApplied  EventKind = "change-applied"
	EventChangeRejected EventKind = "change-rejected"
	EventCompleted      EventKind = "completed"
	EventReopened       EventKind = "reopened"
)

// Event is one record in an instance's history. Deviation marks
// phase-entered events whose move was not a suggested transition —
// the owner exercising the descriptive model's freedom.
type Event struct {
	Seq        int       `json:"seq"`
	Time       time.Time `json:"time"`
	Kind       EventKind `json:"kind"`
	Actor      string    `json:"actor,omitempty"`
	Phase      string    `json:"phase,omitempty"`
	FromPhase  string    `json:"from_phase,omitempty"`
	Detail     string    `json:"detail,omitempty"`
	Deviation  bool      `json:"deviation,omitempty"`
	ActionURI  string    `json:"action_uri,omitempty"`
	Invocation string    `json:"invocation,omitempty"`
	Status     string    `json:"status,omitempty"`
}

// ActionExecution tracks one dispatched action invocation and the
// status messages reported through its callback URI.
type ActionExecution struct {
	InvocationID string    `json:"invocation_id"`
	ActionURI    string    `json:"action_uri"`
	ActionName   string    `json:"action_name"`
	Phase        string    `json:"phase"`
	StartedAt    time.Time `json:"started_at"`
	LastStatus   string    `json:"last_status,omitempty"`
	LastDetail   string    `json:"last_detail,omitempty"`
	Terminal     bool      `json:"terminal"`
	Updates      int       `json:"updates"`
	DispatchErr  string    `json:"dispatch_err,omitempty"`
}

// ChangeProposal is a pending model change pushed by a designer
// (§IV.B): the instance owner accepts (choosing a landing phase when
// needed) or rejects it.
type ChangeProposal struct {
	ProposedBy string      `json:"proposed_by"`
	ProposedAt time.Time   `json:"proposed_at"`
	Note       string      `json:"note,omitempty"`
	NewModel   *core.Model `json:"new_model"`
	Summary    string      `json:"summary"` // human-readable core.Diff
}

// instance is the mutable runtime record. Fields below mu are guarded
// by it; the fields above are immutable after Instantiate publishes
// the instance (modelURI is the one exception — it moves under mu when
// the owner switches models). Snapshots are handed out to callers.
type instance struct {
	id        string
	seq       int64 // creation order, for stable listings across shards
	res       resource.Ref
	owner     string
	createdAt time.Time
	// unresolved: action URIs that had no implementation for the
	// resource type at instantiation; informational (robustness).
	unresolved []string

	// mu guards every field below, plus modelURI. It is the only lock
	// held while mutating or deep-copying instance state.
	mu          sync.Mutex
	model       *core.Model // self-contained copy (light coupling)
	mcache      modelCache  // slices derived from model, rebuilt on swap
	modelURI    string      // provenance only; never followed at run time
	state       State
	current     string // phase id; empty = token still at BEGIN
	completedAt time.Time
	// instBindings: action URI -> param id -> value, bound at
	// instantiation time or later by the owner (still "inst" stage).
	instBindings map[string]map[string]string
	events       []Event
	// eventSeq is the Seq of the most recent event ever recorded; it
	// keeps numbering gapless when ring truncation drops old events.
	eventSeq int
	// truncatedEvs counts events dropped from the front of the in-memory
	// history (Config.MaxEventsInMemory); the retained window covers
	// seqs [truncatedEvs+1 .. eventSeq].
	truncatedEvs int
	// Incremental counters, maintained at mutation time so summaries and
	// the cockpit never need to rescan the history or the executions.
	deviations  int                         // phase-entered events flagged Deviation
	failedSteps int                         // terminal executions whose last status is failed
	pendingInvs int                         // executions not yet terminal
	executions  map[string]*ActionExecution // by invocation id
	execOrder   []string
	pending     *ChangeProposal
	// Per-phase stats, maintained on every phase-entered event (and so
	// rebuilt on replay): entered counts, completed residence, and the
	// phase currently accruing residence since residSince. Truncation-
	// proof, unlike an event rescan. Lazily allocated together.
	phaseEntered   map[string]int
	phaseResidence map[string]time.Duration
	residPhase     string
	residSince     time.Time
}

// notePhaseEntered maintains the per-phase stats on a phase-entered
// event; callers hold in.mu (or own the instance exclusively).
func (in *instance) notePhaseEntered(phase string, at time.Time) {
	if in.phaseEntered == nil {
		in.phaseEntered = make(map[string]int)
		in.phaseResidence = make(map[string]time.Duration)
	}
	in.phaseEntered[phase]++
	if in.residPhase != "" {
		in.phaseResidence[in.residPhase] += at.Sub(in.residSince)
	}
	in.residPhase, in.residSince = phase, at
}

// Snapshot is an immutable copy of an instance's observable state.
// Model points at the instance's own model copy; treat it as read-only
// (the runtime never mutates a model in place — migration swaps in a
// fresh clone, so shared snapshots stay stable).
type Snapshot struct {
	ID           string                       `json:"id"`
	Model        *core.Model                  `json:"-"`
	ModelURI     string                       `json:"model_uri"`
	Resource     resource.Ref                 `json:"resource"`
	Owner        string                       `json:"owner"`
	State        State                        `json:"state"`
	Current      string                       `json:"current"`
	CreatedAt    time.Time                    `json:"created_at"`
	CompletedAt  time.Time                    `json:"completed_at,omitempty"`
	Events       []Event                      `json:"events"`
	Executions   []ActionExecution            `json:"executions"`
	Pending      *ChangeProposal              `json:"pending,omitempty"`
	Unresolved   []string                     `json:"unresolved,omitempty"`
	InstBindings map[string]map[string]string `json:"inst_bindings,omitempty"`
}

// modelCache holds the slices a summary needs that would otherwise be
// re-derived from the model on every listing — phase ids, initial
// phases and suggested targets per phase. It is rebuilt whenever a new
// model is installed (instantiation, migration, owner switch) and its
// slices are handed out to summaries without copying, so they must be
// treated as read-only, like Snapshot.Model.
type modelCache struct {
	phaseIDs  []string
	initial   []string
	suggested map[string][]string // phase id -> suggested targets
}

func buildModelCache(m *core.Model) modelCache {
	c := modelCache{
		phaseIDs:  m.PhaseIDs(),
		initial:   m.InitialPhases(),
		suggested: make(map[string][]string, len(m.Phases)),
	}
	for _, p := range m.Phases {
		c.suggested[p.ID] = m.SuggestedFrom(p.ID)
	}
	return c
}

// snapshot deep-copies the observable state; callers hold in.mu (or
// own the instance exclusively, as Instantiate does pre-publication).
func (in *instance) snapshot() Snapshot {
	s := Snapshot{
		ID:          in.id,
		Model:       in.model,
		ModelURI:    in.modelURI,
		Resource:    in.res.Clone(),
		Owner:       in.owner,
		State:       in.state,
		Current:     in.current,
		CreatedAt:   in.createdAt,
		CompletedAt: in.completedAt,
		Events:      append([]Event(nil), in.events...),
		Unresolved:  append([]string(nil), in.unresolved...),
	}
	for _, id := range in.execOrder {
		s.Executions = append(s.Executions, *in.executions[id])
	}
	if in.pending != nil {
		p := *in.pending
		s.Pending = &p
	}
	if len(in.instBindings) > 0 {
		s.InstBindings = make(map[string]map[string]string, len(in.instBindings))
		for uri, vals := range in.instBindings {
			inner := make(map[string]string, len(vals))
			for k, v := range vals {
				inner[k] = v
			}
			s.InstBindings[uri] = inner
		}
	}
	return s
}

// Summary is the lightweight list-view projection of an instance:
// identity, token position, incrementally maintained counters and the
// current phase's due-date inputs — no event history, no execution
// records and no model copy. Building one is O(1) in history length,
// and the counters make it sufficient for every cockpit aggregate: use
// it wherever a population is listed. The NextSuggested, Phases and
// Unresolved slices are shared with the runtime's internal caches —
// treat them as read-only, like Snapshot.Model.
type Summary struct {
	ID string `json:"id"`
	// Seq is the instance's creation sequence — the cursor of the
	// population paging (SummariesPage).
	Seq       int64        `json:"seq"`
	ModelURI  string       `json:"model_uri"`
	ModelName string       `json:"model_name"`
	Resource  resource.Ref `json:"resource"`
	Owner     string       `json:"owner"`
	State     State        `json:"state"`
	Current   string       `json:"current"`
	// PhaseName is the display name of the current phase ("" at BEGIN).
	PhaseName   string    `json:"phase_name,omitempty"`
	CreatedAt   time.Time `json:"created_at"`
	CompletedAt time.Time `json:"completed_at,omitempty"`
	// Due is the current phase's deadline resolved against the instance
	// start; zero when the phase carries none or the token is at BEGIN.
	Due           time.Time `json:"due,omitempty"`
	NextSuggested []string  `json:"next_suggested"`
	Phases        []string  `json:"phases"`
	// Events counts every event ever recorded, including any truncated
	// out of memory; TruncatedEvents says how many of those were dropped.
	Events          int `json:"events"`
	TruncatedEvents int `json:"truncated_events,omitempty"`
	Executions      int `json:"executions"`
	// Incremental counters (see the package doc's read-path section).
	Deviations         int      `json:"deviations"`
	FailedSteps        int      `json:"failed_steps"`
	PendingInvocations int      `json:"pending_invocations"`
	Pending            string   `json:"pending_change,omitempty"`
	Unresolved         []string `json:"unresolved,omitempty"`
}

// summary builds the lightweight projection; callers hold in.mu. The
// NextSuggested, Phases and Unresolved slices are shared from the
// instance's model cache, not copied — treat them as read-only, the
// same contract as Snapshot.Model (the runtime never mutates them in
// place; model swaps rebuild a fresh cache).
func (in *instance) summary() Summary {
	s := Summary{
		ID:                 in.id,
		Seq:                in.seq,
		ModelURI:           in.modelURI,
		ModelName:          in.model.Name,
		Resource:           in.res.Clone(),
		Owner:              in.owner,
		State:              in.state,
		Current:            in.current,
		CreatedAt:          in.createdAt,
		CompletedAt:        in.completedAt,
		Phases:             in.mcache.phaseIDs,
		Events:             in.eventSeq,
		TruncatedEvents:    in.truncatedEvs,
		Executions:         len(in.execOrder),
		Deviations:         in.deviations,
		FailedSteps:        in.failedSteps,
		PendingInvocations: in.pendingInvs,
		Unresolved:         in.unresolved,
	}
	if in.current == "" {
		s.NextSuggested = in.mcache.initial
	} else {
		s.NextSuggested = in.mcache.suggested[in.current]
		if p, ok := in.model.Phase(in.current); ok {
			s.PhaseName = p.Name
			s.Due = p.Deadline.DueAt(in.createdAt)
		}
	}
	if in.pending != nil {
		s.Pending = in.pending.Summary
	}
	return s
}

// Late reports whether the summarized instance is active, sitting in a
// phase with a deadline, and past it at the given instant — the same
// predicate as Snapshot.Late, answered without a model copy.
func (s Summary) Late(now time.Time) bool {
	return s.State == StateActive && s.Current != "" && !s.Due.IsZero() && now.After(s.Due)
}

// CurrentPhase resolves the snapshot's current phase, nil while the
// token is still at BEGIN.
func (s Snapshot) CurrentPhase() *core.Phase {
	if s.Current == "" {
		return nil
	}
	p, _ := s.Model.Phase(s.Current)
	return p
}

// DueAt returns the deadline of the given phase resolved against the
// instance start, zero when none.
func (s Snapshot) DueAt(phaseID string) time.Time {
	p, ok := s.Model.Phase(phaseID)
	if !ok {
		return time.Time{}
	}
	return p.Deadline.DueAt(s.CreatedAt)
}

// Late reports whether the instance is active, sitting in a phase with a
// deadline, and past it at the given instant.
func (s Snapshot) Late(now time.Time) bool {
	if s.State != StateActive || s.Current == "" {
		return false
	}
	due := s.DueAt(s.Current)
	return !due.IsZero() && now.After(due)
}

// NextSuggested lists the suggested targets from the token's position
// (initial phases while at BEGIN).
func (s Snapshot) NextSuggested() []string {
	if s.Current == "" {
		return s.Model.InitialPhases()
	}
	return s.Model.SuggestedFrom(s.Current)
}
