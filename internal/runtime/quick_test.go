package runtime

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
)

// driveRandomly performs n random operations (suggested moves, free
// moves, annotations, proposals, accept/reject) against one instance and
// returns the final snapshot.
func driveRandomly(t *testing.T, r *rand.Rand, n int) Snapshot {
	t.Helper()
	e := newEnv(t)
	snap := e.instantiate(t)
	id := snap.ID
	model := snap.Model
	phaseIDs := model.PhaseIDs()

	for i := 0; i < n; i++ {
		switch r.Intn(6) {
		case 0, 1: // follow a suggested transition when one exists
			cur, _ := e.rt.Instance(id)
			next := cur.NextSuggested()
			if len(next) > 0 {
				if _, err := e.rt.Advance(id, next[r.Intn(len(next))], "owner", AdvanceOptions{}); err != nil {
					t.Fatalf("suggested move failed: %v", err)
				}
			}
		case 2: // free move anywhere
			target := phaseIDs[r.Intn(len(phaseIDs))]
			if _, err := e.rt.Advance(id, target, "owner", AdvanceOptions{Annotation: "random"}); err != nil {
				t.Fatalf("free move to %s failed: %v", target, err)
			}
		case 3: // annotate
			if err := e.rt.Annotate(id, "owner", "note"); err != nil {
				t.Fatal(err)
			}
		case 4: // propose a change
			v2 := model.Clone()
			v2.Annotations = append(v2.Annotations, "rev")
			if err := e.rt.ProposeChange(id, "designer", v2, ""); err != nil {
				t.Fatal(err)
			}
		case 5: // decide a pending change if any
			cur, _ := e.rt.Instance(id)
			if cur.Pending != nil {
				if r.Intn(2) == 0 {
					if _, err := e.rt.AcceptChange(id, "owner", ""); err != nil {
						t.Fatal(err)
					}
				} else if err := e.rt.RejectChange(id, "owner", ""); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	got, ok := e.rt.Instance(id)
	if !ok {
		t.Fatal("instance vanished")
	}
	return got
}

// Property: whatever the owner does, the token is always either at
// BEGIN or on exactly one existing phase, and the state is consistent
// with the phase's finality.
func TestQuickTokenAlwaysWellPlaced(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		got := driveRandomly(t, r, 25)
		if got.Current == "" {
			return got.State == StateActive
		}
		p, ok := got.Model.Phase(got.Current)
		if !ok {
			return false
		}
		if p.Final != (got.State == StateCompleted) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: event sequence numbers are strictly increasing and start at
// 1, regardless of operation mix.
func TestQuickEventSequenceMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		got := driveRandomly(t, r, 20)
		for i, ev := range got.Events {
			if ev.Seq != i+1 {
				return false
			}
		}
		return len(got.Events) >= 1 && got.Events[0].Kind == EventCreated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: every phase of a model is reachable by the owner via free
// moves — the descriptive model never traps the token.
func TestQuickFreeMovesReachEveryPhase(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	for _, phaseID := range snap.Model.PhaseIDs() {
		if _, err := e.rt.Advance(snap.ID, phaseID, "owner", AdvanceOptions{Annotation: "tour"}); err != nil {
			t.Fatalf("free move to %q failed: %v", phaseID, err)
		}
		got, _ := e.rt.Instance(snap.ID)
		if got.Current != phaseID {
			t.Fatalf("token at %q, want %q", got.Current, phaseID)
		}
	}
}

// Property: the number of action executions equals the number of
// non-final phase entries times the actions of those phases (every
// entry dispatches every action exactly once).
func TestQuickExecutionsMatchPhaseEntries(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		got := driveRandomly(t, r, 20)
		want := 0
		for _, ev := range got.Events {
			if ev.Kind != EventPhaseEntered {
				continue
			}
			// The phase's actions in the model the instance had *at that
			// time* — proposals in driveRandomly never change actions, so
			// the current model is authoritative.
			if p, ok := got.Model.Phase(ev.Phase); ok && !p.Final {
				want += len(p.Actions)
			}
		}
		return len(got.Executions) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: concurrent advances on distinct instances never interfere:
// each instance ends exactly where its own driver left it.
func TestConcurrentInstancesIsolated(t *testing.T) {
	e := newEnv(t)
	const n = 8
	ids := make([]string, n)
	for i := range ids {
		snap := e.instantiate(t)
		ids[i] = snap.ID
	}
	done := make(chan error, n)
	targets := []string{"elaboration", "internalreview", "finalassembly", "eureview", "publication"}
	for i, id := range ids {
		go func(i int, id string) {
			var err error
			for j := 0; j <= i%len(targets); j++ {
				_, err = e.rt.Advance(id, targets[j], "owner", AdvanceOptions{})
				if err != nil {
					break
				}
			}
			done <- err
		}(i, id)
	}
	for range ids {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i, id := range ids {
		got, _ := e.rt.Instance(id)
		if want := targets[i%len(targets)]; got.Current != want {
			t.Fatalf("instance %d at %q, want %q", i, got.Current, want)
		}
	}
}

// Property: callbacks for one instance never mutate another.
func TestCallbackRoutingIsolation(t *testing.T) {
	e := newEnv(t)
	e.inv.status = "" // manual callbacks
	a := e.instantiate(t)
	b := e.instantiate(t)
	e.rt.Advance(a.ID, "internalreview", "owner", AdvanceOptions{Annotation: "skip"})
	e.rt.Advance(b.ID, "internalreview", "owner", AdvanceOptions{Annotation: "skip"})

	ga, _ := e.rt.Instance(a.ID)
	if err := e.rt.Report(actionlib.StatusUpdate{
		InvocationID: ga.Executions[0].InvocationID,
		Message:      actionlib.StatusCompleted,
	}); err != nil {
		t.Fatal(err)
	}
	gb, _ := e.rt.Instance(b.ID)
	for _, ex := range gb.Executions {
		if ex.Terminal {
			t.Fatalf("callback for %s leaked into %s: %+v", a.ID, b.ID, ex)
		}
	}
}

// Property: a snapshot is immutable — runtime progress after the
// snapshot never changes it.
func TestSnapshotImmutableUnderProgress(t *testing.T) {
	e := newEnv(t)
	snap := e.instantiate(t)
	before, _ := e.rt.Instance(snap.ID)
	eventsBefore := len(before.Events)

	e.rt.Advance(snap.ID, "elaboration", "owner", AdvanceOptions{})
	e.rt.Advance(snap.ID, "internalreview", "owner", AdvanceOptions{})
	if len(before.Events) != eventsBefore {
		t.Fatal("snapshot grew after runtime progress")
	}
	if before.Current != "" {
		t.Fatal("snapshot current phase mutated")
	}
}

// genModelForRuntime exercises Instantiate against arbitrary generated
// models: any model that validates must instantiate.
func TestQuickAnyValidModelInstantiates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomModelForRuntime(r)
		e := newEnv(t)
		snap, err := e.rt.Instantiate(m, wikiRef(), "owner", nil)
		if err != nil {
			return false
		}
		// And its initial phases are all reachable by a first move.
		for _, init := range snap.Model.InitialPhases() {
			if _, err := e.rt.Advance(snap.ID, init, "owner", AdvanceOptions{}); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func randomModelForRuntime(r *rand.Rand) *core.Model {
	n := 1 + r.Intn(6)
	b := core.NewModel("urn:q:m", "Q")
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = string(rune('a' + i))
		if i == n-1 && n > 1 {
			b.FinalPhase(ids[i], "F")
			continue
		}
		pb := b.Phase(ids[i], "P"+ids[i])
		if r.Intn(2) == 0 {
			pb.Action("http://www.liquidpub.org/a/pdf", "Generate PDF")
		}
	}
	b.Initial(ids[0])
	for i := 0; i < n; i++ {
		b.Transition(ids[r.Intn(n)], ids[r.Intn(n)])
	}
	return b.MustBuild()
}
