package runtime

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
	"github.com/liquidpub/gelee/internal/resource"
)

// stressModel: draft (no actions) <-> work (one action) -> done(final).
func stressModel() *core.Model {
	return core.NewModel("urn:stress:model", "Stress").
		Phase("draft", "Draft").
		Phase("work", "Work").Action("urn:stress:a1", "Do Work").Done().
		FinalPhase("done", "Done").
		Initial("draft").
		Transition("draft", "work").Transition("work", "draft").
		Transition("work", "done").
		MustBuild()
}

// TestStressConcurrentMutations drives every mutating verb and every
// reader across many instances from many goroutines at once — the
// -race exercise for the sharded runtime's locking model. Afterwards
// it asserts that each instance's event history is gapless and
// strictly ordered, that every dispatched action terminated, and that
// the secondary indexes agree with the population.
func TestStressConcurrentMutations(t *testing.T) {
	const (
		workers      = 8
		perWorker    = 4
		rounds       = 25
		sharedURIs   = 4 // instances spread across this many resource URIs
		resourceType = "stress"
	)

	reg := actionlib.NewRegistry()
	if err := reg.RegisterType(actionlib.ActionType{URI: "urn:stress:a1", Name: "Do Work"}); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterImplementation(actionlib.Implementation{
		TypeURI: "urn:stress:a1", ResourceType: resourceType,
		Endpoint: "local://stress", Protocol: actionlib.ProtocolLocal,
	}); err != nil {
		t.Fatal(err)
	}

	// The invoker queues invocation ids; reporter goroutines deliver a
	// non-terminal then a terminal status for each, concurrently with
	// the drivers.
	invocations := make(chan string, 4096)
	rt, err := New(Config{
		Registry: reg,
		Invoker: InvokerFunc(func(_ context.Context, inv actionlib.Invocation) error {
			invocations <- inv.ID
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}

	model := stressModel()
	ids := make([][]string, workers)
	for w := 0; w < workers; w++ {
		ids[w] = make([]string, perWorker)
		for i := 0; i < perWorker; i++ {
			ref := resource.Ref{
				URI:  fmt.Sprintf("urn:stress:res-%d", (w*perWorker+i)%sharedURIs),
				Type: resourceType,
			}
			snap, err := rt.Instantiate(model, ref, "owner", nil)
			if err != nil {
				t.Fatal(err)
			}
			ids[w][i] = snap.ID
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers*2+2)

	// Reporter goroutines: race callbacks against everything else.
	var reporters sync.WaitGroup
	for i := 0; i < 2; i++ {
		reporters.Add(1)
		go func() {
			defer reporters.Done()
			for invID := range invocations {
				if err := rt.Report(actionlib.StatusUpdate{InvocationID: invID, Message: "running"}); err != nil {
					errs <- err
					return
				}
				if err := rt.Report(actionlib.StatusUpdate{InvocationID: invID, Message: actionlib.StatusCompleted}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	// Driver goroutines: each owns a disjoint instance set and runs
	// moves, annotations, bindings and a propose/accept/reject cycle.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v2 := stressModel()
			v2.Phases = append(v2.Phases, &core.Phase{ID: "extra", Name: "Extra"})
			for r := 0; r < rounds; r++ {
				for _, id := range ids[w] {
					if _, err := rt.Advance(id, "work", "owner", AdvanceOptions{}); err != nil {
						errs <- err
						return
					}
					if err := rt.Annotate(id, "owner", "round note"); err != nil {
						errs <- err
						return
					}
					if _, err := rt.Advance(id, "draft", "owner", AdvanceOptions{Annotation: "back"}); err != nil {
						errs <- err
						return
					}
					if err := rt.ProposeChange(id, "designer", v2, "add extra"); err != nil {
						errs <- err
						return
					}
					if r%2 == 0 {
						if _, err := rt.AcceptChange(id, "owner", ""); err != nil {
							errs <- err
							return
						}
					} else if err := rt.RejectChange(id, "owner", "keep"); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}

	// Reader goroutines: hammer every query path until drivers finish.
	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func(i int) {
			defer readers.Done()
			for j := 0; ; j++ {
				select {
				case <-stopReaders:
					return
				default:
				}
				rt.Instances()
				rt.Summaries()
				rt.ByResource(fmt.Sprintf("urn:stress:res-%d", j%sharedURIs))
				rt.ByModelURI("urn:stress:model")
				rt.RuntimeStats()
				id := ids[j%workers][j%perWorker]
				if _, ok := rt.Instance(id); !ok {
					errs <- fmt.Errorf("instance %s vanished", id)
					return
				}
				rt.InFlight(id)
			}
		}(i)
	}

	wg.Wait()
	close(stopReaders)
	readers.Wait()
	rt.WaitDispatch()
	close(invocations)
	reporters.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every event history must be gapless and strictly ordered, and
	// every incrementally maintained counter must equal a recount from
	// the full history — the acceptance check that concurrent
	// Advance/Report/Annotate across shards never desynchronizes the
	// copy-free read path from the audit record.
	snaps := rt.Instances()
	if len(snaps) != workers*perWorker {
		t.Fatalf("instances = %d, want %d", len(snaps), workers*perWorker)
	}
	for _, s := range snaps {
		for i, ev := range s.Events {
			if ev.Seq != i+1 {
				t.Fatalf("%s: event %d has seq %d — gap or reorder", s.ID, i, ev.Seq)
			}
		}
		// rounds moves into "work" each dispatch one action; every one
		// must have terminated once reporters drained.
		if len(s.Executions) != rounds {
			t.Fatalf("%s: executions = %d, want %d", s.ID, len(s.Executions), rounds)
		}
		for _, ex := range s.Executions {
			if !ex.Terminal {
				t.Fatalf("%s: execution %s not terminal after drain", s.ID, ex.InvocationID)
			}
		}
		sum, ok := rt.Summary(s.ID)
		if !ok {
			t.Fatalf("%s: summary missing", s.ID)
		}
		var dev, failed, pending int
		for _, ev := range s.Events {
			if ev.Kind == EventPhaseEntered && ev.Deviation {
				dev++
			}
		}
		for _, ex := range s.Executions {
			switch {
			case ex.Terminal && ex.LastStatus == actionlib.StatusFailed:
				failed++
			case !ex.Terminal:
				pending++
			}
		}
		if sum.Deviations != dev || sum.FailedSteps != failed || sum.PendingInvocations != pending {
			t.Fatalf("%s: counters (dev=%d fail=%d pend=%d) != recount (dev=%d fail=%d pend=%d)",
				s.ID, sum.Deviations, sum.FailedSteps, sum.PendingInvocations, dev, failed, pending)
		}
		if sum.Events != len(s.Events) {
			t.Fatalf("%s: summary events %d != history length %d", s.ID, sum.Events, len(s.Events))
		}
	}

	// Indexes must agree with the population.
	perURI := workers * perWorker / sharedURIs
	for u := 0; u < sharedURIs; u++ {
		uri := fmt.Sprintf("urn:stress:res-%d", u)
		got := rt.ByResource(uri)
		if len(got) != perURI {
			t.Fatalf("ByResource(%s) = %d, want %d", uri, len(got), perURI)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].CreatedAt.After(got[i].CreatedAt) {
				t.Fatalf("ByResource(%s) not in creation order", uri)
			}
		}
	}
	if got := rt.ByModelURI("urn:stress:model"); len(got) != workers*perWorker {
		t.Fatalf("ByModelURI = %d, want %d", len(got), workers*perWorker)
	}
	st := rt.RuntimeStats()
	if st.Instances != workers*perWorker {
		t.Fatalf("stats instances = %d, want %d", st.Instances, workers*perWorker)
	}
	total := 0
	for _, n := range st.PerShard {
		total += n
	}
	if total != st.Instances {
		t.Fatalf("per-shard sum %d != instances %d", total, st.Instances)
	}
	if st.Invocations != workers*perWorker*rounds {
		t.Fatalf("invocation index = %d, want %d", st.Invocations, workers*perWorker*rounds)
	}
}

// TestSummariesMatchInstances pins the summary projection to the full
// snapshot path.
func TestSummariesMatchInstances(t *testing.T) {
	reg := actionlib.NewRegistry()
	rt, err := New(Config{Registry: reg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	model := stressModel()
	for i := 0; i < 10; i++ {
		ref := resource.Ref{URI: fmt.Sprintf("urn:s:%d", i), Type: "t"}
		snap, err := rt.Instantiate(model, ref, fmt.Sprintf("owner-%d", i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if _, err := rt.Advance(snap.ID, "work", "owner", AdvanceOptions{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	snaps := rt.Instances()
	sums := rt.Summaries()
	if len(snaps) != len(sums) {
		t.Fatalf("len mismatch: %d vs %d", len(snaps), len(sums))
	}
	for i := range snaps {
		sn, sm := snaps[i], sums[i]
		if sn.ID != sm.ID || sn.Owner != sm.Owner || sn.State != sm.State ||
			sn.Current != sm.Current || sn.ModelURI != sm.ModelURI ||
			sn.Resource.URI != sm.Resource.URI || len(sn.Events) != sm.Events ||
			len(sn.Executions) != sm.Executions {
			t.Fatalf("summary %d diverges from snapshot:\n%+v\nvs\n%+v", i, sm, sn)
		}
		if fmt.Sprint(sn.NextSuggested()) != fmt.Sprint(sm.NextSuggested) {
			t.Fatalf("summary %d suggested %v != snapshot %v", i, sm.NextSuggested, sn.NextSuggested())
		}
	}
}
