package runtime

// Population index: the incrementally maintained, creation-seq-ordered
// view of the instance table that serves every population listing.
//
// Each shard keeps, next to its id→instance map, an `ordered` slice of
// the same instance pointers sorted by creation sequence. The slice is
// maintained under the shard's existing membership lock at the three
// places an instance is ever published — Instantiate, replayInstantiate
// and replaySnapshot — and instances are never removed, so the slice
// only grows. Because seq is allocated before publication, two
// concurrent Instantiates may publish out of order; the insert binary-
// searches from the tail, which makes the common in-order publish an
// amortized O(1) append and counts the rare out-of-order shuffle in
// Stats.PopulationIndex.OutOfOrderInserts.
//
// Reads merge the per-shard runs: pageRefs seeks each shard's slice to
// the cursor with one binary search (O(log n) per shard), copies at
// most one page of pointers per shard under the read lock, and k-way
// merges the runs by seq — O(shards·(log n + page)) per page instead of
// the O(N log N) copy-and-sort of the legacy collectAll scan. Streaming
// callers (Summaries, Instances, the monitor's cockpit rebuild) iterate
// the index in fixed-size batches via forEachRef, so no call ever
// materializes the full population at once.

import (
	"sort"
	"time"
)

// insertOrdered places in into the shard's seq-ordered slice; callers
// hold sh.mu. Returns true when the insert was not a plain append —
// i.e. a lower-seq instance was published after a higher-seq neighbor.
func (sh *shard) insertOrdered(in *instance) bool {
	n := len(sh.ordered)
	if n == 0 || sh.ordered[n-1].seq < in.seq {
		sh.ordered = append(sh.ordered, in)
		return false
	}
	i := sort.Search(n, func(i int) bool { return sh.ordered[i].seq > in.seq })
	sh.ordered = append(sh.ordered, nil)
	copy(sh.ordered[i+1:], sh.ordered[i:])
	sh.ordered[i] = in
	return true
}

// publish inserts an already-constructed instance into its shard map
// and the population index in one critical section. It is the single
// publication point shared by Instantiate, replayInstantiate and
// replaySnapshot; dup reports an id collision (replay only), in which
// case nothing was inserted.
func (r *Runtime) publish(in *instance) (dup bool) {
	sh := r.shardFor(in.id)
	sh.mu.Lock()
	if _, exists := sh.instances[in.id]; exists {
		sh.mu.Unlock()
		return true
	}
	sh.instances[in.id] = in
	if sh.insertOrdered(in) {
		r.popOutOfOrder.Add(1)
	}
	sh.mu.Unlock()
	return false
}

// pageRefs returns up to limit instance pointers with seq > after, in
// creation order, merged from the per-shard ordered runs. more reports
// whether instances beyond the returned page existed at read time
// (limit <= 0 means no bound, so more is always false). Only shard
// read locks are taken, one stripe at a time, and at most limit+1
// pointers are copied per stripe.
func (r *Runtime) pageRefs(after int64, limit int) (refs []*instance, more bool) {
	runs := make([][]*instance, 0, len(r.shards))
	for _, sh := range r.shards {
		sh.mu.RLock()
		ord := sh.ordered
		i := sort.Search(len(ord), func(i int) bool { return ord[i].seq > after })
		if i < len(ord) {
			end := len(ord)
			if limit > 0 && i+limit+1 < end {
				end = i + limit + 1
			}
			runs = append(runs, append([]*instance(nil), ord[i:end]...))
		}
		sh.mu.RUnlock()
	}
	if len(runs) == 0 {
		return nil, false
	}
	// K-way merge by seq. Shard counts are small (16 by default), so a
	// linear scan over the run heads beats heap bookkeeping.
	total := 0
	for _, run := range runs {
		total += len(run)
	}
	want := total
	if limit > 0 && limit < want {
		want = limit
	}
	refs = make([]*instance, 0, want)
	for len(refs) < want {
		best := -1
		for i, run := range runs {
			if len(run) == 0 {
				continue
			}
			if best < 0 || run[0].seq < runs[best][0].seq {
				best = i
			}
		}
		refs = append(refs, runs[best][0])
		runs[best] = runs[best][1:]
	}
	if limit > 0 && total > limit {
		more = true
	}
	return refs, more
}

// forEachRef streams instance pointers in creation order with
// seq > after, in fixed-size batches off the population index, so the
// full population is never materialized at once. fn returning false
// stops the walk. Instances published while the walk is in flight may
// or may not be seen; instances published before it started are seen
// exactly once (see the cursor-stability test).
func (r *Runtime) forEachRef(after int64, fn func(*instance) bool) {
	const batch = 1024
	for {
		refs, more := r.pageRefs(after, batch)
		for _, in := range refs {
			if !fn(in) {
				return
			}
		}
		if !more {
			return
		}
		after = refs[len(refs)-1].seq
	}
}

// Filter is the pushed-down predicate of a population query: every
// field left zero matches all instances. Resource and ModelURI route
// the query to the secondary URI indexes (O(matches), not O(N));
// State and LateOnly are evaluated on each candidate's incrementally
// maintained summary, so no event history is touched either way.
type Filter struct {
	// Resource matches instances running on exactly this resource URI.
	Resource string
	// ModelURI matches instances whose model provenance is this URI
	// (re-checked per instance: owners can switch models).
	ModelURI string
	// State matches instances in the given lifecycle state ("" = any).
	State State
	// LateOnly keeps only active instances past their current phase's
	// deadline at Now (zero Now = the runtime clock's now).
	LateOnly bool
	// Now is the instant LateOnly is evaluated against.
	Now time.Time
}

// zero reports whether the filter matches everything.
func (f Filter) zero() bool {
	return f.Resource == "" && f.ModelURI == "" && f.State == "" && !f.LateOnly
}

// match evaluates the summary-level predicates (State, LateOnly, plus
// the URI re-checks) against one summary.
func (f Filter) match(s *Summary, now time.Time) bool {
	if f.Resource != "" && s.Resource.URI != f.Resource {
		return false
	}
	if f.ModelURI != "" && s.ModelURI != f.ModelURI {
		return false
	}
	if f.State != "" && s.State != f.State {
		return false
	}
	if f.LateOnly && !s.Late(now) {
		return false
	}
	return true
}

// candidateRefs resolves the candidate stream of a filtered query:
// the matching secondary index when the filter names a resource or
// model URI (sorted by seq, seeked to the cursor), nil with
// fromIndex=false when the query must walk the population index.
func (r *Runtime) candidateRefs(f Filter, after int64) (refs []*instance, fromIndex bool) {
	var list []*instance
	switch {
	case f.Resource != "":
		list = r.byRes.get(f.Resource)
	case f.ModelURI != "":
		list = r.byModel.get(f.ModelURI)
	default:
		return nil, false
	}
	sortBySeq(list)
	i := sort.Search(len(list), func(i int) bool { return list[i].seq > after })
	return list[i:], true
}

// ForEachSummary streams the summaries of instances matching f with
// seq > after, in creation order, calling fn for each until it returns
// false or the population is exhausted. Queries naming a resource or
// model URI are served from the secondary indexes (O(matches));
// everything else streams off the population index in batches. Each
// summary is built under its instance's lock only — no population-wide
// lock exists, so the stream is a sequence of point-in-time reads, not
// an atomic snapshot (same contract Summaries always had).
func (r *Runtime) ForEachSummary(f Filter, after int64, fn func(Summary) bool) {
	now := f.Now
	if f.LateOnly && now.IsZero() {
		now = r.clock.Now()
	}
	emit := func(in *instance) bool {
		in.mu.Lock()
		s := in.summary()
		in.mu.Unlock()
		if !f.match(&s, now) {
			return true
		}
		return fn(s)
	}
	if refs, fromIndex := r.candidateRefs(f, after); fromIndex {
		r.popIndexed.Add(1)
		for _, in := range refs {
			if !emit(in) {
				return
			}
		}
		return
	}
	r.popIndexed.Add(1)
	r.forEachRef(after, emit)
}

// QuerySummaries returns one cursor window of the summaries matching f:
// at most limit of them (limit <= 0 means no bound) with creation
// sequence > after, in creation order. Total is the live population for
// an unfiltered query; for filtered queries it is the number of
// remaining candidates when the filter is served from a secondary
// index, and 0 (unknown) when the filter requires a predicate walk —
// counting those matches would cost the full scan the index exists to
// avoid. NextAfter is the cursor of the following page, 0 at the tail.
func (r *Runtime) QuerySummaries(f Filter, after int64, limit int) SummaryPage {
	now := f.Now
	if f.LateOnly && now.IsZero() {
		now = r.clock.Now()
	}
	var page SummaryPage

	if refs, fromIndex := r.candidateRefs(f, after); fromIndex {
		r.popIndexed.Add(1)
		matched := 0
		for _, in := range refs {
			in.mu.Lock()
			s := in.summary()
			in.mu.Unlock()
			if !f.match(&s, now) {
				continue
			}
			matched++
			if limit <= 0 || len(page.Summaries) < limit {
				page.Summaries = append(page.Summaries, s)
			} else if page.NextAfter == 0 {
				page.NextAfter = page.Summaries[limit-1].Seq
			}
		}
		page.Total = matched
		return page
	}

	r.popIndexed.Add(1)
	if f.zero() {
		page.Total = r.Count()
		refs, more := r.pageRefs(after, limit)
		page.Summaries = make([]Summary, 0, len(refs))
		for _, in := range refs {
			in.mu.Lock()
			page.Summaries = append(page.Summaries, in.summary())
			in.mu.Unlock()
		}
		if more {
			page.NextAfter = refs[len(refs)-1].seq
		}
		return page
	}

	// Predicate-filtered walk: stream the population index, keep
	// matches until the page fills, then probe one batch further only
	// to learn whether a next page exists.
	r.forEachRef(after, func(in *instance) bool {
		in.mu.Lock()
		s := in.summary()
		in.mu.Unlock()
		if !f.match(&s, now) {
			return true
		}
		if limit > 0 && len(page.Summaries) >= limit {
			page.NextAfter = page.Summaries[limit-1].Seq
			return false
		}
		page.Summaries = append(page.Summaries, s)
		return true
	})
	return page
}

// SummariesPageScan is the legacy population listing: copy every
// instance pointer, sort the copy, slice the page — O(N log N) per
// call.
//
// Deprecated: it exists only as the measured baseline of the
// population-index A/B in cmd/geleebench and as the ground truth of
// the index equivalence tests. Use SummariesPage, which serves the
// same page from the incrementally maintained index in O(log N + page).
func (r *Runtime) SummariesPageScan(after int64, limit int) SummaryPage {
	r.popScans.Add(1)
	all := r.collectAll()
	page := SummaryPage{Total: len(all)}
	start := sort.Search(len(all), func(i int) bool { return all[i].seq > after })
	end := len(all)
	if limit > 0 && start+limit < end {
		end = start + limit
	}
	if start >= end {
		return page
	}
	page.Summaries = make([]Summary, 0, end-start)
	for _, in := range all[start:end] {
		in.mu.Lock()
		page.Summaries = append(page.Summaries, in.summary())
		in.mu.Unlock()
	}
	if end < len(all) {
		page.NextAfter = all[end-1].seq
	}
	return page
}

// PopIndexStats is the population-index section of the admin runtime
// payload.
type PopIndexStats struct {
	// Entries is the number of instances the ordered index holds — by
	// construction equal to the live population.
	Entries int `json:"entries"`
	// OutOfOrderInserts counts publishes that landed below an already-
	// published higher seq (concurrent Instantiates racing, or replay
	// interleaving snapshots with tail records) and so paid a shuffle
	// instead of an append.
	OutOfOrderInserts int64 `json:"out_of_order_inserts"`
	// IndexedQueries counts population queries served from the ordered
	// index or a secondary URI index; ScanQueries counts calls to the
	// deprecated full-scan baseline.
	IndexedQueries int64 `json:"indexed_queries"`
	ScanQueries    int64 `json:"scan_queries"`
}
