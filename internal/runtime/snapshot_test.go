package runtime

import (
	"strings"
	"sync"
	"testing"

	"github.com/liquidpub/gelee/internal/core"
	"github.com/liquidpub/gelee/internal/shardkey"
)

// buildRichState drives every kind of instance state the snapshot must
// capture: happy-path advances with actions, a deviation + reopen, a
// pending proposal, bindings, annotations, terminal and failed
// executions. Returns the instance ids in creation order.
func buildRichState(t testing.TB, e *persistEnv) []string {
	t.Helper()
	owner := "owner"
	a := e.instantiate(t)
	if err := e.rt.BindParams(a.ID, owner, "http://www.liquidpub.org/a/chr", map[string]string{"mode": "open"}); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"elaboration", "internalreview", "finalassembly"} {
		if _, err := e.rt.Advance(a.ID, phase, owner, AdvanceOptions{Annotation: "to " + phase}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.rt.Annotate(a.ID, owner, "waiting on partner"); err != nil {
		t.Fatal(err)
	}

	b := e.instantiate(t)
	if _, err := e.rt.Advance(b.ID, "publication", owner, AdvanceOptions{Annotation: "deviation"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rt.Advance(b.ID, "accepted", owner, AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rt.Advance(b.ID, "elaboration", owner, AdvanceOptions{Annotation: "reopen"}); err != nil {
		t.Fatal(err)
	}

	c := e.instantiate(t)
	v2 := fig1(t)
	v2.Phases = append(v2.Phases, &core.Phase{ID: "archival", Name: "Archival"})
	if err := e.rt.ProposeChange(c.ID, "designer", v2, "add archival"); err != nil {
		t.Fatal(err)
	}
	return []string{a.ID, b.ID, c.ID}
}

// emitAll collects every snapshot record via EmitSnapshots.
func emitAll(t testing.TB, rt *Runtime) []capturedRec {
	t.Helper()
	var recs []capturedRec
	if err := rt.EmitSnapshots(func(id string, data []byte) error {
		recs = append(recs, capturedRec{id: id, data: append([]byte(nil), data...)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestSnapshotRecordRoundTrip: applying only the RecSnapshot images —
// no mutation records at all — must rebuild byte-identical observable
// state: snapshots, models, summaries, indexes, counters, phase stats.
func TestSnapshotRecordRoundTrip(t *testing.T) {
	e := newPersistEnv(t)
	ids := buildRichState(t, e)

	rt2 := New2(t, e)
	for _, r := range emitAll(t, e.rt) {
		if err := rt2.ApplyJournal(r.id, r.data); err != nil {
			t.Fatalf("apply snapshot: %v", err)
		}
	}
	rec := rt2.FinishRecovery()
	if rec.Instances != len(ids) || rec.Records != int64(len(ids)) {
		t.Fatalf("recovery stats: %+v, want %d instances from %d records", rec, len(ids), len(ids))
	}
	assertSameState(t, e.rt, rt2)
	now := e.clock.Now()
	for _, id := range ids {
		w, _ := e.rt.PhaseStats(id, now)
		g, ok := rt2.PhaseStats(id, now)
		if !ok || mustJSON(t, w) != mustJSON(t, g) {
			t.Fatalf("phase stats of %s diverged:\nlive      %s\nrecovered %s", id, mustJSON(t, w), mustJSON(t, g))
		}
	}
}

// New2 builds a fresh runtime with the env's config shape, journal-less.
func New2(t testing.TB, e *persistEnv) *Runtime {
	t.Helper()
	rt, err := New(Config{
		Registry:    testActions(t),
		Invoker:     e.inv,
		Clock:       e.clock,
		SyncActions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestSnapshotThenTailReplay is the fold shape end to end at the
// runtime layer: snapshot the population mid-history, keep mutating —
// reports on pre-snapshot executions, accepting a pre-snapshot
// proposal, more advances — then replay snapshot + only the post-
// snapshot records and expect identical state.
func TestSnapshotThenTailReplay(t *testing.T) {
	e := newPersistEnv(t)
	ids := buildRichState(t, e)
	owner := "owner"

	snaps := emitAll(t, e.rt)
	e.sink.mu.Lock()
	cut := len(e.sink.recs)
	e.sink.mu.Unlock()

	// Tail mutations touching state the snapshot carried: the pending
	// proposal is accepted, instance A advances further and annotates,
	// a new instance is born entirely in the tail.
	if _, err := e.rt.AcceptChange(ids[2], owner, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rt.Advance(ids[0], "eureview", owner, AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := e.rt.Annotate(ids[0], owner, "post-snapshot note"); err != nil {
		t.Fatal(err)
	}
	d := e.instantiate(t)
	if _, err := e.rt.Advance(d.ID, "elaboration", owner, AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}

	rt2 := New2(t, e)
	for _, r := range snaps {
		if err := rt2.ApplyJournal(r.id, r.data); err != nil {
			t.Fatalf("apply snapshot: %v", err)
		}
	}
	e.sink.mu.Lock()
	tail := append([]capturedRec(nil), e.sink.recs[cut:]...)
	e.sink.mu.Unlock()
	for _, r := range tail {
		if err := rt2.ApplyJournal(r.id, r.data); err != nil {
			t.Fatalf("apply tail record: %v", err)
		}
	}
	rt2.FinishRecovery()
	assertSameState(t, e.rt, rt2)
}

// TestSnapshotSurvivesRingTruncation: an instance whose in-memory ring
// dropped old events must snapshot and recover with the same retained
// window, gapless numbering and unchanged aggregates — and a recovery
// under a smaller cap re-truncates like the live path would.
func TestSnapshotSurvivesRingTruncation(t *testing.T) {
	sink := &captureSink{}
	e := newPersistEnvWith(t, sink, func(cfg *Config) { cfg.MaxEventsInMemory = 16 })
	owner := "owner"
	snap := e.instantiate(t)
	for i := 0; i < 60; i++ {
		if err := e.rt.Annotate(snap.ID, owner, "note"); err != nil {
			t.Fatal(err)
		}
	}
	sum, _ := e.rt.Summary(snap.ID)
	if sum.TruncatedEvents == 0 {
		t.Fatal("test needs truncation to have happened")
	}

	rt2, err := New(Config{Registry: testActions(t), Clock: e.clock, SyncActions: true, MaxEventsInMemory: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range emitAll(t, e.rt) {
		if err := rt2.ApplyJournal(r.id, r.data); err != nil {
			t.Fatal(err)
		}
	}
	rt2.FinishRecovery()
	assertSameState(t, e.rt, rt2)

	// Smaller cap on recovery: the restored ring shrinks accordingly.
	rt3, err := New(Config{Registry: testActions(t), Clock: e.clock, SyncActions: true, MaxEventsInMemory: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range emitAll(t, e.rt) {
		if err := rt3.ApplyJournal(r.id, r.data); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := rt3.Summary(snap.ID)
	if got.Events != sum.Events {
		t.Fatalf("total event count changed under smaller cap: %d vs %d", got.Events, sum.Events)
	}
	if page, _ := rt3.Events(snap.ID, 0, 0); len(page.Events) > 5 {
		t.Fatalf("ring not re-truncated under smaller cap: %d events retained", len(page.Events))
	}
}

// newPersistEnvWith is newPersistEnv with a config hook.
func newPersistEnvWith(t testing.TB, sink *captureSink, mutate func(*Config)) *persistEnv {
	t.Helper()
	e := newPersistEnv(t)
	cfg := Config{
		Registry:    testActions(t),
		Invoker:     e.inv,
		Clock:       e.clock,
		SyncActions: true,
		Journal:     sink,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.rt = rt
	e.inv.rt = rt
	e.sink = sink
	return e
}

// TestParallelReplayEquivalence shards the captured journal across
// GOMAXPROCS-style appliers — per-instance order preserved, instances
// interleaved arbitrarily, exactly how store.Instances.ReplayParallel
// drives ApplyJournal — and expects state identical to the sequential
// replay. Run under -race this is the concurrency proof for the
// replay path.
func TestParallelReplayEquivalence(t *testing.T) {
	e := newPersistEnv(t)
	buildRichState(t, e)
	// A wider population so every worker has real work.
	owner := "owner"
	for i := 0; i < 24; i++ {
		s := e.instantiate(t)
		for _, phase := range []string{"elaboration", "internalreview"} {
			if _, err := e.rt.Advance(s.ID, phase, owner, AdvanceOptions{}); err != nil {
				t.Fatal(err)
			}
		}
	}

	seq := New2(t, e)
	e.sink.replayInto(t, seq)

	par := New2(t, e)
	const workers = 8
	lanes := make([]chan capturedRec, workers)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := range lanes {
		lanes[i] = make(chan capturedRec, 64)
		wg.Add(1)
		go func(ch chan capturedRec) {
			defer wg.Done()
			for r := range ch {
				if err := par.ApplyJournal(r.id, r.data); err != nil {
					errs <- err
					return
				}
			}
		}(lanes[i])
	}
	e.sink.mu.Lock()
	recs := append([]capturedRec(nil), e.sink.recs...)
	e.sink.mu.Unlock()
	for _, r := range recs {
		lanes[shardkey.Index(r.id, workers)] <- r
	}
	for _, ch := range lanes {
		close(ch)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	par.FinishRecovery()
	assertSameState(t, seq, par)
}

// TestEmitSnapshotsDuringLiveTraffic races EmitSnapshots against
// concurrent mutations and instantiations: no deadlock, no race, and
// every emitted record must decode and apply cleanly.
func TestEmitSnapshotsDuringLiveTraffic(t *testing.T) {
	e := newPersistEnv(t)
	owner := "owner"
	var ids []string
	for i := 0; i < 8; i++ {
		ids = append(ids, e.instantiate(t).ID)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ { // bounded: the emitter must not be starved on small boxes
				select {
				case <-stop:
					return
				default:
				}
				if i%7 == 0 {
					e.instantiate(t)
					continue
				}
				if err := e.rt.Annotate(ids[(w*5+i)%len(ids)], owner, "churn"); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for round := 0; round < 5; round++ {
		rt2 := New2(t, e)
		if err := e.rt.EmitSnapshots(func(id string, data []byte) error {
			return rt2.ApplyJournal(id, append([]byte(nil), data...))
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotRecordRejectsDuplicates: a snapshot record for an id the
// replay already knows is corruption, not something to merge.
func TestSnapshotRecordRejectsDuplicates(t *testing.T) {
	e := newPersistEnv(t)
	e.instantiate(t)
	recs := emitAll(t, e.rt)
	rt2 := New2(t, e)
	if err := rt2.ApplyJournal(recs[0].id, recs[0].data); err != nil {
		t.Fatal(err)
	}
	err := rt2.ApplyJournal(recs[0].id, recs[0].data)
	if err == nil || !strings.Contains(err.Error(), "existing") {
		t.Fatalf("duplicate snapshot accepted: %v", err)
	}
}
