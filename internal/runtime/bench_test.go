package runtime

// Benchmarks for the copy-free read path: Advance result modes over
// instances with realistic (~128-event) histories, and the paged event
// accessor. The cockpit-side benchmarks live in internal/monitor.

import (
	"fmt"
	"testing"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/store"
)

// benchPopulation builds a runtime with n instances, each carrying
// ~events history entries (created + phase-entered + annotations).
func benchPopulation(b *testing.B, n, events int, mutate func(*Config)) (*Runtime, []string) {
	b.Helper()
	cfg := Config{Registry: actionlib.NewRegistry(), SyncActions: true}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	model := stressModel()
	ids := make([]string, n)
	for i := range ids {
		ref := resource.Ref{URI: fmt.Sprintf("urn:bench:res-%d", i), Type: "stress"}
		snap, err := rt.Instantiate(model, ref, "owner", nil)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = snap.ID
		if _, err := rt.Advance(snap.ID, "draft", "owner", AdvanceOptions{}); err != nil {
			b.Fatal(err)
		}
		for e := 2; e < events; e++ {
			if err := rt.Annotate(snap.ID, "owner", "note"); err != nil {
				b.Fatal(err)
			}
		}
	}
	return rt, ids
}

// BenchmarkAdvance compares the two Advance result modes over a
// population whose instances carry 128-event histories: the snapshot
// mode deep-copies the whole history per move, the summary mode copies
// only the events the move appended. Moves round-robin over 512
// instances so histories stay ≈128 events across the run.
func BenchmarkAdvance(b *testing.B) {
	const population, events = 512, 128
	modes := []struct {
		name string
		move func(rt *Runtime, id string) error
	}{
		{"snapshot", func(rt *Runtime, id string) error {
			_, err := rt.Advance(id, "draft", "owner", AdvanceOptions{})
			return err
		}},
		{"summary", func(rt *Runtime, id string) error {
			_, err := rt.AdvanceSummary(id, "draft", "owner", AdvanceOptions{})
			return err
		}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			rt, ids := benchPopulation(b, population, events, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := mode.move(rt, ids[i%population]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEventsPage measures the paged history read against the full
// snapshot a timeline endpoint used to need.
func BenchmarkEventsPage(b *testing.B) {
	rt, ids := benchPopulation(b, 16, 128, nil)
	b.Run("page-32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			page, ok := rt.Events(ids[i%len(ids)], 64, 32)
			if !ok || len(page.Events) != 32 {
				b.Fatalf("page = %d events", len(page.Events))
			}
		}
	})
	b.Run("snapshot-full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap, ok := rt.Instance(ids[i%len(ids)])
			if !ok || len(snap.Events) == 0 {
				b.Fatal("snapshot missing")
			}
		}
	})
}

// BenchmarkPersistAdvance measures the write-through cost of the
// durability seam: token moves with no journal, with the record codec
// feeding an in-memory sink (encode-only), and with the real on-disk
// flush-combining instance journal.
func BenchmarkPersistAdvance(b *testing.B) {
	modes := []struct {
		name string
		sink func(b *testing.B) Journal
	}{
		{"ram", func(*testing.B) Journal { return nil }},
		{"encode-only", func(*testing.B) Journal {
			return JournalFunc(func(rec *JournalRecord) error {
				_, err := rec.Encode()
				return err
			})
		}},
		{"journal", func(b *testing.B) Journal {
			coll, err := store.OpenInstances(b.TempDir(), store.InstancesOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if err := coll.Replay(func(string, []byte) error { return nil }); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { coll.Close() })
			return storeSink{coll}
		}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			sink := mode.sink(b)
			rt, ids := benchPopulation(b, 64, 2, func(cfg *Config) { cfg.Journal = sink })
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rt.AdvanceSummary(ids[i%len(ids)], "draft", "owner", AdvanceOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJournalReplay measures recovery throughput: rebuilding a
// runtime from a captured journal (records already in memory, so this
// is decode+apply, the CPU side of a restart).
func BenchmarkJournalReplay(b *testing.B) {
	sink := &captureSink{}
	rt, ids := benchPopulation(b, 64, 16, func(cfg *Config) { cfg.Journal = sink })
	for _, id := range ids {
		if _, err := rt.AdvanceSummary(id, "draft", "owner", AdvanceOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	records := int64(len(sink.recs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt2, err := New(Config{Registry: actionlib.NewRegistry(), SyncActions: true})
		if err != nil {
			b.Fatal(err)
		}
		rec := sink.replayInto(b, rt2)
		if rec.Records != records {
			b.Fatalf("replayed %d records, want %d", rec.Records, records)
		}
	}
	b.ReportMetric(float64(records)*float64(b.N), "records")
}
