// Package access implements the roles and access rights of the paper
// (§IV.D): the lifecycle manager (designs and modifies a lifecycle
// model), the lifecycle instance owner (drives and modifies a running
// instance), the token owner (may only follow the suggested transitions,
// and typically only specific ones), and the resource owner (full rights
// over the resource itself — enforced by the managing application's
// plug-in, not by Gelee).
//
// The package also implements the widget visibility attributes of §V.C:
// different users get different views of the same lifecycle, and a
// widget may demand authentication based on the visibility configured
// for its scope.
package access

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Role names one of the four paper-defined roles.
type Role string

// The roles of §IV.D. Scope conventions: lifecycle-manager grants are
// scoped by model URI, instance-owner and token-owner by instance id,
// resource-owner by resource URI.
const (
	RoleLifecycleManager Role = "lifecycle-manager"
	RoleInstanceOwner    Role = "instance-owner"
	RoleTokenOwner       Role = "token-owner"
	RoleResourceOwner    Role = "resource-owner"
)

// Valid reports whether r is a known role.
func (r Role) Valid() bool {
	switch r {
	case RoleLifecycleManager, RoleInstanceOwner, RoleTokenOwner, RoleResourceOwner:
		return true
	}
	return false
}

// User is an account in the users-and-roles repository of the data tier.
// Admin users bypass all checks (the hosting operator).
type User struct {
	Name    string `json:"name"`
	Display string `json:"display,omitempty"`
	Email   string `json:"email,omitempty"`
	Admin   bool   `json:"admin,omitempty"`
}

// Grant assigns a role on a scope to a user. For token owners, Targets
// optionally restricts the grant to transitions into the listed phases
// ("typically to specific transitions only", §IV.D); empty Targets means
// any suggested transition.
type Grant struct {
	User    string   `json:"user"`
	Role    Role     `json:"role"`
	Scope   string   `json:"scope"`
	Targets []string `json:"targets,omitempty"`
}

// Visibility is a widget visibility attribute (§V.C).
type Visibility string

// Visibility levels: public widgets render for anyone; authenticated
// widgets require any signed-in user; restricted widgets require a role
// on the widget's scope.
const (
	VisibilityPublic        Visibility = "public"
	VisibilityAuthenticated Visibility = "authenticated"
	VisibilityRestricted    Visibility = "restricted"
)

// Valid reports whether v is a known visibility level.
func (v Visibility) Valid() bool {
	switch v {
	case VisibilityPublic, VisibilityAuthenticated, VisibilityRestricted:
		return true
	}
	return false
}

// Control is the in-memory access control service. It is safe for
// concurrent use. Persistence is layered on by the facade, which stores
// users and grants in the data tier and rebuilds the Control on load.
type Control struct {
	mu     sync.RWMutex
	users  map[string]User
	grants map[string][]Grant // key: scope
}

// NewControl returns an empty access control service.
func NewControl() *Control {
	return &Control{
		users:  make(map[string]User),
		grants: make(map[string][]Grant),
	}
}

// AddUser registers a user account. Re-adding a name updates it.
func (c *Control) AddUser(u User) error {
	if strings.TrimSpace(u.Name) == "" {
		return fmt.Errorf("access: user has no name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.users[u.Name] = u
	return nil
}

// User returns the account registered under name.
func (c *Control) User(name string) (User, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	u, ok := c.users[name]
	return u, ok
}

// Users returns every account sorted by name.
func (c *Control) Users() []User {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]User, 0, len(c.users))
	for _, u := range c.users {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Grant assigns a role on a scope. The user must exist; the role must be
// valid. Granting the same (user, role, scope) twice is idempotent; for
// token owners the target lists are merged.
func (c *Control) Grant(g Grant) error {
	if !g.Role.Valid() {
		return fmt.Errorf("access: unknown role %q", g.Role)
	}
	if strings.TrimSpace(g.Scope) == "" {
		return fmt.Errorf("access: grant of %s to %s has no scope", g.Role, g.User)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.users[g.User]; !ok {
		return fmt.Errorf("access: unknown user %q", g.User)
	}
	for i, ex := range c.grants[g.Scope] {
		if ex.User == g.User && ex.Role == g.Role {
			if len(g.Targets) == 0 {
				c.grants[g.Scope][i].Targets = nil // widen to unrestricted
			} else if len(ex.Targets) > 0 {
				c.grants[g.Scope][i].Targets = mergeTargets(ex.Targets, g.Targets)
			}
			return nil
		}
	}
	g.Targets = append([]string(nil), g.Targets...)
	c.grants[g.Scope] = append(c.grants[g.Scope], g)
	return nil
}

func mergeTargets(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, t := range append(append([]string{}, a...), b...) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// Revoke removes a (user, role) grant from a scope. Revoking a missing
// grant is a no-op.
func (c *Control) Revoke(user string, role Role, scope string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	gs := c.grants[scope]
	out := gs[:0]
	for _, g := range gs {
		if !(g.User == user && g.Role == role) {
			out = append(out, g)
		}
	}
	if len(out) == 0 {
		delete(c.grants, scope)
	} else {
		c.grants[scope] = out
	}
}

// Has reports whether the user holds the role on the scope (directly;
// admin bypass is applied by the Can* helpers, not here).
func (c *Control) Has(user string, role Role, scope string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, g := range c.grants[scope] {
		if g.User == user && g.Role == role {
			return true
		}
	}
	return false
}

// RolesOn returns the roles the user holds on the scope, sorted.
func (c *Control) RolesOn(user, scope string) []Role {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Role
	for _, g := range c.grants[scope] {
		if g.User == user {
			out = append(out, g.Role)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UsersWith returns the users holding the role on the scope, sorted.
func (c *Control) UsersWith(role Role, scope string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for _, g := range c.grants[scope] {
		if g.Role == role {
			out = append(out, g.User)
		}
	}
	sort.Strings(out)
	return out
}

// Grants returns a copy of every grant, for persistence.
func (c *Control) Grants() []Grant {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Grant
	for _, gs := range c.grants {
		for _, g := range gs {
			g.Targets = append([]string(nil), g.Targets...)
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scope != out[j].Scope {
			return out[i].Scope < out[j].Scope
		}
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		return out[i].Role < out[j].Role
	})
	return out
}

func (c *Control) isAdmin(user string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	u, ok := c.users[user]
	return ok && u.Admin
}

// CanDesign reports whether the user may create or modify the lifecycle
// model with the given URI (lifecycle manager role).
func (c *Control) CanDesign(user, modelURI string) bool {
	return c.isAdmin(user) || c.Has(user, RoleLifecycleManager, modelURI)
}

// CanDrive reports whether the user may drive and modify the lifecycle
// instance: free token moves, annotation, model change accept/reject
// (instance owner role).
func (c *Control) CanDrive(user, instanceID string) bool {
	return c.isAdmin(user) || c.Has(user, RoleInstanceOwner, instanceID)
}

// CanFollow reports whether the user may move the token of the instance
// along a suggested transition into target. Instance owners can always;
// token owners only when their grant covers the target (an empty target
// list on the grant covers every suggested transition).
func (c *Control) CanFollow(user, instanceID, target string) bool {
	if c.CanDrive(user, instanceID) {
		return true
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, g := range c.grants[instanceID] {
		if g.User != user || g.Role != RoleTokenOwner {
			continue
		}
		if len(g.Targets) == 0 {
			return true
		}
		for _, t := range g.Targets {
			if t == target {
				return true
			}
		}
	}
	return false
}

// CanSee reports whether the user may view a widget with the given
// visibility on the given scope. The empty user name means anonymous.
func (c *Control) CanSee(user string, vis Visibility, scope string) bool {
	switch vis {
	case VisibilityPublic:
		return true
	case VisibilityAuthenticated:
		_, ok := c.User(user)
		return ok
	case VisibilityRestricted:
		if c.isAdmin(user) {
			return true
		}
		return len(c.RolesOn(user, scope)) > 0
	}
	return false
}
