package access

import (
	"reflect"
	"testing"
)

func control(t *testing.T) *Control {
	t.Helper()
	c := NewControl()
	for _, u := range []User{
		{Name: "root", Admin: true},
		{Name: "coordinator", Display: "Project Coordinator"},
		{Name: "owner"},
		{Name: "dev"},
		{Name: "stranger"},
	} {
		if err := c.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestAddUserValidation(t *testing.T) {
	c := NewControl()
	if err := c.AddUser(User{Name: "  "}); err == nil {
		t.Fatal("blank user name accepted")
	}
	if err := c.AddUser(User{Name: "a", Email: "a@x"}); err != nil {
		t.Fatal(err)
	}
	u, ok := c.User("a")
	if !ok || u.Email != "a@x" {
		t.Fatalf("User = %+v, %t", u, ok)
	}
	// Re-add updates.
	c.AddUser(User{Name: "a", Email: "new@x"})
	u, _ = c.User("a")
	if u.Email != "new@x" {
		t.Fatalf("update lost: %+v", u)
	}
}

func TestGrantValidation(t *testing.T) {
	c := control(t)
	if err := c.Grant(Grant{User: "ghost", Role: RoleInstanceOwner, Scope: "i1"}); err == nil {
		t.Fatal("grant to unknown user accepted")
	}
	if err := c.Grant(Grant{User: "owner", Role: "superhero", Scope: "i1"}); err == nil {
		t.Fatal("unknown role accepted")
	}
	if err := c.Grant(Grant{User: "owner", Role: RoleInstanceOwner, Scope: ""}); err == nil {
		t.Fatal("empty scope accepted")
	}
}

func TestCanDesign(t *testing.T) {
	c := control(t)
	if err := c.Grant(Grant{User: "coordinator", Role: RoleLifecycleManager, Scope: "urn:m1"}); err != nil {
		t.Fatal(err)
	}
	if !c.CanDesign("coordinator", "urn:m1") {
		t.Fatal("lifecycle manager cannot design own model")
	}
	if c.CanDesign("coordinator", "urn:other") {
		t.Fatal("design right leaked to another model")
	}
	if c.CanDesign("dev", "urn:m1") {
		t.Fatal("non-manager can design")
	}
	if !c.CanDesign("root", "urn:m1") {
		t.Fatal("admin bypass missing")
	}
}

func TestCanDriveAndFollow(t *testing.T) {
	c := control(t)
	if err := c.Grant(Grant{User: "owner", Role: RoleInstanceOwner, Scope: "i1"}); err != nil {
		t.Fatal(err)
	}
	// dev is a token owner restricted to moving into "internalreview".
	if err := c.Grant(Grant{User: "dev", Role: RoleTokenOwner, Scope: "i1", Targets: []string{"internalreview"}}); err != nil {
		t.Fatal(err)
	}

	if !c.CanDrive("owner", "i1") {
		t.Fatal("instance owner cannot drive")
	}
	if c.CanDrive("dev", "i1") {
		t.Fatal("token owner can drive (free moves must be owner-only)")
	}
	// Instance owners can follow anything.
	if !c.CanFollow("owner", "i1", "anywhere") {
		t.Fatal("instance owner cannot follow")
	}
	// Token owner: only granted targets.
	if !c.CanFollow("dev", "i1", "internalreview") {
		t.Fatal("token owner cannot follow granted transition")
	}
	if c.CanFollow("dev", "i1", "publication") {
		t.Fatal("token owner can follow ungranted transition")
	}
	if c.CanFollow("stranger", "i1", "internalreview") {
		t.Fatal("stranger can follow")
	}
}

func TestTokenOwnerUnrestrictedTargets(t *testing.T) {
	c := control(t)
	if err := c.Grant(Grant{User: "dev", Role: RoleTokenOwner, Scope: "i1"}); err != nil {
		t.Fatal(err)
	}
	for _, target := range []string{"a", "b", "c"} {
		if !c.CanFollow("dev", "i1", target) {
			t.Fatalf("unrestricted token owner cannot follow to %q", target)
		}
	}
}

func TestGrantMergesTargets(t *testing.T) {
	c := control(t)
	if err := c.Grant(Grant{User: "dev", Role: RoleTokenOwner, Scope: "i1", Targets: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Grant(Grant{User: "dev", Role: RoleTokenOwner, Scope: "i1", Targets: []string{"b"}}); err != nil {
		t.Fatal(err)
	}
	if !c.CanFollow("dev", "i1", "a") || !c.CanFollow("dev", "i1", "b") {
		t.Fatal("merged targets not honored")
	}
	if c.CanFollow("dev", "i1", "c") {
		t.Fatal("unexpected target allowed after merge")
	}
	// Granting with no targets widens to unrestricted.
	if err := c.Grant(Grant{User: "dev", Role: RoleTokenOwner, Scope: "i1"}); err != nil {
		t.Fatal(err)
	}
	if !c.CanFollow("dev", "i1", "c") {
		t.Fatal("widening grant not honored")
	}
}

func TestRevoke(t *testing.T) {
	c := control(t)
	c.Grant(Grant{User: "owner", Role: RoleInstanceOwner, Scope: "i1"})
	c.Grant(Grant{User: "dev", Role: RoleTokenOwner, Scope: "i1"})
	c.Revoke("owner", RoleInstanceOwner, "i1")
	if c.CanDrive("owner", "i1") {
		t.Fatal("revoked owner can still drive")
	}
	if !c.CanFollow("dev", "i1", "x") {
		t.Fatal("revoke removed an unrelated grant")
	}
	c.Revoke("ghost", RoleTokenOwner, "i1") // no-op
	c.Revoke("dev", RoleTokenOwner, "nonexistent-scope")
	if !c.CanFollow("dev", "i1", "x") {
		t.Fatal("no-op revoke removed a grant")
	}
}

func TestRolesOnAndUsersWith(t *testing.T) {
	c := control(t)
	c.Grant(Grant{User: "owner", Role: RoleInstanceOwner, Scope: "i1"})
	c.Grant(Grant{User: "owner", Role: RoleTokenOwner, Scope: "i1"})
	c.Grant(Grant{User: "dev", Role: RoleTokenOwner, Scope: "i1"})

	roles := c.RolesOn("owner", "i1")
	want := []Role{RoleInstanceOwner, RoleTokenOwner}
	if !reflect.DeepEqual(roles, want) {
		t.Fatalf("RolesOn = %v, want %v", roles, want)
	}
	users := c.UsersWith(RoleTokenOwner, "i1")
	if !reflect.DeepEqual(users, []string{"dev", "owner"}) {
		t.Fatalf("UsersWith = %v", users)
	}
	if got := c.RolesOn("stranger", "i1"); len(got) != 0 {
		t.Fatalf("RolesOn(stranger) = %v", got)
	}
}

func TestGrantsSnapshotSorted(t *testing.T) {
	c := control(t)
	c.Grant(Grant{User: "owner", Role: RoleInstanceOwner, Scope: "i2"})
	c.Grant(Grant{User: "dev", Role: RoleTokenOwner, Scope: "i1", Targets: []string{"x"}})
	gs := c.Grants()
	if len(gs) != 2 {
		t.Fatalf("Grants = %v", gs)
	}
	if gs[0].Scope != "i1" || gs[1].Scope != "i2" {
		t.Fatalf("grants not sorted by scope: %v", gs)
	}
	// Mutating the returned slice must not affect the control.
	gs[0].Targets[0] = "tampered"
	if c.CanFollow("dev", "i1", "tampered") {
		t.Fatal("Grants returned aliased storage")
	}
}

func TestVisibility(t *testing.T) {
	c := control(t)
	c.Grant(Grant{User: "owner", Role: RoleInstanceOwner, Scope: "i1"})

	cases := []struct {
		user string
		vis  Visibility
		want bool
	}{
		{"", VisibilityPublic, true},
		{"stranger", VisibilityPublic, true},
		{"", VisibilityAuthenticated, false},
		{"stranger", VisibilityAuthenticated, true},
		{"nonexistent-user", VisibilityAuthenticated, false},
		{"", VisibilityRestricted, false},
		{"stranger", VisibilityRestricted, false},
		{"owner", VisibilityRestricted, true},
		{"root", VisibilityRestricted, true}, // admin bypass
	}
	for _, tc := range cases {
		if got := c.CanSee(tc.user, tc.vis, "i1"); got != tc.want {
			t.Errorf("CanSee(%q, %s) = %t, want %t", tc.user, tc.vis, got, tc.want)
		}
	}
	if c.CanSee("owner", "invisible", "i1") {
		t.Fatal("unknown visibility should deny")
	}
}

func TestRoleAndVisibilityValidity(t *testing.T) {
	for _, r := range []Role{RoleLifecycleManager, RoleInstanceOwner, RoleTokenOwner, RoleResourceOwner} {
		if !r.Valid() {
			t.Errorf("%s should be valid", r)
		}
	}
	if Role("emperor").Valid() {
		t.Error("emperor should not be a valid role")
	}
	for _, v := range []Visibility{VisibilityPublic, VisibilityAuthenticated, VisibilityRestricted} {
		if !v.Valid() {
			t.Errorf("%s should be valid", v)
		}
	}
	if Visibility("cloaked").Valid() {
		t.Error("cloaked should not be a valid visibility")
	}
}

func TestUsersSorted(t *testing.T) {
	c := control(t)
	us := c.Users()
	for i := 1; i < len(us); i++ {
		if us[i-1].Name > us[i].Name {
			t.Fatalf("Users not sorted: %v", us)
		}
	}
}
