package resilience

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: calls flow, failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls fail fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: a bounded number of trial calls probe the
	// endpoint; one success closes, one failure re-opens.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes every breaker in a set.
type BreakerConfig struct {
	// Failures is the consecutive-failure streak that opens a closed
	// breaker (default 5).
	Failures int
	// Cooldown is how long an open breaker rejects before letting
	// trial calls through (default 15s).
	Cooldown time.Duration
	// HalfOpenProbes caps concurrent trial calls while half-open
	// (default 1).
	HalfOpenProbes int
	// MaxInFlight caps concurrent calls per key in any state
	// (0 = unlimited), so one slow endpoint saturates its own lane
	// only.
	MaxInFlight int
	// Now drives the cooldown clock; nil means time.Now.
	Now func() time.Time
}

func (c *BreakerConfig) defaults() {
	if c.Failures <= 0 {
		c.Failures = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 15 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// BreakerSet keys independent breakers by endpoint. The zero map grows
// lazily: endpoints get a breaker on first use.
type BreakerSet struct {
	cfg BreakerConfig

	mu sync.RWMutex
	m  map[string]*breaker

	opens    atomic.Int64
	rejected atomic.Int64
}

// NewBreakerSet builds an empty set.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	cfg.defaults()
	return &BreakerSet{cfg: cfg, m: make(map[string]*breaker)}
}

type breaker struct {
	set *BreakerSet

	mu         sync.Mutex
	state      BreakerState
	failStreak int
	openedAt   time.Time
	inFlight   int
	probes     int
	opensTotal int64
	rejTotal   int64
	lastErr    string
}

func (s *BreakerSet) get(key string) *breaker {
	s.mu.RLock()
	b := s.m[key]
	s.mu.RUnlock()
	if b != nil {
		return b
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b = s.m[key]; b == nil {
		b = &breaker{set: s}
		s.m[key] = b
	}
	return b
}

// Acquire admits one call to key's endpoint. On admission it returns a
// release function the caller must invoke exactly once with the call's
// outcome; on rejection it returns ErrBreakerOpen or ErrCapacity
// (wrapped with the key).
func (s *BreakerSet) Acquire(key string) (release func(err error), err error) {
	b := s.get(key)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && s.cfg.Now().Sub(b.openedAt) >= s.cfg.Cooldown {
		b.state = BreakerHalfOpen
		b.probes = 0
	}
	switch b.state {
	case BreakerOpen:
		b.rejTotal++
		s.rejected.Add(1)
		return nil, fmt.Errorf("%w: %s", ErrBreakerOpen, key)
	case BreakerHalfOpen:
		if b.probes >= s.cfg.HalfOpenProbes {
			b.rejTotal++
			s.rejected.Add(1)
			return nil, fmt.Errorf("%w: %s (half-open probe in flight)", ErrBreakerOpen, key)
		}
	}
	if s.cfg.MaxInFlight > 0 && b.inFlight >= s.cfg.MaxInFlight {
		b.rejTotal++
		s.rejected.Add(1)
		return nil, fmt.Errorf("%w: %s (%d in flight)", ErrCapacity, key, b.inFlight)
	}
	if b.state == BreakerHalfOpen {
		b.probes++
	}
	b.inFlight++
	return func(err error) { b.release(err) }, nil
}

func (b *breaker) release(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.inFlight--
	wasHalfOpen := b.state == BreakerHalfOpen
	if wasHalfOpen {
		b.probes--
	}
	if err == nil {
		b.failStreak = 0
		if wasHalfOpen {
			b.state = BreakerClosed
		}
		return
	}
	b.lastErr = err.Error()
	if wasHalfOpen {
		b.trip()
		return
	}
	if b.state == BreakerClosed {
		b.failStreak++
		if b.failStreak >= b.set.cfg.Failures {
			b.trip()
		}
	}
}

// trip opens the breaker; callers hold b.mu.
func (b *breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.set.cfg.Now()
	b.failStreak = 0
	b.opensTotal++
	b.set.opens.Add(1)
}

// Opens counts transitions into the open state across all keys.
func (s *BreakerSet) Opens() int64 { return s.opens.Load() }

// Rejected counts fast-failed acquisitions (open + capacity) across
// all keys.
func (s *BreakerSet) Rejected() int64 { return s.rejected.Load() }

// OpenCount is how many breakers currently sit open. A breaker whose
// cooldown has lapsed still counts until the next Acquire flips it to
// half-open — good enough for alert rules.
func (s *BreakerSet) OpenCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, b := range s.m {
		b.mu.Lock()
		if b.state == BreakerOpen {
			n++
		}
		b.mu.Unlock()
	}
	return n
}

// BreakerStats is one breaker's section of the admin report.
type BreakerStats struct {
	State      string `json:"state"`
	FailStreak int    `json:"fail_streak"`
	InFlight   int    `json:"in_flight"`
	Opens      int64  `json:"opens"`
	Rejected   int64  `json:"rejected"`
	LastError  string `json:"last_error,omitempty"`
}

// Stats snapshots every breaker in the set, keyed by endpoint.
func (s *BreakerSet) Stats() map[string]BreakerStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]BreakerStats, len(s.m))
	for k, b := range s.m {
		b.mu.Lock()
		out[k] = BreakerStats{
			State:      b.state.String(),
			FailStreak: b.failStreak,
			InFlight:   b.inFlight,
			Opens:      b.opensTotal,
			Rejected:   b.rejTotal,
			LastError:  b.lastErr,
		}
		b.mu.Unlock()
	}
	return out
}
