// Package resilience turns the engine's health signals into behavior:
// admission control when the commit queue saturates, a degraded
// read-only mode when journal persistence starts failing, circuit
// breakers and bounded concurrency around action outcalls, and
// threshold-driven alerting. The store and runtime layers expose queue
// depth and fail-forward journal-error counters; this package is where
// those numbers stop being dashboard decoration and start shedding,
// tripping and alerting.
//
// # Health state machine
//
// Health tracks the durability of the journal path through three
// states with hysteresis on both edges:
//
//	healthy ──(DegradeAfter consecutive append failures)──▶ degraded
//	degraded ──(ReadOnlyAfter consecutive failures)──▶ read-only
//	read-only ──(RecoverAfter consecutive successes)──▶ degraded
//	degraded ──(RecoverAfter consecutive successes)──▶ healthy
//
// Every journal append outcome — the store's group-commit result, the
// instance appender's flush result, the runtime's fail-forward record
// path — is fed to Health.Observe. A single glitch degrades (the
// operator should know), a streak trips read-only: from then on the
// Gate rejects mutations with ErrReadOnly so a dying disk can no
// longer silently acknowledge unjournaled writes. Because rejected
// mutations generate no journal traffic, read-only mode cannot recover
// organically; recovery is probe-based — the owner periodically
// writes a no-op probe record through the same journal path and feeds
// the outcome back to Observe, so RecoverAfter consecutive probe
// successes step the state back down and real traffic finishes the
// recovery.
//
// # Breaker semantics
//
// Breakers guard outcalls per endpoint with the classic three states:
//
//	closed ──(Failures consecutive errors)──▶ open
//	open ──(Cooldown elapsed)──▶ half-open
//	half-open: at most HalfOpenProbes trial calls; one success closes,
//	one failure re-opens.
//
// While open, Acquire fails fast with ErrBreakerOpen — a wedged action
// service costs one timeout per Cooldown instead of one per dispatch.
// Each breaker also caps in-flight calls (MaxInFlight), so a slow
// endpoint saturates its own lane, not the dispatcher's goroutine
// budget. Keys are endpoint URLs: one bad service never affects
// another's breaker.
//
// Admission, Gate, Backoff/Retry and the alert Watcher/Feed complete
// the layer; gelee.Options.Resilience wires all of it together.
package resilience

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Sentinel errors the HTTP layer maps onto status codes (429 for
// shedding, 503 for read-only, 503 for breaker/capacity rejections on
// the dispatch path).
var (
	// ErrReadOnly rejects mutations while Health is in read-only mode.
	ErrReadOnly = errors.New("resilience: read-only mode (journal persistence failing)")
	// ErrShed rejects mutations while the commit queue is saturated.
	ErrShed = errors.New("resilience: overloaded")
	// ErrBreakerOpen fails an outcall fast while its breaker is open.
	ErrBreakerOpen = errors.New("resilience: circuit open")
	// ErrCapacity rejects an outcall at the per-endpoint in-flight cap.
	ErrCapacity = errors.New("resilience: endpoint at capacity")
)

// ShedError is the concrete ErrShed carrying the Retry-After hint and
// the depth/watermark pair that triggered the shed.
type ShedError struct {
	Depth      int
	Watermark  int
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("resilience: overloaded: commit queue depth %d >= watermark %d (retry after %s)",
		e.Depth, e.Watermark, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrShed) hold.
func (e *ShedError) Unwrap() error { return ErrShed }

// RetryAfterOf extracts the Retry-After hint from a shed error, or 0.
func RetryAfterOf(err error) time.Duration {
	var se *ShedError
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return 0
}

// Gate is the single mutation-admission decision the HTTP tier asks
// for: read-only mode first (durability beats availability), then load
// shedding. Reads are never gated. A nil Gate admits everything.
type Gate struct {
	Health    *Health
	Admission *Admission

	readOnlyRejected atomic.Int64
}

// AdmitMutation returns nil to admit, ErrReadOnly when the journal
// path is failing, or a *ShedError when the commit queue is saturated.
func (g *Gate) AdmitMutation() error {
	if g == nil {
		return nil
	}
	if g.Health != nil && g.Health.State() == ReadOnly {
		g.readOnlyRejected.Add(1)
		return ErrReadOnly
	}
	if g.Admission != nil {
		return g.Admission.Admit()
	}
	return nil
}

// ReadOnlyRejected counts mutations rejected in read-only mode.
func (g *Gate) ReadOnlyRejected() int64 {
	if g == nil {
		return 0
	}
	return g.readOnlyRejected.Load()
}

// ProbeStats counts durability probes issued while unhealthy.
type ProbeStats struct {
	Attempts int64 `json:"attempts"`
	Failures int64 `json:"failures"`
}

// Report is the aggregated health document served by
// GET /api/v1/admin/health — everything a load balancer or operator
// needs in one pull.
type Report struct {
	// State is the health state: "healthy", "degraded" or "read-only".
	// Load balancers should eject the node when it is "read-only".
	State            string                  `json:"state"`
	Health           HealthReport            `json:"health"`
	Admission        AdmissionStats          `json:"admission"`
	ReadOnlyRejected int64                   `json:"read_only_rejected"`
	Breakers         map[string]BreakerStats `json:"breakers,omitempty"`
	BreakerOpens     int64                   `json:"breaker_opens_total"`
	BreakerRejected  int64                   `json:"breaker_rejected_total"`
	Probes           ProbeStats              `json:"probes"`
	Alerts           AlertStats              `json:"alerts"`
	// Integrity summarizes journal corruption detection across the
	// store and instance journals (nil when the deployment has no
	// durable journals). Filled by the facade from the store layer's
	// IntegrityStats.
	Integrity *IntegrityReport `json:"integrity,omitempty"`
}

// IntegrityReport is the health endpoint's journal-integrity section:
// the corruption ledger summed across every journal directory the node
// runs (definitions store + instance collection), plus whether
// corruption latched the node read-only.
type IntegrityReport struct {
	// Framing reports that appends write checksummed record envelopes.
	Framing bool `json:"framing"`
	// CorruptFiles counts corruption detections (open + scrub);
	// QuarantinedFiles how many files were moved aside at open.
	CorruptFiles     uint64 `json:"corrupt_files"`
	QuarantinedFiles uint64 `json:"quarantined_files"`
	// TornTailsRecovered counts crash tails opens dropped — recovered,
	// not corruption.
	TornTailsRecovered uint64 `json:"torn_tails_recovered"`
	// ScrubPasses / LastScrubUnix report background-scrub progress.
	ScrubPasses   uint64 `json:"scrub_passes"`
	LastScrubUnix int64  `json:"last_scrub_unix,omitempty"`
	// ReadOnlyLatched reports that quarantined corruption pinned the
	// node read-only until restart-after-repair.
	ReadOnlyLatched bool   `json:"read_only_latched"`
	LastError       string `json:"last_error,omitempty"`
}
