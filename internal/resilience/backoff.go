package resilience

import (
	"context"
	"math/rand/v2"
	"time"
)

// Backoff computes jittered exponential delays between retry attempts.
// The zero value uses the defaults (50ms base, 2s cap, ×2 growth, 50%
// jitter).
type Backoff struct {
	// Base is the pre-jitter delay after the first failure.
	Base time.Duration
	// Max caps the pre-jitter delay.
	Max time.Duration
	// Factor multiplies the delay per attempt.
	Factor float64
	// Jitter is the fraction of the delay randomized (0..1): the final
	// delay is uniform in [d·(1-Jitter), d]. Full-range jitter spreads
	// retry herds without ever waiting longer than the deterministic
	// schedule.
	Jitter float64
}

func (b Backoff) defaults() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.5
	}
	return b
}

// Delay is the sleep before retry attempt+1 (attempt is 0-based: the
// delay after the first failure is Delay(0)).
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.defaults()
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 {
		d -= rand.Float64() * b.Jitter * d
	}
	return time.Duration(d)
}

// Retry runs f up to attempts times (minimum 1), sleeping the jittered
// backoff between failures. It stops early when ctx is done — a
// canceled dispatch must not keep hammering an endpoint — and returns
// the last attempt's error. Only use it for idempotent sends: gelee's
// action invocations carry a unique invocation id end to end, so a
// duplicate delivery is detectable by the receiver.
func Retry(ctx context.Context, attempts int, b Backoff, f func(ctx context.Context) error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			t := time.NewTimer(b.Delay(i - 1))
			select {
			case <-ctx.Done():
				t.Stop()
				return err
			case <-t.C:
			}
		}
		if err = f(ctx); err == nil {
			return nil
		}
		// The caller's context expiring is terminal; a per-attempt
		// timeout inside f is exactly what retries are for.
		if ctx.Err() != nil {
			return err
		}
	}
	return err
}
