package resilience

import (
	"sync/atomic"
	"time"
)

// AdmissionConfig tunes load shedding.
type AdmissionConfig struct {
	// Watermark is the commit-queue depth at which mutations start
	// shedding. 0 disables admission control.
	Watermark int
	// Resume is the depth at which shedding stops once started
	// (hysteresis; default Watermark/2). Without the gap, a queue
	// hovering at the watermark flaps admit/shed per request.
	Resume int
	// RetryAfter is the hint shed responses carry (default 1s).
	RetryAfter time.Duration
}

func (c *AdmissionConfig) defaults() {
	if c.Resume <= 0 || c.Resume >= c.Watermark {
		c.Resume = c.Watermark / 2
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
}

// Admission sheds mutations while the commit queue sits above the
// watermark. The depth function is sampled per decision — it should be
// O(1) (gelee feeds it the group-commit channel depth plus the
// instance appender's in-flight count).
type Admission struct {
	cfg   AdmissionConfig
	depth func() int

	shedding atomic.Bool
	shed     atomic.Int64
	admitted atomic.Int64
}

// NewAdmission builds the controller; depth must be non-nil when
// Watermark > 0.
func NewAdmission(cfg AdmissionConfig, depth func() int) *Admission {
	cfg.defaults()
	return &Admission{cfg: cfg, depth: depth}
}

// Admit returns nil to admit the mutation or a *ShedError to shed it.
func (a *Admission) Admit() error {
	if a == nil || a.cfg.Watermark <= 0 {
		return nil
	}
	d := a.depth()
	if a.shedding.Load() {
		if d > a.cfg.Resume {
			a.shed.Add(1)
			return &ShedError{Depth: d, Watermark: a.cfg.Watermark, RetryAfter: a.cfg.RetryAfter}
		}
		a.shedding.Store(false)
	} else if d >= a.cfg.Watermark {
		a.shedding.Store(true)
		a.shed.Add(1)
		return &ShedError{Depth: d, Watermark: a.cfg.Watermark, RetryAfter: a.cfg.RetryAfter}
	}
	a.admitted.Add(1)
	return nil
}

// Shed counts mutations rejected by admission control.
func (a *Admission) Shed() int64 {
	if a == nil {
		return 0
	}
	return a.shed.Load()
}

// AdmissionStats is the shedding section of the admin report.
type AdmissionStats struct {
	Watermark    int   `json:"watermark"`
	Resume       int   `json:"resume"`
	QueueDepth   int   `json:"queue_depth"`
	Shedding     bool  `json:"shedding"`
	Shed         int64 `json:"shed_total"`
	Admitted     int64 `json:"admitted_total"`
	RetryAfterMS int64 `json:"retry_after_ms"`
}

// Stats snapshots the controller.
func (a *Admission) Stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	st := AdmissionStats{
		Watermark:    a.cfg.Watermark,
		Resume:       a.cfg.Resume,
		Shedding:     a.shedding.Load(),
		Shed:         a.shed.Load(),
		Admitted:     a.admitted.Load(),
		RetryAfterMS: a.cfg.RetryAfter.Milliseconds(),
	}
	if a.depth != nil {
		st.QueueDepth = a.depth()
	}
	return st
}
