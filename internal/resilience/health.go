package resilience

import (
	"sync"
	"sync/atomic"
	"time"
)

// State is a health level of the journal path.
type State int32

const (
	// Healthy: appends succeeding, mutations admitted.
	Healthy State = iota
	// Degraded: recent append failures; mutations still admitted (the
	// runtime's fail-forward semantics apply) but operators are on
	// notice and alert rules fire.
	Degraded
	// ReadOnly: an append-failure streak long enough that continuing
	// to acknowledge writes would silently drop durability; the Gate
	// rejects mutations until probes prove the path again.
	ReadOnly
)

func (s State) String() string {
	switch s {
	case Degraded:
		return "degraded"
	case ReadOnly:
		return "read-only"
	default:
		return "healthy"
	}
}

// HealthConfig tunes the state machine's hysteresis.
type HealthConfig struct {
	// DegradeAfter is the consecutive-failure streak that moves
	// healthy → degraded (default 1: a single dropped record is worth
	// knowing about).
	DegradeAfter int
	// ReadOnlyAfter is the consecutive-failure streak that trips
	// read-only from any state (default 3).
	ReadOnlyAfter int
	// RecoverAfter is the consecutive-success streak that steps the
	// state down one level (default 3).
	RecoverAfter int
	// Now stamps transitions; nil means time.Now. Tests inject fakes.
	Now func() time.Time
}

func (c *HealthConfig) defaults() {
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 1
	}
	if c.ReadOnlyAfter <= 0 {
		c.ReadOnlyAfter = 3
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Health is the journal-path state machine. Observe is called on the
// hot write path, so the all-is-well case is a single atomic load.
type Health struct {
	cfg HealthConfig

	state atomic.Int32
	// calm short-circuits Observe(nil) while healthy with no pending
	// failure streak — the overwhelmingly common case.
	calm atomic.Bool

	failTotal atomic.Int64

	mu         sync.Mutex
	failStreak int
	okStreak   int
	since      time.Time
	lastErr    string
	latched    bool  // ForceReadOnly: no probe-driven step-down
	degraded   int64 // transitions into Degraded
	readOnly   int64 // transitions into ReadOnly
	recovered  int64 // transitions back into Healthy
	onChange   func(from, to State)
}

// NewHealth builds the state machine, starting Healthy.
func NewHealth(cfg HealthConfig) *Health {
	cfg.defaults()
	h := &Health{cfg: cfg, since: cfg.Now()}
	h.calm.Store(true)
	return h
}

// OnChange installs a transition callback, invoked with the machine's
// lock held — keep it cheap (bump a counter, publish to a feed). Set
// before the first Observe.
func (h *Health) OnChange(f func(from, to State)) { h.onChange = f }

// State is the current level; a single atomic load, safe on any path.
func (h *Health) State() State { return State(h.state.Load()) }

// Observe feeds one journal-append outcome into the machine.
func (h *Health) Observe(err error) {
	if err == nil {
		if h.calm.Load() {
			return
		}
		h.mu.Lock()
		defer h.mu.Unlock()
		h.failStreak = 0
		h.okStreak++
		// A latched machine never steps down on successes: the journal
		// path working again says nothing about the corrupt history that
		// forced read-only (see ForceReadOnly).
		if st := State(h.state.Load()); st != Healthy && !h.latched && h.okStreak >= h.cfg.RecoverAfter {
			h.okStreak = 0
			h.transitionLocked(st, st-1)
		}
		if State(h.state.Load()) == Healthy {
			h.calm.Store(true)
		}
		return
	}
	h.failTotal.Add(1)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.calm.Store(false)
	h.okStreak = 0
	h.failStreak++
	h.lastErr = err.Error()
	st := State(h.state.Load())
	switch {
	case st != ReadOnly && h.failStreak >= h.cfg.ReadOnlyAfter:
		h.transitionLocked(st, ReadOnly)
	case st == Healthy && h.failStreak >= h.cfg.DegradeAfter:
		h.transitionLocked(st, Degraded)
	}
}

func (h *Health) transitionLocked(from, to State) {
	h.state.Store(int32(to))
	h.since = h.cfg.Now()
	switch to {
	case Degraded:
		if from == Healthy {
			h.degraded++
		}
	case ReadOnly:
		h.readOnly++
	case Healthy:
		h.recovered++
	}
	if h.onChange != nil {
		h.onChange(from, to)
	}
}

// ForceReadOnly trips the machine straight to read-only and latches it
// there: unlike the streak-driven transition, no success streak —
// probe or real — ever steps a latched machine down, because the
// condition that forced it (quarantined journal corruption) is not
// something working appends repair. The latch clears only with a
// process restart, after an operator has repaired or restored the data
// directory (geleectl fsck).
func (h *Health) ForceReadOnly(reason string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.calm.Store(false)
	h.latched = true
	if reason != "" {
		h.lastErr = reason
	}
	if st := State(h.state.Load()); st != ReadOnly {
		h.transitionLocked(st, ReadOnly)
	}
}

// Latched reports whether ForceReadOnly pinned the machine read-only.
func (h *Health) Latched() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.latched
}

// HealthReport is the machine's stats section of the admin report.
type HealthReport struct {
	State          string    `json:"state"`
	Since          time.Time `json:"since"`
	FailStreak     int       `json:"journal_fail_streak"`
	FailuresTotal  int64     `json:"journal_failures_total"`
	DegradedTotal  int64     `json:"degraded_transitions"`
	ReadOnlyTotal  int64     `json:"read_only_transitions"`
	RecoveredTotal int64     `json:"recoveries"`
	// Latched reports a ForceReadOnly pin (journal corruption was
	// quarantined); only a restart after repair clears it.
	Latched   bool   `json:"latched,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// Report snapshots the machine.
func (h *Health) Report() HealthReport {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HealthReport{
		State:          State(h.state.Load()).String(),
		Since:          h.since,
		FailStreak:     h.failStreak,
		FailuresTotal:  h.failTotal.Load(),
		DegradedTotal:  h.degraded,
		ReadOnlyTotal:  h.readOnly,
		RecoveredTotal: h.recovered,
		Latched:        h.latched,
		LastError:      h.lastErr,
	}
}
