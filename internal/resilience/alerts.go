package resilience

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Alert is one threshold crossing, pushed to the webhook and the SSE
// feed and kept in the recent ring. State is "firing" on the way up and
// "resolved" on the way down — rules are edge-triggered, so a counter
// sitting above its threshold alerts once, not once per tick.
type Alert struct {
	Rule      string    `json:"rule"`
	Severity  string    `json:"severity"`
	State     string    `json:"state"`
	Value     float64   `json:"value"`
	Threshold float64   `json:"threshold"`
	Message   string    `json:"message"`
	At        time.Time `json:"at"`
}

// Rule is one threshold over a live counter: it fires while
// Value() >= Threshold. Value is called only from the watcher
// goroutine, so closures may keep private state (e.g. a previous total
// for rate rules).
type Rule struct {
	Name      string
	Severity  string
	Threshold float64
	Value     func() float64
}

// Feed fans alerts out to SSE subscribers. Publishing never blocks: a
// subscriber that falls behind its buffer drops alerts (SSE clients
// resync from the recent ring on reconnect).
type Feed struct {
	mu   sync.Mutex
	subs map[int]chan Alert
	next int
}

// NewFeed builds an empty feed.
func NewFeed() *Feed { return &Feed{subs: make(map[int]chan Alert)} }

// Subscribe registers a subscriber with the given channel buffer and
// returns its channel plus a cancel function. Cancel closes the
// channel.
func (f *Feed) Subscribe(buf int) (<-chan Alert, func()) {
	if buf < 1 {
		buf = 16
	}
	ch := make(chan Alert, buf)
	f.mu.Lock()
	id := f.next
	f.next++
	f.subs[id] = ch
	f.mu.Unlock()
	return ch, func() {
		f.mu.Lock()
		if _, ok := f.subs[id]; ok {
			delete(f.subs, id)
			close(ch)
		}
		f.mu.Unlock()
	}
}

// Publish delivers to every subscriber without blocking.
func (f *Feed) Publish(a Alert) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ch := range f.subs {
		select {
		case ch <- a:
		default:
		}
	}
}

// Subscribers is the current subscriber count.
func (f *Feed) Subscribers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

// WatcherConfig tunes the alert evaluator.
type WatcherConfig struct {
	// Interval between evaluations (default 5s).
	Interval time.Duration
	// Webhook, when set, receives every alert as a JSON POST.
	Webhook string
	// Client posts webhooks; nil means a 5s-timeout default.
	Client *http.Client
	// Now stamps alerts; nil means time.Now.
	Now func() time.Time
}

const recentAlerts = 128

// Watcher evaluates threshold rules on an interval, publishing edge
// alerts to the webhook and the feed. Start launches the loop; tests
// call Evaluate directly for determinism.
type Watcher struct {
	cfg   WatcherConfig
	rules []Rule
	feed  *Feed

	mu     sync.Mutex
	firing map[string]bool
	recent []Alert // ring, newest last

	sent        atomic.Int64
	webhookErrs atomic.Int64

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewWatcher builds a watcher over rules.
func NewWatcher(cfg WatcherConfig, rules []Rule) *Watcher {
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	return &Watcher{
		cfg:    cfg,
		rules:  rules,
		feed:   NewFeed(),
		firing: make(map[string]bool),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Feed is the SSE fan-out the HTTP layer subscribes on.
func (w *Watcher) Feed() *Feed { return w.feed }

// Start launches the evaluation loop (idempotent).
func (w *Watcher) Start() {
	if !w.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(w.done)
		t := time.NewTicker(w.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.Evaluate()
			}
		}
	}()
}

// Close stops the loop (idempotent; a never-started watcher closes
// immediately).
func (w *Watcher) Close() {
	w.stopOnce.Do(func() { close(w.stop) })
	if w.started.Load() {
		<-w.done
	}
}

// Evaluate runs one pass over every rule and returns the alerts it
// emitted (exported for tests and for a forced flush).
func (w *Watcher) Evaluate() []Alert {
	var out []Alert
	now := w.cfg.Now()
	for _, r := range w.rules {
		v := r.Value()
		above := v >= r.Threshold
		w.mu.Lock()
		was := w.firing[r.Name]
		if above != was {
			w.firing[r.Name] = above
		}
		w.mu.Unlock()
		if above == was {
			continue
		}
		a := Alert{
			Rule:      r.Name,
			Severity:  r.Severity,
			Value:     v,
			Threshold: r.Threshold,
			At:        now,
		}
		if above {
			a.State = "firing"
			a.Message = fmt.Sprintf("%s: %g >= %g", r.Name, v, r.Threshold)
		} else {
			a.State = "resolved"
			a.Message = fmt.Sprintf("%s: back under %g (now %g)", r.Name, r.Threshold, v)
		}
		w.emit(a)
		out = append(out, a)
	}
	return out
}

func (w *Watcher) emit(a Alert) {
	w.mu.Lock()
	w.recent = append(w.recent, a)
	if len(w.recent) > recentAlerts {
		w.recent = w.recent[len(w.recent)-recentAlerts:]
	}
	w.mu.Unlock()
	w.sent.Add(1)
	w.feed.Publish(a)
	if w.cfg.Webhook != "" {
		body, err := json.Marshal(a)
		if err == nil {
			resp, perr := w.cfg.Client.Post(w.cfg.Webhook, "application/json", bytes.NewReader(body))
			if perr == nil {
				resp.Body.Close()
				if resp.StatusCode < 200 || resp.StatusCode > 299 {
					perr = fmt.Errorf("status %s", resp.Status)
				}
			}
			if perr != nil {
				w.webhookErrs.Add(1)
			}
		}
	}
}

// Recent returns up to limit of the newest alerts, newest last
// (limit <= 0 means all retained).
func (w *Watcher) Recent(limit int) []Alert {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.recent)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Alert, n)
	copy(out, w.recent[len(w.recent)-n:])
	return out
}

// AlertStats is the alerting section of the admin report.
type AlertStats struct {
	Sent          int64 `json:"sent_total"`
	WebhookErrors int64 `json:"webhook_errors"`
	Subscribers   int   `json:"subscribers"`
	Firing        int   `json:"firing"`
}

// Stats snapshots the watcher.
func (w *Watcher) Stats() AlertStats {
	if w == nil {
		return AlertStats{}
	}
	w.mu.Lock()
	firing := 0
	for _, f := range w.firing {
		if f {
			firing++
		}
	}
	w.mu.Unlock()
	return AlertStats{
		Sent:          w.sent.Load(),
		WebhookErrors: w.webhookErrs.Load(),
		Subscribers:   w.feed.Subscribers(),
		Firing:        firing,
	}
}
