package resilience

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

func TestHealthTransitions(t *testing.T) {
	h := NewHealth(HealthConfig{DegradeAfter: 1, ReadOnlyAfter: 3, RecoverAfter: 2})
	if got := h.State(); got != Healthy {
		t.Fatalf("initial state = %v, want healthy", got)
	}

	h.Observe(errBoom)
	if got := h.State(); got != Degraded {
		t.Fatalf("after 1 failure state = %v, want degraded", got)
	}
	h.Observe(errBoom)
	h.Observe(errBoom)
	if got := h.State(); got != ReadOnly {
		t.Fatalf("after 3 failures state = %v, want read-only", got)
	}

	// Recovery steps down one level per success streak.
	h.Observe(nil)
	if got := h.State(); got != ReadOnly {
		t.Fatalf("one success should not recover yet, state = %v", got)
	}
	h.Observe(nil)
	if got := h.State(); got != Degraded {
		t.Fatalf("after RecoverAfter successes state = %v, want degraded", got)
	}
	h.Observe(nil)
	h.Observe(nil)
	if got := h.State(); got != Healthy {
		t.Fatalf("after second streak state = %v, want healthy", got)
	}

	rep := h.Report()
	if rep.State != "healthy" || rep.FailuresTotal != 3 || rep.ReadOnlyTotal != 1 || rep.RecoveredTotal != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestHealthFailureStreakResets(t *testing.T) {
	h := NewHealth(HealthConfig{DegradeAfter: 2, ReadOnlyAfter: 3, RecoverAfter: 1})
	// An interleaved success resets the failure streak: never degrades.
	for i := 0; i < 10; i++ {
		h.Observe(errBoom)
		h.Observe(nil)
	}
	if got := h.State(); got != Healthy {
		t.Fatalf("interleaved outcomes tripped the machine to %v", got)
	}
}

func TestHealthOnChange(t *testing.T) {
	h := NewHealth(HealthConfig{DegradeAfter: 1, ReadOnlyAfter: 2, RecoverAfter: 1})
	var mu sync.Mutex
	var seen []string
	h.OnChange(func(from, to State) {
		mu.Lock()
		seen = append(seen, from.String()+">"+to.String())
		mu.Unlock()
	})
	h.Observe(errBoom)
	h.Observe(errBoom)
	h.Observe(nil)
	h.Observe(nil)
	want := []string{"healthy>degraded", "degraded>read-only", "read-only>degraded", "degraded>healthy"}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", seen, want)
		}
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	now := time.Unix(0, 0)
	cfg := BreakerConfig{Failures: 2, Cooldown: time.Minute, Now: func() time.Time { return now }}
	s := NewBreakerSet(cfg)

	fail := func() {
		rel, err := s.Acquire("ep")
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		rel(errBoom)
	}
	fail()
	fail()
	if _, err := s.Acquire("ep"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted a call: %v", err)
	}
	if s.Opens() != 1 || s.OpenCount() != 1 {
		t.Fatalf("opens = %d, open count = %d", s.Opens(), s.OpenCount())
	}

	// After the cooldown one trial goes through half-open; concurrent
	// trials are rejected; a success closes the circuit.
	now = now.Add(time.Minute)
	rel, err := s.Acquire("ep")
	if err != nil {
		t.Fatalf("half-open trial rejected: %v", err)
	}
	if _, err := s.Acquire("ep"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second half-open probe admitted: %v", err)
	}
	rel(nil)
	if rel2, err := s.Acquire("ep"); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	} else {
		rel2(nil)
	}
	if st := s.Stats()["ep"]; st.State != "closed" {
		t.Fatalf("state = %q, want closed", st.State)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	now := time.Unix(0, 0)
	s := NewBreakerSet(BreakerConfig{Failures: 1, Cooldown: time.Second, Now: func() time.Time { return now }})
	rel, _ := s.Acquire("ep")
	rel(errBoom) // trips at 1
	now = now.Add(time.Second)
	rel, err := s.Acquire("ep")
	if err != nil {
		t.Fatalf("half-open trial rejected: %v", err)
	}
	rel(errBoom)
	if _, err := s.Acquire("ep"); !errorsIsAny(err, ErrBreakerOpen) {
		t.Fatalf("re-opened breaker admitted: %v", err)
	}
	if s.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", s.Opens())
	}
}

func errorsIsAny(err error, targets ...error) bool {
	for _, tg := range targets {
		if errors.Is(err, tg) {
			return true
		}
	}
	return false
}

func TestBreakerKeysIndependent(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{Failures: 1})
	rel, _ := s.Acquire("bad")
	rel(errBoom)
	if _, err := s.Acquire("bad"); err == nil {
		t.Fatal("tripped key admitted")
	}
	rel, err := s.Acquire("good")
	if err != nil {
		t.Fatalf("unrelated key rejected: %v", err)
	}
	rel(nil)
}

func TestBreakerInFlightCap(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{MaxInFlight: 2})
	r1, err1 := s.Acquire("ep")
	r2, err2 := s.Acquire("ep")
	if err1 != nil || err2 != nil {
		t.Fatalf("under-cap acquires failed: %v %v", err1, err2)
	}
	if _, err := s.Acquire("ep"); !errors.Is(err, ErrCapacity) {
		t.Fatalf("over-cap acquire = %v, want ErrCapacity", err)
	}
	r1(nil)
	r3, err := s.Acquire("ep")
	if err != nil {
		t.Fatalf("freed slot rejected: %v", err)
	}
	r3(nil)
	r2(nil)
	if s.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", s.Rejected())
	}
}

func TestAdmissionHysteresis(t *testing.T) {
	depth := 0
	a := NewAdmission(AdmissionConfig{Watermark: 10, RetryAfter: 250 * time.Millisecond}, func() int { return depth })

	if err := a.Admit(); err != nil {
		t.Fatalf("idle admit: %v", err)
	}
	depth = 10
	err := a.Admit()
	if !errors.Is(err, ErrShed) {
		t.Fatalf("at watermark: %v, want ErrShed", err)
	}
	if ra := RetryAfterOf(err); ra != 250*time.Millisecond {
		t.Fatalf("retry-after = %v", ra)
	}

	// Hysteresis: below the watermark but above Resume keeps shedding.
	depth = 7
	if err := a.Admit(); !errors.Is(err, ErrShed) {
		t.Fatalf("above resume: %v, want ErrShed", err)
	}
	depth = 5 // Resume defaults to Watermark/2
	if err := a.Admit(); err != nil {
		t.Fatalf("at resume: %v, want admit", err)
	}
	st := a.Stats()
	if st.Shed != 2 || st.Admitted != 2 || st.Shedding {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAdmissionDisabled(t *testing.T) {
	a := NewAdmission(AdmissionConfig{}, nil)
	for i := 0; i < 3; i++ {
		if err := a.Admit(); err != nil {
			t.Fatalf("disabled admission shed: %v", err)
		}
	}
	var nilA *Admission
	if err := nilA.Admit(); err != nil {
		t.Fatalf("nil admission shed: %v", err)
	}
}

func TestGateReadOnlyBeatsShed(t *testing.T) {
	h := NewHealth(HealthConfig{ReadOnlyAfter: 1})
	g := &Gate{
		Health:    h,
		Admission: NewAdmission(AdmissionConfig{Watermark: 1}, func() int { return 100 }),
	}
	if err := g.AdmitMutation(); !errors.Is(err, ErrShed) {
		t.Fatalf("saturated gate: %v, want ErrShed", err)
	}
	h.Observe(errBoom)
	if err := g.AdmitMutation(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only gate: %v, want ErrReadOnly", err)
	}
	if g.ReadOnlyRejected() != 1 {
		t.Fatalf("read-only rejected = %d", g.ReadOnlyRejected())
	}
	var nilG *Gate
	if err := nilG.AdmitMutation(); err != nil {
		t.Fatalf("nil gate rejected: %v", err)
	}
}

func TestBackoffDelayBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	for attempt := 0; attempt < 8; attempt++ {
		full := 100 * time.Millisecond << attempt
		if full > time.Second {
			full = time.Second
		}
		for i := 0; i < 50; i++ {
			d := b.Delay(attempt)
			if d > full || d < full/2 {
				t.Fatalf("Delay(%d) = %v outside [%v, %v]", attempt, d, full/2, full)
			}
		}
	}
}

func TestRetryEventualSuccess(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 3, Backoff{Base: time.Microsecond, Max: time.Microsecond}, func(context.Context) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, 5, Backoff{Base: time.Microsecond, Max: time.Microsecond}, func(context.Context) error {
		calls++
		cancel()
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want last attempt error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (canceled context must stop retries)", calls)
	}
}

func TestWatcherEdgeTriggered(t *testing.T) {
	v := 0.0
	w := NewWatcher(WatcherConfig{}, []Rule{
		{Name: "depth", Severity: "warning", Threshold: 10, Value: func() float64 { return v }},
	})

	if got := w.Evaluate(); len(got) != 0 {
		t.Fatalf("idle evaluate fired %v", got)
	}
	v = 12
	got := w.Evaluate()
	if len(got) != 1 || got[0].State != "firing" || got[0].Rule != "depth" {
		t.Fatalf("crossing up = %+v", got)
	}
	// Still above: edge-triggered, no repeat.
	if got := w.Evaluate(); len(got) != 0 {
		t.Fatalf("steady state re-fired %v", got)
	}
	v = 3
	got = w.Evaluate()
	if len(got) != 1 || got[0].State != "resolved" {
		t.Fatalf("crossing down = %+v", got)
	}
	if rec := w.Recent(10); len(rec) != 2 {
		t.Fatalf("recent = %d alerts, want 2", len(rec))
	}
	st := w.Stats()
	if st.Sent != 2 || st.Firing != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWatcherFeedAndWebhook(t *testing.T) {
	var mu sync.Mutex
	var posted []Alert
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var a Alert
		if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
			t.Errorf("webhook decode: %v", err)
		}
		mu.Lock()
		posted = append(posted, a)
		mu.Unlock()
	}))
	defer srv.Close()

	v := 0.0
	w := NewWatcher(WatcherConfig{Webhook: srv.URL, Client: srv.Client()}, []Rule{
		{Name: "r", Severity: "critical", Threshold: 1, Value: func() float64 { return v }},
	})
	ch, cancel := w.Feed().Subscribe(4)
	defer cancel()

	v = 1
	w.Evaluate()
	select {
	case a := <-ch:
		if a.Rule != "r" || a.State != "firing" {
			t.Fatalf("feed alert = %+v", a)
		}
	case <-time.After(time.Second):
		t.Fatal("no alert on feed")
	}
	mu.Lock()
	n := len(posted)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("webhook posts = %d, want 1", n)
	}
}

func TestWatcherStartCloseIdempotent(t *testing.T) {
	w := NewWatcher(WatcherConfig{Interval: time.Millisecond}, nil)
	w.Start()
	w.Start()
	w.Close()
	w.Close()
	// Close without Start must not hang.
	w2 := NewWatcher(WatcherConfig{}, nil)
	w2.Close()
}

func TestFeedDropsWhenFull(t *testing.T) {
	f := NewFeed()
	ch, cancel := f.Subscribe(1)
	defer cancel()
	f.Publish(Alert{Rule: "a"})
	f.Publish(Alert{Rule: "b"}) // buffer full: dropped, not blocking
	if a := <-ch; a.Rule != "a" {
		t.Fatalf("first alert = %+v", a)
	}
	select {
	case a := <-ch:
		t.Fatalf("unexpected second alert %+v", a)
	default:
	}
}
