package jsonenc

import (
	"encoding/json"
	"testing"
	"time"
)

// TestAppendStringMatchesStdlib pins the contract: whatever the fast
// encoder emits, the standard decoder reads back as the original
// string.
func TestAppendStringMatchesStdlib(t *testing.T) {
	cases := []string{
		"",
		"plain",
		`with "quotes" and \backslashes\`,
		"tabs\tnewlines\nreturns\r",
		"control \x00\x01\x1f bytes",
		"unicode: héllo wörld — 東京 🗼",
		"mixed \"q\" \n \x02 ü",
	}
	for _, s := range cases {
		out := AppendString(nil, s)
		var got string
		if err := json.Unmarshal(out, &got); err != nil {
			t.Fatalf("decode %q output %s: %v", s, out, err)
		}
		if got != s {
			t.Fatalf("round trip of %q = %q", s, got)
		}
	}
}

func TestAppendTimeMatchesStdlib(t *testing.T) {
	for _, tt := range []time.Time{
		time.Date(2009, 2, 1, 9, 0, 0, 0, time.UTC),
		time.Date(2026, 7, 29, 13, 45, 6, 123456789, time.FixedZone("CET", 3600)),
		time.Time{},
	} {
		want, err := json.Marshal(tt)
		if err != nil {
			t.Fatal(err)
		}
		got := AppendTime(nil, tt)
		if string(got) != string(want) {
			t.Fatalf("AppendTime(%v) = %s, want %s", tt, got, want)
		}
		var back time.Time
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatal(err)
		}
		if !back.Equal(tt) {
			t.Fatalf("round trip of %v = %v", tt, back)
		}
	}
}
