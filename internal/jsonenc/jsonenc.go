// Package jsonenc provides allocation-free append-style JSON encoding
// helpers for the hand-rolled fast paths of the journal codecs. The
// reflection-based encoding/json.Marshal costs ~2µs per journal entry
// on the write path — more than the token move it persists — so the
// hot, fixed-shape records (store.Entry, runtime.JournalRecord) are
// encoded by hand and these helpers keep the string/time handling in
// one audited place. Decoding stays encoding/json everywhere: the fast
// encoders only ever have to produce JSON the standard decoder reads
// back to an equal value, which is what their equivalence tests pin.
package jsonenc

import "time"

const hexDigits = "0123456789abcdef"

// AppendString appends s as a JSON string literal — quoted, with the
// quote, backslash and control characters escaped. Valid UTF-8 passes
// through verbatim (JSON strings are UTF-8); invalid UTF-8 is passed
// through as well, which encoding/json's decoder tolerates (it
// replaces the bad bytes with U+FFFD, exactly as its own encoder
// would have).
func AppendString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		buf = append(buf, s[start:i]...)
		switch c {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
		}
		start = i + 1
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

// AppendTime appends t as a quoted RFC 3339 timestamp with nanosecond
// precision — the same layout time.Time.MarshalJSON produces, minus
// its year-range check (journal timestamps come from clocks, not user
// input).
func AppendTime(buf []byte, t time.Time) []byte {
	buf = append(buf, '"')
	buf = t.AppendFormat(buf, time.RFC3339Nano)
	return append(buf, '"')
}
