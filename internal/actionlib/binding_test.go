package actionlib

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"github.com/liquidpub/gelee/internal/core"
)

func notifyCall() core.ActionCall {
	return core.ActionCall{
		URI:  "http://www.liquidpub.org/a/notify",
		Name: "Notify reviewers",
		Params: []core.Param{
			{ID: "reviewers", BindingTime: core.BindInstantiation, Required: true},
			{ID: "subject", Value: "please review", BindingTime: core.BindDefinition},
		},
	}
}

func TestResolveParamsLayering(t *testing.T) {
	spec := notifyType()
	spec.Params = append(spec.Params, core.Param{ID: "subject", Value: "default-subject", BindingTime: core.BindAny})
	call := notifyCall()

	got, err := ResolveParams(&spec, call,
		map[string]string{"reviewers": "alice,bob"}, nil)
	if err != nil {
		t.Fatalf("ResolveParams: %v", err)
	}
	if got["reviewers"] != "alice,bob" {
		t.Fatalf("reviewers = %q", got["reviewers"])
	}
	// Model definition value beats the spec default.
	if got["subject"] != "please review" {
		t.Fatalf("subject = %q, want model-bound value", got["subject"])
	}
}

func TestResolveParamsCallOverridesInstantiation(t *testing.T) {
	call := core.ActionCall{
		URI:    "urn:a",
		Params: []core.Param{{ID: "p", BindingTime: core.BindAny}},
	}
	got, err := ResolveParams(nil, call,
		map[string]string{"p": "from-inst"},
		map[string]string{"p": "from-call"})
	if err != nil {
		t.Fatal(err)
	}
	if got["p"] != "from-call" {
		t.Fatalf("p = %q, want call-time value to win", got["p"])
	}
}

func TestResolveParamsMissingRequired(t *testing.T) {
	call := notifyCall()
	_, err := ResolveParams(nil, call, nil, nil)
	var be *BindingError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BindingError", err)
	}
	if !strings.Contains(be.ParamID, "reviewers") {
		t.Fatalf("BindingError names %q, want reviewers", be.ParamID)
	}
}

func TestResolveParamsRejectsWrongStage(t *testing.T) {
	// reviewers is inst-bound: supplying it at call time must fail.
	call := notifyCall()
	_, err := ResolveParams(nil, call, nil, map[string]string{"reviewers": "late"})
	var be *BindingError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BindingError", err)
	}
	if be.Stage != StageCall {
		t.Fatalf("stage = %v, want call", be.Stage)
	}
}

func TestResolveParamsRejectsDefinitionValueForCallOnlyParam(t *testing.T) {
	call := core.ActionCall{
		URI:    "urn:a",
		Params: []core.Param{{ID: "p", Value: "preset", BindingTime: core.BindCall}},
	}
	_, err := ResolveParams(nil, call, nil, nil)
	var be *BindingError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BindingError for def-time binding of call-only param", err)
	}
	if be.Stage != StageDefinition {
		t.Fatalf("stage = %v, want definition", be.Stage)
	}
}

func TestResolveParamsInstValueForInstParam(t *testing.T) {
	call := core.ActionCall{
		URI:    "urn:a",
		Params: []core.Param{{ID: "p", BindingTime: core.BindInstantiation}},
	}
	got, err := ResolveParams(nil, call, map[string]string{"p": "v"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got["p"] != "v" {
		t.Fatalf("p = %q", got["p"])
	}
}

func TestResolveParamsUnknownParamsTolerated(t *testing.T) {
	// Paper robustness: owners insert parameters "by hand"; extra values
	// unknown to both spec and call are treated as any-time bindings.
	call := core.ActionCall{URI: "urn:a"}
	got, err := ResolveParams(nil, call, map[string]string{"extra": "1"}, map[string]string{"more": "2"})
	if err != nil {
		t.Fatal(err)
	}
	if got["extra"] != "1" || got["more"] != "2" {
		t.Fatalf("got %v", got)
	}
}

func TestResolveParamsSpecRequiredWithSpecDefault(t *testing.T) {
	spec := &ActionType{
		URI: "urn:a", Name: "A",
		Params: []core.Param{{ID: "mode", Value: "private", BindingTime: core.BindAny, Required: true}},
	}
	got, err := ResolveParams(spec, core.ActionCall{URI: "urn:a"}, nil, nil)
	if err != nil {
		t.Fatalf("spec default should satisfy required param: %v", err)
	}
	if got["mode"] != "private" {
		t.Fatalf("mode = %q", got["mode"])
	}
}

func TestResolveParamsEmptyBindingTimeMeansAny(t *testing.T) {
	call := core.ActionCall{URI: "urn:a", Params: []core.Param{{ID: "p"}}}
	for _, stage := range []map[string]string{nil, {"p": "x"}} {
		if _, err := ResolveParams(nil, call, stage, stage); err != nil {
			t.Fatalf("empty binding time should allow any stage: %v", err)
		}
	}
}

func TestCheckStageBindings(t *testing.T) {
	spec := notifyType()
	call := core.ActionCall{URI: spec.URI}
	if err := CheckStageBindings(&spec, call, map[string]string{"reviewers": "r"}, StageInstantiation); err != nil {
		t.Fatalf("inst-time binding of inst param rejected: %v", err)
	}
	if err := CheckStageBindings(&spec, call, map[string]string{"reviewers": "r"}, StageCall); err == nil {
		t.Fatal("call-time binding of inst param accepted")
	}
}

func TestBindingErrorMessage(t *testing.T) {
	e := &BindingError{ActionURI: "urn:a", ParamID: "p", Stage: StageInstantiation, Reason: "nope"}
	for _, want := range []string{"urn:a", `"p"`, "instantiation", "nope"} {
		if !strings.Contains(e.Error(), want) {
			t.Errorf("error %q missing %q", e.Error(), want)
		}
	}
}

func TestStageString(t *testing.T) {
	if StageDefinition.String() != "definition" || StageInstantiation.String() != "instantiation" || StageCall.String() != "call" {
		t.Fatal("stage names wrong")
	}
	if !strings.Contains(Stage(42).String(), "42") {
		t.Fatal("unknown stage should include its number")
	}
}

// Property: for a parameter with binding time "any", values supplied at a
// later stage always win over earlier stages, and resolution never errors.
func TestQuickLateBindingWins(t *testing.T) {
	type vals struct{ Def, Inst, Call string }
	f := func(v vals) bool {
		call := core.ActionCall{
			URI:    "urn:q",
			Params: []core.Param{{ID: "p", Value: v.Def, BindingTime: core.BindAny}},
		}
		inst := map[string]string{}
		callv := map[string]string{}
		want := v.Def
		if v.Inst != "" {
			inst["p"] = v.Inst
			want = v.Inst
		}
		if v.Call != "" {
			callv["p"] = v.Call
			want = v.Call
		}
		got, err := ResolveParams(nil, call, inst, callv)
		if err != nil {
			return false
		}
		return got["p"] == want
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			pick := func() string {
				options := []string{"", "a", "b", "c"}
				return options[r.Intn(len(options))]
			}
			args[0] = reflect.ValueOf(struct{ Def, Inst, Call string }{pick(), pick(), pick()})
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: ResolveParams never panics and never returns a map
// containing a key that was not in any layer.
func TestQuickResolveParamsClosedOverInputs(t *testing.T) {
	f := func(defVal, instVal, callVal string) bool {
		call := core.ActionCall{
			URI:    "urn:q",
			Params: []core.Param{{ID: "p", Value: defVal, BindingTime: core.BindAny}},
		}
		inst := map[string]string{"i": instVal}
		cv := map[string]string{"c": callVal}
		got, err := ResolveParams(nil, call, inst, cv)
		if err != nil {
			return false
		}
		for k := range got {
			if k != "p" && k != "i" && k != "c" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
