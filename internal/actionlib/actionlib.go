// Package actionlib implements the action model of the paper (§IV.C and
// §V.B): the separation between action *types* (named, versioned
// signatures such as "Change access rights") and action
// *implementations* (resource-type-specific endpoints contributed by
// plug-in developers).
//
// Actions are where all resource-specific complexity lives. The
// lifecycle model only references action types by URI; when a lifecycle
// is instantiated on a concrete resource the types are resolved to the
// implementation registered for that resource's type. This is the second
// of the paper's "light couplings": the same lifecycle definition can
// run against a Google-Docs document, a wiki page, or an SVN repository
// as long as each resource type registers an implementation of the
// referenced action types.
package actionlib

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/liquidpub/gelee/internal/core"
)

// Reserved status messages (§IV.C): all status strings are free-form and
// informational, except these two that the model itself defines.
const (
	StatusCompleted = "completed"
	StatusFailed    = "failed"
)

// IsTerminalStatus reports whether status is one of the two reserved,
// model-defined statuses that end an action execution.
func IsTerminalStatus(status string) bool {
	return status == StatusCompleted || status == StatusFailed
}

// Protocol names how an implementation endpoint is invoked. The paper
// allows REST or SOAP; Local exists for in-process plug-ins (tests,
// embedded deployments) and exercises the same code path minus HTTP.
type Protocol string

// Supported invocation protocols.
const (
	ProtocolREST  Protocol = "rest"
	ProtocolSOAP  Protocol = "soap"
	ProtocolLocal Protocol = "local"
)

// Valid reports whether p is a known protocol.
func (p Protocol) Valid() bool {
	switch p {
	case ProtocolREST, ProtocolSOAP, ProtocolLocal:
		return true
	}
	return false
}

// ActionType is the Table II document: a reusable, resource-agnostic
// action signature. Params hold the parameter specs; a spec's Value is
// the default value (bound at definition time if the binding time allows
// it).
type ActionType struct {
	URI      string
	Name     string
	Version  core.VersionInfo
	Params   []core.Param
	Metadata map[string]string // free-form "general metadata" of §V.B
}

// Param returns the parameter spec with the given id.
func (t *ActionType) Param(id string) (core.Param, bool) {
	for _, p := range t.Params {
		if p.ID == id {
			return p, true
		}
	}
	return core.Param{}, false
}

// Validate checks the minimal structural rules of an action type.
func (t ActionType) Validate() error {
	if strings.TrimSpace(t.URI) == "" {
		return errors.New("actionlib: action type has no URI")
	}
	if strings.TrimSpace(t.Name) == "" {
		return fmt.Errorf("actionlib: action type %s has no name", t.URI)
	}
	seen := make(map[string]bool, len(t.Params))
	for _, p := range t.Params {
		if p.ID == "" {
			return fmt.Errorf("actionlib: action type %s declares a parameter with no id", t.URI)
		}
		if seen[p.ID] {
			return fmt.Errorf("actionlib: action type %s declares parameter %q twice", t.URI, p.ID)
		}
		seen[p.ID] = true
		if p.BindingTime != "" && !p.BindingTime.Valid() {
			return fmt.Errorf("actionlib: action type %s parameter %q has unknown binding time %q", t.URI, p.ID, p.BindingTime)
		}
	}
	return nil
}

// Clone returns a deep copy of the action type.
func (t ActionType) Clone() ActionType {
	c := t
	c.Params = append([]core.Param(nil), t.Params...)
	if t.Metadata != nil {
		c.Metadata = make(map[string]string, len(t.Metadata))
		for k, v := range t.Metadata {
			c.Metadata[k] = v
		}
	}
	return c
}

// Implementation binds an action type to a concrete endpoint for one
// resource type. Registration (§V.B) is how an adapter makes Gelee aware
// that "Change access rights" exists for, say, MediaWiki pages, and how
// to invoke it.
type Implementation struct {
	TypeURI      string   // action type implemented
	ResourceType string   // resource type served, e.g. "gdoc"
	Endpoint     string   // invocation URI (REST/SOAP) or local handler name
	Protocol     Protocol // how to call Endpoint
	Description  string
}

// Validate checks the implementation record.
func (im Implementation) Validate() error {
	switch {
	case strings.TrimSpace(im.TypeURI) == "":
		return errors.New("actionlib: implementation has no action type URI")
	case strings.TrimSpace(im.ResourceType) == "":
		return fmt.Errorf("actionlib: implementation of %s has no resource type", im.TypeURI)
	case strings.TrimSpace(im.Endpoint) == "":
		return fmt.Errorf("actionlib: implementation of %s for %s has no endpoint", im.TypeURI, im.ResourceType)
	case !im.Protocol.Valid():
		return fmt.Errorf("actionlib: implementation of %s for %s has unknown protocol %q", im.TypeURI, im.ResourceType, im.Protocol)
	}
	return nil
}

// ErrUnknownType is wrapped by Registry errors when an action type URI
// is not registered.
var ErrUnknownType = errors.New("actionlib: unknown action type")

// ErrNoImplementation is wrapped by Resolve when a type exists but no
// implementation is registered for the requested resource type.
var ErrNoImplementation = errors.New("actionlib: no implementation for resource type")

// ErrDuplicate is returned when registering a type or implementation
// that already exists.
var ErrDuplicate = errors.New("actionlib: already registered")

// Registry is the action library of Fig. 2's data tier: all known action
// types and their per-resource-type implementations. It is safe for
// concurrent use.
type Registry struct {
	mu    sync.RWMutex
	types map[string]ActionType
	impls map[string]map[string]Implementation // type URI -> resource type -> impl
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		types: make(map[string]ActionType),
		impls: make(map[string]map[string]Implementation),
	}
}

// RegisterType adds a new action type. Registering an existing URI
// returns ErrDuplicate (use ReplaceType for designer edits).
func (r *Registry) RegisterType(t ActionType) error {
	if err := t.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.types[t.URI]; ok {
		return fmt.Errorf("%w: action type %s", ErrDuplicate, t.URI)
	}
	r.types[t.URI] = t.Clone()
	return nil
}

// ReplaceType installs a new version of an existing (or new) type.
func (r *Registry) ReplaceType(t ActionType) error {
	if err := t.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.types[t.URI] = t.Clone()
	return nil
}

// RegisterImplementation adds an implementation for an already-known
// action type. Per §V.B, adapters either implement an existing type or
// introduce a new one — for the latter, use Register which does both
// atomically.
func (r *Registry) RegisterImplementation(im Implementation) error {
	if err := im.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.types[im.TypeURI]; !ok {
		return fmt.Errorf("%w: %s (register the type first or use Register)", ErrUnknownType, im.TypeURI)
	}
	byType := r.impls[im.TypeURI]
	if byType == nil {
		byType = make(map[string]Implementation)
		r.impls[im.TypeURI] = byType
	}
	if _, ok := byType[im.ResourceType]; ok {
		return fmt.Errorf("%w: implementation of %s for %s", ErrDuplicate, im.TypeURI, im.ResourceType)
	}
	byType[im.ResourceType] = im
	return nil
}

// Register registers an action type (if not already present) together
// with an implementation — the single call an adapter makes at plug-in
// load time.
func (r *Registry) Register(t ActionType, im Implementation) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if im.TypeURI == "" {
		im.TypeURI = t.URI
	}
	if im.TypeURI != t.URI {
		return fmt.Errorf("actionlib: implementation type %s does not match registered type %s", im.TypeURI, t.URI)
	}
	r.mu.Lock()
	if _, ok := r.types[t.URI]; !ok {
		r.types[t.URI] = t.Clone()
	}
	r.mu.Unlock()
	return r.RegisterImplementation(im)
}

// Type returns the action type registered under uri.
func (r *Registry) Type(uri string) (ActionType, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.types[uri]
	if !ok {
		return ActionType{}, false
	}
	return t.Clone(), true
}

// Types returns every registered action type sorted by URI. This is the
// design-time browse of Fig. 3: "users can browse through all actions as
// there is not yet, in general, a binding to a resource type".
func (r *Registry) Types() []ActionType {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ActionType, 0, len(r.types))
	for _, t := range r.types {
		out = append(out, t.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URI < out[j].URI })
	return out
}

// TypesFor returns only the action types that have an implementation for
// the given resource type, sorted by URI. This is the run-time filtered
// browse of Fig. 3: "for modifications at runtime, only actions for
// which there is an implementation for the resource being managed are
// shown".
func (r *Registry) TypesFor(resourceType string) []ActionType {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []ActionType
	for uri, byType := range r.impls {
		if _, ok := byType[resourceType]; ok {
			if t, ok := r.types[uri]; ok {
				out = append(out, t.Clone())
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URI < out[j].URI })
	return out
}

// Resolve maps an action type URI to the implementation registered for
// the given resource type. This happens when a lifecycle is instantiated
// on a specific URI: "action types are resolved to specific action
// signatures and implementations" (§V.B).
func (r *Registry) Resolve(typeURI, resourceType string) (Implementation, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if _, ok := r.types[typeURI]; !ok {
		return Implementation{}, fmt.Errorf("%w: %s", ErrUnknownType, typeURI)
	}
	im, ok := r.impls[typeURI][resourceType]
	if !ok {
		return Implementation{}, fmt.Errorf("%w: %s has no implementation for %q", ErrNoImplementation, typeURI, resourceType)
	}
	return im, nil
}

// Implementations returns every implementation of the given type, sorted
// by resource type.
func (r *Registry) Implementations(typeURI string) []Implementation {
	r.mu.RLock()
	defer r.mu.RUnlock()
	byType := r.impls[typeURI]
	out := make([]Implementation, 0, len(byType))
	for _, im := range byType {
		out = append(out, im)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ResourceType < out[j].ResourceType })
	return out
}

// ResourceTypes returns every resource type that has at least one
// registered implementation, sorted.
func (r *Registry) ResourceTypes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[string]bool)
	for _, byType := range r.impls {
		for rt := range byType {
			seen[rt] = true
		}
	}
	out := make([]string, 0, len(seen))
	for rt := range seen {
		out = append(out, rt)
	}
	sort.Strings(out)
	return out
}

// Applicability returns, for a model referencing the given action type
// URIs, the set of resource types that implement *all* of them —
// "the actions they select will determine the resource types to which
// the lifecycle can be applied" (§IV.A). An empty URI list means the
// model is action-free and applies to every registered resource type.
func (r *Registry) Applicability(typeURIs []string) []string {
	if len(typeURIs) == 0 {
		return r.ResourceTypes()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	counts := make(map[string]int)
	unique := make(map[string]bool)
	for _, uri := range typeURIs {
		if unique[uri] {
			continue
		}
		unique[uri] = true
		for rt := range r.impls[uri] {
			counts[rt]++
		}
	}
	var out []string
	for rt, n := range counts {
		if n == len(unique) {
			out = append(out, rt)
		}
	}
	sort.Strings(out)
	return out
}
