package actionlib

import (
	"errors"
	"testing"

	"github.com/liquidpub/gelee/internal/core"
)

func chrType() ActionType {
	return ActionType{
		URI:  "http://www.liquidpub.org/a/chr",
		Name: "Change Access Rights",
		Params: []core.Param{
			{ID: "mode", BindingTime: core.BindAny, Required: true},
			{ID: "note", BindingTime: core.BindCall},
		},
	}
}

func notifyType() ActionType {
	return ActionType{
		URI:  "http://www.liquidpub.org/a/notify",
		Name: "Notify Reviewers",
		Params: []core.Param{
			{ID: "reviewers", BindingTime: core.BindInstantiation, Required: true},
		},
	}
}

func impl(typeURI, rt string) Implementation {
	return Implementation{
		TypeURI: typeURI, ResourceType: rt,
		Endpoint: "http://plugins.local/" + rt, Protocol: ProtocolREST,
	}
}

func TestRegisterAndResolve(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterType(chrType()); err != nil {
		t.Fatalf("RegisterType: %v", err)
	}
	if err := r.RegisterImplementation(impl(chrType().URI, "gdoc")); err != nil {
		t.Fatalf("RegisterImplementation: %v", err)
	}
	im, err := r.Resolve(chrType().URI, "gdoc")
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if im.Endpoint != "http://plugins.local/gdoc" {
		t.Fatalf("resolved endpoint = %q", im.Endpoint)
	}
}

func TestResolveUnknownType(t *testing.T) {
	r := NewRegistry()
	_, err := r.Resolve("urn:nope", "gdoc")
	if !errors.Is(err, ErrUnknownType) {
		t.Fatalf("Resolve unknown type err = %v, want ErrUnknownType", err)
	}
}

func TestResolveMissingImplementation(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterType(chrType()); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterImplementation(impl(chrType().URI, "gdoc")); err != nil {
		t.Fatal(err)
	}
	_, err := r.Resolve(chrType().URI, "mediawiki")
	if !errors.Is(err, ErrNoImplementation) {
		t.Fatalf("err = %v, want ErrNoImplementation", err)
	}
}

func TestRegisterDuplicateTypeFails(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterType(chrType()); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterType(chrType()); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate RegisterType err = %v, want ErrDuplicate", err)
	}
	// ReplaceType is the escape hatch for designers.
	nt := chrType()
	nt.Name = "Change Access Rights v2"
	if err := r.ReplaceType(nt); err != nil {
		t.Fatalf("ReplaceType: %v", err)
	}
	got, _ := r.Type(nt.URI)
	if got.Name != "Change Access Rights v2" {
		t.Fatalf("Type after replace = %q", got.Name)
	}
}

func TestRegisterImplementationRequiresType(t *testing.T) {
	r := NewRegistry()
	err := r.RegisterImplementation(impl("urn:ghost", "gdoc"))
	if !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v, want ErrUnknownType", err)
	}
}

func TestRegisterAtomicTypePlusImpl(t *testing.T) {
	// §V.B: an adapter may introduce a completely new action type along
	// with its implementation in one registration.
	r := NewRegistry()
	if err := r.Register(chrType(), impl("", "mediawiki")); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, ok := r.Type(chrType().URI); !ok {
		t.Fatal("type not registered by Register")
	}
	if _, err := r.Resolve(chrType().URI, "mediawiki"); err != nil {
		t.Fatalf("Resolve after Register: %v", err)
	}
	// Second adapter implements the *same existing* type for another
	// resource type — the "same action name mapped to different action
	// implementations based on the resource types" case.
	if err := r.Register(chrType(), impl(chrType().URI, "gdoc")); err != nil {
		t.Fatalf("Register second impl: %v", err)
	}
	if got := len(r.Implementations(chrType().URI)); got != 2 {
		t.Fatalf("Implementations = %d, want 2", got)
	}
}

func TestRegisterMismatchedTypeURI(t *testing.T) {
	r := NewRegistry()
	bad := impl("urn:other", "gdoc")
	if err := r.Register(chrType(), bad); err == nil {
		t.Fatal("Register accepted an implementation for a different type URI")
	}
}

func TestTypesSortedAndFiltered(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(notifyType(), impl(notifyType().URI, "gdoc")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(chrType(), impl(chrType().URI, "gdoc")); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterImplementation(impl(chrType().URI, "mediawiki")); err != nil {
		t.Fatal(err)
	}

	all := r.Types()
	if len(all) != 2 || all[0].URI > all[1].URI {
		t.Fatalf("Types() = %v, want 2 sorted entries", all)
	}

	// Fig. 3 contract: runtime browse is filtered by resource type.
	wiki := r.TypesFor("mediawiki")
	if len(wiki) != 1 || wiki[0].URI != chrType().URI {
		t.Fatalf("TypesFor(mediawiki) = %v, want only change-access-rights", wiki)
	}
	gdoc := r.TypesFor("gdoc")
	if len(gdoc) != 2 {
		t.Fatalf("TypesFor(gdoc) = %v, want both types", gdoc)
	}
	if got := r.TypesFor("svn"); len(got) != 0 {
		t.Fatalf("TypesFor(svn) = %v, want empty", got)
	}
}

func TestResourceTypes(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(chrType(), impl(chrType().URI, "gdoc")); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterImplementation(impl(chrType().URI, "mediawiki")); err != nil {
		t.Fatal(err)
	}
	got := r.ResourceTypes()
	if len(got) != 2 || got[0] != "gdoc" || got[1] != "mediawiki" {
		t.Fatalf("ResourceTypes = %v", got)
	}
}

func TestApplicability(t *testing.T) {
	// §IV.A: "The actions they select will determine the resource types
	// to which the lifecycle can be applied."
	r := NewRegistry()
	if err := r.Register(chrType(), impl(chrType().URI, "gdoc")); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterImplementation(impl(chrType().URI, "mediawiki")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(notifyType(), impl(notifyType().URI, "gdoc")); err != nil {
		t.Fatal(err)
	}

	// Model using both actions: only gdoc implements both.
	both := r.Applicability([]string{chrType().URI, notifyType().URI})
	if len(both) != 1 || both[0] != "gdoc" {
		t.Fatalf("Applicability(both) = %v, want [gdoc]", both)
	}
	// Model using only chr: both types qualify.
	chr := r.Applicability([]string{chrType().URI})
	if len(chr) != 2 {
		t.Fatalf("Applicability(chr) = %v, want both resource types", chr)
	}
	// Duplicated URIs in the model must not skew the count.
	dup := r.Applicability([]string{chrType().URI, chrType().URI})
	if len(dup) != 2 {
		t.Fatalf("Applicability(dup) = %v, want both resource types", dup)
	}
	// Action-free model applies everywhere.
	free := r.Applicability(nil)
	if len(free) != 2 {
		t.Fatalf("Applicability(nil) = %v, want all resource types", free)
	}
}

func TestValidateImplementation(t *testing.T) {
	cases := []struct {
		name string
		im   Implementation
	}{
		{"no type", Implementation{ResourceType: "x", Endpoint: "e", Protocol: ProtocolREST}},
		{"no resource type", Implementation{TypeURI: "t", Endpoint: "e", Protocol: ProtocolREST}},
		{"no endpoint", Implementation{TypeURI: "t", ResourceType: "x", Protocol: ProtocolREST}},
		{"bad protocol", Implementation{TypeURI: "t", ResourceType: "x", Endpoint: "e", Protocol: "carrier-pigeon"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.im.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", c.im)
			}
		})
	}
}

func TestActionTypeValidate(t *testing.T) {
	bad := []ActionType{
		{Name: "no uri"},
		{URI: "urn:x"},
		{URI: "urn:x", Name: "dup params", Params: []core.Param{{ID: "a"}, {ID: "a"}}},
		{URI: "urn:x", Name: "empty param id", Params: []core.Param{{}}},
		{URI: "urn:x", Name: "bad bt", Params: []core.Param{{ID: "a", BindingTime: "sometime"}}},
	}
	for _, at := range bad {
		if err := at.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", at)
		}
	}
	if err := chrType().Validate(); err != nil {
		t.Fatalf("Validate rejected a good type: %v", err)
	}
}

func TestActionTypeCloneIndependent(t *testing.T) {
	at := chrType()
	at.Metadata = map[string]string{"category": "access"}
	c := at.Clone()
	c.Params[0].ID = "tampered"
	c.Metadata["category"] = "tampered"
	if at.Params[0].ID == "tampered" || at.Metadata["category"] == "tampered" {
		t.Fatal("Clone shares storage with original")
	}
}

func TestTerminalStatus(t *testing.T) {
	if !IsTerminalStatus(StatusCompleted) || !IsTerminalStatus(StatusFailed) {
		t.Fatal("reserved statuses must be terminal")
	}
	// §IV.C: every other status message is arbitrary and informational.
	for _, s := range []string{"progress 10%", "uploading", "", "done"} {
		if IsTerminalStatus(s) {
			t.Errorf("IsTerminalStatus(%q) = true", s)
		}
	}
	if !(StatusUpdate{Message: StatusFailed}).Terminal() {
		t.Fatal("StatusUpdate{failed} not terminal")
	}
	if (StatusUpdate{Message: "halfway"}).Terminal() {
		t.Fatal("informational update reported terminal")
	}
}

func TestProtocolValid(t *testing.T) {
	for _, p := range []Protocol{ProtocolREST, ProtocolSOAP, ProtocolLocal} {
		if !p.Valid() {
			t.Errorf("%q should be valid", p)
		}
	}
	if Protocol("smtp").Valid() {
		t.Error("smtp should not be a valid protocol")
	}
}

func TestConcurrentRegistryAccess(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(chrType(), impl(chrType().URI, "gdoc")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 200; i++ {
			_ = r.Types()
			_, _ = r.Resolve(chrType().URI, "gdoc")
		}
		close(done)
	}()
	for i := 0; i < 200; i++ {
		_ = r.TypesFor("gdoc")
		_ = r.Applicability([]string{chrType().URI})
	}
	<-done
}
