package actionlib

import (
	"fmt"
	"sort"
	"strings"

	"github.com/liquidpub/gelee/internal/core"
)

// Stage identifies the moment a parameter value is being supplied, for
// binding-time enforcement. The paper's compromise (§IV.C): "The
// actions' parameter can be fixed at definition time, instantiated at
// lifecycle instantiation time, or as the corresponding phase is
// entered."
type Stage int

// Binding stages in chronological order.
const (
	StageDefinition Stage = iota
	StageInstantiation
	StageCall
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageDefinition:
		return "definition"
	case StageInstantiation:
		return "instantiation"
	case StageCall:
		return "call"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// allows reports whether binding time b permits supplying a value at
// stage s. An empty binding time is treated as "any" — the forgiving
// default for hand-written XML.
func allows(b core.BindingTime, s Stage) bool {
	if b == "" {
		b = core.BindAny
	}
	switch s {
	case StageDefinition:
		return b.AllowsDefinition()
	case StageInstantiation:
		return b.AllowsInstantiation()
	case StageCall:
		return b.AllowsCall()
	}
	return false
}

// BindingError reports a binding-time violation or a missing required
// parameter.
type BindingError struct {
	ActionURI string
	ParamID   string
	Stage     Stage
	Reason    string
}

// Error implements error.
func (e *BindingError) Error() string {
	return fmt.Sprintf("actionlib: action %s parameter %q at %s: %s",
		e.ActionURI, e.ParamID, e.Stage, e.Reason)
}

// CheckStageBindings verifies that every value in supplied may legally
// be bound at stage s according to the action type's parameter specs
// (fall back to the call's own param declarations for parameters the
// spec does not know — models may carry extra parameters, which the
// model treats as free-form).
func CheckStageBindings(spec *ActionType, call core.ActionCall, supplied map[string]string, s Stage) error {
	for id := range supplied {
		bt := bindingTimeFor(spec, call, id)
		if !allows(bt, s) {
			return &BindingError{
				ActionURI: call.URI, ParamID: id, Stage: s,
				Reason: fmt.Sprintf("binding time %q forbids supplying a value here", bt),
			}
		}
	}
	return nil
}

func bindingTimeFor(spec *ActionType, call core.ActionCall, id string) core.BindingTime {
	if p, ok := call.Param(id); ok && p.BindingTime != "" {
		return p.BindingTime
	}
	if spec != nil {
		if p, ok := spec.Param(id); ok {
			return p.BindingTime
		}
	}
	return core.BindAny
}

func requiredFor(spec *ActionType, call core.ActionCall, id string) bool {
	if p, ok := call.Param(id); ok && p.Required {
		return true
	}
	if spec != nil {
		if p, ok := spec.Param(id); ok {
			return p.Required
		}
	}
	return false
}

// ResolveParams computes the final parameter values for an action
// invocation, layering the three binding stages:
//
//	spec default  <  model definition value  <  instantiation value  <  call value
//
// spec may be nil when the action type is not registered — the paper's
// robustness stance is that the lifecycle still runs; the action call's
// own parameter list is then the only spec. The returned map is ready to
// ship in the invocation. Missing required parameters and binding-time
// violations are reported as *BindingError.
func ResolveParams(spec *ActionType, call core.ActionCall, instValues, callValues map[string]string) (map[string]string, error) {
	out := make(map[string]string)

	// Layer 0: spec defaults (definition-time values on the type).
	if spec != nil {
		for _, p := range spec.Params {
			if p.Value != "" {
				out[p.ID] = p.Value
			}
		}
	}
	// Layer 1: values written into the model (definition time).
	for _, p := range call.Params {
		if p.Value != "" {
			if !allows(bindingTimeFor(spec, call, p.ID), StageDefinition) {
				return nil, &BindingError{ActionURI: call.URI, ParamID: p.ID, Stage: StageDefinition,
					Reason: "model binds a value but the binding time forbids definition-time binding"}
			}
			out[p.ID] = p.Value
		}
	}
	// Layer 2: instantiation-time values.
	if err := CheckStageBindings(spec, call, instValues, StageInstantiation); err != nil {
		return nil, err
	}
	for id, v := range instValues {
		out[id] = v
	}
	// Layer 3: call-time values.
	if err := CheckStageBindings(spec, call, callValues, StageCall); err != nil {
		return nil, err
	}
	for id, v := range callValues {
		out[id] = v
	}

	// Required check: every required parameter (from spec or call) must
	// have ended up with a non-empty value.
	var missing []string
	check := func(id string) {
		if requiredFor(spec, call, id) && out[id] == "" {
			missing = append(missing, id)
		}
	}
	seen := make(map[string]bool)
	for _, p := range call.Params {
		if !seen[p.ID] {
			seen[p.ID] = true
			check(p.ID)
		}
	}
	if spec != nil {
		for _, p := range spec.Params {
			if !seen[p.ID] {
				seen[p.ID] = true
				check(p.ID)
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, &BindingError{ActionURI: call.URI, ParamID: strings.Join(missing, ","), Stage: StageCall,
			Reason: "required parameter(s) still unbound at call time"}
	}
	return out, nil
}

// Invocation is what the runtime ships to an action implementation: "the
// action is invoked by calling an URI that identifies a web service
// (either REST or SOAP), passing as parameters a link to the object and
// a callback URI" (§IV.C). Credentials carry the resource's login
// information when the resource is password-protected (§IV.A).
type Invocation struct {
	ID           string            // unique per action execution, echoed in callbacks
	TypeURI      string            // action type being performed
	ActionName   string            // human label from the model
	Endpoint     string            // resolved implementation endpoint
	Protocol     Protocol          // how Endpoint is to be called
	ResourceURI  string            // the link to the object
	ResourceType string            // managing-application type string
	CallbackURI  string            // where status messages go
	Params       map[string]string // fully resolved parameters
	Credentials  map[string]string // optional resource login info
}

// StatusUpdate is a callback message an action sends during or after
// execution. Message is free-form except the two reserved terminal
// statuses; their interpretation and any follow-up is left to the owner
// (§IV.C — statuses are informational only).
type StatusUpdate struct {
	InvocationID string
	Message      string
	Detail       string
}

// Terminal reports whether the update ends the action execution.
func (s StatusUpdate) Terminal() bool { return IsTerminalStatus(s.Message) }
