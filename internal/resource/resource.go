// Package resource implements the resource side of the architecture:
// the black-box resource reference the lifecycle model manages, and the
// resource manager that dispatches to resource-type plug-ins.
//
// Per §IV.A, "all the model needs to know of the resource is its URI and
// its type, a string whose main purpose is to denote which is the
// managing application. If the resource is password-protected, the model
// will also need login information. No other information is needed."
// Universality follows: a lifecycle can be instantiated on a URI whose
// type has no plug-in at all — only rendering and actions degrade, never
// the lifecycle itself.
package resource

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Ref identifies a managed resource. Credentials are optional login
// information forwarded opaquely to action implementations.
type Ref struct {
	URI         string            `json:"uri"`
	Type        string            `json:"type"`
	Credentials map[string]string `json:"credentials,omitempty"`
}

// Validate checks that the reference carries the two required facts.
func (r Ref) Validate() error {
	if strings.TrimSpace(r.URI) == "" {
		return errors.New("resource: ref has no URI")
	}
	if strings.TrimSpace(r.Type) == "" {
		return fmt.Errorf("resource: ref %s has no type", r.URI)
	}
	return nil
}

// Clone returns a copy with independent credential storage.
func (r Ref) Clone() Ref {
	c := r
	if r.Credentials != nil {
		c.Credentials = make(map[string]string, len(r.Credentials))
		for k, v := range r.Credentials {
			c.Credentials[k] = v
		}
	}
	return c
}

// Rendering is what a plug-in returns for transparent display of a
// resource in the Fig. 4 execution widget: "the interface by which we
// can render any resource in a transparent way".
type Rendering struct {
	Title   string `json:"title"`
	Summary string `json:"summary,omitempty"`
	HTML    string `json:"html,omitempty"`
	Link    string `json:"link,omitempty"`
	Status  string `json:"status,omitempty"` // plug-in specific, e.g. "rev 7, 3 watchers"
}

// Plugin is the adapter contract of §V.B. A plug-in serves exactly one
// resource type; its action implementations are registered separately
// with the action registry.
type Plugin interface {
	// Type returns the resource type string this plug-in serves.
	Type() string
	// Render describes the resource for widget display.
	Render(ref Ref) (Rendering, error)
	// Check verifies the resource exists / is reachable.
	Check(ref Ref) error
}

// ErrNoPlugin is returned when no plug-in serves a resource type.
var ErrNoPlugin = errors.New("resource: no plug-in for resource type")

// Manager is the resource manager box of Fig. 2: the registry of
// plug-ins keyed by resource type. Safe for concurrent use.
type Manager struct {
	mu      sync.RWMutex
	plugins map[string]Plugin
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{plugins: make(map[string]Plugin)}
}

// Register adds a plug-in. Registering a second plug-in for the same
// type is an error.
func (m *Manager) Register(p Plugin) error {
	t := p.Type()
	if strings.TrimSpace(t) == "" {
		return errors.New("resource: plug-in reports empty type")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.plugins[t]; ok {
		return fmt.Errorf("resource: plug-in for type %q already registered", t)
	}
	m.plugins[t] = p
	return nil
}

// Plugin returns the plug-in serving the given resource type.
func (m *Manager) Plugin(resourceType string) (Plugin, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.plugins[resourceType]
	return p, ok
}

// Types returns every served resource type, sorted.
func (m *Manager) Types() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.plugins))
	for t := range m.plugins {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Render dispatches to the plug-in for ref's type. When no plug-in is
// registered it degrades to a generic rendering (the URI itself) with
// ErrNoPlugin — callers that only display may ignore the error.
func (m *Manager) Render(ref Ref) (Rendering, error) {
	if p, ok := m.Plugin(ref.Type); ok {
		return p.Render(ref)
	}
	return Rendering{Title: ref.URI, Link: ref.URI, Summary: "unmanaged " + ref.Type + " resource"}, ErrNoPlugin
}

// Check verifies the resource through its plug-in. Unknown types pass:
// universality means Gelee never refuses to manage a URI.
func (m *Manager) Check(ref Ref) error {
	if err := ref.Validate(); err != nil {
		return err
	}
	if p, ok := m.Plugin(ref.Type); ok {
		return p.Check(ref)
	}
	return nil
}
