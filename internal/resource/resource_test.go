package resource

import (
	"errors"
	"testing"
)

type fakePlugin struct {
	typ      string
	rendered int
	checkErr error
}

func (p *fakePlugin) Type() string { return p.typ }
func (p *fakePlugin) Render(ref Ref) (Rendering, error) {
	p.rendered++
	return Rendering{Title: "rendered " + ref.URI, Status: "ok"}, nil
}
func (p *fakePlugin) Check(ref Ref) error { return p.checkErr }

func TestRefValidate(t *testing.T) {
	if err := (Ref{URI: "http://x", Type: "gdoc"}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Ref{Type: "gdoc"}).Validate(); err == nil {
		t.Fatal("missing URI accepted")
	}
	if err := (Ref{URI: "http://x"}).Validate(); err == nil {
		t.Fatal("missing type accepted")
	}
}

func TestRefCloneIndependent(t *testing.T) {
	r := Ref{URI: "u", Type: "t", Credentials: map[string]string{"user": "a"}}
	c := r.Clone()
	c.Credentials["user"] = "tampered"
	if r.Credentials["user"] != "a" {
		t.Fatal("Clone shares credential map")
	}
	// Clone of a credential-less ref must not allocate a map.
	if (Ref{URI: "u", Type: "t"}).Clone().Credentials != nil {
		t.Fatal("Clone invented credentials")
	}
}

func TestManagerRegisterAndDispatch(t *testing.T) {
	m := NewManager()
	p := &fakePlugin{typ: "gdoc"}
	if err := m.Register(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(&fakePlugin{typ: "gdoc"}); err == nil {
		t.Fatal("duplicate type registration accepted")
	}
	if err := m.Register(&fakePlugin{typ: " "}); err == nil {
		t.Fatal("empty type registration accepted")
	}

	rend, err := m.Render(Ref{URI: "http://docs/x", Type: "gdoc"})
	if err != nil {
		t.Fatal(err)
	}
	if rend.Title != "rendered http://docs/x" || p.rendered != 1 {
		t.Fatalf("rendering = %+v, calls = %d", rend, p.rendered)
	}
	if got := m.Types(); len(got) != 1 || got[0] != "gdoc" {
		t.Fatalf("Types = %v", got)
	}
	if _, ok := m.Plugin("gdoc"); !ok {
		t.Fatal("Plugin lookup failed")
	}
}

func TestRenderWithoutPluginDegrades(t *testing.T) {
	m := NewManager()
	rend, err := m.Render(Ref{URI: "http://anything/42", Type: "house-under-construction"})
	if !errors.Is(err, ErrNoPlugin) {
		t.Fatalf("err = %v, want ErrNoPlugin", err)
	}
	// Universality: the rendering still shows the URI.
	if rend.Title != "http://anything/42" || rend.Link != "http://anything/42" {
		t.Fatalf("degraded rendering = %+v", rend)
	}
}

func TestCheckUnknownTypePasses(t *testing.T) {
	m := NewManager()
	if err := m.Check(Ref{URI: "urn:x", Type: "unknown"}); err != nil {
		t.Fatalf("unknown type must be manageable: %v", err)
	}
	if err := m.Check(Ref{}); err == nil {
		t.Fatal("invalid ref accepted")
	}
}

func TestCheckDelegatesToPlugin(t *testing.T) {
	m := NewManager()
	wantErr := errors.New("document not found")
	m.Register(&fakePlugin{typ: "gdoc", checkErr: wantErr})
	if err := m.Check(Ref{URI: "u", Type: "gdoc"}); !errors.Is(err, wantErr) {
		t.Fatalf("Check = %v, want plug-in error", err)
	}
}
