package scenario

import (
	"testing"

	"github.com/liquidpub/gelee/internal/core"
	"github.com/liquidpub/gelee/internal/plugin"
)

func TestQualityPlanIsFig1(t *testing.T) {
	m := QualityPlan()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.URI != QualityPlanURI {
		t.Fatalf("uri = %q", m.URI)
	}
	// Fig. 1 shape: 5 working phases + 2 terminal nodes.
	if len(m.Phases) != 7 {
		t.Fatalf("phases = %d", len(m.Phases))
	}
	if got := m.FinalPhases(); len(got) != 2 {
		t.Fatalf("finals = %v", got)
	}
	if got := m.InitialPhases(); len(got) != 1 || got[0] != "elaboration" {
		t.Fatalf("initial = %v", got)
	}
	// Actions per Fig. 1.
	ir, _ := m.Phase("internalreview")
	if len(ir.Actions) != 2 || ir.Actions[0].URI != plugin.ActionChangeAccessRights || ir.Actions[1].URI != plugin.ActionNotifyReviewers {
		t.Fatalf("internal review actions = %+v", ir.Actions)
	}
	fa, _ := m.Phase("finalassembly")
	if len(fa.Actions) != 2 || fa.Actions[0].URI != plugin.ActionGeneratePDF {
		t.Fatalf("final assembly actions = %+v", fa.Actions)
	}
	pub, _ := m.Phase("publication")
	if len(pub.Actions) != 2 || pub.Actions[0].URI != plugin.ActionPostOnWebSite {
		t.Fatalf("publication actions = %+v", pub.Actions)
	}
	// Loops of Fig. 1.
	if !m.Suggests("internalreview", "elaboration") {
		t.Fatal("review iteration loop missing")
	}
	if !m.Suggests("eureview", "finalassembly") {
		t.Fatal("EU-requests-changes loop missing")
	}
	if !m.Suggests("eureview", "rejected") {
		t.Fatal("rejection path missing")
	}
	// Elaboration intentionally carries no actions — the "empty phases
	// are useful for monitoring" point of §IV.A.
	el, _ := m.Phase("elaboration")
	if len(el.Actions) != 0 {
		t.Fatalf("elaboration actions = %+v", el.Actions)
	}
	// Lint must be clean: the scenario model is the showcase.
	for _, issue := range m.Lint() {
		if issue.Severity == core.Error {
			t.Errorf("lint error: %s", issue)
		}
	}
}

func TestDeliverablesGeneration(t *testing.T) {
	dels := Deliverables(35)
	if len(dels) != 35 {
		t.Fatalf("deliverables = %d", len(dels))
	}
	seenIDs := make(map[string]bool)
	seenURIs := make(map[string]bool)
	types := make(map[string]int)
	for _, d := range dels {
		if seenIDs[d.ID] {
			t.Errorf("duplicate deliverable id %q", d.ID)
		}
		seenIDs[d.ID] = true
		if seenURIs[d.Ref.URI] {
			t.Errorf("duplicate resource URI %q", d.Ref.URI)
		}
		seenURIs[d.Ref.URI] = true
		if err := d.Ref.Validate(); err != nil {
			t.Errorf("%s: %v", d.ID, err)
		}
		if d.Owner == "" || d.Reviewers == "" || d.Title == "" {
			t.Errorf("%s incomplete: %+v", d.ID, d)
		}
		types[d.Ref.Type]++
	}
	// Heterogeneity: all three resource types present (§II.B.3).
	for _, typ := range []string{"mediawiki", "gdoc", "svn"} {
		if types[typ] == 0 {
			t.Errorf("no deliverables of type %s", typ)
		}
	}
}

func TestLiquidPub(t *testing.T) {
	m, dels := LiquidPub()
	if m == nil || len(dels) != 35 {
		t.Fatalf("LiquidPub = %v, %d deliverables", m, len(dels))
	}
}

func TestHappyPathWalksTheModel(t *testing.T) {
	m := QualityPlan()
	from := core.Begin
	for _, phase := range HappyPath {
		if !m.Suggests(from, phase) {
			t.Fatalf("happy path edge %s -> %s not suggested", from, phase)
		}
		from = phase
	}
	last, _ := m.Phase(HappyPath[len(HappyPath)-1])
	if !last.Final {
		t.Fatal("happy path does not end on a terminal node")
	}
}

func TestDeliverablesSmallN(t *testing.T) {
	if got := Deliverables(0); len(got) != 0 {
		t.Fatalf("Deliverables(0) = %v", got)
	}
	one := Deliverables(1)
	if len(one) != 1 || one[0].ID != "D1.1" {
		t.Fatalf("Deliverables(1) = %+v", one)
	}
}
