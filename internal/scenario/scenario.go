// Package scenario generates the paper's motivating case study (§II.A):
// the LiquidPub EU project with its 35 deliverables, the quality-plan
// lifecycle of Fig. 1, per-deliverable owners, resource types, and
// deadlines. The examples, integration tests and benchmarks all build on
// this generator so that the repository exercises the exact workload the
// paper describes.
package scenario

import (
	"fmt"
	"time"

	"github.com/liquidpub/gelee/internal/core"
	"github.com/liquidpub/gelee/internal/plugin"
	"github.com/liquidpub/gelee/internal/resource"
)

// QualityPlanURI identifies the Fig. 1 lifecycle model.
const QualityPlanURI = "urn:gelee:models:eu-deliverable"

// QualityPlan builds the Fig. 1 EU Project deliverable lifecycle:
//
//	BEGIN → Elaboration → Internal Review → Final Assembly → EU Review →
//	Publication → Accepted, with the Internal-Review iteration loop, an
//	EU-requests-changes loop, and a Rejected terminal node.
//
// Actions per phase follow the figure: Internal Review changes access
// rights and notifies reviewers; Final Assembly generates the PDF and
// re-scopes access; EU Review re-scopes access and notifies the agency
// reviewers; Publication posts on the web site and opens access.
func QualityPlan() *core.Model {
	return core.NewModel(QualityPlanURI, "EU Project deliverable lifecycle").
		Version("1.0", "lpAdmin", time.Date(2008, 7, 8, 0, 0, 0, 0, time.UTC)).
		SuggestTypes("mediawiki", "gdoc").
		Annotate("LiquidPub quality plan for deliverables").
		Phase("elaboration", "Elaboration").DueIn(30*24*time.Hour).Done().
		Phase("internalreview", "Internal Review").
		Action(plugin.ActionChangeAccessRights, "Change access rights",
			core.Param{ID: "mode", Value: "reviewers-only", BindingTime: core.BindAny}).
		Action(plugin.ActionNotifyReviewers, "Notify reviewers",
			core.Param{ID: "reviewers", BindingTime: core.BindAny, Required: true}).
		DueIn(40*24*time.Hour).
		Done().
		Phase("finalassembly", "Final Assembly").
		Action(plugin.ActionGeneratePDF, "Generate PDF").
		Action(plugin.ActionChangeAccessRights, "Change access rights",
			core.Param{ID: "mode", Value: "consortium", BindingTime: core.BindAny}).
		DueIn(50*24*time.Hour).
		Done().
		Phase("eureview", "EU Review").
		Action(plugin.ActionChangeAccessRights, "Change access rights",
			core.Param{ID: "mode", Value: "agency", BindingTime: core.BindAny}).
		Action(plugin.ActionNotifyReviewers, "Notify reviewers",
			core.Param{ID: "reviewers", Value: "project-officer@ec.europa.eu", BindingTime: core.BindAny}).
		DueIn(80*24*time.Hour).
		Done().
		Phase("publication", "Publication").
		Action(plugin.ActionPostOnWebSite, "Post on web site",
			core.Param{ID: "site", BindingTime: core.BindAny, Required: true}).
		Action(plugin.ActionChangeAccessRights, "Change access rights",
			core.Param{ID: "mode", Value: "public", BindingTime: core.BindAny}).
		Done().
		FinalPhase("accepted", "Accepted").
		FinalPhase("rejected", "Rejected").
		Initial("elaboration").
		Chain("elaboration", "internalreview", "finalassembly", "eureview", "publication", "accepted").
		LabeledTransition("internalreview", "elaboration", "revise").
		LabeledTransition("eureview", "finalassembly", "EU requests changes").
		Transition("eureview", "rejected").
		MustBuild()
}

// Deliverable is one project artifact.
type Deliverable struct {
	ID        string
	Title     string
	Owner     string // responsible partner member
	Reviewers string // comma-separated reviewer list
	Ref       resource.Ref
}

// Partners are the (synthetic) consortium partners of the LiquidPub
// case; owners rotate across them.
var Partners = []string{"unitn", "epfl", "inria", "springer", "unifr"}

// workPackageTitles seed deliverable titles, echoing the paper's
// examples (state of the art, surveys, platform deliverables).
var workPackageTitles = []string{
	"State of the Art", "Requirements Analysis", "Conceptual Model",
	"Platform Architecture", "Evaluation Plan", "Dissemination Report",
	"Annual Review Material",
}

// Deliverables generates n deliverables with rotating owners and
// resource types (wiki pages and Google docs alternate, echoing the
// paper's "we don't want different models based on whether the
// deliverable is done with Google Docs, or latex over Subversion";
// every seventh deliverable lives in SVN to exercise the third type).
// The LiquidPub project of the paper has 35 (§II.A).
func Deliverables(n int) []Deliverable {
	out := make([]Deliverable, n)
	for i := 0; i < n; i++ {
		wp := i/5 + 1
		id := fmt.Sprintf("D%d.%d", wp, i%5+1)
		owner := fmt.Sprintf("%s-lead", Partners[i%len(Partners)])
		reviewer1 := Partners[(i+1)%len(Partners)]
		reviewer2 := Partners[(i+2)%len(Partners)]
		var ref resource.Ref
		switch {
		case i%7 == 6:
			ref = resource.Ref{URI: "svn://svn.liquidpub.org/" + id, Type: "svn"}
		case i%2 == 0:
			ref = resource.Ref{URI: "http://wiki.liquidpub.org/pages/" + id, Type: "mediawiki"}
		default:
			ref = resource.Ref{URI: "http://docs.liquidpub.org/docs/" + id, Type: "gdoc"}
		}
		out[i] = Deliverable{
			ID:        id,
			Title:     fmt.Sprintf("%s (%s)", workPackageTitles[i%len(workPackageTitles)], id),
			Owner:     owner,
			Reviewers: reviewer1 + "-reviewer," + reviewer2 + "-reviewer",
			Ref:       ref,
		}
	}
	return out
}

// LiquidPub returns the paper's concrete project: the quality plan and
// its 35 deliverables.
func LiquidPub() (*core.Model, []Deliverable) {
	return QualityPlan(), Deliverables(35)
}

// HappyPath is the suggested progression of the quality plan from BEGIN
// to acceptance, used by drivers that walk deliverables forward.
var HappyPath = []string{"elaboration", "internalreview", "finalassembly", "eureview", "publication", "accepted"}
