package shardkey

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// TestHashMatchesStdlib pins the inlined loop to hash/fnv: journal
// replay and shard routing depend on the function staying FNV-1a.
func TestHashMatchesStdlib(t *testing.T) {
	cases := []string{"", "a", "li-000001", "inv-000042",
		"http://wiki.liquidpub.org/pages/D1.1", "模型"}
	for _, s := range cases {
		h := fnv.New32a()
		h.Write([]byte(s))
		if got, want := Hash(s), h.Sum32(); got != want {
			t.Errorf("Hash(%q) = %d, want %d", s, got, want)
		}
	}
}

func TestIndexInRange(t *testing.T) {
	for n := 1; n <= 32; n++ {
		for i := 0; i < 100; i++ {
			s := fmt.Sprintf("li-%06d", i)
			if idx := Index(s, n); idx < 0 || idx >= n {
				t.Fatalf("Index(%q, %d) = %d out of range", s, n, idx)
			}
		}
	}
}

func TestIndexSpreads(t *testing.T) {
	// Sequential instance ids must not all land on one stripe.
	const n = 16
	seen := make(map[int]bool)
	for i := 0; i < 256; i++ {
		seen[Index(fmt.Sprintf("li-%06d", i), n)] = true
	}
	if len(seen) < n/2 {
		t.Fatalf("256 sequential ids hit only %d/%d stripes", len(seen), n)
	}
}

func BenchmarkHash(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Hash("li-001234")
	}
}
