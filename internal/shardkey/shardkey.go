// Package shardkey is the one hash used to stripe identifier spaces
// across lock shards — repository keys in internal/store, instance and
// invocation ids in internal/runtime. It is FNV-1a inlined over the
// string so that hashing on hot paths (every Get/Put, every token
// move) costs no allocation, unlike hash/fnv's New32a+Write pair.
package shardkey

const (
	offset32 = 2166136261
	prime32  = 16777619
)

// Hash returns the 32-bit FNV-1a hash of s. It never allocates.
func Hash(s string) uint32 {
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// Index maps s onto one of n stripes. n must be positive.
func Index(s string, n int) int {
	return int(Hash(s) % uint32(n))
}
