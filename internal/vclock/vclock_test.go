package vclock

import (
	"testing"
	"time"
)

func TestSystemClockAdvances(t *testing.T) {
	a := System.Now()
	b := System.Now()
	if b.Before(a) {
		t.Fatalf("system clock went backwards: %v then %v", a, b)
	}
}

func TestFakeStartsAtGivenInstant(t *testing.T) {
	start := time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC)
	f := NewFake(start)
	if got := f.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestFakeAdvance(t *testing.T) {
	start := time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC)
	f := NewFake(start)
	got := f.Advance(48 * time.Hour)
	want := start.Add(48 * time.Hour)
	if !got.Equal(want) {
		t.Fatalf("Advance returned %v, want %v", got, want)
	}
	if now := f.Now(); !now.Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", now, want)
	}
}

func TestFakeAdvanceBackward(t *testing.T) {
	start := time.Date(2009, 2, 1, 12, 0, 0, 0, time.UTC)
	f := NewFake(start)
	f.Advance(-time.Hour)
	if now := f.Now(); !now.Equal(start.Add(-time.Hour)) {
		t.Fatalf("Now() = %v, want one hour before start", now)
	}
}

func TestFakeSet(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	target := time.Date(2026, 6, 10, 9, 0, 0, 0, time.UTC)
	f.Set(target)
	if now := f.Now(); !now.Equal(target) {
		t.Fatalf("Now() = %v, want %v", now, target)
	}
}

func TestFakeZeroValueUsable(t *testing.T) {
	var f Fake
	if !f.Now().IsZero() {
		t.Fatalf("zero Fake should report zero time, got %v", f.Now())
	}
	f.Advance(time.Minute)
	if f.Now().IsZero() {
		t.Fatal("Advance on zero Fake had no effect")
	}
}

func TestFakeConcurrentAccess(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			f.Advance(time.Millisecond)
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		_ = f.Now()
	}
	<-done
	if got, want := f.Now(), time.Unix(0, 0).Add(time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}
