// Package vclock provides a minimal clock abstraction so that deadline
// computation and execution logging are deterministic under test.
//
// The runtime, monitor, and store packages take a vclock.Clock instead of
// calling time.Now directly; production wiring passes System (the wall
// clock) while tests pass a *Fake that they advance by hand.
package vclock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
}

// System is the wall clock.
var System Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// Fake is a manually advanced clock for tests. The zero value starts at
// the zero time; use NewFake to start at a chosen instant.
type Fake struct {
	mu  sync.Mutex
	now time.Time
}

// NewFake returns a Fake clock frozen at start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now returns the fake's current instant.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Advance moves the clock forward by d and returns the new instant.
// Negative durations move the clock backward; tests use this to simulate
// clock skew.
func (f *Fake) Advance(d time.Duration) time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	return f.now
}

// Set jumps the clock to t.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = t
}
