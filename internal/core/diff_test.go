package core

import (
	"strings"
	"testing"
)

func TestDiffIdenticalModels(t *testing.T) {
	a := fig1(t)
	b := a.Clone()
	d := DiffModels(a, b)
	if !d.SameShape {
		t.Fatalf("identical models reported different: %s", d)
	}
}

func TestDiffDetectsAddedPhase(t *testing.T) {
	a := fig1(t)
	b := a.Clone()
	b.Phases = append(b.Phases, &Phase{ID: "archival", Name: "Archival"})
	d := DiffModels(a, b)
	if d.SameShape {
		t.Fatal("added phase not detected")
	}
	if len(d.AddedPhases) != 1 || d.AddedPhases[0] != "archival" {
		t.Fatalf("AddedPhases = %v, want [archival]", d.AddedPhases)
	}
}

func TestDiffDetectsRemovedPhase(t *testing.T) {
	a := fig1(t)
	b := a.Clone()
	// Remove the internal review phase — the classic "skip the internal
	// review, we're late" change from §II.A.
	var phases []*Phase
	for _, p := range b.Phases {
		if p.ID != "internalreview" {
			phases = append(phases, p)
		}
	}
	b.Phases = phases
	d := DiffModels(a, b)
	if len(d.RemovedPhases) != 1 || d.RemovedPhases[0] != "internalreview" {
		t.Fatalf("RemovedPhases = %v, want [internalreview]", d.RemovedPhases)
	}
	if !d.Removed("internalreview") {
		t.Fatal("Removed(internalreview) = false")
	}
	if d.Removed("elaboration") {
		t.Fatal("Removed(elaboration) = true for an untouched phase")
	}
}

func TestDiffDetectsChangedActions(t *testing.T) {
	a := fig1(t)
	b := a.Clone()
	p, _ := b.Phase("publication")
	p.Actions[0].Params[0].Value = "https://project.liquidpub.org"
	d := DiffModels(a, b)
	if len(d.ChangedPhases) != 1 || d.ChangedPhases[0] != "publication" {
		t.Fatalf("ChangedPhases = %v, want [publication]", d.ChangedPhases)
	}
}

func TestDiffDetectsTransitionOnlyChange(t *testing.T) {
	a := fig1(t)
	b := a.Clone()
	b.Transitions = append(b.Transitions, Transition{From: "publication", To: "elaboration"})
	d := DiffModels(a, b)
	if d.SameShape {
		t.Fatal("transition-only change not detected")
	}
	if len(d.AddedPhases)+len(d.RemovedPhases)+len(d.ChangedPhases) != 0 {
		t.Fatalf("phase-level diff should be empty, got %s", d)
	}
	if !strings.Contains(d.String(), "transitions changed") {
		t.Fatalf("String() = %q, want mention of transitions", d.String())
	}
}

func TestDiffStringMentionsEverything(t *testing.T) {
	a := fig1(t)
	b := a.Clone()
	b.Phases = append(b.Phases[1:], &Phase{ID: "new", Name: "New"}) // drop first, add one
	p, _ := b.Phase("publication")
	p.Name = "Publish!"
	s := DiffModels(a, b).String()
	for _, want := range []string{"added new", "removed elaboration", "changed publication"} {
		if !strings.Contains(s, want) {
			t.Errorf("Diff.String() = %q missing %q", s, want)
		}
	}
}

func TestFingerprintIgnoresVersionMetadata(t *testing.T) {
	a := fig1(t)
	b := a.Clone()
	b.Version.Number = "9.9"
	b.Version.CreatedBy = "somebody-else"
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint should ignore version metadata")
	}
}

func TestFingerprintSensitiveToStructure(t *testing.T) {
	a := fig1(t)
	mutations := []func(*Model){
		func(m *Model) { m.Phases[0].Name = "Renamed" },
		func(m *Model) { m.Phases[0].Final = false; m.Phases[5].Final = false },
		func(m *Model) { m.Transitions = m.Transitions[1:] },
		func(m *Model) { m.ResourceTypes = append(m.ResourceTypes, "svn") },
		func(m *Model) {
			p, _ := m.Phase("internalreview")
			p.Actions = p.Actions[:1]
		},
		func(m *Model) { m.Annotations = append(m.Annotations, "quality plan v2") },
	}
	for i, mutate := range mutations {
		b := a.Clone()
		mutate(b)
		if a.Fingerprint() == b.Fingerprint() {
			t.Errorf("mutation %d not reflected in fingerprint", i)
		}
	}
}
