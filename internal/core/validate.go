package core

import (
	"errors"
	"fmt"
	"strings"
)

// Severity classifies a lint finding.
type Severity int

// Lint severities. The model is deliberately forgiving: only findings
// that make a model meaningless (no phases, duplicate ids, dangling
// transitions, actions on final phases) are hard errors; everything else
// is a warning so that a partially specified lifecycle remains usable
// (requirement 6, §II.B).
const (
	Warning Severity = iota
	Error
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Issue is one validation or lint finding.
type Issue struct {
	Severity Severity
	Code     string // stable machine-readable code, e.g. "dangling-transition"
	Phase    string // phase id the finding concerns, if any
	Message  string
}

// String formats the issue for humans.
func (i Issue) String() string {
	if i.Phase != "" {
		return fmt.Sprintf("%s: %s: phase %q: %s", i.Severity, i.Code, i.Phase, i.Message)
	}
	return fmt.Sprintf("%s: %s: %s", i.Severity, i.Code, i.Message)
}

// ValidationError aggregates the hard errors found by Validate.
type ValidationError struct {
	Issues []Issue
}

// Error joins the individual findings.
func (e *ValidationError) Error() string {
	msgs := make([]string, len(e.Issues))
	for i, is := range e.Issues {
		msgs[i] = is.String()
	}
	return "core: invalid model: " + strings.Join(msgs, "; ")
}

// IsValidation reports whether err is (or wraps) a *ValidationError.
func IsValidation(err error) bool {
	var ve *ValidationError
	return errors.As(err, &ve)
}

// Validate checks the hard structural rules of the model and returns a
// *ValidationError listing every violation, or nil if the model is
// usable. Soft findings are reported by Lint instead.
func (m *Model) Validate() error {
	var hard []Issue
	for _, is := range m.check() {
		if is.Severity == Error {
			hard = append(hard, is)
		}
	}
	if len(hard) > 0 {
		return &ValidationError{Issues: hard}
	}
	return nil
}

// Lint returns every finding, hard and soft, so designers can see
// warnings (unreachable phases, no final phase, duplicate transitions)
// that Validate deliberately tolerates.
func (m *Model) Lint() []Issue {
	return m.check()
}

func (m *Model) check() []Issue {
	var issues []Issue
	add := func(sev Severity, code, phase, format string, args ...any) {
		issues = append(issues, Issue{
			Severity: sev, Code: code, Phase: phase,
			Message: fmt.Sprintf(format, args...),
		})
	}

	if strings.TrimSpace(m.Name) == "" {
		add(Warning, "unnamed-model", "", "model has no name")
	}
	if len(m.Phases) == 0 {
		add(Error, "no-phases", "", "model defines no phases")
	}

	seen := make(map[string]bool, len(m.Phases))
	for _, p := range m.Phases {
		switch {
		case strings.TrimSpace(p.ID) == "":
			add(Error, "empty-phase-id", "", "phase with empty id")
			continue
		case p.ID == Begin:
			add(Error, "reserved-phase-id", p.ID, "phase id %q is reserved for the initial pseudo-node", Begin)
			continue
		}
		if seen[p.ID] {
			add(Error, "duplicate-phase-id", p.ID, "phase id declared more than once")
		}
		seen[p.ID] = true

		if strings.TrimSpace(p.Name) == "" {
			add(Warning, "unnamed-phase", p.ID, "phase has no display name")
		}
		if p.Final && len(p.Actions) > 0 {
			// §IV.B: "End phases are phases with no associated actions".
			add(Error, "final-phase-with-actions", p.ID, "final phase declares %d action(s); end phases only denote completion", len(p.Actions))
		}
		for _, a := range p.Actions {
			if strings.TrimSpace(a.URI) == "" {
				add(Error, "action-without-uri", p.ID, "action %q has no type URI", a.Name)
			}
			pseen := make(map[string]bool, len(a.Params))
			for _, prm := range a.Params {
				if prm.ID == "" {
					add(Error, "param-without-id", p.ID, "action %q declares a parameter with no id", a.Name)
					continue
				}
				if pseen[prm.ID] {
					add(Error, "duplicate-param", p.ID, "action %q declares parameter %q twice", a.Name, prm.ID)
				}
				pseen[prm.ID] = true
				if prm.BindingTime != "" && !prm.BindingTime.Valid() {
					add(Error, "bad-binding-time", p.ID, "action %q parameter %q has unknown binding time %q", a.Name, prm.ID, prm.BindingTime)
				}
				if prm.Required && prm.BindingTime == BindDefinition && prm.Value == "" {
					add(Warning, "unbound-definition-param", p.ID, "action %q parameter %q is required at definition time but has no value", a.Name, prm.ID)
				}
			}
		}
	}

	hasInitial := false
	type edge struct{ from, to string }
	eseen := make(map[edge]bool, len(m.Transitions))
	for _, t := range m.Transitions {
		if t.From == Begin {
			hasInitial = true
		} else if !seen[t.From] {
			add(Error, "dangling-transition", t.From, "transition source %q is not a declared phase", t.From)
		}
		if !seen[t.To] {
			add(Error, "dangling-transition", t.To, "transition target %q is not a declared phase", t.To)
		}
		if t.To == Begin {
			add(Error, "transition-to-begin", "", "transition target may not be the %s pseudo-node", Begin)
		}
		if t.From == t.To {
			add(Warning, "self-transition", t.From, "self transition (allowed, but usually means a missing phase split)")
		}
		e := edge{t.From, t.To}
		if eseen[e] {
			add(Warning, "duplicate-transition", t.From, "transition %s -> %s declared more than once", t.From, t.To)
		}
		eseen[e] = true
	}
	if !hasInitial && len(m.Phases) > 0 {
		add(Warning, "no-initial-transition", "", "no transition from %s; first phase %q will be the default start", Begin, m.Phases[0].ID)
	}
	if len(m.FinalPhases()) == 0 && len(m.Phases) > 0 {
		add(Warning, "no-final-phase", "", "model declares no final phase; instances can never complete")
	}

	// Reachability over suggested transitions only. Unreachable phases
	// are a warning, not an error: free moves can reach any phase, and a
	// descriptive model may keep phases purely for documentation.
	if len(m.Phases) > 0 && len(issues) == 0 || len(m.Phases) > 0 {
		reached := make(map[string]bool)
		queue := append([]string(nil), m.InitialPhases()...)
		for _, q := range queue {
			reached[q] = true
		}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, next := range m.SuggestedFrom(cur) {
				if !reached[next] {
					reached[next] = true
					queue = append(queue, next)
				}
			}
		}
		for _, p := range m.Phases {
			if p.ID != "" && !reached[p.ID] {
				add(Warning, "unreachable-phase", p.ID, "phase is not reachable via suggested transitions (free moves can still reach it)")
			}
		}
	}
	return issues
}
