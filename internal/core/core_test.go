package core

import (
	"testing"
	"time"
)

// fig1 builds the paper's Fig. 1 EU Project deliverable lifecycle:
// Elaboration -> Internal Review -> Final Assembly -> EU Review ->
// Publication, with two terminal nodes and the actions shown in the
// figure.
func fig1(t testing.TB) *Model {
	t.Helper()
	m, err := NewModel("urn:gelee:models:eu-deliverable", "EU Project deliverable lifecycle").
		Version("1.0", "lpAdmin", time.Date(2008, 7, 8, 0, 0, 0, 0, time.UTC)).
		SuggestTypes("mediawiki", "gdoc").
		Phase("elaboration", "Elaboration").Done().
		Phase("internalreview", "Internal Review").
		Action("http://www.liquidpub.org/a/chr", "Change access rights",
			Param{ID: "mode", Value: "reviewers-only", BindingTime: BindDefinition}).
		Action("http://www.liquidpub.org/a/notify", "Notify reviewers",
			Param{ID: "reviewers", BindingTime: BindInstantiation, Required: true}).
		Done().
		Phase("finalassembly", "Final Assembly").
		Action("http://www.liquidpub.org/a/pdf", "Generate PDF").
		Action("http://www.liquidpub.org/a/chr", "Change access rights",
			Param{ID: "mode", Value: "consortium", BindingTime: BindDefinition}).
		Done().
		Phase("eureview", "EU Review").
		Action("http://www.liquidpub.org/a/chr", "Change access rights",
			Param{ID: "mode", Value: "agency", BindingTime: BindDefinition}).
		Action("http://www.liquidpub.org/a/notify", "Notify reviewers",
			Param{ID: "reviewers", Value: "eu-officers", BindingTime: BindAny}).
		Done().
		Phase("publication", "Publication").
		Action("http://www.liquidpub.org/a/post", "Post on web site",
			Param{ID: "site", BindingTime: BindCall, Required: true}).
		Action("http://www.liquidpub.org/a/chr", "Change access rights",
			Param{ID: "mode", Value: "public", BindingTime: BindDefinition}).
		Done().
		FinalPhase("accepted", "Accepted").
		FinalPhase("rejected", "Rejected").
		Initial("elaboration").
		Chain("elaboration", "internalreview", "finalassembly", "eureview", "publication", "accepted").
		Transition("internalreview", "elaboration"). // review iteration loop
		Transition("eureview", "finalassembly").     // EU asks for changes
		Transition("eureview", "rejected").
		Build()
	if err != nil {
		t.Fatalf("fig1 model invalid: %v", err)
	}
	return m
}

func TestFig1ModelShape(t *testing.T) {
	m := fig1(t)
	if got, want := len(m.Phases), 7; got != want {
		t.Fatalf("phases = %d, want %d", got, want)
	}
	if got := m.InitialPhases(); len(got) != 1 || got[0] != "elaboration" {
		t.Fatalf("InitialPhases = %v, want [elaboration]", got)
	}
	finals := m.FinalPhases()
	if len(finals) != 2 {
		t.Fatalf("FinalPhases = %v, want two terminal nodes", finals)
	}
	ir, ok := m.Phase("internalreview")
	if !ok {
		t.Fatal("internalreview phase missing")
	}
	if len(ir.Actions) != 2 {
		t.Fatalf("internalreview actions = %d, want 2 (change rights, notify)", len(ir.Actions))
	}
}

func TestSuggestedFromFollowsDeclarationOrder(t *testing.T) {
	m := fig1(t)
	got := m.SuggestedFrom("eureview")
	want := []string{"publication", "finalassembly", "rejected"}
	if len(got) != len(want) {
		t.Fatalf("SuggestedFrom(eureview) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SuggestedFrom(eureview)[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSuggests(t *testing.T) {
	m := fig1(t)
	cases := []struct {
		from, to string
		want     bool
	}{
		{"elaboration", "internalreview", true},
		{"internalreview", "elaboration", true}, // iteration loop
		{"elaboration", "publication", false},   // skipping is a deviation
		{Begin, "elaboration", true},
		{Begin, "publication", false},
	}
	for _, c := range cases {
		if got := m.Suggests(c.from, c.to); got != c.want {
			t.Errorf("Suggests(%q, %q) = %t, want %t", c.from, c.to, got, c.want)
		}
	}
}

func TestInitialPhasesFallsBackToFirstPhase(t *testing.T) {
	m := &Model{Name: "draft", Phases: []*Phase{{ID: "a", Name: "A"}, {ID: "b", Name: "B"}}}
	got := m.InitialPhases()
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("InitialPhases = %v, want fallback to first phase [a]", got)
	}
}

func TestInitialPhasesDeduplicates(t *testing.T) {
	m := &Model{
		Phases: []*Phase{{ID: "a", Name: "A"}},
		Transitions: []Transition{
			{From: Begin, To: "a"},
			{From: Begin, To: "a"},
		},
	}
	if got := m.InitialPhases(); len(got) != 1 {
		t.Fatalf("InitialPhases = %v, want deduplicated single entry", got)
	}
}

func TestSuggestsTypeEmptyMeansUniversal(t *testing.T) {
	m := &Model{Phases: []*Phase{{ID: "a", Name: "A"}}}
	if !m.SuggestsType("anything") {
		t.Fatal("model with no suggested types must accept every resource type")
	}
	m.ResourceTypes = []string{"gdoc"}
	if m.SuggestsType("mediawiki") {
		t.Fatal("model suggesting gdoc should not suggest mediawiki")
	}
	if !m.SuggestsType("gdoc") {
		t.Fatal("model should suggest its own declared type")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := fig1(t)
	c := m.Clone()
	if m.Fingerprint() != c.Fingerprint() {
		t.Fatal("clone fingerprint differs from original")
	}
	// Mutate the clone everywhere a shallow copy would alias.
	c.Phases[1].Actions[0].Params[0].Value = "tampered"
	c.Phases[0].Name = "tampered"
	c.Transitions[0].To = "tampered"
	c.ResourceTypes[0] = "tampered"
	if m.Fingerprint() == c.Fingerprint() {
		t.Fatal("mutating clone changed nothing detectable; fingerprint too weak")
	}
	orig, _ := m.Phase("internalreview")
	if orig.Actions[0].Params[0].Value == "tampered" {
		t.Fatal("mutating clone's action params leaked into original: shallow copy")
	}
	if m.Phases[0].Name == "tampered" {
		t.Fatal("mutating clone's phase leaked into original")
	}
	if m.Transitions[0].To == "tampered" {
		t.Fatal("mutating clone's transitions leaked into original")
	}
}

func TestDeadlineDueAt(t *testing.T) {
	start := time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		d    Deadline
		want time.Time
	}{
		{"zero means none", Deadline{}, time.Time{}},
		{"offset from start", Deadline{Offset: 72 * time.Hour}, start.Add(72 * time.Hour)},
		{"absolute wins", Deadline{Offset: time.Hour, Absolute: start.Add(24 * time.Hour)}, start.Add(24 * time.Hour)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.d.DueAt(start); !got.Equal(c.want) {
				t.Fatalf("DueAt = %v, want %v", got, c.want)
			}
		})
	}
}

func TestBindingTimeSemantics(t *testing.T) {
	cases := []struct {
		b               BindingTime
		def, inst, call bool
	}{
		{BindDefinition, true, false, false},
		{BindInstantiation, false, true, false},
		{BindCall, false, false, true},
		{BindAny, true, true, true},
	}
	for _, c := range cases {
		if got := c.b.AllowsDefinition(); got != c.def {
			t.Errorf("%s.AllowsDefinition = %t, want %t", c.b, got, c.def)
		}
		if got := c.b.AllowsInstantiation(); got != c.inst {
			t.Errorf("%s.AllowsInstantiation = %t, want %t", c.b, got, c.inst)
		}
		if got := c.b.AllowsCall(); got != c.call {
			t.Errorf("%s.AllowsCall = %t, want %t", c.b, got, c.call)
		}
	}
	if BindingTime("whenever").Valid() {
		t.Fatal("unknown binding time reported valid")
	}
}

func TestActionCallParamLookup(t *testing.T) {
	a := ActionCall{URI: "urn:a", Params: []Param{{ID: "x", Value: "1"}, {ID: "y"}}}
	p, ok := a.Param("x")
	if !ok || p.Value != "1" {
		t.Fatalf("Param(x) = %+v, %t; want value 1, true", p, ok)
	}
	if _, ok := a.Param("missing"); ok {
		t.Fatal("Param(missing) reported found")
	}
}
