// Package core implements the universal resource lifecycle model of
// Báez, Casati and Marchese, "Universal Resource Lifecycle Management"
// (WISS/ICDE 2009), §IV.
//
// A lifecycle Model is essentially a finite state machine: a set of
// Phases connected by suggested Transitions. The phase describes the
// stage in life in which a resource is; transitions denote *possible*
// evolutions. The model is descriptive rather than prescriptive — it
// does not enforce the transitions it suggests (enforcement would defeat
// the paper's flexibility requirement, §II.B), so nothing in this
// package prevents an instance owner from moving the token anywhere.
//
// The model deliberately knows almost nothing about the resource it will
// manage: only a list of *suggested* resource types (strings naming the
// managing application, e.g. "gdoc" or "mediawiki"). Everything
// resource-specific lives in actions (see package actionlib) executed on
// phase entry.
//
// There are, by design, no path conditions, no transactions, and no
// exception handlers: the paper vetoes every feature that would push the
// model beyond what an advanced web user can learn "in a matter of
// minutes".
package core

import "time"

// Begin is the pseudo-phase used as the source of initial transitions,
// exactly as in the <transition><from>BEGIN</from>... element of the
// paper's Table I. It never appears as a real phase.
const Begin = "BEGIN"

// BindingTime says when an action parameter's value must be supplied.
// The vocabulary is the bindingTime attribute of Table II.
type BindingTime string

// Binding times from Table II: at lifecycle definition, at lifecycle
// instantiation, when the phase is entered (the action call), or at any
// of those moments.
const (
	BindDefinition    BindingTime = "def"
	BindInstantiation BindingTime = "inst"
	BindCall          BindingTime = "call"
	BindAny           BindingTime = "any"
)

// Valid reports whether b is one of the four defined binding times.
func (b BindingTime) Valid() bool {
	switch b {
	case BindDefinition, BindInstantiation, BindCall, BindAny:
		return true
	}
	return false
}

// AllowsDefinition reports whether a value may be bound at model
// definition time.
func (b BindingTime) AllowsDefinition() bool {
	return b == BindDefinition || b == BindAny
}

// AllowsInstantiation reports whether a value may be bound when the
// lifecycle is instantiated on a resource.
func (b BindingTime) AllowsInstantiation() bool {
	return b == BindInstantiation || b == BindAny
}

// AllowsCall reports whether a value may be bound as the phase is
// entered and the action invoked.
func (b BindingTime) AllowsCall() bool {
	return b == BindCall || b == BindAny
}

// VersionInfo carries the provenance block every model and action type
// declares (<version_info> in Tables I and II).
type VersionInfo struct {
	Number    string    // e.g. "1.0"
	CreatedBy string    // author user name
	Created   time.Time // creation date; day precision in the XML form
}

// Param is one parameter of an action call or action type. ID names the
// parameter; Value is its bound value, empty until bound. BindingTime
// and Required come from the action type definition (Table II) and are
// copied onto calls so a model document stays self-contained.
type Param struct {
	ID          string
	Value       string
	BindingTime BindingTime
	Required    bool
}

// ActionCall attaches an action to a phase. URI identifies the action
// type (the web service to invoke, Table I <action><uri>); Name is the
// human label shown in the designer. Params may be partially bound.
type ActionCall struct {
	URI    string
	Name   string
	Params []Param
}

// Param returns the parameter with the given id and whether it exists.
func (a *ActionCall) Param(id string) (Param, bool) {
	for _, p := range a.Params {
		if p.ID == id {
			return p, true
		}
	}
	return Param{}, false
}

// Clone returns a deep copy of the action call.
func (a ActionCall) Clone() ActionCall {
	c := a
	c.Params = append([]Param(nil), a.Params...)
	return c
}

// Deadline is the model's light time-constraint feature (§IV.A mentions
// deadlines and time constraints without elaborating; we implement the
// minimal useful form). Offset is relative to instance start; if
// Absolute is non-zero it wins. A zero Deadline means "none".
type Deadline struct {
	Offset   time.Duration
	Absolute time.Time
}

// IsZero reports whether no deadline is set.
func (d Deadline) IsZero() bool { return d.Offset == 0 && d.Absolute.IsZero() }

// DueAt resolves the deadline against the instant the lifecycle
// instance started. A zero deadline resolves to the zero time.
func (d Deadline) DueAt(started time.Time) time.Time {
	if !d.Absolute.IsZero() {
		return d.Absolute
	}
	if d.Offset != 0 {
		return started.Add(d.Offset)
	}
	return time.Time{}
}

// Phase is a stage in the life of a resource. Final phases denote
// completion in a certain final state; per §IV.B they must carry no
// actions. Phases with no actions at all are explicitly legal and
// useful — monitoring is a first-class purpose of the model.
type Phase struct {
	ID       string
	Name     string
	Final    bool
	Actions  []ActionCall
	Deadline Deadline
	Note     string // free-form annotation (§IV.A)
}

// Clone returns a deep copy of the phase.
func (p *Phase) Clone() *Phase {
	c := *p
	c.Actions = make([]ActionCall, len(p.Actions))
	for i, a := range p.Actions {
		c.Actions[i] = a.Clone()
	}
	return &c
}

// Transition is a *suggested* evolution between phases. From may be the
// Begin pseudo-phase; To must be a real phase. Label is optional
// designer text (the "+ label" notation of Fig. 1).
type Transition struct {
	From  string
	To    string
	Label string
}

// Model is a lifecycle definition: the unit the designer edits, the XML
// of Table I serializes, and instantiation deep-copies (light coupling,
// §IV.B). URI identifies the model; ResourceTypes are only *suggested*
// types — they restrict nothing at run time.
type Model struct {
	URI           string
	Name          string
	Version       VersionInfo
	ResourceTypes []string
	Phases        []*Phase
	Transitions   []Transition
	Annotations   []string
}

// Phase returns the phase with the given id and whether it exists.
func (m *Model) Phase(id string) (*Phase, bool) {
	for _, p := range m.Phases {
		if p.ID == id {
			return p, true
		}
	}
	return nil, false
}

// PhaseIDs returns the ids of all phases in declaration order.
func (m *Model) PhaseIDs() []string {
	ids := make([]string, len(m.Phases))
	for i, p := range m.Phases {
		ids[i] = p.ID
	}
	return ids
}

// InitialPhases returns the targets of transitions leaving Begin, in
// declaration order and without duplicates. If the model declares no
// initial transition the first phase is returned as a robustness
// fallback (requirement §II.B.6: partially specified models must remain
// usable).
func (m *Model) InitialPhases() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range m.Transitions {
		if t.From == Begin && !seen[t.To] {
			if _, ok := m.Phase(t.To); ok {
				seen[t.To] = true
				out = append(out, t.To)
			}
		}
	}
	if len(out) == 0 && len(m.Phases) > 0 {
		out = append(out, m.Phases[0].ID)
	}
	return out
}

// SuggestedFrom returns the ids of phases reachable from the given phase
// by a suggested transition, in declaration order, without duplicates.
func (m *Model) SuggestedFrom(phaseID string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range m.Transitions {
		if t.From == phaseID && !seen[t.To] {
			if _, ok := m.Phase(t.To); ok {
				seen[t.To] = true
				out = append(out, t.To)
			}
		}
	}
	return out
}

// Suggests reports whether a transition from → to is declared in the
// model. Moves that are not suggested are still possible at run time;
// the runtime records them as deviations.
func (m *Model) Suggests(from, to string) bool {
	for _, t := range m.Transitions {
		if t.From == from && t.To == to {
			return true
		}
	}
	return false
}

// FinalPhases returns the ids of all final phases.
func (m *Model) FinalPhases() []string {
	var out []string
	for _, p := range m.Phases {
		if p.Final {
			out = append(out, p.ID)
		}
	}
	return out
}

// SuggestsType reports whether the model suggests the given resource
// type. An empty suggestion list means the model is universal: every
// type is acceptable.
func (m *Model) SuggestsType(resourceType string) bool {
	if len(m.ResourceTypes) == 0 {
		return true
	}
	for _, t := range m.ResourceTypes {
		if t == resourceType {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the model. Instantiation clones so that
// later edits to the model never leak into running instances — the
// paper's light coupling between models and instances.
func (m *Model) Clone() *Model {
	c := *m
	c.ResourceTypes = append([]string(nil), m.ResourceTypes...)
	c.Annotations = append([]string(nil), m.Annotations...)
	c.Transitions = append([]Transition(nil), m.Transitions...)
	c.Phases = make([]*Phase, len(m.Phases))
	for i, p := range m.Phases {
		c.Phases[i] = p.Clone()
	}
	return &c
}
