package core

import "time"

// Builder assembles a Model with a fluent API. It exists for the two
// audiences the paper targets: programmatic callers (tests, scenario
// generators) and the designer UI backend, both of which would otherwise
// repeat the same struct plumbing. Build validates and returns the
// finished model.
type Builder struct {
	m Model
}

// NewModel starts a builder for a model with the given URI and display
// name.
func NewModel(uri, name string) *Builder {
	return &Builder{m: Model{URI: uri, Name: name}}
}

// Version sets the version info block.
func (b *Builder) Version(number, createdBy string, created time.Time) *Builder {
	b.m.Version = VersionInfo{Number: number, CreatedBy: createdBy, Created: created}
	return b
}

// SuggestTypes appends suggested resource types.
func (b *Builder) SuggestTypes(types ...string) *Builder {
	b.m.ResourceTypes = append(b.m.ResourceTypes, types...)
	return b
}

// Annotate appends a model-level annotation.
func (b *Builder) Annotate(note string) *Builder {
	b.m.Annotations = append(b.m.Annotations, note)
	return b
}

// Phase appends a phase with the given id and name and returns a
// PhaseBuilder for attaching actions and deadlines.
func (b *Builder) Phase(id, name string) *PhaseBuilder {
	p := &Phase{ID: id, Name: name}
	b.m.Phases = append(b.m.Phases, p)
	return &PhaseBuilder{b: b, p: p}
}

// FinalPhase appends a final (end) phase. Final phases carry no actions
// by rule; PhaseBuilder.Action on a final phase will fail validation.
func (b *Builder) FinalPhase(id, name string) *Builder {
	b.m.Phases = append(b.m.Phases, &Phase{ID: id, Name: name, Final: true})
	return b
}

// Transition appends a suggested transition.
func (b *Builder) Transition(from, to string) *Builder {
	b.m.Transitions = append(b.m.Transitions, Transition{From: from, To: to})
	return b
}

// LabeledTransition appends a suggested transition with designer text.
func (b *Builder) LabeledTransition(from, to, label string) *Builder {
	b.m.Transitions = append(b.m.Transitions, Transition{From: from, To: to, Label: label})
	return b
}

// Initial is shorthand for Transition(Begin, to).
func (b *Builder) Initial(to string) *Builder {
	return b.Transition(Begin, to)
}

// Chain declares transitions linking each listed phase to the next.
func (b *Builder) Chain(ids ...string) *Builder {
	for i := 0; i+1 < len(ids); i++ {
		b.Transition(ids[i], ids[i+1])
	}
	return b
}

// Build validates the assembled model and returns it. The model is
// returned even when validation fails so callers that tolerate partial
// specifications (the designer does) can keep the draft.
func (b *Builder) Build() (*Model, error) {
	m := b.m.Clone()
	return m, m.Validate()
}

// MustBuild is Build for static models known to be valid; it panics on
// validation failure.
func (b *Builder) MustBuild() *Model {
	m, err := b.Build()
	if err != nil {
		panic("core: MustBuild: " + err.Error())
	}
	return m
}

// PhaseBuilder configures one phase in place.
type PhaseBuilder struct {
	b *Builder
	p *Phase
}

// Action attaches an action call with already-bound or unbound
// parameters.
func (pb *PhaseBuilder) Action(uri, name string, params ...Param) *PhaseBuilder {
	pb.p.Actions = append(pb.p.Actions, ActionCall{URI: uri, Name: name, Params: params})
	return pb
}

// DueIn sets a deadline relative to instance start.
func (pb *PhaseBuilder) DueIn(offset time.Duration) *PhaseBuilder {
	pb.p.Deadline = Deadline{Offset: offset}
	return pb
}

// DueAt sets an absolute deadline.
func (pb *PhaseBuilder) DueAt(t time.Time) *PhaseBuilder {
	pb.p.Deadline = Deadline{Absolute: t}
	return pb
}

// Note attaches a free-form annotation to the phase.
func (pb *PhaseBuilder) Note(note string) *PhaseBuilder {
	pb.p.Note = note
	return pb
}

// Done returns to the model builder.
func (pb *PhaseBuilder) Done() *Builder { return pb.b }

// Phase lets a PhaseBuilder chain straight into declaring the next
// phase, mirroring Builder.Phase.
func (pb *PhaseBuilder) Phase(id, name string) *PhaseBuilder { return pb.b.Phase(id, name) }

// FinalPhase mirrors Builder.FinalPhase.
func (pb *PhaseBuilder) FinalPhase(id, name string) *Builder { return pb.b.FinalPhase(id, name) }

// Transition mirrors Builder.Transition.
func (pb *PhaseBuilder) Transition(from, to string) *Builder { return pb.b.Transition(from, to) }
