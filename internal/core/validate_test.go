package core

import (
	"strings"
	"testing"
)

func findIssue(issues []Issue, code string) (Issue, bool) {
	for _, i := range issues {
		if i.Code == code {
			return i, true
		}
	}
	return Issue{}, false
}

func TestValidateAcceptsFig1(t *testing.T) {
	m := fig1(t)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate(fig1) = %v, want nil", err)
	}
}

func TestValidateRejectsEmptyModel(t *testing.T) {
	m := &Model{Name: "empty"}
	err := m.Validate()
	if err == nil {
		t.Fatal("Validate accepted a model with no phases")
	}
	if !IsValidation(err) {
		t.Fatalf("error %T is not a ValidationError", err)
	}
	ve := err.(*ValidationError)
	if _, ok := findIssue(ve.Issues, "no-phases"); !ok {
		t.Fatalf("missing no-phases issue in %v", ve.Issues)
	}
}

func TestValidateRejectsDuplicatePhaseIDs(t *testing.T) {
	m := &Model{Name: "dup", Phases: []*Phase{
		{ID: "a", Name: "A"}, {ID: "a", Name: "Again"},
	}}
	err := m.Validate()
	if err == nil {
		t.Fatal("Validate accepted duplicate phase ids")
	}
	if !strings.Contains(err.Error(), "duplicate-phase-id") {
		t.Fatalf("error %q does not mention duplicate-phase-id", err)
	}
}

func TestValidateRejectsReservedBeginID(t *testing.T) {
	m := &Model{Name: "bad", Phases: []*Phase{{ID: Begin, Name: "Nope"}}}
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted a phase named BEGIN")
	}
}

func TestValidateRejectsFinalPhaseWithActions(t *testing.T) {
	// §IV.B: end phases have no associated actions.
	m := &Model{Name: "bad", Phases: []*Phase{
		{ID: "done", Name: "Done", Final: true, Actions: []ActionCall{{URI: "urn:x", Name: "X"}}},
	}}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "final-phase-with-actions") {
		t.Fatalf("Validate = %v, want final-phase-with-actions error", err)
	}
}

func TestValidateRejectsDanglingTransitions(t *testing.T) {
	m := &Model{Name: "bad",
		Phases:      []*Phase{{ID: "a", Name: "A"}},
		Transitions: []Transition{{From: "a", To: "ghost"}},
	}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "dangling-transition") {
		t.Fatalf("Validate = %v, want dangling-transition error", err)
	}
}

func TestValidateRejectsTransitionToBegin(t *testing.T) {
	m := &Model{Name: "bad",
		Phases:      []*Phase{{ID: "a", Name: "A"}},
		Transitions: []Transition{{From: "a", To: Begin}},
	}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "transition-to-begin") {
		t.Fatalf("Validate = %v, want transition-to-begin error", err)
	}
}

func TestValidateRejectsActionWithoutURI(t *testing.T) {
	m := &Model{Name: "bad", Phases: []*Phase{
		{ID: "a", Name: "A", Actions: []ActionCall{{Name: "mystery"}}},
	}}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "action-without-uri") {
		t.Fatalf("Validate = %v, want action-without-uri error", err)
	}
}

func TestValidateRejectsBadBindingTime(t *testing.T) {
	m := &Model{Name: "bad", Phases: []*Phase{
		{ID: "a", Name: "A", Actions: []ActionCall{{
			URI: "urn:x", Name: "X",
			Params: []Param{{ID: "p", BindingTime: "whenever"}},
		}}},
	}}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "bad-binding-time") {
		t.Fatalf("Validate = %v, want bad-binding-time error", err)
	}
}

func TestValidateRejectsDuplicateParams(t *testing.T) {
	m := &Model{Name: "bad", Phases: []*Phase{
		{ID: "a", Name: "A", Actions: []ActionCall{{
			URI: "urn:x", Name: "X",
			Params: []Param{{ID: "p"}, {ID: "p"}},
		}}},
	}}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "duplicate-param") {
		t.Fatalf("Validate = %v, want duplicate-param error", err)
	}
}

// Partial specifications must validate (robustness requirement §II.B.6):
// warnings only, no hard failure.
func TestValidateToleratesPartialSpecification(t *testing.T) {
	m := &Model{
		Name: "loose",
		Phases: []*Phase{
			{ID: "a", Name: "A"},
			{ID: "island", Name: "Unreachable"},
		},
		// no initial transition, no final phase, unreachable phase
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate rejected a partially specified but usable model: %v", err)
	}
	lint := m.Lint()
	for _, code := range []string{"no-initial-transition", "no-final-phase", "unreachable-phase"} {
		if _, ok := findIssue(lint, code); !ok {
			t.Errorf("Lint missing expected warning %q (got %v)", code, lint)
		}
	}
}

func TestLintFlagsSelfAndDuplicateTransitions(t *testing.T) {
	m := &Model{Name: "loops",
		Phases: []*Phase{{ID: "a", Name: "A"}, {ID: "b", Name: "B", Final: true}},
		Transitions: []Transition{
			{From: Begin, To: "a"},
			{From: "a", To: "a"},
			{From: "a", To: "b"},
			{From: "a", To: "b"},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate = %v, want nil (lint-only findings)", err)
	}
	lint := m.Lint()
	if _, ok := findIssue(lint, "self-transition"); !ok {
		t.Errorf("Lint missing self-transition warning: %v", lint)
	}
	if _, ok := findIssue(lint, "duplicate-transition"); !ok {
		t.Errorf("Lint missing duplicate-transition warning: %v", lint)
	}
}

func TestLintWarnsUnboundRequiredDefinitionParam(t *testing.T) {
	m := &Model{Name: "warn", Phases: []*Phase{
		{ID: "a", Name: "A", Actions: []ActionCall{{
			URI: "urn:x", Name: "X",
			Params: []Param{{ID: "p", BindingTime: BindDefinition, Required: true}},
		}}},
	}}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate = %v; unbound def-time param should only warn", err)
	}
	if _, ok := findIssue(m.Lint(), "unbound-definition-param"); !ok {
		t.Fatalf("Lint missing unbound-definition-param: %v", m.Lint())
	}
}

func TestIssueStringIncludesPhase(t *testing.T) {
	i := Issue{Severity: Error, Code: "x", Phase: "p1", Message: "boom"}
	s := i.String()
	for _, want := range []string{"error", "x", "p1", "boom"} {
		if !strings.Contains(s, want) {
			t.Errorf("Issue.String() = %q missing %q", s, want)
		}
	}
}

func TestValidationErrorListsAllIssues(t *testing.T) {
	m := &Model{ // two independent hard errors
		Phases: []*Phase{
			{ID: "", Name: "no id"},
			{ID: "done", Name: "Done", Final: true, Actions: []ActionCall{{URI: "u", Name: "n"}}},
		},
	}
	err := m.Validate()
	if err == nil {
		t.Fatal("expected validation failure")
	}
	msg := err.Error()
	if !strings.Contains(msg, "empty-phase-id") || !strings.Contains(msg, "final-phase-with-actions") {
		t.Fatalf("aggregated error %q should list both findings", msg)
	}
}
