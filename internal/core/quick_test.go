package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// genModel is a quick.Generator-style random model factory used by the
// property tests below. It produces structurally valid models of
// arbitrary shape: 1..12 phases, random suggested transitions, random
// actions with random binding times, at most one final phase carrying no
// actions.
func genModel(r *rand.Rand) *Model {
	n := 1 + r.Intn(12)
	b := NewModel(fmt.Sprintf("urn:gelee:models:rnd-%d", r.Int63()), fmt.Sprintf("Random %d", n))
	b.Version("1.0", "quick", time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC))
	bindTimes := []BindingTime{BindDefinition, BindInstantiation, BindCall, BindAny}
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("p%d", i)
		if i == n-1 && n > 1 && r.Intn(2) == 0 {
			b.FinalPhase(ids[i], fmt.Sprintf("Phase %d", i))
			continue
		}
		pb := b.Phase(ids[i], fmt.Sprintf("Phase %d", i))
		for a := 0; a < r.Intn(3); a++ {
			var params []Param
			for p := 0; p < r.Intn(3); p++ {
				params = append(params, Param{
					ID:          fmt.Sprintf("a%dparam%d", a, p),
					Value:       fmt.Sprintf("v%d", r.Intn(10)),
					BindingTime: bindTimes[r.Intn(len(bindTimes))],
					Required:    r.Intn(2) == 0,
				})
			}
			pb.Action(fmt.Sprintf("urn:gelee:actions:act%d", a), fmt.Sprintf("Action %d", a), params...)
		}
		if r.Intn(4) == 0 {
			pb.DueIn(time.Duration(1+r.Intn(100)) * time.Hour)
		}
	}
	b.Initial(ids[0])
	for i := 0; i < n*2; i++ {
		from := ids[r.Intn(n)]
		to := ids[r.Intn(n)]
		b.Transition(from, to)
	}
	m, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("genModel produced invalid model: %v", err))
	}
	return m
}

// randomModel adapts genModel to testing/quick's Generator protocol via
// a wrapper type.
type randomModel struct{ M *Model }

// Generate implements quick.Generator.
func (randomModel) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomModel{M: genModel(r)})
}

// Property: cloning preserves the fingerprint, and the clone is
// independent storage (mutating it never affects the original).
func TestQuickClonePreservesFingerprint(t *testing.T) {
	f := func(rm randomModel) bool {
		m := rm.M
		c := m.Clone()
		if m.Fingerprint() != c.Fingerprint() {
			return false
		}
		// Mutate every mutable field of the clone.
		c.Name += "!"
		for _, p := range c.Phases {
			p.Name += "!"
			for i := range p.Actions {
				p.Actions[i].Name += "!"
				for j := range p.Actions[i].Params {
					p.Actions[i].Params[j].Value += "!"
				}
			}
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a model that passed validation always has at least one
// initial phase, and every suggested transition both endpoints resolve.
func TestQuickValidatedModelsAreNavigable(t *testing.T) {
	f := func(rm randomModel) bool {
		m := rm.M
		if len(m.InitialPhases()) == 0 {
			return false
		}
		for _, id := range m.InitialPhases() {
			if _, ok := m.Phase(id); !ok {
				return false
			}
		}
		for _, p := range m.Phases {
			for _, next := range m.SuggestedFrom(p.ID) {
				if _, ok := m.Phase(next); !ok {
					return false
				}
				if !m.Suggests(p.ID, next) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: DiffModels(m, m.Clone()) is always SameShape, and removing
// any phase is always detected.
func TestQuickDiffDetectsRemovals(t *testing.T) {
	f := func(rm randomModel) bool {
		m := rm.M
		if d := DiffModels(m, m.Clone()); !d.SameShape {
			return false
		}
		if len(m.Phases) < 2 {
			return true
		}
		c := m.Clone()
		victim := c.Phases[len(c.Phases)/2].ID
		var kept []*Phase
		for _, p := range c.Phases {
			if p.ID != victim {
				kept = append(kept, p)
			}
		}
		c.Phases = kept
		d := DiffModels(m, c)
		return d.Removed(victim) && !d.SameShape
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: fingerprints are stable across repeated computation (no map
// iteration order leaks into the hash).
func TestQuickFingerprintDeterministic(t *testing.T) {
	f := func(rm randomModel) bool {
		m := rm.M
		a := m.Fingerprint()
		for i := 0; i < 5; i++ {
			if m.Fingerprint() != a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
