package core

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Diff summarizes what changed between two model versions. The runtime
// uses it when a designer propagates a model change (§IV.B): the
// instance owner must choose a landing phase whenever the instance's
// current phase was removed, and the diff tells the UI what to offer.
type Diff struct {
	AddedPhases   []string // phase ids present only in the new model
	RemovedPhases []string // phase ids present only in the old model
	ChangedPhases []string // same id, different name/actions/deadline/final flag
	SameShape     bool     // true when nothing structural changed
}

// DiffModels compares old and new by phase id.
func DiffModels(oldM, newM *Model) Diff {
	var d Diff
	oldByID := make(map[string]*Phase, len(oldM.Phases))
	for _, p := range oldM.Phases {
		oldByID[p.ID] = p
	}
	newByID := make(map[string]*Phase, len(newM.Phases))
	for _, p := range newM.Phases {
		newByID[p.ID] = p
	}
	for _, p := range newM.Phases {
		op, ok := oldByID[p.ID]
		switch {
		case !ok:
			d.AddedPhases = append(d.AddedPhases, p.ID)
		case phaseFingerprint(op) != phaseFingerprint(p):
			d.ChangedPhases = append(d.ChangedPhases, p.ID)
		}
	}
	for _, p := range oldM.Phases {
		if _, ok := newByID[p.ID]; !ok {
			d.RemovedPhases = append(d.RemovedPhases, p.ID)
		}
	}
	d.SameShape = len(d.AddedPhases) == 0 && len(d.RemovedPhases) == 0 &&
		len(d.ChangedPhases) == 0 &&
		transitionsFingerprint(oldM) == transitionsFingerprint(newM)
	return d
}

// Removed reports whether the given phase id was removed by the change.
func (d Diff) Removed(phaseID string) bool {
	for _, id := range d.RemovedPhases {
		if id == phaseID {
			return true
		}
	}
	return false
}

// String renders the diff for logs and the propagation UI.
func (d Diff) String() string {
	if d.SameShape {
		return "no structural change"
	}
	var parts []string
	if len(d.AddedPhases) > 0 {
		parts = append(parts, "added "+strings.Join(d.AddedPhases, ","))
	}
	if len(d.RemovedPhases) > 0 {
		parts = append(parts, "removed "+strings.Join(d.RemovedPhases, ","))
	}
	if len(d.ChangedPhases) > 0 {
		parts = append(parts, "changed "+strings.Join(d.ChangedPhases, ","))
	}
	if len(parts) == 0 {
		parts = append(parts, "transitions changed")
	}
	return strings.Join(parts, "; ")
}

// Fingerprint returns a stable hash of the model's structural content.
// Two models with identical phases, actions, parameters, transitions and
// suggested types fingerprint equally regardless of version metadata.
// The store uses it to detect no-op saves; tests use it to prove clone
// fidelity and XML round-trip stability.
func (m *Model) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "model|%s|%s\n", m.URI, m.Name)
	types := append([]string(nil), m.ResourceTypes...)
	sort.Strings(types)
	fmt.Fprintf(h, "types|%s\n", strings.Join(types, ","))
	for _, p := range m.Phases {
		fmt.Fprintf(h, "phase|%s\n", phaseFingerprint(p))
	}
	fmt.Fprintf(h, "trans|%s\n", transitionsFingerprint(m))
	for _, a := range m.Annotations {
		fmt.Fprintf(h, "note|%s\n", a)
	}
	return h.Sum64()
}

func phaseFingerprint(p *Phase) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|final=%t|due=%d/%d|note=%s", p.ID, p.Name, p.Final,
		p.Deadline.Offset, p.Deadline.Absolute.UnixNano(), p.Note)
	for _, a := range p.Actions {
		fmt.Fprintf(&b, "|act=%s,%s", a.URI, a.Name)
		for _, prm := range a.Params {
			fmt.Fprintf(&b, ";%s=%s,%s,%t", prm.ID, prm.Value, prm.BindingTime, prm.Required)
		}
	}
	return b.String()
}

func transitionsFingerprint(m *Model) string {
	edges := make([]string, len(m.Transitions))
	for i, t := range m.Transitions {
		edges[i] = t.From + ">" + t.To + ":" + t.Label
	}
	sort.Strings(edges)
	return strings.Join(edges, "|")
}
