package gdocsim

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/plugin/notifysim"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/vclock"
)

func service(t *testing.T) (*Service, *vclock.Fake) {
	t.Helper()
	clock := vclock.NewFake(time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC))
	return NewService(clock), clock
}

func TestCreateGetUpdate(t *testing.T) {
	s, clock := service(t)
	d, err := s.Create("d1", "State of the Art", "alice", "draft v0")
	if err != nil {
		t.Fatal(err)
	}
	if d.Mode != "private" || d.ACL["alice"] != AccessOwner || len(d.Revs) != 1 {
		t.Fatalf("created doc = %+v", d)
	}
	if _, err := s.Create("d1", "again", "bob", ""); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := s.Create(" ", "x", "bob", ""); err == nil {
		t.Fatal("blank id accepted")
	}

	clock.Advance(time.Hour)
	rev, err := s.Update("d1", "alice", "draft v1 with content", "sections added")
	if err != nil {
		t.Fatal(err)
	}
	if rev.N != 2 {
		t.Fatalf("rev = %+v", rev)
	}
	got, _ := s.Get("d1")
	if got.Content != "draft v1 with content" || len(got.Revs) != 2 {
		t.Fatalf("doc after update = %+v", got)
	}
	// Non-writer cannot update.
	if _, err := s.Update("d1", "eve", "hijack", ""); err == nil {
		t.Fatal("non-writer update accepted")
	}
	if _, err := s.Update("ghost", "alice", "x", ""); err == nil {
		t.Fatal("update of missing doc accepted")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s, _ := service(t)
	s.Create("d1", "T", "alice", "c")
	d, _ := s.Get("d1")
	d.ACL["eve"] = AccessOwner
	d.Revs[0].Author = "eve"
	fresh, _ := s.Get("d1")
	if fresh.ACL["eve"] == AccessOwner || fresh.Revs[0].Author == "eve" {
		t.Fatal("Get returned aliased storage")
	}
}

func TestModesAndAccess(t *testing.T) {
	s, _ := service(t)
	s.Create("d1", "T", "alice", "c")
	if err := s.SetMode("d1", "interdimensional"); err == nil {
		t.Fatal("unknown mode accepted")
	}
	for _, mode := range Modes {
		if err := s.SetMode("d1", mode); err != nil {
			t.Fatalf("SetMode(%s): %v", mode, err)
		}
	}
	// public mode gives strangers read access.
	if got := s.Access("d1", "stranger"); got != AccessReader {
		t.Fatalf("stranger access under public = %s", got)
	}
	s.SetMode("d1", "private")
	if got := s.Access("d1", "stranger"); got != AccessNone {
		t.Fatalf("stranger access under private = %s", got)
	}
	// Owner keeps owner rights regardless of mode.
	if got := s.Access("d1", "alice"); got != AccessOwner {
		t.Fatalf("owner access = %s", got)
	}
	if got := s.Access("ghost", "alice"); got != AccessNone {
		t.Fatalf("access on missing doc = %s", got)
	}
}

func TestShareSubscribeExport(t *testing.T) {
	s, _ := service(t)
	s.Create("d1", "T", "alice", "some content")
	if err := s.Share("d1", []string{"bob", " carol ", ""}, AccessCommenter); err != nil {
		t.Fatal(err)
	}
	d, _ := s.Get("d1")
	if d.ACL["bob"] != AccessCommenter || d.ACL["carol"] != AccessCommenter {
		t.Fatalf("ACL = %v", d.ACL)
	}
	if err := s.Share("d1", []string{"x"}, "superuser"); err == nil {
		t.Fatal("unknown level accepted")
	}

	s.Subscribe("d1", "bob")
	s.Subscribe("d1", "bob") // idempotent
	d, _ = s.Get("d1")
	if len(d.Watchers) != 1 {
		t.Fatalf("watchers = %v", d.Watchers)
	}

	ex, err := s.ExportPDF("d1")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Revision != 1 || ex.Bytes != 1024+2*len("some content") {
		t.Fatalf("export = %+v", ex)
	}
	if _, err := s.ExportPDF("ghost"); err == nil {
		t.Fatal("export of missing doc accepted")
	}
}

func TestAccessLevelOrdering(t *testing.T) {
	if !AccessOwner.Covers(AccessWriter) || !AccessWriter.Covers(AccessCommenter) ||
		!AccessCommenter.Covers(AccessReader) || !AccessReader.Covers(AccessNone) {
		t.Fatal("level ordering broken")
	}
	if AccessReader.Covers(AccessWriter) {
		t.Fatal("reader covers writer")
	}
	if AccessLevel("emperor").Valid() {
		t.Fatal("unknown level valid")
	}
}

func adapterEnv(t *testing.T) (*Adapter, *Service, *notifysim.Service) {
	t.Helper()
	svc, _ := service(t)
	notify := notifysim.NewService(nil)
	a := NewAdapter(svc, nil, notify)
	return a, svc, notify
}

func actionInv(typeURI, docURI string, params map[string]string) actionlib.Invocation {
	return actionlib.Invocation{
		ID: "inv-1", TypeURI: typeURI,
		ResourceURI: docURI, ResourceType: ResourceType,
		CallbackURI: "callback://inv-1", Params: params,
	}
}

func TestAdapterChangeAccessRights(t *testing.T) {
	a, svc, _ := adapterEnv(t)
	svc.Create("d42", "Doc", "alice", "c")
	detail, err := a.changeAccessRights(actionInv("chr", "http://docs/d42", map[string]string{"mode": "reviewers-only"}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detail, "reviewers-only") {
		t.Fatalf("detail = %q", detail)
	}
	d, _ := svc.Get("d42")
	if d.Mode != "reviewers-only" {
		t.Fatalf("mode = %q", d.Mode)
	}
	if _, err := a.changeAccessRights(actionInv("chr", "http://docs/d42", nil)); err == nil {
		t.Fatal("missing mode accepted")
	}
	if _, err := a.changeAccessRights(actionInv("chr", "http://docs/ghost", map[string]string{"mode": "public"})); err == nil {
		t.Fatal("missing doc accepted")
	}
}

func TestAdapterNotifyReviewers(t *testing.T) {
	a, svc, notify := adapterEnv(t)
	svc.Create("d42", "Doc", "alice", "c")
	detail, err := a.notifyReviewers(actionInv("notify", "http://docs/d42",
		map[string]string{"reviewers": "bob, carol", "subject": "D1.1 review"}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detail, "2 reviewer(s)") || !strings.Contains(detail, "2 notification(s)") {
		t.Fatalf("detail = %q", detail)
	}
	// Side effect 1: reviewers became commenters (sending for review
	// also requires setting access rights, §I).
	d, _ := svc.Get("d42")
	if d.ACL["bob"] != AccessCommenter || d.ACL["carol"] != AccessCommenter {
		t.Fatalf("ACL = %v", d.ACL)
	}
	// Side effect 2: notifications delivered.
	inbox := notify.Inbox("bob")
	if len(inbox) != 1 || inbox[0].Subject != "D1.1 review" {
		t.Fatalf("bob inbox = %+v", inbox)
	}
	if _, err := a.notifyReviewers(actionInv("notify", "http://docs/d42", nil)); err == nil {
		t.Fatal("missing reviewers accepted")
	}
}

func TestAdapterPDFAndPostAndSubscribe(t *testing.T) {
	a, svc, _ := adapterEnv(t)
	svc.Create("d42", "Doc", "alice", "content here")

	detail, err := a.generatePDF(actionInv("pdf", "http://docs/d42", nil))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detail, "PDF of revision 1") {
		t.Fatalf("detail = %q", detail)
	}

	detail, err = a.postOnWebSite(actionInv("post", "http://docs/d42",
		map[string]string{"site": "http://project.liquidpub.org"}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detail, "project.liquidpub.org") {
		t.Fatalf("detail = %q", detail)
	}
	// Publication makes the doc public.
	d, _ := svc.Get("d42")
	if d.Mode != "public" {
		t.Fatalf("mode after post = %q", d.Mode)
	}
	if _, err := a.postOnWebSite(actionInv("post", "http://docs/d42", nil)); err == nil {
		t.Fatal("missing site accepted")
	}

	if _, err := a.subscribe(actionInv("subscribe", "http://docs/d42",
		map[string]string{"subscriber": "pm"})); err != nil {
		t.Fatal(err)
	}
	d, _ = svc.Get("d42")
	if len(d.Watchers) != 1 || d.Watchers[0] != "pm" {
		t.Fatalf("watchers = %v", d.Watchers)
	}
	if _, err := a.subscribe(actionInv("subscribe", "http://docs/d42", nil)); err == nil {
		t.Fatal("missing subscriber accepted")
	}
}

func TestAdapterRenderAndCheck(t *testing.T) {
	a, svc, _ := adapterEnv(t)
	svc.Create("d42", "State of the Art", "alice", "body")
	rend, err := a.Render(resource.Ref{URI: "http://docs/d42", Type: ResourceType})
	if err != nil {
		t.Fatal(err)
	}
	if rend.Title != "State of the Art" || !strings.Contains(rend.HTML, "body") {
		t.Fatalf("rendering = %+v", rend)
	}
	if err := a.Check(resource.Ref{URI: "http://docs/d42", Type: ResourceType}); err != nil {
		t.Fatal(err)
	}
	if err := a.Check(resource.Ref{URI: "http://docs/ghost", Type: ResourceType}); err == nil {
		t.Fatal("missing doc passed Check")
	}
	if a.Type() != "gdoc" {
		t.Fatalf("Type = %q", a.Type())
	}
}

func TestNativeRESTAPI(t *testing.T) {
	a, _, _ := adapterEnv(t)
	srv := httptest.NewServer(a.Mux())
	defer srv.Close()

	// Create.
	body, _ := json.Marshal(map[string]string{"ID": "d1", "Title": "T", "Owner": "alice", "Content": "hello"})
	resp, err := http.Post(srv.URL+"/docs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Duplicate conflicts.
	resp, _ = http.Post(srv.URL+"/docs", "application/json", bytes.NewReader(body))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// List.
	resp, _ = http.Get(srv.URL + "/docs")
	var ids []string
	json.NewDecoder(resp.Body).Decode(&ids)
	resp.Body.Close()
	if len(ids) != 1 || ids[0] != "d1" {
		t.Fatalf("list = %v", ids)
	}

	// Update via PUT.
	up, _ := json.Marshal(map[string]string{"Author": "alice", "Content": "hello v2", "Summary": "edit"})
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/docs/d1", bytes.NewReader(up))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Fetch.
	resp, _ = http.Get(srv.URL + "/docs/d1")
	var d Document
	json.NewDecoder(resp.Body).Decode(&d)
	resp.Body.Close()
	if d.Content != "hello v2" || len(d.Revs) != 2 {
		t.Fatalf("doc = %+v", d)
	}

	// 404 on missing.
	resp, _ = http.Get(srv.URL + "/docs/ghost")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Forbidden update.
	bad, _ := json.Marshal(map[string]string{"Author": "eve", "Content": "x"})
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/docs/d1", bytes.NewReader(bad))
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("forbidden status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestRegistrationsCoverStandardTypes(t *testing.T) {
	a, _, _ := adapterEnv(t)
	regs := a.Registrations()
	if len(regs) != 5 {
		t.Fatalf("registrations = %d", len(regs))
	}
	reg := actionlib.NewRegistry()
	if err := a.RegisterActions(reg, "local://gdoc/actions", actionlib.ProtocolLocal); err != nil {
		t.Fatal(err)
	}
	if got := len(reg.TypesFor(ResourceType)); got != 5 {
		t.Fatalf("TypesFor(gdoc) = %d", got)
	}
}
