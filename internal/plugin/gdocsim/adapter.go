package gdocsim

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/invoke"
	"github.com/liquidpub/gelee/internal/plugin"
	"github.com/liquidpub/gelee/internal/resource"
)

// ResourceType is the type string lifecycle resources use for documents
// managed by this service.
const ResourceType = "gdoc"

// Notifier lets the adapter send reviewer notifications through the
// notification substrate; nil disables the side effect.
type Notifier interface {
	Send(to, subject, body string) error
}

// Adapter bridges Gelee and the document service: it implements
// resource.Plugin (rendering, existence checks) and hosts the action
// implementations for the standard action types.
type Adapter struct {
	svc      *Service
	notifier Notifier
	host     *plugin.Host
}

// NewAdapter builds the adapter. direct is the embedded callback
// reporter (nil for HTTP-only deployments); notifier may be nil.
func NewAdapter(svc *Service, direct invoke.Reporter, notifier Notifier) *Adapter {
	a := &Adapter{svc: svc, notifier: notifier, host: plugin.NewHost(direct)}
	a.host.Handle("chr", a.changeAccessRights)
	a.host.Handle("notify", a.notifyReviewers)
	a.host.Handle("pdf", a.generatePDF)
	a.host.Handle("post", a.postOnWebSite)
	a.host.Handle("subscribe", a.subscribe)
	return a
}

// Host exposes the action host (tests tune its callback client).
func (a *Adapter) Host() *plugin.Host { return a.host }

// Registrations lists the standard action types this adapter implements
// with its host keys.
func (a *Adapter) Registrations() []plugin.Registration {
	return []plugin.Registration{
		{Type: plugin.ChangeAccessRightsType(), Key: "chr"},
		{Type: plugin.NotifyReviewersType(), Key: "notify"},
		{Type: plugin.GeneratePDFType(), Key: "pdf"},
		{Type: plugin.PostOnWebSiteType(), Key: "post"},
		{Type: plugin.SubscribeType(), Key: "subscribe"},
	}
}

// RegisterActions registers this adapter's implementations under
// endpointBase (e.g. "local://gdoc/actions" or the HTTP URL of Mux).
func (a *Adapter) RegisterActions(reg *actionlib.Registry, endpointBase string, protocol actionlib.Protocol) error {
	return plugin.RegisterAll(reg, ResourceType, endpointBase, protocol, a.Registrations())
}

// BindLocal attaches the action implementations to a local invoker
// under endpointBase.
func (a *Adapter) BindLocal(li *invoke.LocalInvoker, endpointBase string) {
	a.host.BindLocal(li, endpointBase)
}

// ---- resource.Plugin --------------------------------------------------------

// Type implements resource.Plugin.
func (a *Adapter) Type() string { return ResourceType }

// Render implements resource.Plugin for the Fig. 4 widget.
func (a *Adapter) Render(ref resource.Ref) (resource.Rendering, error) {
	id := plugin.LastSegment(ref.URI)
	d, ok := a.svc.Get(id)
	if !ok {
		return resource.Rendering{}, fmt.Errorf("gdocsim: no document %q", id)
	}
	return resource.Rendering{
		Title:   d.Title,
		Summary: fmt.Sprintf("document by %s, %d revision(s), mode %s", d.Owner, len(d.Revs), d.Mode),
		HTML:    fmt.Sprintf("<article><h1>%s</h1><p>%s</p></article>", d.Title, d.Content),
		Link:    ref.URI,
		Status:  fmt.Sprintf("rev %d, %d watcher(s), %d export(s)", len(d.Revs), len(d.Watchers), len(d.Exports)),
	}, nil
}

// Check implements resource.Plugin.
func (a *Adapter) Check(ref resource.Ref) error {
	if _, ok := a.svc.Get(plugin.LastSegment(ref.URI)); !ok {
		return fmt.Errorf("gdocsim: no document %q", plugin.LastSegment(ref.URI))
	}
	return nil
}

// ---- action implementations -------------------------------------------------

func (a *Adapter) docID(inv actionlib.Invocation) string {
	return plugin.LastSegment(inv.ResourceURI)
}

// changeAccessRights implements the Table II action: the mode parameter
// drives the coarse audience setting.
func (a *Adapter) changeAccessRights(inv actionlib.Invocation) (string, error) {
	mode := inv.Params["mode"]
	if mode == "" {
		return "", fmt.Errorf("missing required parameter mode")
	}
	if err := a.svc.SetMode(a.docID(inv), mode); err != nil {
		return "", err
	}
	return "access mode set to " + mode, nil
}

// notifyReviewers grants commenter access to each reviewer and sends a
// notification ("sending a Google doc for review also requires setting
// access rights", §I).
func (a *Adapter) notifyReviewers(inv actionlib.Invocation) (string, error) {
	reviewers := splitList(inv.Params["reviewers"])
	if len(reviewers) == 0 {
		return "", fmt.Errorf("missing required parameter reviewers")
	}
	id := a.docID(inv)
	if err := a.svc.Share(id, reviewers, AccessCommenter); err != nil {
		return "", err
	}
	subject := inv.Params["subject"]
	if subject == "" {
		subject = "Please review"
	}
	notified := 0
	if a.notifier != nil {
		for _, r := range reviewers {
			if err := a.notifier.Send(r, subject, "Review requested: "+inv.ResourceURI); err == nil {
				notified++
			}
		}
	}
	return fmt.Sprintf("shared with %d reviewer(s), %d notification(s) sent", len(reviewers), notified), nil
}

func (a *Adapter) generatePDF(inv actionlib.Invocation) (string, error) {
	ex, err := a.svc.ExportPDF(a.docID(inv))
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("PDF of revision %d (%d bytes)", ex.Revision, ex.Bytes), nil
}

// postOnWebSite delegates publication to the site named by the "site"
// parameter via the notifier-like publisher; in the embedded wiring the
// site is a websim service reachable over its own native API, so here
// we record the publication on the document and report the link.
func (a *Adapter) postOnWebSite(inv actionlib.Invocation) (string, error) {
	site := inv.Params["site"]
	if site == "" {
		return "", fmt.Errorf("missing required parameter site")
	}
	id := a.docID(inv)
	if _, ok := a.svc.Get(id); !ok {
		return "", fmt.Errorf("gdocsim: no document %q", id)
	}
	// Ensure the published document is world-readable, as the
	// Publication phase of Fig. 1 implies.
	if err := a.svc.SetMode(id, "public"); err != nil {
		return "", err
	}
	return fmt.Sprintf("posted %s on %s", inv.ResourceURI, site), nil
}

func (a *Adapter) subscribe(inv actionlib.Invocation) (string, error) {
	sub := inv.Params["subscriber"]
	if sub == "" {
		return "", fmt.Errorf("missing required parameter subscriber")
	}
	if err := a.svc.Subscribe(a.docID(inv), sub); err != nil {
		return "", err
	}
	return sub + " subscribed to changes", nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// ---- native REST API --------------------------------------------------------

// Mux returns the service's native HTTP API plus the Gelee action
// endpoints under /actions/ — the shape a real hosted document service
// integrated with Gelee would expose.
//
//	GET    /docs            list ids
//	POST   /docs            create {id,title,owner,content}
//	GET    /docs/{id}       fetch
//	PUT    /docs/{id}       update content {author,content,summary}
//	POST   /actions/{key}   Gelee invocation endpoint
func (a *Adapter) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/actions/", http.StripPrefix("/actions", a.host.RESTHandler()))
	mux.HandleFunc("/docs", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, a.svc.List())
		case http.MethodPost:
			var req struct{ ID, Title, Owner, Content string }
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			d, err := a.svc.Create(req.ID, req.Title, req.Owner, req.Content)
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			w.WriteHeader(http.StatusCreated)
			writeJSON(w, d)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/docs/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/docs/")
		switch r.Method {
		case http.MethodGet:
			d, ok := a.svc.Get(id)
			if !ok {
				http.Error(w, "no such document", http.StatusNotFound)
				return
			}
			writeJSON(w, d)
		case http.MethodPut:
			var req struct{ Author, Content, Summary string }
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			rev, err := a.svc.Update(id, req.Author, req.Content, req.Summary)
			if err != nil {
				http.Error(w, err.Error(), http.StatusForbidden)
				return
			}
			writeJSON(w, rev)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
