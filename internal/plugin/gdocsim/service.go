// Package gdocsim simulates a Google-Docs-like hosted document service:
// documents with revisions, an ACL model, PDF export, watchers, and a
// native REST API. It stands in for the real Google Docs API the paper's
// prototype integrates (§V.B, §VI), preserving the seam the Gelee
// adapter must bridge: per-document access rights, sharing, export, and
// change subscription.
package gdocsim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/liquidpub/gelee/internal/vclock"
)

// AccessLevel orders document rights from none to owner.
type AccessLevel string

// Access levels, weakest to strongest.
const (
	AccessNone      AccessLevel = "none"
	AccessReader    AccessLevel = "reader"
	AccessCommenter AccessLevel = "commenter"
	AccessWriter    AccessLevel = "writer"
	AccessOwner     AccessLevel = "owner"
)

var levelRank = map[AccessLevel]int{
	AccessNone: 0, AccessReader: 1, AccessCommenter: 2, AccessWriter: 3, AccessOwner: 4,
}

// Valid reports whether l is a known level.
func (l AccessLevel) Valid() bool { _, ok := levelRank[l]; return ok }

// Covers reports whether l grants at least the rights of other.
func (l AccessLevel) Covers(other AccessLevel) bool { return levelRank[l] >= levelRank[other] }

// Revision is one saved version of a document.
type Revision struct {
	N       int       `json:"n"`
	Author  string    `json:"author"`
	Time    time.Time `json:"time"`
	Summary string    `json:"summary,omitempty"`
	Bytes   int       `json:"bytes"`
}

// Export records a generated PDF export.
type Export struct {
	Revision int       `json:"revision"`
	Time     time.Time `json:"time"`
	Bytes    int       `json:"bytes"`
}

// Document is a stored doc. Mode is the coarse audience setting the
// "Change access rights" action drives (private, reviewers-only,
// consortium, agency, public); ACL holds per-principal grants on top.
type Document struct {
	ID       string                 `json:"id"`
	Title    string                 `json:"title"`
	Owner    string                 `json:"owner"`
	Content  string                 `json:"content"`
	Mode     string                 `json:"mode"`
	ACL      map[string]AccessLevel `json:"acl"`
	Watchers []string               `json:"watchers,omitempty"`
	Revs     []Revision             `json:"revisions"`
	Exports  []Export               `json:"exports,omitempty"`
	Activity []string               `json:"activity,omitempty"`
}

func (d *Document) clone() Document {
	c := *d
	c.ACL = make(map[string]AccessLevel, len(d.ACL))
	for k, v := range d.ACL {
		c.ACL[k] = v
	}
	c.Watchers = append([]string(nil), d.Watchers...)
	c.Revs = append([]Revision(nil), d.Revs...)
	c.Exports = append([]Export(nil), d.Exports...)
	c.Activity = append([]string(nil), d.Activity...)
	return c
}

// Modes accepted by SetMode, mirroring the Fig. 1 quality plan stages.
var Modes = []string{"private", "reviewers-only", "consortium", "agency", "public"}

func validMode(m string) bool {
	for _, v := range Modes {
		if v == m {
			return true
		}
	}
	return false
}

// Service is the document store. Safe for concurrent use.
type Service struct {
	mu    sync.RWMutex
	docs  map[string]*Document
	clock vclock.Clock
}

// NewService returns an empty service stamping times from clock (nil =
// wall clock).
func NewService(clock vclock.Clock) *Service {
	if clock == nil {
		clock = vclock.System
	}
	return &Service{docs: make(map[string]*Document), clock: clock}
}

// Create adds a document. The owner gets the owner ACL entry; mode
// starts private.
func (s *Service) Create(id, title, owner, content string) (Document, error) {
	if strings.TrimSpace(id) == "" {
		return Document{}, fmt.Errorf("gdocsim: empty document id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[id]; ok {
		return Document{}, fmt.Errorf("gdocsim: document %q exists", id)
	}
	d := &Document{
		ID: id, Title: title, Owner: owner, Content: content, Mode: "private",
		ACL:  map[string]AccessLevel{owner: AccessOwner},
		Revs: []Revision{{N: 1, Author: owner, Time: s.clock.Now(), Summary: "created", Bytes: len(content)}},
	}
	d.Activity = append(d.Activity, "created by "+owner)
	s.docs[id] = d
	return d.clone(), nil
}

// Get returns a copy of the document.
func (s *Service) Get(id string) (Document, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.docs[id]
	if !ok {
		return Document{}, false
	}
	return d.clone(), true
}

// List returns every document id, sorted.
func (s *Service) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.docs))
	for id := range s.docs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Update writes new content as a new revision. The author needs writer
// rights.
func (s *Service) Update(id, author, content, summary string) (Revision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.docs[id]
	if !ok {
		return Revision{}, fmt.Errorf("gdocsim: no document %q", id)
	}
	if !d.ACL[author].Covers(AccessWriter) {
		return Revision{}, fmt.Errorf("gdocsim: %s has no write access to %q", author, id)
	}
	rev := Revision{N: len(d.Revs) + 1, Author: author, Time: s.clock.Now(), Summary: summary, Bytes: len(content)}
	d.Content = content
	d.Revs = append(d.Revs, rev)
	d.Activity = append(d.Activity, fmt.Sprintf("rev %d by %s", rev.N, author))
	return rev, nil
}

// SetMode sets the coarse audience mode — the operation behind the
// "Change access rights" action for this resource type.
func (s *Service) SetMode(id, mode string) error {
	if !validMode(mode) {
		return fmt.Errorf("gdocsim: unknown access mode %q (want one of %s)", mode, strings.Join(Modes, ", "))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.docs[id]
	if !ok {
		return fmt.Errorf("gdocsim: no document %q", id)
	}
	d.Mode = mode
	d.Activity = append(d.Activity, "access mode set to "+mode)
	return nil
}

// Share grants level to each principal.
func (s *Service) Share(id string, principals []string, level AccessLevel) error {
	if !level.Valid() {
		return fmt.Errorf("gdocsim: unknown access level %q", level)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.docs[id]
	if !ok {
		return fmt.Errorf("gdocsim: no document %q", id)
	}
	for _, p := range principals {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		d.ACL[p] = level
		d.Activity = append(d.Activity, fmt.Sprintf("shared with %s as %s", p, level))
	}
	return nil
}

// Subscribe adds a watcher notified on changes.
func (s *Service) Subscribe(id, principal string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.docs[id]
	if !ok {
		return fmt.Errorf("gdocsim: no document %q", id)
	}
	for _, w := range d.Watchers {
		if w == principal {
			return nil
		}
	}
	d.Watchers = append(d.Watchers, principal)
	d.Activity = append(d.Activity, principal+" subscribed")
	return nil
}

// ExportPDF renders the current revision as a PDF (simulated: the byte
// count is deterministic from the content).
func (s *Service) ExportPDF(id string) (Export, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.docs[id]
	if !ok {
		return Export{}, fmt.Errorf("gdocsim: no document %q", id)
	}
	ex := Export{
		Revision: len(d.Revs),
		Time:     s.clock.Now(),
		Bytes:    1024 + 2*len(d.Content), // header + typeset body, deterministic
	}
	d.Exports = append(d.Exports, ex)
	d.Activity = append(d.Activity, fmt.Sprintf("PDF export of rev %d", ex.Revision))
	return ex, nil
}

// Access returns the effective level of principal on the document,
// combining the coarse mode with per-principal ACL entries.
func (s *Service) Access(id, principal string) AccessLevel {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.docs[id]
	if !ok {
		return AccessNone
	}
	acl, ok := d.ACL[principal]
	if !ok {
		acl = AccessNone
	}
	var fromMode AccessLevel = AccessNone
	switch d.Mode {
	case "public":
		fromMode = AccessReader
	case "agency", "consortium", "reviewers-only":
		// Audience modes grant nothing to arbitrary principals; members
		// receive explicit ACL entries when the mode is applied by the
		// lifecycle action.
	}
	if acl.Covers(fromMode) {
		return acl
	}
	return fromMode
}
