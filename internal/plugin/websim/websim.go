// Package websim simulates the project web site of the Fig. 1
// Publication phase ("Post on web site"): a minimal CMS holding posts
// per site, with a native API the post action implementations publish
// through, and a rendering for monitoring.
package websim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/liquidpub/gelee/internal/vclock"
)

// Post is one published entry.
type Post struct {
	Site  string    `json:"site"`
	Title string    `json:"title"`
	Link  string    `json:"link"`
	Time  time.Time `json:"time"`
}

// Service stores posts per site. Safe for concurrent use.
type Service struct {
	mu    sync.RWMutex
	posts map[string][]Post
	clock vclock.Clock
}

// NewService returns an empty site service.
func NewService(clock vclock.Clock) *Service {
	if clock == nil {
		clock = vclock.System
	}
	return &Service{posts: make(map[string][]Post), clock: clock}
}

// Publish adds a post to the site.
func (s *Service) Publish(site, title, link string) (Post, error) {
	site = strings.TrimSpace(site)
	if site == "" {
		return Post{}, fmt.Errorf("websim: empty site")
	}
	if strings.TrimSpace(link) == "" {
		return Post{}, fmt.Errorf("websim: empty link")
	}
	p := Post{Site: site, Title: title, Link: link, Time: s.clock.Now()}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.posts[site] = append(s.posts[site], p)
	return p, nil
}

// Posts returns the site's posts in publication order.
func (s *Service) Posts(site string) []Post {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Post(nil), s.posts[site]...)
}

// Sites returns every site with at least one post, sorted.
func (s *Service) Sites() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.posts))
	for site := range s.posts {
		out = append(out, site)
	}
	sort.Strings(out)
	return out
}
