package websim

import (
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/vclock"
)

func TestPublishAndQuery(t *testing.T) {
	clock := vclock.NewFake(time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC))
	s := NewService(clock)
	p, err := s.Publish("project.liquidpub.org", "D1.1 State of the Art", "http://wiki/D1.1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Title != "D1.1 State of the Art" || p.Link != "http://wiki/D1.1" {
		t.Fatalf("post = %+v", p)
	}
	clock.Advance(time.Hour)
	if _, err := s.Publish("project.liquidpub.org", "D2.1", "http://wiki/D2.1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish("other.site", "x", "http://x"); err != nil {
		t.Fatal(err)
	}

	posts := s.Posts("project.liquidpub.org")
	if len(posts) != 2 || posts[0].Title != "D1.1 State of the Art" {
		t.Fatalf("posts = %+v", posts)
	}
	if got := s.Posts("unknown.site"); len(got) != 0 {
		t.Fatalf("posts = %+v", got)
	}
	sites := s.Sites()
	if len(sites) != 2 || sites[0] != "other.site" {
		t.Fatalf("sites = %v", sites)
	}
}

func TestPublishValidation(t *testing.T) {
	s := NewService(nil)
	if _, err := s.Publish("", "t", "l"); err == nil {
		t.Fatal("empty site accepted")
	}
	if _, err := s.Publish("site", "t", "  "); err == nil {
		t.Fatal("empty link accepted")
	}
}

func TestPostsReturnsCopy(t *testing.T) {
	s := NewService(nil)
	s.Publish("site", "t", "l")
	ps := s.Posts("site")
	ps[0].Title = "tampered"
	if s.Posts("site")[0].Title == "tampered" {
		t.Fatal("Posts returned aliased storage")
	}
}
