package wikisim

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/plugin/notifysim"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/vclock"
)

func env(t *testing.T) (*Adapter, *Service, *notifysim.Service) {
	t.Helper()
	clock := vclock.NewFake(time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC))
	svc := NewService(clock)
	notify := notifysim.NewService(clock)
	return NewAdapter(svc, nil, notify), svc, notify
}

func inv(uri string, params map[string]string) actionlib.Invocation {
	return actionlib.Invocation{ID: "inv-1", ResourceURI: uri, ResourceType: ResourceType,
		CallbackURI: "callback://inv-1", Params: params}
}

func TestPageLifeBasics(t *testing.T) {
	_, svc, _ := env(t)
	p, err := svc.CreatePage("D1.1", "alice", "== Draft ==")
	if err != nil {
		t.Fatal(err)
	}
	if p.Protection != ProtectionNone || len(p.Revs) != 1 {
		t.Fatalf("page = %+v", p)
	}
	if _, err := svc.CreatePage("D1.1", "bob", ""); err == nil {
		t.Fatal("duplicate title accepted")
	}
	if _, err := svc.CreatePage("", "bob", ""); err == nil {
		t.Fatal("empty title accepted")
	}
	rev, err := svc.Edit("D1.1", "bob", "== Draft v2 ==", "expanded")
	if err != nil {
		t.Fatal(err)
	}
	if rev.N != 2 {
		t.Fatalf("rev = %+v", rev)
	}
	if _, err := svc.Edit("ghost", "bob", "", ""); err == nil {
		t.Fatal("edit of missing page accepted")
	}
	if err := svc.Protect("D1.1", "fortified"); err == nil {
		t.Fatal("unknown protection accepted")
	}
	if got := svc.Titles(); len(got) != 1 || got[0] != "D1.1" {
		t.Fatalf("titles = %v", got)
	}
}

func TestWatchIdempotent(t *testing.T) {
	_, svc, _ := env(t)
	svc.CreatePage("P", "a", "")
	svc.Watch("P", "bob")
	svc.Watch("P", "bob")
	p, _ := svc.Page("P")
	if len(p.Watchers) != 1 {
		t.Fatalf("watchers = %v", p.Watchers)
	}
	if err := svc.Watch("ghost", "bob"); err == nil {
		t.Fatal("watch on missing page accepted")
	}
}

func TestChangeAccessRightsMapsModeToProtection(t *testing.T) {
	a, svc, _ := env(t)
	svc.CreatePage("D1.1", "alice", "text")
	cases := map[string]Protection{
		"private":        ProtectionSysop,
		"reviewers-only": ProtectionAutoconfirmed,
		"consortium":     ProtectionAutoconfirmed,
		"agency":         ProtectionSysop,
		"public":         ProtectionNone,
	}
	for mode, want := range cases {
		detail, err := a.changeAccessRights(inv("http://wiki/D1.1", map[string]string{"mode": mode}))
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if !strings.Contains(detail, string(want)) {
			t.Errorf("detail %q missing protection %s", detail, want)
		}
		p, _ := svc.Page("D1.1")
		if p.Protection != want {
			t.Errorf("mode %s -> protection %s, want %s", mode, p.Protection, want)
		}
	}
	if _, err := a.changeAccessRights(inv("http://wiki/D1.1", map[string]string{"mode": "nonsense"})); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestNotifyAddsWatchersAndSendsMail(t *testing.T) {
	a, svc, notify := env(t)
	svc.CreatePage("D1.1", "alice", "text")
	detail, err := a.notifyReviewers(inv("http://wiki/D1.1",
		map[string]string{"reviewers": "bob,carol"}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detail, "2 reviewer(s)") {
		t.Fatalf("detail = %q", detail)
	}
	p, _ := svc.Page("D1.1")
	if len(p.Watchers) != 2 {
		t.Fatalf("watchers = %v", p.Watchers)
	}
	if notify.Sent() != 2 {
		t.Fatalf("sent = %d", notify.Sent())
	}
	if len(notify.Inbox("bob")) != 1 {
		t.Fatal("bob not notified")
	}
	if _, err := a.notifyReviewers(inv("http://wiki/ghost", map[string]string{"reviewers": "x"})); err == nil {
		t.Fatal("missing page accepted")
	}
	if _, err := a.notifyReviewers(inv("http://wiki/D1.1", nil)); err == nil {
		t.Fatal("missing reviewers accepted")
	}
}

func TestPDFPostSubscribe(t *testing.T) {
	a, svc, _ := env(t)
	svc.CreatePage("D1.1", "alice", "wiki body")

	detail, err := a.generatePDF(inv("http://wiki/D1.1", nil))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detail, "PDF of revision 1") {
		t.Fatalf("detail = %q", detail)
	}
	if _, err := a.generatePDF(inv("http://wiki/ghost", nil)); err == nil {
		t.Fatal("missing page accepted")
	}

	// Publication lifts protection.
	svc.Protect("D1.1", ProtectionSysop)
	if _, err := a.postOnWebSite(inv("http://wiki/D1.1", map[string]string{"site": "http://site"})); err != nil {
		t.Fatal(err)
	}
	p, _ := svc.Page("D1.1")
	if p.Protection != ProtectionNone {
		t.Fatalf("protection after post = %s", p.Protection)
	}
	if _, err := a.postOnWebSite(inv("http://wiki/D1.1", nil)); err == nil {
		t.Fatal("missing site accepted")
	}

	if _, err := a.subscribe(inv("http://wiki/D1.1", map[string]string{"subscriber": "pm"})); err != nil {
		t.Fatal(err)
	}
	p, _ = svc.Page("D1.1")
	if len(p.Watchers) != 1 {
		t.Fatalf("watchers = %v", p.Watchers)
	}
	if _, err := a.subscribe(inv("http://wiki/D1.1", nil)); err == nil {
		t.Fatal("missing subscriber accepted")
	}
}

func TestRenderCheckType(t *testing.T) {
	a, svc, _ := env(t)
	svc.CreatePage("D1.1", "alice", "content")
	rend, err := a.Render(resource.Ref{URI: "http://wiki/D1.1", Type: ResourceType})
	if err != nil {
		t.Fatal(err)
	}
	if rend.Title != "D1.1" || !strings.Contains(rend.Summary, "wiki page") {
		t.Fatalf("rendering = %+v", rend)
	}
	if _, err := a.Render(resource.Ref{URI: "http://wiki/ghost", Type: ResourceType}); err == nil {
		t.Fatal("missing page rendered")
	}
	if err := a.Check(resource.Ref{URI: "http://wiki/D1.1", Type: ResourceType}); err != nil {
		t.Fatal(err)
	}
	if a.Type() != "mediawiki" {
		t.Fatalf("Type = %q", a.Type())
	}
}

func TestNativeAPI(t *testing.T) {
	a, svc, _ := env(t)
	svc.CreatePage("D1.1", "alice", "text")
	srv := httptest.NewServer(a.Mux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/pages")
	if err != nil {
		t.Fatal(err)
	}
	var titles []string
	json.NewDecoder(resp.Body).Decode(&titles)
	resp.Body.Close()
	if len(titles) != 1 || titles[0] != "D1.1" {
		t.Fatalf("titles = %v", titles)
	}

	resp, _ = http.Get(srv.URL + "/pages/D1.1")
	var p Page
	json.NewDecoder(resp.Body).Decode(&p)
	resp.Body.Close()
	if p.Title != "D1.1" {
		t.Fatalf("page = %+v", p)
	}

	resp, _ = http.Get(srv.URL + "/pages/ghost")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing page status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestRegistrations(t *testing.T) {
	a, _, _ := env(t)
	reg := actionlib.NewRegistry()
	if err := a.RegisterActions(reg, "local://wiki/actions", actionlib.ProtocolLocal); err != nil {
		t.Fatal(err)
	}
	if got := len(reg.TypesFor(ResourceType)); got != 5 {
		t.Fatalf("TypesFor(mediawiki) = %d", got)
	}
}
