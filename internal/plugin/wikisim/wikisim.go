// Package wikisim simulates a MediaWiki installation — the second
// resource plug-in the paper's prototype ships (§VI: "Resource plug-ins
// currently include Google Docs and MediaWiki"). Pages carry revisions,
// MediaWiki-style protection levels, and watchlists; the adapter maps
// the standard action types onto those native concepts so the *same*
// lifecycle model runs on wiki pages and Google docs alike.
package wikisim

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/invoke"
	"github.com/liquidpub/gelee/internal/plugin"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/vclock"
)

// ResourceType is the lifecycle resource type string for wiki pages.
const ResourceType = "mediawiki"

// Protection is a MediaWiki-style page protection level.
type Protection string

// Protection levels, weakest to strongest.
const (
	ProtectionNone          Protection = "none"          // anyone edits
	ProtectionAutoconfirmed Protection = "autoconfirmed" // registered users
	ProtectionSysop         Protection = "sysop"         // admins only
)

// modeToProtection maps the shared "Change access rights" mode
// vocabulary onto native protection levels — the adapter's whole reason
// to exist: "the way this is done is Google Docs-specific" (§I), and
// wiki-specific here.
var modeToProtection = map[string]Protection{
	"private":        ProtectionSysop,
	"reviewers-only": ProtectionAutoconfirmed,
	"consortium":     ProtectionAutoconfirmed,
	"agency":         ProtectionSysop,
	"public":         ProtectionNone,
}

// Revision is one page edit.
type Revision struct {
	N       int       `json:"n"`
	Author  string    `json:"author"`
	Time    time.Time `json:"time"`
	Comment string    `json:"comment,omitempty"`
}

// Page is a wiki page.
type Page struct {
	Title      string     `json:"title"`
	Text       string     `json:"text"`
	Protection Protection `json:"protection"`
	Watchers   []string   `json:"watchers,omitempty"`
	Revs       []Revision `json:"revisions"`
}

func (p *Page) clone() Page {
	c := *p
	c.Watchers = append([]string(nil), p.Watchers...)
	c.Revs = append([]Revision(nil), p.Revs...)
	return c
}

// Service is the wiki. Safe for concurrent use.
type Service struct {
	mu    sync.RWMutex
	pages map[string]*Page
	clock vclock.Clock
}

// NewService returns an empty wiki.
func NewService(clock vclock.Clock) *Service {
	if clock == nil {
		clock = vclock.System
	}
	return &Service{pages: make(map[string]*Page), clock: clock}
}

// CreatePage adds a page (title is the id, MediaWiki style).
func (s *Service) CreatePage(title, author, text string) (Page, error) {
	if strings.TrimSpace(title) == "" {
		return Page{}, fmt.Errorf("wikisim: empty page title")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pages[title]; ok {
		return Page{}, fmt.Errorf("wikisim: page %q exists", title)
	}
	p := &Page{Title: title, Text: text, Protection: ProtectionNone,
		Revs: []Revision{{N: 1, Author: author, Time: s.clock.Now(), Comment: "created"}}}
	s.pages[title] = p
	return p.clone(), nil
}

// Page returns a copy of the page.
func (s *Service) Page(title string) (Page, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.pages[title]
	if !ok {
		return Page{}, false
	}
	return p.clone(), true
}

// Edit appends a revision.
func (s *Service) Edit(title, author, text, comment string) (Revision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[title]
	if !ok {
		return Revision{}, fmt.Errorf("wikisim: no page %q", title)
	}
	rev := Revision{N: len(p.Revs) + 1, Author: author, Time: s.clock.Now(), Comment: comment}
	p.Text = text
	p.Revs = append(p.Revs, rev)
	return rev, nil
}

// Protect sets the protection level.
func (s *Service) Protect(title string, level Protection) error {
	switch level {
	case ProtectionNone, ProtectionAutoconfirmed, ProtectionSysop:
	default:
		return fmt.Errorf("wikisim: unknown protection %q", level)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[title]
	if !ok {
		return fmt.Errorf("wikisim: no page %q", title)
	}
	p.Protection = level
	return nil
}

// Watch adds a watcher to the page's watchlist.
func (s *Service) Watch(title, user string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[title]
	if !ok {
		return fmt.Errorf("wikisim: no page %q", title)
	}
	for _, w := range p.Watchers {
		if w == user {
			return nil
		}
	}
	p.Watchers = append(p.Watchers, user)
	return nil
}

// Titles returns every page title, sorted.
func (s *Service) Titles() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.pages))
	for t := range s.pages {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Notifier delivers watcher/reviewer notifications (see notifysim).
type Notifier interface {
	Send(to, subject, body string) error
}

// Adapter is the MediaWiki plug-in.
type Adapter struct {
	svc      *Service
	notifier Notifier
	host     *plugin.Host
}

// NewAdapter builds the adapter; notifier may be nil.
func NewAdapter(svc *Service, direct invoke.Reporter, notifier Notifier) *Adapter {
	a := &Adapter{svc: svc, notifier: notifier, host: plugin.NewHost(direct)}
	a.host.Handle("chr", a.changeAccessRights)
	a.host.Handle("notify", a.notifyReviewers)
	a.host.Handle("pdf", a.generatePDF)
	a.host.Handle("post", a.postOnWebSite)
	a.host.Handle("subscribe", a.subscribe)
	return a
}

// Host exposes the action host.
func (a *Adapter) Host() *plugin.Host { return a.host }

// Registrations lists the standard types this adapter implements.
func (a *Adapter) Registrations() []plugin.Registration {
	return []plugin.Registration{
		{Type: plugin.ChangeAccessRightsType(), Key: "chr"},
		{Type: plugin.NotifyReviewersType(), Key: "notify"},
		{Type: plugin.GeneratePDFType(), Key: "pdf"},
		{Type: plugin.PostOnWebSiteType(), Key: "post"},
		{Type: plugin.SubscribeType(), Key: "subscribe"},
	}
}

// RegisterActions registers the implementations under endpointBase.
func (a *Adapter) RegisterActions(reg *actionlib.Registry, endpointBase string, protocol actionlib.Protocol) error {
	return plugin.RegisterAll(reg, ResourceType, endpointBase, protocol, a.Registrations())
}

// BindLocal attaches the implementations to a local invoker.
func (a *Adapter) BindLocal(li *invoke.LocalInvoker, endpointBase string) {
	a.host.BindLocal(li, endpointBase)
}

// Type implements resource.Plugin.
func (a *Adapter) Type() string { return ResourceType }

// Render implements resource.Plugin.
func (a *Adapter) Render(ref resource.Ref) (resource.Rendering, error) {
	title := plugin.LastSegment(ref.URI)
	p, ok := a.svc.Page(title)
	if !ok {
		return resource.Rendering{}, fmt.Errorf("wikisim: no page %q", title)
	}
	return resource.Rendering{
		Title:   p.Title,
		Summary: fmt.Sprintf("wiki page, %d revision(s), protection %s", len(p.Revs), p.Protection),
		HTML:    fmt.Sprintf("<article><h1>%s</h1><pre>%s</pre></article>", p.Title, p.Text),
		Link:    ref.URI,
		Status:  fmt.Sprintf("rev %d, %d watcher(s)", len(p.Revs), len(p.Watchers)),
	}, nil
}

// Check implements resource.Plugin.
func (a *Adapter) Check(ref resource.Ref) error {
	if _, ok := a.svc.Page(plugin.LastSegment(ref.URI)); !ok {
		return fmt.Errorf("wikisim: no page %q", plugin.LastSegment(ref.URI))
	}
	return nil
}

func (a *Adapter) pageTitle(inv actionlib.Invocation) string {
	return plugin.LastSegment(inv.ResourceURI)
}

func (a *Adapter) changeAccessRights(inv actionlib.Invocation) (string, error) {
	mode := inv.Params["mode"]
	level, ok := modeToProtection[mode]
	if !ok {
		return "", fmt.Errorf("unknown access mode %q", mode)
	}
	if err := a.svc.Protect(a.pageTitle(inv), level); err != nil {
		return "", err
	}
	return fmt.Sprintf("protection set to %s (mode %s)", level, mode), nil
}

func (a *Adapter) notifyReviewers(inv actionlib.Invocation) (string, error) {
	reviewers := splitList(inv.Params["reviewers"])
	if len(reviewers) == 0 {
		return "", fmt.Errorf("missing required parameter reviewers")
	}
	title := a.pageTitle(inv)
	if _, ok := a.svc.Page(title); !ok {
		return "", fmt.Errorf("wikisim: no page %q", title)
	}
	subject := inv.Params["subject"]
	if subject == "" {
		subject = "Please review"
	}
	notified := 0
	for _, rv := range reviewers {
		if err := a.svc.Watch(title, rv); err != nil {
			return "", err
		}
		if a.notifier != nil {
			if err := a.notifier.Send(rv, subject, "Review requested: "+inv.ResourceURI); err == nil {
				notified++
			}
		}
	}
	return fmt.Sprintf("%d reviewer(s) added to watchlist, %d notified", len(reviewers), notified), nil
}

func (a *Adapter) generatePDF(inv actionlib.Invocation) (string, error) {
	p, ok := a.svc.Page(a.pageTitle(inv))
	if !ok {
		return "", fmt.Errorf("wikisim: no page %q", a.pageTitle(inv))
	}
	return fmt.Sprintf("PDF of revision %d (%d bytes)", len(p.Revs), 1024+2*len(p.Text)), nil
}

func (a *Adapter) postOnWebSite(inv actionlib.Invocation) (string, error) {
	site := inv.Params["site"]
	if site == "" {
		return "", fmt.Errorf("missing required parameter site")
	}
	title := a.pageTitle(inv)
	if err := a.svc.Protect(title, ProtectionNone); err != nil {
		return "", err
	}
	return fmt.Sprintf("posted %s on %s", inv.ResourceURI, site), nil
}

func (a *Adapter) subscribe(inv actionlib.Invocation) (string, error) {
	sub := inv.Params["subscriber"]
	if sub == "" {
		return "", fmt.Errorf("missing required parameter subscriber")
	}
	if err := a.svc.Watch(a.pageTitle(inv), sub); err != nil {
		return "", err
	}
	return sub + " added to watchlist", nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Mux serves the native wiki API plus the Gelee action endpoints.
//
//	GET  /pages            list titles
//	GET  /pages/{title}    fetch page
//	POST /actions/{key}    Gelee invocation endpoint
func (a *Adapter) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/actions/", http.StripPrefix("/actions", a.host.RESTHandler()))
	mux.HandleFunc("/pages", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(a.svc.Titles())
	})
	mux.HandleFunc("/pages/", func(w http.ResponseWriter, r *http.Request) {
		title := strings.TrimPrefix(r.URL.Path, "/pages/")
		p, ok := a.svc.Page(title)
		if !ok {
			http.Error(w, "no such page", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p)
	})
	return mux
}
