package composite

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
	"github.com/liquidpub/gelee/internal/plugin/wikisim"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/runtime"
	"github.com/liquidpub/gelee/internal/vclock"
)

func TestServiceBasics(t *testing.T) {
	s := NewService()
	main := resource.Ref{URI: "http://wiki/SOTA-main", Type: "mediawiki"}
	refsDoc := resource.Ref{URI: "http://docs/SOTA-refs", Type: "gdoc"}
	c, err := s.Create("sota", "State of the Art", main, refsDoc)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Components) != 2 {
		t.Fatalf("components = %d", len(c.Components))
	}
	if _, err := s.Create("sota", "again"); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := s.Create(" ", "blank"); err == nil {
		t.Fatal("blank id accepted")
	}
	if _, err := s.Create("bad", "bad", resource.Ref{URI: "x"}); err == nil {
		t.Fatal("invalid component accepted")
	}

	slides := resource.Ref{URI: "http://docs/SOTA-slides", Type: "gdoc"}
	if err := s.AddComponent("sota", slides); err != nil {
		t.Fatal(err)
	}
	if err := s.AddComponent("sota", slides); err == nil {
		t.Fatal("duplicate component accepted")
	}
	if err := s.AddComponent("ghost", slides); err == nil {
		t.Fatal("unknown composite accepted")
	}
	got, _ := s.Get("sota")
	if len(got.Components) != 3 {
		t.Fatalf("components = %d", len(got.Components))
	}
	if ids := s.IDs(); len(ids) != 1 || ids[0] != "sota" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewService()
	s.Create("c", "C", resource.Ref{URI: "u", Type: "t"})
	c, _ := s.Get("c")
	c.Components[0].URI = "tampered"
	fresh, _ := s.Get("c")
	if fresh.Components[0].URI == "tampered" {
		t.Fatal("Get returned aliased storage")
	}
}

// env wires a composite over two wiki components, each with its own
// lifecycle instance — the paper's "state of the art composed of the
// main documents, the references, presentations".
type env struct {
	adapter *Adapter
	rt      *runtime.Runtime
	insts   []runtime.Snapshot
}

func newEnv(t *testing.T) *env {
	t.Helper()
	clock := vclock.NewFake(time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC))
	wiki := wikisim.NewService(clock)
	wiki.CreatePage("SOTA-main", "a", "main text")
	wiki.CreatePage("SOTA-refs", "a", "references")

	resources := resource.NewManager()
	if err := resources.Register(wikisim.NewAdapter(wiki, nil, nil)); err != nil {
		t.Fatal(err)
	}

	rt, err := runtime.New(runtime.Config{
		Registry:    actionlib.NewRegistry(),
		Invoker:     runtime.InvokerFunc(func(context.Context, actionlib.Invocation) error { return nil }),
		Clock:       clock,
		SyncActions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := core.NewModel("urn:m", "Component lifecycle").
		Phase("draft", "Draft").Done().
		FinalPhase("done", "Done").
		Initial("draft").Transition("draft", "done").
		MustBuild()

	svc := NewService()
	main := resource.Ref{URI: "http://wiki/SOTA-main", Type: "mediawiki"}
	refsDoc := resource.Ref{URI: "http://wiki/SOTA-refs", Type: "mediawiki"}
	if _, err := svc.Create("sota", "State of the Art", main, refsDoc); err != nil {
		t.Fatal(err)
	}
	adapter := NewAdapter(svc, resources, rt)
	if err := resources.Register(adapter); err != nil {
		t.Fatal(err)
	}

	var insts []runtime.Snapshot
	for _, ref := range []resource.Ref{main, refsDoc} {
		snap, err := rt.Instantiate(model, ref, "owner", nil)
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, snap)
	}
	return &env{adapter: adapter, rt: rt, insts: insts}
}

func TestRenderAggregatesComponents(t *testing.T) {
	e := newEnv(t)
	e.rt.Advance(e.insts[0].ID, "draft", "owner", runtime.AdvanceOptions{})

	rend, err := e.adapter.Render(resource.Ref{URI: "urn:composite:sota", Type: ResourceType})
	if err != nil {
		t.Fatal(err)
	}
	if rend.Title != "State of the Art" {
		t.Fatalf("title = %q", rend.Title)
	}
	// Component titles come from their own plug-in renderings; phases
	// from their lifecycle instances.
	for _, want := range []string{"SOTA-main", "SOTA-refs", "Draft", "not started"} {
		if !strings.Contains(rend.HTML, want) {
			t.Errorf("HTML missing %q:\n%s", want, rend.HTML)
		}
	}
	if !strings.Contains(rend.Status, "2 component(s)") {
		t.Fatalf("status = %q", rend.Status)
	}
	if _, err := e.adapter.Render(resource.Ref{URI: "urn:composite:ghost", Type: ResourceType}); err == nil {
		t.Fatal("missing composite rendered")
	}
}

func TestRollupTracksComponentLifecycles(t *testing.T) {
	e := newEnv(t)
	r, err := e.adapter.Rollup("sota")
	if err != nil {
		t.Fatal(err)
	}
	if r.Components != 2 || r.WithLifecycle != 2 || r.Completed != 0 || r.AllCompleted {
		t.Fatalf("initial rollup = %+v", r)
	}
	if r.ByPhase["(not started)"] != 2 {
		t.Fatalf("by phase = %v", r.ByPhase)
	}

	// Complete the first component.
	e.rt.Advance(e.insts[0].ID, "draft", "owner", runtime.AdvanceOptions{})
	e.rt.Advance(e.insts[0].ID, "done", "owner", runtime.AdvanceOptions{})
	r, _ = e.adapter.Rollup("sota")
	if r.Completed != 1 || r.AllCompleted {
		t.Fatalf("rollup = %+v", r)
	}

	// Complete the second: the composite is ready.
	e.rt.Advance(e.insts[1].ID, "draft", "owner", runtime.AdvanceOptions{})
	e.rt.Advance(e.insts[1].ID, "done", "owner", runtime.AdvanceOptions{})
	r, _ = e.adapter.Rollup("sota")
	if !r.AllCompleted || r.Completed != 2 {
		t.Fatalf("rollup = %+v", r)
	}
	if _, err := e.adapter.Rollup("ghost"); err == nil {
		t.Fatal("rollup of missing composite accepted")
	}
}

func TestCompositeIsItselfALifecycleResource(t *testing.T) {
	// The composite can carry its own lifecycle instance, independent of
	// the components' — "potentially independent but somehow interacting
	// lifecycles".
	e := newEnv(t)
	model := core.NewModel("urn:m:deliverable", "Deliverable lifecycle").
		Phase("assembling", "Assembling").Done().
		FinalPhase("submitted", "Submitted").
		Initial("assembling").Transition("assembling", "submitted").
		MustBuild()
	snap, err := e.rt.Instantiate(model,
		resource.Ref{URI: "urn:composite:sota", Type: ResourceType}, "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The interaction: the owner checks the rollup before submitting.
	r, _ := e.adapter.Rollup("sota")
	if r.AllCompleted {
		t.Fatal("components unexpectedly complete")
	}
	// Owner finishes the components first, then submits the composite.
	for _, in := range e.insts {
		e.rt.Advance(in.ID, "draft", "owner", runtime.AdvanceOptions{})
		e.rt.Advance(in.ID, "done", "owner", runtime.AdvanceOptions{})
	}
	r, _ = e.adapter.Rollup("sota")
	if !r.AllCompleted {
		t.Fatal("components not complete")
	}
	if _, err := e.rt.Advance(snap.ID, "assembling", "owner", runtime.AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rt.Advance(snap.ID, "submitted", "owner", runtime.AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	got, _ := e.rt.Instance(snap.ID)
	if got.State != runtime.StateCompleted {
		t.Fatalf("composite lifecycle state = %s", got.State)
	}
}

func TestCheck(t *testing.T) {
	e := newEnv(t)
	if err := e.adapter.Check(resource.Ref{URI: "urn:composite:sota", Type: ResourceType}); err != nil {
		t.Fatal(err)
	}
	if err := e.adapter.Check(resource.Ref{URI: "urn:composite:ghost", Type: ResourceType}); err == nil {
		t.Fatal("missing composite passed Check")
	}
	if e.adapter.Type() != "composite" {
		t.Fatalf("Type = %q", e.adapter.Type())
	}
}
