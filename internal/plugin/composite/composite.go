// Package composite implements the extension the paper singles out as
// future work (§VI): "to link the lifecycle to complex resource types,
// and specifically to composed resources ... the state of the art is
// composed of the main documents, the references, presentations ...
// managing a complex resource with components and with potentially
// independent but somehow interacting lifecycles".
//
// A composite is itself a URI-identified resource (type "composite")
// whose components are arbitrary resource refs — each possibly carrying
// its own independent lifecycle instances. The adapter renders the
// composite by aggregating component renderings and lifecycle states,
// and the Rollup helper gives lifecycle owners the "interaction" the
// paper hints at: a composite's readiness derived from its components'
// phases (e.g. don't submit the deliverable until every component
// completed).
package composite

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/liquidpub/gelee/internal/plugin"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/runtime"
)

// ResourceType is the lifecycle resource type string for composites.
const ResourceType = "composite"

// Composite is a complex resource: a titled set of component refs.
type Composite struct {
	ID         string         `json:"id"`
	Title      string         `json:"title"`
	Components []resource.Ref `json:"components"`
}

func (c *Composite) clone() Composite {
	out := *c
	out.Components = make([]resource.Ref, len(c.Components))
	for i, r := range c.Components {
		out.Components[i] = r.Clone()
	}
	return out
}

// Service stores composites. Safe for concurrent use.
type Service struct {
	mu         sync.RWMutex
	composites map[string]*Composite
}

// NewService returns an empty composite store.
func NewService() *Service {
	return &Service{composites: make(map[string]*Composite)}
}

// Create adds a composite.
func (s *Service) Create(id, title string, components ...resource.Ref) (Composite, error) {
	if strings.TrimSpace(id) == "" {
		return Composite{}, fmt.Errorf("composite: empty id")
	}
	for _, c := range components {
		if err := c.Validate(); err != nil {
			return Composite{}, fmt.Errorf("composite %s: %w", id, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.composites[id]; ok {
		return Composite{}, fmt.Errorf("composite: %q exists", id)
	}
	c := &Composite{ID: id, Title: title, Components: components}
	s.composites[id] = c
	return c.clone(), nil
}

// AddComponent appends a component ref to an existing composite.
func (s *Service) AddComponent(id string, ref resource.Ref) error {
	if err := ref.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.composites[id]
	if !ok {
		return fmt.Errorf("composite: no composite %q", id)
	}
	for _, ex := range c.Components {
		if ex.URI == ref.URI {
			return fmt.Errorf("composite: %q already contains %s", id, ref.URI)
		}
	}
	c.Components = append(c.Components, ref.Clone())
	return nil
}

// Get returns a copy of the composite.
func (s *Service) Get(id string) (Composite, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.composites[id]
	if !ok {
		return Composite{}, false
	}
	return c.clone(), true
}

// IDs returns every composite id, sorted.
func (s *Service) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.composites))
	for id := range s.composites {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// InstanceSource supplies the lifecycle instances running on a URI —
// satisfied by *runtime.Runtime.
type InstanceSource interface {
	ByResource(uri string) []runtime.Snapshot
}

// Adapter makes composites first-class Gelee resources.
type Adapter struct {
	svc       *Service
	resources *resource.Manager
	instances InstanceSource
}

// NewAdapter builds the adapter. resources renders components
// transparently; instances (may be nil) links component lifecycles into
// the rendering.
func NewAdapter(svc *Service, resources *resource.Manager, instances InstanceSource) *Adapter {
	return &Adapter{svc: svc, resources: resources, instances: instances}
}

// Type implements resource.Plugin.
func (a *Adapter) Type() string { return ResourceType }

// Check implements resource.Plugin.
func (a *Adapter) Check(ref resource.Ref) error {
	if _, ok := a.svc.Get(plugin.LastSegment(ref.URI)); !ok {
		return fmt.Errorf("composite: no composite %q", plugin.LastSegment(ref.URI))
	}
	return nil
}

// Render implements resource.Plugin: the composite's rendering
// aggregates its components' renderings and current lifecycle phases.
func (a *Adapter) Render(ref resource.Ref) (resource.Rendering, error) {
	c, ok := a.svc.Get(plugin.LastSegment(ref.URI))
	if !ok {
		return resource.Rendering{}, fmt.Errorf("composite: no composite %q", plugin.LastSegment(ref.URI))
	}
	var html strings.Builder
	fmt.Fprintf(&html, "<section class=\"composite\"><h1>%s</h1><ul>", c.Title)
	states := make(map[string]int)
	for _, comp := range c.Components {
		title := comp.URI
		if a.resources != nil {
			if rend, err := a.resources.Render(comp); err == nil || rend.Title != "" {
				title = rend.Title
			}
		}
		phase := "no lifecycle"
		if a.instances != nil {
			if snaps := a.instances.ByResource(comp.URI); len(snaps) > 0 {
				last := snaps[len(snaps)-1]
				if p := last.CurrentPhase(); p != nil {
					phase = p.Name
				} else {
					phase = "not started"
				}
				states[string(last.State)]++
			}
		}
		fmt.Fprintf(&html, "<li>%s — %s</li>", title, phase)
	}
	html.WriteString("</ul></section>")

	status := fmt.Sprintf("%d component(s)", len(c.Components))
	if n := states[string(runtime.StateCompleted)]; n > 0 {
		status += fmt.Sprintf(", %d completed", n)
	}
	if n := states[string(runtime.StateActive)]; n > 0 {
		status += fmt.Sprintf(", %d active", n)
	}
	return resource.Rendering{
		Title:   c.Title,
		Summary: fmt.Sprintf("composite of %d resources", len(c.Components)),
		HTML:    html.String(),
		Link:    ref.URI,
		Status:  status,
	}, nil
}

// Rollup summarizes the component lifecycles of a composite — the
// "somehow interacting lifecycles" hook: lifecycle owners consult it
// before advancing the composite's own lifecycle.
type Rollup struct {
	Components    int            `json:"components"`
	WithLifecycle int            `json:"with_lifecycle"`
	Completed     int            `json:"completed"`
	Active        int            `json:"active"`
	ByPhase       map[string]int `json:"by_phase"`
	AllCompleted  bool           `json:"all_completed"`
}

// Rollup computes the aggregate over the composite's components.
func (a *Adapter) Rollup(compositeID string) (Rollup, error) {
	c, ok := a.svc.Get(compositeID)
	if !ok {
		return Rollup{}, fmt.Errorf("composite: no composite %q", compositeID)
	}
	r := Rollup{Components: len(c.Components), ByPhase: make(map[string]int)}
	if a.instances == nil {
		return r, nil
	}
	for _, comp := range c.Components {
		snaps := a.instances.ByResource(comp.URI)
		if len(snaps) == 0 {
			continue
		}
		r.WithLifecycle++
		last := snaps[len(snaps)-1]
		switch last.State {
		case runtime.StateCompleted:
			r.Completed++
		case runtime.StateActive:
			r.Active++
		}
		if p := last.CurrentPhase(); p != nil {
			r.ByPhase[p.Name]++
		} else {
			r.ByPhase["(not started)"]++
		}
	}
	r.AllCompleted = r.WithLifecycle > 0 && r.Completed == r.WithLifecycle
	return r, nil
}
