// Package plugin provides the adapter framework of §V.B: the scaffolding
// every resource-type plug-in uses to expose Gelee-invocable action
// endpoints and to report status back through callback URIs.
//
// A plug-in consists of (a) a simulated managing application (its own
// package, e.g. gdocsim), (b) action implementations written against
// that application's native API, and (c) registrations that tell the
// action registry which action types the plug-in implements for its
// resource type. The Host in this package adapts action implementations
// to all three invocation transports (REST, SOAP, local) and takes care
// of the callback protocol, so plug-in authors write one ActionFunc per
// action.
package plugin

import (
	"fmt"
	"net/http"
	"strings"
	"sync"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/invoke"
)

// ActionFunc is one action implementation: perform the operation on the
// resource named by the invocation and return a human-readable detail.
// Returning an error reports the reserved failed status.
type ActionFunc func(inv actionlib.Invocation) (detail string, err error)

// Host routes invocations to a plug-in's registered actions and reports
// terminal status through the appropriate callback channel: HTTP POST
// for http(s) callback URIs, the direct Reporter for the embedded
// "callback:/" scheme.
type Host struct {
	mu       sync.RWMutex
	actions  map[string]ActionFunc
	direct   invoke.Reporter
	callback *invoke.CallbackClient
}

// NewHost returns a Host. direct may be nil when the plug-in is only
// reachable over HTTP (remote deployment); it is required to serve
// embedded "callback:/" URIs.
func NewHost(direct invoke.Reporter) *Host {
	return &Host{
		actions:  make(map[string]ActionFunc),
		direct:   direct,
		callback: &invoke.CallbackClient{},
	}
}

// SetCallbackClient overrides the HTTP callback client (tests inject the
// test server's client).
func (h *Host) SetCallbackClient(cc *invoke.CallbackClient) { h.callback = cc }

// Handle registers the implementation for an action key — the last path
// segment of the implementation endpoint (e.g. "chr" for
// ".../actions/chr").
func (h *Host) Handle(key string, fn ActionFunc) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.actions[key] = fn
}

// Keys returns the registered action keys.
func (h *Host) Keys() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, 0, len(h.actions))
	for k := range h.actions {
		out = append(out, k)
	}
	return out
}

func (h *Host) action(key string) (ActionFunc, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	fn, ok := h.actions[key]
	return fn, ok
}

// run executes the action and reports the terminal status. The paper's
// §IV.C semantics: the invocation call itself only acknowledges receipt;
// success/failure travel through the callback URI.
func (h *Host) run(key string, inv actionlib.Invocation) {
	fn, ok := h.action(key)
	var up actionlib.StatusUpdate
	up.InvocationID = inv.ID
	if !ok {
		up.Message = actionlib.StatusFailed
		up.Detail = fmt.Sprintf("plug-in has no action %q", key)
	} else if detail, err := fn(inv); err != nil {
		up.Message = actionlib.StatusFailed
		up.Detail = err.Error()
	} else {
		up.Message = actionlib.StatusCompleted
		up.Detail = detail
	}
	h.report(inv.CallbackURI, up)
}

// report picks the callback channel from the URI scheme.
func (h *Host) report(callbackURI string, up actionlib.StatusUpdate) {
	switch {
	case strings.HasPrefix(callbackURI, "http://"), strings.HasPrefix(callbackURI, "https://"):
		// Failures here are the action's problem, not the lifecycle's;
		// nothing more we can do than drop the update (the execution
		// stays visibly non-terminal in the monitor).
		_ = h.callback.Send(callbackURI, up)
	default:
		if h.direct != nil {
			_ = h.direct.Report(up)
		}
	}
}

// RESTHandler returns an http.Handler serving POST /{key} with a
// WireInvocation JSON body. Mount it under the plug-in's actions path.
func (h *Host) RESTHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		key := strings.Trim(strings.TrimPrefix(r.URL.Path, "/"), "/")
		if key == "" {
			http.Error(w, "missing action key", http.StatusNotFound)
			return
		}
		inv, err := invoke.DecodeInvocation(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Acknowledge receipt, then execute; status goes via callback.
		w.WriteHeader(http.StatusAccepted)
		h.run(key, inv)
	})
}

// SOAPHandler returns an http.Handler accepting the SOAP envelope form
// of an invocation at POST /{key}.
func (h *Host) SOAPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		key := strings.Trim(strings.TrimPrefix(r.URL.Path, "/"), "/")
		inv, err := invoke.DecodeSOAPInvocation(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		h.run(key, inv)
	})
}

// BindLocal registers every action on a LocalInvoker under
// prefix + "/" + key endpoints (e.g. "local://gdoc/chr").
func (h *Host) BindLocal(li *invoke.LocalInvoker, prefix string) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for key, fn := range h.actions {
		key, fn := key, fn
		li.Register(prefix+"/"+key, func(inv actionlib.Invocation, _ invoke.Reporter) (string, error) {
			return fn(inv)
		})
	}
}

// Registration describes one action implementation to register: the
// shared action type and the plug-in's key for it.
type Registration struct {
	Type actionlib.ActionType
	Key  string
}

// RegisterAll registers every (type, implementation) pair for the given
// resource type, with endpoints formed as endpointBase + "/" + key.
func RegisterAll(reg *actionlib.Registry, resourceType, endpointBase string, protocol actionlib.Protocol, regs []Registration) error {
	for _, r := range regs {
		im := actionlib.Implementation{
			TypeURI:      r.Type.URI,
			ResourceType: resourceType,
			Endpoint:     endpointBase + "/" + r.Key,
			Protocol:     protocol,
		}
		if err := reg.Register(r.Type, im); err != nil {
			return fmt.Errorf("plugin: register %s for %s: %w", r.Type.URI, resourceType, err)
		}
	}
	return nil
}

// LastSegment extracts the final path segment of a resource URI — the
// convention the simulated services use as their native object id.
func LastSegment(uri string) string {
	uri = strings.TrimRight(uri, "/")
	if i := strings.LastIndexAny(uri, "/:"); i >= 0 {
		return uri[i+1:]
	}
	return uri
}
