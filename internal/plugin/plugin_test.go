package plugin

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/invoke"
)

type memReporter struct {
	mu  sync.Mutex
	ups []actionlib.StatusUpdate
}

func (m *memReporter) Report(up actionlib.StatusUpdate) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ups = append(m.ups, up)
	return nil
}

func (m *memReporter) last(t *testing.T) actionlib.StatusUpdate {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.ups) == 0 {
		t.Fatal("no status reported")
	}
	return m.ups[len(m.ups)-1]
}

func inv(id, key string) actionlib.Invocation {
	return actionlib.Invocation{
		ID: id, TypeURI: "urn:t", ResourceURI: "app://things/x42",
		CallbackURI: "callback://" + id,
		Params:      map[string]string{"p": "v"},
	}
}

func TestHostRunsActionAndReportsDirect(t *testing.T) {
	rep := &memReporter{}
	h := NewHost(rep)
	h.Handle("ok", func(in actionlib.Invocation) (string, error) { return "did " + in.Params["p"], nil })
	h.Handle("boom", func(in actionlib.Invocation) (string, error) { return "", errors.New("kaput") })

	h.run("ok", inv("inv-1", "ok"))
	up := rep.last(t)
	if up.Message != actionlib.StatusCompleted || up.Detail != "did v" {
		t.Fatalf("update = %+v", up)
	}
	h.run("boom", inv("inv-2", "boom"))
	up = rep.last(t)
	if up.Message != actionlib.StatusFailed || up.Detail != "kaput" {
		t.Fatalf("update = %+v", up)
	}
	h.run("missing", inv("inv-3", "missing"))
	up = rep.last(t)
	if up.Message != actionlib.StatusFailed {
		t.Fatalf("unknown key should fail: %+v", up)
	}
}

func TestHostRESTHandlerWithHTTPCallback(t *testing.T) {
	// Full remote round trip: invocation arrives over HTTP, status goes
	// back to an HTTP callback endpoint.
	var got actionlib.StatusUpdate
	done := make(chan struct{})
	cbSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		up, err := invoke.DecodeStatus(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		got = up
		close(done)
	}))
	defer cbSrv.Close()

	h := NewHost(nil)
	h.SetCallbackClient(&invoke.CallbackClient{Client: cbSrv.Client()})
	h.Handle("chr", func(in actionlib.Invocation) (string, error) { return "mode " + in.Params["mode"], nil })
	actSrv := httptest.NewServer(h.RESTHandler())
	defer actSrv.Close()

	wire := invoke.WireInvocation{
		ID: "inv-9", TypeURI: "urn:chr", ResourceURI: "app://d/1",
		CallbackURI: cbSrv.URL,
		Params:      map[string]string{"mode": "public"},
	}
	body, _ := json.Marshal(wire)
	resp, err := http.Post(actSrv.URL+"/chr", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	<-done
	if got.InvocationID != "inv-9" || got.Message != actionlib.StatusCompleted || got.Detail != "mode public" {
		t.Fatalf("callback = %+v", got)
	}
}

func TestHostRESTHandlerRejectsBadRequests(t *testing.T) {
	h := NewHost(&memReporter{})
	srv := httptest.NewServer(h.RESTHandler())
	defer srv.Close()

	resp, _ := http.Get(srv.URL + "/chr")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, _ = http.Post(srv.URL+"/chr", "application/json", bytes.NewReader([]byte("{")))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, _ = http.Post(srv.URL+"/", "application/json", bytes.NewReader([]byte("{}")))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing key status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHostSOAPHandler(t *testing.T) {
	rep := &memReporter{}
	h := NewHost(rep)
	h.Handle("chr", func(in actionlib.Invocation) (string, error) { return "ok", nil })
	srv := httptest.NewServer(h.SOAPHandler())
	defer srv.Close()

	envelope := `<?xml version="1.0"?>
	<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">
	  <Body>
	    <invoke xmlns="urn:gelee:actions">
	      <invocationId>inv-soap-1</invocationId>
	      <actionType>urn:chr</actionType>
	      <resourceUri>app://d/1</resourceUri>
	      <resourceType>gdoc</resourceType>
	      <callbackUri>callback://inv-soap-1</callbackUri>
	      <params><param id="mode">public</param></params>
	    </invoke>
	  </Body>
	</Envelope>`
	resp, err := http.Post(srv.URL+"/chr", "text/xml", bytes.NewReader([]byte(envelope)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	up := rep.last(t)
	if up.InvocationID != "inv-soap-1" || up.Message != actionlib.StatusCompleted {
		t.Fatalf("update = %+v", up)
	}
}

func TestBindLocal(t *testing.T) {
	rep := &memReporter{}
	h := NewHost(rep)
	h.Handle("pdf", func(in actionlib.Invocation) (string, error) { return "exported", nil })
	li := invoke.NewLocalInvoker(rep)
	h.BindLocal(li, "local://gdoc/actions")

	in := inv("inv-local-1", "pdf")
	in.Endpoint = "local://gdoc/actions/pdf"
	in.Protocol = actionlib.ProtocolLocal
	if err := li.Invoke(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	up := rep.last(t)
	if up.Message != actionlib.StatusCompleted || up.Detail != "exported" {
		t.Fatalf("update = %+v", up)
	}
}

func TestRegisterAll(t *testing.T) {
	reg := actionlib.NewRegistry()
	regs := []Registration{
		{Type: ChangeAccessRightsType(), Key: "chr"},
		{Type: GeneratePDFType(), Key: "pdf"},
	}
	if err := RegisterAll(reg, "gdoc", "http://plug/actions", actionlib.ProtocolREST, regs); err != nil {
		t.Fatal(err)
	}
	im, err := reg.Resolve(ActionChangeAccessRights, "gdoc")
	if err != nil {
		t.Fatal(err)
	}
	if im.Endpoint != "http://plug/actions/chr" || im.Protocol != actionlib.ProtocolREST {
		t.Fatalf("impl = %+v", im)
	}
	// Second resource type registering the same shared types must work.
	if err := RegisterAll(reg, "mediawiki", "http://wiki/actions", actionlib.ProtocolREST, regs); err != nil {
		t.Fatal(err)
	}
	if got := len(reg.Implementations(ActionChangeAccessRights)); got != 2 {
		t.Fatalf("implementations = %d", got)
	}
}

func TestLastSegment(t *testing.T) {
	cases := map[string]string{
		"http://docs.example.com/docs/d42":  "d42",
		"http://docs.example.com/docs/d42/": "d42",
		"svn://host/repo":                   "repo",
		"urn:gelee:thing":                   "thing",
		"plain":                             "plain",
	}
	for in, want := range cases {
		if got := LastSegment(in); got != want {
			t.Errorf("LastSegment(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStdActionTypesValid(t *testing.T) {
	types := []actionlib.ActionType{
		ChangeAccessRightsType(), NotifyReviewersType(), GeneratePDFType(),
		PostOnWebSiteType(), SubscribeType(), TagReleaseType(),
	}
	uris := make([]string, 0, len(types))
	for _, at := range types {
		if err := at.Validate(); err != nil {
			t.Errorf("%s: %v", at.URI, err)
		}
		uris = append(uris, at.URI)
	}
	sort.Strings(uris)
	for i := 1; i < len(uris); i++ {
		if uris[i] == uris[i-1] {
			t.Errorf("duplicate action type URI %q", uris[i])
		}
	}
}

func TestHostKeys(t *testing.T) {
	h := NewHost(nil)
	h.Handle("a", func(actionlib.Invocation) (string, error) { return "", nil })
	h.Handle("b", func(actionlib.Invocation) (string, error) { return "", nil })
	keys := h.Keys()
	sort.Strings(keys)
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
}
