package svnsim

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/vclock"
)

func env(t *testing.T) (*Adapter, *Service) {
	t.Helper()
	svc := NewService(vclock.NewFake(time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC)))
	return NewAdapter(svc, nil), svc
}

func inv(uri string, params map[string]string) actionlib.Invocation {
	return actionlib.Invocation{ID: "inv-1", ResourceURI: uri, ResourceType: ResourceType,
		CallbackURI: "callback://inv-1", Params: params}
}

func TestRepoBasics(t *testing.T) {
	_, svc := env(t)
	r, err := svc.CreateRepo("liquidpub")
	if err != nil {
		t.Fatal(err)
	}
	if r.Authz != "private" {
		t.Fatalf("repo = %+v", r)
	}
	if _, err := svc.CreateRepo("liquidpub"); err == nil {
		t.Fatal("duplicate repo accepted")
	}
	if _, err := svc.CreateRepo("  "); err == nil {
		t.Fatal("blank name accepted")
	}

	c1, err := svc.Commit("liquidpub", "alice", "import deliverable skeleton", "D1.1/main.tex")
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := svc.Commit("liquidpub", "bob", "add related work", "D1.1/related.tex")
	if c1.Rev != 1 || c2.Rev != 2 {
		t.Fatalf("revs = %d, %d", c1.Rev, c2.Rev)
	}
	if _, err := svc.Commit("ghost", "alice", ""); err == nil {
		t.Fatal("commit to missing repo accepted")
	}

	tag, err := svc.TagRev("liquidpub", "v1.0")
	if err != nil {
		t.Fatal(err)
	}
	if tag.Rev != 2 {
		t.Fatalf("tag = %+v", tag)
	}
	if _, err := svc.TagRev("liquidpub", "v1.0"); err == nil {
		t.Fatal("duplicate tag accepted")
	}
	if _, err := svc.TagRev("liquidpub", " "); err == nil {
		t.Fatal("blank tag accepted")
	}
	if got := svc.Names(); len(got) != 1 || got[0] != "liquidpub" {
		t.Fatalf("names = %v", got)
	}
}

func TestAdapterActions(t *testing.T) {
	a, svc := env(t)
	svc.CreateRepo("liquidpub")
	svc.Commit("liquidpub", "alice", "initial import")

	detail, err := a.changeAccessRights(inv("svn://host/liquidpub", map[string]string{"mode": "consortium"}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detail, "consortium") {
		t.Fatalf("detail = %q", detail)
	}
	r, _ := svc.Repo("liquidpub")
	if r.Authz != "consortium" {
		t.Fatalf("authz = %q", r.Authz)
	}
	if _, err := a.changeAccessRights(inv("svn://host/liquidpub", nil)); err == nil {
		t.Fatal("missing mode accepted")
	}

	detail, err = a.generatePDF(inv("svn://host/liquidpub", nil))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detail, "r1") {
		t.Fatalf("detail = %q", detail)
	}

	detail, err = a.tagRelease(inv("svn://host/liquidpub", map[string]string{"tag": "D1.1-final"}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detail, "D1.1-final") {
		t.Fatalf("detail = %q", detail)
	}
	if _, err := a.tagRelease(inv("svn://host/liquidpub", nil)); err == nil {
		t.Fatal("missing tag accepted")
	}
}

func TestPDFRequiresCommits(t *testing.T) {
	a, svc := env(t)
	svc.CreateRepo("empty")
	if _, err := a.generatePDF(inv("svn://host/empty", nil)); err == nil {
		t.Fatal("PDF from empty repo accepted")
	}
}

func TestRenderAndCheck(t *testing.T) {
	a, svc := env(t)
	svc.CreateRepo("liquidpub")
	svc.Commit("liquidpub", "alice", "x")
	rend, err := a.Render(resource.Ref{URI: "svn://host/liquidpub", Type: ResourceType})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rend.Status, "r1") || !strings.Contains(rend.Summary, "repository") {
		t.Fatalf("rendering = %+v", rend)
	}
	if err := a.Check(resource.Ref{URI: "svn://host/ghost", Type: ResourceType}); err == nil {
		t.Fatal("missing repo passed Check")
	}
	if a.Type() != "svn" {
		t.Fatalf("Type = %q", a.Type())
	}
}

func TestPartialActionCoverage(t *testing.T) {
	// SVN deliberately implements only 3 of the standard types: the
	// Fig. 3 runtime browse must show fewer actions for svn resources.
	a, _ := env(t)
	reg := actionlib.NewRegistry()
	if err := a.RegisterActions(reg, "local://svn/actions", actionlib.ProtocolLocal); err != nil {
		t.Fatal(err)
	}
	types := reg.TypesFor(ResourceType)
	if len(types) != 3 {
		t.Fatalf("TypesFor(svn) = %d, want 3", len(types))
	}
	for _, at := range types {
		if at.URI == "http://www.liquidpub.org/a/notify" || at.URI == "http://www.liquidpub.org/a/post" {
			t.Fatalf("svn should not implement %s", at.URI)
		}
	}
}

func TestNativeAPI(t *testing.T) {
	a, svc := env(t)
	svc.CreateRepo("liquidpub")
	svc.Commit("liquidpub", "alice", "x")
	srv := httptest.NewServer(a.Mux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/repos")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	json.NewDecoder(resp.Body).Decode(&names)
	resp.Body.Close()
	if len(names) != 1 {
		t.Fatalf("names = %v", names)
	}

	resp, _ = http.Get(srv.URL + "/repos/liquidpub")
	var r Repo
	json.NewDecoder(resp.Body).Decode(&r)
	resp.Body.Close()
	if r.Name != "liquidpub" || len(r.Commits) != 1 {
		t.Fatalf("repo = %+v", r)
	}

	resp, _ = http.Get(srv.URL + "/repos/ghost")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing repo status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}
