// Package svnsim simulates a Subversion-style version control
// repository — the "latex over Subversion" alternative of §II.B and the
// CVS/SVN resource family of §IV.C. Repositories hold commits, tags and
// an authorization mode; the adapter maps the standard action types onto
// those native concepts, plus the versioning-specific "Tag Release"
// action type that only this resource type implements (demonstrating
// per-type action availability in the Fig. 3 runtime browse).
package svnsim

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/invoke"
	"github.com/liquidpub/gelee/internal/plugin"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/vclock"
)

// ResourceType is the lifecycle resource type string for repositories.
const ResourceType = "svn"

// Commit is one revision.
type Commit struct {
	Rev     int       `json:"rev"`
	Author  string    `json:"author"`
	Time    time.Time `json:"time"`
	Message string    `json:"message"`
	Paths   []string  `json:"paths,omitempty"`
}

// Tag marks a revision.
type Tag struct {
	Name string    `json:"name"`
	Rev  int       `json:"rev"`
	Time time.Time `json:"time"`
}

// Repo is one repository.
type Repo struct {
	Name    string   `json:"name"`
	Commits []Commit `json:"commits"`
	Tags    []Tag    `json:"tags,omitempty"`
	Authz   string   `json:"authz"` // access mode string, as set by chr
}

func (r *Repo) clone() Repo {
	c := *r
	c.Commits = append([]Commit(nil), r.Commits...)
	c.Tags = append([]Tag(nil), r.Tags...)
	return c
}

// Service hosts repositories. Safe for concurrent use.
type Service struct {
	mu    sync.RWMutex
	repos map[string]*Repo
	clock vclock.Clock
}

// NewService returns an empty service.
func NewService(clock vclock.Clock) *Service {
	if clock == nil {
		clock = vclock.System
	}
	return &Service{repos: make(map[string]*Repo), clock: clock}
}

// CreateRepo adds an empty repository.
func (s *Service) CreateRepo(name string) (Repo, error) {
	if strings.TrimSpace(name) == "" {
		return Repo{}, fmt.Errorf("svnsim: empty repo name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.repos[name]; ok {
		return Repo{}, fmt.Errorf("svnsim: repo %q exists", name)
	}
	r := &Repo{Name: name, Authz: "private"}
	s.repos[name] = r
	return r.clone(), nil
}

// Commitf appends a commit.
func (s *Service) Commit(name, author, message string, paths ...string) (Commit, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.repos[name]
	if !ok {
		return Commit{}, fmt.Errorf("svnsim: no repo %q", name)
	}
	c := Commit{Rev: len(r.Commits) + 1, Author: author, Time: s.clock.Now(), Message: message, Paths: paths}
	r.Commits = append(r.Commits, c)
	return c, nil
}

// TagRev tags the head revision.
func (s *Service) TagRev(name, tag string) (Tag, error) {
	if strings.TrimSpace(tag) == "" {
		return Tag{}, fmt.Errorf("svnsim: empty tag")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.repos[name]
	if !ok {
		return Tag{}, fmt.Errorf("svnsim: no repo %q", name)
	}
	for _, t := range r.Tags {
		if t.Name == tag {
			return Tag{}, fmt.Errorf("svnsim: tag %q exists", tag)
		}
	}
	t := Tag{Name: tag, Rev: len(r.Commits), Time: s.clock.Now()}
	r.Tags = append(r.Tags, t)
	return t, nil
}

// SetAuthz records the repository's access mode.
func (s *Service) SetAuthz(name, mode string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.repos[name]
	if !ok {
		return fmt.Errorf("svnsim: no repo %q", name)
	}
	r.Authz = mode
	return nil
}

// Repo returns a copy of the repository.
func (s *Service) Repo(name string) (Repo, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.repos[name]
	if !ok {
		return Repo{}, false
	}
	return r.clone(), true
}

// Names returns every repository name, sorted.
func (s *Service) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.repos))
	for n := range s.repos {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Adapter is the SVN plug-in. It implements change-access-rights,
// generate-PDF (export of the head revision's docs) and the
// SVN-specific tag-release action, but deliberately NOT notify/post —
// exercising partial action coverage per resource type.
type Adapter struct {
	svc  *Service
	host *plugin.Host
}

// NewAdapter builds the adapter.
func NewAdapter(svc *Service, direct invoke.Reporter) *Adapter {
	a := &Adapter{svc: svc, host: plugin.NewHost(direct)}
	a.host.Handle("chr", a.changeAccessRights)
	a.host.Handle("pdf", a.generatePDF)
	a.host.Handle("tag", a.tagRelease)
	return a
}

// Host exposes the action host.
func (a *Adapter) Host() *plugin.Host { return a.host }

// Registrations lists the implemented action types.
func (a *Adapter) Registrations() []plugin.Registration {
	return []plugin.Registration{
		{Type: plugin.ChangeAccessRightsType(), Key: "chr"},
		{Type: plugin.GeneratePDFType(), Key: "pdf"},
		{Type: plugin.TagReleaseType(), Key: "tag"},
	}
}

// RegisterActions registers the implementations under endpointBase.
func (a *Adapter) RegisterActions(reg *actionlib.Registry, endpointBase string, protocol actionlib.Protocol) error {
	return plugin.RegisterAll(reg, ResourceType, endpointBase, protocol, a.Registrations())
}

// BindLocal attaches the implementations to a local invoker.
func (a *Adapter) BindLocal(li *invoke.LocalInvoker, endpointBase string) {
	a.host.BindLocal(li, endpointBase)
}

// Type implements resource.Plugin.
func (a *Adapter) Type() string { return ResourceType }

// Render implements resource.Plugin.
func (a *Adapter) Render(ref resource.Ref) (resource.Rendering, error) {
	name := plugin.LastSegment(ref.URI)
	r, ok := a.svc.Repo(name)
	if !ok {
		return resource.Rendering{}, fmt.Errorf("svnsim: no repo %q", name)
	}
	return resource.Rendering{
		Title:   "svn://" + r.Name,
		Summary: fmt.Sprintf("repository, %d commit(s), %d tag(s), authz %s", len(r.Commits), len(r.Tags), r.Authz),
		Link:    ref.URI,
		Status:  fmt.Sprintf("HEAD r%d", len(r.Commits)),
	}, nil
}

// Check implements resource.Plugin.
func (a *Adapter) Check(ref resource.Ref) error {
	if _, ok := a.svc.Repo(plugin.LastSegment(ref.URI)); !ok {
		return fmt.Errorf("svnsim: no repo %q", plugin.LastSegment(ref.URI))
	}
	return nil
}

func (a *Adapter) repoName(inv actionlib.Invocation) string {
	return plugin.LastSegment(inv.ResourceURI)
}

func (a *Adapter) changeAccessRights(inv actionlib.Invocation) (string, error) {
	mode := inv.Params["mode"]
	if mode == "" {
		return "", fmt.Errorf("missing required parameter mode")
	}
	if err := a.svc.SetAuthz(a.repoName(inv), mode); err != nil {
		return "", err
	}
	return "authz set to " + mode, nil
}

func (a *Adapter) generatePDF(inv actionlib.Invocation) (string, error) {
	r, ok := a.svc.Repo(a.repoName(inv))
	if !ok {
		return "", fmt.Errorf("svnsim: no repo %q", a.repoName(inv))
	}
	if len(r.Commits) == 0 {
		return "", fmt.Errorf("svnsim: repo %q has no commits to export", r.Name)
	}
	return fmt.Sprintf("PDF built from r%d", len(r.Commits)), nil
}

func (a *Adapter) tagRelease(inv actionlib.Invocation) (string, error) {
	tag := inv.Params["tag"]
	if tag == "" {
		return "", fmt.Errorf("missing required parameter tag")
	}
	t, err := a.svc.TagRev(a.repoName(inv), tag)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("tag %s at r%d", t.Name, t.Rev), nil
}

// Mux serves the native API plus the Gelee action endpoints.
//
//	GET  /repos           list names
//	GET  /repos/{name}    fetch repo
//	POST /actions/{key}   Gelee invocation endpoint
func (a *Adapter) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/actions/", http.StripPrefix("/actions", a.host.RESTHandler()))
	mux.HandleFunc("/repos", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(a.svc.Names())
	})
	mux.HandleFunc("/repos/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/repos/")
		repo, ok := a.svc.Repo(name)
		if !ok {
			http.Error(w, "no such repo", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(repo)
	})
	return mux
}
