package notifysim

import (
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/vclock"
)

func TestSendAndInbox(t *testing.T) {
	clock := vclock.NewFake(time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC))
	s := NewService(clock)
	if err := s.Send("alice", "Review D1.1", "please review by Friday"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)
	if err := s.Send("alice", "Reminder", "ping"); err != nil {
		t.Fatal(err)
	}
	if err := s.Send("bob", "Review D1.1", "please review"); err != nil {
		t.Fatal(err)
	}

	inbox := s.Inbox("alice")
	if len(inbox) != 2 || inbox[0].Subject != "Review D1.1" || inbox[1].Subject != "Reminder" {
		t.Fatalf("inbox = %+v", inbox)
	}
	if !inbox[1].Time.After(inbox[0].Time) {
		t.Fatal("delivery times not ordered")
	}
	if got := s.Inbox("nobody"); len(got) != 0 {
		t.Fatalf("empty inbox = %+v", got)
	}
	if got := s.Recipients(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("recipients = %v", got)
	}
	if s.Sent() != 3 {
		t.Fatalf("sent = %d", s.Sent())
	}
}

func TestSendValidation(t *testing.T) {
	s := NewService(nil)
	if err := s.Send("  ", "x", "y"); err == nil {
		t.Fatal("blank recipient accepted")
	}
}

func TestInboxReturnsCopy(t *testing.T) {
	s := NewService(nil)
	s.Send("alice", "a", "b")
	in := s.Inbox("alice")
	in[0].Subject = "tampered"
	if s.Inbox("alice")[0].Subject == "tampered" {
		t.Fatal("Inbox returned aliased storage")
	}
}
