// Package notifysim simulates the e-mail / notification channel the
// paper's lifecycles use ("today these types of lifecycles ... are
// mainly executed by hand typically by sending emails", §I): a message
// service with per-recipient inboxes that adapters use for "Notify
// reviewers"-style actions, and that tests inspect to verify the
// notification side effects actually happened.
package notifysim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/liquidpub/gelee/internal/vclock"
)

// Message is one delivered notification.
type Message struct {
	To      string    `json:"to"`
	Subject string    `json:"subject"`
	Body    string    `json:"body"`
	Time    time.Time `json:"time"`
}

// Service stores inboxes. Safe for concurrent use.
type Service struct {
	mu      sync.RWMutex
	inboxes map[string][]Message
	clock   vclock.Clock
	sent    int
}

// NewService returns an empty notification service.
func NewService(clock vclock.Clock) *Service {
	if clock == nil {
		clock = vclock.System
	}
	return &Service{inboxes: make(map[string][]Message), clock: clock}
}

// Send delivers a message to the recipient's inbox.
func (s *Service) Send(to, subject, body string) error {
	to = strings.TrimSpace(to)
	if to == "" {
		return fmt.Errorf("notifysim: empty recipient")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inboxes[to] = append(s.inboxes[to], Message{To: to, Subject: subject, Body: body, Time: s.clock.Now()})
	s.sent++
	return nil
}

// Inbox returns a copy of the recipient's messages in delivery order.
func (s *Service) Inbox(recipient string) []Message {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Message(nil), s.inboxes[recipient]...)
}

// Recipients returns everyone who has received at least one message,
// sorted.
func (s *Service) Recipients() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.inboxes))
	for r := range s.inboxes {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Sent returns the total number of delivered messages.
func (s *Service) Sent() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sent
}
