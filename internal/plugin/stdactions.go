package plugin

import (
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
)

// Standard action type URIs — the shared vocabulary of Fig. 1. Each
// plug-in maps the types it supports to its own implementation; the
// same lifecycle definition thereby runs against any resource type
// implementing these types (§IV.C: "it is also possible to define the
// same lifecycle and the same actions on resources at different types").
const (
	ActionChangeAccessRights = "http://www.liquidpub.org/a/chr"
	ActionNotifyReviewers    = "http://www.liquidpub.org/a/notify"
	ActionGeneratePDF        = "http://www.liquidpub.org/a/pdf"
	ActionPostOnWebSite      = "http://www.liquidpub.org/a/post"
	ActionSubscribe          = "http://www.liquidpub.org/a/subscribe"
	ActionTagRelease         = "http://www.liquidpub.org/a/tag"
)

func stdVersion() core.VersionInfo {
	return core.VersionInfo{Number: "1.0", CreatedBy: "lpAdmin",
		Created: time.Date(2008, 7, 8, 0, 0, 0, 0, time.UTC)}
}

// ChangeAccessRightsType is the Table II example: set who may see or
// edit the resource. The mode vocabulary follows the Fig. 1 quality
// plan: private, reviewers-only, consortium, agency, public.
func ChangeAccessRightsType() actionlib.ActionType {
	return actionlib.ActionType{
		URI: ActionChangeAccessRights, Name: "Change Access Rights",
		Version: stdVersion(),
		Params: []core.Param{
			{ID: "mode", BindingTime: core.BindAny, Required: true},
			{ID: "note", BindingTime: core.BindCall},
		},
		Metadata: map[string]string{"category": "access"},
	}
}

// NotifyReviewersType notifies a comma-separated reviewer list and
// grants them review access where the managing application supports it.
func NotifyReviewersType() actionlib.ActionType {
	return actionlib.ActionType{
		URI: ActionNotifyReviewers, Name: "Notify Reviewers",
		Version: stdVersion(),
		Params: []core.Param{
			{ID: "reviewers", BindingTime: core.BindAny, Required: true},
			{ID: "subject", Value: "Please review", BindingTime: core.BindAny},
		},
		Metadata: map[string]string{"category": "collaboration"},
	}
}

// GeneratePDFType exports the resource in PDF form.
func GeneratePDFType() actionlib.ActionType {
	return actionlib.ActionType{
		URI: ActionGeneratePDF, Name: "Generate PDF",
		Version:  stdVersion(),
		Metadata: map[string]string{"category": "export"},
	}
}

// PostOnWebSiteType publishes a link to the resource on a project web
// site.
func PostOnWebSiteType() actionlib.ActionType {
	return actionlib.ActionType{
		URI: ActionPostOnWebSite, Name: "Post On Web Site",
		Version: stdVersion(),
		Params: []core.Param{
			{ID: "site", BindingTime: core.BindAny, Required: true},
			{ID: "title", BindingTime: core.BindAny},
		},
		Metadata: map[string]string{"category": "publication"},
	}
}

// SubscribeType subscribes a principal to change notifications
// (the Google-Docs "subscribe to changes" operation of §IV.C).
func SubscribeType() actionlib.ActionType {
	return actionlib.ActionType{
		URI: ActionSubscribe, Name: "Subscribe To Changes",
		Version: stdVersion(),
		Params: []core.Param{
			{ID: "subscriber", BindingTime: core.BindAny, Required: true},
		},
		Metadata: map[string]string{"category": "collaboration"},
	}
}

// TagReleaseType marks the current revision of a version-controlled
// resource with a release tag.
func TagReleaseType() actionlib.ActionType {
	return actionlib.ActionType{
		URI: ActionTagRelease, Name: "Tag Release",
		Version: stdVersion(),
		Params: []core.Param{
			{ID: "tag", BindingTime: core.BindAny, Required: true},
		},
		Metadata: map[string]string{"category": "versioning"},
	}
}
