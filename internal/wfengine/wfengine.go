// Package wfengine is a deliberately conventional, *prescriptive*
// workflow engine: the §III.A comparator the paper argues against. It
// exists so the repository can measure — not merely assert — the cost of
// rigidity that motivates Gelee's design:
//
//   - Transitions are enforced. A move not declared in the deployed
//     process definition is an error; there are no deviations.
//   - The engine owns the token: instances start on the initial step
//     automatically, and only declared transitions advance them.
//   - Model changes require redeployment and *instance migration*: every
//     running instance's execution trace is replayed against the new
//     definition (the dynamic-change approach of the adaptive-workflow
//     literature the paper cites, [1][2]); instances whose trace is not
//     compliant are aborted and must restart.
//
// The ablation benchmarks (E7) run the same management scenarios through
// this engine and through the Gelee runtime and report the difference.
package wfengine

import (
	"errors"
	"fmt"
	"sync"
)

// Definition is a rigid process definition: steps and the only allowed
// transitions between them.
type Definition struct {
	ID      string
	Version int
	Initial string
	Final   map[string]bool
	Next    map[string][]string // step -> allowed successors
}

// Validate checks the definition is executable.
func (d *Definition) Validate() error {
	if d.ID == "" {
		return errors.New("wfengine: definition has no id")
	}
	if d.Initial == "" {
		return fmt.Errorf("wfengine: definition %s has no initial step", d.ID)
	}
	steps := d.steps()
	if !steps[d.Initial] {
		return fmt.Errorf("wfengine: initial step %q not declared", d.Initial)
	}
	for from, tos := range d.Next {
		if !steps[from] {
			return fmt.Errorf("wfengine: transition from undeclared step %q", from)
		}
		for _, to := range tos {
			if !steps[to] {
				return fmt.Errorf("wfengine: transition to undeclared step %q", to)
			}
		}
	}
	return nil
}

func (d *Definition) steps() map[string]bool {
	out := map[string]bool{d.Initial: true}
	for from, tos := range d.Next {
		out[from] = true
		for _, to := range tos {
			out[to] = true
		}
	}
	for f := range d.Final {
		out[f] = true
	}
	return out
}

func (d *Definition) allows(from, to string) bool {
	for _, t := range d.Next[from] {
		if t == to {
			return true
		}
	}
	return false
}

func (d *Definition) clone() *Definition {
	c := &Definition{ID: d.ID, Version: d.Version, Initial: d.Initial,
		Final: make(map[string]bool, len(d.Final)),
		Next:  make(map[string][]string, len(d.Next))}
	for k, v := range d.Final {
		c.Final[k] = v
	}
	for k, v := range d.Next {
		c.Next[k] = append([]string(nil), v...)
	}
	return c
}

// Instance is one running case. Trace records every step entered, in
// order — the engine's migration currency.
type Instance struct {
	ID      string
	DefID   string
	Version int
	Current string
	Trace   []string
	Done    bool
	Aborted bool
}

// Errors returned by the engine.
var (
	ErrNoDefinition = errors.New("wfengine: no such definition")
	ErrNoInstance   = errors.New("wfengine: no such instance")
	ErrNotAllowed   = errors.New("wfengine: transition not in the process definition")
	ErrFinished     = errors.New("wfengine: instance already finished")
	ErrNonCompliant = errors.New("wfengine: instance trace not compliant with new definition")
)

// Engine is the prescriptive engine.
type Engine struct {
	mu        sync.Mutex
	defs      map[string]*Definition
	instances map[string]*Instance
	nextInst  int
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{defs: make(map[string]*Definition), instances: make(map[string]*Instance)}
}

// Deploy installs (or re-versions) a definition and returns its version.
func (e *Engine) Deploy(d Definition) (int, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if old, ok := e.defs[d.ID]; ok {
		d.Version = old.Version + 1
	} else {
		d.Version = 1
	}
	e.defs[d.ID] = d.clone()
	return d.Version, nil
}

// Start creates an instance; the ENGINE places the token on the initial
// step (contrast Gelee, where a human makes the first move).
func (e *Engine) Start(defID string) (*Instance, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.defs[defID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoDefinition, defID)
	}
	e.nextInst++
	in := &Instance{
		ID:      fmt.Sprintf("wf-%06d", e.nextInst),
		DefID:   defID,
		Version: d.Version,
		Current: d.Initial,
		Trace:   []string{d.Initial},
		Done:    d.Final[d.Initial],
	}
	e.instances[in.ID] = in
	return snapshot(in), nil
}

// Complete moves the instance to the next step — allowed only along a
// declared transition. This is the engine-enforced rigidity Gelee's
// descriptive model removes.
func (e *Engine) Complete(instID, to string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	in, ok := e.instances[instID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoInstance, instID)
	}
	if in.Done || in.Aborted {
		return fmt.Errorf("%w: %s", ErrFinished, instID)
	}
	d := e.defs[in.DefID]
	if !d.allows(in.Current, to) {
		return fmt.Errorf("%w: %s -> %s", ErrNotAllowed, in.Current, to)
	}
	in.Current = to
	in.Trace = append(in.Trace, to)
	if d.Final[to] {
		in.Done = true
	}
	return nil
}

// Instance returns a copy of the instance.
func (e *Engine) Instance(id string) (*Instance, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	in, ok := e.instances[id]
	if !ok {
		return nil, false
	}
	return snapshot(in), true
}

// Instances returns copies of every instance of the definition.
func (e *Engine) Instances(defID string) []*Instance {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []*Instance
	for _, in := range e.instances {
		if in.DefID == defID {
			out = append(out, snapshot(in))
		}
	}
	return out
}

func snapshot(in *Instance) *Instance {
	c := *in
	c.Trace = append([]string(nil), in.Trace...)
	return &c
}

// MigrationReport summarizes a redeployment.
type MigrationReport struct {
	NewVersion int
	Migrated   int
	Aborted    int
	Replayed   int // total trace steps replayed — the migration cost driver
}

// Redeploy installs a new version of the definition and migrates every
// running instance by trace replay: an instance is compliant iff its
// entire trace is executable in the new definition, step by step. Non-
// compliant instances are aborted — they must restart from the
// beginning, losing their progress (the pathology the paper's
// light-coupling avoids: in Gelee the owner just picks a landing phase).
func (e *Engine) Redeploy(d Definition) (MigrationReport, error) {
	if err := d.Validate(); err != nil {
		return MigrationReport{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	old, ok := e.defs[d.ID]
	if !ok {
		return MigrationReport{}, fmt.Errorf("%w: %s", ErrNoDefinition, d.ID)
	}
	d.Version = old.Version + 1
	nd := d.clone()
	e.defs[d.ID] = nd

	rep := MigrationReport{NewVersion: nd.Version}
	for _, in := range e.instances {
		if in.DefID != d.ID || in.Done || in.Aborted {
			continue
		}
		if replayable(nd, in.Trace, &rep.Replayed) {
			in.Version = nd.Version
			in.Done = nd.Final[in.Current]
			rep.Migrated++
		} else {
			in.Aborted = true
			rep.Aborted++
		}
	}
	return rep, nil
}

// replayable checks the trace executes in d from its initial step.
func replayable(d *Definition, trace []string, counter *int) bool {
	if len(trace) == 0 {
		return false
	}
	*counter++
	if trace[0] != d.Initial {
		return false
	}
	for i := 1; i < len(trace); i++ {
		*counter++
		if !d.allows(trace[i-1], trace[i]) {
			return false
		}
	}
	return true
}
