package wfengine

import (
	"errors"
	"testing"
)

// qualityPlanDef is the Fig. 1 lifecycle as a rigid process definition.
func qualityPlanDef() Definition {
	return Definition{
		ID:      "eu-deliverable",
		Initial: "elaboration",
		Final:   map[string]bool{"accepted": true, "rejected": true},
		Next: map[string][]string{
			"elaboration":    {"internalreview"},
			"internalreview": {"elaboration", "finalassembly"},
			"finalassembly":  {"eureview"},
			"eureview":       {"publication", "finalassembly", "rejected"},
			"publication":    {"accepted"},
		},
	}
}

func TestDeployAndStart(t *testing.T) {
	e := New()
	v, err := e.Deploy(qualityPlanDef())
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("version = %d", v)
	}
	in, err := e.Start("eu-deliverable")
	if err != nil {
		t.Fatal(err)
	}
	// The ENGINE placed the token; no human involved.
	if in.Current != "elaboration" || len(in.Trace) != 1 {
		t.Fatalf("instance = %+v", in)
	}
	if _, err := e.Start("ghost"); !errors.Is(err, ErrNoDefinition) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeployValidation(t *testing.T) {
	e := New()
	if _, err := e.Deploy(Definition{}); err == nil {
		t.Fatal("no-id definition deployed")
	}
	if _, err := e.Deploy(Definition{ID: "x"}); err == nil {
		t.Fatal("no-initial definition deployed")
	}
	minimal := Definition{ID: "x", Initial: "a", Final: map[string]bool{"a": true}}
	if _, err := e.Deploy(minimal); err != nil {
		t.Fatalf("minimal single-step definition rejected: %v", err)
	}
}

func TestCompleteEnforcesTransitions(t *testing.T) {
	e := New()
	e.Deploy(qualityPlanDef())
	in, _ := e.Start("eu-deliverable")

	if err := e.Complete(in.ID, "internalreview"); err != nil {
		t.Fatal(err)
	}
	// The rigidity under test: skipping ahead is an ERROR here, while in
	// Gelee it is a recorded deviation.
	err := e.Complete(in.ID, "publication")
	if !errors.Is(err, ErrNotAllowed) {
		t.Fatalf("deviation err = %v, want ErrNotAllowed", err)
	}
	// Iteration loop is declared, so it works.
	if err := e.Complete(in.ID, "elaboration"); err != nil {
		t.Fatal(err)
	}
	if err := e.Complete("wf-999999", "x"); !errors.Is(err, ErrNoInstance) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompleteToFinalFinishes(t *testing.T) {
	e := New()
	e.Deploy(qualityPlanDef())
	in, _ := e.Start("eu-deliverable")
	for _, step := range []string{"internalreview", "finalassembly", "eureview", "publication", "accepted"} {
		if err := e.Complete(in.ID, step); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := e.Instance(in.ID)
	if !got.Done {
		t.Fatal("instance not done after final step")
	}
	if err := e.Complete(in.ID, "elaboration"); !errors.Is(err, ErrFinished) {
		t.Fatalf("reopening err = %v, want ErrFinished (no reopening in a prescriptive engine)", err)
	}
}

func TestRedeployMigratesCompliantInstances(t *testing.T) {
	e := New()
	e.Deploy(qualityPlanDef())
	a, _ := e.Start("eu-deliverable") // stays in elaboration
	b, _ := e.Start("eu-deliverable")
	e.Complete(b.ID, "internalreview") // trace includes internalreview

	// New version drops the internal review step entirely.
	nd := Definition{
		ID:      "eu-deliverable",
		Initial: "elaboration",
		Final:   map[string]bool{"accepted": true, "rejected": true},
		Next: map[string][]string{
			"elaboration":   {"finalassembly"},
			"finalassembly": {"eureview"},
			"eureview":      {"publication", "rejected"},
			"publication":   {"accepted"},
		},
	}
	rep, err := e.Redeploy(nd)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NewVersion != 2 {
		t.Fatalf("version = %d", rep.NewVersion)
	}
	// a's trace [elaboration] replays; b's trace includes the removed
	// step and is aborted — the migration pathology Gelee avoids.
	if rep.Migrated != 1 || rep.Aborted != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Replayed == 0 {
		t.Fatal("replay counter not incremented")
	}
	ga, _ := e.Instance(a.ID)
	if ga.Version != 2 || ga.Aborted {
		t.Fatalf("a = %+v", ga)
	}
	gb, _ := e.Instance(b.ID)
	if !gb.Aborted {
		t.Fatalf("b = %+v", gb)
	}
	// Aborted instances are dead.
	if err := e.Complete(b.ID, "finalassembly"); !errors.Is(err, ErrFinished) {
		t.Fatalf("err = %v", err)
	}
}

func TestRedeployUnknownDefinition(t *testing.T) {
	e := New()
	if _, err := e.Redeploy(qualityPlanDef()); !errors.Is(err, ErrNoDefinition) {
		t.Fatalf("err = %v", err)
	}
}

func TestInstancesByDefinition(t *testing.T) {
	e := New()
	e.Deploy(qualityPlanDef())
	e.Start("eu-deliverable")
	e.Start("eu-deliverable")
	if got := len(e.Instances("eu-deliverable")); got != 2 {
		t.Fatalf("instances = %d", got)
	}
	if got := len(e.Instances("other")); got != 0 {
		t.Fatalf("instances = %d", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	e := New()
	e.Deploy(qualityPlanDef())
	in, _ := e.Start("eu-deliverable")
	in.Trace[0] = "tampered"
	fresh, _ := e.Instance(in.ID)
	if fresh.Trace[0] == "tampered" {
		t.Fatal("Start returned aliased trace")
	}
}

func TestDeployBumpsVersion(t *testing.T) {
	e := New()
	v1, _ := e.Deploy(qualityPlanDef())
	v2, _ := e.Deploy(qualityPlanDef())
	if v1 != 1 || v2 != 2 {
		t.Fatalf("versions = %d, %d", v1, v2)
	}
}
