package monitor

import (
	"context"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/core"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/runtime"
	"github.com/liquidpub/gelee/internal/scenario"
	"github.com/liquidpub/gelee/internal/vclock"
)

// env wires a runtime with the scenario quality plan and a monitor over
// it. Actions resolve for nothing (no registry entries) — monitoring is
// about phases, and failed actions are part of what the cockpit shows.
type env struct {
	rt    *runtime.Runtime
	mon   *Monitor
	clock *vclock.Fake
}

func newEnv(t *testing.T) *env {
	t.Helper()
	clock := vclock.NewFake(time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC))
	rt, err := runtime.New(runtime.Config{
		Registry:    actionlib.NewRegistry(),
		Invoker:     runtime.InvokerFunc(func(context.Context, actionlib.Invocation) error { return nil }),
		Clock:       clock,
		SyncActions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &env{rt: rt, mon: New(rt, clock), clock: clock}
}

func (e *env) seed(t *testing.T, n int) []runtime.Snapshot {
	t.Helper()
	model := scenario.QualityPlan()
	dels := scenario.Deliverables(n)
	snaps := make([]runtime.Snapshot, n)
	for i, d := range dels {
		snap, err := e.rt.Instantiate(model, d.Ref, d.Owner, nil)
		if err != nil {
			t.Fatal(err)
		}
		snaps[i] = snap
	}
	return snaps
}

func TestSummarizeCountsStates(t *testing.T) {
	e := newEnv(t)
	snaps := e.seed(t, 6)
	// Advance: two into elaboration, one all the way to accepted, one
	// deviates straight to publication; two stay unstarted.
	e.rt.Advance(snaps[0].ID, "elaboration", snaps[0].Owner, runtime.AdvanceOptions{})
	e.rt.Advance(snaps[1].ID, "elaboration", snaps[1].Owner, runtime.AdvanceOptions{})
	e.rt.Advance(snaps[2].ID, "elaboration", snaps[2].Owner, runtime.AdvanceOptions{})
	e.rt.Advance(snaps[2].ID, "accepted", snaps[2].Owner, runtime.AdvanceOptions{Annotation: "fast-tracked"})
	e.rt.Advance(snaps[3].ID, "publication", snaps[3].Owner, runtime.AdvanceOptions{Annotation: "skip everything"})

	sum := e.mon.Summarize()
	if sum.Total != 6 || sum.Completed != 1 || sum.Active != 5 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.NotStarted != 2 {
		t.Fatalf("not started = %d", sum.NotStarted)
	}
	if sum.ByPhase["Elaboration"] != 2 || sum.ByPhase["Publication"] != 1 || sum.ByPhase["(not started)"] != 2 {
		t.Fatalf("by phase = %v", sum.ByPhase)
	}
	// Two deviations: fast-track to accepted and skip to publication.
	if sum.Deviations != 2 {
		t.Fatalf("deviations = %d", sum.Deviations)
	}
	// Each phase entry dispatched unimplemented actions -> failures.
	if sum.Failed == 0 {
		t.Fatal("failed actions not counted")
	}
	if sum.ByModel["EU Project deliverable lifecycle"] != 6 {
		t.Fatalf("by model = %v", sum.ByModel)
	}
}

func TestLateDetectionAndOrdering(t *testing.T) {
	e := newEnv(t)
	snaps := e.seed(t, 3)
	for _, s := range snaps {
		e.rt.Advance(s.ID, "elaboration", s.Owner, runtime.AdvanceOptions{})
	}
	// Move one instance on to internalreview (due day 40); the others sit
	// in elaboration (due day 30).
	e.rt.Advance(snaps[0].ID, "internalreview", snaps[0].Owner, runtime.AdvanceOptions{})

	if got := e.mon.Late(); len(got) != 0 {
		t.Fatalf("late before any deadline = %v", got)
	}
	e.clock.Advance(31 * 24 * time.Hour)
	late := e.mon.Late()
	if len(late) != 2 {
		t.Fatalf("late after day 31 = %d rows, want the two in elaboration", len(late))
	}
	for _, row := range late {
		if row.Phase != "elaboration" || !row.Late || row.LateBy == "" {
			t.Fatalf("late row = %+v", row)
		}
	}
	e.clock.Advance(10 * 24 * time.Hour) // day 41: internalreview overdue too
	late = e.mon.Late()
	if len(late) != 3 {
		t.Fatalf("late after day 41 = %d rows", len(late))
	}
	// Most overdue (earliest due) first.
	for i := 1; i < len(late); i++ {
		if late[i].Due.Before(late[i-1].Due) {
			t.Fatalf("late rows not sorted by due date: %v", late)
		}
	}
	// Completing an overdue instance clears it from the late list.
	e.rt.Advance(snaps[1].ID, "accepted", snaps[1].Owner, runtime.AdvanceOptions{})
	if got := e.mon.Late(); len(got) != 2 {
		t.Fatalf("late after completion = %d", len(got))
	}
}

func TestOverviewRows(t *testing.T) {
	e := newEnv(t)
	snaps := e.seed(t, 2)
	e.rt.Advance(snaps[0].ID, "elaboration", snaps[0].Owner, runtime.AdvanceOptions{})
	rows := e.mon.Overview()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	r0 := rows[0]
	if r0.InstanceID != snaps[0].ID || r0.PhaseName != "Elaboration" || r0.Owner != snaps[0].Owner {
		t.Fatalf("row = %+v", r0)
	}
	if r0.Due.IsZero() {
		t.Fatal("due date missing for elaboration")
	}
	if rows[1].Phase != "" || rows[1].PhaseName != "" {
		t.Fatalf("unstarted row = %+v", rows[1])
	}
}

func TestOverviewFlagsProposals(t *testing.T) {
	e := newEnv(t)
	snaps := e.seed(t, 1)
	m2 := scenario.QualityPlan()
	m2.Version.Number = "2.0"
	m2.Phases = append(m2.Phases, nil)
	m2.Phases = m2.Phases[:len(m2.Phases)-1] // no-op, keep valid
	if err := e.rt.ProposeChange(snaps[0].ID, "coordinator", m2, "tweak"); err != nil {
		t.Fatal(err)
	}
	rows := e.mon.Overview()
	if !rows[0].HasProposal {
		t.Fatal("proposal not flagged")
	}
	sum := e.mon.Summarize()
	if sum.Proposals != 1 {
		t.Fatalf("proposals = %d", sum.Proposals)
	}
}

func TestTimeline(t *testing.T) {
	e := newEnv(t)
	snaps := e.seed(t, 1)
	id := snaps[0].ID
	e.rt.Advance(id, "elaboration", snaps[0].Owner, runtime.AdvanceOptions{})
	e.rt.Annotate(id, snaps[0].Owner, "waiting on partner text")
	tl, ok := e.mon.Timeline(id)
	if !ok {
		t.Fatal("timeline missing")
	}
	if len(tl) < 3 {
		t.Fatalf("timeline = %d entries", len(tl))
	}
	if tl[0].Kind != "created" {
		t.Fatalf("first entry = %+v", tl[0])
	}
	last := tl[len(tl)-1]
	if last.Kind != "annotated" || last.Detail != "waiting on partner text" {
		t.Fatalf("last entry = %+v", last)
	}
	if _, ok := e.mon.Timeline("ghost"); ok {
		t.Fatal("timeline for missing instance")
	}
}

func TestPhaseStats(t *testing.T) {
	e := newEnv(t)
	snaps := e.seed(t, 1)
	id := snaps[0].ID
	owner := snaps[0].Owner
	e.rt.Advance(id, "elaboration", owner, runtime.AdvanceOptions{})
	e.clock.Advance(48 * time.Hour)
	e.rt.Advance(id, "internalreview", owner, runtime.AdvanceOptions{})
	e.clock.Advance(24 * time.Hour)

	stats, ok := e.mon.PhaseStats(id)
	if !ok {
		t.Fatal("stats missing")
	}
	if stats["elaboration"] != 48*time.Hour {
		t.Fatalf("elaboration residence = %v", stats["elaboration"])
	}
	// Ongoing residence counts up to now.
	if stats["internalreview"] != 24*time.Hour {
		t.Fatalf("internalreview residence = %v", stats["internalreview"])
	}
	// Completion freezes the clock.
	e.rt.Advance(id, "accepted", owner, runtime.AdvanceOptions{})
	e.clock.Advance(100 * time.Hour)
	stats, _ = e.mon.PhaseStats(id)
	if stats["internalreview"] != 24*time.Hour {
		t.Fatalf("post-completion residence drifted: %v", stats["internalreview"])
	}
	if _, ok := e.mon.PhaseStats("ghost"); ok {
		t.Fatal("stats for missing instance")
	}
}

func TestLiquidPubScale(t *testing.T) {
	// The paper's concrete case: 35 deliverables at a glance (§II.A).
	e := newEnv(t)
	snaps := e.seed(t, 35)
	for i, s := range snaps {
		e.rt.Advance(s.ID, scenario.HappyPath[0], s.Owner, runtime.AdvanceOptions{})
		for j := 1; j <= i%len(scenario.HappyPath); j++ {
			e.rt.Advance(s.ID, scenario.HappyPath[j], s.Owner, runtime.AdvanceOptions{})
		}
	}
	sum := e.mon.Summarize()
	if sum.Total != 35 {
		t.Fatalf("total = %d", sum.Total)
	}
	var phaseTotal int
	for _, n := range sum.ByPhase {
		phaseTotal += n
	}
	if phaseTotal != 35 {
		t.Fatalf("phase counts sum to %d", phaseTotal)
	}
	if len(e.mon.Overview()) != 35 {
		t.Fatal("overview row count mismatch")
	}
}

func TestTimelinePagePaging(t *testing.T) {
	e := newEnv(t)
	snaps := e.seed(t, 1)
	id := snaps[0].ID
	e.rt.Advance(id, "elaboration", snaps[0].Owner, runtime.AdvanceOptions{})
	for i := 0; i < 8; i++ {
		e.rt.Annotate(id, snaps[0].Owner, "note")
	}
	// created + phase-entered + 8 annotations = 10 events.
	page, ok := e.mon.TimelinePage(id, 0, 4)
	if !ok {
		t.Fatal("page missing")
	}
	if len(page.Entries) != 4 || page.Total != 10 || page.OldestSeq != 1 || page.Truncated {
		t.Fatalf("page = %+v", page)
	}
	if page.NextAfter != 4 {
		t.Fatalf("next_after = %d", page.NextAfter)
	}
	// Follow the cursor to the tail.
	var got []TimelineEntry
	got = append(got, page.Entries...)
	for page.NextAfter != 0 {
		page, _ = e.mon.TimelinePage(id, page.NextAfter, 4)
		got = append(got, page.Entries...)
	}
	if len(got) != 10 {
		t.Fatalf("cursor walk collected %d entries", len(got))
	}
	for i, en := range got {
		if en.Seq != i+1 {
			t.Fatalf("entry %d has seq %d", i, en.Seq)
		}
	}
	// Beyond the tail: empty page, no cursor.
	page, _ = e.mon.TimelinePage(id, 99, 4)
	if len(page.Entries) != 0 || page.NextAfter != 0 {
		t.Fatalf("past-tail page = %+v", page)
	}
	// limit <= 0 returns the remainder.
	page, _ = e.mon.TimelinePage(id, 6, 0)
	if len(page.Entries) != 4 || page.Entries[0].Seq != 7 {
		t.Fatalf("unbounded page = %+v", page.Entries)
	}
	if _, ok := e.mon.TimelinePage("ghost", 0, 0); ok {
		t.Fatal("page for missing instance")
	}
}

func TestTimelinePageTruncatedPrefix(t *testing.T) {
	clock := vclock.NewFake(time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC))
	rt, err := runtime.New(runtime.Config{
		Registry:          actionlib.NewRegistry(),
		Invoker:           runtime.InvokerFunc(func(context.Context, actionlib.Invocation) error { return nil }),
		Clock:             clock,
		SyncActions:       true,
		MaxEventsInMemory: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := New(rt, clock)
	snap, err := rt.Instantiate(scenario.QualityPlan(),
		resource.Ref{URI: "urn:t:1", Type: "mediawiki"}, "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		rt.Annotate(snap.ID, "owner", "note")
	}
	page, ok := mon.TimelinePage(snap.ID, 0, 5)
	if !ok {
		t.Fatal("page missing")
	}
	if !page.Truncated || page.OldestSeq <= 1 {
		t.Fatalf("truncated read not flagged: %+v", page)
	}
	if len(page.Entries) == 0 || page.Entries[0].Seq != page.OldestSeq {
		t.Fatalf("page does not start at the oldest retained seq: %+v", page)
	}
	if page.Total != 31 {
		t.Fatalf("total = %d", page.Total)
	}
	// The cockpit aggregate is unaffected by the truncation.
	sum := mon.Summarize()
	if sum.Total != 1 || sum.Deviations != 0 {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestRowCountersComeFromSummaries pins the cockpit rows to the
// incrementally maintained counters, including failed and pending
// executions.
func TestRowCountersComeFromSummaries(t *testing.T) {
	e := newEnv(t)
	snaps := e.seed(t, 1)
	id := snaps[0].ID
	// internalreview carries actions with no registered implementations:
	// immediate terminal failures.
	e.rt.Advance(id, "internalreview", snaps[0].Owner, runtime.AdvanceOptions{Annotation: "skip ahead"})
	rows := e.mon.Overview()
	if rows[0].Deviations != 1 {
		t.Fatalf("deviations = %d", rows[0].Deviations)
	}
	if rows[0].FailedSteps == 0 {
		t.Fatalf("failed steps = %d", rows[0].FailedSteps)
	}
	if rows[0].PendingInvs != 0 {
		t.Fatalf("pending = %d", rows[0].PendingInvs)
	}
	snap, _ := e.rt.Instance(id)
	if len(snap.Executions) != rows[0].FailedSteps {
		t.Fatalf("row failed %d != executions %d", rows[0].FailedSteps, len(snap.Executions))
	}
}

// TestSummarizeCountsUnnamedPhases guards the Total == NotStarted +
// sum(ByPhase) invariant when a phase has no display name (legal —
// validation only warns): such instances are keyed by phase id, not
// dropped.
func TestSummarizeCountsUnnamedPhases(t *testing.T) {
	e := newEnv(t)
	model, err := core.NewModel("urn:m:unnamed", "Unnamed-phase model").
		Phase("limbo", "").
		FinalPhase("done", "Done").
		Initial("limbo").Transition("limbo", "done").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := e.rt.Instantiate(model, resource.Ref{URI: "urn:r:1", Type: "t"}, "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.rt.Advance(snap.ID, "limbo", "owner", runtime.AdvanceOptions{}); err != nil {
		t.Fatal(err)
	}
	sum := e.mon.Summarize()
	if sum.ByPhase["limbo"] != 1 {
		t.Fatalf("unnamed phase dropped from breakdown: %v", sum.ByPhase)
	}
	phaseTotal := 0
	for _, n := range sum.ByPhase {
		phaseTotal += n
	}
	if phaseTotal != sum.Total {
		t.Fatalf("phase counts sum to %d, total %d", phaseTotal, sum.Total)
	}
}

func TestRowResourceIdentity(t *testing.T) {
	e := newEnv(t)
	model := scenario.QualityPlan()
	snap, err := e.rt.Instantiate(model,
		resource.Ref{URI: "http://wiki.liquidpub.org/pages/D1.1", Type: "mediawiki"}, "unitn-lead", nil)
	if err != nil {
		t.Fatal(err)
	}
	row := e.mon.Overview()[0]
	if row.ResourceURI != "http://wiki.liquidpub.org/pages/D1.1" || row.ResourceType != "mediawiki" {
		t.Fatalf("row = %+v", row)
	}
	_ = snap
}

// TestPhaseStatsSurviveTruncation: the per-phase counters come from
// the runtime's incrementally maintained stats, so ring-truncating the
// in-memory history changes nothing — the old event-replay
// implementation would have lost the truncated residence.
func TestPhaseStatsSurviveTruncation(t *testing.T) {
	clock := vclock.NewFake(time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC))
	rt, err := runtime.New(runtime.Config{
		Registry:          actionlib.NewRegistry(),
		Invoker:           runtime.InvokerFunc(func(context.Context, actionlib.Invocation) error { return nil }),
		Clock:             clock,
		SyncActions:       true,
		MaxEventsInMemory: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := New(rt, clock)
	model := scenario.QualityPlan()
	snap, err := rt.Instantiate(model, scenario.Deliverables(1)[0].Ref, "owner", nil)
	if err != nil {
		t.Fatal(err)
	}
	rt.Advance(snap.ID, "elaboration", "owner", runtime.AdvanceOptions{})
	clock.Advance(48 * time.Hour)
	rt.Advance(snap.ID, "internalreview", "owner", runtime.AdvanceOptions{})
	clock.Advance(24 * time.Hour)
	rt.Advance(snap.ID, "elaboration", "owner", runtime.AdvanceOptions{})
	clock.Advance(6 * time.Hour)
	// Flood the ring so the early phase-entered events are truncated out.
	for i := 0; i < 20; i++ {
		if err := rt.Annotate(snap.ID, "owner", "note"); err != nil {
			t.Fatal(err)
		}
	}
	if page, _ := rt.Events(snap.ID, 0, 0); page.OldestSeq <= 1 {
		t.Fatal("test did not exercise truncation")
	}

	stats, ok := mon.PhaseStats(snap.ID)
	if !ok {
		t.Fatal("stats missing")
	}
	if stats["elaboration"] != 54*time.Hour {
		t.Fatalf("elaboration residence = %v, want 54h", stats["elaboration"])
	}
	if stats["internalreview"] != 24*time.Hour {
		t.Fatalf("internalreview residence = %v, want 24h", stats["internalreview"])
	}
	full, ok := mon.PhaseBreakdown(snap.ID)
	if !ok {
		t.Fatal("breakdown missing")
	}
	if full["elaboration"].Entered != 2 || full["internalreview"].Entered != 1 {
		t.Fatalf("entered counts = %+v", full)
	}
	if _, ok := mon.PhaseBreakdown("ghost"); ok {
		t.Fatal("breakdown for missing instance")
	}
}
