package monitor

// Benchmarks for the summary-backed cockpit over the ISSUE's reference
// population: 2048 instances × 128 events each. The *SnapshotBaseline
// variants replicate the pre-rewrite algorithms (deep-copy every
// instance via Instances(), rescan events and executions per query) so
// the committed BENCH_monitor.json trajectory and local runs can
// compare like for like. The population is built once and shared.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/liquidpub/gelee/internal/actionlib"
	"github.com/liquidpub/gelee/internal/resource"
	"github.com/liquidpub/gelee/internal/runtime"
	"github.com/liquidpub/gelee/internal/scenario"
	"github.com/liquidpub/gelee/internal/vclock"
)

const (
	benchPopulation = 2048
	benchEvents     = 128
)

var benchOnce struct {
	sync.Once
	rt    *runtime.Runtime
	mon   *Monitor
	clock *vclock.Fake
	err   error
}

// benchEnv lazily builds the shared 2048×128 population: every instance
// advanced into elaboration (due day 30) and annotated up to 128 events,
// with the clock at day 41 so the Late view has real work to do.
func benchEnv(b *testing.B) (*runtime.Runtime, *Monitor, *vclock.Fake) {
	b.Helper()
	benchOnce.Do(func() {
		clock := vclock.NewFake(time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC))
		rt, err := runtime.New(runtime.Config{
			Registry:    actionlib.NewRegistry(),
			Invoker:     runtime.InvokerFunc(func(context.Context, actionlib.Invocation) error { return nil }),
			Clock:       clock,
			SyncActions: true,
		})
		if err != nil {
			benchOnce.err = err
			return
		}
		model := scenario.QualityPlan()
		for i := 0; i < benchPopulation; i++ {
			ref := resource.Ref{URI: fmt.Sprintf("urn:bench:res-%d", i), Type: "mediawiki"}
			snap, err := rt.Instantiate(model, ref, "owner", nil)
			if err != nil {
				benchOnce.err = err
				return
			}
			if _, err := rt.Advance(snap.ID, "elaboration", "owner", runtime.AdvanceOptions{}); err != nil {
				benchOnce.err = err
				return
			}
			for e := 2; e < benchEvents; e++ {
				if err := rt.Annotate(snap.ID, "owner", "note"); err != nil {
					benchOnce.err = err
					return
				}
			}
		}
		clock.Advance(41 * 24 * time.Hour)
		benchOnce.rt = rt
		benchOnce.clock = clock
		benchOnce.mon = New(rt, clock)
	})
	if benchOnce.err != nil {
		b.Fatal(benchOnce.err)
	}
	return benchOnce.rt, benchOnce.mon, benchOnce.clock
}

func BenchmarkMonitorSummarize(b *testing.B) {
	_, mon, _ := benchEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := mon.Summarize()
		if sum.Total != benchPopulation {
			b.Fatalf("total = %d", sum.Total)
		}
	}
}

func BenchmarkMonitorLate(b *testing.B) {
	_, mon, _ := benchEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		late := mon.Late()
		if len(late) != benchPopulation {
			b.Fatalf("late = %d", len(late))
		}
	}
}

func BenchmarkMonitorOverview(b *testing.B) {
	_, mon, _ := benchEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := mon.Overview()
		if len(rows) != benchPopulation {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// snapshotRowCounts is the pre-rewrite per-row work: scan the deep-
// copied history and executions for the counters.
func snapshotRowCounts(s runtime.Snapshot) (dev, failed, pending int) {
	for _, ev := range s.Events {
		if ev.Kind == runtime.EventPhaseEntered && ev.Deviation {
			dev++
		}
	}
	for _, ex := range s.Executions {
		switch {
		case ex.Terminal && ex.LastStatus == "failed":
			failed++
		case !ex.Terminal:
			pending++
		}
	}
	return
}

func BenchmarkMonitorSummarizeSnapshotBaseline(b *testing.B) {
	rt, _, clock := benchEnv(b)
	now := clock.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total, late, deviations, failed := 0, 0, 0, 0
		byPhase := make(map[string]int)
		for _, s := range rt.Instances() {
			total++
			if p := s.CurrentPhase(); p != nil {
				byPhase[p.Name]++
			}
			if s.Late(now) {
				late++
			}
			d, f, _ := snapshotRowCounts(s)
			deviations += d
			failed += f
		}
		if total != benchPopulation || late != benchPopulation {
			b.Fatalf("total=%d late=%d", total, late)
		}
		_, _ = deviations, failed
	}
}

func BenchmarkMonitorLateSnapshotBaseline(b *testing.B) {
	rt, _, clock := benchEnv(b)
	now := clock.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, s := range rt.Instances() {
			if s.Late(now) {
				snapshotRowCounts(s)
				n++
			}
		}
		if n != benchPopulation {
			b.Fatalf("late = %d", n)
		}
	}
}

// BenchmarkTimelinePage measures the paged drill-down against the full
// timeline read.
func BenchmarkTimelinePage(b *testing.B) {
	rt, mon, _ := benchEnv(b)
	sums := rt.Summaries()
	id := sums[0].ID
	b.Run("page-32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			page, ok := mon.TimelinePage(id, 64, 32)
			if !ok || len(page.Entries) != 32 {
				b.Fatalf("page = %d entries", len(page.Entries))
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tl, ok := mon.Timeline(id)
			if !ok || len(tl) != benchEvents {
				b.Fatalf("timeline = %d entries", len(tl))
			}
		}
	})
}
