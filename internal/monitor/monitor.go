// Package monitor implements the monitoring cockpit of Fig. 2 — the
// interface "a project manager would use to visualize status and history
// of the resources under her responsibility" (§I). It answers the §II.B
// requirements directly: which artifacts are in a given status, which
// are late, and what happened to each one, at any point in time.
//
// The monitor is a pure read-side component: it queries runtime
// snapshots and derives aggregates; it never mutates lifecycle state.
package monitor

import (
	"sort"
	"time"

	"github.com/liquidpub/gelee/internal/runtime"
	"github.com/liquidpub/gelee/internal/vclock"
)

// Source supplies instance snapshots — satisfied by *runtime.Runtime.
type Source interface {
	Instances() []runtime.Snapshot
	Instance(id string) (runtime.Snapshot, bool)
}

// Monitor is the cockpit query engine.
type Monitor struct {
	src   Source
	clock vclock.Clock
}

// New builds a Monitor over src; nil clock means wall clock.
func New(src Source, clock vclock.Clock) *Monitor {
	if clock == nil {
		clock = vclock.System
	}
	return &Monitor{src: src, clock: clock}
}

// Row is one artifact line of the cockpit's status-at-a-glance view.
type Row struct {
	InstanceID   string    `json:"instance_id"`
	ModelName    string    `json:"model_name"`
	ResourceURI  string    `json:"resource_uri"`
	ResourceType string    `json:"resource_type"`
	Owner        string    `json:"owner"`
	Phase        string    `json:"phase"`      // current phase id ("" = not started)
	PhaseName    string    `json:"phase_name"` // display name
	State        string    `json:"state"`
	Due          time.Time `json:"due,omitempty"`
	Late         bool      `json:"late"`
	LateBy       string    `json:"late_by,omitempty"`
	Deviations   int       `json:"deviations"`
	FailedSteps  int       `json:"failed_steps"`
	PendingInvs  int       `json:"pending_invocations"`
	HasProposal  bool      `json:"has_proposal"`
}

func (m *Monitor) row(s runtime.Snapshot, now time.Time) Row {
	r := Row{
		InstanceID:   s.ID,
		ModelName:    s.Model.Name,
		ResourceURI:  s.Resource.URI,
		ResourceType: s.Resource.Type,
		Owner:        s.Owner,
		Phase:        s.Current,
		State:        string(s.State),
		HasProposal:  s.Pending != nil,
	}
	if p := s.CurrentPhase(); p != nil {
		r.PhaseName = p.Name
	}
	if s.Current != "" {
		r.Due = s.DueAt(s.Current)
	}
	if s.Late(now) {
		r.Late = true
		r.LateBy = now.Sub(r.Due).Round(time.Minute).String()
	}
	for _, ev := range s.Events {
		if ev.Kind == runtime.EventPhaseEntered && ev.Deviation {
			r.Deviations++
		}
	}
	for _, ex := range s.Executions {
		switch {
		case ex.Terminal && ex.LastStatus == "failed":
			r.FailedSteps++
		case !ex.Terminal:
			r.PendingInvs++
		}
	}
	return r
}

// Overview returns one row per instance, in creation order.
func (m *Monitor) Overview() []Row {
	now := m.clock.Now()
	snaps := m.src.Instances()
	rows := make([]Row, len(snaps))
	for i, s := range snaps {
		rows[i] = m.row(s, now)
	}
	return rows
}

// Late returns the rows of active, overdue instances, most overdue
// first — requirement §II.B.4: "with particular attention to delays".
func (m *Monitor) Late() []Row {
	now := m.clock.Now()
	var rows []Row
	for _, s := range m.src.Instances() {
		if s.Late(now) {
			rows = append(rows, m.row(s, now))
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Due.Before(rows[j].Due) })
	return rows
}

// Summary aggregates the cockpit's headline numbers.
type Summary struct {
	Total      int            `json:"total"`
	Active     int            `json:"active"`
	Completed  int            `json:"completed"`
	NotStarted int            `json:"not_started"` // token still at BEGIN
	Late       int            `json:"late"`
	ByPhase    map[string]int `json:"by_phase"` // phase display name -> count
	ByModel    map[string]int `json:"by_model"`
	Deviations int            `json:"deviations"`
	Failed     int            `json:"failed_actions"`
	Proposals  int            `json:"pending_proposals"`
}

// Summarize computes the aggregate over every instance — the "picture of
// the status of the lifecycle for each artifact at any given point in
// time" (§II.B.4).
func (m *Monitor) Summarize() Summary {
	now := m.clock.Now()
	sum := Summary{ByPhase: make(map[string]int), ByModel: make(map[string]int)}
	for _, s := range m.src.Instances() {
		sum.Total++
		switch s.State {
		case runtime.StateActive:
			sum.Active++
		case runtime.StateCompleted:
			sum.Completed++
		}
		if s.Current == "" {
			sum.NotStarted++
			sum.ByPhase["(not started)"]++
		} else if p := s.CurrentPhase(); p != nil {
			sum.ByPhase[p.Name]++
		}
		sum.ByModel[s.Model.Name]++
		if s.Late(now) {
			sum.Late++
		}
		for _, ev := range s.Events {
			if ev.Kind == runtime.EventPhaseEntered && ev.Deviation {
				sum.Deviations++
			}
		}
		for _, ex := range s.Executions {
			if ex.Terminal && ex.LastStatus == "failed" {
				sum.Failed++
			}
		}
		if s.Pending != nil {
			sum.Proposals++
		}
	}
	return sum
}

// TimelineEntry is one step of an instance's history view.
type TimelineEntry struct {
	Seq       int       `json:"seq"`
	Time      time.Time `json:"time"`
	Kind      string    `json:"kind"`
	Actor     string    `json:"actor,omitempty"`
	Phase     string    `json:"phase,omitempty"`
	Detail    string    `json:"detail,omitempty"`
	Deviation bool      `json:"deviation,omitempty"`
	Status    string    `json:"status,omitempty"`
}

// Timeline returns the instance history in order, or false when the
// instance does not exist.
func (m *Monitor) Timeline(instanceID string) ([]TimelineEntry, bool) {
	s, ok := m.src.Instance(instanceID)
	if !ok {
		return nil, false
	}
	out := make([]TimelineEntry, len(s.Events))
	for i, ev := range s.Events {
		out[i] = TimelineEntry{
			Seq: ev.Seq, Time: ev.Time, Kind: string(ev.Kind), Actor: ev.Actor,
			Phase: ev.Phase, Detail: ev.Detail, Deviation: ev.Deviation, Status: ev.Status,
		}
	}
	return out, true
}

// PhaseStats measures time spent per phase for one instance: entered
// count and cumulative residence time (ongoing residence counts up to
// now). Monitoring is a first-class purpose of empty phases (§IV.A), so
// residency is computed purely from phase-entered events.
func (m *Monitor) PhaseStats(instanceID string) (map[string]time.Duration, bool) {
	s, ok := m.src.Instance(instanceID)
	if !ok {
		return nil, false
	}
	out := make(map[string]time.Duration)
	var lastPhase string
	var lastTime time.Time
	for _, ev := range s.Events {
		if ev.Kind != runtime.EventPhaseEntered {
			continue
		}
		if lastPhase != "" {
			out[lastPhase] += ev.Time.Sub(lastTime)
		}
		lastPhase, lastTime = ev.Phase, ev.Time
	}
	if lastPhase != "" && s.State == runtime.StateActive {
		out[lastPhase] += m.clock.Now().Sub(lastTime)
	} else if lastPhase != "" && !s.CompletedAt.IsZero() {
		out[lastPhase] += s.CompletedAt.Sub(lastTime)
	}
	return out, true
}
