// Package monitor implements the monitoring cockpit of Fig. 2 — the
// interface "a project manager would use to visualize status and history
// of the resources under her responsibility" (§I). It answers the §II.B
// requirements directly: which artifacts are in a given status, which
// are late, and what happened to each one, at any point in time.
//
// The monitor is a pure read-side component; it never mutates lifecycle
// state. Since the summary-backed rewrite it is also copy-free on the
// population-wide views: Overview, Late and Summarize are built from
// runtime.Summary projections — incrementally maintained counters
// (deviations, failed steps, pending invocations), token position and
// the current phase's resolved due date — so a cockpit query is
// O(population) with small constants, never O(total history), and never
// deep-copies an event slice, an execution slice or a model. Since the
// population-index rewrite the views stream those summaries through
// Source.ForEachSummary — the runtime's incrementally maintained
// ordered index — instead of materializing the full population per
// call, and the filtered variants (OverviewWhere, LateWhere) push a
// runtime.Filter down to the runtime's secondary indexes so a
// by-resource or by-model cockpit view is O(matches), not O(N). Only
// the per-instance drill-downs still read history: Timeline pages
// straight from the runtime's event window (runtime.Events), and
// PhaseStats replays one instance's retained phase-entered events from
// a snapshot.
package monitor

import (
	"sort"
	"time"

	"github.com/liquidpub/gelee/internal/runtime"
	"github.com/liquidpub/gelee/internal/vclock"
)

// Source supplies instance projections — satisfied by *runtime.Runtime
// and by *gelee.System (whose Events stitches ring-truncated history
// back in from the journaled execution log). ForEachSummary streams
// the population views off the runtime's ordered population index,
// filter pushed down, without materializing every summary; Events
// (paged history window) and PhaseStats (the incrementally maintained
// per-phase counters) feed the per-instance drill-downs.
type Source interface {
	ForEachSummary(f runtime.Filter, after int64, fn func(runtime.Summary) bool)
	Events(id string, after, limit int) (runtime.EventPage, bool)
	PhaseStats(id string, now time.Time) (map[string]runtime.PhaseStat, bool)
}

// Monitor is the cockpit query engine.
type Monitor struct {
	src   Source
	clock vclock.Clock
}

// New builds a Monitor over src; nil clock means wall clock.
func New(src Source, clock vclock.Clock) *Monitor {
	if clock == nil {
		clock = vclock.System
	}
	return &Monitor{src: src, clock: clock}
}

// Row is one artifact line of the cockpit's status-at-a-glance view.
type Row struct {
	InstanceID   string    `json:"instance_id"`
	ModelName    string    `json:"model_name"`
	ResourceURI  string    `json:"resource_uri"`
	ResourceType string    `json:"resource_type"`
	Owner        string    `json:"owner"`
	Phase        string    `json:"phase"`      // current phase id ("" = not started)
	PhaseName    string    `json:"phase_name"` // display name
	State        string    `json:"state"`
	Due          time.Time `json:"due,omitempty"`
	Late         bool      `json:"late"`
	LateBy       string    `json:"late_by,omitempty"`
	Deviations   int       `json:"deviations"`
	FailedSteps  int       `json:"failed_steps"`
	PendingInvs  int       `json:"pending_invocations"`
	HasProposal  bool      `json:"has_proposal"`
}

// row builds a cockpit line from the summary's maintained counters —
// no event scan, no execution scan.
func row(s runtime.Summary, now time.Time) Row {
	r := Row{
		InstanceID:   s.ID,
		ModelName:    s.ModelName,
		ResourceURI:  s.Resource.URI,
		ResourceType: s.Resource.Type,
		Owner:        s.Owner,
		Phase:        s.Current,
		PhaseName:    s.PhaseName,
		State:        string(s.State),
		Due:          s.Due,
		Deviations:   s.Deviations,
		FailedSteps:  s.FailedSteps,
		PendingInvs:  s.PendingInvocations,
		HasProposal:  s.Pending != "",
	}
	if s.Late(now) {
		r.Late = true
		r.LateBy = now.Sub(s.Due).Round(time.Minute).String()
	}
	return r
}

// Overview returns one row per instance, in creation order.
func (m *Monitor) Overview() []Row {
	return m.OverviewWhere(runtime.Filter{})
}

// OverviewWhere returns one row per instance matching the filter, in
// creation order. The filter is pushed down to the runtime — a
// by-resource or by-model view is served from the secondary indexes,
// O(matches) instead of O(population).
func (m *Monitor) OverviewWhere(f runtime.Filter) []Row {
	now := m.clock.Now()
	if f.Now.IsZero() {
		f.Now = now
	}
	var rows []Row
	m.src.ForEachSummary(f, 0, func(s runtime.Summary) bool {
		rows = append(rows, row(s, now))
		return true
	})
	return rows
}

// Late returns the rows of active, overdue instances, most overdue
// first — requirement §II.B.4: "with particular attention to delays".
func (m *Monitor) Late() []Row {
	return m.LateWhere(runtime.Filter{})
}

// LateWhere returns the late rows among instances matching the filter,
// most overdue first. The lateness predicate itself is pushed down:
// the runtime evaluates it on the maintained summary counters while
// streaming the population (or secondary) index, so only late rows are
// ever built.
func (m *Monitor) LateWhere(f runtime.Filter) []Row {
	now := m.clock.Now()
	f.LateOnly = true
	if f.Now.IsZero() {
		f.Now = now
	}
	var rows []Row
	m.src.ForEachSummary(f, 0, func(s runtime.Summary) bool {
		rows = append(rows, row(s, f.Now))
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].Due.Before(rows[j].Due) })
	return rows
}

// Summary aggregates the cockpit's headline numbers.
type Summary struct {
	Total      int            `json:"total"`
	Active     int            `json:"active"`
	Completed  int            `json:"completed"`
	NotStarted int            `json:"not_started"` // token still at BEGIN
	Late       int            `json:"late"`
	ByPhase    map[string]int `json:"by_phase"` // phase display name -> count
	ByModel    map[string]int `json:"by_model"`
	Deviations int            `json:"deviations"`
	Failed     int            `json:"failed_actions"`
	Proposals  int            `json:"pending_proposals"`
}

// Summarize computes the aggregate over every instance — the "picture of
// the status of the lifecycle for each artifact at any given point in
// time" (§II.B.4). Every number comes from the summaries' maintained
// counters, so the cost is independent of history length and unaffected
// by event-history truncation.
func (m *Monitor) Summarize() Summary {
	now := m.clock.Now()
	sum := Summary{ByPhase: make(map[string]int), ByModel: make(map[string]int)}
	m.src.ForEachSummary(runtime.Filter{}, 0, func(s runtime.Summary) bool {
		sum.Total++
		switch s.State {
		case runtime.StateActive:
			sum.Active++
		case runtime.StateCompleted:
			sum.Completed++
		}
		if s.Current == "" {
			sum.NotStarted++
			sum.ByPhase["(not started)"]++
		} else if s.PhaseName != "" {
			sum.ByPhase[s.PhaseName]++
		} else {
			// Unnamed phases are legal (core only warns); key on the id
			// so every started instance appears in the breakdown.
			sum.ByPhase[s.Current]++
		}
		sum.ByModel[s.ModelName]++
		if s.Late(now) {
			sum.Late++
		}
		sum.Deviations += s.Deviations
		sum.Failed += s.FailedSteps
		if s.Pending != "" {
			sum.Proposals++
		}
		return true
	})
	return sum
}

// TimelineEntry is one step of an instance's history view.
type TimelineEntry struct {
	Seq       int       `json:"seq"`
	Time      time.Time `json:"time"`
	Kind      string    `json:"kind"`
	Actor     string    `json:"actor,omitempty"`
	Phase     string    `json:"phase,omitempty"`
	Detail    string    `json:"detail,omitempty"`
	Deviation bool      `json:"deviation,omitempty"`
	Status    string    `json:"status,omitempty"`
}

func toEntries(evs []runtime.Event) []TimelineEntry {
	out := make([]TimelineEntry, len(evs))
	for i, ev := range evs {
		out[i] = TimelineEntry{
			Seq: ev.Seq, Time: ev.Time, Kind: string(ev.Kind), Actor: ev.Actor,
			Phase: ev.Phase, Detail: ev.Detail, Deviation: ev.Deviation, Status: ev.Status,
		}
	}
	return out
}

// Timeline returns the instance's full retained history in order, or
// false when the instance does not exist. For large histories prefer
// TimelinePage.
func (m *Monitor) Timeline(instanceID string) ([]TimelineEntry, bool) {
	page, ok := m.src.Events(instanceID, 0, 0)
	if !ok {
		return nil, false
	}
	return toEntries(page.Events), true
}

// TimelinePage is one window of an instance's history view.
type TimelinePage struct {
	Entries []TimelineEntry `json:"entries"`
	// Total is the number of events ever recorded on the instance.
	Total int `json:"total"`
	// OldestSeq is the oldest seq still in memory (1 unless truncated,
	// 0 when the instance has no events).
	OldestSeq int `json:"oldest_seq"`
	// Truncated reports that the requested range began before OldestSeq
	// and could not be served, not even from the execution-log
	// backfill; the page then starts at the oldest event available.
	Truncated bool `json:"truncated"`
	// Backfilled counts entries of this page read back from the
	// journaled execution log rather than the in-memory ring.
	Backfilled int `json:"backfilled,omitempty"`
	// NextAfter is the cursor for the following page (pass it as
	// `after`); 0 when this page reaches the tail.
	NextAfter int `json:"next_after,omitempty"`
}

// TimelinePage returns the history window with Seq > after, at most
// limit entries (limit <= 0 means no bound), paged straight from the
// runtime's event window — no execution copy, no model copy.
func (m *Monitor) TimelinePage(instanceID string, after, limit int) (TimelinePage, bool) {
	page, ok := m.src.Events(instanceID, after, limit)
	if !ok {
		return TimelinePage{}, false
	}
	out := TimelinePage{
		Entries:    toEntries(page.Events),
		Total:      page.Total,
		OldestSeq:  page.OldestSeq,
		Truncated:  page.Truncated,
		Backfilled: page.Backfilled,
	}
	if n := len(page.Events); n > 0 && page.Events[n-1].Seq < page.Total {
		out.NextAfter = page.Events[n-1].Seq
	}
	return out, true
}

// PhaseStats measures time spent per phase for one instance:
// cumulative residence time, with ongoing residence counted up to now
// (or to completion for completed instances). Monitoring is a
// first-class purpose of empty phases (§IV.A). Since the incremental
// rewrite the numbers come from counters the runtime maintains at
// mutation time — O(phases), no event rescan — so they cover the full
// history even when ring truncation has dropped old events from
// memory, and they are rebuilt on journal replay like every other
// counter. PhaseBreakdown adds the entered counts.
func (m *Monitor) PhaseStats(instanceID string) (map[string]time.Duration, bool) {
	stats, ok := m.PhaseBreakdown(instanceID)
	if !ok {
		return nil, false
	}
	out := make(map[string]time.Duration, len(stats))
	for p, s := range stats {
		out[p] = s.Residence
	}
	return out, true
}

// PhaseBreakdown is PhaseStats with entered counts: how many times the
// token entered each phase and the cumulative residence per phase.
func (m *Monitor) PhaseBreakdown(instanceID string) (map[string]runtime.PhaseStat, bool) {
	return m.src.PhaseStats(instanceID, m.clock.Now())
}
