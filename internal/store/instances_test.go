package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestInstancesRoundTrip appends records, closes, reopens and expects
// the replay to stream them back in order with their ids.
func TestInstancesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenInstances(dir, InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Replay(func(string, []byte) error {
		t.Fatal("fresh journal replayed a record")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("li-%06d", i%3)
		if err := c.Append(id, []byte(fmt.Sprintf(`{"op":"advance","n":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Appends != 10 {
		t.Fatalf("appends = %d, want 10", st.Appends)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("second close not idempotent:", err)
	}

	c2, err := OpenInstances(dir, InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	var got []string
	if err := c2.Replay(func(id string, data []byte) error {
		var rec struct {
			N int `json:"n"`
		}
		if err := json.Unmarshal(data, &rec); err != nil {
			return err
		}
		got = append(got, fmt.Sprintf("%s:%d", id, rec.N))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || c2.Replayed() != 10 {
		t.Fatalf("replayed %d records (%v)", len(got), got)
	}
	for i, g := range got {
		want := fmt.Sprintf("li-%06d:%d", i%3, i)
		if g != want {
			t.Fatalf("record %d = %q, want %q", i, g, want)
		}
	}
	// The reopened collection appends at the right sequence.
	if err := c2.Append("li-000009", []byte(`{"op":"x"}`)); err != nil {
		t.Fatal(err)
	}
	if seq := c2.Stats().LastSeq; seq != 11 {
		t.Fatalf("last seq = %d, want 11", seq)
	}
}

// TestInstancesTornTail writes a torn final line (a crash mid-batch)
// and expects replay to drop it silently and keep appending cleanly.
func TestInstancesTornTail(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenInstances(dir, InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Replay(func(string, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.Append("li-000001", []byte(`{"op":"advance"}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":5,"repo":"instances","op":"append","id":"li-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, err := OpenInstances(dir, InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	n := 0
	if err := c2.Replay(func(string, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("replayed %d records, want 4 (torn tail dropped)", n)
	}
	// The torn bytes were truncated: the next append must land on a
	// record boundary and survive another replay.
	if err := c2.Append("li-000002", []byte(`{"op":"report"}`)); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	c3, err := OpenInstances(dir, InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	n = 0
	if err := c3.Replay(func(string, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("replayed %d records after torn-tail recovery, want 5", n)
	}
}

// TestInstancesAppendBeforeReplay pins the lifecycle contract.
func TestInstancesAppendBeforeReplay(t *testing.T) {
	c, err := OpenInstances(t.TempDir(), InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Append("li-000001", []byte(`{}`)); err == nil {
		t.Fatal("append before Replay succeeded")
	}
	if err := c.Append("", []byte(`{}`)); err == nil {
		t.Fatal("append with empty id succeeded")
	}
}

// TestInstancesConcurrentAppend drives the flush-combining path from
// many goroutines (the -race exercise) and verifies nothing is lost
// and flushes were combined.
func TestInstancesConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenInstances(dir, InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Replay(func(string, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := c.Append(fmt.Sprintf("li-%06d", w), []byte(fmt.Sprintf(`{"w":%d,"i":%d}`, w, i))); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*perWriter)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenInstances(dir, InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	perID := make(map[string][]int)
	if err := c2.Replay(func(id string, data []byte) error {
		var rec struct{ I int }
		if err := json.Unmarshal(data, &rec); err != nil {
			return err
		}
		perID[id] = append(perID[id], rec.I)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(perID) != writers {
		t.Fatalf("ids replayed = %d, want %d", len(perID), writers)
	}
	// Per-instance record order is append order.
	for id, seqs := range perID {
		if len(seqs) != perWriter {
			t.Fatalf("%s: %d records, want %d", id, len(seqs), perWriter)
		}
		for i, s := range seqs {
			if s != i {
				t.Fatalf("%s: record %d out of order: %d", id, i, s)
			}
		}
	}
}

// TestInstancesMemoryMode exercises the Engine-backed mode: appends
// are acknowledged, nothing survives, replay is empty.
func TestInstancesMemoryMode(t *testing.T) {
	c := NewInstances(NewMemoryEngine())
	if err := c.Replay(func(string, []byte) error {
		t.Fatal("memory engine replayed a record")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("li-000001", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Engine; got != "memory" {
		t.Fatalf("engine = %q", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendEntryEquivalence pins the hand-rolled journal-line codec:
// whatever appendEntry emits, encoding/json decodes to the same Entry
// that json.Marshal would have produced.
func TestAppendEntryEquivalence(t *testing.T) {
	cases := []Entry{
		{Seq: 1, Repo: "instances", Op: OpAppend, ID: "li-000001", Data: json.RawMessage(`{"op":"advance"}`)},
		{Seq: 42, Time: time.Date(2026, 7, 29, 10, 30, 0, 123456789, time.UTC), Repo: "models", Op: OpPut,
			ID: `uri with "quotes" and
newlines`, Data: json.RawMessage(`{"deep":{"nested":[1,2,3]}}`)},
		{Seq: 7, Repo: "execlog", Op: OpDelete},
		{Seq: 9, Repo: "grants", Op: OpPut, ID: "scope|user|rôle — 東京"},
	}
	for _, e := range cases {
		line := appendEntry(nil, e)
		if line[len(line)-1] != '\n' {
			t.Fatalf("entry line not newline-terminated: %s", line)
		}
		var fast, std Entry
		if err := json.Unmarshal(line, &fast); err != nil {
			t.Fatalf("decode fast line %s: %v", line, err)
		}
		stdLine, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(stdLine, &std); err != nil {
			t.Fatal(err)
		}
		// Times compare by instant (decode re-derives the location).
		if !fast.Time.Equal(std.Time) {
			t.Fatalf("time round trip: %v vs %v", fast.Time, std.Time)
		}
		fast.Time, std.Time = time.Time{}, time.Time{}
		if !reflect.DeepEqual(fast, std) {
			t.Fatalf("codec divergence:\nfast %+v\nstd  %+v", fast, std)
		}
	}
}
