package store

// Offline integrity checking: Fsck walks a journal directory the way an
// open would — newest snapshot, uncovered sealed segments, active file,
// referenced archives — but verifies instead of replaying and, unlike
// scanSegments, never mutates unless repair is requested. With repair
// it applies exactly the recoveries an open would (truncate the torn
// active tail) plus the one an open refuses (quarantine files that fail
// their CRCs), so a refused data directory opens again — shortened, for
// an operator to reconcile from the .quarantined bytes or a backup.
// `geleectl fsck` is the CLI wrapper.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FsckFile is one file's verdict in an FsckReport.
type FsckFile struct {
	// Name is the file name within the directory.
	Name string `json:"name"`
	// Kind classifies the file: active, segment, snapshot, archive,
	// stale (an older generation a crashed fold left behind), temp,
	// quarantined (moved aside by an earlier run or a quarantine open),
	// or orphan-archive (no snapshot references it).
	Kind string `json:"kind"`
	// Bytes is the file's size on disk.
	Bytes int64 `json:"bytes"`
	// Records is how many valid records verification read.
	Records int `json:"records,omitempty"`
	// Footer reports that the file carried a valid segment footer.
	Footer bool `json:"footer,omitempty"`
	// TornBytes is the invalid suffix length a torn active tail carries.
	TornBytes int64 `json:"torn_bytes,omitempty"`
	// Status is ok, torn, corrupt, missing, stale or quarantined.
	Status string `json:"status"`
	// Detail is the verification failure, when there is one.
	Detail string `json:"detail,omitempty"`
	// Repaired records the repair action taken, if any ("truncated",
	// "quarantined").
	Repaired string `json:"repaired,omitempty"`
}

// FsckReport is the result of one offline directory check.
type FsckReport struct {
	Dir   string     `json:"dir"`
	Files []FsckFile `json:"files"`
	// Corrupt counts files that failed verification (including
	// referenced archives that are missing); Torn counts recoverable
	// torn active tails; Repaired counts repair actions taken.
	Corrupt  int `json:"corrupt"`
	Torn     int `json:"torn"`
	Repaired int `json:"repaired"`
	// Clean reports no corruption (torn tails are recoverable and do
	// not make a directory unclean; stale files are garbage the next
	// open collects).
	Clean bool `json:"clean"`
}

// Fsck verifies every file of the journal generation rooted at dir:
// per-record CRCs and segment footers in the newest snapshot, the
// uncovered sealed segments and the active file, and the full checksum
// of every archive the snapshot references. Read-only by default; with
// repair it truncates the active file's torn tail and quarantines
// corrupt files (rename to a .quarantined suffix) so the directory
// opens again. A missing or empty directory is clean. Returns an error
// only for IO failures — corruption is reported, not returned.
func Fsck(dir string, repair bool) (FsckReport, error) {
	rep := FsckReport{Dir: dir}
	names, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		rep.Clean = true
		return rep, nil
	}
	if err != nil {
		return rep, fmt.Errorf("store: fsck read dir: %w", err)
	}

	var snaps, sealed, archives []uint64
	onDisk := make(map[string]int64)
	var others []string
	for _, de := range names {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if info, ierr := de.Info(); ierr == nil {
			onDisk[name] = info.Size()
		}
		switch {
		case name == journalName:
		case strings.Contains(name, ".quarantined"):
			rep.Files = append(rep.Files, FsckFile{
				Name: name, Kind: "quarantined", Bytes: onDisk[name], Status: "quarantined",
				Detail: "moved aside by an earlier quarantine; restore or delete manually",
			})
		case strings.HasSuffix(name, ".tmp"):
			rep.Files = append(rep.Files, FsckFile{
				Name: name, Kind: "temp", Bytes: onDisk[name], Status: "stale",
				Detail: "in-progress fold never installed; the next open removes it",
			})
		default:
			if n, ok := parseNumbered(name, "snapshot."); ok {
				snaps = append(snaps, n)
			} else if n, ok := parseNumbered(name, "journal."); ok {
				sealed = append(sealed, n)
			} else if n, ok := parseNumbered(name, "archive."); ok {
				archives = append(archives, n)
			} else {
				others = append(others, name)
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(sealed, func(i, j int) bool { return sealed[i] < sealed[j] })
	sort.Slice(archives, func(i, j int) bool { return archives[i] < archives[j] })

	// quarantine moves a corrupt file aside when repairing.
	quarantine := func(f *FsckFile) error {
		if !repair {
			return nil
		}
		p := filepath.Join(dir, f.Name)
		if err := os.Rename(p, quarantinePath(p)); err != nil {
			return fmt.Errorf("store: fsck quarantine %s: %w", f.Name, err)
		}
		f.Repaired = "quarantined"
		rep.Repaired++
		return nil
	}

	// The newest snapshot, verified fully; its archive refs decide which
	// archives are part of the generation.
	var refs []ArchiveRef
	snapNum := uint64(0)
	if len(snaps) > 0 {
		snapNum = snaps[len(snaps)-1]
		for _, n := range snaps[:len(snaps)-1] {
			name := snapName(n)
			rep.Files = append(rep.Files, FsckFile{
				Name: name, Kind: "snapshot", Bytes: onDisk[name], Status: "stale",
				Detail: "superseded by a newer snapshot; the next open removes it",
			})
		}
		name := snapName(snapNum)
		f := FsckFile{Name: name, Kind: "snapshot", Bytes: onDisk[name], Status: "ok"}
		fr, verr := replayJournalFile(filepath.Join(dir, name), replaySnapshot, func(e Entry) error {
			if e.Op == opArchiveRef {
				var ref ArchiveRef
				if jerr := json.Unmarshal(e.Data, &ref); jerr != nil {
					return fmt.Errorf("%w: archive ref: %v", ErrCorrupt, jerr)
				}
				refs = append(refs, ref)
			}
			return nil
		})
		f.Records, f.Footer = fr.n, fr.footer != nil
		if verr != nil {
			if !errors.Is(verr, ErrCorrupt) {
				return rep, verr
			}
			f.Status, f.Detail = "corrupt", verr.Error()
			rep.Corrupt++
			refs = nil
			if err := quarantine(&f); err != nil {
				return rep, err
			}
		}
		rep.Files = append(rep.Files, f)
	}

	// Sealed segments: those a snapshot covers are stale garbage, the
	// rest must verify strictly (footer permitting only the legacy
	// torn-final-line crash shape).
	for _, n := range sealed {
		name := sealedName(n)
		if n <= snapNum {
			rep.Files = append(rep.Files, FsckFile{
				Name: name, Kind: "segment", Bytes: onDisk[name], Status: "stale",
				Detail: "folded into the snapshot; the next open removes it",
			})
			continue
		}
		f := FsckFile{Name: name, Kind: "segment", Bytes: onDisk[name], Status: "ok"}
		fr, verr := replayJournalFile(filepath.Join(dir, name), replaySealed, nil)
		f.Records, f.Footer = fr.n, fr.footer != nil
		if verr != nil {
			if !errors.Is(verr, ErrCorrupt) {
				return rep, verr
			}
			f.Status, f.Detail = "corrupt", verr.Error()
			rep.Corrupt++
			if err := quarantine(&f); err != nil {
				return rep, err
			}
		} else if fr.torn > 0 {
			f.Status, f.TornBytes = "torn", fr.torn
			f.Detail = "torn final line (no footer); replay drops it"
			rep.Torn++
		}
		rep.Files = append(rep.Files, f)
	}

	// The active file: an invalid suffix is a recoverable crash tail
	// (repair truncates it, like an open would); invalid bytes before a
	// later valid record are corruption.
	if _, ok := onDisk[journalName]; ok {
		f := FsckFile{Name: journalName, Kind: "active", Bytes: onDisk[journalName], Status: "ok"}
		fr, verr := replayJournalFile(filepath.Join(dir, journalName), replayActive, nil)
		f.Records = fr.n
		switch {
		case verr != nil && errors.Is(verr, ErrCorrupt):
			f.Status, f.Detail = "corrupt", verr.Error()
			rep.Corrupt++
			if err := quarantine(&f); err != nil {
				return rep, err
			}
		case verr != nil:
			return rep, verr
		case fr.size > fr.good:
			f.Status, f.TornBytes = "torn", fr.size-fr.good
			f.Detail = "torn tail (or a stranded seal footer); replay truncates it"
			rep.Torn++
			if repair {
				if err := os.Truncate(filepath.Join(dir, journalName), fr.good); err != nil {
					return rep, fmt.Errorf("store: fsck truncate active tail: %w", err)
				}
				f.Repaired = "truncated"
				rep.Repaired++
			}
		}
		rep.Files = append(rep.Files, f)
	}

	// Archives: referenced ones verify against the full checksum the
	// snapshot recorded; unreferenced ones are orphans of a crashed fold.
	referenced := make(map[uint64]ArchiveRef, len(refs))
	for _, ref := range refs {
		referenced[ref.Archive] = ref
	}
	for _, n := range archives {
		name := archiveName(n)
		ref, ok := referenced[n]
		if !ok {
			rep.Files = append(rep.Files, FsckFile{
				Name: name, Kind: "orphan-archive", Bytes: onDisk[name], Status: "stale",
				Detail: "no snapshot references it; the next open removes it",
			})
			continue
		}
		delete(referenced, n)
		f := FsckFile{Name: name, Kind: "archive", Bytes: onDisk[name], Records: ref.Entries, Status: "ok"}
		if verr := readArchive(dir, ref, func(Entry) error { return nil }); verr != nil {
			if !errors.Is(verr, ErrCorrupt) {
				return rep, verr
			}
			f.Status, f.Detail = "corrupt", verr.Error()
			rep.Corrupt++
			if err := quarantine(&f); err != nil {
				return rep, err
			}
		}
		rep.Files = append(rep.Files, f)
	}
	for n, ref := range referenced {
		rep.Files = append(rep.Files, FsckFile{
			Name: archiveName(n), Kind: "archive", Bytes: 0, Records: ref.Entries,
			Status: "missing", Detail: "snapshot references it but it is not on disk",
		})
		rep.Corrupt++
	}

	for _, name := range others {
		rep.Files = append(rep.Files, FsckFile{
			Name: name, Kind: "other", Bytes: onDisk[name], Status: "ok",
			Detail: "not a journal file; ignored by the store",
		})
	}

	sort.Slice(rep.Files, func(i, j int) bool { return rep.Files[i].Name < rep.Files[j].Name })
	rep.Clean = rep.Corrupt == 0
	return rep, nil
}
