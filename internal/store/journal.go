// Package store implements the data tier of the Gelee architecture
// (Fig. 2, bottom layer): the repositories for users and roles, resource
// and action definitions, lifecycle templates, and the execution log.
//
// Persistence is an append-only JSONL journal shared by all
// repositories, replayed on open. The format favors the paper's
// robustness requirement: a torn final line (crash mid-write) is
// silently dropped on recovery, and compaction rewrites the journal from
// the live state. A Store may also be purely in-memory (nil journal),
// which the tests and the embedded examples use.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// Op enumerates journal entry operations.
type Op string

// Journal operations: repositories use put/delete; logs use append.
const (
	OpPut    Op = "put"
	OpDelete Op = "delete"
	OpAppend Op = "append"
)

// Entry is one journal record. Repo names entries so that a single
// journal serializes every repository's mutations in one total order.
type Entry struct {
	Seq  uint64          `json:"seq"`
	Time time.Time       `json:"ts"`
	Repo string          `json:"repo"`
	Op   Op              `json:"op"`
	ID   string          `json:"id,omitempty"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Journal is an append-only JSONL file. It is safe for concurrent
// Append calls.
type Journal struct {
	path      string
	f         *os.File
	w         *bufio.Writer
	seq       uint64
	syncEvery bool
}

// OpenJournal opens (or creates) the journal at path for appending.
// lastSeq must be the highest sequence number already present (as
// reported by ReplayJournal); new entries continue from there.
func OpenJournal(path string, lastSeq uint64, syncEvery bool) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	return &Journal{path: path, f: f, w: bufio.NewWriter(f), seq: lastSeq, syncEvery: syncEvery}, nil
}

// Append assigns the next sequence number to e, writes it, and flushes.
// When the journal was opened with syncEvery it also fsyncs, trading
// throughput for durability.
func (j *Journal) Append(e Entry) (uint64, error) {
	j.seq++
	e.Seq = j.seq
	line, err := json.Marshal(e)
	if err != nil {
		return 0, fmt.Errorf("store: encode journal entry: %w", err)
	}
	if _, err := j.w.Write(line); err != nil {
		return 0, fmt.Errorf("store: write journal entry: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return 0, fmt.Errorf("store: write journal newline: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return 0, fmt.Errorf("store: flush journal: %w", err)
	}
	if j.syncEvery {
		if err := j.f.Sync(); err != nil {
			return 0, fmt.Errorf("store: sync journal: %w", err)
		}
	}
	return e.Seq, nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return fmt.Errorf("store: flush on close: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("store: close journal: %w", err)
	}
	return nil
}

// Seq returns the sequence number of the last appended entry.
func (j *Journal) Seq() uint64 { return j.seq }

// ErrCorrupt is wrapped by ReplayJournal when it finds a malformed
// record before the final line of the file.
var ErrCorrupt = errors.New("store: corrupt journal record")

// ReplayJournal streams every entry of the journal at path through fn in
// order, returning the count replayed and the highest sequence seen.
//
// Recovery semantics: a malformed or truncated *final* line is treated
// as a torn write and dropped silently. A malformed line followed by
// more data means real corruption and returns ErrCorrupt (wrapped).
// A missing file replays zero entries.
func ReplayJournal(path string, fn func(Entry) error) (n int, lastSeq uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("store: open journal for replay: %w", err)
	}
	defer f.Close()

	r := bufio.NewReaderSize(f, 1<<16)
	lineNo := 0
	for {
		line, readErr := r.ReadBytes('\n')
		atEOF := errors.Is(readErr, io.EOF)
		if readErr != nil && !atEOF {
			return n, lastSeq, fmt.Errorf("store: read journal: %w", readErr)
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			lineNo++
			var e Entry
			if jsonErr := json.Unmarshal(trimmed, &e); jsonErr != nil {
				if atEOF {
					return n, lastSeq, nil // torn final write: drop it
				}
				return n, lastSeq, fmt.Errorf("%w: line %d: %v", ErrCorrupt, lineNo, jsonErr)
			}
			if fnErr := fn(e); fnErr != nil {
				return n, lastSeq, fnErr
			}
			n++
			if e.Seq > lastSeq {
				lastSeq = e.Seq
			}
		}
		if atEOF {
			return n, lastSeq, nil
		}
	}
}
