// Package store implements the data tier of the Gelee architecture
// (Fig. 2, bottom layer): the repositories for users and roles, resource
// and action definitions, lifecycle templates, and the execution log.
//
// The tier is layered. Repositories (Repo, Log) hold typed in-memory
// state, lock-striped across N shards keyed by resource ID so that
// concurrent mutations of different resources never contend. Every
// mutation is journaled through the Store's pluggable Engine before it
// is applied. The default persistent engine (NewJournalEngine) is a
// segmented append-only JSONL journal with a group-commit writer: a
// background goroutine batches concurrent appends into a single write
// (+ a single fsync in durable mode) and acknowledges each appender
// through a per-entry done channel — turning N fsyncs into one without
// giving up the durability contract, since no append is acknowledged
// before its batch is on disk. An in-memory engine (NewMemoryEngine)
// backs tests and embedded use.
//
// # Segments, snapshots, and folding
//
// A journal directory holds one generation of a segmented log:
//
//	gelee.journal          active segment — all appends land here
//	journal.NNNNNN.jsonl   sealed segments, immutable, NNNNNN ascending
//	snapshot.NNNNNN.jsonl  snapshot folding the state of segments 1..NNNNNN
//	archive.NNNNNN.jsonl   immutable, CRC-summed cold log history
//	*.jsonl.tmp            in-progress fold — ignored and removed on open
//
// When the active segment exceeds SegmentMaxBytes (or on demand) it is
// sealed: flushed, fsynced, renamed to the next sealed name and
// replaced with a fresh active file — an O(1) rename/create under the
// appender lock, so writers never block on compaction. A background
// folder then compacts sealed segments into a snapshot of the live
// state (repositories contribute their last-writer-wins image, the
// instance collection typed per-instance snapshot records) and deletes
// the folded segments. Restart replay is therefore O(snapshot + tail
// segments), not O(all history ever written): Load streams the newest
// snapshot, then the uncovered sealed segments in order, then the
// active file — fanned out across parallel appliers sharded by
// (part, key), so per-key order is exactly the sequential order.
//
// Snapshot entries record a fold boundary in their Seq field — the
// journal sequence up to which their bucket (a repository name, or an
// instance id) is already captured. Tail entries at or below that
// boundary are skipped on replay; this is what makes folding safe for
// non-idempotent buckets (logs, instance records) while writers keep
// appending mid-fold. Store.Compact survives as seal-then-fold, so
// compaction no longer excludes writers.
//
// # Hot/cold log history: fold-by-reference archives
//
// Logs are append-only history, so "live state" would otherwise mean
// everything ever logged — every fold rewriting all of it into the new
// snapshot, compaction I/O and snapshot size growing without bound as
// a deployment ages. Instead a log keeps only its newest entries (the
// configured live window) hot: when a fold finds the window exceeded,
// the overflow is written once into an immutable archive file
// (archive.NNNNNN.jsonl, CRC32-C summed), and this snapshot — and
// every later one — carries it as a one-line ArchiveRef (file number,
// entry count, seq range, checksum, byte length) instead of the
// entries. Fold cost and snapshot size are O(live window + refs),
// flat as history grows. Archives install under the same fsync+rename
// protocol as snapshots, before the snapshot that references them;
// open verifies referenced archives cheaply (existence + length,
// anything else fails the open as corruption), deletes unreferenced
// ones (a fold that crashed between archive install and snapshot
// install), and the full CRC is verified whenever an archive is
// actually streamed. Reads stitch cold and hot lazily: Log.All,
// ByInstance, Range and the cursor-paged Log.Page stream archives
// from disk on demand — cold history never reloads into RAM.
//
// Background folds are paced by policy (Options.FoldMinInterval,
// Options.FoldMinGarbage): a trickle of writes does not re-snapshot an
// unchanged population, and a sealed backlog below the garbage-ratio
// floor waits for more garbage. Store.Compact bypasses the policy.
//
// # Record envelopes and segment footers
//
// Every journal, snapshot and archive byte is covered by CRC32-C
// (Castagnoli, hardware-accelerated). Journal and snapshot lines are
// written inside a versioned record envelope:
//
//	#1 xxxxxxxx {json}\n     a record: 8-hex CRC32-C of the payload
//	#F xxxxxxxx {json}\n     the segment footer (see below)
//
// and a line starting with '{' is a legacy (pre-framing) record with no
// checksum — version sniffing that lets pre-upgrade data directories
// open unchanged; a reopened legacy active file simply continues with
// framed lines. When a segment is sealed (or a snapshot fold finishes)
// a footer line is appended carrying the record count, the sequence
// range, and the CRC32-C of every preceding byte of the file — so a
// sealed segment or installed snapshot verifies in one streaming pass,
// and the scrubber and fsck verify it without replaying into anything.
// Archives carry their whole-file CRC in the ArchiveRef instead (see
// archive.go).
//
// # Recovery invariants: torn tails vs. bit rot
//
// The decision rule is positional. An invalid *suffix* of the active
// file — an unterminated line, a CRC-failing or unparseable tail with
// nothing valid after it — is a torn write: the entries were never
// acknowledged, the tail is truncated before reopening so appends land
// on a record boundary, and the drop is counted in IntegrityStats. An
// invalid line *before* the last valid record is bit rot — committed
// history is damaged — and fails the open with a CorruptionError
// carrying file/offset/line/sequence detail. Sealed segments tolerate
// only a torn (unterminated) final line, and only when they carry no
// footer — the legacy crash shape where a torn active file was sealed
// by a later life; a footer makes them fully strict. Snapshots and
// archives tolerate nothing: both are fsynced before the atomic rename
// that publishes them, so any damage means the disk lied. The same
// goes for a referenced archive that is missing, resized or fails its
// CRC when read.
//
// Opt-in quarantine mode (IntegrityOptions.Quarantine) turns corruption
// from a failed open into a degraded one: before anything is applied, a
// pre-verify pass moves each damaged file aside (renamed with a
// .quarantined suffix), reports it through OnCorrupt — which the
// embedding system uses to latch read-only — and the replay then serves
// the surviving history. A background scrubber (scrub.go) re-verifies
// sealed segments, snapshots and archives while serving, bounded IO per
// tick, and the same checks run offline via Fsck (geleectl fsck).
//
// A fold deletes nothing until the new snapshot is durably installed,
// and trims no in-memory log history until then either (the fold
// image's commit hook); every crash window leaves either the old or the
// new generation intact, and the next open removes the leftovers (temp
// files, superseded snapshots, already-folded segments, unreferenced
// archives).
//
// # Read cache
//
// Repositories whose values need a defensive copy on every read (the
// facade deep-clones models and templates before handing them out) can
// opt into a per-shard LRU of prepared shared values
// (Repo.EnableReadCache + Repo.GetShared): a hit returns the cached
// immutable value and skips the copy entirely — on the measured hot
// path that is ~1.7µs of clone work replaced by a ~150ns lookup.
//
// Invalidation is write-through and total. Every mutation of a key —
// live Put/Delete (in the commit hook, before the append is
// acknowledged) and journal replay — drops the key from its shard's
// cache and bumps the shard's epoch; a cache fill snapshots the epoch
// before reading the backing map and is discarded if any invalidation
// intervened, so a read that raced a write can never re-install the
// overwritten value (see readcache.go). Paths that change records
// without going through Put/Delete — quarantine moving a corrupt file
// aside, offline fsck -repair — are covered too: quarantine triggers
// a purge of every cached repository (Repo.PurgeReadCache, via the
// facade's OnCorrupt hook — repo-level rather than the store-wide
// Store.PurgeReadCaches because the hook can fire mid-Load with the
// store mutex held), and repair happens offline, so the reopened
// process starts cold by construction. Snapshot folds don't touch the cache: a fold changes
// the journal's shape, never a repository's live values.
//
// Sizing comes from the hot-key sketch next to the cache counters in
// RepoReadStats: each shard tracks its 8 dominant read keys, and a
// cache only pays off when it comfortably covers the observed hot set,
// so the default (DefaultReadCacheEntries = 64 per shard, 8x the
// sketch) bounds a 16-shard deployment at 1024 cached values while the
// hit/miss/evict counters on GET /api/v1/admin/store tell an operator
// whether to grow it.
//
// # Degraded mode: append failures are observed, not hidden
//
// The journal is fail-forward: when an append errors (disk full,
// device gone), the in-memory mutation it framed is not rolled back —
// the caller gets the error and decides, and the repositories stay
// internally consistent. What the store adds is observation: every
// append outcome, success or failure, is reported through
// Options.OnAppendResult (and InstancesOptions.OnAppendResult for the
// instance collection). The embedding system feeds these outcomes into
// a health state machine (internal/resilience) that walks
// healthy → degraded → read-only on consecutive failures, rejecting
// new mutations at the API edge with 503 while reads keep serving,
// and probes the journal until consecutive successes walk it back.
// The store itself never blocks writes on health — the gate lives in
// front of the API, so replay, folding and recovery are unaffected.
//
// Journal lines are encoded by a hand-rolled codec (appendEntry) — the
// reflection-based marshal cost more than the write it framed — while
// replay keeps decoding with encoding/json.
//
// Lifecycle instances have their own collection, Instances: the same
// entry framing, segment rotation and snapshot folding on a dedicated
// journal directory, written through a flush-combining appender
// instead of the group-commit engine (see the Instances doc for why),
// streamed back through the runtime's replay on open — sharded across
// parallel appliers — and then discarded rather than held in memory.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"github.com/liquidpub/gelee/internal/jsonenc"
)

// Op enumerates journal entry operations.
type Op string

// Journal operations: repositories use put/delete; logs use append.
const (
	OpPut    Op = "put"
	OpDelete Op = "delete"
	OpAppend Op = "append"
)

// Entry is one journal record. Repo names entries so that a single
// journal serializes every repository's mutations in one total order.
type Entry struct {
	Seq  uint64          `json:"seq"`
	Time time.Time       `json:"ts"`
	Repo string          `json:"repo"`
	Op   Op              `json:"op"`
	ID   string          `json:"id,omitempty"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Record envelope framing (version 1): "#1 xxxxxxxx {json}\n" for a
// record, "#F xxxxxxxx {json}\n" for the segment footer, where xxxxxxxx
// is the lowercase 8-hex CRC32-C of the JSON payload. A line starting
// with '{' is a legacy unframed record — the version sniff that keeps
// pre-upgrade files readable.
const (
	frameMagic  = '#'
	frameRecord = '1'
	frameFooter = 'F'
	frameHdrLen = 12 // '#' + kind + ' ' + 8 hex digits + ' '
)

// segFooter is the seal line written at the end of a finished segment
// or snapshot file: record count, sequence range, and the CRC32-C and
// byte length of everything preceding it in the file. Replay verifies
// Records/Bytes/CRC against what it streamed; FirstSeq/LastSeq are
// informational (snapshot entries carry fold boundaries in Seq, not
// append sequences, so a range check would be meaningless there).
type segFooter struct {
	Records  int64  `json:"records"`
	FirstSeq uint64 `json:"first_seq,omitempty"`
	LastSeq  uint64 `json:"last_seq,omitempty"`
	CRC      uint32 `json:"crc"`
	Bytes    int64  `json:"bytes"`
}

// appendFrame wraps payload (one JSON document, no newline) in a v1
// record envelope: magic, kind, the payload's CRC32-C in hex, payload,
// newline.
func appendFrame(buf []byte, kind byte, payload []byte) []byte {
	buf = append(buf, frameMagic, kind, ' ')
	crc := crc32.Checksum(payload, crcTable)
	const hexdigits = "0123456789abcdef"
	for shift := 28; shift >= 0; shift -= 4 {
		buf = append(buf, hexdigits[(crc>>uint(shift))&0xf])
	}
	buf = append(buf, ' ')
	buf = append(buf, payload...)
	return append(buf, '\n')
}

// parseHex32 decodes exactly 8 lowercase hex digits.
func parseHex32(b []byte) (uint32, bool) {
	if len(b) != 8 {
		return 0, false
	}
	var v uint32
	for _, c := range b {
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// Journal is an append-only JSONL file: the write-side primitive the
// journaled engine builds group commit on. It is not itself
// goroutine-safe; the engine's single writer goroutine (or its mutex)
// serializes access.
type Journal struct {
	path string
	f    *os.File
	w    *bufio.Writer
	seq  uint64
	size int64  // bytes in the file including unflushed writes
	raw  int64  // entries written via writeRaw (snapshot files)
	buf  []byte // line-encoding scratch, reused across writeEntry calls
	line []byte // envelope scratch wrapping buf's payload
	err  error  // sticky I/O error: once the tail is suspect, stop writing

	// Framing state. framed selects v1 envelopes (plus a footer when
	// sealed); the rest is the running whole-file accounting the footer
	// seals, seeded by adoptReplay when an existing file is reopened.
	framed  bool
	fileCRC uint32 // CRC32-C over every good byte written or replayed
	records int64  // record lines in the file
	loSeq   uint64 // lowest/highest nonzero Seq in the file
	hiSeq   uint64
}

// OpenJournal opens (or creates) the journal at path for appending with
// v1 record framing. lastSeq must be the highest sequence number
// already present (as reported by ReplayJournal); new entries continue
// from there.
func OpenJournal(path string, lastSeq uint64) (*Journal, error) {
	return openJournal(path, lastSeq, true)
}

// openJournal is OpenJournal with the framing mode explicit: framed
// writes v1 envelopes and seals with a footer, unframed writes bare
// legacy lines (the benchmark baseline; replay accepts both).
func openJournal(path string, lastSeq uint64, framed bool) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	size := int64(0)
	if info, err := f.Stat(); err == nil {
		size = info.Size()
	}
	return &Journal{path: path, f: f, w: bufio.NewWriter(f), seq: lastSeq, size: size, framed: framed}, nil
}

// adoptReplay seeds the footer accounting from what replay found in an
// existing file (already truncated to fr.good), so a reopened active
// segment — even one carrying legacy unframed lines — can still be
// sealed under a correct whole-file footer.
func (j *Journal) adoptReplay(fr fileReplay) {
	j.fileCRC = fr.crc
	j.records = int64(fr.n)
	j.loSeq = fr.firstSeq
	j.hiSeq = fr.lastSeq
}

// writeEntry assigns the next sequence number to e and writes it into
// the buffered writer without flushing — batching is the caller's job.
// The line is encoded by hand (appendEntry): the reflection-based
// json.Marshal costs more than the rest of the append path combined,
// and the entry shape is fixed. Replay still decodes with
// encoding/json; the codec equivalence test pins the round trip.
// An I/O failure is sticky: the journal refuses further writes so a
// partially written line is never followed by more data (which replay
// would treat as corruption rather than a torn tail).
func (j *Journal) writeEntry(e Entry) (uint64, error) {
	if j.err != nil {
		return 0, j.err
	}
	e.Seq = j.seq + 1
	if err := j.writeLine(e); err != nil {
		j.err = fmt.Errorf("store: write journal entry: %w", err)
		return 0, j.err
	}
	j.seq = e.Seq
	return e.Seq, nil
}

// writeRaw writes e preserving its caller-assigned Seq — the snapshot
// write path, where Seq carries a fold boundary rather than the next
// append number. Like writeEntry it buffers without flushing.
func (j *Journal) writeRaw(e Entry) error {
	if j.err != nil {
		return j.err
	}
	if err := j.writeLine(e); err != nil {
		j.err = fmt.Errorf("store: write snapshot entry: %w", err)
		return j.err
	}
	j.raw++
	return nil
}

// writeLine encodes and writes one record line — framed in a v1
// envelope unless the journal runs in legacy mode — and maintains the
// running size/CRC/record accounting the segment footer seals.
func (j *Journal) writeLine(e Entry) error {
	j.buf = appendEntry(j.buf[:0], e)
	out := j.buf
	if j.framed {
		j.line = appendFrame(j.line[:0], frameRecord, j.buf[:len(j.buf)-1])
		out = j.line
	}
	n, err := j.w.Write(out)
	j.size += int64(n)
	if err != nil {
		return err
	}
	j.fileCRC = crc32.Update(j.fileCRC, crcTable, out)
	j.records++
	if e.Seq > 0 {
		if j.loSeq == 0 || e.Seq < j.loSeq {
			j.loSeq = e.Seq
		}
		if e.Seq > j.hiSeq {
			j.hiSeq = e.Seq
		}
	}
	return nil
}

// writeFooter appends the segment footer sealing everything written so
// far: record count, sequence range, whole-file CRC and byte length.
// Buffered like every write — the caller's flush/sync covers it. A
// no-op for legacy-mode or empty files; nothing may be appended after
// it (replay treats data past a footer as corruption), which the seal
// and fold paths guarantee by footer-ing only right before rename.
func (j *Journal) writeFooter() error {
	if j.err != nil {
		return j.err
	}
	if !j.framed || j.records == 0 {
		return nil
	}
	ft := segFooter{Records: j.records, FirstSeq: j.loSeq, LastSeq: j.hiSeq, CRC: j.fileCRC, Bytes: j.size}
	payload, err := json.Marshal(ft)
	if err != nil {
		return fmt.Errorf("store: encode segment footer: %w", err)
	}
	j.line = appendFrame(j.line[:0], frameFooter, payload)
	n, werr := j.w.Write(j.line)
	j.size += int64(n)
	if werr != nil {
		j.err = fmt.Errorf("store: write segment footer: %w", werr)
		return j.err
	}
	return nil
}

// Size reports the file's byte length including unflushed writes — the
// rotation trigger input.
func (j *Journal) Size() int64 { return j.size }

// Raw reports how many entries writeRaw has written.
func (j *Journal) Raw() int64 { return j.raw }

// appendEntry encodes e as one newline-terminated JSONL record,
// matching the field layout of Entry's json tags (zero times are
// omitted: a missing ts decodes to the zero time). Data must already
// be valid JSON — it always is, coming from a codec or json.Marshal.
func appendEntry(buf []byte, e Entry) []byte {
	buf = append(buf, `{"seq":`...)
	buf = strconv.AppendUint(buf, e.Seq, 10)
	if !e.Time.IsZero() {
		buf = append(buf, `,"ts":`...)
		buf = jsonenc.AppendTime(buf, e.Time)
	}
	buf = append(buf, `,"repo":`...)
	buf = jsonenc.AppendString(buf, e.Repo)
	buf = append(buf, `,"op":`...)
	buf = jsonenc.AppendString(buf, string(e.Op))
	if e.ID != "" {
		buf = append(buf, `,"id":`...)
		buf = jsonenc.AppendString(buf, e.ID)
	}
	if len(e.Data) > 0 {
		buf = append(buf, `,"data":`...)
		buf = append(buf, e.Data...)
	}
	return append(buf, '}', '\n')
}

// Append writes one entry and flushes — the unbatched path, used by
// tests and one-off writes.
func (j *Journal) Append(e Entry) (uint64, error) {
	seq, err := j.writeEntry(e)
	if err != nil {
		return 0, err
	}
	if err := j.Flush(); err != nil {
		return 0, err
	}
	return seq, nil
}

// Flush pushes buffered writes to the OS.
func (j *Journal) Flush() error {
	if j.err != nil {
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		j.err = fmt.Errorf("store: flush journal: %w", err)
		return j.err
	}
	return nil
}

// Sync fsyncs the journal file — one call per group-commit batch in
// durable mode.
func (j *Journal) Sync() error {
	if j.err != nil {
		return j.err
	}
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("store: sync journal: %w", err)
		return j.err
	}
	return nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return fmt.Errorf("store: flush on close: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("store: close journal: %w", err)
	}
	return nil
}

// Seq returns the sequence number of the last written entry.
func (j *Journal) Seq() uint64 { return j.seq }

// ErrCorrupt is the sentinel wrapped by every corruption verdict: a
// damaged record before the last valid one, a broken segment footer, a
// torn snapshot, a referenced archive that is missing, resized or fails
// its CRC. Match with errors.Is; the concrete error is usually a
// *CorruptionError carrying file/offset detail.
var ErrCorrupt = errors.New("store: corrupt journal record")

// CorruptionError reports where mid-file damage was found. It wraps
// ErrCorrupt, so errors.Is(err, ErrCorrupt) keeps matching.
type CorruptionError struct {
	Path    string // file the damage was found in
	Offset  int64  // byte offset where the bad data starts
	Line    int    // 1-based line number of the bad record
	LastSeq uint64 // highest sequence read successfully before the damage
	Detail  string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("%v: %s: line %d @ offset %d (last good seq %d): %s",
		ErrCorrupt, filepath.Base(e.Path), e.Line, e.Offset, e.LastSeq, e.Detail)
}

func (e *CorruptionError) Unwrap() error { return ErrCorrupt }

// replayPolicy selects the torn-tail-vs-corruption verdict for one file
// kind (see the package doc's decision rule).
type replayPolicy int

const (
	// replayActive: an invalid suffix is a torn tail (truncate, count);
	// an invalid line before the last valid record is corruption.
	replayActive replayPolicy = iota
	// replaySealed: strict, except a torn (unterminated) final line in
	// a footer-less legacy segment — a crash tail sealed by a later
	// life — which is dropped.
	replaySealed
	// replaySnapshot: fully strict; snapshots are fsynced before the
	// rename that publishes them, so any damage means the disk lied.
	replaySnapshot
)

// fileReplay is what one file's replay found: record count, sequence
// range, the offset where valid data ends (excluding any footer and
// torn tail), the running CRC over those good bytes, the verified
// footer if one was present, and how many trailing bytes were dropped
// as a torn tail.
type fileReplay struct {
	n        int
	firstSeq uint64
	lastSeq  uint64
	good     int64
	crc      uint32
	size     int64
	torn     int64
	footer   *segFooter
}

// parseJournalLine decodes one non-empty journal line: a framed v1
// record or footer, or a legacy bare-JSON record (version sniff on the
// first byte). A non-empty detail means the line is invalid — malformed
// envelope, CRC mismatch, or undecodable JSON; the torn-vs-corrupt
// verdict is the caller's, since it depends on the file kind and the
// line's position.
func parseJournalLine(trimmed []byte) (*Entry, *segFooter, string) {
	if trimmed[0] == frameMagic {
		if len(trimmed) <= frameHdrLen || trimmed[2] != ' ' || trimmed[frameHdrLen-1] != ' ' {
			return nil, nil, "malformed record envelope"
		}
		want, ok := parseHex32(trimmed[3 : frameHdrLen-1])
		if !ok {
			return nil, nil, "malformed envelope checksum"
		}
		payload := trimmed[frameHdrLen:]
		if got := crc32.Checksum(payload, crcTable); got != want {
			return nil, nil, fmt.Sprintf("record CRC mismatch (computed %08x, recorded %08x)", got, want)
		}
		switch trimmed[1] {
		case frameRecord:
			var e Entry
			if err := json.Unmarshal(payload, &e); err != nil {
				return nil, nil, fmt.Sprintf("undecodable record: %v", err)
			}
			return &e, nil, ""
		case frameFooter:
			var ft segFooter
			if err := json.Unmarshal(payload, &ft); err != nil {
				return nil, nil, fmt.Sprintf("undecodable segment footer: %v", err)
			}
			return nil, &ft, ""
		default:
			return nil, nil, fmt.Sprintf("unknown envelope kind %q", trimmed[1])
		}
	}
	var e Entry
	if err := json.Unmarshal(trimmed, &e); err != nil {
		return nil, nil, fmt.Sprintf("undecodable record: %v", err)
	}
	return &e, nil, ""
}

// replayJournalFile streams one file's entries through fn in order,
// verifying per-record CRCs and the segment footer when present, and
// applying the policy's torn-tail-vs-corruption rule. fn may be nil to
// verify without applying (the scrubber and fsck). A missing file
// replays zero entries. Callers replaying an active file must truncate
// it to fr.good before reopening it for appends — that cuts both a torn
// tail and a footer left by a seal that crashed before its rename.
func replayJournalFile(path string, policy replayPolicy, fn func(Entry) error) (fileReplay, error) {
	var fr fileReplay
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return fr, nil
		}
		return fr, fmt.Errorf("store: open journal for replay: %w", err)
	}
	defer f.Close()

	r := bufio.NewReaderSize(f, 1<<16)
	lineNo := 0
	offset := int64(0)
	footerEnd := int64(-1)
	badOff := int64(-1) // first invalid line (active policy's suffix scan)
	var badLine int
	var badDetail string
	corrupt := func(off int64, line int, detail string) error {
		return &CorruptionError{Path: path, Offset: off, Line: line, LastSeq: fr.lastSeq, Detail: detail}
	}
	for {
		line, readErr := r.ReadBytes('\n')
		atEOF := errors.Is(readErr, io.EOF)
		if readErr != nil && !atEOF {
			return fr, fmt.Errorf("store: read journal: %w", readErr)
		}
		lineStart := offset
		offset += int64(len(line))
		fr.size = offset
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			lineNo++
			terminated := bytes.HasSuffix(line, []byte{'\n'})
			e, ft, detail := parseJournalLine(trimmed)
			if detail == "" && !terminated {
				// A record is only valid when newline-terminated: an
				// unterminated final line — even one that parses — is a
				// write cut short before its flush completed, so the
				// entry was never acknowledged.
				detail = "unterminated final record"
			}
			switch {
			case detail != "":
				if badOff < 0 {
					badOff, badLine, badDetail = lineStart, lineNo, detail
				}
				switch policy {
				case replaySnapshot:
					return fr, corrupt(badOff, badLine, badDetail)
				case replaySealed:
					if atEOF && !terminated && footerEnd < 0 {
						fr.torn = offset - badOff // legacy crash tail sealed later
						return fr, nil
					}
					return fr, corrupt(badOff, badLine, badDetail)
				}
				// Active file: keep scanning — an invalid suffix is a torn
				// tail, but any valid line after it proves mid-file damage.
			case badOff >= 0:
				return fr, corrupt(badOff, badLine, badDetail)
			case footerEnd >= 0:
				return fr, corrupt(lineStart, lineNo, "data after segment footer")
			case ft != nil:
				if ft.Records != int64(fr.n) || ft.Bytes != fr.good || ft.CRC != fr.crc {
					return fr, corrupt(lineStart, lineNo, fmt.Sprintf(
						"segment footer mismatch: streamed %d records / %d bytes / crc %08x, footer sealed %d / %d / %08x",
						fr.n, fr.good, fr.crc, ft.Records, ft.Bytes, ft.CRC))
				}
				fr.footer = ft
				footerEnd = offset
			default:
				if fn != nil {
					if fnErr := fn(*e); fnErr != nil {
						return fr, fnErr
					}
				}
				fr.n++
				if e.Seq > 0 && (fr.firstSeq == 0 || e.Seq < fr.firstSeq) {
					fr.firstSeq = e.Seq
				}
				if e.Seq > fr.lastSeq {
					fr.lastSeq = e.Seq
				}
				fr.crc = crc32.Update(fr.crc, crcTable, line)
				fr.good = offset
			}
		}
		if atEOF {
			if badOff >= 0 {
				fr.torn = offset - badOff
			}
			return fr, nil
		}
	}
}

// ReplayJournal streams every entry of the journal at path through fn
// in order under the active-file policy, returning the count replayed,
// the highest sequence seen, and the byte offset where valid data ends
// (which callers reopening the file for appends must truncate to).
func ReplayJournal(path string, fn func(Entry) error) (n int, lastSeq uint64, goodBytes int64, err error) {
	fr, err := replayJournalFile(path, replayActive, fn)
	return fr.n, fr.lastSeq, fr.good, err
}
