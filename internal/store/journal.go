// Package store implements the data tier of the Gelee architecture
// (Fig. 2, bottom layer): the repositories for users and roles, resource
// and action definitions, lifecycle templates, and the execution log.
//
// The tier is layered. Repositories (Repo, Log) hold typed in-memory
// state, lock-striped across N shards keyed by resource ID so that
// concurrent mutations of different resources never contend. Every
// mutation is journaled through the Store's pluggable Engine before it
// is applied. The default persistent engine (NewJournalEngine) is a
// segmented append-only JSONL journal with a group-commit writer: a
// background goroutine batches concurrent appends into a single write
// (+ a single fsync in durable mode) and acknowledges each appender
// through a per-entry done channel — turning N fsyncs into one without
// giving up the durability contract, since no append is acknowledged
// before its batch is on disk. An in-memory engine (NewMemoryEngine)
// backs tests and embedded use.
//
// # Segments, snapshots, and folding
//
// A journal directory holds one generation of a segmented log:
//
//	gelee.journal          active segment — all appends land here
//	journal.NNNNNN.jsonl   sealed segments, immutable, NNNNNN ascending
//	snapshot.NNNNNN.jsonl  snapshot folding the state of segments 1..NNNNNN
//	archive.NNNNNN.jsonl   immutable, CRC-summed cold log history
//	*.jsonl.tmp            in-progress fold — ignored and removed on open
//
// When the active segment exceeds SegmentMaxBytes (or on demand) it is
// sealed: flushed, fsynced, renamed to the next sealed name and
// replaced with a fresh active file — an O(1) rename/create under the
// appender lock, so writers never block on compaction. A background
// folder then compacts sealed segments into a snapshot of the live
// state (repositories contribute their last-writer-wins image, the
// instance collection typed per-instance snapshot records) and deletes
// the folded segments. Restart replay is therefore O(snapshot + tail
// segments), not O(all history ever written): Load streams the newest
// snapshot, then the uncovered sealed segments in order, then the
// active file — fanned out across parallel appliers sharded by
// (part, key), so per-key order is exactly the sequential order.
//
// Snapshot entries record a fold boundary in their Seq field — the
// journal sequence up to which their bucket (a repository name, or an
// instance id) is already captured. Tail entries at or below that
// boundary are skipped on replay; this is what makes folding safe for
// non-idempotent buckets (logs, instance records) while writers keep
// appending mid-fold. Store.Compact survives as seal-then-fold, so
// compaction no longer excludes writers.
//
// # Hot/cold log history: fold-by-reference archives
//
// Logs are append-only history, so "live state" would otherwise mean
// everything ever logged — every fold rewriting all of it into the new
// snapshot, compaction I/O and snapshot size growing without bound as
// a deployment ages. Instead a log keeps only its newest entries (the
// configured live window) hot: when a fold finds the window exceeded,
// the overflow is written once into an immutable archive file
// (archive.NNNNNN.jsonl, CRC32-C summed), and this snapshot — and
// every later one — carries it as a one-line ArchiveRef (file number,
// entry count, seq range, checksum, byte length) instead of the
// entries. Fold cost and snapshot size are O(live window + refs),
// flat as history grows. Archives install under the same fsync+rename
// protocol as snapshots, before the snapshot that references them;
// open verifies referenced archives cheaply (existence + length,
// anything else fails the open as corruption), deletes unreferenced
// ones (a fold that crashed between archive install and snapshot
// install), and the full CRC is verified whenever an archive is
// actually streamed. Reads stitch cold and hot lazily: Log.All,
// ByInstance, Range and the cursor-paged Log.Page stream archives
// from disk on demand — cold history never reloads into RAM.
//
// Background folds are paced by policy (Options.FoldMinInterval,
// Options.FoldMinGarbage): a trickle of writes does not re-snapshot an
// unchanged population, and a sealed backlog below the garbage-ratio
// floor waits for more garbage. Store.Compact bypasses the policy.
//
// # Recovery invariants
//
// A torn final line in the active file or in a sealed segment (a crash
// mid-write, including mid-batch) is dropped silently — such entries
// were never acknowledged. The active file's torn tail is truncated
// before reopening so appends land on a record boundary. A malformed
// line *followed by more data* is real corruption and fails the open,
// as does a torn snapshot — snapshots are fsynced before the atomic
// rename that publishes them, so a damaged one means the disk lied;
// the same goes for a referenced archive that is missing, resized or
// fails its CRC when read. A fold deletes nothing until the new
// snapshot is durably installed, and trims no in-memory log history
// until then either (the fold image's commit hook); every crash window
// leaves either the old or the new generation intact, and the next
// open removes the leftovers (temp files, superseded snapshots,
// already-folded segments, unreferenced archives).
//
// # Degraded mode: append failures are observed, not hidden
//
// The journal is fail-forward: when an append errors (disk full,
// device gone), the in-memory mutation it framed is not rolled back —
// the caller gets the error and decides, and the repositories stay
// internally consistent. What the store adds is observation: every
// append outcome, success or failure, is reported through
// Options.OnAppendResult (and InstancesOptions.OnAppendResult for the
// instance collection). The embedding system feeds these outcomes into
// a health state machine (internal/resilience) that walks
// healthy → degraded → read-only on consecutive failures, rejecting
// new mutations at the API edge with 503 while reads keep serving,
// and probes the journal until consecutive successes walk it back.
// The store itself never blocks writes on health — the gate lives in
// front of the API, so replay, folding and recovery are unaffected.
//
// Journal lines are encoded by a hand-rolled codec (appendEntry) — the
// reflection-based marshal cost more than the write it framed — while
// replay keeps decoding with encoding/json.
//
// Lifecycle instances have their own collection, Instances: the same
// entry framing, segment rotation and snapshot folding on a dedicated
// journal directory, written through a flush-combining appender
// instead of the group-commit engine (see the Instances doc for why),
// streamed back through the runtime's replay on open — sharded across
// parallel appliers — and then discarded rather than held in memory.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"github.com/liquidpub/gelee/internal/jsonenc"
)

// Op enumerates journal entry operations.
type Op string

// Journal operations: repositories use put/delete; logs use append.
const (
	OpPut    Op = "put"
	OpDelete Op = "delete"
	OpAppend Op = "append"
)

// Entry is one journal record. Repo names entries so that a single
// journal serializes every repository's mutations in one total order.
type Entry struct {
	Seq  uint64          `json:"seq"`
	Time time.Time       `json:"ts"`
	Repo string          `json:"repo"`
	Op   Op              `json:"op"`
	ID   string          `json:"id,omitempty"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Journal is an append-only JSONL file: the write-side primitive the
// journaled engine builds group commit on. It is not itself
// goroutine-safe; the engine's single writer goroutine (or its mutex)
// serializes access.
type Journal struct {
	path string
	f    *os.File
	w    *bufio.Writer
	seq  uint64
	size int64  // bytes in the file including unflushed writes
	raw  int64  // entries written via writeRaw (snapshot files)
	buf  []byte // line-encoding scratch, reused across writeEntry calls
	err  error  // sticky I/O error: once the tail is suspect, stop writing
}

// OpenJournal opens (or creates) the journal at path for appending.
// lastSeq must be the highest sequence number already present (as
// reported by ReplayJournal); new entries continue from there.
func OpenJournal(path string, lastSeq uint64) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	size := int64(0)
	if info, err := f.Stat(); err == nil {
		size = info.Size()
	}
	return &Journal{path: path, f: f, w: bufio.NewWriter(f), seq: lastSeq, size: size}, nil
}

// writeEntry assigns the next sequence number to e and writes it into
// the buffered writer without flushing — batching is the caller's job.
// The line is encoded by hand (appendEntry): the reflection-based
// json.Marshal costs more than the rest of the append path combined,
// and the entry shape is fixed. Replay still decodes with
// encoding/json; the codec equivalence test pins the round trip.
// An I/O failure is sticky: the journal refuses further writes so a
// partially written line is never followed by more data (which replay
// would treat as corruption rather than a torn tail).
func (j *Journal) writeEntry(e Entry) (uint64, error) {
	if j.err != nil {
		return 0, j.err
	}
	e.Seq = j.seq + 1
	j.buf = appendEntry(j.buf[:0], e)
	n, err := j.w.Write(j.buf)
	j.size += int64(n)
	if err != nil {
		j.err = fmt.Errorf("store: write journal entry: %w", err)
		return 0, j.err
	}
	j.seq = e.Seq
	return e.Seq, nil
}

// writeRaw writes e preserving its caller-assigned Seq — the snapshot
// write path, where Seq carries a fold boundary rather than the next
// append number. Like writeEntry it buffers without flushing.
func (j *Journal) writeRaw(e Entry) error {
	if j.err != nil {
		return j.err
	}
	j.buf = appendEntry(j.buf[:0], e)
	n, err := j.w.Write(j.buf)
	j.size += int64(n)
	if err != nil {
		j.err = fmt.Errorf("store: write snapshot entry: %w", err)
		return j.err
	}
	j.raw++
	return nil
}

// Size reports the file's byte length including unflushed writes — the
// rotation trigger input.
func (j *Journal) Size() int64 { return j.size }

// Raw reports how many entries writeRaw has written.
func (j *Journal) Raw() int64 { return j.raw }

// appendEntry encodes e as one newline-terminated JSONL record,
// matching the field layout of Entry's json tags (zero times are
// omitted: a missing ts decodes to the zero time). Data must already
// be valid JSON — it always is, coming from a codec or json.Marshal.
func appendEntry(buf []byte, e Entry) []byte {
	buf = append(buf, `{"seq":`...)
	buf = strconv.AppendUint(buf, e.Seq, 10)
	if !e.Time.IsZero() {
		buf = append(buf, `,"ts":`...)
		buf = jsonenc.AppendTime(buf, e.Time)
	}
	buf = append(buf, `,"repo":`...)
	buf = jsonenc.AppendString(buf, e.Repo)
	buf = append(buf, `,"op":`...)
	buf = jsonenc.AppendString(buf, string(e.Op))
	if e.ID != "" {
		buf = append(buf, `,"id":`...)
		buf = jsonenc.AppendString(buf, e.ID)
	}
	if len(e.Data) > 0 {
		buf = append(buf, `,"data":`...)
		buf = append(buf, e.Data...)
	}
	return append(buf, '}', '\n')
}

// Append writes one entry and flushes — the unbatched path, used by
// tests and one-off writes.
func (j *Journal) Append(e Entry) (uint64, error) {
	seq, err := j.writeEntry(e)
	if err != nil {
		return 0, err
	}
	if err := j.Flush(); err != nil {
		return 0, err
	}
	return seq, nil
}

// Flush pushes buffered writes to the OS.
func (j *Journal) Flush() error {
	if j.err != nil {
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		j.err = fmt.Errorf("store: flush journal: %w", err)
		return j.err
	}
	return nil
}

// Sync fsyncs the journal file — one call per group-commit batch in
// durable mode.
func (j *Journal) Sync() error {
	if j.err != nil {
		return j.err
	}
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("store: sync journal: %w", err)
		return j.err
	}
	return nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return fmt.Errorf("store: flush on close: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("store: close journal: %w", err)
	}
	return nil
}

// Seq returns the sequence number of the last written entry.
func (j *Journal) Seq() uint64 { return j.seq }

// ErrCorrupt is wrapped by ReplayJournal when it finds a malformed
// record before the final line of the file.
var ErrCorrupt = errors.New("store: corrupt journal record")

// ReplayJournal streams every entry of the journal at path through fn
// in order, returning the count replayed, the highest sequence seen,
// and the byte offset where valid data ends.
//
// Recovery semantics: a malformed or truncated *final* line is treated
// as a torn write and dropped silently — this covers both a torn single
// append and a batch cut short mid-write, since a batch is one
// contiguous buffered write whose tail is the only damage a crash can
// do. The returned goodBytes excludes the torn tail; appenders must
// truncate to it before reopening, or the next append would weld onto
// the torn line and turn a recoverable tail into mid-file corruption.
// A malformed line followed by more data means real corruption and
// returns ErrCorrupt (wrapped). A missing file replays zero entries.
func ReplayJournal(path string, fn func(Entry) error) (n int, lastSeq uint64, goodBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, 0, 0, nil
		}
		return 0, 0, 0, fmt.Errorf("store: open journal for replay: %w", err)
	}
	defer f.Close()

	r := bufio.NewReaderSize(f, 1<<16)
	lineNo := 0
	offset := int64(0)
	for {
		line, readErr := r.ReadBytes('\n')
		atEOF := errors.Is(readErr, io.EOF)
		if readErr != nil && !atEOF {
			return n, lastSeq, goodBytes, fmt.Errorf("store: read journal: %w", readErr)
		}
		offset += int64(len(line))
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			lineNo++
			// A record is only valid when newline-terminated: an
			// unterminated final line — even one that happens to parse —
			// is a batch cut short before its flush completed, so the
			// entry was never acknowledged and is dropped.
			if atEOF && !bytes.HasSuffix(line, []byte{'\n'}) {
				return n, lastSeq, goodBytes, nil // torn final write: drop it
			}
			var e Entry
			if jsonErr := json.Unmarshal(trimmed, &e); jsonErr != nil {
				if atEOF {
					return n, lastSeq, goodBytes, nil // torn final write: drop it
				}
				return n, lastSeq, goodBytes, fmt.Errorf("%w: line %d: %v", ErrCorrupt, lineNo, jsonErr)
			}
			if fnErr := fn(e); fnErr != nil {
				return n, lastSeq, goodBytes, fnErr
			}
			n++
			if e.Seq > lastSeq {
				lastSeq = e.Seq
			}
		}
		goodBytes = offset
		if atEOF {
			return n, lastSeq, goodBytes, nil
		}
	}
}
