package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// openSegStore opens a store with aggressive segment rotation so tests
// hit seals without writing megabytes.
func openSegStore(t *testing.T, dir string, maxBytes int64) (*Store, *Repo[doc]) {
	t.Helper()
	s, err := Open(dir, Options{SegmentMaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	repo := MustRepo[doc](s, "docs")
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}
	return s, repo
}

// listNames returns the journal-ish file names in dir, sorted by
// ReadDir order, for layout assertions.
func listNames(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range des {
		names = append(names, de.Name())
	}
	return names
}

// TestSegmentRotationPersistsAcrossReopen drives enough writes through
// a tiny segment bound that the active file rotates several times, and
// expects sealed segment files on disk, correct live state, and a
// faithful replay across reopen.
func TestSegmentRotationPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, repo := openSegStore(t, dir, 512)
	for i := 0; i < 40; i++ {
		if err := repo.Put(fmt.Sprintf("k%02d", i%10), doc{Title: strings.Repeat("x", 40), Rev: i}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Engine.Rotations == 0 {
		t.Fatalf("no rotations despite tiny segment bound: %+v", st.Engine)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, repo2 := openSegStore(t, dir, 512)
	defer s2.Close()
	for i := 30; i < 40; i++ {
		got, ok := repo2.Get(fmt.Sprintf("k%02d", i%10))
		if !ok || got.Rev != i {
			t.Fatalf("replayed k%02d = %+v, %t want rev %d", i%10, got, ok, i)
		}
	}
	// Sequence numbering continues across segments and reopen.
	if err := repo2.Put("after", doc{Title: "y"}); err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().Engine.LastSeq; got <= 40 {
		t.Fatalf("sequence restarted: %d", got)
	}
}

// TestCompactSealThenFoldBoundsReplay is the acceptance test for the
// store side: after Compact (seal+fold), a reopen replays only the
// snapshot plus whatever was appended since — the replayed-entry count
// stops growing with history.
func TestCompactSealThenFoldBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	s, repo := openSegStore(t, dir, 0)
	log := MustLog(s, "execlog")
	churn := func(n int) {
		for i := 0; i < n; i++ {
			if err := repo.Put("hot", doc{Title: "spam", Rev: i}); err != nil {
				t.Fatal(err)
			}
		}
	}
	churn(100)
	for i := 0; i < 5; i++ {
		if _, err := log.Append(LogEntry{Instance: "i1", Kind: "tick"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	replayTotal := func() (ReplayStats, *Store, *Repo[doc], *Log) {
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		repo := MustRepo[doc](s, "docs")
		log := MustLog(s, "execlog")
		if err := s.Load(); err != nil {
			t.Fatal(err)
		}
		return s.Stats().Engine.Replay, s, repo, log
	}

	rs, s2, repo2, log2 := replayTotal()
	first := rs.SnapshotEntries + rs.TailEntries
	// 1 live doc + 5 log entries in the snapshot; nothing in the tail.
	if rs.SnapshotEntries != 6 || rs.TailEntries != 0 {
		t.Fatalf("first reopen replayed %+v, want 6 snapshot + 0 tail", rs)
	}
	if got, ok := repo2.Get("hot"); !ok || got.Rev != 99 {
		t.Fatalf("post-fold value = %+v, %t", got, ok)
	}
	if log2.Len() != 5 {
		t.Fatalf("log after fold = %d entries, want 5", log2.Len())
	}

	// Ten times more churn + another compact: replay cost must not grow.
	for i := 0; i < 1000; i++ {
		if err := repo2.Put("hot", doc{Title: "spam", Rev: 100 + i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	rs, s3, repo3, log3 := replayTotal()
	defer s3.Close()
	if got := rs.SnapshotEntries + rs.TailEntries; got != first {
		t.Fatalf("replay grew with history: %d entries after 10x churn, want %d (%+v)", got, first, rs)
	}
	if got, _ := repo3.Get("hot"); got.Rev != 1099 {
		t.Fatalf("value after second fold = %+v", got)
	}
	if log3.Len() != 5 {
		t.Fatalf("log duplicated across folds: %d entries", log3.Len())
	}
}

// TestFoldDoesNotBlockAppends proves the compaction-without-stopping-
// writers claim at the engine layer: while a fold is in flight (its
// live-image capture parked on a gate), appends keep committing.
func TestFoldDoesNotBlockAppends(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewJournalEngine(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Replay(func(Entry) error { return nil }); err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Append(Entry{Repo: "docs", Op: OpPut, ID: "a", Data: json.RawMessage(`{}`)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Seal(); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	foldDone := make(chan error, 1)
	go func() {
		foldDone <- eng.Fold(func(Archiver) FoldImage {
			close(entered)
			<-release
			return FoldImage{Entries: []Entry{{Repo: "docs", Op: OpPut, ID: "a", Data: json.RawMessage(`{}`)}}}
		})
	}()
	<-entered

	appendDone := make(chan error, 1)
	go func() {
		_, err := eng.Append(Entry{Repo: "docs", Op: OpPut, ID: "b", Data: json.RawMessage(`{}`)}, nil)
		appendDone <- err
	}()
	select {
	case err := <-appendDone:
		if err != nil {
			t.Fatalf("append during fold failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append blocked behind an in-flight fold")
	}
	close(release)
	if err := <-foldDone; err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Folds != 1 || st.SealedSegments != 0 {
		t.Fatalf("fold accounting: %+v", st)
	}
}

// TestSealWaitsForPendingApplies pins the "sealed implies applied"
// invariant: a batch whose entries are on disk but whose onCommit
// applications are still running must not be sealable — otherwise a
// fold racing in between would capture a live image missing those
// entries and delete the segment holding their only copy. The slow
// onCommit below parks mid-apply; Seal+Fold must wait it out and the
// fold image must include the entry.
func TestSealWaitsForPendingApplies(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewJournalEngine(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Replay(func(Entry) error { return nil }); err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	var mu sync.Mutex
	applied := false
	applyStarted := make(chan struct{})
	appendDone := make(chan error, 1)
	go func() {
		_, err := eng.Append(Entry{Repo: "docs", Op: OpPut, ID: "a", Data: json.RawMessage(`{}`)}, func(uint64) {
			close(applyStarted)
			time.Sleep(100 * time.Millisecond) // widen the window a racing fold would need
			mu.Lock()
			applied = true
			mu.Unlock()
		})
		appendDone <- err
	}()
	<-applyStarted

	// The entry is durable but its apply is mid-flight: seal + fold now.
	if err := eng.Seal(); err != nil {
		t.Fatal(err)
	}
	var sawApplied bool
	if err := eng.Fold(func(Archiver) FoldImage {
		mu.Lock()
		sawApplied = applied
		mu.Unlock()
		return FoldImage{Entries: []Entry{{Repo: "docs", Op: OpPut, ID: "a", Data: json.RawMessage(`{}`)}}}
	}); err != nil {
		t.Fatal(err)
	}
	if !sawApplied {
		t.Fatal("fold captured a live image missing a sealed entry's pending apply — durable write would be lost")
	}
	if err := <-appendDone; err != nil {
		t.Fatal(err)
	}
}

// TestFoldOverlapDoesNotDuplicateLogs pins the fold-boundary skip: the
// live image is captured after the boundary, so entries appended to
// the active segment between seal and capture land in BOTH the
// snapshot and the tail — replay must apply them exactly once. Logs
// are the part that would double without the skip.
func TestFoldOverlapDoesNotDuplicateLogs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	log := MustLog(s, "execlog")
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := log.Append(LogEntry{Instance: "i1", Kind: "pre"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.engine.Seal(); err != nil {
		t.Fatal(err)
	}
	// These land in the fresh active segment AND in the snapshot the
	// fold below captures.
	for i := 0; i < 4; i++ {
		if _, err := log.Append(LogEntry{Instance: "i1", Kind: "overlap"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.fold(true); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	log2 := MustLog(s2, "execlog")
	if err := s2.Load(); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if log2.Len() != 9 {
		t.Fatalf("log replayed %d entries, want 9 (folded overlap must be skipped, not doubled)", log2.Len())
	}
	rs := s2.Stats().Engine.Replay
	if rs.SkippedEntries != 4 {
		t.Fatalf("skipped = %d, want the 4 overlap entries (%+v)", rs.SkippedEntries, rs)
	}
	// And the sequence numbering continued cleanly.
	if seq, err := log2.Append(LogEntry{Instance: "i1", Kind: "post"}); err != nil || seq != 10 {
		t.Fatalf("append after overlap replay: seq %d err %v, want 10", seq, err)
	}
}

// TestTornTailInSealedSegment crafts the crash shape the rotation
// introduces: a sealed (non-active) segment whose final line is torn.
// Replay must keep the segment's complete records, drop the torn line
// silently, and keep every later segment's records.
func TestTornTailInSealedSegment(t *testing.T) {
	dir := t.TempDir()
	seg1 := "{\"seq\":1,\"repo\":\"docs\",\"op\":\"put\",\"id\":\"a\",\"data\":{\"title\":\"keep\",\"rev\":1}}\n" +
		"{\"seq\":2,\"repo\":\"docs\",\"op\":\"put\",\"id\":\"b\",\"data\":{\"title\":\"torn\",\"rev\":1}" // no newline: torn
	active := "{\"seq\":3,\"repo\":\"docs\",\"op\":\"put\",\"id\":\"c\",\"data\":{\"title\":\"tail\",\"rev\":1}}\n"
	if err := os.WriteFile(filepath.Join(dir, sealedName(1)), []byte(seg1), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(active), 0o644); err != nil {
		t.Fatal(err)
	}

	s, repo := openSegStore(t, dir, 0)
	if _, ok := repo.Get("a"); !ok {
		t.Fatal("complete record in sealed segment lost")
	}
	if _, ok := repo.Get("b"); ok {
		t.Fatal("torn sealed-segment record applied")
	}
	if _, ok := repo.Get("c"); !ok {
		t.Fatal("record after torn sealed segment lost")
	}
	// Still writable, and a second replay stays clean.
	if err := repo.Put("d", doc{Title: "after"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, repo2 := openSegStore(t, dir, 0)
	defer s2.Close()
	for _, id := range []string{"a", "c", "d"} {
		if _, ok := repo2.Get(id); !ok {
			t.Fatalf("%s lost on second replay", id)
		}
	}
}

// TestCrashBetweenSealAndFold kills the process (simulated: no fold,
// no clean close beyond the flush) after a seal. Reopen must replay
// the sealed segment plus the active file — nothing lost — and a later
// Compact must fold the leftovers.
func TestCrashBetweenSealAndFold(t *testing.T) {
	dir := t.TempDir()
	s, repo := openSegStore(t, dir, 0)
	for i := 0; i < 10; i++ {
		if err := repo.Put(fmt.Sprintf("k%d", i), doc{Rev: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.engine.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := repo.Put("post-seal", doc{Rev: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // "crash": sealed segment never folded
		t.Fatal(err)
	}

	s2, repo2 := openSegStore(t, dir, 0)
	rs := s2.Stats().Engine.Replay
	if rs.Segments != 1 || rs.TailEntries != 11 {
		t.Fatalf("reopen after seal-without-fold replayed %+v, want 1 segment, 11 tail entries", rs)
	}
	for i := 0; i < 10; i++ {
		if _, ok := repo2.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d lost across seal-without-fold crash", i)
		}
	}
	if _, ok := repo2.Get("post-seal"); !ok {
		t.Fatal("post-seal record lost")
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, _ := openSegStore(t, dir, 0)
	defer s3.Close()
	if rs := s3.Stats().Engine.Replay; rs.Segments != 0 || rs.SnapshotEntries != 11 {
		t.Fatalf("after fold: %+v, want all 11 live entries from the snapshot", rs)
	}
}

// TestPartialSnapshotIgnored simulates a crash mid-snapshot-write: the
// temp file exists but was never renamed. Reopen must ignore (and
// remove) it and replay the full segment set as if the fold never
// started.
func TestPartialSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	s, repo := openSegStore(t, dir, 0)
	for i := 0; i < 8; i++ {
		if err := repo.Put(fmt.Sprintf("k%d", i), doc{Rev: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.engine.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A fold died mid-write: a garbage temp snapshot next to intact
	// segments.
	tmp := filepath.Join(dir, snapName(1)+".tmp")
	if err := os.WriteFile(tmp, []byte("{\"seq\":1,\"repo\":\"docs\",\"op\":\"put\",\"id\":\"k0\",\"da"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, repo2 := openSegStore(t, dir, 0)
	defer s2.Close()
	for i := 0; i < 8; i++ {
		if _, ok := repo2.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d lost to a partial snapshot", i)
		}
	}
	if rs := s2.Stats().Engine.Replay; rs.SnapshotEntries != 0 || rs.TailEntries != 8 {
		t.Fatalf("partial snapshot was not ignored: %+v", rs)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("partial snapshot temp file not removed")
	}
}

// TestFoldCrashAfterInstallCleansStaleSegments simulates a crash after
// the snapshot rename but before the folded segments were deleted:
// both generations on disk. Reopen must prefer the snapshot, ignore
// the stale folded segment (replaying it would resurrect overwritten
// state), and remove it.
func TestFoldCrashAfterInstallCleansStaleSegments(t *testing.T) {
	dir := t.TempDir()
	// Stale folded segment: k=v1. Snapshot (newer): k=v2.
	seg := "{\"seq\":1,\"repo\":\"docs\",\"op\":\"put\",\"id\":\"k\",\"data\":{\"title\":\"v1\",\"rev\":1}}\n"
	snap := "{\"seq\":1,\"repo\":\"docs\",\"op\":\"put\",\"id\":\"k\",\"data\":{\"title\":\"v2\",\"rev\":2}}\n"
	if err := os.WriteFile(filepath.Join(dir, sealedName(1)), []byte(seg), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName(1)), []byte(snap), 0o644); err != nil {
		t.Fatal(err)
	}
	s, repo := openSegStore(t, dir, 0)
	defer s.Close()
	got, ok := repo.Get("k")
	if !ok || got.Title != "v2" {
		t.Fatalf("replay preferred the stale generation: %+v, %t", got, ok)
	}
	for _, name := range listNames(t, dir) {
		if name == sealedName(1) {
			t.Fatal("stale folded segment not cleaned up")
		}
	}
}

// TestAutoFoldRunsInBackground checks the end-to-end wiring: with a
// tiny segment bound, plain writes alone must eventually rotate, fold
// in the background, and bound the on-disk generation — no explicit
// Compact call.
func TestAutoFoldRunsInBackground(t *testing.T) {
	dir := t.TempDir()
	s, repo := openSegStore(t, dir, 512)
	defer s.Close()
	for i := 0; i < 200; i++ {
		if err := repo.Put("hot", doc{Title: strings.Repeat("x", 40), Rev: i}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats().Engine
		if st.Folds > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background folder never folded: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestInstancesFoldBoundsReplay is the instance-side acceptance test:
// a snapshot source folds per-id state, and reopen streams only the
// snapshot records plus the unfolded tail — per-id record order
// preserved, folded records skipped, count bounded as history grows.
func TestInstancesFoldBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	const ids = 4

	// Test-side "runtime": per-id counters rebuilt from records. A
	// record {"add":n} adds n; a snapshot record {"sum":s} resets to s.
	type state struct {
		mu  sync.Mutex
		sum map[string]int
	}
	live := &state{sum: make(map[string]int)}
	apply := func(st *state) func(id string, data []byte) error {
		return func(id string, data []byte) error {
			var rec struct {
				Add  int  `json:"add"`
				Sum  *int `json:"sum"`
				Snap bool `json:"snap"`
			}
			if err := json.Unmarshal(data, &rec); err != nil {
				return err
			}
			st.mu.Lock()
			defer st.mu.Unlock()
			if rec.Sum != nil {
				st.sum[id] = *rec.Sum
				return nil
			}
			st.sum[id] += rec.Add
			return nil
		}
	}
	source := func(st *state) func(emit func(string, []byte) error) error {
		return func(emit func(string, []byte) error) error {
			st.mu.Lock()
			defer st.mu.Unlock()
			for id, sum := range st.sum {
				if err := emit(id, []byte(fmt.Sprintf(`{"snap":true,"sum":%d}`, sum))); err != nil {
					return err
				}
			}
			return nil
		}
	}

	c, err := OpenInstances(dir, InstancesOptions{SegmentMaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Replay(apply(live)); err != nil {
		t.Fatal(err)
	}
	total := 0
	add := func(n int) {
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("li-%06d", i%ids)
			if err := c.Append(id, []byte(`{"add":1}`)); err != nil {
				t.Fatal(err)
			}
			if err := apply(live)(id, []byte(`{"add":1}`)); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}
	add(100)
	c.SetSnapshotSource(source(live))
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	add(10) // tail records after the fold
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenInstances(dir, InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rebuilt := &state{sum: make(map[string]int)}
	if err := c2.Replay(apply(rebuilt)); err != nil {
		t.Fatal(err)
	}
	if got := c2.Replayed(); got != ids+10 {
		t.Fatalf("replayed %d records, want %d snapshots + 10 tail", got, ids)
	}
	for id, want := range live.sum {
		if rebuilt.sum[id] != want {
			t.Fatalf("%s rebuilt %d, want %d", id, rebuilt.sum[id], want)
		}
	}
	rs := c2.ReplayStats()
	if rs.SnapshotEntries != ids || rs.TailEntries != 10 {
		t.Fatalf("replay stats %+v, want %d snapshot + 10 tail", rs, ids)
	}
}

// TestInstancesConcurrentAppendDuringFold races appenders against
// folds — the writers-never-stall claim on the instance journal — and
// proves the rebuilt state still matches a sequential interpretation.
// Each id's appends happen under that id's own lock, and the source
// emits under it too, mirroring the runtime's instance-lock contract
// that makes fold boundaries exact.
func TestInstancesConcurrentAppendDuringFold(t *testing.T) {
	dir := t.TempDir()
	const ids, perID = 4, 150
	c, err := OpenInstances(dir, InstancesOptions{SegmentMaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Replay(func(string, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}

	type slot struct {
		mu  sync.Mutex
		sum int
	}
	slots := make([]*slot, ids)
	for i := range slots {
		slots[i] = &slot{}
	}
	idOf := func(i int) string { return fmt.Sprintf("li-%06d", i) }
	c.SetSnapshotSource(func(emit func(string, []byte) error) error {
		for i, sl := range slots {
			sl.mu.Lock()
			err := emit(idOf(i), []byte(fmt.Sprintf(`{"sum":%d}`, sl.sum)))
			sl.mu.Unlock()
			if err != nil {
				return err
			}
		}
		return nil
	})

	var wg sync.WaitGroup
	for w := 0; w < ids; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sl := slots[w]
			for i := 0; i < perID; i++ {
				sl.mu.Lock()
				sl.sum++ // mutate, then journal, under the id's lock — the runtime's order
				if err := c.Append(idOf(w), []byte(`{"add":1}`)); err != nil {
					sl.mu.Unlock()
					panic(err)
				}
				sl.mu.Unlock()
			}
		}(w)
	}
	foldErrs := make(chan error, 3)
	for f := 0; f < 3; f++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			foldErrs <- c.Compact()
		}()
	}
	wg.Wait()
	close(foldErrs)
	for err := range foldErrs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenInstances(dir, InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got := make(map[string]int)
	if err := c2.Replay(func(id string, data []byte) error {
		var rec struct {
			Add int  `json:"add"`
			Sum *int `json:"sum"`
		}
		if err := json.Unmarshal(data, &rec); err != nil {
			return err
		}
		if rec.Sum != nil {
			got[id] = *rec.Sum
			return nil
		}
		got[id] += rec.Add
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ids; i++ {
		if got[idOf(i)] != perID {
			t.Fatalf("%s rebuilt %d, want %d (folded overlap double-applied or lost)", idOf(i), got[idOf(i)], perID)
		}
	}
}

// TestInstancesParallelReplayEquivalence replays the same journal
// sequentially and with sharded parallel appliers and expects
// identical per-id record streams — order within an id preserved,
// nothing lost, nothing duplicated. Run under -race this is the
// parallel-replay proof at the store layer.
func TestInstancesParallelReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	const ids, perID = 9, 40
	c, err := OpenInstances(dir, InstancesOptions{SegmentMaxBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Replay(func(string, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ids*perID; i++ {
		id := fmt.Sprintf("li-%06d", i%ids)
		if err := c.Append(id, []byte(fmt.Sprintf(`{"i":%d}`, i/ids))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	collect := func(workers int) map[string][]int {
		c, err := OpenInstances(dir, InstancesOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var mu sync.Mutex
		got := make(map[string][]int)
		if err := c.ReplayParallel(workers, func(id string, data []byte) error {
			var rec struct{ I int }
			if err := json.Unmarshal(data, &rec); err != nil {
				return err
			}
			mu.Lock()
			got[id] = append(got[id], rec.I)
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	seq := collect(1)
	par := collect(8)
	if len(seq) != ids || len(par) != ids {
		t.Fatalf("id sets: %d vs %d, want %d", len(seq), len(par), ids)
	}
	for id, want := range seq {
		got := par[id]
		if len(got) != len(want) {
			t.Fatalf("%s: %d records parallel vs %d sequential", id, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s record %d: parallel %d vs sequential %d (per-id order broken)", id, i, got[i], want[i])
			}
		}
	}
}

// TestInstancesParallelReplayPropagatesErrors: an apply error on one
// worker must surface from ReplayParallel, not hang or vanish.
func TestInstancesParallelReplayPropagatesErrors(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenInstances(dir, InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Replay(func(string, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := c.Append(fmt.Sprintf("li-%06d", i%5), []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenInstances(dir, InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	boom := fmt.Errorf("boom")
	var n atomic.Int64
	err = c2.ReplayParallel(4, func(string, []byte) error {
		if n.Add(1) > 10 {
			return boom
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("ReplayParallel = %v, want the apply error", err)
	}
}
