package store

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// LogEntry is one record of the execution log — the audit trail the
// monitoring cockpit reads (Fig. 2's "Execution log" repository,
// including model evolution per the figure's caption).
type LogEntry struct {
	Seq      uint64          `json:"seq"`
	Time     time.Time       `json:"ts"`
	Instance string          `json:"instance,omitempty"`
	Kind     string          `json:"kind"`
	Actor    string          `json:"actor,omitempty"`
	Detail   string          `json:"detail,omitempty"`
	Data     json.RawMessage `json:"data,omitempty"`
}

// LogStats is one log's hot/cold split, served by the admin endpoint:
// how many entries are live in RAM, how many live only in archive
// files, and across how many archives.
type LogStats struct {
	Live     int `json:"live"`
	Archived int `json:"archived"`
	Archives int `json:"archives"`
}

// Log is an append-only, journal-backed event log with per-instance
// and time-range queries, split hot/cold: the newest entries (the live
// window) stay in RAM; older history is spilled by folds into
// immutable CRC-summed archive files and carried in every snapshot by
// reference. Reads stitch the two halves — cold entries stream from
// disk on demand, so neither fold cost nor resident memory grows with
// total history.
type Log struct {
	name    string
	store   *Store
	mu      sync.RWMutex
	entries []LogEntry
	byInst  map[string][]int // instance id -> indexes into entries
	nextSeq uint64
	// appliedSeq is the journal sequence of the newest entry applied to
	// the in-memory state — the log's fold boundary. Logs are appended,
	// never overwritten, so replaying a folded entry again would double
	// history; the boundary lets replay skip exactly the tail entries a
	// snapshot already contains.
	appliedSeq uint64
	// cold is the archived history, oldest first; coldLen is the total
	// entry count across refs. The global order of the log is cold
	// archives in ref order, then entries — folds move the head of
	// entries into a new ref, never reordering, so any scan position
	// (entries delivered so far) stays valid across a concurrent fold.
	cold    []ArchiveRef
	coldLen int
}

// NewLog creates and registers an append-only log under name.
func NewLog(s *Store, name string) (*Log, error) {
	l := &Log{name: name, store: s, byInst: make(map[string][]int), nextSeq: 1}
	if err := s.register(name, l); err != nil {
		return nil, err
	}
	return l, nil
}

// MustLog is NewLog, panicking on duplicate registration.
func MustLog(s *Store, name string) *Log {
	l, err := NewLog(s, name)
	if err != nil {
		panic(err)
	}
	return l
}

// Append stamps and stores the entry, returning its sequence number.
// The entry's Time is set from the store clock if zero.
func (l *Log) Append(e LogEntry) (uint64, error) {
	l.mu.Lock()
	e.Seq = l.nextSeq
	l.nextSeq++
	l.mu.Unlock()
	if e.Time.IsZero() {
		e.Time = l.store.Now()
	}
	data, err := json.Marshal(e)
	if err != nil {
		return 0, fmt.Errorf("store: %s: encode log entry: %w", l.name, err)
	}
	err = l.store.commit(Entry{Repo: l.name, Op: OpAppend, Data: data}, func(seq uint64) {
		l.mu.Lock()
		l.append(e)
		if seq > l.appliedSeq {
			l.appliedSeq = seq
		}
		l.mu.Unlock()
	})
	if err != nil {
		// Hand the reserved sequence back when no later append has
		// claimed the next one, so a transient write failure does not
		// leave a permanent hole in the audit numbering.
		l.mu.Lock()
		if l.nextSeq == e.Seq+1 {
			l.nextSeq = e.Seq
		}
		l.mu.Unlock()
		return 0, err
	}
	return e.Seq, nil
}

// append adds to the in-memory structures; callers hold l.mu.
func (l *Log) append(e LogEntry) {
	idx := len(l.entries)
	l.entries = append(l.entries, e)
	if e.Instance != "" {
		l.byInst[e.Instance] = append(l.byInst[e.Instance], idx)
	}
	if e.Seq >= l.nextSeq {
		l.nextSeq = e.Seq + 1
	}
}

// scan streams the whole log — cold archives first, then the live
// window — through fn in append order, stopping when fn returns false.
// Archives whose entries all have Seq <= after are skipped without
// opening the file, and entries at or below after are filtered out —
// the lazy stitch paged reads ride on. Position bookkeeping (entries
// delivered so far) survives concurrent folds because a fold only
// moves the head of the live window into a new cold ref, preserving
// global order. fn sees live entries under the log's read lock and
// cold entries without it; cold Data is freshly decoded, live Data is
// shared and read-only.
func (l *Log) scan(after uint64, fn func(LogEntry) bool) error {
	pos := 0 // global log position: entries delivered or skipped
	for {
		l.mu.RLock()
		if pos >= l.coldLen {
			for i := pos - l.coldLen; i < len(l.entries); i++ {
				e := l.entries[i]
				pos++
				if e.Seq <= after {
					continue
				}
				if !fn(e) {
					break
				}
			}
			l.mu.RUnlock()
			return nil
		}
		// Find the ref containing the current position.
		off := 0
		var ref ArchiveRef
		for _, r := range l.cold {
			if pos < off+r.Entries {
				ref = r
				break
			}
			off += r.Entries
		}
		l.mu.RUnlock()
		if ref.LastSeq <= after {
			pos = off + ref.Entries // nothing wanted in this archive
			continue
		}
		skip := pos - off
		stopped := false
		err := l.store.readArchive(ref, func(e Entry) error {
			if skip > 0 {
				skip--
				return nil
			}
			var le LogEntry
			if err := json.Unmarshal(e.Data, &le); err != nil {
				return fmt.Errorf("%w: %s: archived log entry: %v", ErrCorrupt, l.name, err)
			}
			pos++
			if le.Seq <= after {
				return nil
			}
			if !fn(le) {
				stopped = true
				return ErrStopScan
			}
			return nil
		})
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
}

// ByInstance returns every entry for the given lifecycle instance in
// append order, including archived history (streamed from disk). An
// archive read failure truncates the result at the failure point.
func (l *Log) ByInstance(id string) []LogEntry {
	var out []LogEntry
	l.ScanInstance(id, func(e LogEntry) bool {
		out = append(out, e)
		return true
	})
	return out
}

// ScanInstance streams the given instance's entries through fn in
// append order, stopping early when fn returns false. Live entries
// cost no copies; archived entries stream from disk lazily. When the
// scan has reached the live window, fn runs under the log's read lock
// and must not call back into the log; live entries' Data is shared,
// not copied, and must be treated as read-only. A corrupt archive
// stops the scan at the failure point.
func (l *Log) ScanInstance(id string, fn func(LogEntry) bool) {
	l.mu.RLock()
	noCold := l.coldLen == 0
	if noCold {
		// Fast path — the common case and the pre-archive behavior:
		// walk the index under one read-lock hold.
		defer l.mu.RUnlock()
		for _, idx := range l.byInst[id] {
			if !fn(l.entries[idx]) {
				return
			}
		}
		return
	}
	l.mu.RUnlock()
	_ = l.scan(0, func(e LogEntry) bool {
		if e.Instance != id {
			return true
		}
		return fn(e)
	})
}

// Range returns entries with from <= Time < to in append order,
// including archived history.
func (l *Log) Range(from, to time.Time) []LogEntry {
	var out []LogEntry
	_ = l.scan(0, func(e LogEntry) bool {
		if !e.Time.Before(from) && e.Time.Before(to) {
			out = append(out, e)
		}
		return true
	})
	return out
}

// All returns a copy of the whole log in append order — cold archives
// stitched in front of the live window. An archive read failure
// truncates the result at the failure point; use Page to observe the
// error.
func (l *Log) All() []LogEntry {
	var out []LogEntry
	_ = l.scan(0, func(e LogEntry) bool {
		out = append(out, e)
		return true
	})
	return out
}

// Page returns up to limit entries with Seq > after in append order —
// the cockpit's cursor over unbounded history. Archives entirely at or
// below the cursor are skipped without touching the disk; at most the
// one archive straddling the cursor is streamed per page beyond the
// entries returned. limit <= 0 means no limit. Unlike the legacy
// readers it surfaces archive corruption as an error.
func (l *Log) Page(after uint64, limit int) ([]LogEntry, error) {
	var out []LogEntry
	err := l.scan(after, func(e LogEntry) bool {
		out = append(out, e)
		return limit <= 0 || len(out) < limit
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Len returns the number of entries across both halves of the log.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.coldLen + len(l.entries)
}

// size implements journaled.
func (l *Log) size() int { return l.Len() }

// logStats reports the hot/cold split for the admin endpoint.
func (l *Log) logStats() LogStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return LogStats{Live: len(l.entries), Archived: l.coldLen, Archives: len(l.cold)}
}

// applyEntry implements journaled.
func (l *Log) applyEntry(e Entry) error {
	switch e.Op {
	case OpAppend:
		var le LogEntry
		if err := json.Unmarshal(e.Data, &le); err != nil {
			return fmt.Errorf("store: %s: replay decode: %w", l.name, err)
		}
		l.mu.Lock()
		l.append(le)
		if e.Seq > l.appliedSeq {
			l.appliedSeq = e.Seq
		}
		l.mu.Unlock()
		return nil
	case opArchiveRef:
		// Adopt archived history by reference: nothing is read from the
		// archive now — open cost stays O(live + refs).
		var ref ArchiveRef
		if err := json.Unmarshal(e.Data, &ref); err != nil {
			return fmt.Errorf("store: %s: replay archive ref: %w", l.name, err)
		}
		l.mu.Lock()
		l.cold = append(l.cold, ref)
		l.coldLen += ref.Entries
		if ref.LastSeq >= l.nextSeq {
			l.nextSeq = ref.LastSeq + 1
		}
		if e.Seq > l.appliedSeq {
			l.appliedSeq = e.Seq
		}
		l.mu.Unlock()
		return nil
	default:
		return fmt.Errorf("store: %s: replay unknown op %q", l.name, e.Op)
	}
}

// replayKey implements journaled: a log is a single ordered stream, so
// all its entries share one replay lane.
func (l *Log) replayKey(Entry) string { return "" }

// foldEntries implements journaled. Logs are history, so the fold
// image preserves every entry — but not by rewriting it: existing
// archives are carried forward as refs, and when the live window
// exceeds the store's configured window the overflow (the oldest live
// entries) is spilled through the Archiver into a new archive file and
// also carried by reference. Only the remaining live window is written
// out as entries, making fold I/O O(window + refs) regardless of total
// history. The returned commit hook — run by the engine only after the
// snapshot installs — trims the spilled entries from RAM; until then
// readers keep seeing them live, and a failed fold changes nothing.
//
// The image and boundary are captured under one read-lock hold;
// archive file I/O happens after release so the group-commit apply
// path (which takes l.mu per entry) never stalls behind a fold. If
// archiving fails the overflow falls back to inline entries — strictly
// the legacy behavior, never lost history.
func (l *Log) foldEntries(ar Archiver) ([]Entry, uint64, func()) {
	window := l.store.logWindow()
	l.mu.RLock()
	cold := append([]ArchiveRef(nil), l.cold...)
	live := append([]LogEntry(nil), l.entries...)
	boundary := l.appliedSeq
	l.mu.RUnlock()

	spill := 0
	if ar != nil && window >= 0 && len(live) > window {
		spill = len(live) - window
	}

	out := make([]Entry, 0, len(cold)+1+len(live)-spill)
	addRef := func(ref ArchiveRef) bool {
		data, err := json.Marshal(ref)
		if err != nil {
			return false
		}
		out = append(out, Entry{Repo: l.name, Op: opArchiveRef, Data: data})
		return true
	}
	for _, ref := range cold {
		addRef(ref)
	}

	var commit func()
	if spill > 0 {
		arch := make([]Entry, 0, spill)
		for _, le := range live[:spill] {
			data, err := json.Marshal(le)
			if err != nil {
				arch = nil // unencodable entry: keep the whole window inline
				break
			}
			arch = append(arch, Entry{Seq: le.Seq, Repo: l.name, Op: OpAppend, Data: data})
		}
		if len(arch) == spill {
			if ref, err := ar.Archive(arch); err == nil && addRef(ref) {
				live = live[spill:]
				n := spill
				commit = func() { l.retire(ref, n) }
			}
		}
		// On any failure live still holds everything: the snapshot gets
		// the full inline image, exactly as before archives existed.
	}

	for _, le := range live {
		data, err := json.Marshal(le)
		if err != nil {
			continue
		}
		out = append(out, Entry{Repo: l.name, Op: OpAppend, Data: data})
	}
	return out, boundary, commit
}

// retire moves the n oldest live entries — just spilled into ref by a
// durably installed fold — out of RAM. The head of entries is exactly
// what was archived: appends only grow the tail and folds are
// serialized by the engine. The instance index is rebuilt over the
// surviving window (O(window), far cheaper than the archive write that
// preceded it).
func (l *Log) retire(ref ArchiveRef, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > len(l.entries) {
		n = len(l.entries)
	}
	l.entries = append([]LogEntry(nil), l.entries[n:]...)
	l.cold = append(l.cold, ref)
	l.coldLen += ref.Entries
	l.byInst = make(map[string][]int, len(l.byInst))
	for i, e := range l.entries {
		if e.Instance != "" {
			l.byInst[e.Instance] = append(l.byInst[e.Instance], i)
		}
	}
}
