package store

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// LogEntry is one record of the execution log — the audit trail the
// monitoring cockpit reads (Fig. 2's "Execution log" repository,
// including model evolution per the figure's caption).
type LogEntry struct {
	Seq      uint64          `json:"seq"`
	Time     time.Time       `json:"ts"`
	Instance string          `json:"instance,omitempty"`
	Kind     string          `json:"kind"`
	Actor    string          `json:"actor,omitempty"`
	Detail   string          `json:"detail,omitempty"`
	Data     json.RawMessage `json:"data,omitempty"`
}

// Log is an append-only, journal-backed event log with per-instance and
// time-range queries.
type Log struct {
	name    string
	store   *Store
	mu      sync.RWMutex
	entries []LogEntry
	byInst  map[string][]int // instance id -> indexes into entries
	nextSeq uint64
	// appliedSeq is the journal sequence of the newest entry applied to
	// the in-memory state — the log's fold boundary. Logs are appended,
	// never overwritten, so replaying a folded entry again would double
	// history; the boundary lets replay skip exactly the tail entries a
	// snapshot already contains.
	appliedSeq uint64
}

// NewLog creates and registers an append-only log under name.
func NewLog(s *Store, name string) (*Log, error) {
	l := &Log{name: name, store: s, byInst: make(map[string][]int), nextSeq: 1}
	if err := s.register(name, l); err != nil {
		return nil, err
	}
	return l, nil
}

// MustLog is NewLog, panicking on duplicate registration.
func MustLog(s *Store, name string) *Log {
	l, err := NewLog(s, name)
	if err != nil {
		panic(err)
	}
	return l
}

// Append stamps and stores the entry, returning its sequence number.
// The entry's Time is set from the store clock if zero.
func (l *Log) Append(e LogEntry) (uint64, error) {
	l.mu.Lock()
	e.Seq = l.nextSeq
	l.nextSeq++
	l.mu.Unlock()
	if e.Time.IsZero() {
		e.Time = l.store.Now()
	}
	data, err := json.Marshal(e)
	if err != nil {
		return 0, fmt.Errorf("store: %s: encode log entry: %w", l.name, err)
	}
	err = l.store.commit(Entry{Repo: l.name, Op: OpAppend, Data: data}, func(seq uint64) {
		l.mu.Lock()
		l.append(e)
		if seq > l.appliedSeq {
			l.appliedSeq = seq
		}
		l.mu.Unlock()
	})
	if err != nil {
		// Hand the reserved sequence back when no later append has
		// claimed the next one, so a transient write failure does not
		// leave a permanent hole in the audit numbering.
		l.mu.Lock()
		if l.nextSeq == e.Seq+1 {
			l.nextSeq = e.Seq
		}
		l.mu.Unlock()
		return 0, err
	}
	return e.Seq, nil
}

// append adds to the in-memory structures; callers hold l.mu.
func (l *Log) append(e LogEntry) {
	idx := len(l.entries)
	l.entries = append(l.entries, e)
	if e.Instance != "" {
		l.byInst[e.Instance] = append(l.byInst[e.Instance], idx)
	}
	if e.Seq >= l.nextSeq {
		l.nextSeq = e.Seq + 1
	}
}

// ByInstance returns every entry for the given lifecycle instance in
// append order.
func (l *Log) ByInstance(id string) []LogEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	idxs := l.byInst[id]
	out := make([]LogEntry, len(idxs))
	for i, idx := range idxs {
		out[i] = l.entries[idx]
	}
	return out
}

// ScanInstance streams the given instance's entries through fn in
// append order, stopping early when fn returns false. Unlike
// ByInstance it copies nothing up front — the right call for bounded
// reads over long histories (the timeline backfill). fn runs under the
// log's read lock and must not call back into the log; the entry's
// Data is shared, not copied, and must be treated as read-only.
func (l *Log) ScanInstance(id string, fn func(LogEntry) bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, idx := range l.byInst[id] {
		if !fn(l.entries[idx]) {
			return
		}
	}
}

// Range returns entries with from <= Time < to in append order.
func (l *Log) Range(from, to time.Time) []LogEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []LogEntry
	for _, e := range l.entries {
		if !e.Time.Before(from) && e.Time.Before(to) {
			out = append(out, e)
		}
	}
	return out
}

// All returns a copy of the whole log in append order.
func (l *Log) All() []LogEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]LogEntry(nil), l.entries...)
}

// Len returns the number of entries.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// size implements journaled.
func (l *Log) size() int { return l.Len() }

// applyEntry implements journaled.
func (l *Log) applyEntry(e Entry) error {
	if e.Op != OpAppend {
		return fmt.Errorf("store: %s: replay unknown op %q", l.name, e.Op)
	}
	var le LogEntry
	if err := json.Unmarshal(e.Data, &le); err != nil {
		return fmt.Errorf("store: %s: replay decode: %w", l.name, err)
	}
	l.mu.Lock()
	l.append(le)
	if e.Seq > l.appliedSeq {
		l.appliedSeq = e.Seq
	}
	l.mu.Unlock()
	return nil
}

// foldEntries implements journaled: logs are history, so the fold
// image preserves every entry. The boundary is the journal seq of the
// newest applied entry, captured under the same lock as the image so
// the two are exactly consistent.
func (l *Log) foldEntries() ([]Entry, uint64) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Entry, 0, len(l.entries))
	for _, le := range l.entries {
		data, err := json.Marshal(le)
		if err != nil {
			continue
		}
		out = append(out, Entry{Repo: l.name, Op: OpAppend, Data: data})
	}
	return out, l.appliedSeq
}
