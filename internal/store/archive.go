package store

// Log archives: the cold half of the hot/cold history split. Logs are
// append-only history — every fold used to rewrite the whole log into
// the new snapshot, so compaction I/O and snapshot size grew with total
// history forever. Instead, entries older than the log's live window
// are written ONCE into an immutable, CRC-summed archive file
// (archive.NNNNNN.jsonl) and every later snapshot carries them by
// reference: a tiny ArchiveRef line (number + entry count + seq range +
// checksum) instead of the entries themselves. Fold cost and snapshot
// size become O(live state + refs), flat as history grows.
//
// Install protocol mirrors snapshots: write to archive.NNNNNN.jsonl.tmp,
// flush, fsync, rename into place, fsync the directory — all BEFORE the
// snapshot that references the archive is installed. Every crash window
// is safe: a crash before the snapshot install leaves an archive no
// snapshot references, which the next open's reconcile pass deletes; a
// crash after leaves both generations consistent. Referenced archives
// are verified cheaply at open (existence + byte length); the CRC is
// verified whenever an archive is actually streamed, so a bit-rotted
// cold file surfaces as ErrCorrupt on read instead of silently feeding
// damaged history to the cockpit.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// opArchiveRef is the snapshot entry op carrying an ArchiveRef in Data:
// "these log entries live in archive N, checksummed — do not rewrite
// them". Written only to snapshot files, never to the journal tail.
const opArchiveRef Op = "archive-ref"

// crcTable is the Castagnoli polynomial, hardware-accelerated on
// amd64/arm64 — the archive checksum.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ArchiveRef identifies one immutable archive file and pins its
// integrity: entry count, the log-sequence range it covers, the CRC32-C
// of its bytes and its byte length. Snapshots carry one ref line per
// archive instead of the archived entries.
type ArchiveRef struct {
	// Archive is the file number (archive.NNNNNN.jsonl).
	Archive uint64 `json:"archive"`
	// Entries is the number of records in the file.
	Entries int `json:"entries"`
	// FirstSeq/LastSeq are the log-entry sequence range archived, which
	// is what lets paged reads skip whole archives without opening them.
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	// CRC is the CRC32-C of the file's bytes; Bytes its length.
	CRC   uint32 `json:"crc"`
	Bytes int64  `json:"bytes"`
}

// Archiver lets a fold image spill cold history into an immutable
// archive file instead of rewriting it into the snapshot. Implemented
// by engines with archive storage (the journaled engine); build
// callbacks receive it during Engine.Fold.
type Archiver interface {
	// Archive writes entries as one archive file under the fsync+rename
	// install protocol and returns its reference. The entries' Seq
	// fields carry the caller's own sequence numbers (the log seq, not
	// the journal seq) and are preserved verbatim.
	Archive(entries []Entry) (ArchiveRef, error)
}

// FoldImage is what an Engine.Fold build callback returns: the
// live-entry image to write into the snapshot, and an optional Commit
// hook the engine invokes only after the snapshot is durably installed.
// Commit is where parts retire the in-memory copy of state they spilled
// through the Archiver — running it any earlier would trim history the
// durable generation does not yet reference, and a failed fold must
// leave memory untouched (the archive file it wrote becomes an orphan
// the next open removes).
type FoldImage struct {
	Entries []Entry
	Commit  func()
}

// ErrStopScan, returned by a ReadArchive callback, stops the stream
// early without error (and without the end-of-file CRC verification —
// the caller chose not to read the rest).
var ErrStopScan = errors.New("store: stop archive scan")

// archiveName returns the file name of archive n.
func archiveName(n uint64) string { return fmt.Sprintf("archive.%06d.jsonl", n) }

// archive writes entries as archive file number next under the
// fsync+rename protocol and returns its ref. Callers (folds) are
// serialized; sf counters are updated on success.
func (sf *segFiles) Archive(entries []Entry) (ArchiveRef, error) {
	if len(entries) == 0 {
		return ArchiveRef{}, fmt.Errorf("store: empty archive")
	}
	next := sf.archiveHi.Load() + 1
	final := filepath.Join(sf.dir, archiveName(next))
	tmp := final + ".tmp"
	os.Remove(tmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return ArchiveRef{}, fmt.Errorf("store: create archive: %w", err)
	}
	fail := func(err error) (ArchiveRef, error) {
		f.Close()
		os.Remove(tmp)
		return ArchiveRef{}, err
	}
	w := bufio.NewWriter(f)
	crc := crc32.New(crcTable)
	ref := ArchiveRef{Archive: next, Entries: len(entries)}
	var buf []byte
	for i, e := range entries {
		if i == 0 || e.Seq < ref.FirstSeq {
			ref.FirstSeq = e.Seq
		}
		if e.Seq > ref.LastSeq {
			ref.LastSeq = e.Seq
		}
		buf = appendEntry(buf[:0], e)
		if _, err := w.Write(buf); err != nil {
			return fail(fmt.Errorf("store: write archive entry: %w", err))
		}
		crc.Write(buf)
		ref.Bytes += int64(len(buf))
	}
	ref.CRC = crc.Sum32()
	if err := w.Flush(); err != nil {
		return fail(fmt.Errorf("store: flush archive: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("store: sync archive: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return ArchiveRef{}, fmt.Errorf("store: close archive: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return ArchiveRef{}, fmt.Errorf("store: install archive: %w", err)
	}
	syncDir(sf.dir)
	sf.archiveHi.Store(next)
	sf.archives.Add(1)
	sf.archiveBytes.Add(ref.Bytes)
	sf.archivesWritten.Add(1)
	sf.foldBytes.Add(uint64(ref.Bytes))
	sf.refMu.Lock()
	sf.refs[next] = ref
	sf.refMu.Unlock()
	return ref, nil
}

// readArchive streams the referenced archive's entries through fn,
// verifying the CRC and entry count once the file is fully read. fn may
// return ErrStopScan to stop early (skipping the trailing verification).
// A mismatched checksum, count or byte length — or any torn line, since
// archives are fsynced before install — is ErrCorrupt.
func readArchive(dir string, ref ArchiveRef, fn func(Entry) error) error {
	path := filepath.Join(dir, archiveName(ref.Archive))
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("%w: archive %s: %v", ErrCorrupt, archiveName(ref.Archive), err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	crc := crc32.New(crcTable)
	n := 0
	var read int64
	for {
		line, readErr := r.ReadBytes('\n')
		atEOF := errors.Is(readErr, io.EOF)
		if readErr != nil && !atEOF {
			return fmt.Errorf("store: read archive: %w", readErr)
		}
		if len(bytes.TrimSpace(line)) > 0 {
			if !bytes.HasSuffix(line, []byte{'\n'}) {
				return fmt.Errorf("%w: torn line in archive %s", ErrCorrupt, archiveName(ref.Archive))
			}
			var e Entry
			if err := json.Unmarshal(line, &e); err != nil {
				return fmt.Errorf("%w: archive %s: %v", ErrCorrupt, archiveName(ref.Archive), err)
			}
			if err := fn(e); err != nil {
				if errors.Is(err, ErrStopScan) {
					return nil
				}
				return err
			}
			n++
		}
		crc.Write(line)
		read += int64(len(line))
		if atEOF {
			break
		}
	}
	if n != ref.Entries || read != ref.Bytes || crc.Sum32() != ref.CRC {
		return fmt.Errorf("%w: archive %s failed verification (%d/%d entries, %d/%d bytes, crc %08x/%08x)",
			ErrCorrupt, archiveName(ref.Archive), n, ref.Entries, read, ref.Bytes, crc.Sum32(), ref.CRC)
	}
	return nil
}

// reconcileArchives settles the archive directory against the refs the
// newest snapshot carries: every referenced archive must exist with the
// recorded byte length (anything else is ErrCorrupt — the snapshot was
// durably installed, so its cold history must be whole), and archive
// files no snapshot references — a fold that crashed between archive
// install and snapshot install — are deleted. Returns the surviving
// refs, their total bytes, the highest referenced number, and how many
// orphans were removed. CRCs are not checked here: open cost must stay
// O(live + refs), so full verification is the read path's and the
// scrubber's job.
//
// In tolerant mode (quarantine opens) a missing or resized referenced
// archive is skipped instead of failing the open — the pre-verify pass
// already quarantined/reported it, and the surviving history serves
// read-only. keepOrphans additionally disables orphan deletion: when
// any file of the generation was quarantined (above all a snapshot,
// whose refs are the only thing marking archives as referenced), the
// "unreferenced" verdict can no longer be trusted.
func reconcileArchives(dir string, onDisk map[uint64]int64, refs []ArchiveRef, tolerate, keepOrphans bool) (kept []ArchiveRef, keptBytes int64, hi uint64, removed uint64, err error) {
	referenced := make(map[uint64]bool, len(refs))
	for _, ref := range refs {
		referenced[ref.Archive] = true
		if ref.Archive > hi {
			hi = ref.Archive
		}
		size, ok := onDisk[ref.Archive]
		if !ok {
			if tolerate {
				continue
			}
			return nil, 0, 0, 0, fmt.Errorf("%w: snapshot references missing archive %s", ErrCorrupt, archiveName(ref.Archive))
		}
		if size != ref.Bytes {
			if tolerate {
				continue
			}
			return nil, 0, 0, 0, fmt.Errorf("%w: archive %s is %d bytes, snapshot recorded %d",
				ErrCorrupt, archiveName(ref.Archive), size, ref.Bytes)
		}
		kept = append(kept, ref)
		keptBytes += size
	}
	if keepOrphans {
		return kept, keptBytes, hi, 0, nil
	}
	for n := range onDisk {
		if referenced[n] {
			continue
		}
		// Unreferenced: the fold that wrote it died before its snapshot
		// was installed, so no durable state points here.
		if os.Remove(filepath.Join(dir, archiveName(n))) == nil {
			removed++
		}
	}
	return kept, keptBytes, hi, removed, nil
}
