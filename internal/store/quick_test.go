package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Property: for any random sequence of puts and deletes, replaying the
// journal reproduces exactly the same final state (recovery ≡ live
// state). This is the core durability invariant of the data tier.
func TestQuickReplayEqualsLiveState(t *testing.T) {
	type op struct {
		Del bool
		ID  uint8 // small key space to force overwrites and deletes
		Rev int
	}
	f := func(ops []op) bool {
		dir := t.TempDir()
		s, err := Open(dir, Options{})
		if err != nil {
			t.Log(err)
			return false
		}
		repo := MustRepo[doc](s, "docs")
		if err := s.Load(); err != nil {
			t.Log(err)
			return false
		}
		for _, o := range ops {
			id := fmt.Sprintf("k%d", o.ID%8)
			if o.Del {
				if err := repo.Delete(id); err != nil {
					t.Log(err)
					return false
				}
			} else {
				if err := repo.Put(id, doc{Title: id, Rev: o.Rev}); err != nil {
					t.Log(err)
					return false
				}
			}
		}
		want := make(map[string]doc)
		for _, id := range repo.IDs() {
			v, _ := repo.Get(id)
			want[id] = v
		}
		if err := s.Close(); err != nil {
			t.Log(err)
			return false
		}

		s2, err := Open(dir, Options{})
		if err != nil {
			t.Log(err)
			return false
		}
		repo2 := MustRepo[doc](s2, "docs")
		if err := s2.Load(); err != nil {
			t.Log(err)
			return false
		}
		defer s2.Close()
		got := make(map[string]doc)
		for _, id := range repo2.IDs() {
			v, _ := repo2.Get(id)
			got[id] = v
		}
		return reflect.DeepEqual(want, got)
	}
	cfg := &quick.Config{MaxCount: 20, Values: func(args []reflect.Value, r *rand.Rand) {
		n := r.Intn(40)
		ops := make([]op, n)
		for i := range ops {
			ops[i] = op{Del: r.Intn(4) == 0, ID: uint8(r.Intn(8)), Rev: r.Intn(100)}
		}
		args[0] = reflect.ValueOf(ops)
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: compaction never changes observable state, for any workload.
func TestQuickCompactionPreservesState(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		s, err := Open(dir, Options{})
		if err != nil {
			return false
		}
		repo := MustRepo[doc](s, "docs")
		log := MustLog(s, "log")
		if err := s.Load(); err != nil {
			return false
		}
		for i := 0; i < 30; i++ {
			id := fmt.Sprintf("k%d", r.Intn(5))
			if r.Intn(5) == 0 {
				repo.Delete(id)
			} else {
				repo.Put(id, doc{Title: id, Rev: i})
			}
			if r.Intn(2) == 0 {
				log.Append(LogEntry{Instance: id, Kind: "tick"})
			}
		}
		beforeIDs := repo.IDs()
		beforeLog := log.Len()
		if err := s.Compact(); err != nil {
			t.Log(err)
			return false
		}
		if !reflect.DeepEqual(beforeIDs, repo.IDs()) || log.Len() != beforeLog {
			return false
		}
		s.Close()

		s2, _ := Open(dir, Options{})
		repo2 := MustRepo[doc](s2, "docs")
		log2 := MustLog(s2, "log")
		if err := s2.Load(); err != nil {
			t.Log(err)
			return false
		}
		defer s2.Close()
		return reflect.DeepEqual(beforeIDs, repo2.IDs()) && log2.Len() == beforeLog
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
