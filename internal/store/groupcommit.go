package store

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// JournalConfig tunes the journaled engine. The zero value is a valid
// configuration: opportunistic group commit, no fsync, default batch
// cap and queue depth.
type JournalConfig struct {
	// Dir is the directory holding the journal file.
	Dir string
	// Sync fsyncs once per committed batch — durable group commit.
	Sync bool
	// SyncEveryAppend commits and fsyncs each append on its own
	// (forces FlushBatch=1 and Sync). This is the pre-engine baseline,
	// kept so benchmarks can measure what group commit buys.
	SyncEveryAppend bool
	// FlushInterval is how long the writer waits for more appends to
	// grow a batch once it has at least one. 0 means opportunistic:
	// commit whatever is queued, never wait.
	FlushInterval time.Duration
	// FlushBatch caps entries per batch. 0 means DefaultFlushBatch.
	FlushBatch int
	// Queue is the commit-queue capacity. 0 means DefaultQueue.
	Queue int
}

// Defaults for JournalConfig zero fields.
const (
	DefaultFlushBatch = 128
	DefaultQueue      = 512
)

// commitReq is one queued append awaiting group commit.
type commitReq struct {
	entry    Entry
	onCommit func()
	done     chan commitRes
}

// commitRes acknowledges a committed (or failed) append.
type commitRes struct {
	seq uint64
	err error
}

// journalEngine is the default persistent engine: an append-only JSONL
// journal written by a single background goroutine that batches
// concurrent appends into one write (+ one fsync in durable mode) —
// group commit. Appenders block on a per-entry done channel until
// their batch is on disk.
type journalEngine struct {
	cfg  JournalConfig
	path string

	// mu guards the journal file across batch commits and Rewrite.
	mu sync.Mutex
	j  *Journal

	// sendMu lets Close exclude new senders before draining the queue:
	// senders hold it shared for the enqueue, Close takes it exclusive
	// to flip closing.
	sendMu  sync.RWMutex
	closing bool
	reqs    chan commitReq
	quit    chan struct{}
	wg      sync.WaitGroup

	state    atomic.Int32 // 0 new, 1 running, 2 draining, 3 closed
	appends  atomic.Uint64
	batches  atomic.Uint64
	syncs    atomic.Uint64
	maxBatch atomic.Int64
}

// NewJournalEngine builds (but does not open) a journaled engine; the
// journal is replayed and opened by Replay.
func NewJournalEngine(cfg JournalConfig) (Engine, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	if cfg.SyncEveryAppend {
		cfg.Sync = true
		cfg.FlushBatch = 1
		cfg.FlushInterval = 0
	}
	if cfg.FlushBatch <= 0 {
		cfg.FlushBatch = DefaultFlushBatch
	}
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultQueue
	}
	return &journalEngine{
		cfg:  cfg,
		path: filepath.Join(cfg.Dir, journalName),
		reqs: make(chan commitReq, cfg.Queue),
		quit: make(chan struct{}),
	}, nil
}

// Replay implements Engine: stream the journal through fn, truncate
// away any torn tail so the next append starts on a record boundary,
// open the journal for appending at the right sequence, and start the
// commit writer.
func (e *journalEngine) Replay(fn func(Entry) error) error {
	_, lastSeq, goodBytes, err := ReplayJournal(e.path, fn)
	if err != nil {
		return err
	}
	if info, statErr := os.Stat(e.path); statErr == nil && info.Size() > goodBytes {
		if err := os.Truncate(e.path, goodBytes); err != nil {
			return fmt.Errorf("store: truncate torn journal tail: %w", err)
		}
	}
	j, err := OpenJournal(e.path, lastSeq)
	if err != nil {
		return err
	}
	e.j = j
	e.state.Store(1)
	e.wg.Add(1)
	go e.writer()
	return nil
}

// Append implements Engine: enqueue and wait for the group commit.
// The writer goroutine runs onCommit callbacks in journal order, so
// concurrent writers to the same key apply in exactly the order their
// entries hit the disk.
func (e *journalEngine) Append(entry Entry, onCommit func()) (uint64, error) {
	req := commitReq{entry: entry, onCommit: onCommit, done: make(chan commitRes, 1)}
	e.sendMu.RLock()
	if e.closing || e.state.Load() != 1 {
		e.sendMu.RUnlock()
		return 0, ErrClosed
	}
	e.reqs <- req
	e.sendMu.RUnlock()
	res := <-req.done
	return res.seq, res.err
}

// writer is the group-commit loop: take one request, opportunistically
// gather more (bounded by FlushBatch and FlushInterval), commit them
// with a single write+fsync, acknowledge everyone.
func (e *journalEngine) writer() {
	defer e.wg.Done()
	batch := make([]commitReq, 0, e.cfg.FlushBatch)
	for {
		select {
		case req := <-e.reqs:
			batch = e.collect(append(batch[:0], req))
			e.commit(batch)
		case <-e.quit:
			// Drain: everything enqueued before Close flipped closing
			// must still be committed and acknowledged.
			for {
				select {
				case req := <-e.reqs:
					batch = e.collect(append(batch[:0], req))
					e.commit(batch)
				default:
					return
				}
			}
		}
	}
}

// collect grows a batch from the queue. With no FlushInterval it takes
// what is already queued plus whatever arrives across a couple of
// scheduler yields — appenders woken by the previous acknowledgement
// need one scheduling slot to re-enqueue, and without the yield a
// single-CPU machine would commit batches of one forever. With a
// FlushInterval it waits up to that long for stragglers, trading
// latency for bigger batches.
func (e *journalEngine) collect(batch []commitReq) []commitReq {
	if e.cfg.FlushInterval <= 0 {
		yields := 0
		for len(batch) < e.cfg.FlushBatch {
			select {
			case req := <-e.reqs:
				batch = append(batch, req)
			default:
				if yields >= 2 {
					return batch
				}
				yields++
				runtime.Gosched()
			}
		}
		return batch
	}
	timer := time.NewTimer(e.cfg.FlushInterval)
	defer timer.Stop()
	for len(batch) < e.cfg.FlushBatch {
		select {
		case req := <-e.reqs:
			batch = append(batch, req)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// commit writes one batch as a unit: every entry into the buffered
// writer, one flush, one optional fsync, then acknowledgement. A write
// or sync failure fails the whole batch — no entry is acked as durable
// unless the batch reached the disk.
func (e *journalEngine) commit(batch []commitReq) {
	results := make([]commitRes, len(batch))
	e.mu.Lock()
	wrote := false
	for i, req := range batch {
		seq, err := e.j.writeEntry(req.entry)
		results[i] = commitRes{seq: seq, err: err}
		if err == nil {
			wrote = true
		}
	}
	var batchErr error
	if wrote {
		batchErr = e.j.Flush()
		if batchErr == nil && e.cfg.Sync {
			batchErr = e.j.Sync()
			if batchErr == nil {
				e.syncs.Add(1)
			}
		}
	}
	e.mu.Unlock()
	e.batches.Add(1)
	if n := int64(len(batch)); n > e.maxBatch.Load() {
		e.maxBatch.Store(n)
	}
	for i, req := range batch {
		res := results[i]
		if res.err == nil && batchErr != nil {
			res = commitRes{err: batchErr}
		}
		if res.err == nil {
			e.appends.Add(1)
			// Apply in journal order, before acknowledging: memory
			// never disagrees with what replay would reconstruct.
			if req.onCommit != nil {
				req.onCommit()
			}
		}
		req.done <- res
	}
}

// Rewrite implements Engine: build the compacted journal in a temp
// file, fsync it, and atomically rename it over the old one. The
// engine keeps running; sequence numbering restarts at len(entries).
func (e *journalEngine) Rewrite(entries []Entry) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	tmp := e.path + ".compact"
	nj, err := OpenJournal(tmp, 0)
	if err != nil {
		return err
	}
	for _, entry := range entries {
		if _, err := nj.writeEntry(entry); err != nil {
			nj.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := nj.Flush(); err != nil {
		nj.Close()
		os.Remove(tmp)
		return err
	}
	if err := nj.Sync(); err != nil {
		nj.Close()
		os.Remove(tmp)
		return err
	}
	if err := nj.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := e.j.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, e.path); err != nil {
		return fmt.Errorf("store: swap compacted journal: %w", err)
	}
	reopened, err := OpenJournal(e.path, uint64(len(entries)))
	if err != nil {
		return err
	}
	e.j = reopened
	return nil
}

// Stats implements Engine.
func (e *journalEngine) Stats() EngineStats {
	state := StateRunning
	switch e.state.Load() {
	case 2:
		state = StateDraining
	case 3:
		state = StateClosed
	}
	var lastSeq uint64
	e.mu.Lock()
	if e.j != nil {
		lastSeq = e.j.Seq()
	}
	e.mu.Unlock()
	return EngineStats{
		Engine:   "journal",
		State:    state,
		LastSeq:  lastSeq,
		Appends:  e.appends.Load(),
		Batches:  e.batches.Load(),
		Syncs:    e.syncs.Load(),
		MaxBatch: int(e.maxBatch.Load()),
		Pending:  len(e.reqs),
	}
}

// Close implements Engine: refuse new appends, drain the queue (every
// queued append is still committed and acknowledged), then flush, sync
// and close the file. Idempotent.
func (e *journalEngine) Close() error {
	e.sendMu.Lock()
	if e.closing {
		e.sendMu.Unlock()
		e.wg.Wait()
		return nil
	}
	e.closing = true
	e.sendMu.Unlock()
	if e.state.Load() == 0 {
		// Never replayed/opened: nothing to drain or close.
		e.state.Store(3)
		return nil
	}
	e.state.Store(2)
	close(e.quit)
	e.wg.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	err := e.j.Close()
	e.j = nil
	e.state.Store(3)
	return err
}
