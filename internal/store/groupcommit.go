package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// JournalConfig tunes the journaled engine. The zero value is a valid
// configuration: opportunistic group commit, no fsync, default batch
// cap and queue depth, no segment rotation.
type JournalConfig struct {
	// Dir is the directory holding the journal segments.
	Dir string
	// Sync fsyncs once per committed batch — durable group commit.
	Sync bool
	// SyncEveryAppend commits and fsyncs each append on its own
	// (forces FlushBatch=1 and Sync). This is the pre-engine baseline,
	// kept so benchmarks can measure what group commit buys.
	SyncEveryAppend bool
	// FlushInterval is how long the writer waits for more appends to
	// grow a batch once it has at least one. 0 means opportunistic:
	// commit whatever is queued, never wait.
	FlushInterval time.Duration
	// FlushBatch caps entries per batch. 0 means DefaultFlushBatch.
	FlushBatch int
	// Queue is the commit-queue capacity. 0 means DefaultQueue.
	Queue int
	// SegmentMaxBytes seals the active segment once it grows past this
	// size, rotating to a fresh one under the appender lock. 0 disables
	// automatic rotation (Seal still rotates on demand).
	SegmentMaxBytes int64
	// SnapshotEvery triggers OnSeal once this many sealed segments
	// await folding (0 = every seal).
	SnapshotEvery int
	// OnSeal, if non-nil, is invoked from its own goroutine after a
	// rotation leaves at least SnapshotEvery sealed segments unfolded —
	// the hook the Store's background folder hangs off.
	OnSeal func()
	// Integrity tunes corruption detection: record framing, quarantine
	// mode, the background scrubber (see IntegrityOptions).
	Integrity IntegrityOptions
}

// Defaults for JournalConfig zero fields.
const (
	DefaultFlushBatch = 128
	DefaultQueue      = 512
)

// commitReq is one queued append awaiting group commit.
type commitReq struct {
	entry    Entry
	onCommit func(uint64)
	done     chan commitRes
}

// commitRes acknowledges a committed (or failed) append.
type commitRes struct {
	seq uint64
	err error
}

// journalEngine is the default persistent engine: a segmented
// append-only JSONL journal written by a single background goroutine
// that batches concurrent appends into one write (+ one fsync in
// durable mode) — group commit. Appenders block on a per-entry done
// channel until their batch is on disk. The active segment rotates at
// SegmentMaxBytes; Fold compacts sealed segments into a snapshot while
// appends proceed (see the package doc's segment section).
type journalEngine struct {
	cfg JournalConfig

	// mu guards the active journal across batch commits and seals.
	mu sync.Mutex
	j  *Journal
	sf *segFiles

	// foldMu serializes folds; never held with mu except for the brief
	// boundary reads inside Fold.
	foldMu sync.Mutex
	replay ReplayStats

	// sendMu lets Close exclude new senders before draining the queue:
	// senders hold it shared for the enqueue, Close takes it exclusive
	// to flip closing.
	sendMu  sync.RWMutex
	closing bool
	reqs    chan commitReq
	quit    chan struct{}
	wg      sync.WaitGroup

	state    atomic.Int32 // 0 new, 1 running, 2 draining, 3 closed
	appends  atomic.Uint64
	batches  atomic.Uint64
	syncs    atomic.Uint64
	maxBatch atomic.Int64
}

// NewJournalEngine builds (but does not open) a journaled engine; the
// journal is replayed and opened by Replay.
func NewJournalEngine(cfg JournalConfig) (Engine, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	if cfg.SyncEveryAppend {
		cfg.Sync = true
		cfg.FlushBatch = 1
		cfg.FlushInterval = 0
	}
	if cfg.FlushBatch <= 0 {
		cfg.FlushBatch = DefaultFlushBatch
	}
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultQueue
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 1
	}
	return &journalEngine{
		cfg:  cfg,
		reqs: make(chan commitReq, cfg.Queue),
		quit: make(chan struct{}),
	}, nil
}

// Replay implements Engine: stream the newest snapshot, the uncovered
// sealed segments and the active file through fn (skipping folded
// duplicates), truncate away any torn active tail so the next append
// starts on a record boundary, reconcile archive files against the
// refs the snapshot carried (a referenced archive must exist intact;
// unreferenced ones are leftovers of a fold that crashed before its
// snapshot installed, and are removed), open the active segment for
// appending at the right sequence, and start the commit writer. In
// quarantine mode a pre-verify pass first moves every file that fails
// its CRCs aside — before anything is applied — so the replay serves
// the surviving history instead of failing (see preVerify).
func (e *journalEngine) Replay(fn func(Entry) error) error {
	quarantined, corrupt := 0, 0
	if e.cfg.Integrity.Quarantine {
		var err error
		quarantined, corrupt, err = preVerify(e.cfg.Dir, e.cfg.Integrity.OnCorrupt)
		if err != nil {
			return err
		}
	}
	// Archive refs only ever appear in snapshots (the append path never
	// writes them), so every one seen during replay is part of the
	// durable generation — record it for reconciliation and still
	// forward it to fn so the owning part adopts its cold history.
	var refs []ArchiveRef
	sr, err := replaySegmented(e.cfg.Dir, func(en Entry) string { return en.Repo }, func(en Entry) error {
		if en.Op == opArchiveRef {
			var ref ArchiveRef
			if jsonErr := json.Unmarshal(en.Data, &ref); jsonErr != nil {
				return fmt.Errorf("%w: archive ref: %v", ErrCorrupt, jsonErr)
			}
			refs = append(refs, ref)
		}
		return fn(en)
	})
	if err != nil {
		return err
	}
	if err := truncateTorn(e.cfg.Dir, sr.active.good); err != nil {
		return err
	}
	kept, keptBytes, hi, removed, err := reconcileArchives(e.cfg.Dir, sr.state.archives, refs,
		e.cfg.Integrity.Quarantine, quarantined > 0)
	if err != nil {
		return err
	}
	framed := !e.cfg.Integrity.DisableFraming
	j, err := openJournal(filepath.Join(e.cfg.Dir, journalName), sr.lastSeq, framed)
	if err != nil {
		return err
	}
	j.adoptReplay(sr.active)
	e.j = j
	e.sf = newSegFiles(e.cfg.Dir, sr.state, framed)
	e.sf.adoptIntegrity(sr, quarantined, corrupt, e.cfg.Integrity.OnCorrupt)
	e.sf.adoptArchives(kept, keptBytes, hi, removed)
	sr.stats.ArchiveRefs = len(refs)
	e.replay = sr.stats
	e.state.Store(1)
	e.wg.Add(1)
	go e.writer()
	return nil
}

// Append implements Engine: enqueue and wait for the group commit.
// The writer goroutine runs onCommit callbacks in journal order, so
// concurrent writers to the same key apply in exactly the order their
// entries hit the disk.
func (e *journalEngine) Append(entry Entry, onCommit func(uint64)) (uint64, error) {
	req := commitReq{entry: entry, onCommit: onCommit, done: make(chan commitRes, 1)}
	e.sendMu.RLock()
	if e.closing || e.state.Load() != 1 {
		e.sendMu.RUnlock()
		return 0, ErrClosed
	}
	e.reqs <- req
	e.sendMu.RUnlock()
	res := <-req.done
	return res.seq, res.err
}

// writer is the group-commit loop: take one request, opportunistically
// gather more (bounded by FlushBatch and FlushInterval), commit them
// with a single write+fsync, acknowledge everyone.
func (e *journalEngine) writer() {
	defer e.wg.Done()
	batch := make([]commitReq, 0, e.cfg.FlushBatch)
	for {
		select {
		case req := <-e.reqs:
			batch = e.collect(append(batch[:0], req))
			e.commit(batch)
		case <-e.quit:
			// Drain: everything enqueued before Close flipped closing
			// must still be committed and acknowledged.
			for {
				select {
				case req := <-e.reqs:
					batch = e.collect(append(batch[:0], req))
					e.commit(batch)
				default:
					return
				}
			}
		}
	}
}

// collect grows a batch from the queue. With no FlushInterval it takes
// what is already queued plus whatever arrives across a couple of
// scheduler yields — appenders woken by the previous acknowledgement
// need one scheduling slot to re-enqueue, and without the yield a
// single-CPU machine would commit batches of one forever. With a
// FlushInterval it waits up to that long for stragglers, trading
// latency for bigger batches.
func (e *journalEngine) collect(batch []commitReq) []commitReq {
	if e.cfg.FlushInterval <= 0 {
		yields := 0
		for len(batch) < e.cfg.FlushBatch {
			select {
			case req := <-e.reqs:
				batch = append(batch, req)
			default:
				if yields >= 2 {
					return batch
				}
				yields++
				runtime.Gosched()
			}
		}
		return batch
	}
	timer := time.NewTimer(e.cfg.FlushInterval)
	defer timer.Stop()
	for len(batch) < e.cfg.FlushBatch {
		select {
		case req := <-e.reqs:
			batch = append(batch, req)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// commit writes one batch as a unit: every entry into the buffered
// writer, one flush, one optional fsync, the onCommit applications,
// then acknowledgement. A write or sync failure fails the whole batch
// — no entry is acked as durable unless the batch reached the disk.
// After a durable batch the active segment is rotated if it outgrew
// SegmentMaxBytes.
//
// The onCommit callbacks run inside the same e.mu critical section as
// the seal decision, deliberately: a segment must never be sealed
// while it contains entries whose in-memory application is still
// pending, or a fold racing in between would capture a live image (and
// fold boundaries) missing them and then delete the only copy —
// silently losing durable writes on the next restart. Holding e.mu
// through the applies makes "sealed implies applied" an invariant for
// every seal path (rotation here, manual Seal, Compact).
func (e *journalEngine) commit(batch []commitReq) {
	results := make([]commitRes, len(batch))
	e.mu.Lock()
	wrote := false
	for i, req := range batch {
		seq, err := e.j.writeEntry(req.entry)
		results[i] = commitRes{seq: seq, err: err}
		if err == nil {
			wrote = true
		}
	}
	var batchErr error
	if wrote {
		batchErr = e.j.Flush()
		if batchErr == nil && e.cfg.Sync {
			batchErr = e.j.Sync()
			if batchErr == nil {
				e.syncs.Add(1)
			}
		}
	}
	if batchErr == nil {
		// Apply in journal order, before acknowledging (memory never
		// disagrees with what replay would reconstruct) and before any
		// seal can cover these entries (see above).
		for i, req := range batch {
			if results[i].err == nil && req.onCommit != nil {
				req.onCommit(results[i].seq)
			}
		}
		e.maybeRotateLocked()
	}
	e.mu.Unlock()
	e.batches.Add(1)
	if n := int64(len(batch)); n > e.maxBatch.Load() {
		e.maxBatch.Store(n)
	}
	for i, req := range batch {
		res := results[i]
		if res.err == nil && batchErr != nil {
			res = commitRes{err: batchErr}
		}
		if res.err == nil {
			e.appends.Add(1)
		}
		req.done <- res
	}
}

// maybeRotateLocked seals the active segment when it outgrew the
// configured bound and pokes the fold hook; callers hold e.mu. Seal
// failures are sticky on the journal and surface on the next commit.
func (e *journalEngine) maybeRotateLocked() {
	if e.cfg.SegmentMaxBytes <= 0 || e.j.Size() < e.cfg.SegmentMaxBytes {
		return
	}
	nj, err := e.sf.seal(e.j)
	e.j = nj
	if err != nil {
		return
	}
	if e.cfg.OnSeal != nil && e.sf.sealedCount() >= uint64(e.cfg.SnapshotEvery) {
		go e.cfg.OnSeal()
	}
}

// Seal implements Engine: rotate the active segment now (a no-op when
// it is empty). Appends block only for the rename/create itself.
func (e *journalEngine) Seal() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state.Load() != 1 || e.j == nil {
		return ErrClosed
	}
	nj, err := e.sf.seal(e.j)
	e.j = nj
	return err
}

// Fold implements Engine: fix the fold boundary (every segment sealed
// so far), capture the live image via build — handing it the segment
// set as Archiver so cold history can be spilled into archive files
// referenced by the snapshot instead of rewritten into it — write the
// image to a new snapshot and delete the folded segments. Appends —
// and further seals — proceed concurrently: the image is captured
// after the boundary, so it is a superset of everything folded, and
// replay skips the overlap via the per-bucket boundary seqs stamped on
// snapshot entries. The image's Commit hook runs only once the
// snapshot is durably installed; on any fold failure it never runs, so
// in-memory state keeps covering history the old generation still
// owns (an archive written by the failed attempt is an orphan the next
// open removes).
func (e *journalEngine) Fold(build func(Archiver) FoldImage) error {
	e.foldMu.Lock()
	defer e.foldMu.Unlock()
	if e.state.Load() != 1 {
		return ErrClosed
	}
	e.mu.Lock()
	covers := e.sf.sealedHi
	var hwm uint64
	if e.j != nil {
		hwm = e.j.Seq()
	}
	e.mu.Unlock()
	var commit func()
	err := e.sf.fold(covers, hwm, func(sj *Journal) error {
		if build == nil {
			return nil
		}
		img := build(e.sf)
		commit = img.Commit
		for _, entry := range img.Entries {
			if err := sj.writeRaw(entry); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil && commit != nil {
		commit()
	}
	return err
}

// ReadArchive implements Engine: stream one archive file, lazily and
// checksum-verified. Archives are immutable and only removed by the
// open-time reconcile pass, so a concurrent fold never races a reader.
func (e *journalEngine) ReadArchive(ref ArchiveRef, fn func(Entry) error) error {
	return readArchive(e.cfg.Dir, ref, fn)
}

// Scrub implements Engine: one bounded verification tick over the
// sealed segments, newest snapshot and archives (see scrub.go).
func (e *journalEngine) Scrub(maxBytes int64) ScrubResult {
	if e.state.Load() != 1 || e.sf == nil {
		return ScrubResult{}
	}
	return e.sf.scrubTick(maxBytes)
}

// Depth implements Engine: the group-commit queue's current occupancy.
func (e *journalEngine) Depth() int { return len(e.reqs) }

// Stats implements Engine.
func (e *journalEngine) Stats() EngineStats {
	state := StateRunning
	switch e.state.Load() {
	case 2:
		state = StateDraining
	case 3:
		state = StateClosed
	}
	st := EngineStats{
		Engine:   "journal",
		State:    state,
		Appends:  e.appends.Load(),
		Batches:  e.batches.Load(),
		Syncs:    e.syncs.Load(),
		MaxBatch: int(e.maxBatch.Load()),
		Pending:  len(e.reqs),
	}
	e.mu.Lock()
	if e.j != nil {
		st.LastSeq = e.j.Seq()
	}
	e.mu.Unlock()
	if e.sf != nil {
		e.sf.statsInto(&st, e.replay)
	}
	return st
}

// Close implements Engine: refuse new appends, drain the queue (every
// queued append is still committed and acknowledged), then flush, sync
// and close the file. Idempotent.
func (e *journalEngine) Close() error {
	e.sendMu.Lock()
	if e.closing {
		e.sendMu.Unlock()
		e.wg.Wait()
		return nil
	}
	e.closing = true
	e.sendMu.Unlock()
	if e.state.Load() == 0 {
		// Never replayed/opened: nothing to drain or close.
		e.state.Store(3)
		return nil
	}
	e.state.Store(2)
	close(e.quit)
	e.wg.Wait()
	// An in-flight Fold may still be writing its snapshot; let it
	// finish before the file handles go away underneath it.
	e.foldMu.Lock()
	defer e.foldMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	err := e.j.Close()
	e.j = nil
	e.state.Store(3)
	return err
}
