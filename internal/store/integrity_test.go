package store

// The corruption-injection matrix for the end-to-end integrity layer:
// one flipped bit at every position the recovery rules distinguish —
// active-file tail, active-file interior, sealed segment, snapshot,
// archive — against both the store journal and the instance journal,
// plus quarantine mode, the background scrubber, offline Fsck and the
// legacy (unframed) compatibility path.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// flipByte XORs one byte of the file at off (negative = from the end),
// simulating a single spot of bit rot.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += int64(len(data))
	}
	if off < 0 || off >= int64(len(data)) {
		t.Fatalf("flip offset %d out of range (file is %d bytes)", off, len(data))
	}
	data[off] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// putDocs writes n sequentially numbered docs through the repo.
func putDocs(t *testing.T, repo *Repo[doc], n, from int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := repo.Put(fmt.Sprintf("k%02d", i), doc{Title: strings.Repeat("x", 30), Rev: i}); err != nil {
			t.Fatal(err)
		}
	}
}

// openIntegrityStore opens + loads a store with the given integrity
// options, returning the Load error instead of failing, so corruption
// verdicts can be asserted.
func openIntegrityStore(t *testing.T, dir string, integ IntegrityOptions) (*Store, *Repo[doc], error) {
	t.Helper()
	s, err := Open(dir, Options{Integrity: integ})
	if err != nil {
		t.Fatal(err)
	}
	repo := MustRepo[doc](s, "docs")
	if err := s.Load(); err != nil {
		s.Close()
		return nil, nil, err
	}
	return s, repo, nil
}

// TestTornActiveTailRecovers flips a bit inside the last record of the
// active file: an invalid suffix is a crash tail, so the open succeeds,
// drops exactly that record, counts the recovery, and appends continue
// on a clean boundary.
func TestTornActiveTailRecovers(t *testing.T) {
	dir := t.TempDir()
	s, repo, err := openIntegrityStore(t, dir, IntegrityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	putDocs(t, repo, 5, 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	flipByte(t, filepath.Join(dir, journalName), -5)

	s2, repo2, err := openIntegrityStore(t, dir, IntegrityOptions{})
	if err != nil {
		t.Fatalf("torn tail failed the open: %v", err)
	}
	defer s2.Close()
	if _, ok := repo2.Get("k03"); !ok {
		t.Fatal("record before the torn tail lost")
	}
	if _, ok := repo2.Get("k04"); ok {
		t.Fatal("the torn record replayed despite its broken CRC")
	}
	integ := s2.Stats().Engine.Integrity
	if !integ.Framing || integ.TornTails != 1 || integ.TornTailBytes == 0 {
		t.Fatalf("torn-tail accounting = %+v, want framing on, 1 torn tail", integ)
	}
	if integ.CorruptFiles != 0 {
		t.Fatalf("a recoverable tail counted as corruption: %+v", integ)
	}
	// The truncated file accepts appends and survives another cycle.
	putDocs(t, repo2, 1, 10)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, repo3, err := openIntegrityStore(t, dir, IntegrityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, ok := repo3.Get("k10"); !ok {
		t.Fatal("append after torn-tail recovery lost")
	}
}

// TestActiveInteriorCorruptionFailsOpen flips a bit in the first record
// while later records are valid: that is mid-file damage to committed
// history, which must fail the open with positional detail — never be
// silently truncated.
func TestActiveInteriorCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s, repo, err := openIntegrityStore(t, dir, IntegrityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	putDocs(t, repo, 5, 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	flipByte(t, filepath.Join(dir, journalName), 20)

	_, _, err = openIntegrityStore(t, dir, IntegrityOptions{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior corruption opened as %v, want ErrCorrupt", err)
	}
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("corruption verdict carries no positional detail: %v", err)
	}
	if filepath.Base(ce.Path) != journalName || ce.Line != 1 || ce.Offset != 0 {
		t.Fatalf("corruption located at %s line %d offset %d, want %s line 1 offset 0",
			filepath.Base(ce.Path), ce.Line, ce.Offset, journalName)
	}
}

// TestSealedSegmentCorruptionFailsOpen flips a bit mid-way through a
// sealed (footer-carrying) segment: sealed files are strict, so the
// open fails with the segment named.
func TestSealedSegmentCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s, repo, err := openIntegrityStore(t, dir, IntegrityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	putDocs(t, repo, 5, 0)
	if err := s.engine.Seal(); err != nil {
		t.Fatal(err)
	}
	putDocs(t, repo, 3, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	sealedPath := filepath.Join(dir, sealedName(1))
	if _, err := os.Stat(sealedPath); err != nil {
		t.Fatal(err)
	}
	flipByte(t, sealedPath, 40)

	_, _, err = openIntegrityStore(t, dir, IntegrityOptions{})
	var ce *CorruptionError
	if !errors.Is(err, ErrCorrupt) || !errors.As(err, &ce) {
		t.Fatalf("sealed-segment corruption opened as %v, want CorruptionError", err)
	}
	if filepath.Base(ce.Path) != sealedName(1) {
		t.Fatalf("corruption located in %s, want %s", filepath.Base(ce.Path), sealedName(1))
	}
}

// TestSnapshotCorruptionFailsOpen flips a bit in an installed snapshot:
// snapshots were fsynced before their rename, so any damage is bit rot
// and the open must refuse.
func TestSnapshotCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s, repo, err := openIntegrityStore(t, dir, IntegrityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	putDocs(t, repo, 8, 0)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, snapName(1))
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatal(err)
	}
	flipByte(t, snapPath, 60)

	_, _, err = openIntegrityStore(t, dir, IntegrityOptions{})
	var ce *CorruptionError
	if !errors.Is(err, ErrCorrupt) || !errors.As(err, &ce) {
		t.Fatalf("snapshot corruption opened as %v, want CorruptionError", err)
	}
	if filepath.Base(ce.Path) != snapName(1) {
		t.Fatalf("corruption located in %s, want %s", filepath.Base(ce.Path), snapName(1))
	}
}

// TestQuarantineServesSurvivingHistory repeats the sealed-segment flip
// with quarantine on: the open succeeds, the damaged file moves aside
// with a .quarantined suffix, the detection is reported through
// OnCorrupt, and the surviving (active-file) history serves.
func TestQuarantineServesSurvivingHistory(t *testing.T) {
	dir := t.TempDir()
	s, repo, err := openIntegrityStore(t, dir, IntegrityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	putDocs(t, repo, 5, 0)
	if err := s.engine.Seal(); err != nil {
		t.Fatal(err)
	}
	putDocs(t, repo, 3, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	flipByte(t, filepath.Join(dir, sealedName(1)), 40)

	var seen []CorruptFile
	s2, repo2, err := openIntegrityStore(t, dir, IntegrityOptions{
		Quarantine: true,
		OnCorrupt:  func(cf CorruptFile) { seen = append(seen, cf) },
	})
	if err != nil {
		t.Fatalf("quarantine open failed: %v", err)
	}
	defer s2.Close()
	if len(seen) != 1 || !seen[0].Quarantined || seen[0].Source != "open" {
		t.Fatalf("OnCorrupt saw %+v, want one quarantined open-time detection", seen)
	}
	if filepath.Base(seen[0].Path) != sealedName(1) {
		t.Fatalf("quarantined %s, want %s", filepath.Base(seen[0].Path), sealedName(1))
	}
	if _, err := os.Stat(filepath.Join(dir, sealedName(1)) + ".quarantined"); err != nil {
		t.Fatalf("damaged file not moved aside: %v", err)
	}
	// The sealed segment's records are gone; the active file's survive.
	if _, ok := repo2.Get("k00"); ok {
		t.Fatal("record from the quarantined segment replayed")
	}
	if _, ok := repo2.Get("k06"); !ok {
		t.Fatal("surviving active-file record lost")
	}
	integ := s2.Stats().Engine.Integrity
	if integ.QuarantinedFiles != 1 || integ.CorruptFiles != 1 {
		t.Fatalf("quarantine accounting = %+v, want 1/1", integ)
	}
}

// TestQuarantinedSnapshotKeepsArchives corrupts the snapshot in a
// directory that also holds a referenced archive: quarantining the
// snapshot loses the references, but the archive bytes must NOT be
// collected as orphans — they may be the only surviving copy.
func TestQuarantinedSnapshotKeepsArchives(t *testing.T) {
	dir := t.TempDir()
	s, lg := openLogStore(t, dir, 10)
	appendTicks(t, lg, 50, "a")
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	flipByte(t, filepath.Join(dir, snapName(1)), 60)

	s2, err := Open(dir, Options{LogLiveWindow: 10, Integrity: IntegrityOptions{Quarantine: true}})
	if err != nil {
		t.Fatal(err)
	}
	MustLog(s2, "execlog")
	if err := s2.Load(); err != nil {
		t.Fatalf("quarantine open failed: %v", err)
	}
	defer s2.Close()
	if _, err := os.Stat(filepath.Join(dir, archiveName(1))); err != nil {
		t.Fatalf("archive collected as orphan after snapshot quarantine: %v", err)
	}
}

// TestScrubDetectsSealedSegmentRot corrupts a sealed segment while the
// store is serving: the next scrub tick finds it, counts it, stamps
// LastError and reports through OnCorrupt without quarantining (repair
// is an offline decision).
func TestScrubDetectsSealedSegmentRot(t *testing.T) {
	dir := t.TempDir()
	var seen []CorruptFile
	s, err := Open(dir, Options{Integrity: IntegrityOptions{
		OnCorrupt: func(cf CorruptFile) { seen = append(seen, cf) },
	}})
	if err != nil {
		t.Fatal(err)
	}
	repo := MustRepo[doc](s, "docs")
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	putDocs(t, repo, 5, 0)
	if err := s.engine.Seal(); err != nil {
		t.Fatal(err)
	}
	putDocs(t, repo, 2, 5)

	if res := s.Scrub(1 << 30); res.Corrupt != 0 || res.Files == 0 || !res.PassCompleted {
		t.Fatalf("clean scrub = %+v, want a completed pass with no corruption", res)
	}
	flipByte(t, filepath.Join(dir, sealedName(1)), 40)
	res := s.Scrub(1 << 30)
	if res.Corrupt != 1 {
		t.Fatalf("scrub over rotted segment = %+v, want 1 corrupt", res)
	}
	if len(seen) != 1 || seen[0].Source != "scrub" || seen[0].Quarantined {
		t.Fatalf("OnCorrupt saw %+v, want one non-quarantined scrub detection", seen)
	}
	integ := s.Stats().Engine.Integrity
	if integ.CorruptFiles != 1 || integ.LastError == "" || integ.ScrubFiles == 0 {
		t.Fatalf("scrub accounting = %+v", integ)
	}
	// Sealed file still in place: scrubbing detects, never moves.
	if _, err := os.Stat(filepath.Join(dir, sealedName(1))); err != nil {
		t.Fatalf("scrub moved the damaged file: %v", err)
	}
}

// TestScrubDetectsArchiveRot flips a bit in a referenced archive. The
// open's cheap existence+length check passes — full archive CRCs are
// the scrubber's job, which must fail the file against the checksum the
// snapshot recorded.
func TestScrubDetectsArchiveRot(t *testing.T) {
	dir := t.TempDir()
	s, lg := openLogStore(t, dir, 10)
	appendTicks(t, lg, 50, "a")
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	flipByte(t, filepath.Join(dir, archiveName(1)), 40)

	s2, lg2 := openLogStore(t, dir, 10)
	defer s2.Close()
	_ = lg2
	res := s2.Scrub(1 << 30)
	if res.Corrupt != 1 || !res.PassCompleted {
		t.Fatalf("scrub over rotted archive = %+v, want 1 corrupt in a completed pass", res)
	}
	integ := s2.Stats().Engine.Integrity
	if integ.CorruptFiles != 1 || !strings.Contains(integ.LastError, "archive") {
		t.Fatalf("archive-rot accounting = %+v", integ)
	}
}

// TestScrubBudgetBoundsTickIO verifies a tick stops at its byte budget
// and the cursor-resumed pass still covers the whole generation.
func TestScrubBudgetBoundsTickIO(t *testing.T) {
	dir := t.TempDir()
	s, repo, err := openIntegrityStore(t, dir, IntegrityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		putDocs(t, repo, 10, i*10)
		if err := s.engine.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	first := s.Scrub(1) // budget of one byte: exactly one file per tick
	if first.Files != 1 || first.PassCompleted {
		t.Fatalf("budgeted tick = %+v, want 1 file, pass not complete", first)
	}
	total := first.Files
	for i := 0; i < 10; i++ {
		res := s.Scrub(1)
		total += res.Files
		if res.PassCompleted {
			break
		}
	}
	if total != 3 {
		t.Fatalf("budgeted pass covered %d files, want 3 sealed segments", total)
	}
}

// TestScrubLoopRunsOnInterval wires the background scrubber through
// Options.Integrity.ScrubInterval and waits for a completed pass.
func TestScrubLoopRunsOnInterval(t *testing.T) {
	dir := t.TempDir()
	s, repo, err := openIntegrityStore(t, dir, IntegrityOptions{ScrubInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	putDocs(t, repo, 5, 0)
	if err := s.engine.Seal(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Engine.Integrity.ScrubPasses == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background scrubber never completed a pass: %+v", s.Stats().Engine.Integrity)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLegacyUnframedJournalOpens writes a pre-upgrade journal (bare
// JSONL, no CRCs) and opens it with framing on: the version sniff
// replays it unchanged, new appends are framed, and the mixed file
// still seals under a correct whole-file footer.
func TestLegacyUnframedJournalOpens(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(filepath.Join(dir, journalName), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := j.Append(Entry{Repo: "docs", Op: OpPut, ID: fmt.Sprintf("k%02d", i),
			Data: []byte(fmt.Sprintf(`{"title":"legacy","rev":%d}`, i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	s, repo, err := openIntegrityStore(t, dir, IntegrityOptions{})
	if err != nil {
		t.Fatalf("legacy journal failed to open with framing on: %v", err)
	}
	for i := 0; i < 5; i++ {
		if got, ok := repo.Get(fmt.Sprintf("k%02d", i)); !ok || got.Rev != i {
			t.Fatalf("legacy record k%02d = %+v, %t", i, got, ok)
		}
	}
	putDocs(t, repo, 2, 5) // framed lines appended after the legacy ones
	if err := s.engine.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The sealed mixed file verifies strictly, footer included.
	fr, err := replayJournalFile(filepath.Join(dir, sealedName(1)), replaySealed, nil)
	if err != nil {
		t.Fatalf("mixed legacy+framed sealed segment failed verification: %v", err)
	}
	if fr.n != 7 || fr.footer == nil {
		t.Fatalf("mixed segment replayed %d records, footer %v, want 7 with footer", fr.n, fr.footer)
	}
	s2, repo2, err := openIntegrityStore(t, dir, IntegrityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := repo2.Get("k06"); !ok {
		t.Fatal("framed record appended to legacy file lost on reopen")
	}
}

// --- instance journal matrix ---

// openInstancesDir opens the collection and replays it, returning the
// replay error plus the ids streamed.
func openInstancesDir(t *testing.T, dir string, opts InstancesOptions) (*Instances, []string, error) {
	t.Helper()
	c, err := OpenInstances(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	if err := c.Replay(func(id string, data []byte) error {
		ids = append(ids, id)
		return nil
	}); err != nil {
		c.Close()
		return nil, nil, err
	}
	return c, ids, nil
}

// seedInstances appends n records across three instance ids and closes.
func seedInstances(t *testing.T, dir string, n int, seal bool) {
	t.Helper()
	c, _, err := openInstancesDir(t, dir, InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := c.Append(fmt.Sprintf("li-%d", i%3), []byte(fmt.Sprintf(`{"op":"advance","n":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if seal {
		if err := c.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestInstancesTornTailRecovers is the active-tail flip against the
// instance journal: the damaged last record drops, the rest replays.
func TestInstancesTornTailRecovers(t *testing.T) {
	dir := t.TempDir()
	seedInstances(t, dir, 6, false)
	flipByte(t, filepath.Join(dir, journalName), -5)

	c, ids, err := openInstancesDir(t, dir, InstancesOptions{})
	if err != nil {
		t.Fatalf("torn instance tail failed the replay: %v", err)
	}
	defer c.Close()
	if len(ids) != 5 {
		t.Fatalf("replayed %d records, want 5 (torn one dropped)", len(ids))
	}
	integ := c.Stats().Integrity
	if integ.TornTails != 1 || integ.CorruptFiles != 0 {
		t.Fatalf("instance torn-tail accounting = %+v", integ)
	}
	if err := c.Append("li-0", []byte(`{"op":"x"}`)); err != nil {
		t.Fatal(err)
	}
}

// TestInstancesInteriorCorruptionFailsReplay is the mid-file flip: the
// instance journal refuses with positional detail.
func TestInstancesInteriorCorruptionFailsReplay(t *testing.T) {
	dir := t.TempDir()
	seedInstances(t, dir, 6, false)
	flipByte(t, filepath.Join(dir, journalName), 20)

	_, _, err := openInstancesDir(t, dir, InstancesOptions{})
	var ce *CorruptionError
	if !errors.Is(err, ErrCorrupt) || !errors.As(err, &ce) {
		t.Fatalf("interior instance corruption replayed as %v, want CorruptionError", err)
	}
	if ce.Line != 1 {
		t.Fatalf("corruption located at line %d, want 1", ce.Line)
	}
}

// TestInstancesSealedCorruption flips a bit in a sealed instance
// segment: strict mode fails the replay; quarantine mode moves the file
// aside and serves the survivors.
func TestInstancesSealedCorruption(t *testing.T) {
	dir := t.TempDir()
	seedInstances(t, dir, 6, true)
	c, _, err := openInstancesDir(t, dir, InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := c.Append("li-9", []byte(`{"op":"tail"}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	flipByte(t, filepath.Join(dir, sealedName(1)), 40)

	_, _, err = openInstancesDir(t, dir, InstancesOptions{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sealed instance corruption replayed as %v, want ErrCorrupt", err)
	}

	var seen []CorruptFile
	c2, ids, err := openInstancesDir(t, dir, InstancesOptions{Integrity: IntegrityOptions{
		Quarantine: true,
		OnCorrupt:  func(cf CorruptFile) { seen = append(seen, cf) },
	}})
	if err != nil {
		t.Fatalf("quarantine instance replay failed: %v", err)
	}
	defer c2.Close()
	if len(ids) != 2 {
		t.Fatalf("quarantine replay streamed %d records, want the 2 active-file survivors", len(ids))
	}
	if len(seen) != 1 || !seen[0].Quarantined {
		t.Fatalf("OnCorrupt saw %+v, want one quarantine", seen)
	}
	if integ := c2.Stats().Integrity; integ.QuarantinedFiles != 1 {
		t.Fatalf("instance quarantine accounting = %+v", integ)
	}
}

// TestInstancesSnapshotCorruption folds the instance journal into a
// snapshot, flips a bit in it, and expects the strict verdict.
func TestInstancesSnapshotCorruption(t *testing.T) {
	dir := t.TempDir()
	c, _, err := openInstancesDir(t, dir, InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	state := map[string][]byte{}
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("li-%d", i%3)
		data := []byte(fmt.Sprintf(`{"op":"advance","n":%d}`, i))
		state[id] = data
		if err := c.Append(id, data); err != nil {
			t.Fatal(err)
		}
	}
	c.SetSnapshotSource(func(emit func(id string, data []byte) error) error {
		for id, data := range state {
			if err := emit(id, data); err != nil {
				return err
			}
		}
		return nil
	})
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	flipByte(t, filepath.Join(dir, snapName(1)), 40)

	_, _, err = openInstancesDir(t, dir, InstancesOptions{})
	var ce *CorruptionError
	if !errors.Is(err, ErrCorrupt) || !errors.As(err, &ce) {
		t.Fatalf("instance snapshot corruption replayed as %v, want CorruptionError", err)
	}
	if filepath.Base(ce.Path) != snapName(1) {
		t.Fatalf("corruption located in %s, want %s", filepath.Base(ce.Path), snapName(1))
	}
}

// TestInstancesScrubDetectsRot corrupts a sealed instance segment while
// the collection serves and expects the on-demand scrub to find it.
func TestInstancesScrubDetectsRot(t *testing.T) {
	dir := t.TempDir()
	seedInstances(t, dir, 6, true)
	c, _, err := openInstancesDir(t, dir, InstancesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	flipByte(t, filepath.Join(dir, sealedName(1)), 40)
	res := c.Scrub(1 << 30)
	if res.Corrupt != 1 {
		t.Fatalf("instance scrub = %+v, want 1 corrupt", res)
	}
	if integ := c.Stats().Integrity; integ.CorruptFiles != 1 || integ.LastError == "" {
		t.Fatalf("instance scrub accounting = %+v", integ)
	}
}

// --- fsck ---

// TestFsckReportsAndRepairs builds a directory with a corrupt sealed
// segment and a torn active tail. Read-only fsck reports both without
// touching the files; repair quarantines and truncates, after which the
// directory opens and a re-check is clean.
func TestFsckReportsAndRepairs(t *testing.T) {
	dir := t.TempDir()
	s, repo, err := openIntegrityStore(t, dir, IntegrityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	putDocs(t, repo, 5, 0)
	if err := s.engine.Seal(); err != nil {
		t.Fatal(err)
	}
	putDocs(t, repo, 3, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	flipByte(t, filepath.Join(dir, sealedName(1)), 40)
	flipByte(t, filepath.Join(dir, journalName), -5)

	rep, err := Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean || rep.Corrupt != 1 || rep.Torn != 1 || rep.Repaired != 0 {
		t.Fatalf("read-only fsck = corrupt %d torn %d repaired %d clean %t, want 1/1/0/false",
			rep.Corrupt, rep.Torn, rep.Repaired, rep.Clean)
	}
	status := map[string]string{}
	for _, f := range rep.Files {
		status[f.Name] = f.Status
	}
	if status[sealedName(1)] != "corrupt" || status[journalName] != "torn" {
		t.Fatalf("fsck statuses = %v", status)
	}
	// Read-only: the files are untouched and the open still refuses.
	if _, _, err := openIntegrityStore(t, dir, IntegrityOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open after read-only fsck = %v, want ErrCorrupt", err)
	}

	rep, err = Fsck(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 2 {
		t.Fatalf("repair fsck repaired %d files, want 2 (quarantine + truncate)", rep.Repaired)
	}
	s2, repo2, err := openIntegrityStore(t, dir, IntegrityOptions{})
	if err != nil {
		t.Fatalf("open after repair failed: %v", err)
	}
	if _, ok := repo2.Get("k06"); !ok {
		t.Fatal("surviving record lost by repair")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err = Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("fsck after repair not clean: %+v", rep)
	}
}

// TestFsckCleanGeneration checks a healthy compacted directory — with a
// snapshot, an archive and an active file — verifies clean, footers
// seen, archive records counted.
func TestFsckCleanGeneration(t *testing.T) {
	dir := t.TempDir()
	s, lg := openLogStore(t, dir, 10)
	appendTicks(t, lg, 50, "a")
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	appendTicks(t, lg, 3, "b")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean || rep.Corrupt != 0 || rep.Torn != 0 {
		t.Fatalf("clean generation fsck = %+v", rep)
	}
	kinds := map[string]FsckFile{}
	for _, f := range rep.Files {
		kinds[f.Kind] = f
	}
	if f := kinds["snapshot"]; f.Status != "ok" || !f.Footer {
		t.Fatalf("snapshot verdict = %+v, want ok with footer", f)
	}
	if f := kinds["archive"]; f.Status != "ok" || f.Records != 40 {
		t.Fatalf("archive verdict = %+v, want ok with 40 records", f)
	}
	if f := kinds["active"]; f.Status != "ok" || f.Records != 3 {
		t.Fatalf("active verdict = %+v, want ok with 3 records", f)
	}
	// A missing referenced archive is corruption, not staleness.
	if err := os.Remove(filepath.Join(dir, archiveName(1))); err != nil {
		t.Fatal(err)
	}
	rep, err = Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean || rep.Corrupt != 1 {
		t.Fatalf("fsck with missing archive = %+v, want 1 corrupt", rep)
	}
	found := false
	for _, f := range rep.Files {
		if f.Name == archiveName(1) && f.Status == "missing" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing archive not reported: %+v", rep.Files)
	}
}
