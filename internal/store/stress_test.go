package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestConcurrentShardedStress hammers sharded Put/Get/Delete, the log,
// and the read paths from many goroutines at once over the group-commit
// engine. Run under -race this is the data tier's concurrency proof.
// Each goroutine owns a disjoint key space so the final state is
// deterministic and can be checked against a replay.
func TestConcurrentShardedStress(t *testing.T) {
	const writers, perWriter = 8, 40
	dir := t.TempDir()
	s, repo := openStore(t, dir)

	var wg sync.WaitGroup
	errs := make(chan error, writers*2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-k%d", w, i%10)
				if err := repo.Put(id, doc{Title: id, Rev: i}); err != nil {
					errs <- err
					return
				}
				if i%7 == 0 {
					if err := repo.Delete(fmt.Sprintf("w%d-k%d", w, (i+3)%10)); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	// Concurrent readers exercise the shard read locks and the
	// cross-shard aggregation paths.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				repo.Get(fmt.Sprintf("w%d-k%d", i%writers, i%10))
				repo.Len()
				repo.IDs()
				s.Stats()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	want := make(map[string]doc)
	for _, id := range repo.IDs() {
		v, _ := repo.Get(id)
		want[id] = v
	}
	stats := s.Stats()
	if stats.Engine.Appends == 0 {
		t.Fatalf("engine recorded no appends: %+v", stats.Engine)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, repo2 := openStore(t, dir)
	for id, w := range want {
		got, ok := repo2.Get(id)
		if !ok || got != w {
			t.Fatalf("replay mismatch for %s: got %+v,%t want %+v", id, got, ok, w)
		}
	}
	if repo2.Len() != len(want) {
		t.Fatalf("replayed %d items, want %d", repo2.Len(), len(want))
	}
}

// TestSameKeyConcurrentPutsReplayConsistent hammers a single key from
// many goroutines: because the engine applies mutations in journal
// order, the live value after the dust settles must be byte-identical
// to what replaying the journal reconstructs — no "memory says A, disk
// says B" divergence for racing writers.
func TestSameKeyConcurrentPutsReplayConsistent(t *testing.T) {
	const writers, perWriter = 8, 30
	dir := t.TempDir()
	s, repo := openStore(t, dir)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := repo.Put("contended", doc{Title: fmt.Sprintf("w%d", w), Rev: i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	live, ok := repo.Get("contended")
	if !ok {
		t.Fatal("contended key missing")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, repo2 := openStore(t, dir)
	replayed, ok := repo2.Get("contended")
	if !ok || replayed != live {
		t.Fatalf("replayed %+v,%t diverged from live %+v", replayed, ok, live)
	}
}

// TestConcurrentLogAppend checks that concurrent log appends all commit,
// all replay, and sequence numbering stays dense.
func TestConcurrentLogAppend(t *testing.T) {
	const writers, perWriter = 6, 25
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	log := MustLog(s, "execlog")
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := log.Append(LogEntry{Instance: fmt.Sprintf("i%d", w), Kind: "tick"}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if log.Len() != writers*perWriter {
		t.Fatalf("log has %d entries, want %d", log.Len(), writers*perWriter)
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	log2 := MustLog(s2, "execlog")
	if err := s2.Load(); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if log2.Len() != writers*perWriter {
		t.Fatalf("replayed log has %d entries, want %d", log2.Len(), writers*perWriter)
	}
	for _, w := range []string{"i0", "i5"} {
		if got := len(log2.ByInstance(w)); got != perWriter {
			t.Fatalf("ByInstance(%s) after replay = %d, want %d", w, got, perWriter)
		}
	}
}

// TestTornBatchTailRecovered simulates a crash that cuts a group-commit
// batch short: the journal ends with some complete lines of the batch
// followed by a torn partial line. Recovery must keep every complete
// record, drop the torn tail silently, and leave the store writable.
func TestTornBatchTailRecovered(t *testing.T) {
	dir := t.TempDir()
	s, repo := openStore(t, dir)
	// Concurrent puts so the tail of the file really is batch-written.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			repo.Put(fmt.Sprintf("pre%d", w), doc{Title: "keep", Rev: w})
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash mid-batch: two complete entries of the batch reached the
	// disk, the third is torn (no newline, truncated JSON).
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	batchTail := `{"seq":101,"repo":"docs","op":"put","id":"b1","data":{"title":"batch","rev":1}}
{"seq":102,"repo":"docs","op":"put","id":"b2","data":{"title":"batch","rev":2}}
{"seq":103,"repo":"docs","op":"put","id":"b3","data":{"ti`
	if _, err := f.WriteString(batchTail); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, repo2 := openStore(t, dir)
	defer s2.Close()
	for w := 0; w < 4; w++ {
		if _, ok := repo2.Get(fmt.Sprintf("pre%d", w)); !ok {
			t.Fatalf("pre-crash record pre%d lost", w)
		}
	}
	for _, id := range []string{"b1", "b2"} {
		if _, ok := repo2.Get(id); !ok {
			t.Fatalf("complete batch record %s lost", id)
		}
	}
	if _, ok := repo2.Get("b3"); ok {
		t.Fatal("torn batch record applied")
	}
	// The store must append correctly after recovery, continuing past
	// the recovered sequence.
	if err := repo2.Put("after", doc{Title: "post-crash"}); err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().Engine.LastSeq; got <= 102 {
		t.Fatalf("sequence did not continue past recovered tail: %d", got)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// The torn tail must have been truncated away on recovery: a write
	// landing after it must not weld onto the torn bytes, so a THIRD
	// open replays cleanly — this is the regression the old O_APPEND
	// behavior had (torn tail + append = mid-file corruption).
	s3, repo3 := openStore(t, dir)
	defer s3.Close()
	if _, ok := repo3.Get("after"); !ok {
		t.Fatal("post-recovery write lost on second replay")
	}
	if _, ok := repo3.Get("b2"); !ok {
		t.Fatal("recovered record lost on second replay")
	}
}

// TestGroupCommitBatchesAndAcks drives enough concurrency at the
// engine that group commit actually forms batches, and checks every
// appender is acknowledged with a consistent stats picture.
func TestGroupCommitBatchesAndAcks(t *testing.T) {
	const writers, perWriter = 8, 20
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	repo := MustRepo[doc](s, "docs")
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := repo.Put(fmt.Sprintf("w%d-%d", w, i), doc{Rev: i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Engine.Appends != writers*perWriter {
		t.Fatalf("appends = %d, want %d", st.Engine.Appends, writers*perWriter)
	}
	if st.Engine.Batches == 0 || st.Engine.Batches > st.Engine.Appends {
		t.Fatalf("implausible batch count: %+v", st.Engine)
	}
	if st.Engine.Syncs != st.Engine.Batches {
		t.Fatalf("durable mode must fsync once per batch: %+v", st.Engine)
	}
	if st.Engine.State != StateRunning {
		t.Fatalf("state = %q, want running", st.Engine.State)
	}
	if st.Repos["docs"] != writers*perWriter {
		t.Fatalf("repo size = %d", st.Repos["docs"])
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Engine.State; got != StateClosed {
		t.Fatalf("state after close = %q, want closed", got)
	}
	// Mutations after close fail cleanly rather than hanging.
	if err := repo.Put("late", doc{}); err == nil {
		t.Fatal("put after close succeeded")
	}
}

// TestPerAppendSyncBaseline checks the benchmark baseline mode still
// honors the old contract: one fsync per append, batches of one.
func TestPerAppendSyncBaseline(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	repo := MustRepo[doc](s, "docs")
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := repo.Put(fmt.Sprintf("k%d", i), doc{Rev: i}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Engine.Appends != 10 || st.Engine.Batches != 10 || st.Engine.Syncs != 10 || st.Engine.MaxBatch != 1 {
		t.Fatalf("baseline stats = %+v, want 10 appends/batches/syncs, max batch 1", st.Engine)
	}
}

// TestExplicitEngineConstruction exercises the pluggable path: a store
// built on an explicit memory engine via New, loaded, sharded by an
// explicit stripe count.
func TestExplicitEngineConstruction(t *testing.T) {
	s := New(NewMemoryEngine(), Options{Shards: 4})
	repo := MustRepo[doc](s, "docs")
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := repo.Put(fmt.Sprintf("k%d", i), doc{Rev: i}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Shards != 4 {
		t.Fatalf("shards = %d, want 4", st.Shards)
	}
	if st.Engine.Engine != "memory" || st.Engine.Appends != 20 {
		t.Fatalf("engine stats = %+v", st.Engine)
	}
	if repo.Len() != 20 {
		t.Fatalf("len = %d", repo.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactDuringConcurrentWrites interleaves Compact with writers:
// compaction must never lose an acknowledged write.
func TestCompactDuringConcurrentWrites(t *testing.T) {
	const writers, perWriter = 4, 30
	dir := t.TempDir()
	s, repo := openStore(t, dir)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := repo.Put(fmt.Sprintf("w%d-k%d", w, i%5), doc{Title: "x", Rev: i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := s.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	want := make(map[string]doc)
	for _, id := range repo.IDs() {
		v, _ := repo.Get(id)
		want[id] = v
	}
	s.Close()

	_, repo2 := openStore(t, dir)
	for id, w := range want {
		got, ok := repo2.Get(id)
		if !ok || got != w {
			t.Fatalf("post-compact replay mismatch for %s: %+v,%t want %+v", id, got, ok, w)
		}
	}
}
