package store

// End-to-end journal integrity: the options and stats types shared by
// the engines, and the quarantine pre-verify pass that turns mid-file
// corruption from a failed open into a degraded one. The write-side
// framing lives in journal.go, the background scrubber in scrub.go, the
// offline checker in fsck.go.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// DefaultScrubBytesPerTick bounds the IO one background scrub tick may
// issue when IntegrityOptions.ScrubBytesPerTick is zero.
const DefaultScrubBytesPerTick = 8 << 20

// IntegrityOptions tune corruption detection and handling for a journal
// directory (the store journal via Options.Integrity / JournalConfig,
// the instance journal via InstancesOptions.Integrity). The zero value
// is safe: framing on, quarantine off, scrubber off.
type IntegrityOptions struct {
	// Quarantine moves a file that fails verification at open aside
	// (renamed with a .quarantined suffix) instead of failing the open,
	// so the surviving history serves read-only while an operator
	// repairs or restores. Every move is reported through OnCorrupt —
	// the hook the embedding system uses to latch read-only.
	Quarantine bool
	// DisableFraming writes bare legacy JSONL lines without per-record
	// CRCs or segment footers — the pre-upgrade format, kept so
	// benchmarks can measure framing overhead. Replay accepts both
	// formats regardless.
	DisableFraming bool
	// ScrubInterval paces the background scrubber verifying sealed
	// segments, snapshots and archives while serving. 0 disables it.
	ScrubInterval time.Duration
	// ScrubBytesPerTick bounds the IO one scrub tick may issue
	// (0 = DefaultScrubBytesPerTick).
	ScrubBytesPerTick int64
	// OnCorrupt, when set, observes every corruption detection — the
	// open-time pre-verify pass and the scrubber. Called on open and
	// scrub paths; must be fast and must not call back into the store.
	OnCorrupt func(CorruptFile)
}

// CorruptFile describes one corruption detection.
type CorruptFile struct {
	// Path is the damaged file (its original path, even after a
	// quarantine rename).
	Path string `json:"path"`
	// Detail is the verification failure, with offset/line/seq detail
	// when the damage is positional.
	Detail string `json:"detail"`
	// Quarantined reports whether the file was moved aside.
	Quarantined bool `json:"quarantined"`
	// Source is "open" (pre-verify at open) or "scrub".
	Source string `json:"source"`
}

// IntegrityStats is the per-engine integrity ledger served with the
// admin store stats: what open recovered or refused, and what the
// background scrubber has verified.
type IntegrityStats struct {
	// Framing reports whether appends write v1 CRC envelopes.
	Framing bool `json:"framing"`
	// TornTails / TornTailBytes count files whose invalid suffix open
	// dropped as a crash tail — recovered, but observable.
	TornTails     uint64 `json:"torn_tails_recovered,omitempty"`
	TornTailBytes int64  `json:"torn_tail_bytes,omitempty"`
	// CorruptFiles counts corruption detections (open pre-verify +
	// scrub); QuarantinedFiles how many files were moved aside.
	CorruptFiles     uint64 `json:"corrupt_files,omitempty"`
	QuarantinedFiles uint64 `json:"quarantined_files,omitempty"`
	// Scrub progress: ticks run, full passes completed, files and bytes
	// verified, and when the last full pass finished.
	ScrubTicks    uint64 `json:"scrub_ticks,omitempty"`
	ScrubPasses   uint64 `json:"scrub_passes,omitempty"`
	ScrubFiles    uint64 `json:"scrub_files_verified,omitempty"`
	ScrubBytes    uint64 `json:"scrub_bytes_verified,omitempty"`
	LastScrubUnix int64  `json:"last_scrub_unix,omitempty"`
	// LastError is the most recent verification failure, if any.
	LastError string `json:"last_error,omitempty"`
}

// quarantinePath picks an unused destination for a damaged file: the
// .quarantined suffix drops it out of every directory scan (scans match
// on the .jsonl suffix and exact active name) while keeping the bytes
// on disk for repair.
func quarantinePath(path string) string {
	dst := path + ".quarantined"
	for i := 2; ; i++ {
		if _, err := os.Lstat(dst); errors.Is(err, os.ErrNotExist) {
			return dst
		}
		dst = fmt.Sprintf("%s.quarantined.%d", path, i)
	}
}

// preVerify walks a journal directory's generation before any entry is
// applied, moving every file that fails verification aside and
// reporting it through onCorrupt. Run only in quarantine mode: the
// subsequent replay then sees a clean (if shortened) generation — no
// partially applied state to unwind — and the embedding system latches
// read-only rather than serving the hole as truth. Torn active tails
// are left in place (the real replay truncates and counts them).
// Referenced archives are checked existence+length only, keeping open
// cost O(live + refs); a missing or resized one counts as corrupt
// (resized ones are quarantined) and the tolerant reconcile skips its
// ref. Returns how many files were quarantined and how many corruption
// detections were made (quarantines plus missing archives).
func preVerify(dir string, onCorrupt func(CorruptFile)) (quarantined, corrupt int, err error) {
	st, err := scanSegments(dir)
	if err != nil {
		return 0, 0, err
	}
	move := func(path, detail string) error {
		if err := os.Rename(path, quarantinePath(path)); err != nil {
			return fmt.Errorf("store: quarantine %s: %w", filepath.Base(path), err)
		}
		quarantined++
		corrupt++
		if onCorrupt != nil {
			onCorrupt(CorruptFile{Path: path, Detail: detail, Quarantined: true, Source: "open"})
		}
		return nil
	}
	var refs []ArchiveRef
	if st.snapPath != "" {
		_, verr := replayJournalFile(st.snapPath, replaySnapshot, func(e Entry) error {
			if e.Op == opArchiveRef {
				var ref ArchiveRef
				if jerr := json.Unmarshal(e.Data, &ref); jerr != nil {
					return fmt.Errorf("%w: archive ref: %v", ErrCorrupt, jerr)
				}
				refs = append(refs, ref)
			}
			return nil
		})
		if verr != nil {
			if !errors.Is(verr, ErrCorrupt) {
				return quarantined, corrupt, verr
			}
			if err := move(st.snapPath, verr.Error()); err != nil {
				return quarantined, corrupt, err
			}
			refs = nil
		}
	}
	for _, n := range st.sealed {
		p := filepath.Join(dir, sealedName(n))
		if _, verr := replayJournalFile(p, replaySealed, nil); verr != nil {
			if !errors.Is(verr, ErrCorrupt) {
				return quarantined, corrupt, verr
			}
			if err := move(p, verr.Error()); err != nil {
				return quarantined, corrupt, err
			}
		}
	}
	active := filepath.Join(dir, journalName)
	if _, verr := replayJournalFile(active, replayActive, nil); verr != nil {
		if !errors.Is(verr, ErrCorrupt) {
			return quarantined, corrupt, verr
		}
		if err := move(active, verr.Error()); err != nil {
			return quarantined, corrupt, err
		}
	}
	for _, ref := range refs {
		p := filepath.Join(dir, archiveName(ref.Archive))
		info, statErr := os.Stat(p)
		if errors.Is(statErr, os.ErrNotExist) {
			corrupt++
			if onCorrupt != nil {
				onCorrupt(CorruptFile{Path: p, Detail: "referenced archive missing", Source: "open"})
			}
			continue
		}
		if statErr != nil {
			return quarantined, corrupt, fmt.Errorf("store: stat archive: %w", statErr)
		}
		if info.Size() != ref.Bytes {
			detail := fmt.Sprintf("archive is %d bytes, snapshot recorded %d", info.Size(), ref.Bytes)
			if err := move(p, detail); err != nil {
				return quarantined, corrupt, err
			}
		}
	}
	return quarantined, corrupt, nil
}
