package store

// Replay fan-out shared by Store.LoadParallel and
// Instances.ReplayParallel: a single reader streams entries in commit
// order and dispatches each to a worker lane picked by key, so entries
// with the same key apply in exactly the sequential-replay order while
// independent keys proceed in parallel. The reader keeps doing all
// skip/bounds bookkeeping (it is cheap); workers only run apply. An
// apply error aborts the stream at the next dispatch; lanes drain so
// nothing blocks.

import (
	"sync"
	"sync/atomic"

	"github.com/liquidpub/gelee/internal/shardkey"
)

// fanLane is one worker goroutine's queue.
type fanLane struct {
	ch chan Entry
	wg sync.WaitGroup
}

// fanOut runs workers lanes applying entries keyed onto them.
type fanOut struct {
	lanes    []*fanLane
	failed   atomic.Bool
	errMu    sync.Mutex
	firstErr error
}

// newFanOut starts the worker lanes. Callers must finish() exactly
// once, after the last dispatch.
func newFanOut(workers int, apply func(Entry) error) *fanOut {
	f := &fanOut{lanes: make([]*fanLane, workers)}
	for i := range f.lanes {
		l := &fanLane{ch: make(chan Entry, 256)}
		f.lanes[i] = l
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			for e := range l.ch {
				if f.failed.Load() {
					continue // drain after failure
				}
				if err := apply(e); err != nil {
					f.errMu.Lock()
					if f.firstErr == nil {
						f.firstErr = err
					}
					f.errMu.Unlock()
					f.failed.Store(true)
				}
			}
		}()
	}
	return f
}

// dispatch hands e to the lane owning key, or returns the first apply
// error once a worker has failed (aborting the caller's stream).
func (f *fanOut) dispatch(key string, e Entry) error {
	if f.failed.Load() {
		f.errMu.Lock()
		err := f.firstErr
		f.errMu.Unlock()
		return err
	}
	f.lanes[shardkey.Index(key, len(f.lanes))].ch <- e
	return nil
}

// finish closes the lanes, waits for the workers and reports the first
// apply error.
func (f *fanOut) finish() error {
	for _, l := range f.lanes {
		close(l.ch)
		l.wg.Wait()
	}
	f.errMu.Lock()
	defer f.errMu.Unlock()
	return f.firstErr
}
